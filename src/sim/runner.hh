/**
 * @file
 * Matrix runner: sweeps workloads x (technology, scheme) pairs and
 * normalises results, shared by the Fig. 14/16/17/18 benches and the
 * example applications.
 */

#ifndef RTM_SIM_RUNNER_HH
#define RTM_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "sim/system.hh"

namespace rtm
{

class ExperimentEngine;

/** One LLC configuration of the Fig. 16-18 comparison. */
struct LlcOption
{
    std::string label;
    MemTech tech = MemTech::SRAM;
    Scheme scheme = Scheme::Baseline;

    // Racetrack placement / port-scheduling axes (ignored by
    // SRAM/STT-RAM options). The defaults reproduce the historical
    // behaviour bit-identically.
    PlacementKind placement = PlacementKind::Static;
    uint64_t placement_epoch = 64;  //!< per-group epoch accesses
    int placement_swap_budget = 4;  //!< adaptive swaps per epoch
    HeadPolicy head_policy = HeadPolicy::Stay;

    bool operator==(const LlcOption &o) const
    {
        return label == o.label && tech == o.tech &&
               scheme == o.scheme && placement == o.placement &&
               placement_epoch == o.placement_epoch &&
               placement_swap_budget == o.placement_swap_budget &&
               head_policy == o.head_policy;
    }
    bool operator!=(const LlcOption &o) const
    {
        return !(*this == o);
    }
};

/** The paper's standard comparison set (Fig. 16-18 legends). */
std::vector<LlcOption> standardLlcOptions();

/** The paper's racetrack protection set (Fig. 14 legend). */
std::vector<LlcOption> racetrackSchemeOptions();

/** The shift-code family (lm-pos, del-ins-k) with a p-ECC anchor. */
std::vector<LlcOption> shiftCodeLlcOptions();

/** Results for one workload across every option. */
struct WorkloadMatrixRow
{
    WorkloadProfile profile;
    std::vector<SimResult> results; //!< one per option, same order
};

/**
 * Shrink a workload's working set by the hierarchy capacity divisor
 * (see HierarchyConfig::capacity_divisor), keeping every other
 * characteristic intact.
 */
WorkloadProfile scaledProfile(WorkloadProfile profile,
                              uint64_t divisor);

/**
 * Run every workload against every option.
 *
 * Cells are simulated in parallel on the global ThreadPool (see
 * util/parallel.hh, RTM_THREADS); results are bit-identical at any
 * worker count and keep the serial ordering.
 *
 * @param options  LLC options to sweep
 * @param model    position-error model (racetrack options)
 * @param requests memory requests per run
 * @param warmup   warmup requests per run
 * @param capacity_divisor uniform hierarchy/working-set shrink
 * @param telemetry optional observability sink: each cell writes a
 *                 private shard (per-cell wall-clock spans, sim
 *                 counters) merged into the sink in cell order, so
 *                 the export is bit-identical at any RTM_THREADS.
 */
std::vector<WorkloadMatrixRow>
runMatrix(const std::vector<LlcOption> &options,
          const PositionErrorModel *model, uint64_t requests,
          uint64_t warmup = 20000, uint64_t capacity_divisor = 1,
          TelemetryScope telemetry = {});

/**
 * Queue one matrix cell per (profile, option) pair on `engine`
 * (workload-major, the runMatrix order) without running them; `rows`
 * is sized here and filled when the engine runs. This is how matrix
 * cells join a larger job set (sim/experiment.hh) — runMatrix itself
 * is a thin append + run wrapper.
 *
 * `rows` must stay at a stable address until the engine has run.
 *
 * `protection` applies to every racetrack cell (the spec-level
 * protection-domain policy); the default policy is the paper's
 * per-frame configuration and changes nothing.
 */
void appendMatrixJobs(ExperimentEngine &engine,
                      std::vector<WorkloadMatrixRow> *rows,
                      const std::vector<WorkloadProfile> &profiles,
                      const std::vector<LlcOption> &options,
                      const PositionErrorModel *model,
                      uint64_t requests, uint64_t warmup,
                      uint64_t capacity_divisor, uint64_t seed,
                      const ProtectionPolicy &protection = {});

/** Geometric mean over positive values. */
double geomean(const std::vector<double> &values);

} // namespace rtm

#endif // RTM_SIM_RUNNER_HH
