/**
 * @file
 * Fault-injection campaign runner.
 *
 * A campaign sweeps fault scenarios (device/fault_scenario.hh)
 * against synthetic workload profiles, driving every cell through a
 * recovery-hardened ShiftController plus an RmBank degradation drill,
 * and reconciles the ground-truth injection ledger against the
 * controller's detection/correction/recovery/DUE/SDC accounting.
 *
 * The point is *containment*, not error-free operation: under an
 * adversarial regime every injected fault must end in exactly one
 * accounted outcome (in-line correction, a ladder rung, a reported
 * DUE, or a counted SDC) with no crash, hang, or ledger mismatch.
 *
 * Cells run in parallel on the global thread pool; every cell derives
 * its RNG streams from the campaign seed and its cell index alone, so
 * results are bit-identical for any RTM_THREADS setting.
 */

#ifndef RTM_SIM_CAMPAIGN_HH
#define RTM_SIM_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "control/controller.hh"
#include "device/fault_scenario.hh"
#include "mem/rm_bank.hh"
#include "trace/workload.hh"
#include "util/parallel.hh"
#include "util/serde.hh"
#include "util/stats.hh"

namespace rtm
{

class ExperimentEngine;

/** Configuration of one fault-injection campaign. */
struct CampaignConfig
{
    uint64_t accesses_per_cell = 3000; //!< controller accesses
    uint64_t seed = 0x7a5e;            //!< campaign master seed
    /** Error-rate acceleration over the paper's calibrated rates
     *  (fault injection at nominal rates would need ~1e9 accesses
     *  per cell to exercise the ladder). */
    double scale = 2000.0;

    /** Stripe protection: two segments keep scrub image dumps cheap
     *  while exercising the same code paths as the full geometry. */
    PeccConfig pecc{2, 8, 1, PeccVariant::Standard};
    /** Recovery ladder: 2 retries, realign and scrub enabled. */
    RecoveryConfig recovery{2, true, true, 2, 1024};
    ShiftPolicy policy = ShiftPolicy::Adaptive;
    double peak_ops_per_second = 83e6;
    int workload_cores = 4;

    // Bank degradation drill (runs alongside the controller drill).
    uint64_t bank_frames = 1024;
    /** Probability an access also reports an injected DUE. */
    double bank_due_prob = 0.01;
    /** DUE reports a group tolerates before it is retired. */
    int group_retry_budget = 2;

    /**
     * Observability sink for the whole campaign: each cell writes a
     * private shard (injection/detection/ladder events, counters
     * mirroring the ledger, per-cell wall-clock) merged in cell
     * order, so the export is bit-identical at any RTM_THREADS.
     * Disabled (null) by default.
     */
    TelemetryScope telemetry = {};

    /**
     * Per-cell event-ring capacity. Event *counts* survive ring
     * overwrite either way; raise this when a consumer needs every
     * individual event retained (e.g. the reconciliation tests).
     */
    size_t telemetry_ring_capacity = Telemetry::kDefaultRingCapacity;
};

/** Reconciled per-cell (and campaign-total) fault ledger. */
struct CampaignLedger
{
    uint64_t accesses = 0;

    // Ground truth from the scenario's injection ledger.
    uint64_t injected_samples = 0; //!< shift outcomes drawn
    uint64_t injected_faults = 0;  //!< non-ok outcomes injected
    uint64_t injected_step_errors = 0;
    uint64_t injected_stops = 0;

    // Controller-side accounting.
    uint64_t detected = 0;
    uint64_t corrected = 0;         //!< in-line counter-shifts
    uint64_t recovered_retry = 0;   //!< ladder rung 1
    uint64_t recovered_realign = 0; //!< ladder rung 2
    uint64_t recovered_scrub = 0;   //!< ladder rung 3
    uint64_t due = 0;               //!< reported DUEs
    uint64_t sdc = 0;               //!< ground-truth-counted SDCs

    /** Per-field sum (totals aggregation). */
    void merge(const CampaignLedger &other);
};

/** Outcome of one (scenario, workload) campaign cell. */
struct CampaignCellResult
{
    std::string scenario;
    std::string workload;
    CampaignLedger ledger;
    ControllerStats controller;
    RunningStats access_latency;   //!< cycles per access
    RunningStats recovery_latency; //!< cycles per recovery episode

    // Bank degradation drill.
    uint64_t bank_due_reports = 0;
    uint64_t bank_degraded_groups = 0;
    uint64_t bank_remapped_accesses = 0;
    double degraded_capacity_fraction = 0.0;

    bool contained = false; //!< all containment checks passed
    std::string violation;  //!< first failed check (empty if none)
};

/** Aggregated campaign outcome. */
struct CampaignResult
{
    std::vector<CampaignCellResult> cells;
    CampaignLedger totals;
    uint64_t contained_cells = 0;

    bool allContained() const
    {
        return contained_cells == cells.size();
    }
};

/**
 * Run one campaign cell: `config.accesses_per_cell` workload-driven
 * accesses through a recovery-hardened controller under `spec`'s
 * fault regime, plus the bank degradation drill. `cell_seed` fixes
 * every RNG stream of the cell.
 */
CampaignCellResult runFaultDrill(const ScenarioSpec &spec,
                                 const WorkloadProfile &profile,
                                 const CampaignConfig &config,
                                 uint64_t cell_seed,
                                 TelemetryScope telemetry = {},
                                 StopFlag *stop = nullptr);

/**
 * Sweep scenarios x workloads in parallel (global pool). Workload
 * names resolve through parsecProfile(). Bit-identical for any
 * RTM_THREADS under a fixed config.seed.
 */
CampaignResult runCampaign(const std::vector<ScenarioSpec> &scenarios,
                           const std::vector<std::string> &workloads,
                           const CampaignConfig &config);

/**
 * Queue one drill per (scenario, profile) pair on `engine`
 * (scenario-major, the runCampaign order) without running them;
 * `out->cells` is sized here and filled when the engine runs. Cell
 * seeds depend only on (config.seed, pair index), so results are
 * bit-identical however the jobs interleave with the rest of the job
 * set. Call finalizeCampaignTotals after the engine has run.
 *
 * `out` must stay at a stable address until the engine has run.
 */
void appendCampaignJobs(ExperimentEngine &engine,
                        CampaignResult *out,
                        const std::vector<ScenarioSpec> &scenarios,
                        const std::vector<WorkloadProfile> &profiles,
                        const CampaignConfig &config);

/** Recompute totals/contained_cells from the finished cells. */
void finalizeCampaignTotals(CampaignResult *out);

/**
 * Full-fidelity serialisation of one campaign cell — every ledger,
 * controller and bank field plus the raw latency accumulators — so a
 * journaled cell replays into a bit-identical CampaignCellResult on
 * resume. (campaignResultToJson is the lossy *reporting* view; this
 * is the checkpointing view.)
 */
JsonValue campaignCellToJson(const CampaignCellResult &cell);

/** Restore a journaled cell; false on a malformed document. */
bool campaignCellFromJson(const JsonValue &doc,
                          CampaignCellResult *out);

/** The campaign result as a JSON document (serde layer). */
JsonValue campaignResultToJson(const CampaignResult &result);

/** Write the campaign result as JSON; returns false on I/O error. */
bool writeCampaignJson(const CampaignResult &result,
                       const std::string &path);

} // namespace rtm

#endif // RTM_SIM_CAMPAIGN_HH
