/**
 * @file
 * The unified experiment engine: one declarative run definition and
 * one scheduler for everything the paper's evaluation sweeps.
 *
 * An ExperimentSpec describes a whole evaluation as data — the
 * technology/scheme axes and workload set of a matrix sweep
 * (Figs. 14/16-18), the scenario catalogue of a fault-injection
 * campaign, the stripe-level stress drill faultsim runs, telemetry
 * sinks and seeds — and round-trips losslessly through JSON
 * (util/serde.hh). A spec expands into a flat cell list, and every
 * cell — matrix, campaign and stress alike — is scheduled as one job
 * set on the global thread pool by the ExperimentEngine: no
 * per-matrix barrier, campaign and matrix cells interleave freely,
 * yet results and merged telemetry are bit-identical at any
 * RTM_THREADS because each cell derives its RNG streams from the
 * spec alone and per-cell telemetry shards merge in cell order.
 *
 * runMatrix (sim/runner.hh) and runCampaign (sim/campaign.hh) are
 * thin wrappers over this engine, so the golden SHA-256 digests of
 * tests/sim_golden_test.cc pin the engine path too.
 */

#ifndef RTM_SIM_EXPERIMENT_HH
#define RTM_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "device/montecarlo.hh"
#include "sim/campaign.hh"
#include "sim/runner.hh"
#include "util/journal.hh"
#include "util/parallel.hh"
#include "util/serde.hh"

namespace rtm
{

/** Terminal state of one scheduled cell. */
enum class CellStatus
{
    Ok,        //!< body completed, result slot valid
    Failed,    //!< body threw (after exhausting the retry budget)
    TimedOut,  //!< cell or run deadline tripped mid-body
    Cancelled, //!< cancel token fired (or cell never claimed)
    Skipped    //!< replayed from a resume journal, body not run
};

/** Stable token for a CellStatus ("ok", "failed", ...). */
const char *cellStatusToken(CellStatus status);

/**
 * Structured outcome of one cell. The engine produces exactly one of
 * these per scheduled cell, whatever happens inside the body — a
 * throwing cell is *contained* here instead of aborting the job set.
 */
struct CellOutcome
{
    CellStatus status = CellStatus::Cancelled;
    std::string label; //!< cell label (diagnostics)
    std::string error; //!< last exception text (Failed only)
    int attempts = 0;  //!< body invocations (retries included)
    double wall_ms = 0.0;
};

/**
 * Resilience section of a spec: per-cell retry budget with
 * exponential backoff plus cell/run deadlines. All default to off so
 * a spec without the section behaves exactly as before.
 */
struct ResilienceSpec
{
    uint64_t retry_budget = 0;     //!< extra attempts per cell
    uint64_t backoff_ms = 10;      //!< base retry backoff (doubles)
    uint64_t cell_deadline_ms = 0; //!< per-cell watchdog (0 = none)
    uint64_t run_deadline_ms = 0;  //!< whole-run watchdog (0 = none)

    bool operator==(const ResilienceSpec &o) const
    {
        return retry_budget == o.retry_budget &&
               backoff_ms == o.backoff_ms &&
               cell_deadline_ms == o.cell_deadline_ms &&
               run_deadline_ms == o.run_deadline_ms;
    }
    bool operator!=(const ResilienceSpec &o) const
    {
        return !(*this == o);
    }
};

/**
 * Deterministic job-set scheduler on the global ThreadPool.
 *
 * Jobs are independent cells; each gets a private telemetry shard
 * (lane = job index) and the shards merge into the root sink in job
 * order after the parallel region, so counters/events are
 * bit-identical for any RTM_THREADS. Jobs are claimed dynamically —
 * there is no barrier between the groups a caller appends, which is
 * what lets matrix and campaign cells interleave.
 *
 * Crash-safety contract: every scheduled cell ends in exactly one
 * CellOutcome. A throwing body is retried per the resilience policy
 * and then recorded as Failed without disturbing the other cells; a
 * cancel token or deadline stops the run cooperatively (in-flight
 * bodies observe their StopFlag, unclaimed cells stay Cancelled);
 * completed cells stream to an attached journal so an interrupted
 * run can resume via replayCell.
 */
class ExperimentEngine
{
  public:
    /**
     * One schedulable cell. `body` receives its telemetry shard plus
     * a StopFlag it should poll at natural checkpoints. `save`/`load`
     * serialize the cell's result slot for journaling/resume; either
     * may be null, which just disables checkpointing for that cell.
     */
    struct Cell
    {
        std::string label;
        std::function<void(TelemetryScope, StopFlag *)> body;
        std::function<JsonValue()> save;
        std::function<bool(const JsonValue &)> load;
        bool replayed = false; //!< load()ed; body will not run
    };

    explicit ExperimentEngine(
        size_t ring_capacity = Telemetry::kDefaultRingCapacity)
        : ring_capacity_(ring_capacity)
    {
    }

    /** Raise the per-shard event-ring capacity (max of requests). */
    void requestRingCapacity(size_t capacity)
    {
        if (capacity > ring_capacity_)
            ring_capacity_ = capacity;
    }

    /** Queue one cell. */
    void addCell(Cell cell) { cells_.push_back(std::move(cell)); }

    /**
     * Queue a legacy cell that ignores cancellation and cannot be
     * checkpointed. The body receives its telemetry shard.
     */
    void addJob(std::function<void(TelemetryScope)> body)
    {
        Cell cell;
        cell.body = [b = std::move(body)](TelemetryScope t,
                                          StopFlag *) { b(t); };
        addCell(std::move(cell));
    }

    size_t jobCount() const { return cells_.size(); }

    /** Cooperative cancel source checked before/inside cells. */
    void setCancelToken(const CancelToken *cancel)
    {
        cancel_ = cancel;
    }

    /** Retry/backoff/deadline policy (defaults: all off). */
    void setResilience(const ResilienceSpec &resilience)
    {
        resilience_ = resilience;
    }

    /**
     * Stream each completed cell to `journal` (already opened, with
     * its header written). The writer is internally locked, so
     * workers append directly as cells finish.
     */
    void setJournal(JournalWriter *journal) { journal_ = journal; }

    /**
     * Test-only fault hook, called as hook(cell_index, attempt)
     * right before each body invocation; a throw from the hook is
     * handled exactly like a throw from the body.
     */
    void setFaultHook(std::function<void(size_t, int)> hook)
    {
        fault_hook_ = std::move(hook);
    }

    /**
     * Per-cell completion callback (worker threads, possibly
     * concurrently — the callback must be thread-safe). Used by
     * tools for progress and by tests to cancel mid-run.
     */
    void setOutcomeCallback(
        std::function<void(size_t, const CellOutcome &)> cb)
    {
        on_outcome_ = std::move(cb);
    }

    /**
     * Restore cell `index` from a journaled result instead of
     * running it: load() fills the result slot now and the cell is
     * recorded as Skipped by run(). Returns false (cell re-runs)
     * when the index is out of range, the cell has no loader, or
     * load() rejects the document.
     */
    bool replayCell(size_t index, const JsonValue &result);

    /**
     * Run every queued non-replayed cell on the global pool, then
     * merge the telemetry shards into `root` in job order. One-shot:
     * the job list is consumed; outcomes() holds one entry per cell
     * afterwards.
     */
    void run(TelemetryScope root);

    /** One outcome per scheduled cell, filled by run(). */
    const std::vector<CellOutcome> &outcomes() const
    {
        return outcomes_;
    }

  private:
    void runCell(Cell &cell, size_t index, TelemetryScope shard,
                 double run_deadline);

    size_t ring_capacity_;
    std::vector<Cell> cells_;
    std::vector<CellOutcome> outcomes_;
    const CancelToken *cancel_ = nullptr;
    ResilienceSpec resilience_;
    JournalWriter *journal_ = nullptr;
    std::function<void(size_t, int)> fault_hook_;
    std::function<void(size_t, const CellOutcome &)> on_outcome_;
};

/** Matrix section of a spec: workloads x (tech, scheme) options. */
struct MatrixSpec
{
    bool enabled = true;
    uint64_t requests = 60000;
    uint64_t warmup = 6000;
    uint64_t divisor = 16; //!< hierarchy/working-set shrink
    uint64_t seed = 42;
    /** Workload names; empty = every parsecProfiles() entry. */
    std::vector<std::string> workloads;
    /** LLC options; empty = standardLlcOptions(). */
    std::vector<LlcOption> options;

    bool operator==(const MatrixSpec &o) const
    {
        return enabled == o.enabled && requests == o.requests &&
               warmup == o.warmup && divisor == o.divisor &&
               seed == o.seed && workloads == o.workloads &&
               options == o.options;
    }
    bool operator!=(const MatrixSpec &o) const
    {
        return !(*this == o);
    }
};

/** Campaign section: fault scenarios x workloads (sim/campaign.hh). */
struct CampaignSpec
{
    bool enabled = false;
    /** Per-cell drill configuration (telemetry wiring ignored). */
    CampaignConfig config;
    /** Scenario list; empty = standardScenarios(). */
    std::vector<ScenarioSpec> scenarios;
    /** Workload names; empty = swaptions, canneal, ferret. */
    std::vector<std::string> workloads;

    bool operator==(const CampaignSpec &o) const;
    bool operator!=(const CampaignSpec &o) const
    {
        return !(*this == o);
    }
};

/**
 * Stress section: the stripe-level fault-injection drill faultsim
 * runs — randomized seeks on one protected stripe with scaled error
 * rates, reconciled against the closed-form ReliabilityModel.
 */
struct StressSpec
{
    bool enabled = false;
    /** Scheme token: baseline | sed | secded | pecc-o | lm-pos |
     *  del-ins-k. */
    std::string scheme = "secded";
    double scale = 500.0; //!< error-rate acceleration
    uint64_t ops = 200000;
    int lseg = 8;
    uint64_t seed = 1;

    bool operator==(const StressSpec &o) const
    {
        return enabled == o.enabled && scheme == o.scheme &&
               scale == o.scale && ops == o.ops &&
               lseg == o.lseg && seed == o.seed;
    }
    bool operator!=(const StressSpec &o) const
    {
        return !(*this == o);
    }
};

/**
 * Monte-Carlo section: one device-level position-error extraction
 * through the batched kernel, with the reproducibility tier as a
 * first-class knob ("exact" = bit-identical to the scalar reference,
 * "fast" = batch-order draws pinned by their own digests).
 */
struct McSpec
{
    bool enabled = false;
    int distance = 7;           //!< steps per shift
    uint64_t trials = 200000;   //!< run() trials
    uint64_t fit_trials = 0;    //!< fitModel trials (0 = skip fit)
    uint64_t seed = 12345;
    std::string tier = "exact"; //!< exact | fast

    bool operator==(const McSpec &o) const
    {
        return enabled == o.enabled && distance == o.distance &&
               trials == o.trials && fit_trials == o.fit_trials &&
               seed == o.seed && tier == o.tier;
    }
    bool operator!=(const McSpec &o) const
    {
        return !(*this == o);
    }
};

/** One declarative experiment: every section plus output sinks. */
struct ExperimentSpec
{
    std::string name = "experiment";
    MatrixSpec matrix;
    CampaignSpec campaign;
    StressSpec stress;
    McSpec montecarlo;
    ResilienceSpec resilience;

    /**
     * Protection-domain policy applied to every racetrack matrix
     * cell (mem/protection.hh): uniform, per-cache-level, or
     * per-address-region codeword geometry and scheme overrides.
     * The default policy is the paper's per-frame configuration —
     * it is omitted from the emitted JSON, so pre-existing specs
     * keep their bytes and their resume-journal hashes.
     */
    ProtectionPolicy protection;

    // Output sinks (empty = disabled).
    std::string metrics_path; //!< telemetry registry JSON
    std::string trace_path;   //!< Chrome trace_event JSON
    std::string output_path;  //!< unified result JSON

    bool operator==(const ExperimentSpec &o) const
    {
        return name == o.name && matrix == o.matrix &&
               campaign == o.campaign && stress == o.stress &&
               montecarlo == o.montecarlo &&
               resilience == o.resilience &&
               protection == o.protection &&
               metrics_path == o.metrics_path &&
               trace_path == o.trace_path &&
               output_path == o.output_path;
    }
    bool operator!=(const ExperimentSpec &o) const
    {
        return !(*this == o);
    }
};

/**
 * SHA-256 of the spec's *result-determining* content: the normalized
 * spec with output sinks cleared and the resilience policy reset,
 * since neither affects any result bit. This is the identity a
 * resume journal is validated against — a journal taken under one
 * retry budget resumes fine under another, but never against a spec
 * whose cells would compute something else.
 */
std::string experimentSpecHash(const ExperimentSpec &spec);

/**
 * Resolve every defaulted axis to its explicit catalogue (empty
 * matrix workloads -> all PARSEC profiles, empty options -> the
 * standard LLC set, empty scenarios -> the standard catalogue, empty
 * campaign workloads -> the faultcampaign trio), so expansion and
 * emission are deterministic and emitted specs are self-contained.
 */
void normalizeExperimentSpec(ExperimentSpec *spec);

/** Emit a (normalized copy of the) spec; parse restores it. */
JsonValue experimentSpecToJson(const ExperimentSpec &spec);

/**
 * Parse a spec document. Returns false with newline-separated
 * dotted-path diagnostics on any malformed, mistyped or unknown
 * field; the result is normalized (parse -> emit -> parse is the
 * identity).
 */
bool experimentSpecFromJson(const JsonValue &doc,
                            ExperimentSpec *spec,
                            std::string *diag);

/** Load + parse a spec file (diagnostics carry the path). */
bool loadExperimentSpec(const std::string &path,
                        ExperimentSpec *spec, std::string *diag);

/** One expanded cell of a spec (flat, schedule-ready). */
struct ExperimentCell
{
    enum class Kind
    {
        Matrix,
        Campaign,
        Stress,
        MonteCarlo
    };

    Kind kind = Kind::Matrix;
    /** Index within the cell's own section (seeding/ordering). */
    size_t local_index = 0;
    std::string workload; //!< matrix/campaign cells
    LlcOption option;     //!< matrix cells
    ScenarioSpec scenario; //!< campaign cells

    /** Short human-readable cell name for diagnostics. */
    std::string label() const;

    bool operator==(const ExperimentCell &o) const
    {
        return kind == o.kind && local_index == o.local_index &&
               workload == o.workload && option == o.option &&
               scenario == o.scenario;
    }
    bool operator!=(const ExperimentCell &o) const
    {
        return !(*this == o);
    }
};

/**
 * Expand a spec into its flat cell list: matrix cells first
 * (workload-major, matching runMatrix), then campaign cells
 * (scenario-major, matching runCampaign), then the stress drill.
 */
std::vector<ExperimentCell>
expandCells(const ExperimentSpec &spec);

/** Outcome of the stress drill (counts vs analytic expectation). */
struct StressResult
{
    Scheme scheme = Scheme::SecdedPecc;
    PeccConfig pecc;
    uint64_t corrected = 0;
    uint64_t due = 0;
    uint64_t silent = 0;
    uint64_t clean = 0;
    double exp_corrected = 0.0;
    double exp_due = 0.0;
    double exp_sdc = 0.0;
    IntTally distances; //!< seek distances driven
};

/**
 * Resolve a stress scheme token to the (scheme, stripe config) pair
 * the drill uses; false when the token names no stress scheme.
 */
bool stressSchemeConfig(const std::string &token, Scheme *scheme,
                        PeccConfig *config);

/** Run the stripe-level drill (spec.enabled is not consulted). */
StressResult runStressDrill(const StressSpec &spec,
                            TelemetryScope telemetry = {},
                            StopFlag *stop = nullptr);

/** Outcome of the Monte-Carlo cell. */
struct McRunResult
{
    int distance = 0;
    uint64_t trials = 0;
    std::string tier = "exact";
    double deviation_mean = 0.0;
    double deviation_stddev = 0.0;
    double step_prob_ok = 0.0;      //!< P(step error 0)
    double step_prob_plus1 = 0.0;   //!< P(step error +1)
    double step_prob_minus1 = 0.0;  //!< P(step error -1)
    bool has_fit = false;
    FittedModelParams fit;          //!< valid when has_fit
};

/** Run the Monte-Carlo cell (spec.enabled is not consulted). */
McRunResult runMcCell(const McSpec &spec,
                      TelemetryScope telemetry = {},
                      StopFlag *stop = nullptr);

/** Everything one spec run produced. */
struct ExperimentResult
{
    ExperimentSpec spec; //!< normalized spec the run used

    bool has_matrix = false;
    std::vector<WorkloadMatrixRow> matrix; //!< one row per workload

    bool has_campaign = false;
    CampaignResult campaign;

    bool has_stress = false;
    StressResult stress;

    bool has_mc = false;
    McRunResult mc;

    size_t cells = 0; //!< total scheduled cells

    /** One structured outcome per scheduled cell (engine order). */
    std::vector<CellOutcome> outcomes;
    uint64_t ok_cells = 0;
    uint64_t failed_cells = 0;
    uint64_t timed_out_cells = 0;
    uint64_t cancelled_cells = 0;
    uint64_t replayed_cells = 0; //!< restored from a resume journal
    /** True when any cell was cancelled or timed out — the result is
     *  incomplete and (with a journal) resumable. */
    bool interrupted = false;

    /** Every cell completed or was replayed — results are final. */
    bool complete() const
    {
        return ok_cells + replayed_cells ==
               static_cast<uint64_t>(cells);
    }
};

/**
 * Cross-run controls for runExperiment: cooperative cancellation,
 * checkpoint streaming, resume, and the test-only fault hook. All
 * default to off, in which case runExperiment behaves exactly as it
 * always has.
 */
struct RunControl
{
    /** Cancel source (signal handlers route here). */
    const CancelToken *cancel = nullptr;
    /** Stream completed cells to this journal ("" = none). */
    std::string stream_path;
    /** Replay completed cells from this journal ("" = fresh run). */
    std::string resume_path;
    /** Test-only per-attempt fault hook (see setFaultHook). */
    std::function<void(size_t, int)> fault_hook;
    /** Per-cell completion callback (thread-safe required). */
    std::function<void(size_t, const CellOutcome &)> on_cell;
};

/**
 * Validate a parsed journal against the run it would resume: header
 * present, spec hash / section seeds / cell count all matching.
 * Returns an empty string when compatible, else a diagnostic.
 */
std::string journalResumeError(const JournalFile &journal,
                               const ExperimentSpec &spec,
                               size_t cells);

/** The journal header a run of `spec` writes. */
JournalHeader makeJournalHeader(const ExperimentSpec &spec,
                                size_t cells);

/**
 * Run a whole spec on the engine: every enabled section expands into
 * cells scheduled as ONE job set (matrix and campaign cells
 * interleave on the pool), bit-identical at any RTM_THREADS.
 *
 * With `control`, the run is crash-safe end to end: a cell that
 * throws is retried per spec.resilience and contained as a Failed
 * outcome, completed cells stream to control.stream_path, a prior
 * journal replays via control.resume_path (skipping its cells and
 * reproducing the bit-identical merge), and control.cancel plus the
 * resilience deadlines stop the run cooperatively.
 *
 * @param model position-error model for matrix cells; null uses the
 *              paper-calibrated model. Campaign/stress cells build
 *              their own scaled models per cell, as always.
 */
ExperimentResult runExperiment(const ExperimentSpec &spec,
                               const PositionErrorModel *model =
                                   nullptr,
                               TelemetryScope telemetry = {},
                               const RunControl &control = {});

/** One matrix cell result as JSON (journal/result schema). */
JsonValue simResultToJson(const std::string &workload,
                          const LlcOption &opt, const SimResult &r);

/** Restore a matrix cell result; false on a malformed document. */
bool simResultFromJson(const JsonValue &doc, SimResult *out);

/**
 * SHA-256 over the result *sections* only (matrix/campaign/stress/
 * montecarlo, compact JSON) — the replay identity. Two runs of the
 * same spec produce the same digest whether executed in one pass or
 * killed and resumed, at any RTM_THREADS.
 */
std::string experimentResultDigest(const ExperimentResult &result);

/** The unified result document (spec + per-section results). */
JsonValue experimentResultToJson(const ExperimentResult &result);

/** Write experimentResultToJson; false on I/O error. */
bool writeExperimentJson(const ExperimentResult &result,
                         const std::string &path);

} // namespace rtm

#endif // RTM_SIM_EXPERIMENT_HH
