#include "campaign.hh"

#include "model/tech.hh"
#include "sim/experiment.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/stats_serde.hh"

namespace rtm
{

namespace
{

/** SplitMix64 finaliser: cell seeds from (campaign seed, index). */
uint64_t
mixSeed(uint64_t seed, uint64_t index)
{
    uint64_t z = seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

void
CampaignLedger::merge(const CampaignLedger &other)
{
    accesses += other.accesses;
    injected_samples += other.injected_samples;
    injected_faults += other.injected_faults;
    injected_step_errors += other.injected_step_errors;
    injected_stops += other.injected_stops;
    detected += other.detected;
    corrected += other.corrected;
    recovered_retry += other.recovered_retry;
    recovered_realign += other.recovered_realign;
    recovered_scrub += other.recovered_scrub;
    due += other.due;
    sdc += other.sdc;
}

CampaignCellResult
runFaultDrill(const ScenarioSpec &spec,
              const WorkloadProfile &profile,
              const CampaignConfig &config, uint64_t cell_seed,
              TelemetryScope telemetry, StopFlag *stop)
{
    // Cooperative cancellation stride for both drill loops.
    constexpr uint64_t kStopPollMask = 255;
    ScopedPhase cell_phase("campaign.cell");
    const double cell_start = telemetry ? telemetryNowSeconds() : 0.0;
    CampaignCellResult res;
    res.scenario = spec.name;
    res.workload = profile.name;

    auto base = std::make_shared<PaperCalibratedErrorModel>();
    auto scaled =
        std::make_shared<ScaledErrorModel>(base, config.scale);
    std::unique_ptr<FaultScenario> scenario =
        makeScenario(spec, scaled);

    Rng cell_rng(cell_seed);
    ShiftController ctl(config.pecc, scenario.get(), config.policy,
                        config.peak_ops_per_second, cell_rng.fork(),
                        kDefaultSafeMttfSeconds, config.recovery,
                        telemetry);
    ctl.initialize();

    WorkloadGenerator gen(profile, config.workload_cores,
                          mixSeed(cell_seed, 1));
    const int num_segments = config.pecc.num_segments;
    const int seg_len = config.pecc.seg_len;
    LatencyHistogram *t_lat =
        telemetry ? &telemetry->histogram(
                        "campaign.access_latency_cycles",
                        powerOfTwoEdges(65536.0))
                  : nullptr;
    uint64_t seen_injected = 0;
    Cycles now = 0;
    Cycles prev_recovery = 0;
    for (uint64_t i = 0; i < config.accesses_per_cell; ++i) {
        if (stop && (i & kStopPollMask) == 0 && stop->poll())
            return res;
        MemRequest req = gen.next();
        uint64_t line = req.addr / 64;
        int seg = static_cast<int>(
            line % static_cast<uint64_t>(num_segments));
        int idx = static_cast<int>(
            (line / static_cast<uint64_t>(num_segments)) %
            static_cast<uint64_t>(seg_len));
        AccessResult r =
            req.is_write
                ? ctl.write(seg, idx,
                            (i & 1) ? Bit::One : Bit::Zero, now)
                : ctl.read(seg, idx, now);
        now += r.latency + req.gap_instructions + 1;
        res.access_latency.add(static_cast<double>(r.latency));
        if (telemetry) {
            t_lat->record(static_cast<double>(r.latency));
            // Ground-truth injections that landed during this
            // access: one ErrorInjected event each, reconciled
            // against the scenario ledger by the tests.
            const InjectionLedger &il = scenario->ledger();
            for (; seen_injected < il.injected; ++seen_injected)
                telemetry->event(EventKind::ErrorInjected,
                                 "scenario", now,
                                 static_cast<double>(i));
        }
        const ControllerStats &cs = ctl.stats();
        if (cs.recovery_cycles > prev_recovery) {
            res.recovery_latency.add(static_cast<double>(
                cs.recovery_cycles - prev_recovery));
            prev_recovery = cs.recovery_cycles;
        }
        // Containment action: a reported DUE (or a ground-truth
        // misalignment the code missed — an SDC, already counted by
        // the controller) invalidates the stripe; model the
        // refetch-from-below by rebuilding at home alignment.
        if (r.due || !r.position_ok)
            ctl.initialize();
    }

    const ControllerStats &cs = ctl.stats();
    const InjectionLedger &inj = scenario->ledger();
    res.controller = cs;
    res.ledger.accesses = config.accesses_per_cell;
    res.ledger.injected_samples = inj.samples;
    res.ledger.injected_faults = inj.injected;
    res.ledger.injected_step_errors = inj.step_errors;
    res.ledger.injected_stops = inj.stop_in_middle;
    res.ledger.detected = cs.detected_errors;
    res.ledger.corrected = cs.corrected_errors;
    res.ledger.recovered_retry = cs.recovered_retry;
    res.ledger.recovered_realign = cs.recovered_realign;
    res.ledger.recovered_scrub = cs.recovered_scrub;
    res.ledger.due = cs.unrecoverable;
    res.ledger.sdc = cs.silent_errors;

    // Bank degradation drill: the same scaled model drives an RmBank
    // with injected DUE reports; the bank must degrade gracefully and
    // keep its per-group ledger consistent.
    RmBankConfig bank_config;
    bank_config.line_frames = config.bank_frames;
    bank_config.scheme = Scheme::PeccSAdaptive;
    bank_config.group_retry_budget = config.group_retry_budget;
    // Fault scenarios perturb bank state mid-run; exercise the live
    // planner rather than the steady-state plan memo.
    bank_config.use_plan_memo = false;
    bank_config.telemetry = telemetry;
    TechParams tech = l3For(MemTech::Racetrack);
    RmBank bank(bank_config, scaled.get(), tech);
    Rng bank_rng(mixSeed(cell_seed, 2));
    Cycles bank_now = 0;
    for (uint64_t i = 0; i < config.accesses_per_cell; ++i) {
        if (stop && (i & kStopPollMask) == 0 && stop->poll())
            return res;
        uint64_t frame = bank_rng.uniformInt(config.bank_frames);
        ShiftCost c = bank.accessFrame(frame, bank_now);
        bank_now += c.latency + 4;
        if (bank_rng.bernoulli(config.bank_due_prob))
            bank.reportUnrecoverable(frame);
    }
    res.bank_due_reports = bank.stats().due_reports;
    res.bank_degraded_groups = bank.stats().degraded_groups;
    res.bank_remapped_accesses = bank.stats().remapped_accesses;
    res.degraded_capacity_fraction = bank.degradedCapacityFraction();

    // Containment checks: every injected fault must be accounted, the
    // ledgers must reconcile, and the cell must end aligned.
    res.violation = controllerLedgerViolation(cs);
    if (res.violation.empty())
        res.violation = bank.ledgerViolation();
    if (res.violation.empty() && cs.detected_errors > inj.injected)
        res.violation = "more detections than injected faults";
    if (res.violation.empty() &&
        ctl.stripe().positionError() != 0) {
        res.violation = "cell ended misaligned";
    }
    res.contained = res.violation.empty();

    if (telemetry) {
        // Counters exported from the reconciled ledger itself — one
        // source of truth, two views — so the JSON export can never
        // disagree with CampaignResult totals.
        Telemetry &t = *telemetry.get();
        t.counter("campaign.cells").add();
        t.counter("campaign.accesses").add(res.ledger.accesses);
        t.counter("campaign.injected_faults")
            .add(res.ledger.injected_faults);
        t.counter("campaign.detected").add(res.ledger.detected);
        t.counter("campaign.corrected").add(res.ledger.corrected);
        t.counter("campaign.recovered_retry")
            .add(res.ledger.recovered_retry);
        t.counter("campaign.recovered_realign")
            .add(res.ledger.recovered_realign);
        t.counter("campaign.recovered_scrub")
            .add(res.ledger.recovered_scrub);
        t.counter("campaign.due").add(res.ledger.due);
        t.counter("campaign.sdc").add(res.ledger.sdc);
        t.counter("campaign.bank.due_reports")
            .add(res.bank_due_reports);
        t.counter("campaign.bank.degraded_groups")
            .add(res.bank_degraded_groups);
        t.counter("campaign.bank.remapped_accesses")
            .add(res.bank_remapped_accesses);
        if (!res.contained)
            t.counter("campaign.violations").add();
        const double wall = telemetryNowSeconds() - cell_start;
        t.histogram("campaign.cell_wall_ms", powerOfTwoEdges(65536.0))
            .record(wall * 1e3);
        t.event(EventKind::Span, "campaign.cell",
                static_cast<uint64_t>(cell_start * 1e6), wall * 1e6);
    }
    return res;
}

void
appendCampaignJobs(ExperimentEngine &engine, CampaignResult *out,
                   const std::vector<ScenarioSpec> &scenarios,
                   const std::vector<WorkloadProfile> &profiles,
                   const CampaignConfig &config)
{
    // One cell per slot: the seed depends only on (campaign seed,
    // cell index), so any RTM_THREADS — and any interleaving with
    // other jobs on the engine — produces identical results.
    const size_t n = scenarios.size() * profiles.size();
    const size_t base = out->cells.size();
    out->cells.resize(base + n);
    for (size_t i = 0; i < n; ++i) {
        const size_t si = i / profiles.size();
        const size_t wi = i % profiles.size();
        CampaignCellResult *slot = &out->cells[base + i];
        const ScenarioSpec spec = scenarios[si];
        const WorkloadProfile profile = profiles[wi];
        const uint64_t cell_seed = mixSeed(config.seed, i);
        const CampaignConfig cell_config = config;
        ExperimentEngine::Cell cell;
        cell.label = spec.name + "/" + profile.name;
        cell.body = [slot, spec, profile, cell_config,
                     cell_seed](TelemetryScope shard,
                                StopFlag *stop) {
            *slot = runFaultDrill(spec, profile, cell_config,
                                  cell_seed, shard, stop);
        };
        cell.save = [slot] { return campaignCellToJson(*slot); };
        cell.load = [slot](const JsonValue &doc) {
            return campaignCellFromJson(doc, slot);
        };
        engine.addCell(std::move(cell));
    }
}

void
finalizeCampaignTotals(CampaignResult *out)
{
    out->totals = CampaignLedger();
    out->contained_cells = 0;
    for (const CampaignCellResult &cell : out->cells) {
        out->totals.merge(cell.ledger);
        if (cell.contained)
            ++out->contained_cells;
    }
}

CampaignResult
runCampaign(const std::vector<ScenarioSpec> &scenarios,
            const std::vector<std::string> &workloads,
            const CampaignConfig &config)
{
    ScopedPhase run_phase("campaign.run");
    if (scenarios.empty() || workloads.empty())
        rtm_fatal("campaign needs at least one scenario/workload");
    std::vector<WorkloadProfile> profiles;
    profiles.reserve(workloads.size());
    for (const std::string &name : workloads)
        profiles.push_back(parsecProfile(name));

    CampaignResult out;
    ExperimentEngine engine(config.telemetry_ring_capacity);
    appendCampaignJobs(engine, &out, scenarios, profiles, config);
    engine.run(config.telemetry);
    finalizeCampaignTotals(&out);
    return out;
}

namespace
{

JsonValue
ledgerToJson(const CampaignLedger &l)
{
    JsonValue v = JsonValue::object();
    v.set("accesses", l.accesses);
    v.set("injected_samples", l.injected_samples);
    v.set("injected_faults", l.injected_faults);
    v.set("injected_step_errors", l.injected_step_errors);
    v.set("injected_stops", l.injected_stops);
    v.set("detected", l.detected);
    v.set("corrected", l.corrected);
    v.set("recovered_retry", l.recovered_retry);
    v.set("recovered_realign", l.recovered_realign);
    v.set("recovered_scrub", l.recovered_scrub);
    v.set("due", l.due);
    v.set("sdc", l.sdc);
    return v;
}

bool
ledgerFromJson(const JsonValue &doc, CampaignLedger *out)
{
    if (!doc.isObject())
        return false;
    CampaignLedger l;
    auto u64 = [&doc](const char *key, uint64_t *field) {
        if (const JsonValue *v = doc.find(key))
            *field = v->asU64();
    };
    u64("accesses", &l.accesses);
    u64("injected_samples", &l.injected_samples);
    u64("injected_faults", &l.injected_faults);
    u64("injected_step_errors", &l.injected_step_errors);
    u64("injected_stops", &l.injected_stops);
    u64("detected", &l.detected);
    u64("corrected", &l.corrected);
    u64("recovered_retry", &l.recovered_retry);
    u64("recovered_realign", &l.recovered_realign);
    u64("recovered_scrub", &l.recovered_scrub);
    u64("due", &l.due);
    u64("sdc", &l.sdc);
    *out = l;
    return true;
}

JsonValue
controllerStatsToJson(const ControllerStats &s)
{
    JsonValue v = JsonValue::object();
    v.set("accesses", s.accesses);
    v.set("shift_ops", s.shift_ops);
    v.set("shift_steps", s.shift_steps);
    v.set("detected_errors", s.detected_errors);
    v.set("corrected_errors", s.corrected_errors);
    v.set("unrecoverable", s.unrecoverable);
    v.set("silent_errors", s.silent_errors);
    v.set("busy_cycles", static_cast<uint64_t>(s.busy_cycles));
    v.set("distance_histogram",
          intTallyToJson(s.distance_histogram));
    v.set("retry_attempts", s.retry_attempts);
    v.set("sts_realigns", s.sts_realigns);
    v.set("scrubs", s.scrubs);
    v.set("recovered_retry", s.recovered_retry);
    v.set("recovered_realign", s.recovered_realign);
    v.set("recovered_scrub", s.recovered_scrub);
    v.set("recovery_cycles",
          static_cast<uint64_t>(s.recovery_cycles));
    return v;
}

bool
controllerStatsFromJson(const JsonValue &doc, ControllerStats *out)
{
    if (!doc.isObject())
        return false;
    ControllerStats s;
    auto u64 = [&doc](const char *key, uint64_t *field) {
        if (const JsonValue *v = doc.find(key))
            *field = v->asU64();
    };
    u64("accesses", &s.accesses);
    u64("shift_ops", &s.shift_ops);
    u64("shift_steps", &s.shift_steps);
    u64("detected_errors", &s.detected_errors);
    u64("corrected_errors", &s.corrected_errors);
    u64("unrecoverable", &s.unrecoverable);
    u64("silent_errors", &s.silent_errors);
    u64("busy_cycles", &s.busy_cycles);
    u64("retry_attempts", &s.retry_attempts);
    u64("sts_realigns", &s.sts_realigns);
    u64("scrubs", &s.scrubs);
    u64("recovered_retry", &s.recovered_retry);
    u64("recovered_realign", &s.recovered_realign);
    u64("recovered_scrub", &s.recovered_scrub);
    u64("recovery_cycles", &s.recovery_cycles);
    if (const JsonValue *h = doc.find("distance_histogram"))
        if (!intTallyFromJson(*h, &s.distance_histogram))
            return false;
    *out = std::move(s);
    return true;
}

} // anonymous namespace

JsonValue
campaignCellToJson(const CampaignCellResult &cell)
{
    JsonValue v = JsonValue::object();
    v.set("scenario", cell.scenario);
    v.set("workload", cell.workload);
    v.set("ledger", ledgerToJson(cell.ledger));
    v.set("controller", controllerStatsToJson(cell.controller));
    v.set("access_latency",
          runningStatsToJson(cell.access_latency));
    v.set("recovery_latency",
          runningStatsToJson(cell.recovery_latency));
    v.set("bank_due_reports", cell.bank_due_reports);
    v.set("bank_degraded_groups", cell.bank_degraded_groups);
    v.set("bank_remapped_accesses", cell.bank_remapped_accesses);
    v.set("degraded_capacity_fraction",
          cell.degraded_capacity_fraction);
    v.set("contained", cell.contained);
    v.set("violation", cell.violation);
    return v;
}

bool
campaignCellFromJson(const JsonValue &doc, CampaignCellResult *out)
{
    if (!doc.isObject())
        return false;
    const JsonValue *scenario = doc.find("scenario");
    const JsonValue *workload = doc.find("workload");
    const JsonValue *ledger = doc.find("ledger");
    const JsonValue *controller = doc.find("controller");
    const JsonValue *access = doc.find("access_latency");
    const JsonValue *recovery = doc.find("recovery_latency");
    const JsonValue *contained = doc.find("contained");
    if (!scenario || !scenario->isString() || !workload ||
        !workload->isString() || !ledger || !controller ||
        !access || !recovery || !contained ||
        !contained->isBool())
        return false;
    CampaignCellResult cell;
    cell.scenario = scenario->asString();
    cell.workload = workload->asString();
    if (!ledgerFromJson(*ledger, &cell.ledger) ||
        !controllerStatsFromJson(*controller, &cell.controller) ||
        !runningStatsFromJson(*access, &cell.access_latency) ||
        !runningStatsFromJson(*recovery, &cell.recovery_latency))
        return false;
    if (const JsonValue *v = doc.find("bank_due_reports"))
        cell.bank_due_reports = v->asU64();
    if (const JsonValue *v = doc.find("bank_degraded_groups"))
        cell.bank_degraded_groups = v->asU64();
    if (const JsonValue *v = doc.find("bank_remapped_accesses"))
        cell.bank_remapped_accesses = v->asU64();
    if (const JsonValue *v = doc.find("degraded_capacity_fraction"))
        cell.degraded_capacity_fraction = v->asDouble();
    cell.contained = contained->asBool();
    if (const JsonValue *v = doc.find("violation"))
        cell.violation = v->asString();
    *out = std::move(cell);
    return true;
}

JsonValue
campaignResultToJson(const CampaignResult &result)
{
    JsonValue doc = JsonValue::object();
    JsonValue cells = JsonValue::array();
    for (const CampaignCellResult &c : result.cells) {
        const CampaignLedger &l = c.ledger;
        JsonValue v = JsonValue::object();
        v.set("scenario", c.scenario);
        v.set("workload", c.workload);
        v.set("accesses", l.accesses);
        v.set("injected_faults", l.injected_faults);
        v.set("detected", l.detected);
        v.set("corrected", l.corrected);
        v.set("recovered_retry", l.recovered_retry);
        v.set("recovered_realign", l.recovered_realign);
        v.set("recovered_scrub", l.recovered_scrub);
        v.set("due", l.due);
        v.set("sdc", l.sdc);
        v.set("mean_access_cycles", c.access_latency.mean());
        v.set("mean_recovery_cycles", c.recovery_latency.mean());
        v.set("bank_degraded_groups", c.bank_degraded_groups);
        v.set("degraded_capacity_fraction",
              c.degraded_capacity_fraction);
        v.set("contained", c.contained);
        v.set("violation", c.violation);
        cells.push(std::move(v));
    }
    doc.set("cells", std::move(cells));
    const CampaignLedger &t = result.totals;
    JsonValue totals = JsonValue::object();
    totals.set("accesses", t.accesses);
    totals.set("injected_samples", t.injected_samples);
    totals.set("injected_faults", t.injected_faults);
    totals.set("injected_step_errors", t.injected_step_errors);
    totals.set("injected_stops", t.injected_stops);
    totals.set("detected", t.detected);
    totals.set("corrected", t.corrected);
    totals.set("recovered_retry", t.recovered_retry);
    totals.set("recovered_realign", t.recovered_realign);
    totals.set("recovered_scrub", t.recovered_scrub);
    totals.set("due", t.due);
    totals.set("sdc", t.sdc);
    doc.set("totals", std::move(totals));
    doc.set("contained_cells", result.contained_cells);
    doc.set("total_cells",
            static_cast<uint64_t>(result.cells.size()));
    doc.set("containment_coverage",
            result.cells.empty()
                ? 1.0
                : static_cast<double>(result.contained_cells) /
                      static_cast<double>(result.cells.size()));
    return doc;
}

bool
writeCampaignJson(const CampaignResult &result,
                  const std::string &path)
{
    return saveJsonFile(path, campaignResultToJson(result));
}

} // namespace rtm
