#include "reference.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace rtm
{

namespace
{

constexpr int kLineBytes = 64;

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

// --- RefCache: the seed division/modulo tag array --------------------

RefCache::RefCache(uint64_t capacity_bytes, int associativity,
                   int line_bytes)
    : capacity_(capacity_bytes), ways_(associativity),
      line_bytes_(line_bytes)
{
    if (ways_ < 1)
        rtm_fatal("cache needs at least one way");
    if (!isPowerOfTwo(static_cast<uint64_t>(line_bytes_)))
        rtm_fatal("line size must be a power of two");
    uint64_t lines = capacity_ / static_cast<uint64_t>(line_bytes_);
    if (lines == 0 || lines % static_cast<uint64_t>(ways_) != 0)
        rtm_fatal("capacity %llu not divisible into %d-way sets",
                  static_cast<unsigned long long>(capacity_), ways_);
    sets_ = lines / static_cast<uint64_t>(ways_);
    if (!isPowerOfTwo(sets_))
        rtm_fatal("set count must be a power of two");
    lines_.assign(lines, Line{});
}

uint64_t
RefCache::setOf(Addr addr) const
{
    return (addr / static_cast<uint64_t>(line_bytes_)) & (sets_ - 1);
}

Addr
RefCache::tagOf(Addr addr) const
{
    return addr / static_cast<uint64_t>(line_bytes_) / sets_;
}

Addr
RefCache::lineAddr(Addr tag, uint64_t set) const
{
    return (tag * sets_ + set) * static_cast<uint64_t>(line_bytes_);
}

RefCache::Line &
RefCache::line(uint64_t set, int way)
{
    return lines_[set * static_cast<uint64_t>(ways_) +
                  static_cast<uint64_t>(way)];
}

const RefCache::Line &
RefCache::line(uint64_t set, int way) const
{
    return lines_[set * static_cast<uint64_t>(ways_) +
                  static_cast<uint64_t>(way)];
}

bool
RefCache::contains(Addr addr) const
{
    uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    for (int w = 0; w < ways_; ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

CacheAccessResult
RefCache::access(Addr addr, bool is_write)
{
    ++tick_;
    uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    CacheAccessResult res;

    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    int victim = 0;
    bool victim_invalid = false;
    uint64_t oldest = UINT64_MAX;
    for (int w = 0; w < ways_; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            l.lru = tick_;
            if (is_write)
                l.dirty = true;
            res.hit = true;
            res.frame_index = set * static_cast<uint64_t>(ways_) +
                              static_cast<uint64_t>(w);
            return res;
        }
        if (!l.valid) {
            if (!victim_invalid) {
                victim = w;
                victim_invalid = true;
            }
        } else if (!victim_invalid && l.lru < oldest) {
            victim = w;
            oldest = l.lru;
        }
    }

    if (is_write)
        ++stats_.write_misses;
    else
        ++stats_.read_misses;

    Line &v = line(set, victim);
    if (v.valid && v.dirty) {
        res.writeback = true;
        res.victim_addr = lineAddr(v.tag, set);
        ++stats_.writebacks;
    }
    v.valid = true;
    v.dirty = is_write;
    v.tag = tag;
    v.lru = tick_;
    res.frame_index = set * static_cast<uint64_t>(ways_) +
                      static_cast<uint64_t>(victim);
    return res;
}

void
RefCache::flush()
{
    for (auto &l : lines_)
        l = Line{};
}

// --- RefWorkloadGenerator: the seed log/modulo stream ----------------

RefWorkloadGenerator::RefWorkloadGenerator(
    const WorkloadProfile &profile, int cores, uint64_t seed)
    : profile_(profile), cores_(cores), rng_(seed),
      run_addr_(static_cast<size_t>(cores), 0),
      run_left_(static_cast<size_t>(cores), 0)
{
    if (cores_ < 1)
        rtm_fatal("workload needs at least one core");
    if (profile_.working_set_bytes < kLineBytes * 16ull)
        rtm_fatal("working set too small");
}

Addr
RefWorkloadGenerator::pickLine(int core)
{
    uint64_t lines = profile_.working_set_bytes / kLineBytes;
    uint64_t private_lines = lines * 3 / 4 /
                             static_cast<uint64_t>(cores_);
    uint64_t shared_lines = lines - private_lines *
                            static_cast<uint64_t>(cores_);
    bool shared = rng_.bernoulli(0.25) && shared_lines > 0;
    uint64_t region_base =
        shared ? private_lines * static_cast<uint64_t>(cores_)
               : private_lines * static_cast<uint64_t>(core);
    uint64_t region_lines = shared ? shared_lines : private_lines;
    if (region_lines == 0) {
        region_base = 0;
        region_lines = lines;
    }

    uint64_t hot_lines = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(region_lines) *
               profile_.hot_set_ratio));
    uint64_t idx;
    if (rng_.bernoulli(profile_.hot_fraction))
        idx = rng_.uniformInt(hot_lines);
    else
        idx = rng_.uniformInt(region_lines);
    return (region_base + idx) * kLineBytes;
}

MemRequest
RefWorkloadGenerator::next()
{
    int core = next_core_;
    next_core_ = (next_core_ + 1) % cores_;

    MemRequest req;
    req.core = core;
    req.is_write = rng_.bernoulli(profile_.write_ratio);
    double u = rng_.uniform();
    double gap = -profile_.mean_gap * std::log(1.0 - u);
    req.gap_instructions =
        static_cast<uint32_t>(std::min(gap, 1000.0));

    auto c = static_cast<size_t>(core);
    if (run_left_[c] > 0 &&
        rng_.bernoulli(profile_.sequential_prob)) {
        run_addr_[c] += kLineBytes;
        if (run_addr_[c] >= profile_.working_set_bytes)
            run_addr_[c] = 0;
        --run_left_[c];
    } else {
        run_addr_[c] = pickLine(core);
        run_left_[c] = static_cast<int>(rng_.uniformInt(16)) + 1;
    }
    req.addr = run_addr_[c];
    return req;
}

// --- ReferenceHierarchy ----------------------------------------------

ReferenceHierarchy::ReferenceHierarchy(const HierarchyConfig &config,
                                       const PositionErrorModel *model)
    : config_(config), l1_params_(l1Params()), l2_params_(l2Params()),
      l3_params_(l3For(config.llc_tech)), dram_(dramParams())
{
    if (config_.cores < 1)
        rtm_fatal("hierarchy needs at least one core");
    if (config_.capacity_divisor == 0)
        rtm_fatal("capacity divisor must be >= 1");
    l1_params_.capacity_bytes /= config_.capacity_divisor;
    l2_params_.capacity_bytes /= config_.capacity_divisor;
    l3_params_.capacity_bytes /= config_.capacity_divisor;
    for (int c = 0; c < config_.cores; ++c) {
        l1_.push_back(std::make_unique<RefCache>(
            l1_params_.capacity_bytes, config_.l1_ways,
            config_.line_bytes));
    }
    int clusters = (config_.cores + 1) / 2;
    for (int cl = 0; cl < clusters; ++cl) {
        l2_.push_back(std::make_unique<RefCache>(
            l2_params_.capacity_bytes, config_.l2_ways,
            config_.line_bytes));
    }
    l3_ = std::make_unique<RefCache>(l3_params_.capacity_bytes,
                                     config_.llc_ways,
                                     config_.line_bytes);

    if (config_.llc_tech == MemTech::Racetrack ||
        config_.llc_tech == MemTech::RacetrackIdeal) {
        if (!model)
            rtm_fatal("racetrack LLC needs a position-error model");
        RmBankConfig bank;
        bank.line_frames = l3_params_.capacity_bytes /
                           static_cast<uint64_t>(config_.line_bytes);
        bank.frames_per_group = config_.frames_per_group;
        bank.seg_len = config_.seg_len;
        bank.scheme = config_.scheme;
        bank.mttf_target_s = config_.mttf_target_s;
        bank.head_policy = config_.head_policy;
        bank.placement = config_.placement;
        bank.model_contention = config_.model_contention;
        // The whole point: every access re-plans and re-folds live.
        bank.use_plan_memo = false;
        rm_bank_ = std::make_unique<RmBank>(bank, model, l3_params_);
    }
}

double
ReferenceHierarchy::totalLeakageWatts() const
{
    double watts = l1_params_.leakage_watts *
                   static_cast<double>(config_.cores);
    watts += l2_params_.leakage_watts *
             static_cast<double>(l2_.size());
    watts += l3_params_.leakage_watts;
    return watts;
}

HierarchyAccess
ReferenceHierarchy::access(int core, Addr addr, bool is_write,
                           Cycles now)
{
    HierarchyAccess out;

    RefCache &l1c = *l1_[static_cast<size_t>(core)];
    CacheAccessResult r1 = l1c.access(addr, is_write);
    out.latency += is_write ? l1_params_.write_latency
                            : l1_params_.read_latency;
    out.energy += is_write ? l1_params_.write_energy
                           : l1_params_.read_energy;
    if (r1.hit) {
        out.l1_hit = true;
        return out;
    }
    RefCache &l2c = *l2_[static_cast<size_t>(core / 2)];
    if (r1.writeback) {
        l2c.access(r1.victim_addr, true);
        out.energy += l2_params_.write_energy;
    }

    CacheAccessResult r2 = l2c.access(addr, is_write);
    out.latency += is_write ? l2_params_.write_latency
                            : l2_params_.read_latency;
    out.energy += is_write ? l2_params_.write_energy
                           : l2_params_.read_energy;
    if (r2.hit) {
        out.l2_hit = true;
        return out;
    }

    CacheAccessResult r3 = l3_->access(addr, is_write);
    out.latency += is_write ? l3_params_.write_latency
                            : l3_params_.read_latency;
    out.energy += is_write ? l3_params_.write_energy
                           : l3_params_.read_energy;
    if (rm_bank_) {
        ShiftCost shift = rm_bank_->accessFrame(r3.frame_index, now);
        if (config_.llc_tech == MemTech::Racetrack) {
            out.latency += shift.latency;
            out.shift_cycles = shift.latency;
            out.energy += shift.energy;
        }
    }
    if (r2.writeback) {
        CacheAccessResult wb = l3_->access(r2.victim_addr, true);
        out.energy += l3_params_.write_energy;
        if (rm_bank_) {
            ShiftCost shift =
                rm_bank_->accessFrame(wb.frame_index, now);
            if (config_.llc_tech == MemTech::Racetrack)
                out.energy += shift.energy;
        }
        if (wb.writeback) {
            ++dram_accesses_;
            dram_energy_ += dram_.access_energy;
        }
    }
    if (r3.hit) {
        out.l3_hit = true;
        return out;
    }

    out.dram_access = true;
    ++dram_accesses_;
    out.latency += dram_.access_latency;
    out.energy += dram_.access_energy;
    dram_energy_ += dram_.access_energy;
    if (r3.writeback) {
        ++dram_accesses_;
        dram_energy_ += dram_.access_energy;
        out.energy += dram_.access_energy;
    }
    return out;
}

// --- referenceSimulate -----------------------------------------------

SimResult
referenceSimulate(const WorkloadProfile &profile,
                  const SimConfig &config,
                  const PositionErrorModel *model)
{
    ReferenceHierarchy hierarchy(config.hierarchy, model);
    RefWorkloadGenerator gen(profile, config.hierarchy.cores,
                             config.seed);

    std::vector<Cycles> core_time(
        static_cast<size_t>(config.hierarchy.cores), 0);

    SimResult res;
    res.workload = profile.name;
    res.llc_tech = config.hierarchy.llc_tech;
    res.scheme = config.hierarchy.scheme;

    for (uint64_t i = 0; i < config.warmup_requests; ++i) {
        MemRequest req = gen.next();
        auto c = static_cast<size_t>(req.core);
        core_time[c] += req.gap_instructions;
        HierarchyAccess acc = hierarchy.access(
            req.core, req.addr, req.is_write, core_time[c]);
        core_time[c] += acc.latency;
    }

    uint64_t warm_l3_acc = hierarchy.l3().stats().accesses();
    uint64_t warm_l3_miss = hierarchy.l3().stats().misses();
    uint64_t warm_dram = hierarchy.dramAccesses();
    Joules warm_dram_energy = hierarchy.dramEnergy();
    RmBankStats warm_rm;
    if (hierarchy.rmBank())
        warm_rm = hierarchy.rmBank()->stats();
    std::vector<Cycles> start_time = core_time;

    Joules dynamic_energy = 0.0;
    for (uint64_t i = 0; i < config.mem_requests; ++i) {
        MemRequest req = gen.next();
        auto c = static_cast<size_t>(req.core);
        core_time[c] += req.gap_instructions;
        res.instructions += req.gap_instructions + 1;
        ++res.mem_ops;
        HierarchyAccess acc = hierarchy.access(
            req.core, req.addr, req.is_write, core_time[c]);
        core_time[c] += acc.latency;
        dynamic_energy += acc.energy;
    }

    Cycles max_elapsed = 0;
    for (size_t c = 0; c < core_time.size(); ++c)
        max_elapsed = std::max(max_elapsed,
                               core_time[c] - start_time[c]);
    res.cycles = max_elapsed;
    res.seconds = cyclesToSeconds(res.cycles);

    res.cache_dynamic_energy = dynamic_energy;
    res.dram_energy = hierarchy.dramEnergy() - warm_dram_energy;
    res.leakage_energy = hierarchy.totalLeakageWatts() * res.seconds;

    res.llc_accesses = hierarchy.l3().stats().accesses() -
                       warm_l3_acc;
    res.llc_misses = hierarchy.l3().stats().misses() - warm_l3_miss;
    res.dram_accesses = hierarchy.dramAccesses() - warm_dram;

    if (const RmBank *bank = hierarchy.rmBank()) {
        const RmBankStats &s = bank->stats();
        res.shift_ops = s.shift_ops - warm_rm.shift_ops;
        res.shift_steps = s.shift_steps - warm_rm.shift_steps;
        res.shift_cycles = s.shift_cycles - warm_rm.shift_cycles;
        res.llc_shift_energy = s.shift_energy - warm_rm.shift_energy;

        MttfAccumulator rel = s.reliability;
        MttfAccumulator warm_rel = warm_rm.reliability;
        double sdc = rel.expectedSdc() - warm_rel.expectedSdc();
        double due = rel.expectedDue() - warm_rel.expectedDue();
        res.sdc_mttf = sdc > 0.0
                           ? res.seconds / sdc
                           : std::numeric_limits<double>::infinity();
        res.due_mttf = due > 0.0
                           ? res.seconds / due
                           : std::numeric_limits<double>::infinity();
    } else {
        res.sdc_mttf = std::numeric_limits<double>::infinity();
        res.due_mttf = std::numeric_limits<double>::infinity();
    }
    return res;
}

} // namespace rtm
