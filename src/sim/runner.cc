#include "runner.hh"

#include <cmath>

#include "util/logging.hh"

namespace rtm
{

std::vector<LlcOption>
standardLlcOptions()
{
    return {
        {"SRAM", MemTech::SRAM, Scheme::Baseline},
        {"STT-RAM", MemTech::STTRAM, Scheme::Baseline},
        {"RM-Ideal", MemTech::RacetrackIdeal, Scheme::Baseline},
        {"RM w/o p-ECC", MemTech::Racetrack, Scheme::Baseline},
        {"RM p-ECC-O", MemTech::Racetrack, Scheme::PeccO},
        {"RM p-ECC-S adaptive", MemTech::Racetrack,
         Scheme::PeccSAdaptive},
        {"RM p-ECC-S worst", MemTech::Racetrack, Scheme::PeccSWorst},
    };
}

std::vector<LlcOption>
racetrackSchemeOptions()
{
    return {
        {"Baseline", MemTech::Racetrack, Scheme::Baseline},
        {"p-ECC-O", MemTech::Racetrack, Scheme::PeccO},
        {"p-ECC-S adaptive", MemTech::Racetrack,
         Scheme::PeccSAdaptive},
        {"p-ECC-S worst", MemTech::Racetrack, Scheme::PeccSWorst},
    };
}

WorkloadProfile
scaledProfile(WorkloadProfile profile, uint64_t divisor)
{
    if (divisor == 0)
        rtm_panic("capacity divisor must be >= 1");
    profile.working_set_bytes =
        std::max<uint64_t>(profile.working_set_bytes / divisor,
                           64 * 16);
    return profile;
}

std::vector<WorkloadMatrixRow>
runMatrix(const std::vector<LlcOption> &options,
          const PositionErrorModel *model, uint64_t requests,
          uint64_t warmup, uint64_t capacity_divisor)
{
    std::vector<WorkloadMatrixRow> rows;
    for (const auto &profile : parsecProfiles()) {
        WorkloadMatrixRow row;
        row.profile = profile;
        WorkloadProfile run_profile =
            scaledProfile(profile, capacity_divisor);
        for (const auto &opt : options) {
            SimConfig cfg;
            cfg.hierarchy.llc_tech = opt.tech;
            cfg.hierarchy.scheme = opt.scheme;
            cfg.hierarchy.capacity_divisor = capacity_divisor;
            cfg.mem_requests = requests;
            cfg.warmup_requests = warmup;
            row.results.push_back(
                simulate(run_profile, cfg, model));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            rtm_panic("geomean needs positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace rtm
