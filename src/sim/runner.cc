#include "runner.hh"

#include <cmath>

#include "sim/experiment.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace rtm
{

std::vector<LlcOption>
standardLlcOptions()
{
    return {
        {"SRAM", MemTech::SRAM, Scheme::Baseline},
        {"STT-RAM", MemTech::STTRAM, Scheme::Baseline},
        {"RM-Ideal", MemTech::RacetrackIdeal, Scheme::Baseline},
        {"RM w/o p-ECC", MemTech::Racetrack, Scheme::Baseline},
        {"RM p-ECC-O", MemTech::Racetrack, Scheme::PeccO},
        {"RM p-ECC-S adaptive", MemTech::Racetrack,
         Scheme::PeccSAdaptive},
        {"RM p-ECC-S worst", MemTech::Racetrack, Scheme::PeccSWorst},
    };
}

std::vector<LlcOption>
racetrackSchemeOptions()
{
    return {
        {"Baseline", MemTech::Racetrack, Scheme::Baseline},
        {"p-ECC-O", MemTech::Racetrack, Scheme::PeccO},
        {"p-ECC-S adaptive", MemTech::Racetrack,
         Scheme::PeccSAdaptive},
        {"p-ECC-S worst", MemTech::Racetrack, Scheme::PeccSWorst},
    };
}

std::vector<LlcOption>
shiftCodeLlcOptions()
{
    // The shift-code family (lm-pos, del-ins-k) next to the paper's
    // best racetrack scheme as a reference point.
    return {
        {"RM p-ECC-S adaptive", MemTech::Racetrack,
         Scheme::PeccSAdaptive},
        {"RM lm-pos", MemTech::Racetrack, Scheme::LmPos},
        {"RM del-ins-k", MemTech::Racetrack, Scheme::DelIns},
    };
}

WorkloadProfile
scaledProfile(WorkloadProfile profile, uint64_t divisor)
{
    if (divisor == 0)
        rtm_panic("capacity divisor must be >= 1");
    profile.working_set_bytes =
        std::max<uint64_t>(profile.working_set_bytes / divisor,
                           64 * 16);
    return profile;
}

void
appendMatrixJobs(ExperimentEngine &engine,
                 std::vector<WorkloadMatrixRow> *rows,
                 const std::vector<WorkloadProfile> &profiles,
                 const std::vector<LlcOption> &options,
                 const PositionErrorModel *model, uint64_t requests,
                 uint64_t warmup, uint64_t capacity_divisor,
                 uint64_t seed, const ProtectionPolicy &protection)
{
    // Every (workload, option) cell is an independent simulation:
    // simulate() builds its own hierarchy and RNG state per call and
    // only reads the shared error model (const, stateless for the
    // models used here). Cells are fanned out over the global pool
    // and written into pre-sized slots, so the output ordering — and
    // every result bit — is independent of the worker count.
    rows->resize(profiles.size());
    for (size_t w = 0; w < profiles.size(); ++w) {
        (*rows)[w].profile = profiles[w];
        (*rows)[w].results.resize(options.size());
    }
    const size_t cells = profiles.size() * options.size();
    const double matrix_start = telemetryNowSeconds();
    for (size_t cell = 0; cell < cells; ++cell) {
        const size_t w = cell / options.size();
        const size_t o = cell % options.size();
        const LlcOption opt = options[o];
        const WorkloadProfile profile = profiles[w];
        SimResult *slot = &(*rows)[w].results[o];
        ExperimentEngine::Cell job;
        job.label = profile.name + "/" + opt.label;
        job.body = [slot, opt, profile, model, requests, warmup,
                    capacity_divisor, seed, matrix_start, cell,
                    protection](TelemetryScope shard,
                                StopFlag *stop) {
            ScopedPhase cell_phase("runner.cell");
            WorkloadProfile run_profile =
                scaledProfile(profile, capacity_divisor);
            SimConfig cfg;
            cfg.hierarchy.llc_tech = opt.tech;
            cfg.hierarchy.scheme = opt.scheme;
            cfg.hierarchy.head_policy = opt.head_policy;
            cfg.hierarchy.placement.kind = opt.placement;
            cfg.hierarchy.placement.epoch_accesses =
                opt.placement_epoch;
            cfg.hierarchy.placement.swap_budget =
                opt.placement_swap_budget;
            cfg.hierarchy.capacity_divisor = capacity_divisor;
            cfg.hierarchy.protection = protection;
            cfg.mem_requests = requests;
            cfg.warmup_requests = warmup;
            cfg.seed = seed;
            cfg.telemetry = shard;
            cfg.stop = stop;
            const double t0 = shard ? telemetryNowSeconds() : 0.0;
            *slot = simulate(run_profile, cfg, model);
            if (shard) {
                const double wall = telemetryNowSeconds() - t0;
                shard->histogram("runner.cell_wall_ms",
                                 powerOfTwoEdges(65536.0))
                    .record(wall * 1e3);
                shard->counter("runner.cells").add();
                shard->event(EventKind::Span, "runner.cell",
                             static_cast<uint64_t>(
                                 (t0 - matrix_start) * 1e6),
                             wall * 1e6, static_cast<double>(cell));
            }
        };
        job.save = [slot, profile, opt] {
            return simResultToJson(profile.name, opt, *slot);
        };
        job.load = [slot](const JsonValue &doc) {
            return simResultFromJson(doc, slot);
        };
        engine.addCell(std::move(job));
    }
}

std::vector<WorkloadMatrixRow>
runMatrix(const std::vector<LlcOption> &options,
          const PositionErrorModel *model, uint64_t requests,
          uint64_t warmup, uint64_t capacity_divisor,
          TelemetryScope telemetry)
{
    ScopedPhase matrix_phase("runner.matrix");
    std::vector<WorkloadMatrixRow> rows;
    ExperimentEngine engine;
    appendMatrixJobs(engine, &rows, parsecProfiles(), options,
                     model, requests, warmup, capacity_divisor,
                     SimConfig().seed);
    engine.run(telemetry);
    return rows;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            rtm_panic("geomean needs positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace rtm
