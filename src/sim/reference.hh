/**
 * @file
 * Frozen pre-optimization reference implementations.
 *
 * The hot-loop overhaul (division-free cache addressing, the
 * precomputed geometric-gap sampler, and the memoized shift planner)
 * claims bit-identical results. This module keeps the original
 * straight-line implementations alive, verbatim in arithmetic and RNG
 * draw order, so the golden tests and the hot-path bench can compare
 * the optimized simulator against the seed behaviour forever — not
 * just against a hash captured once.
 *
 * Nothing here is used on the production path; the reference
 * hierarchy deliberately runs the RmBank with its plan memo disabled
 * so every shift is re-planned and its reliability re-folded live.
 */

#ifndef RTM_SIM_REFERENCE_HH
#define RTM_SIM_REFERENCE_HH

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/rm_bank.hh"
#include "sim/system.hh"
#include "trace/workload.hh"
#include "util/rng.hh"

namespace rtm
{

/**
 * The seed tag-array model: array-of-structs lines addressed with
 * division and modulo. Kept verbatim as the behavioural reference for
 * the shift/mask Cache.
 */
class RefCache
{
  public:
    RefCache(uint64_t capacity_bytes, int associativity,
             int line_bytes = 64);

    CacheAccessResult access(Addr addr, bool is_write);
    void flush();
    bool contains(Addr addr) const;

    const CacheStats &stats() const { return stats_; }
    uint64_t sets() const { return sets_; }
    int ways() const { return ways_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0;
    };

    uint64_t capacity_;
    int ways_;
    int line_bytes_;
    uint64_t sets_;
    uint64_t tick_ = 0;
    std::vector<Line> lines_;
    CacheStats stats_;

    uint64_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(Addr tag, uint64_t set) const;
    Line &line(uint64_t set, int way);
    const Line &line(uint64_t set, int way) const;
};

/**
 * The seed workload generator: per-request region geometry, modulo
 * round-robin, and the gap drawn through std::log on every request.
 * Draws its RNG variates in exactly the order WorkloadGenerator does.
 */
class RefWorkloadGenerator
{
  public:
    RefWorkloadGenerator(const WorkloadProfile &profile, int cores,
                         uint64_t seed);

    MemRequest next();

  private:
    WorkloadProfile profile_;
    int cores_;
    Rng rng_;
    int next_core_ = 0;
    std::vector<Addr> run_addr_;
    std::vector<int> run_left_;

    Addr pickLine(int core);
};

/**
 * The Table 4 hierarchy rebuilt on RefCaches, with the racetrack
 * shift engine forced onto its live (memo-bypassed) planning path.
 * Mirrors Hierarchy::access stage for stage.
 */
class ReferenceHierarchy
{
  public:
    ReferenceHierarchy(const HierarchyConfig &config,
                       const PositionErrorModel *model);

    HierarchyAccess access(int core, Addr addr, bool is_write,
                           Cycles now);

    const RefCache &l3() const { return *l3_; }
    const RmBank *rmBank() const { return rm_bank_.get(); }
    uint64_t dramAccesses() const { return dram_accesses_; }
    Joules dramEnergy() const { return dram_energy_; }
    double totalLeakageWatts() const;

  private:
    HierarchyConfig config_;
    TechParams l1_params_;
    TechParams l2_params_;
    TechParams l3_params_;
    DramParams dram_;
    std::vector<std::unique_ptr<RefCache>> l1_;
    std::vector<std::unique_ptr<RefCache>> l2_;
    std::unique_ptr<RefCache> l3_;
    std::unique_ptr<RmBank> rm_bank_;
    uint64_t dram_accesses_ = 0;
    Joules dram_energy_ = 0.0;
};

/**
 * simulate() rebuilt on the reference components: the seed request
 * stream through the seed caches through the memo-free shift engine.
 * Produces a SimResult whose every field must equal the optimized
 * simulator's, bit for bit.
 */
SimResult referenceSimulate(const WorkloadProfile &profile,
                            const SimConfig &config,
                            const PositionErrorModel *model);

} // namespace rtm

#endif // RTM_SIM_REFERENCE_HH
