#include "experiment.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include "codec/protected_stripe.hh"
#include "model/reliability.hh"
#include "model/tech.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/stats_serde.hh"

namespace rtm
{

namespace
{

// --- enum <-> token maps (spec schema) -------------------------------

const char *
scenarioKindToken(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Iid: return "iid";
      case ScenarioKind::Burst: return "burst";
      case ScenarioKind::StuckStripe: return "stuck-stripe";
      case ScenarioKind::Droop: return "droop";
      case ScenarioKind::Skew: return "skew";
    }
    return "?";
}

bool
scenarioKindFromToken(const std::string &token, ScenarioKind *out)
{
    if (token == "iid")
        *out = ScenarioKind::Iid;
    else if (token == "burst")
        *out = ScenarioKind::Burst;
    else if (token == "stuck-stripe")
        *out = ScenarioKind::StuckStripe;
    else if (token == "droop")
        *out = ScenarioKind::Droop;
    else if (token == "skew")
        *out = ScenarioKind::Skew;
    else
        return false;
    return true;
}

const char *
peccVariantToken(PeccVariant variant)
{
    switch (variant) {
      case PeccVariant::None: return "none";
      case PeccVariant::Standard: return "std";
      case PeccVariant::OverheadRegion: return "overhead";
      case PeccVariant::DelIns: return "del-ins";
    }
    return "?";
}

bool
peccVariantFromToken(const std::string &token, PeccVariant *out)
{
    if (token == "none")
        *out = PeccVariant::None;
    else if (token == "std")
        *out = PeccVariant::Standard;
    else if (token == "overhead")
        *out = PeccVariant::OverheadRegion;
    else if (token == "del-ins")
        *out = PeccVariant::DelIns;
    else
        return false;
    return true;
}

const char *
shiftPolicyToken(ShiftPolicy policy)
{
    switch (policy) {
      case ShiftPolicy::Unconstrained: return "unconstrained";
      case ShiftPolicy::StepByStep: return "step";
      case ShiftPolicy::WorstCase: return "worst";
      case ShiftPolicy::Adaptive: return "adaptive";
    }
    return "?";
}

bool
shiftPolicyFromToken(const std::string &token, ShiftPolicy *out)
{
    if (token == "unconstrained")
        *out = ShiftPolicy::Unconstrained;
    else if (token == "step")
        *out = ShiftPolicy::StepByStep;
    else if (token == "worst")
        *out = ShiftPolicy::WorstCase;
    else if (token == "adaptive")
        *out = ShiftPolicy::Adaptive;
    else
        return false;
    return true;
}

bool
knownProfileName(const std::string &name)
{
    for (const WorkloadProfile &p : parsecProfiles())
        if (p.name == name)
            return true;
    return false;
}

/** The faultcampaign tool's historical default workload trio. */
std::vector<std::string>
defaultCampaignWorkloads()
{
    return {"swaptions", "canneal", "ferret"};
}

// --- spec emission ---------------------------------------------------

JsonValue
scenarioToJson(const ScenarioSpec &s)
{
    JsonValue v = JsonValue::object();
    v.set("kind", scenarioKindToken(s.kind));
    v.set("name", s.name);
    v.set("burst_period", s.burst_period);
    v.set("burst_len", s.burst_len);
    v.set("burst_multiplier", s.burst_multiplier);
    v.set("stuck_after", s.stuck_after);
    v.set("stuck_len", s.stuck_len);
    v.set("droop_period", s.droop_period);
    v.set("droop_len", s.droop_len);
    v.set("droop_undershoot_prob", s.droop_undershoot_prob);
    v.set("stripe_id", s.stripe_id);
    v.set("skew_sigma", s.skew_sigma);
    return v;
}

JsonValue
optionToJson(const LlcOption &o)
{
    JsonValue v = JsonValue::object();
    v.set("label", o.label);
    v.set("tech", techToken(o.tech));
    v.set("scheme", schemeToken(o.scheme));
    JsonValue p = JsonValue::object();
    p.set("policy", placementKindName(o.placement));
    p.set("epoch", o.placement_epoch);
    p.set("swap_budget",
          static_cast<uint64_t>(o.placement_swap_budget));
    p.set("head", headPolicyName(o.head_policy));
    v.set("placement", std::move(p));
    return v;
}

JsonValue
stringArray(const std::vector<std::string> &items)
{
    JsonValue v = JsonValue::array();
    for (const std::string &s : items)
        v.push(s);
    return v;
}

// --- spec parsing ----------------------------------------------------

void
parseWorkloadList(SpecReader &r, const char *key,
                  std::vector<std::string> *out)
{
    const JsonValue *arr = r.child(key, JsonType::Array);
    if (!arr)
        return;
    out->clear();
    for (size_t i = 0; i < arr->size(); ++i) {
        const JsonValue &item = arr->at(i);
        if (!item.isString()) {
            r.fail(key, "expected string workload name, got " +
                            std::string(jsonTypeName(item.type())));
            continue;
        }
        if (!knownProfileName(item.asString())) {
            r.fail(key, "unknown workload '" + item.asString() + "'");
            continue;
        }
        out->push_back(item.asString());
    }
}

/**
 * Parse a `placement` object (policy, epoch length, swap budget,
 * head policy) into `opt`. Shared by the per-option form and the
 * matrix-level default section.
 */
void
parsePlacementInto(const JsonValue &v, const std::string &path,
                   LlcOption *opt, std::string *diag)
{
    SpecReader p(v, path, diag);
    std::string policy_token = placementKindName(opt->placement);
    p.readString("policy", &policy_token);
    if (!placementKindFromToken(policy_token, &opt->placement))
        p.fail("policy",
               "unknown placement policy '" + policy_token + "'");
    p.readU64("epoch", &opt->placement_epoch);
    p.readInt("swap_budget", &opt->placement_swap_budget);
    std::string head_token = headPolicyName(opt->head_policy);
    p.readString("head", &head_token);
    if (!headPolicyFromToken(head_token, &opt->head_policy))
        p.fail("head",
               "unknown head policy '" + head_token + "'");
    if (opt->placement_epoch == 0)
        p.fail("epoch", "must be >= 1 access");
    if (opt->placement_swap_budget < 0)
        p.fail("swap_budget", "must be >= 0");
    p.rejectUnknownKeys({"policy", "epoch", "swap_budget", "head"});
}

/** Whether an option carries a non-default placement/head setting. */
bool
nonDefaultPlacement(const LlcOption &o)
{
    return o.placement != PlacementKind::Static ||
           o.head_policy != HeadPolicy::Stay;
}

void
parseOptionList(SpecReader &r, std::vector<LlcOption> *out,
                const LlcOption &defaults, std::string *diag)
{
    const JsonValue *arr = r.child("options", JsonType::Array);
    if (!arr)
        return;
    out->clear();
    auto inherit = [&defaults](LlcOption o) {
        o.placement = defaults.placement;
        o.placement_epoch = defaults.placement_epoch;
        o.placement_swap_budget = defaults.placement_swap_budget;
        o.head_policy = defaults.head_policy;
        return o;
    };
    for (size_t i = 0; i < arr->size(); ++i) {
        const JsonValue &item = arr->at(i);
        std::string path =
            r.path() + ".options[" + std::to_string(i) + "]";
        if (item.isString()) {
            // Catalogue shortcuts, resolved at parse time so the
            // emitted spec is always an explicit list. They inherit
            // the matrix-level placement defaults.
            if (item.asString() == "standard") {
                for (const LlcOption &o : standardLlcOptions())
                    out->push_back(inherit(o));
            } else if (item.asString() == "racetrack") {
                for (const LlcOption &o : racetrackSchemeOptions())
                    out->push_back(inherit(o));
            } else if (item.asString() == "shift-codes") {
                for (const LlcOption &o : shiftCodeLlcOptions())
                    out->push_back(inherit(o));
            } else {
                r.fail("options",
                       "unknown option shortcut '" +
                           item.asString() +
                           "' (want \"standard\", \"racetrack\" or "
                           "\"shift-codes\")");
            }
            continue;
        }
        SpecReader o(item, path, diag);
        LlcOption opt = inherit(LlcOption{});
        opt.tech = MemTech::Racetrack;
        opt.scheme = Scheme::PeccSAdaptive;
        std::string tech_token = techToken(opt.tech);
        std::string scheme_token = schemeToken(opt.scheme);
        o.readString("tech", &tech_token);
        o.readString("scheme", &scheme_token);
        if (!techFromToken(tech_token, &opt.tech))
            o.fail("tech", "unknown tech '" + tech_token + "'");
        if (!schemeFromToken(scheme_token, &opt.scheme))
            o.fail("scheme",
                   "unknown scheme '" + scheme_token + "'");
        if (const JsonValue *p =
                o.child("placement", JsonType::Object))
            parsePlacementInto(*p, path + ".placement", &opt, diag);
        opt.label = std::string(memTechName(opt.tech)) + " " +
                    schemeName(opt.scheme);
        // Default labels must stay distinct across a placement
        // sweep, so non-default axes are spelled out unless the
        // spec names the option itself.
        if (nonDefaultPlacement(opt)) {
            opt.label += std::string(" [") +
                         placementKindName(opt.placement) + "/" +
                         headPolicyName(opt.head_policy) + "]";
        }
        o.readString("label", &opt.label);
        o.rejectUnknownKeys({"label", "tech", "scheme",
                             "placement"});
        out->push_back(opt);
    }
}

ScenarioSpec
parseScenario(const JsonValue &v, const std::string &path,
              std::string *diag)
{
    ScenarioSpec s;
    SpecReader r(v, path, diag);
    std::string kind_token = scenarioKindToken(s.kind);
    r.readString("kind", &kind_token);
    if (!scenarioKindFromToken(kind_token, &s.kind))
        r.fail("kind",
               "unknown scenario kind '" + kind_token + "'");
    s.name = scenarioKindToken(s.kind);
    r.readString("name", &s.name);
    r.readU64("burst_period", &s.burst_period);
    r.readU64("burst_len", &s.burst_len);
    r.readDouble("burst_multiplier", &s.burst_multiplier);
    r.readU64("stuck_after", &s.stuck_after);
    r.readU64("stuck_len", &s.stuck_len);
    r.readU64("droop_period", &s.droop_period);
    r.readU64("droop_len", &s.droop_len);
    r.readDouble("droop_undershoot_prob",
                 &s.droop_undershoot_prob);
    r.readU64("stripe_id", &s.stripe_id);
    r.readDouble("skew_sigma", &s.skew_sigma);
    r.rejectUnknownKeys({"kind", "name", "burst_period",
                         "burst_len", "burst_multiplier",
                         "stuck_after", "stuck_len", "droop_period",
                         "droop_len", "droop_undershoot_prob",
                         "stripe_id", "skew_sigma"});
    return s;
}

void
parseMatrixSection(const JsonValue &v, MatrixSpec *m,
                   std::string *diag)
{
    SpecReader r(v, "matrix", diag);
    r.readBool("enabled", &m->enabled);
    const bool had_warmup = r.has("warmup");
    r.readU64("requests", &m->requests);
    r.readU64("warmup", &m->warmup);
    // The rtmsim convention: an unstated warmup tracks the request
    // count (one tenth), so shrinking a spec's requests on the command
    // line keeps the run proportioned.
    if (!had_warmup)
        m->warmup = m->requests / 10;
    r.readU64("divisor", &m->divisor);
    r.readU64("seed", &m->seed);
    parseWorkloadList(r, "workloads", &m->workloads);
    // A matrix-level `placement` object is parse-time sugar: it seeds
    // the defaults every option (and shortcut expansion) inherits
    // unless the option carries its own `placement`. The emitted spec
    // is always explicit per-option, so parse -> emit -> parse is the
    // identity.
    LlcOption placement_defaults;
    if (const JsonValue *p = r.child("placement", JsonType::Object))
        parsePlacementInto(*p, "matrix.placement",
                           &placement_defaults, diag);
    parseOptionList(r, &m->options, placement_defaults, diag);
    // Without an explicit option list the normalizer fills the
    // standard catalogue; expand it here instead when a matrix-level
    // placement was given so the section is honoured in that case
    // too.
    if (!r.has("options") &&
        nonDefaultPlacement(placement_defaults)) {
        m->options.clear();
        for (LlcOption o : standardLlcOptions()) {
            o.placement = placement_defaults.placement;
            o.placement_epoch = placement_defaults.placement_epoch;
            o.placement_swap_budget =
                placement_defaults.placement_swap_budget;
            o.head_policy = placement_defaults.head_policy;
            m->options.push_back(o);
        }
    }
    if (m->requests == 0)
        r.fail("requests", "must be >= 1");
    if (m->divisor == 0)
        r.fail("divisor", "must be >= 1");
    r.rejectUnknownKeys({"enabled", "requests", "warmup", "divisor",
                         "seed", "workloads", "options",
                         "placement"});
}

void
parseCampaignSection(const JsonValue &v, CampaignSpec *c,
                     std::string *diag)
{
    SpecReader r(v, "campaign", diag);
    CampaignConfig &cfg = c->config;
    r.readBool("enabled", &c->enabled);
    r.readU64("accesses", &cfg.accesses_per_cell);
    r.readU64("seed", &cfg.seed);
    r.readDouble("scale", &cfg.scale);
    std::string policy_token = shiftPolicyToken(cfg.policy);
    r.readString("policy", &policy_token);
    if (!shiftPolicyFromToken(policy_token, &cfg.policy))
        r.fail("policy", "unknown policy '" + policy_token + "'");
    r.readDouble("peak_ops_per_second", &cfg.peak_ops_per_second);
    r.readInt("workload_cores", &cfg.workload_cores);
    uint64_t ring = cfg.telemetry_ring_capacity;
    r.readU64("ring_capacity", &ring);
    cfg.telemetry_ring_capacity = static_cast<size_t>(ring);

    if (const JsonValue *p = r.child("pecc", JsonType::Object)) {
        SpecReader pr(*p, "campaign.pecc", diag);
        pr.readInt("segments", &cfg.pecc.num_segments);
        pr.readInt("lseg", &cfg.pecc.seg_len);
        pr.readInt("correct", &cfg.pecc.correct);
        std::string variant_token =
            peccVariantToken(cfg.pecc.variant);
        pr.readString("variant", &variant_token);
        if (!peccVariantFromToken(variant_token, &cfg.pecc.variant))
            pr.fail("variant",
                    "unknown variant '" + variant_token + "'");
        pr.rejectUnknownKeys(
            {"segments", "lseg", "correct", "variant"});
        if (cfg.pecc.num_segments < 1)
            pr.fail("segments", "must be >= 1");
        if (cfg.pecc.seg_len < 2)
            pr.fail("lseg", "must be >= 2");
    }
    if (const JsonValue *rec = r.child("recovery", JsonType::Object)) {
        SpecReader rr(*rec, "campaign.recovery", diag);
        rr.readInt("retry_budget", &cfg.recovery.retry_budget);
        rr.readBool("sts_realign", &cfg.recovery.sts_realign);
        rr.readBool("allow_scrub", &cfg.recovery.allow_scrub);
        rr.readInt("max_replans", &cfg.recovery.max_replans);
        uint64_t scrub = cfg.recovery.scrub_cycles;
        rr.readU64("scrub_cycles", &scrub);
        cfg.recovery.scrub_cycles = scrub;
        rr.rejectUnknownKeys({"retry_budget", "sts_realign",
                              "allow_scrub", "max_replans",
                              "scrub_cycles"});
    }
    if (const JsonValue *b = r.child("bank", JsonType::Object)) {
        SpecReader br(*b, "campaign.bank", diag);
        br.readU64("frames", &cfg.bank_frames);
        br.readDouble("due_prob", &cfg.bank_due_prob);
        br.readInt("retry_budget", &cfg.group_retry_budget);
        br.rejectUnknownKeys({"frames", "due_prob", "retry_budget"});
        if (cfg.bank_frames == 0)
            br.fail("frames", "must be >= 1");
    }
    if (const JsonValue *arr = r.child("scenarios", JsonType::Array)) {
        c->scenarios.clear();
        for (size_t i = 0; i < arr->size(); ++i) {
            const JsonValue &item = arr->at(i);
            if (item.isString()) {
                if (item.asString() == "standard") {
                    for (const ScenarioSpec &s : standardScenarios())
                        c->scenarios.push_back(s);
                } else {
                    r.fail("scenarios",
                           "unknown scenario shortcut '" +
                               item.asString() +
                               "' (want \"standard\")");
                }
                continue;
            }
            c->scenarios.push_back(parseScenario(
                item,
                "campaign.scenarios[" + std::to_string(i) + "]",
                diag));
        }
    }
    parseWorkloadList(r, "workloads", &c->workloads);
    if (cfg.accesses_per_cell == 0)
        r.fail("accesses", "must be >= 1");
    if (cfg.scale <= 0.0)
        r.fail("scale", "must be > 0");
    r.rejectUnknownKeys({"enabled", "accesses", "seed", "scale",
                         "policy", "peak_ops_per_second",
                         "workload_cores", "ring_capacity", "pecc",
                         "recovery", "bank", "scenarios",
                         "workloads"});
}

void
parseStressSection(const JsonValue &v, StressSpec *s,
                   std::string *diag)
{
    SpecReader r(v, "stress", diag);
    r.readBool("enabled", &s->enabled);
    r.readString("scheme", &s->scheme);
    r.readDouble("scale", &s->scale);
    r.readU64("ops", &s->ops);
    r.readInt("lseg", &s->lseg);
    r.readU64("seed", &s->seed);
    Scheme scheme;
    PeccConfig cfg;
    if (!stressSchemeConfig(s->scheme, &scheme, &cfg))
        r.fail("scheme", "unknown scheme '" + s->scheme + "'");
    if (s->scale <= 0.0)
        r.fail("scale", "must be > 0");
    if (s->lseg < 2)
        r.fail("lseg", "must be >= 2");
    r.rejectUnknownKeys(
        {"enabled", "scheme", "scale", "ops", "lseg", "seed"});
}

void
parseMcSection(const JsonValue &v, McSpec *s, std::string *diag)
{
    SpecReader r(v, "montecarlo", diag);
    r.readBool("enabled", &s->enabled);
    r.readInt("distance", &s->distance);
    r.readU64("trials", &s->trials);
    r.readU64("fit_trials", &s->fit_trials);
    r.readU64("seed", &s->seed);
    r.readString("tier", &s->tier);
    McTier tier;
    if (!mcTierFromToken(s->tier, &tier))
        r.fail("tier",
               "unknown tier '" + s->tier + "' (exact | fast)");
    if (s->distance < 1)
        r.fail("distance", "must be >= 1");
    if (s->trials < 1)
        r.fail("trials", "must be >= 1");
    r.rejectUnknownKeys({"enabled", "distance", "trials",
                         "fit_trials", "seed", "tier"});
}

void
parseResilienceSection(const JsonValue &v, ResilienceSpec *s,
                       std::string *diag)
{
    SpecReader r(v, "resilience", diag);
    r.readU64("retry_budget", &s->retry_budget);
    r.readU64("backoff_ms", &s->backoff_ms);
    r.readU64("cell_deadline_ms", &s->cell_deadline_ms);
    r.readU64("run_deadline_ms", &s->run_deadline_ms);
    r.rejectUnknownKeys({"retry_budget", "backoff_ms",
                         "cell_deadline_ms", "run_deadline_ms"});
}

/** Append a domain's keys to an (already started) object. */
void
setProtectionDomainKeys(JsonValue *v, const ProtectionDomain &d)
{
    if (d.has_scheme)
        v->set("scheme", schemeToken(d.scheme));
    v->set("codeword_frames", d.codeword_frames);
    v->set("two_tier", d.two_tier);
}

/**
 * Parse the domain keys of `r`'s object (scheme / codeword_frames /
 * two_tier) and validate the geometry they imply against the fixed
 * hierarchy defaults (Lseg, frames per group); the bank re-validates
 * at construction against its actual scheme, this front-loads the
 * typed diagnostic.
 */
void
parseProtectionDomain(SpecReader &r, ProtectionDomain *d)
{
    if (r.has("scheme")) {
        std::string token;
        r.readString("scheme", &token);
        if (!schemeFromToken(token, &d->scheme))
            r.fail("scheme", "unknown scheme '" + token + "'");
        else
            d->has_scheme = true;
    }
    r.readInt("codeword_frames", &d->codeword_frames);
    r.readBool("two_tier", &d->two_tier);
    const HierarchyConfig geometry;
    const std::string err = protectionDomainError(
        *d, Scheme::PeccSAdaptive, geometry.seg_len,
        geometry.frames_per_group);
    if (!err.empty())
        r.fail("codeword_frames", err);
}

void
parseProtectionSection(const JsonValue &v, ProtectionPolicy *p,
                       std::string *diag)
{
    SpecReader r(v, "protection", diag);
    std::string kind_token = protectionKindToken(p->kind);
    r.readString("kind", &kind_token);
    if (!protectionKindFromToken(kind_token, &p->kind))
        r.fail("kind", "unknown protection kind '" + kind_token +
                           "' (uniform | per-level | regions)");
    if (const JsonValue *u = r.child("uniform", JsonType::Object)) {
        SpecReader ur(*u, "protection.uniform", diag);
        parseProtectionDomain(ur, &p->uniform);
        ur.rejectUnknownKeys(
            {"scheme", "codeword_frames", "two_tier"});
    }
    if (const JsonValue *arr = r.child("levels", JsonType::Array)) {
        p->levels.clear();
        for (size_t i = 0; i < arr->size(); ++i) {
            SpecReader lr(arr->at(i),
                          "protection.levels[" + std::to_string(i) +
                              "]",
                          diag);
            ProtectionLevel level;
            lr.readString("level", &level.level);
            if (level.level != "l1" && level.level != "l2" &&
                level.level != "llc")
                lr.fail("level", "unknown cache level '" +
                                     level.level +
                                     "' (l1 | l2 | llc)");
            parseProtectionDomain(lr, &level.domain);
            lr.rejectUnknownKeys(
                {"level", "scheme", "codeword_frames", "two_tier"});
            p->levels.push_back(std::move(level));
        }
    }
    if (const JsonValue *arr = r.child("regions", JsonType::Array)) {
        p->regions.clear();
        for (size_t i = 0; i < arr->size(); ++i) {
            SpecReader rr(arr->at(i),
                          "protection.regions[" +
                              std::to_string(i) + "]",
                          diag);
            ProtectionRegion region;
            rr.readDouble("begin", &region.begin);
            rr.readDouble("end", &region.end);
            if (region.begin < 0.0 || region.begin >= 1.0)
                rr.fail("begin", "must be in [0, 1)");
            if (region.end <= region.begin || region.end > 1.0)
                rr.fail("end", "must be in (begin, 1]");
            parseProtectionDomain(rr, &region.domain);
            rr.rejectUnknownKeys(
                {"begin", "end", "scheme", "codeword_frames",
                 "two_tier"});
            p->regions.push_back(region);
        }
    }
    r.rejectUnknownKeys({"kind", "uniform", "levels", "regions"});
}

} // anonymous namespace

// --- engine ----------------------------------------------------------

const char *
cellStatusToken(CellStatus status)
{
    switch (status) {
      case CellStatus::Ok: return "ok";
      case CellStatus::Failed: return "failed";
      case CellStatus::TimedOut: return "timed_out";
      case CellStatus::Cancelled: return "cancelled";
      case CellStatus::Skipped: return "skipped";
    }
    return "?";
}

bool
ExperimentEngine::replayCell(size_t index, const JsonValue &result)
{
    if (index >= cells_.size())
        return false;
    Cell &cell = cells_[index];
    if (cell.replayed || !cell.load || !cell.load(result))
        return false;
    cell.replayed = true;
    return true;
}

void
ExperimentEngine::runCell(Cell &cell, size_t index,
                          TelemetryScope shard, double run_deadline)
{
    CellOutcome &out = outcomes_[index];
    const double t0 = monotonicSeconds();
    // Effective deadline: the earlier of the per-cell watchdog and
    // the whole-run deadline (0 = none).
    double deadline = 0.0;
    if (resilience_.cell_deadline_ms > 0)
        deadline = t0 + static_cast<double>(
                            resilience_.cell_deadline_ms) / 1e3;
    if (run_deadline > 0.0 &&
        (deadline == 0.0 || run_deadline < deadline))
        deadline = run_deadline;

    int attempt = 0;
    for (;;) {
        ++attempt;
        StopFlag stop(cancel_, deadline);
        if (stop.poll()) {
            out.status = stop.reason() == StopReason::Deadline
                             ? CellStatus::TimedOut
                             : CellStatus::Cancelled;
            break;
        }
        try {
            if (fault_hook_)
                fault_hook_(index, attempt);
            cell.body(shard, &stop);
            // The latch is the validity contract: the result slot is
            // good iff the body never observed a stop. A cancel that
            // fires after the last poll leaves a completed cell.
            if (stop.stopped())
                out.status =
                    stop.reason() == StopReason::Deadline
                        ? CellStatus::TimedOut
                        : CellStatus::Cancelled;
            else
                out.status = CellStatus::Ok;
            break;
        } catch (const std::exception &e) {
            out.error = e.what();
        } catch (...) {
            out.error = "unknown exception";
        }
        out.status = CellStatus::Failed;
        if (static_cast<uint64_t>(attempt) >
            resilience_.retry_budget)
            break;
        if (cancel_ && cancel_->cancelled())
            break;
        // Exponential backoff, sliced so a cancel cuts it short.
        const int shift = std::min(attempt - 1, 20);
        uint64_t delay_ms = std::min<uint64_t>(
            resilience_.backoff_ms << shift, 10000);
        while (delay_ms > 0 &&
               !(cancel_ && cancel_->cancelled())) {
            const uint64_t slice = std::min<uint64_t>(delay_ms, 10);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slice));
            delay_ms -= slice;
        }
    }
    out.attempts = attempt;
    out.wall_ms = (monotonicSeconds() - t0) * 1e3;
    if (out.status == CellStatus::Ok && journal_ && cell.save) {
        JournalRecord rec;
        rec.index = index;
        rec.label = cell.label;
        rec.result = cell.save();
        journal_->appendRecord(rec);
    }
    if (on_outcome_)
        on_outcome_(index, out);
}

void
ExperimentEngine::run(TelemetryScope root)
{
    std::vector<Cell> cells = std::move(cells_);
    cells_.clear();
    // Pre-fill every outcome as Cancelled: a cell the cancel-aware
    // parallelFor never claims keeps exactly that status. Replayed
    // cells are Skipped up front (their slots are already loaded).
    outcomes_.assign(cells.size(), CellOutcome{});
    for (size_t i = 0; i < cells.size(); ++i) {
        outcomes_[i].label = cells[i].label;
        if (cells[i].replayed) {
            outcomes_[i].status = CellStatus::Skipped;
            if (on_outcome_)
                on_outcome_(i, outcomes_[i]);
        }
    }
    const double run_deadline =
        resilience_.run_deadline_ms > 0
            ? monotonicSeconds() +
                  static_cast<double>(resilience_.run_deadline_ms) /
                      1e3
            : 0.0;
    // One shard per job: shards merge into the root in job order, so
    // the exported telemetry is bit-identical at any RTM_THREADS.
    TelemetryShards shards(root, cells.size(), ring_capacity_);
    ThreadPool::global().parallelFor(
        cells.size(),
        [&](size_t i) {
            if (cells[i].replayed)
                return;
            runCell(cells[i], i, shards.shard(i), run_deadline);
        },
        cancel_);
    shards.mergeIntoRoot();
    if (root) {
        uint64_t ok = 0, failed = 0, timed_out = 0, cancelled = 0,
                 replayed = 0;
        for (const CellOutcome &o : outcomes_) {
            switch (o.status) {
              case CellStatus::Ok: ++ok; break;
              case CellStatus::Failed: ++failed; break;
              case CellStatus::TimedOut: ++timed_out; break;
              case CellStatus::Cancelled: ++cancelled; break;
              case CellStatus::Skipped: ++replayed; break;
            }
        }
        Telemetry &t = *root.get();
        t.counter("experiment.cells_ok").add(ok);
        t.counter("experiment.cells_failed").add(failed);
        t.counter("experiment.cells_timed_out").add(timed_out);
        t.counter("experiment.cells_cancelled").add(cancelled);
        t.counter("experiment.cells_replayed").add(replayed);
    }
}

// --- spec ------------------------------------------------------------

bool
CampaignSpec::operator==(const CampaignSpec &o) const
{
    const CampaignConfig &a = config;
    const CampaignConfig &b = o.config;
    return enabled == o.enabled && scenarios == o.scenarios &&
           workloads == o.workloads &&
           a.accesses_per_cell == b.accesses_per_cell &&
           a.seed == b.seed && a.scale == b.scale &&
           a.pecc.num_segments == b.pecc.num_segments &&
           a.pecc.seg_len == b.pecc.seg_len &&
           a.pecc.correct == b.pecc.correct &&
           a.pecc.variant == b.pecc.variant &&
           a.recovery.retry_budget == b.recovery.retry_budget &&
           a.recovery.sts_realign == b.recovery.sts_realign &&
           a.recovery.allow_scrub == b.recovery.allow_scrub &&
           a.recovery.max_replans == b.recovery.max_replans &&
           a.recovery.scrub_cycles == b.recovery.scrub_cycles &&
           a.policy == b.policy &&
           a.peak_ops_per_second == b.peak_ops_per_second &&
           a.workload_cores == b.workload_cores &&
           a.bank_frames == b.bank_frames &&
           a.bank_due_prob == b.bank_due_prob &&
           a.group_retry_budget == b.group_retry_budget &&
           a.telemetry_ring_capacity == b.telemetry_ring_capacity;
}

void
normalizeExperimentSpec(ExperimentSpec *spec)
{
    if (spec->matrix.workloads.empty())
        for (const WorkloadProfile &p : parsecProfiles())
            spec->matrix.workloads.push_back(p.name);
    if (spec->matrix.options.empty())
        spec->matrix.options = standardLlcOptions();
    if (spec->campaign.scenarios.empty())
        spec->campaign.scenarios = standardScenarios();
    if (spec->campaign.workloads.empty())
        spec->campaign.workloads = defaultCampaignWorkloads();
}

JsonValue
experimentSpecToJson(const ExperimentSpec &spec_in)
{
    ExperimentSpec spec = spec_in;
    normalizeExperimentSpec(&spec);

    JsonValue doc = JsonValue::object();
    doc.set("name", spec.name);

    JsonValue m = JsonValue::object();
    m.set("enabled", spec.matrix.enabled);
    m.set("requests", spec.matrix.requests);
    m.set("warmup", spec.matrix.warmup);
    m.set("divisor", spec.matrix.divisor);
    m.set("seed", spec.matrix.seed);
    m.set("workloads", stringArray(spec.matrix.workloads));
    JsonValue opts = JsonValue::array();
    for (const LlcOption &o : spec.matrix.options)
        opts.push(optionToJson(o));
    m.set("options", std::move(opts));
    doc.set("matrix", std::move(m));

    const CampaignConfig &cfg = spec.campaign.config;
    JsonValue c = JsonValue::object();
    c.set("enabled", spec.campaign.enabled);
    c.set("accesses", cfg.accesses_per_cell);
    c.set("seed", cfg.seed);
    c.set("scale", cfg.scale);
    c.set("policy", shiftPolicyToken(cfg.policy));
    c.set("peak_ops_per_second", cfg.peak_ops_per_second);
    c.set("workload_cores", cfg.workload_cores);
    c.set("ring_capacity",
          static_cast<uint64_t>(cfg.telemetry_ring_capacity));
    JsonValue pecc = JsonValue::object();
    pecc.set("segments", cfg.pecc.num_segments);
    pecc.set("lseg", cfg.pecc.seg_len);
    pecc.set("correct", cfg.pecc.correct);
    pecc.set("variant", peccVariantToken(cfg.pecc.variant));
    c.set("pecc", std::move(pecc));
    JsonValue rec = JsonValue::object();
    rec.set("retry_budget", cfg.recovery.retry_budget);
    rec.set("sts_realign", cfg.recovery.sts_realign);
    rec.set("allow_scrub", cfg.recovery.allow_scrub);
    rec.set("max_replans", cfg.recovery.max_replans);
    rec.set("scrub_cycles",
            static_cast<uint64_t>(cfg.recovery.scrub_cycles));
    c.set("recovery", std::move(rec));
    JsonValue bank = JsonValue::object();
    bank.set("frames", cfg.bank_frames);
    bank.set("due_prob", cfg.bank_due_prob);
    bank.set("retry_budget", cfg.group_retry_budget);
    c.set("bank", std::move(bank));
    JsonValue scenarios = JsonValue::array();
    for (const ScenarioSpec &s : spec.campaign.scenarios)
        scenarios.push(scenarioToJson(s));
    c.set("scenarios", std::move(scenarios));
    c.set("workloads", stringArray(spec.campaign.workloads));
    doc.set("campaign", std::move(c));

    JsonValue st = JsonValue::object();
    st.set("enabled", spec.stress.enabled);
    st.set("scheme", spec.stress.scheme);
    st.set("scale", spec.stress.scale);
    st.set("ops", spec.stress.ops);
    st.set("lseg", spec.stress.lseg);
    st.set("seed", spec.stress.seed);
    doc.set("stress", std::move(st));

    JsonValue mc = JsonValue::object();
    mc.set("enabled", spec.montecarlo.enabled);
    mc.set("distance", spec.montecarlo.distance);
    mc.set("trials", spec.montecarlo.trials);
    mc.set("fit_trials", spec.montecarlo.fit_trials);
    mc.set("seed", spec.montecarlo.seed);
    mc.set("tier", spec.montecarlo.tier);
    doc.set("montecarlo", std::move(mc));

    JsonValue rs = JsonValue::object();
    rs.set("retry_budget", spec.resilience.retry_budget);
    rs.set("backoff_ms", spec.resilience.backoff_ms);
    rs.set("cell_deadline_ms", spec.resilience.cell_deadline_ms);
    rs.set("run_deadline_ms", spec.resilience.run_deadline_ms);
    doc.set("resilience", std::move(rs));

    // Omitted entirely under the default policy so pre-existing
    // specs keep their emitted bytes (and resume-journal hashes).
    if (spec.protection != ProtectionPolicy{}) {
        JsonValue pr = JsonValue::object();
        pr.set("kind", protectionKindToken(spec.protection.kind));
        JsonValue uni = JsonValue::object();
        setProtectionDomainKeys(&uni, spec.protection.uniform);
        pr.set("uniform", std::move(uni));
        if (!spec.protection.levels.empty()) {
            JsonValue levels = JsonValue::array();
            for (const ProtectionLevel &l : spec.protection.levels) {
                JsonValue lv = JsonValue::object();
                lv.set("level", l.level);
                setProtectionDomainKeys(&lv, l.domain);
                levels.push(std::move(lv));
            }
            pr.set("levels", std::move(levels));
        }
        if (!spec.protection.regions.empty()) {
            JsonValue regions = JsonValue::array();
            for (const ProtectionRegion &g :
                 spec.protection.regions) {
                JsonValue rv = JsonValue::object();
                rv.set("begin", g.begin);
                rv.set("end", g.end);
                setProtectionDomainKeys(&rv, g.domain);
                regions.push(std::move(rv));
            }
            pr.set("regions", std::move(regions));
        }
        doc.set("protection", std::move(pr));
    }

    JsonValue tel = JsonValue::object();
    tel.set("metrics", spec.metrics_path);
    tel.set("trace", spec.trace_path);
    doc.set("telemetry", std::move(tel));
    doc.set("output", spec.output_path);
    return doc;
}

bool
experimentSpecFromJson(const JsonValue &doc, ExperimentSpec *spec,
                       std::string *diag)
{
    std::string local;
    std::string *d = diag ? diag : &local;
    d->clear();

    ExperimentSpec out;
    SpecReader top(doc, "", d);
    top.readString("name", &out.name);
    if (const JsonValue *m = top.child("matrix", JsonType::Object))
        parseMatrixSection(*m, &out.matrix, d);
    if (const JsonValue *c = top.child("campaign", JsonType::Object))
        parseCampaignSection(*c, &out.campaign, d);
    if (const JsonValue *s = top.child("stress", JsonType::Object))
        parseStressSection(*s, &out.stress, d);
    if (const JsonValue *m =
            top.child("montecarlo", JsonType::Object))
        parseMcSection(*m, &out.montecarlo, d);
    if (const JsonValue *r =
            top.child("resilience", JsonType::Object))
        parseResilienceSection(*r, &out.resilience, d);
    if (const JsonValue *p =
            top.child("protection", JsonType::Object))
        parseProtectionSection(*p, &out.protection, d);
    if (const JsonValue *t =
            top.child("telemetry", JsonType::Object)) {
        SpecReader tr(*t, "telemetry", d);
        tr.readString("metrics", &out.metrics_path);
        tr.readString("trace", &out.trace_path);
        tr.rejectUnknownKeys({"metrics", "trace"});
    }
    top.readString("output", &out.output_path);
    top.rejectUnknownKeys({"name", "matrix", "campaign", "stress",
                           "montecarlo", "resilience", "protection",
                           "telemetry", "output"});
    if (!d->empty())
        return false;
    normalizeExperimentSpec(&out);
    *spec = std::move(out);
    return true;
}

bool
loadExperimentSpec(const std::string &path, ExperimentSpec *spec,
                   std::string *diag)
{
    JsonValue doc;
    if (!loadJsonFile(path, &doc, diag))
        return false;
    std::string parse_diag;
    if (!experimentSpecFromJson(doc, spec, &parse_diag)) {
        if (diag) {
            *diag = path + ": " + parse_diag;
            size_t pos = 0;
            // Prefix every diagnostic line with the file path.
            while ((pos = diag->find('\n', pos)) !=
                   std::string::npos) {
                diag->replace(pos, 1, "\n" + path + ": ");
                pos += path.size() + 3;
            }
        }
        return false;
    }
    return true;
}

std::string
experimentSpecHash(const ExperimentSpec &spec_in)
{
    // Output sinks and the resilience policy do not affect a single
    // result bit, so they are excluded from the resume identity.
    ExperimentSpec spec = spec_in;
    spec.metrics_path.clear();
    spec.trace_path.clear();
    spec.output_path.clear();
    spec.resilience = ResilienceSpec{};
    const std::string text = experimentSpecToJson(spec).dump(0);
    return sha256Hex(text.data(), text.size());
}

// --- expansion -------------------------------------------------------

std::string
ExperimentCell::label() const
{
    switch (kind) {
      case Kind::Matrix:
        return workload + "/" + option.label;
      case Kind::Campaign:
        return scenario.name + "/" + workload;
      case Kind::Stress:
        return "stress";
      case Kind::MonteCarlo:
        return "montecarlo";
    }
    return "?";
}

std::vector<ExperimentCell>
expandCells(const ExperimentSpec &spec_in)
{
    ExperimentSpec spec = spec_in;
    normalizeExperimentSpec(&spec);
    std::vector<ExperimentCell> cells;
    if (spec.matrix.enabled) {
        const size_t no = spec.matrix.options.size();
        for (size_t w = 0; w < spec.matrix.workloads.size(); ++w) {
            for (size_t o = 0; o < no; ++o) {
                ExperimentCell cell;
                cell.kind = ExperimentCell::Kind::Matrix;
                cell.local_index = w * no + o;
                cell.workload = spec.matrix.workloads[w];
                cell.option = spec.matrix.options[o];
                cells.push_back(std::move(cell));
            }
        }
    }
    if (spec.campaign.enabled) {
        const size_t nw = spec.campaign.workloads.size();
        for (size_t s = 0; s < spec.campaign.scenarios.size(); ++s) {
            for (size_t w = 0; w < nw; ++w) {
                ExperimentCell cell;
                cell.kind = ExperimentCell::Kind::Campaign;
                cell.local_index = s * nw + w;
                cell.workload = spec.campaign.workloads[w];
                cell.scenario = spec.campaign.scenarios[s];
                cells.push_back(std::move(cell));
            }
        }
    }
    if (spec.stress.enabled) {
        ExperimentCell cell;
        cell.kind = ExperimentCell::Kind::Stress;
        cell.local_index = 0;
        cells.push_back(std::move(cell));
    }
    if (spec.montecarlo.enabled) {
        ExperimentCell cell;
        cell.kind = ExperimentCell::Kind::MonteCarlo;
        cell.local_index = 0;
        cells.push_back(std::move(cell));
    }
    return cells;
}

// --- stress drill ----------------------------------------------------

bool
stressSchemeConfig(const std::string &token, Scheme *scheme,
                   PeccConfig *config)
{
    // The stripe drill shares one stripe between two ports; seg_len
    // is the caller's (the --lseg flag / stress.lseg field).
    config->num_segments = 2;
    if (token == "baseline") {
        *scheme = Scheme::Baseline;
        config->correct = 1;
        config->variant = PeccVariant::None;
    } else if (token == "sed") {
        *scheme = Scheme::SedPecc;
        config->correct = 0;
        config->variant = PeccVariant::Standard;
    } else if (token == "pecc-o") {
        *scheme = Scheme::PeccO;
        config->correct = 1;
        config->variant = PeccVariant::OverheadRegion;
    } else if (token == "secded") {
        *scheme = Scheme::SecdedPecc;
        config->correct = 1;
        config->variant = PeccVariant::Standard;
    } else if (token == "lm-pos") {
        *scheme = Scheme::LmPos;
        config->correct = kLmPosCorrect;
        config->window_ports = kLmPosWindow;
        config->variant = PeccVariant::Standard;
    } else if (token == "del-ins-k") {
        *scheme = Scheme::DelIns;
        config->correct = kDelInsStrength;
        config->variant = PeccVariant::DelIns;
    } else {
        return false;
    }
    return true;
}

StressResult
runStressDrill(const StressSpec &spec, TelemetryScope telemetry,
               StopFlag *stop)
{
    ScopedPhase drill_phase("experiment.stress");
    StressResult out;
    PeccConfig cfg;
    cfg.seg_len = spec.lseg;
    if (!stressSchemeConfig(spec.scheme, &out.scheme, &cfg))
        rtm_fatal("unknown stress scheme '%s'",
                  spec.scheme.c_str());
    out.pecc = cfg;

    auto base = std::make_shared<PaperCalibratedErrorModel>();
    ScaledErrorModel model(base, spec.scale);
    ReliabilityModel analytic(&model, out.scheme);

    ProtectedStripe stripe(cfg, &model, Rng(spec.seed));
    stripe.initializeIdeal();

    // The del/ins drill judges silence against ground truth: a fixed
    // payload is loaded up front and every decoded readout compared
    // against it. (The positional drill below has no data path, so
    // it judges silence by residual offset instead.)
    std::vector<Bit> reference;
    if (cfg.variant == PeccVariant::DelIns) {
        const int bits = stripe.delInsCode()->payloadBits();
        for (int b = 0; b < bits; ++b)
            reference.push_back((b * 5 + 2) % 3 == 0 ? Bit::One
                                                     : Bit::Zero);
        stripe.loadPayload(reference);
    }

    Rng dice(spec.seed ^ 0xfeedbeef);
    LatencyHistogram *t_dist =
        telemetry ? &telemetry->histogram("faultsim.shift_distance",
                                          powerOfTwoEdges(64.0))
                  : nullptr;

    const int lseg = spec.lseg;
    for (uint64_t i = 0; i < spec.ops; ++i) {
        if (stop && (i & 255) == 0 && stop->poll())
            return out;
        int target = static_cast<int>(
            dice.uniformInt(static_cast<uint64_t>(lseg)));
        int cur_idx = lseg - 1 - stripe.believedOffset();
        int distance = std::abs(target - cur_idx);
        if (distance == 0)
            continue;
        out.distances.add(distance);

        // Accumulate the analytic expectation for this op. The
        // OverheadRegion variant decomposes into 1-step shifts.
        std::vector<int> parts =
            cfg.variant == PeccVariant::OverheadRegion
                ? std::vector<int>(static_cast<size_t>(distance), 1)
                : std::vector<int>{distance};
        ShiftReliability r = analytic.sequence(parts);
        out.exp_corrected += std::exp(r.log_corrected);
        out.exp_due += std::exp(r.log_due);
        out.exp_sdc += std::exp(r.log_sdc);

        // The del/ins scheme is exercised by what it actually
        // protects: a whole-stripe streaming readout (which also
        // realigns), not a positioned seek. The analytic expectation
        // above still uses the op's seek distance as its intensity,
        // matching how the LLC model charges the scheme.
        std::vector<Bit> got;
        ProtectedShiftResult res =
            cfg.variant == PeccVariant::DelIns
                ? stripe.readoutNow(&got)
                : stripe.seekIndex(target);
        if (telemetry) {
            t_dist->record(static_cast<double>(distance));
            if (res.detected)
                telemetry->event(EventKind::ErrorDetected, "stripe",
                                 i, static_cast<double>(distance));
        }
        if (res.unrecoverable) {
            ++out.due;
            if (telemetry)
                telemetry->event(EventKind::RecoveryRung, "due", i);
            stripe.initializeIdeal(); // rebuild and continue
            if (!reference.empty())
                stripe.loadPayload(reference);
            continue;
        }
        if (cfg.variant == PeccVariant::DelIns) {
            if (got != reference) {
                ++out.silent;
                stripe.initializeIdeal();
                stripe.loadPayload(reference);
            } else if (res.corrected) {
                ++out.corrected;
            } else {
                // A residual positionError() here is a latent offset
                // from the fallible return shift; the next readout
                // absorbs it as a burst at read index 0. The data
                // this op returned was exact, so the op is clean.
                ++out.clean;
            }
            continue;
        }
        if (res.corrected) {
            ++out.corrected;
        } else if (stripe.positionError() != 0) {
            ++out.silent;
            stripe.initializeIdeal(); // reset the silent drift
        } else {
            ++out.clean;
        }
    }

    if (telemetry) {
        Telemetry &t = *telemetry.get();
        t.counter("faultsim.ops").add(spec.ops);
        t.counter("faultsim.corrected").add(out.corrected);
        t.counter("faultsim.due").add(out.due);
        t.counter("faultsim.silent").add(out.silent);
        t.counter("faultsim.clean").add(out.clean);
        t.gauge("faultsim.scale").set(spec.scale);
        t.gauge("faultsim.expected_corrected").set(out.exp_corrected);
        t.gauge("faultsim.expected_due").set(out.exp_due);
        t.gauge("faultsim.expected_sdc").set(out.exp_sdc);
    }
    return out;
}

// --- montecarlo cell -------------------------------------------------

McRunResult
runMcCell(const McSpec &spec, TelemetryScope telemetry,
          StopFlag *stop)
{
    ScopedPhase mc_phase("experiment.mc");
    McTier tier = McTier::Exact;
    if (!mcTierFromToken(spec.tier, &tier))
        rtm_fatal("unknown montecarlo tier '%s'", spec.tier.c_str());
    McRunResult out;
    out.distance = spec.distance;
    out.tier = mcTierToken(tier);
    // Nominal device, seed and tier from the spec: the cell result
    // is a pure function of the section. Inside an engine job the
    // nested shard fan-out runs inline, so the determinism guarantee
    // of run()/fitModel() carries through the scheduler.
    PositionErrorMonteCarlo mc(DeviceParams{}, spec.seed, tier);
    mc.setTelemetry(telemetry);
    mc.setStopFlag(stop);
    ErrorPdf pdf = mc.run(spec.distance, spec.trials);
    out.trials = pdf.tallyTrials();
    out.deviation_mean = pdf.deviation.mean();
    out.deviation_stddev = pdf.deviation.stddev();
    out.step_prob_ok = pdf.stepProbability(0);
    out.step_prob_plus1 = pdf.stepProbability(1);
    out.step_prob_minus1 = pdf.stepProbability(-1);
    if (spec.fit_trials > 0) {
        out.has_fit = true;
        out.fit = mc.fitModel(spec.fit_trials).params();
    }
    return out;
}

// --- result serde ----------------------------------------------------

namespace
{

/** MTTFs can be +inf (non-racetrack options); JSON has no inf. */
JsonValue
finiteOrNull(double v)
{
    return std::isfinite(v) ? JsonValue(v) : JsonValue();
}

/** finiteOrNull inverse: null (or absent) restores +inf. */
double
infiniteIfNull(const JsonValue *v)
{
    return v && v->isNumber()
               ? v->asDouble()
               : std::numeric_limits<double>::infinity();
}

} // anonymous namespace

JsonValue
simResultToJson(const std::string &workload, const LlcOption &opt,
                const SimResult &r)
{
    JsonValue v = JsonValue::object();
    v.set("workload", workload);
    v.set("option", opt.label);
    v.set("tech", techToken(opt.tech));
    v.set("scheme", schemeToken(opt.scheme));
    v.set("instructions", r.instructions);
    v.set("mem_ops", r.mem_ops);
    v.set("cycles", static_cast<uint64_t>(r.cycles));
    v.set("seconds", r.seconds);
    v.set("ipc", r.ipc());
    v.set("llc_accesses", r.llc_accesses);
    v.set("llc_misses", r.llc_misses);
    v.set("dram_accesses", r.dram_accesses);
    v.set("shift_ops", r.shift_ops);
    v.set("shift_steps", r.shift_steps);
    v.set("shift_cycles", static_cast<uint64_t>(r.shift_cycles));
    v.set("shifts_per_access", r.shiftsPerAccess());
    v.set("migrations", r.migrations);
    v.set("migration_steps", r.migration_steps);
    // Only present under a pooled-codeword protection domain, so
    // pre-existing result documents (and their digests) keep their
    // exact bytes under the default policy.
    if (r.redundancy_accesses > 0 || r.redundancy_steps > 0) {
        v.set("redundancy_accesses", r.redundancy_accesses);
        v.set("redundancy_steps", r.redundancy_steps);
    }
    v.set("cache_dynamic_energy", r.cache_dynamic_energy);
    v.set("llc_shift_energy", r.llc_shift_energy);
    v.set("dram_energy", r.dram_energy);
    v.set("leakage_energy", r.leakage_energy);
    v.set("total_energy", r.totalEnergy());
    v.set("sdc_mttf", finiteOrNull(r.sdc_mttf));
    v.set("due_mttf", finiteOrNull(r.due_mttf));
    return v;
}

bool
simResultFromJson(const JsonValue &doc, SimResult *out)
{
    if (!doc.isObject())
        return false;
    const JsonValue *workload = doc.find("workload");
    const JsonValue *tech = doc.find("tech");
    const JsonValue *scheme = doc.find("scheme");
    if (!workload || !workload->isString() || !tech ||
        !tech->isString() || !scheme || !scheme->isString())
        return false;
    SimResult r;
    r.workload = workload->asString();
    if (!techFromToken(tech->asString(), &r.llc_tech))
        return false;
    if (!schemeFromToken(scheme->asString(), &r.scheme))
        return false;
    auto u64 = [&doc](const char *key, uint64_t *field) {
        if (const JsonValue *v = doc.find(key))
            *field = v->asU64();
    };
    auto dbl = [&doc](const char *key, double *field) {
        if (const JsonValue *v = doc.find(key))
            *field = v->asDouble();
    };
    u64("instructions", &r.instructions);
    u64("mem_ops", &r.mem_ops);
    u64("cycles", &r.cycles);
    dbl("seconds", &r.seconds);
    u64("llc_accesses", &r.llc_accesses);
    u64("llc_misses", &r.llc_misses);
    u64("dram_accesses", &r.dram_accesses);
    u64("shift_ops", &r.shift_ops);
    u64("shift_steps", &r.shift_steps);
    u64("shift_cycles", &r.shift_cycles);
    u64("migrations", &r.migrations);
    u64("migration_steps", &r.migration_steps);
    u64("redundancy_accesses", &r.redundancy_accesses);
    u64("redundancy_steps", &r.redundancy_steps);
    dbl("cache_dynamic_energy", &r.cache_dynamic_energy);
    dbl("llc_shift_energy", &r.llc_shift_energy);
    dbl("dram_energy", &r.dram_energy);
    dbl("leakage_energy", &r.leakage_energy);
    r.sdc_mttf = infiniteIfNull(doc.find("sdc_mttf"));
    r.due_mttf = infiniteIfNull(doc.find("due_mttf"));
    *out = std::move(r);
    return true;
}

namespace
{

/**
 * Full-fidelity stress checkpoint (the reporting view in
 * stressResultToJson drops the distance tally and p-ECC geometry,
 * which a resumed run needs back).
 */
JsonValue
stressCellToJson(const StressResult &r)
{
    JsonValue v = JsonValue::object();
    v.set("scheme", schemeToken(r.scheme));
    JsonValue pecc = JsonValue::object();
    pecc.set("segments", r.pecc.num_segments);
    pecc.set("lseg", r.pecc.seg_len);
    pecc.set("correct", r.pecc.correct);
    pecc.set("variant", peccVariantToken(r.pecc.variant));
    v.set("pecc", std::move(pecc));
    v.set("corrected", r.corrected);
    v.set("due", r.due);
    v.set("silent", r.silent);
    v.set("clean", r.clean);
    v.set("expected_corrected", r.exp_corrected);
    v.set("expected_due", r.exp_due);
    v.set("expected_sdc", r.exp_sdc);
    v.set("distances", intTallyToJson(r.distances));
    return v;
}

bool
stressCellFromJson(const JsonValue &doc, StressResult *out)
{
    if (!doc.isObject())
        return false;
    const JsonValue *scheme = doc.find("scheme");
    const JsonValue *distances = doc.find("distances");
    if (!scheme || !scheme->isString() || !distances)
        return false;
    StressResult r;
    if (!schemeFromToken(scheme->asString(), &r.scheme))
        return false;
    if (const JsonValue *p = doc.find("pecc")) {
        if (!p->isObject())
            return false;
        if (const JsonValue *v = p->find("segments"))
            r.pecc.num_segments = v->asInt();
        if (const JsonValue *v = p->find("lseg"))
            r.pecc.seg_len = v->asInt();
        if (const JsonValue *v = p->find("correct"))
            r.pecc.correct = v->asInt();
        if (const JsonValue *v = p->find("variant"))
            if (!peccVariantFromToken(v->asString(),
                                      &r.pecc.variant))
                return false;
    }
    auto u64 = [&doc](const char *key, uint64_t *field) {
        if (const JsonValue *v = doc.find(key))
            *field = v->asU64();
    };
    auto dbl = [&doc](const char *key, double *field) {
        if (const JsonValue *v = doc.find(key))
            *field = v->asDouble();
    };
    u64("corrected", &r.corrected);
    u64("due", &r.due);
    u64("silent", &r.silent);
    u64("clean", &r.clean);
    dbl("expected_corrected", &r.exp_corrected);
    dbl("expected_due", &r.exp_due);
    dbl("expected_sdc", &r.exp_sdc);
    if (!intTallyFromJson(*distances, &r.distances))
        return false;
    *out = std::move(r);
    return true;
}

JsonValue
stressResultToJson(const StressResult &r)
{
    JsonValue v = JsonValue::object();
    v.set("scheme", schemeToken(r.scheme));
    v.set("corrected", r.corrected);
    v.set("due", r.due);
    v.set("silent", r.silent);
    v.set("clean", r.clean);
    v.set("expected_corrected", r.exp_corrected);
    v.set("expected_due", r.exp_due);
    v.set("expected_sdc", r.exp_sdc);
    v.set("mean_shift_distance", r.distances.mean());
    return v;
}

JsonValue
mcResultToJson(const McRunResult &r)
{
    JsonValue v = JsonValue::object();
    v.set("distance", r.distance);
    v.set("trials", r.trials);
    v.set("tier", r.tier);
    v.set("deviation_mean", r.deviation_mean);
    v.set("deviation_stddev", r.deviation_stddev);
    v.set("step_prob_ok", r.step_prob_ok);
    v.set("step_prob_plus1", r.step_prob_plus1);
    v.set("step_prob_minus1", r.step_prob_minus1);
    if (r.has_fit) {
        JsonValue fit = JsonValue::object();
        fit.set("sigma_step", r.fit.sigma_step);
        fit.set("resync_rho", r.fit.resync_rho);
        fit.set("drift", r.fit.drift);
        fit.set("notch_half_width", r.fit.notch_half_width);
        v.set("fit", std::move(fit));
    }
    return v;
}

/** mcResultToJson is already full-fidelity; this is its inverse. */
bool
mcResultFromJson(const JsonValue &doc, McRunResult *out)
{
    if (!doc.isObject())
        return false;
    const JsonValue *tier = doc.find("tier");
    if (!tier || !tier->isString())
        return false;
    McRunResult r;
    r.tier = tier->asString();
    if (const JsonValue *v = doc.find("distance"))
        r.distance = v->asInt();
    if (const JsonValue *v = doc.find("trials"))
        r.trials = v->asU64();
    auto dbl = [&doc](const char *key, double *field) {
        if (const JsonValue *v = doc.find(key))
            *field = v->asDouble();
    };
    dbl("deviation_mean", &r.deviation_mean);
    dbl("deviation_stddev", &r.deviation_stddev);
    dbl("step_prob_ok", &r.step_prob_ok);
    dbl("step_prob_plus1", &r.step_prob_plus1);
    dbl("step_prob_minus1", &r.step_prob_minus1);
    if (const JsonValue *fit = doc.find("fit")) {
        if (!fit->isObject())
            return false;
        r.has_fit = true;
        auto fdbl = [fit](const char *key, double *field) {
            if (const JsonValue *v = fit->find(key))
                *field = v->asDouble();
        };
        fdbl("sigma_step", &r.fit.sigma_step);
        fdbl("resync_rho", &r.fit.resync_rho);
        fdbl("drift", &r.fit.drift);
        fdbl("notch_half_width", &r.fit.notch_half_width);
    }
    *out = std::move(r);
    return true;
}

/**
 * The result *sections* alone — the part of the document that must
 * be bit-identical between an uninterrupted run and a kill/resume
 * pair. experimentResultDigest hashes exactly this object.
 */
JsonValue
resultSectionsToJson(const ExperimentResult &result)
{
    const ExperimentSpec &spec = result.spec;
    JsonValue doc = JsonValue::object();
    if (result.has_matrix) {
        JsonValue m = JsonValue::object();
        m.set("workloads", stringArray(spec.matrix.workloads));
        JsonValue opts = JsonValue::array();
        for (const LlcOption &o : spec.matrix.options)
            opts.push(optionToJson(o));
        m.set("options", std::move(opts));
        JsonValue results = JsonValue::array();
        for (const WorkloadMatrixRow &row : result.matrix)
            for (size_t o = 0; o < row.results.size(); ++o)
                results.push(simResultToJson(
                    row.profile.name, spec.matrix.options[o],
                    row.results[o]));
        m.set("results", std::move(results));
        doc.set("matrix", std::move(m));
    }
    if (result.has_campaign)
        doc.set("campaign", campaignResultToJson(result.campaign));
    if (result.has_stress)
        doc.set("stress", stressResultToJson(result.stress));
    if (result.has_mc)
        doc.set("montecarlo", mcResultToJson(result.mc));
    return doc;
}

} // anonymous namespace

// --- journal identity ------------------------------------------------

JournalHeader
makeJournalHeader(const ExperimentSpec &spec, size_t cells)
{
    JournalHeader header;
    header.name = spec.name;
    header.spec_sha256 = experimentSpecHash(spec);
    header.matrix_seed = spec.matrix.seed;
    header.campaign_seed = spec.campaign.config.seed;
    header.stress_seed = spec.stress.seed;
    header.mc_seed = spec.montecarlo.seed;
    header.cells = static_cast<uint64_t>(cells);
    return header;
}

std::string
journalResumeError(const JournalFile &journal,
                   const ExperimentSpec &spec, size_t cells)
{
    if (!journal.has_header)
        return "journal has no intact header record";
    const JournalHeader want = makeJournalHeader(spec, cells);
    const JournalHeader &have = journal.header;
    if (have.spec_sha256 != want.spec_sha256)
        return "journal belongs to a different spec (hash " +
               have.spec_sha256 + ", this run " + want.spec_sha256 +
               ")";
    auto seedMismatch = [](const char *what, uint64_t a,
                           uint64_t b) {
        return std::string("journal ") + what + " seed " +
               std::to_string(a) + " does not match this run's " +
               std::to_string(b);
    };
    if (have.matrix_seed != want.matrix_seed)
        return seedMismatch("matrix", have.matrix_seed,
                            want.matrix_seed);
    if (have.campaign_seed != want.campaign_seed)
        return seedMismatch("campaign", have.campaign_seed,
                            want.campaign_seed);
    if (have.stress_seed != want.stress_seed)
        return seedMismatch("stress", have.stress_seed,
                            want.stress_seed);
    if (have.mc_seed != want.mc_seed)
        return seedMismatch("montecarlo", have.mc_seed,
                            want.mc_seed);
    if (have.cells != want.cells)
        return "journal cell count " + std::to_string(have.cells) +
               " does not match this run's " +
               std::to_string(want.cells);
    return "";
}

// --- whole-spec runs -------------------------------------------------

ExperimentResult
runExperiment(const ExperimentSpec &spec_in,
              const PositionErrorModel *model,
              TelemetryScope telemetry, const RunControl &control)
{
    ScopedPhase run_phase("experiment.run");
    ExperimentResult res;
    res.spec = spec_in;
    normalizeExperimentSpec(&res.spec);
    const ExperimentSpec &spec = res.spec;

    ExperimentEngine engine;
    PaperCalibratedErrorModel default_model;
    const PositionErrorModel *matrix_model =
        model ? model : &default_model;

    if (spec.matrix.enabled) {
        res.has_matrix = true;
        std::vector<WorkloadProfile> profiles;
        profiles.reserve(spec.matrix.workloads.size());
        for (const std::string &name : spec.matrix.workloads)
            profiles.push_back(parsecProfile(name));
        appendMatrixJobs(engine, &res.matrix, profiles,
                         spec.matrix.options, matrix_model,
                         spec.matrix.requests, spec.matrix.warmup,
                         spec.matrix.divisor, spec.matrix.seed,
                         spec.protection);
    }
    if (spec.campaign.enabled) {
        res.has_campaign = true;
        engine.requestRingCapacity(
            spec.campaign.config.telemetry_ring_capacity);
        std::vector<WorkloadProfile> profiles;
        profiles.reserve(spec.campaign.workloads.size());
        for (const std::string &name : spec.campaign.workloads)
            profiles.push_back(parsecProfile(name));
        appendCampaignJobs(engine, &res.campaign,
                           spec.campaign.scenarios, profiles,
                           spec.campaign.config);
    }
    if (spec.stress.enabled) {
        res.has_stress = true;
        StressResult *slot = &res.stress;
        const StressSpec stress = spec.stress;
        ExperimentEngine::Cell cell;
        cell.label = "stress";
        cell.body = [slot, stress](TelemetryScope t,
                                   StopFlag *stop) {
            *slot = runStressDrill(stress, t, stop);
        };
        cell.save = [slot] { return stressCellToJson(*slot); };
        cell.load = [slot](const JsonValue &doc) {
            return stressCellFromJson(doc, slot);
        };
        engine.addCell(std::move(cell));
    }
    if (spec.montecarlo.enabled) {
        res.has_mc = true;
        McRunResult *slot = &res.mc;
        const McSpec mc = spec.montecarlo;
        ExperimentEngine::Cell cell;
        cell.label = "montecarlo";
        cell.body = [slot, mc](TelemetryScope t, StopFlag *stop) {
            *slot = runMcCell(mc, t, stop);
        };
        cell.save = [slot] { return mcResultToJson(*slot); };
        cell.load = [slot](const JsonValue &doc) {
            return mcResultFromJson(doc, slot);
        };
        engine.addCell(std::move(cell));
    }

    res.cells = engine.jobCount();
    engine.setCancelToken(control.cancel);
    engine.setResilience(spec.resilience);
    if (control.fault_hook)
        engine.setFaultHook(control.fault_hook);
    if (control.on_cell)
        engine.setOutcomeCallback(control.on_cell);

    // Resume: replay every intact journaled cell into its slot.
    // A record that fails to load (index drift, malformed payload)
    // is not fatal — the cell simply re-runs.
    std::vector<JournalRecord> replayed;
    if (!control.resume_path.empty()) {
        JournalFile journal;
        std::string error;
        if (!readJournal(control.resume_path, &journal, &error))
            rtm_fatal("--resume: %s", error.c_str());
        error = journalResumeError(journal, spec, res.cells);
        if (!error.empty())
            rtm_fatal("--resume %s: %s",
                      control.resume_path.c_str(), error.c_str());
        for (JournalRecord &record : journal.records) {
            if (engine.replayCell(
                    static_cast<size_t>(record.index),
                    record.result))
                replayed.push_back(std::move(record));
        }
    }

    // Checkpoint stream. Resuming into the same file appends after
    // the records just replayed; a fresh stream gets the header plus
    // re-emitted replayed records so it is self-contained.
    JournalWriter journal;
    if (!control.stream_path.empty()) {
        const bool append =
            control.stream_path == control.resume_path;
        std::string error;
        if (!journal.open(control.stream_path, append, &error))
            rtm_fatal("--stream-out: %s", error.c_str());
        if (!append) {
            journal.appendHeader(
                makeJournalHeader(spec, res.cells));
            for (const JournalRecord &record : replayed)
                journal.appendRecord(record);
        }
        engine.setJournal(&journal);
    }

    engine.run(telemetry);

    res.outcomes = engine.outcomes();
    for (const CellOutcome &outcome : res.outcomes) {
        switch (outcome.status) {
        case CellStatus::Ok: ++res.ok_cells; break;
        case CellStatus::Failed: ++res.failed_cells; break;
        case CellStatus::TimedOut: ++res.timed_out_cells; break;
        case CellStatus::Cancelled: ++res.cancelled_cells; break;
        case CellStatus::Skipped: ++res.replayed_cells; break;
        }
    }
    res.interrupted =
        res.cancelled_cells > 0 || res.timed_out_cells > 0;

    if (res.has_campaign)
        finalizeCampaignTotals(&res.campaign);

    if (journal.isOpen() && !journal.close())
        rtm_fatal("checkpoint journal '%s': write failed "
                  "(disk full?) — stream is not resumable",
                  control.stream_path.c_str());
    return res;
}

// --- result export ---------------------------------------------------

std::string
experimentResultDigest(const ExperimentResult &result)
{
    const std::string text = resultSectionsToJson(result).dump(0);
    return sha256Hex(text.data(), text.size());
}

JsonValue
experimentResultToJson(const ExperimentResult &result)
{
    const ExperimentSpec &spec = result.spec;
    JsonValue doc = JsonValue::object();
    doc.set("name", spec.name);
    doc.set("cells", static_cast<uint64_t>(result.cells));
    doc.set("spec", experimentSpecToJson(spec));
    JsonValue sections = resultSectionsToJson(result);
    const std::string text = sections.dump(0);
    doc.set("digest", sha256Hex(text.data(), text.size()));
    for (auto &member : sections.members())
        doc.set(member.first, member.second);

    JsonValue resilience = JsonValue::object();
    resilience.set("ok", result.ok_cells);
    resilience.set("failed", result.failed_cells);
    resilience.set("timed_out", result.timed_out_cells);
    resilience.set("cancelled", result.cancelled_cells);
    resilience.set("replayed", result.replayed_cells);
    resilience.set("interrupted", result.interrupted);
    JsonValue outcomes = JsonValue::array();
    for (size_t i = 0; i < result.outcomes.size(); ++i) {
        const CellOutcome &o = result.outcomes[i];
        if (o.status == CellStatus::Ok ||
            o.status == CellStatus::Skipped)
            continue;
        JsonValue entry = JsonValue::object();
        entry.set("index", static_cast<uint64_t>(i));
        entry.set("label", o.label);
        entry.set("status", cellStatusToken(o.status));
        if (!o.error.empty())
            entry.set("error", o.error);
        entry.set("attempts", o.attempts);
        outcomes.push(std::move(entry));
    }
    if (outcomes.size() > 0)
        resilience.set("outcomes", std::move(outcomes));
    doc.set("resilience", std::move(resilience));
    return doc;
}

bool
writeExperimentJson(const ExperimentResult &result,
                    const std::string &path)
{
    return saveJsonFile(path, experimentResultToJson(result));
}

} // namespace rtm
