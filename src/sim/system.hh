/**
 * @file
 * Trace-driven system simulator (paper Sec. 6.1).
 *
 * Four in-order single-issue 2 GHz cores execute synthetic workload
 * streams: non-memory instructions retire one per cycle, memory
 * operations block their core for the hierarchy latency. The cores
 * advance loosely in lockstep (round-robin request interleave), which
 * captures what the evaluation needs: LLC access intensity, shift
 * distance/interval distributions, end-to-end execution time, and
 * energy.
 *
 * Outputs per run: execution time, per-level energy, shift statistics
 * and the reliability accumulators that Figs. 10-12 read.
 */

#ifndef RTM_SIM_SYSTEM_HH
#define RTM_SIM_SYSTEM_HH

#include <memory>
#include <string>

#include "device/error_model.hh"
#include "mem/hierarchy.hh"
#include "model/reliability.hh"
#include "trace/workload.hh"
#include "util/parallel.hh"
#include "util/units.hh"

namespace rtm
{

/** Result of one simulated workload run. */
struct SimResult
{
    std::string workload;
    MemTech llc_tech = MemTech::SRAM;
    Scheme scheme = Scheme::Baseline;

    uint64_t instructions = 0;
    uint64_t mem_ops = 0;
    Cycles cycles = 0;
    Seconds seconds = 0.0;

    // Energy breakdown (joules).
    Joules cache_dynamic_energy = 0.0; //!< all cache levels + shifts
    Joules llc_shift_energy = 0.0;
    Joules dram_energy = 0.0;
    Joules leakage_energy = 0.0;

    // LLC behaviour.
    uint64_t llc_accesses = 0;
    uint64_t llc_misses = 0;
    uint64_t dram_accesses = 0; //!< measured phase (warmup excluded)
    uint64_t shift_ops = 0;
    uint64_t shift_steps = 0;
    Cycles shift_cycles = 0;

    // Placement migrations (racetrack LLC with a dynamic placement
    // policy; zero otherwise). Their steps are included in
    // shift_steps.
    uint64_t migrations = 0;
    uint64_t migration_steps = 0;

    // Pooled-codeword redundancy traffic (racetrack LLC under a
    // multi-frame protection domain; zero under the default
    // per-frame policy). Counted inside llc/shift totals too.
    uint64_t redundancy_accesses = 0;
    uint64_t redundancy_steps = 0;

    // Reliability (racetrack only; +inf otherwise).
    Seconds sdc_mttf = 0.0;
    Seconds due_mttf = 0.0;

    /** Total energy including leakage and DRAM. */
    Joules totalEnergy() const
    {
        return cache_dynamic_energy + dram_energy + leakage_energy;
    }

    /** Instructions per cycle across all cores. */
    double ipc() const;

    /**
     * Shift steps (total shift distance, migrations included) per
     * LLC access — the metric data placement minimises.
     */
    double shiftsPerAccess() const;
};

/** One simulation configuration. */
struct SimConfig
{
    HierarchyConfig hierarchy;
    uint64_t mem_requests = 200000; //!< requests to simulate
    uint64_t warmup_requests = 20000;
    uint64_t seed = 42;

    /**
     * Observability sink for this run: forwarded into the hierarchy
     * (and the racetrack bank), plus sim-level counters, an access
     * latency histogram, and LLC miss-burst events. Disabled (null)
     * by default; SimResult is bit-identical either way.
     */
    TelemetryScope telemetry = {};

    /**
     * Optional cooperative stop flag, polled periodically inside the
     * warmup and measure loops. When it trips the run returns early
     * with a partial (invalid) result — the caller is responsible for
     * discarding it, which the experiment engine does by classifying
     * the cell as cancelled/timed-out instead of completed.
     */
    StopFlag *stop = nullptr;

    /**
     * When non-null, receives the racetrack bank's per-frame access
     * counts at the end of the run (empty for non-racetrack LLCs or
     * non-tracking placement policies). A profiling pass sets
     * `hierarchy.placement.track_counts` and feeds the counts back
     * as the offline hot-center profile of a second run.
     */
    std::vector<uint64_t> *frame_profile_out = nullptr;
};

/**
 * Run one workload through one configuration.
 *
 * @param profile workload profile
 * @param config  simulation configuration
 * @param model   position-error model for racetrack LLCs (ignored
 *                otherwise; must outlive the call)
 */
SimResult simulate(const WorkloadProfile &profile,
                   const SimConfig &config,
                   const PositionErrorModel *model);

/**
 * Run a recorded trace through one configuration (the trace loops
 * if it is shorter than config.mem_requests). The warmup phase is
 * also served from the trace.
 *
 * @param name     label recorded in the result
 * @param requests the trace (must be non-empty)
 */
SimResult simulateTrace(const std::string &name,
                        const std::vector<MemRequest> &requests,
                        const SimConfig &config,
                        const PositionErrorModel *model);

} // namespace rtm

#endif // RTM_SIM_SYSTEM_HH
