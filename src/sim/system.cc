#include "system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rtm
{

double
SimResult::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(instructions) /
           static_cast<double>(cycles);
}

double
SimResult::shiftsPerAccess() const
{
    if (llc_accesses == 0)
        return 0.0;
    return static_cast<double>(shift_steps) /
           static_cast<double>(llc_accesses);
}

namespace
{

/**
 * Core simulation loop shared by the synthetic and trace-replay
 * front-ends: `next` yields the request stream.
 */
template <typename NextFn>
SimResult
runSim(const std::string &name, const SimConfig &config,
       const PositionErrorModel *model, NextFn &&next)
{
    HierarchyConfig hcfg = config.hierarchy;
    if (config.telemetry)
        hcfg.telemetry = config.telemetry;
    Hierarchy hierarchy(hcfg, model);

    // Per-core local time; the simulator interleaves requests
    // round-robin and advances each core independently, then takes
    // the max as wall-clock (barrier at the end, like a parallel
    // phase).
    std::vector<Cycles> core_time(
        static_cast<size_t>(config.hierarchy.cores), 0);

    SimResult res;
    res.workload = name;
    res.llc_tech = config.hierarchy.llc_tech;
    res.scheme = config.hierarchy.scheme;

    // Cooperative cancellation: poll the stop flag at a coarse
    // stride so the hot loop pays one predictable branch per block.
    constexpr uint64_t kStopPollStride = 1024;

    // Warmup: touch caches without accounting.
    {
        ScopedPhase phase("sim.warmup");
        for (uint64_t i = 0; i < config.warmup_requests; ++i) {
            if (config.stop && i % kStopPollStride == 0 &&
                config.stop->poll())
                return res;
            const MemRequest &req = next();
            auto c = static_cast<size_t>(req.core);
            core_time[c] += req.gap_instructions;
            HierarchyAccess acc = hierarchy.access(
                req.core, req.addr, req.is_write, core_time[c]);
            core_time[c] += acc.latency;
        }
    }

    // Snapshot counters after warmup so deltas are measured.
    uint64_t warm_l3_acc = hierarchy.l3().stats().accesses();
    uint64_t warm_l3_miss = hierarchy.l3().stats().misses();
    uint64_t warm_dram = hierarchy.dramAccesses();
    Joules warm_dram_energy = hierarchy.dramEnergy();
    RmBankStats warm_rm;
    if (hierarchy.rmBank())
        warm_rm = hierarchy.rmBank()->stats();
    std::vector<Cycles> start_time = core_time;

    // Telemetry hooks on the measured loop: an access-latency
    // histogram and LLC miss-burst events. All guarded on the null
    // handle, and they only *read* the access outcome.
    Telemetry *t = config.telemetry.get();
    LatencyHistogram *lat_hist =
        t ? &t->histogram("sim.access_latency_cycles",
                          powerOfTwoEdges(65536.0))
          : nullptr;
    constexpr uint64_t kBurstLen = 8; //!< misses before "burst"
    uint64_t miss_run = 0;
    Cycles burst_end = 0;

    Joules dynamic_energy = 0.0;
    {
        ScopedPhase phase("sim.measure");
        for (uint64_t i = 0; i < config.mem_requests; ++i) {
            if (config.stop && i % kStopPollStride == 0 &&
                config.stop->poll())
                return res;
            const MemRequest &req = next();
            auto c = static_cast<size_t>(req.core);
            core_time[c] += req.gap_instructions;
            res.instructions += req.gap_instructions + 1;
            ++res.mem_ops;
            HierarchyAccess acc = hierarchy.access(
                req.core, req.addr, req.is_write, core_time[c]);
            core_time[c] += acc.latency;
            dynamic_energy += acc.energy;
            if (t) {
                lat_hist->record(static_cast<double>(acc.latency));
                if (acc.dram_access) {
                    ++miss_run;
                    burst_end = core_time[c];
                } else if (miss_run > 0) {
                    if (miss_run >= kBurstLen)
                        t->event(EventKind::CacheMissBurst, "llc",
                                 burst_end,
                                 static_cast<double>(miss_run));
                    miss_run = 0;
                }
            }
        }
    }
    if (t && miss_run >= kBurstLen)
        t->event(EventKind::CacheMissBurst, "llc", burst_end,
                 static_cast<double>(miss_run));

    Cycles max_elapsed = 0;
    for (size_t c = 0; c < core_time.size(); ++c)
        max_elapsed = std::max(max_elapsed,
                               core_time[c] - start_time[c]);
    res.cycles = max_elapsed;
    res.seconds = cyclesToSeconds(res.cycles);

    res.cache_dynamic_energy = dynamic_energy;
    res.dram_energy = hierarchy.dramEnergy() - warm_dram_energy;
    res.leakage_energy = hierarchy.totalLeakageWatts() * res.seconds;

    res.llc_accesses = hierarchy.l3().stats().accesses() -
                       warm_l3_acc;
    res.llc_misses = hierarchy.l3().stats().misses() - warm_l3_miss;
    res.dram_accesses = hierarchy.dramAccesses() - warm_dram;

    if (const RmBank *bank = hierarchy.rmBank()) {
        const RmBankStats &s = bank->stats();
        res.shift_ops = s.shift_ops - warm_rm.shift_ops;
        res.shift_steps = s.shift_steps - warm_rm.shift_steps;
        res.shift_cycles = s.shift_cycles - warm_rm.shift_cycles;
        res.llc_shift_energy = s.shift_energy - warm_rm.shift_energy;
        res.migrations = s.migrations - warm_rm.migrations;
        res.migration_steps =
            s.migration_steps - warm_rm.migration_steps;
        res.redundancy_accesses =
            s.redundancy_accesses - warm_rm.redundancy_accesses;
        res.redundancy_steps =
            s.redundancy_steps - warm_rm.redundancy_steps;

        // Reliability: expected events accumulated during the
        // measured phase over the measured time span.
        MttfAccumulator rel = s.reliability;
        MttfAccumulator warm_rel = warm_rm.reliability;
        double sdc = rel.expectedSdc() - warm_rel.expectedSdc();
        double due = rel.expectedDue() - warm_rel.expectedDue();
        res.sdc_mttf = sdc > 0.0
                           ? res.seconds / sdc
                           : std::numeric_limits<double>::infinity();
        res.due_mttf = due > 0.0
                           ? res.seconds / due
                           : std::numeric_limits<double>::infinity();
    } else {
        res.sdc_mttf = std::numeric_limits<double>::infinity();
        res.due_mttf = std::numeric_limits<double>::infinity();
    }

    if (t) {
        // Measured-phase counters, exported from the final SimResult
        // so the two views can never disagree. The mem.* counters
        // from exportTelemetry cover the whole run (warmup
        // included).
        t->counter("sim.requests").add(res.mem_ops);
        t->counter("sim.instructions").add(res.instructions);
        t->counter("sim.cycles").add(res.cycles);
        t->counter("sim.llc.accesses").add(res.llc_accesses);
        t->counter("sim.llc.misses").add(res.llc_misses);
        t->counter("sim.dram.accesses").add(res.dram_accesses);
        t->counter("sim.rm.shift_ops").add(res.shift_ops);
        t->counter("sim.rm.shift_steps").add(res.shift_steps);
        t->counter("sim.rm.shift_cycles").add(res.shift_cycles);
        t->counter("sim.rm.migrations").add(res.migrations);
        t->counter("sim.rm.migration_steps")
            .add(res.migration_steps);
        t->gauge("sim.ipc").set(res.ipc());
        t->gauge("sim.seconds").set(res.seconds);
        hierarchy.exportTelemetry(*t);
    }
    if (config.frame_profile_out) {
        config.frame_profile_out->clear();
        if (const RmBank *bank = hierarchy.rmBank())
            *config.frame_profile_out = bank->frameAccessCounts();
    }
    return res;
}

} // anonymous namespace

SimResult
simulate(const WorkloadProfile &profile, const SimConfig &config,
         const PositionErrorModel *model)
{
    WorkloadGenerator gen(profile, config.hierarchy.cores,
                          config.seed);
    return runSim(profile.name, config, model,
                  [&gen] { return gen.next(); });
}

SimResult
simulateTrace(const std::string &name,
              const std::vector<MemRequest> &requests,
              const SimConfig &config,
              const PositionErrorModel *model)
{
    if (requests.empty())
        rtm_fatal("simulateTrace: empty trace");
    size_t pos = 0;
    // Return by reference and wrap with a branch: no per-request
    // MemRequest copy and no modulo on the hot path.
    auto next = [&requests, &pos]() -> const MemRequest & {
        const MemRequest &r = requests[pos];
        if (++pos == requests.size())
            pos = 0;
        return r;
    };
    return runSim(name, config, model, next);
}

} // namespace rtm
