/**
 * @file
 * Shift-policy selection (paper Sec. 5.2-5.3).
 *
 * Three policies map an access request onto a shift sequence:
 *
 *  - Unconstrained: always one shift of the full distance (the
 *    baseline "RM w/o p-ECC" behaviour and the plain p-ECC scheme).
 *  - WorstCase ("p-ECC-S worst"): a fixed safe distance computed from
 *    the memory's peak access intensity caps every sub-shift.
 *  - Adaptive ("p-ECC-S adaptive"): an interval counter measures the
 *    time since the last shift; the adapter table (Pareto fronts from
 *    the planner) picks the fastest sequence that is safe at the
 *    observed run-time intensity.
 *
 * The OverheadRegion variant (p-ECC-O) is inherently step-by-step;
 * its policy decomposes every request into 1-step shifts.
 */

#ifndef RTM_CONTROL_ADAPTER_HH
#define RTM_CONTROL_ADAPTER_HH

#include <cstdint>

#include "control/planner.hh"

namespace rtm
{

/** Shift-policy flavours evaluated in the paper. */
enum class ShiftPolicy
{
    Unconstrained,  //!< one shift per request, any distance
    StepByStep,     //!< 1-step shifts only (p-ECC-O)
    WorstCase,      //!< fixed safe distance from peak intensity
    Adaptive        //!< run-time interval-based selection
};

/**
 * Stateful policy engine: owns the interval counter and consults the
 * planner's Pareto tables.
 */
class ShiftAdapter
{
  public:
    /**
     * @param planner   sequence planner (not owned)
     * @param policy    policy flavour
     * @param peak_ops_per_second peak access intensity used by the
     *        WorstCase policy to fix its safe distance
     */
    ShiftAdapter(const ShiftPlanner *planner, ShiftPolicy policy,
                 double peak_ops_per_second);

    /**
     * Choose the sequence for a request of `distance` steps issued at
     * absolute time `now_cycles`. Updates the interval counter.
     * The returned plan is owned by the planner's tables (except for
     * trivial single-part plans, which are returned from a scratch
     * slot valid until the next call).
     */
    const SequencePlan &plan(int distance, Cycles now_cycles);

    /**
     * Most conservative sequence for `distance` steps: 1-step
     * sub-shifts regardless of policy. The recovery ladder re-seeks
     * with this after a failed episode — when the stripe has just
     * misbehaved, the gentlest drive is the one to finish with. Does
     * not touch the interval counter (recovery traffic must not make
     * the adaptive policy believe intensity rose).
     */
    const SequencePlan &cautiousPlan(int distance);

    /** Fixed safe distance of the WorstCase policy. */
    int worstCaseSafeDistance() const { return worst_case_distance_; }

    /** Policy flavour in effect. */
    ShiftPolicy policy() const { return policy_; }

    /** Observed interval before the most recent request. */
    Cycles lastInterval() const { return last_interval_; }

  private:
    const ShiftPlanner *planner_;
    ShiftPolicy policy_;
    int worst_case_distance_;
    Cycles last_request_ = 0;
    Cycles last_interval_ = 0;
    bool first_ = true;
    SequencePlan scratch_;

    const SequencePlan &fixedPartsPlan(int distance, int part);
};

} // namespace rtm

#endif // RTM_CONTROL_ADAPTER_HH
