/**
 * @file
 * Port-position (head) scheduling policies.
 *
 * Serving a frame costs the distance between the group's current
 * head position and the frame's slot, so where the heads *rest*
 * between requests is a scheduling decision of its own. The paper's
 * intro credits "head management" techniques [39, 44] with much of
 * racetrack's cache viability; stay/return-home/center are the
 * standard options from that literature, and predictive is the
 * placement-aware variant that parks each group's heads under the
 * slot that served the most accesses in the group's last epoch
 * (mem/placement.hh supplies the per-group prediction).
 */

#ifndef RTM_CONTROL_HEAD_POLICY_HH
#define RTM_CONTROL_HEAD_POLICY_HH

#include <string>

namespace rtm
{

/** Where a group's access heads rest after serving a request. */
enum class HeadPolicy
{
    Stay,       //!< leave heads where the last access put them
    ReturnHome, //!< drift back to offset 0 when idle
    Center,     //!< drift to the segment midpoint when idle
    Predictive  //!< drift to the group's hottest slot of last epoch
};

/** Human-readable head-policy name (also the spec/CLI token). */
const char *headPolicyName(HeadPolicy policy);

/**
 * Parse a head-policy token. Accepts the canonical names plus
 * "home" as a shorthand for "return-home". Returns false on
 * unknown input.
 */
bool headPolicyFromToken(const std::string &token, HeadPolicy *out);

} // namespace rtm

#endif // RTM_CONTROL_HEAD_POLICY_HH
