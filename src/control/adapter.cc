#include "adapter.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

ShiftAdapter::ShiftAdapter(const ShiftPlanner *planner,
                           ShiftPolicy policy,
                           double peak_ops_per_second)
    : planner_(planner), policy_(policy)
{
    if (!planner_)
        rtm_fatal("adapter needs a planner");
    worst_case_distance_ =
        planner_->safeDistance(peak_ops_per_second);
}

const SequencePlan &
ShiftAdapter::fixedPartsPlan(int distance, int part)
{
    scratch_.parts.clear();
    scratch_.log_fail_rate =
        -std::numeric_limits<double>::infinity();
    scratch_.latency = 0;
    int remaining = distance;
    while (remaining > 0) {
        int p = std::min(remaining, part);
        scratch_.parts.push_back(p);
        scratch_.log_fail_rate = logSumExp(
            scratch_.log_fail_rate, planner_->logFailRate(p));
        remaining -= p;
    }
    scratch_.min_interval = 0;
    // Latency: sum of per-part shift cycles via the planner's Pareto
    // data is not available for arbitrary splits, so recompute from
    // the front of each single part (front of d=p always contains the
    // one-shot plan {p} as its fastest element).
    Cycles lat = 0;
    for (int p : scratch_.parts)
        lat += planner_->paretoFront(p).front().latency;
    scratch_.latency = lat;
    return scratch_;
}

const SequencePlan &
ShiftAdapter::cautiousPlan(int distance)
{
    if (distance < 1 || distance > planner_->maxPart())
        rtm_panic("adapter cautiousPlan(%d) outside [1, %d]",
                  distance, planner_->maxPart());
    return fixedPartsPlan(distance, 1);
}

const SequencePlan &
ShiftAdapter::plan(int distance, Cycles now_cycles)
{
    if (distance < 1 || distance > planner_->maxPart())
        rtm_panic("adapter plan(%d) outside [1, %d]", distance,
                  planner_->maxPart());
    Cycles interval;
    if (first_) {
        interval = std::numeric_limits<Cycles>::max();
        first_ = false;
    } else {
        interval = now_cycles > last_request_
                       ? now_cycles - last_request_
                       : 0;
    }
    last_interval_ = interval;
    last_request_ = now_cycles;

    switch (policy_) {
      case ShiftPolicy::Unconstrained:
        return planner_->paretoFront(distance).front();
      case ShiftPolicy::StepByStep:
        return fixedPartsPlan(distance, 1);
      case ShiftPolicy::WorstCase:
        return fixedPartsPlan(distance, worst_case_distance_);
      case ShiftPolicy::Adaptive:
        return planner_->planFor(distance, interval);
    }
    rtm_panic("unreachable policy");
}

} // namespace rtm
