/**
 * @file
 * Position-error-aware shift controller (paper Sec. 5, Fig. 9).
 *
 * The controller binds a protected stripe to a shift policy: access
 * requests name a segment-local index; the controller computes the
 * required offset delta, asks the adapter for a safe sequence, issues
 * the protected shifts, and accounts latency, energy, and reliability
 * events. It is the functional top of the paper's contribution and
 * the unit the examples and fault-injection tests drive.
 */

#ifndef RTM_CONTROL_CONTROLLER_HH
#define RTM_CONTROL_CONTROLLER_HH

#include <cstdint>
#include <memory>

#include "codec/protected_stripe.hh"
#include "control/adapter.hh"
#include "control/planner.hh"
#include "control/sts.hh"
#include "util/stats.hh"

namespace rtm
{

/** Per-controller statistics. */
struct ControllerStats
{
    uint64_t accesses = 0;        //!< read/write requests served
    uint64_t shift_ops = 0;       //!< shift operations issued
    uint64_t shift_steps = 0;     //!< total steps moved (energy)
    uint64_t detected_errors = 0; //!< p-ECC detections
    uint64_t corrected_errors = 0;
    uint64_t unrecoverable = 0;   //!< DUE events observed
    uint64_t silent_errors = 0;   //!< ground-truth SDC events
    Cycles busy_cycles = 0;       //!< cycles spent shifting/checking
    IntTally distance_histogram;  //!< sub-shift distances issued
};

/** Result of one access through the controller. */
struct AccessResult
{
    Bit value = Bit::X;        //!< bit read (reads only)
    Cycles latency = 0;        //!< cycles this access took
    bool due = false;          //!< unrecoverable position error
    bool position_ok = true;   //!< ground truth: aligned correctly
};

/**
 * Shift controller for one stripe.
 */
class ShiftController
{
  public:
    /**
     * @param config  protection configuration of the stripe
     * @param model   error model used for fault injection
     * @param policy  shift policy flavour
     * @param peak_ops_per_second peak intensity for WorstCase policy
     * @param rng     controller-local RNG stream
     * @param mttf_target_s reliability budget for the planner
     */
    ShiftController(const PeccConfig &config,
                    const PositionErrorModel *model,
                    ShiftPolicy policy, double peak_ops_per_second,
                    Rng rng,
                    double mttf_target_s = kDefaultSafeMttfSeconds);

    /** Initialise code and data (ideal chip-test path). */
    void initialize();

    /**
     * Read the bit at segment-local index r of `segment` at absolute
     * time `now_cycles` (drives shifts as needed).
     */
    AccessResult read(int segment, int index, Cycles now_cycles);

    /** Write the bit at segment-local index r of `segment`. */
    AccessResult write(int segment, int index, Bit value,
                       Cycles now_cycles);

    /** Statistics accumulated so far. */
    const ControllerStats &stats() const { return stats_; }

    /** The wrapped stripe (inspection). */
    ProtectedStripe &stripe() { return stripe_; }
    const ProtectedStripe &stripe() const { return stripe_; }

    /** The planner (inspection/benches). */
    const ShiftPlanner &planner() const { return planner_; }

    /** The adapter (inspection/benches). */
    const ShiftAdapter &adapter() const { return adapter_; }

    /** STS timing model in use. */
    const StsTiming &timing() const { return timing_; }

  private:
    ProtectedStripe stripe_;
    StsTiming timing_;
    ShiftPlanner planner_;
    ShiftAdapter adapter_;
    ControllerStats stats_;

    /** Move to the offset serving (segment-local) index r. */
    AccessResult seek(int index, Cycles now_cycles);
};

} // namespace rtm

#endif // RTM_CONTROL_CONTROLLER_HH
