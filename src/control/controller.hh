/**
 * @file
 * Position-error-aware shift controller (paper Sec. 5, Fig. 9).
 *
 * The controller binds a protected stripe to a shift policy: access
 * requests name a segment-local index; the controller computes the
 * required offset delta, asks the adapter for a safe sequence, issues
 * the protected shifts, and accounts latency, energy, and reliability
 * events. It is the functional top of the paper's contribution and
 * the unit the examples and fault-injection tests drive.
 */

#ifndef RTM_CONTROL_CONTROLLER_HH
#define RTM_CONTROL_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "codec/protected_stripe.hh"
#include "control/adapter.hh"
#include "control/planner.hh"
#include "control/sts.hh"
#include "util/stats.hh"
#include "util/telemetry.hh"

namespace rtm
{

/**
 * Recovery escalation ladder configuration.
 *
 * When a shift episode exhausts the stripe's in-line correction
 * rounds (what used to be an immediate DUE), the controller climbs a
 * bounded ladder before giving up:
 *
 *   1. verify-and-retry: re-decode the window and re-run the
 *      counter-shift loop, up to `retry_budget` times;
 *   2. STS stage-2 realign: a sub-threshold pulse walks any wall out
 *      of the flat region, then verify-and-retry once more;
 *   3. full scrub: rebuild code domains and refill data (modelled as
 *      an invalidate-and-refetch; always restores alignment);
 *   4. declare DUE.
 *
 * Every rung is bounded, so an access can never hang, and every rung
 * charges latency into `ControllerStats::recovery_cycles`. The
 * default (`retry_budget == 0`) preserves the legacy behaviour:
 * correction failure is reported as a DUE immediately.
 */
struct RecoveryConfig
{
    int retry_budget = 0;     //!< rung-1 attempts (0 = ladder off)
    bool sts_realign = true;  //!< enable the stage-2 realign rung
    bool allow_scrub = true;  //!< enable the scrub rung
    int max_replans = 2;      //!< cautious re-seeks after recovery
    Cycles scrub_cycles = 1024; //!< charged per full scrub (refill)
};

/** Per-controller statistics. */
struct ControllerStats
{
    uint64_t accesses = 0;        //!< read/write requests served
    uint64_t shift_ops = 0;       //!< shift operations issued
    uint64_t shift_steps = 0;     //!< total steps moved (energy)
    uint64_t detected_errors = 0; //!< p-ECC detections
    uint64_t corrected_errors = 0;
    uint64_t unrecoverable = 0;   //!< DUE events observed
    uint64_t silent_errors = 0;   //!< ground-truth SDC events
    Cycles busy_cycles = 0;       //!< cycles spent shifting/checking
    IntTally distance_histogram;  //!< sub-shift distances issued

    // Recovery-ladder decomposition: every detected episode ends in
    // exactly one of corrected_errors (in-line counter-shift),
    // recovered_retry / recovered_realign / recovered_scrub (ladder
    // rungs), or unrecoverable (ladder exhausted or disabled).
    uint64_t retry_attempts = 0;    //!< rung-1 verify-and-retry runs
    uint64_t sts_realigns = 0;      //!< rung-2 stage-2 pulses
    uint64_t scrubs = 0;            //!< rung-3 full scrubs
    uint64_t recovered_retry = 0;   //!< episodes ended by rung 1
    uint64_t recovered_realign = 0; //!< episodes ended by rung 2
    uint64_t recovered_scrub = 0;   //!< episodes ended by rung 3
    Cycles recovery_cycles = 0;     //!< cycles spent on the ladder

    // Two-tier read discipline (PeccConfig::two_tier): every checked
    // shift runs the cheap EDC phase probe; a clean probe ends the
    // check (edc_passes), a flagged one escalates to the full decode
    // plus — for pooled codewords — the redundancy fetch
    // (full_decodes). Per-tier cycles decompose the discipline's
    // cost: edc_cycles attributes the probe time already folded into
    // the shift timing, decode_cycles is the extra escalation
    // latency charged on top.
    uint64_t edc_checks = 0;   //!< tier-1 probes issued
    uint64_t edc_passes = 0;   //!< shifts cleared by the probe alone
    uint64_t full_decodes = 0; //!< escalations to the full decode
    Cycles edc_cycles = 0;     //!< attributed tier-1 probe cycles
    Cycles decode_cycles = 0;  //!< extra tier-2 escalation cycles

    /** Per-field sum (campaign aggregation). */
    void merge(const ControllerStats &other);
};

/**
 * Ledger invariant check: every detection is accounted to exactly
 * one outcome bucket. Returns an empty string when consistent, else
 * a description of the violated invariant. The campaign runner calls
 * this after every cell; debug builds also assert it inline.
 */
std::string controllerLedgerViolation(const ControllerStats &stats);

/** Result of one access through the controller. */
struct AccessResult
{
    Bit value = Bit::X;        //!< bit read (reads only)
    Cycles latency = 0;        //!< cycles this access took
    bool due = false;          //!< unrecoverable position error
    bool position_ok = true;   //!< ground truth: aligned correctly
};

/**
 * Shift controller for one stripe.
 */
class ShiftController
{
  public:
    /**
     * @param config  protection configuration of the stripe
     * @param model   error model used for fault injection
     * @param policy  shift policy flavour
     * @param peak_ops_per_second peak intensity for WorstCase policy
     * @param rng     controller-local RNG stream
     * @param mttf_target_s reliability budget for the planner
     * @param recovery escalation-ladder configuration (default:
     *                 ladder off, legacy immediate-DUE behaviour)
     * @param telemetry observability sink (default: disabled).
     *                 Detection and recovery-ladder events are
     *                 traced; results are bit-identical either way.
     */
    ShiftController(const PeccConfig &config,
                    const PositionErrorModel *model,
                    ShiftPolicy policy, double peak_ops_per_second,
                    Rng rng,
                    double mttf_target_s = kDefaultSafeMttfSeconds,
                    RecoveryConfig recovery = RecoveryConfig{},
                    TelemetryScope telemetry = {});

    /** Initialise code and data (ideal chip-test path). */
    void initialize();

    /**
     * Read the bit at segment-local index r of `segment` at absolute
     * time `now_cycles` (drives shifts as needed).
     */
    AccessResult read(int segment, int index, Cycles now_cycles);

    /** Write the bit at segment-local index r of `segment`. */
    AccessResult write(int segment, int index, Bit value,
                       Cycles now_cycles);

    /** Statistics accumulated so far. */
    const ControllerStats &stats() const { return stats_; }

    /** The wrapped stripe (inspection). */
    ProtectedStripe &stripe() { return stripe_; }
    const ProtectedStripe &stripe() const { return stripe_; }

    /** The planner (inspection/benches). */
    const ShiftPlanner &planner() const { return planner_; }

    /** The adapter (inspection/benches). */
    const ShiftAdapter &adapter() const { return adapter_; }

    /** STS timing model in use. */
    const StsTiming &timing() const { return timing_; }

    /** Recovery-ladder configuration in effect. */
    const RecoveryConfig &recovery() const { return recovery_; }

  private:
    ProtectedStripe stripe_;
    StsTiming timing_;
    ShiftPlanner planner_;
    ShiftAdapter adapter_;
    RecoveryConfig recovery_;
    ControllerStats stats_;

    /** Telemetry sink (null = disabled) and the timestamp of the
     *  in-flight seek, stamped on ladder events. */
    Telemetry *t_ = nullptr;
    Cycles t_now_ = 0;

    /** Move to the offset serving (segment-local) index r. */
    AccessResult seek(int index, Cycles now_cycles);

    /**
     * DelIns-variant access path: every read/write is a protected
     * streaming readout (decode + realign) instead of a seek, since
     * the deletion/insertion code checks position wholesale per
     * readout rather than per shift. `write_value == nullptr` for
     * reads. A write re-encodes the touched track's check bits
     * before write-back, so a write landing on a check position is
     * absorbed by that maintenance re-encode.
     */
    AccessResult delInsAccess(int segment, int index,
                              const Bit *write_value,
                              Cycles now_cycles);

    /**
     * Execute one planned sub-shift; returns false when the episode
     * ended unrecoverable at the stripe level (ladder not yet run).
     */
    bool executePart(int direction, int part, AccessResult &res);

    /** Ladder rung that ended a recovery episode. */
    enum class RecoveryRung
    {
        None,    //!< ladder failed (or disabled)
        Retry,   //!< rung 1: verify-and-retry
        Realign, //!< rung 2: STS stage-2 + verify
        Scrub    //!< rung 3: full scrub
    };

    /**
     * Climb the escalation ladder after a failed episode. Returns
     * the rung that restored a verified position (None on failure)
     * and accounts it into the matching recovered_* bucket.
     */
    RecoveryRung attemptRecovery(AccessResult &res);

    /** Undo the recovered_* accounting of `rung` (replan exhausted:
     *  the episode is re-classified as a DUE). */
    void reclassifyAsDue(RecoveryRung rung);

    /** Charge `cycles` to the access, busy, and recovery ledgers. */
    void chargeRecovery(Cycles cycles, AccessResult &res);
};

} // namespace rtm

#endif // RTM_CONTROL_CONTROLLER_HH
