#include "controller.hh"

#include <cmath>

#include "util/logging.hh"

namespace rtm
{

namespace
{

/** p-ECC detection time folded into each shift (paper Table 5). */
double
peccCheckSeconds(const PeccConfig &config)
{
    return config.variant == PeccVariant::None ? 0.0 : 0.34e-9;
}

} // anonymous namespace

ShiftController::ShiftController(const PeccConfig &config,
                                 const PositionErrorModel *model,
                                 ShiftPolicy policy,
                                 double peak_ops_per_second, Rng rng,
                                 double mttf_target_s)
    : stripe_(config, model, std::move(rng)),
      timing_(kDefaultClockHz, 0.4e-9, 1.0e-9,
              peccCheckSeconds(config)),
      planner_(model, timing_, config.correct,
               config.seg_len - 1, mttf_target_s),
      adapter_(&planner_,
               config.variant == PeccVariant::OverheadRegion
                   ? ShiftPolicy::StepByStep
                   : policy,
               peak_ops_per_second)
{
}

void
ShiftController::initialize()
{
    stripe_.initializeIdeal();
}

AccessResult
ShiftController::seek(int index, Cycles now_cycles)
{
    AccessResult res;
    int target = stripe_.layout().offsetForIndex(index);
    int delta = target - stripe_.believedOffset();
    if (delta == 0) {
        res.position_ok = stripe_.positionError() == 0;
        return res;
    }

    int direction = delta > 0 ? 1 : -1;
    const SequencePlan &plan =
        adapter_.plan(std::abs(delta), now_cycles);
    ++stats_.accesses;

    for (int part : plan.parts) {
        ProtectedShiftResult r = stripe_.shiftBy(direction * part);
        ++stats_.shift_ops;
        stats_.shift_steps += static_cast<uint64_t>(part) +
                              static_cast<uint64_t>(
                                  r.correction_shifts);
        stats_.distance_histogram.add(part);
        Cycles lat = timing_.shiftCycles(part);
        if (r.correction_shifts > 0) {
            // Corrections are short counter-shifts; charge each at
            // the 1-step cost plus the paper's correction logic time
            // (1.34 ns ~ 3 cycles at 2 GHz).
            lat += static_cast<Cycles>(r.correction_shifts) *
                   (timing_.shiftCycles(1) + 3);
        }
        stats_.busy_cycles += lat;
        res.latency += lat;
        if (r.detected)
            ++stats_.detected_errors;
        if (r.corrected)
            ++stats_.corrected_errors;
        if (r.unrecoverable) {
            ++stats_.unrecoverable;
            res.due = true;
            break;
        }
    }
    res.position_ok = stripe_.positionError() == 0;
    if (!res.position_ok && !res.due) {
        // Ground truth says we are misaligned and the code did not
        // notice: a silent data corruption in the making.
        ++stats_.silent_errors;
    }
    return res;
}

AccessResult
ShiftController::read(int segment, int index, Cycles now_cycles)
{
    AccessResult res = seek(index, now_cycles);
    if (!res.due)
        res.value = stripe_.readAligned(segment);
    return res;
}

AccessResult
ShiftController::write(int segment, int index, Bit value,
                       Cycles now_cycles)
{
    AccessResult res = seek(index, now_cycles);
    if (!res.due)
        stripe_.writeAligned(segment, value);
    return res;
}

} // namespace rtm
