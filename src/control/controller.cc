#include "controller.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace rtm
{

namespace
{

/** p-ECC detection time folded into each shift (paper Table 5). */
double
peccCheckSeconds(const PeccConfig &config)
{
    return config.variant == PeccVariant::None ? 0.0 : 0.34e-9;
}

/** Correction logic time per counter-shift: 1.34 ns ~ 3 cycles. */
constexpr Cycles kCorrectionLogicCycles = 3;

/** Tier-1 EDC phase probe: the 0.34 ns detect slot, ~1 cycle. */
constexpr Cycles kEdcProbeCycles = 1;

} // anonymous namespace

void
ControllerStats::merge(const ControllerStats &other)
{
    accesses += other.accesses;
    shift_ops += other.shift_ops;
    shift_steps += other.shift_steps;
    detected_errors += other.detected_errors;
    corrected_errors += other.corrected_errors;
    unrecoverable += other.unrecoverable;
    silent_errors += other.silent_errors;
    busy_cycles += other.busy_cycles;
    distance_histogram.merge(other.distance_histogram);
    retry_attempts += other.retry_attempts;
    sts_realigns += other.sts_realigns;
    scrubs += other.scrubs;
    recovered_retry += other.recovered_retry;
    recovered_realign += other.recovered_realign;
    recovered_scrub += other.recovered_scrub;
    recovery_cycles += other.recovery_cycles;
    edc_checks += other.edc_checks;
    edc_passes += other.edc_passes;
    full_decodes += other.full_decodes;
    edc_cycles += other.edc_cycles;
    decode_cycles += other.decode_cycles;
}

std::string
controllerLedgerViolation(const ControllerStats &stats)
{
    uint64_t accounted = stats.corrected_errors +
                         stats.recovered_retry +
                         stats.recovered_realign +
                         stats.recovered_scrub + stats.unrecoverable;
    if (stats.detected_errors != accounted) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "detected_errors (%llu) != corrected + "
                      "recovered + unrecoverable (%llu)",
                      static_cast<unsigned long long>(
                          stats.detected_errors),
                      static_cast<unsigned long long>(accounted));
        return buf;
    }
    if (stats.recovered_scrub > stats.scrubs)
        return "more scrub recoveries than scrubs";
    if (stats.recovered_realign > stats.sts_realigns)
        return "more realign recoveries than stage-2 pulses";
    if (stats.busy_cycles < stats.recovery_cycles)
        return "recovery cycles exceed busy cycles";
    if (stats.edc_passes + stats.full_decodes != stats.edc_checks)
        return "EDC probes not accounted to exactly one tier";
    return "";
}

ShiftController::ShiftController(const PeccConfig &config,
                                 const PositionErrorModel *model,
                                 ShiftPolicy policy,
                                 double peak_ops_per_second, Rng rng,
                                 double mttf_target_s,
                                 RecoveryConfig recovery,
                                 TelemetryScope telemetry)
    : stripe_(config, model, std::move(rng)),
      timing_(kDefaultClockHz, 0.4e-9, 1.0e-9,
              peccCheckSeconds(config)),
      planner_(model, timing_, config.correct,
               config.seg_len - 1, mttf_target_s),
      adapter_(&planner_,
               config.variant == PeccVariant::OverheadRegion
                   ? ShiftPolicy::StepByStep
                   : policy,
               peak_ops_per_second),
      recovery_(recovery), t_(telemetry.get())
{
}

void
ShiftController::initialize()
{
    stripe_.initializeIdeal();
}

void
ShiftController::chargeRecovery(Cycles cycles, AccessResult &res)
{
    stats_.busy_cycles += cycles;
    stats_.recovery_cycles += cycles;
    res.latency += cycles;
}

bool
ShiftController::executePart(int direction, int part,
                             AccessResult &res)
{
    ProtectedShiftResult r = stripe_.shiftBy(direction * part);
    ++stats_.shift_ops;
    stats_.shift_steps += static_cast<uint64_t>(part) +
                          static_cast<uint64_t>(r.correction_shifts);
    stats_.distance_histogram.add(part);
    Cycles lat = timing_.shiftCycles(part);
    if (r.correction_shifts > 0) {
        // Corrections are short counter-shifts; charge each at the
        // 1-step cost plus the paper's correction logic time.
        lat += static_cast<Cycles>(r.correction_shifts) *
               (timing_.shiftCycles(1) + kCorrectionLogicCycles);
    }
    stats_.busy_cycles += lat;
    res.latency += lat;
    if (r.detected) {
        ++stats_.detected_errors;
        if (t_)
            t_->event(EventKind::ErrorDetected, "pecc", t_now_,
                      static_cast<double>(part),
                      static_cast<double>(r.correction_shifts));
    }
    if (r.corrected)
        ++stats_.corrected_errors;

    const auto &c = stripe_.config();
    if (c.two_tier && (c.variant == PeccVariant::Standard ||
                       c.variant == PeccVariant::OverheadRegion)) {
        // Two-tier decomposition of the per-shift check. A clean
        // probe ends the check at the detect slot already folded
        // into the shift timing; a flagged shift escalates to the
        // full decode and, when frames pool their check bits, the
        // redundancy fetch from the codeword's base frame — extra
        // latency only the (rare) error path pays.
        ++stats_.edc_checks;
        if (!r.detected) {
            ++stats_.edc_passes;
            stats_.edc_cycles += kEdcProbeCycles;
        } else {
            ++stats_.full_decodes;
            Cycles tier2 = kCorrectionLogicCycles;
            if (c.codeword_frames > 1)
                tier2 += timing_.shiftCycles(1);
            stats_.decode_cycles += tier2;
            stats_.busy_cycles += tier2;
            res.latency += tier2;
        }
    }
    return !r.unrecoverable;
}

ShiftController::RecoveryRung
ShiftController::attemptRecovery(AccessResult &res)
{
    if (recovery_.retry_budget <= 0)
        return RecoveryRung::None; // ladder off: legacy DUE

    // The per-probe cost: one window decode plus the counter-shifts
    // the retry issued (charged like in-line corrections).
    auto chargeProbe = [&](const ProtectedShiftResult &r) {
        Cycles lat = timing_.shiftCycles(1); // window decode slot
        if (r.correction_shifts > 0) {
            stats_.shift_ops +=
                static_cast<uint64_t>(r.correction_shifts);
            stats_.shift_steps +=
                static_cast<uint64_t>(r.correction_shifts);
            lat += static_cast<Cycles>(r.correction_shifts) *
                   (timing_.shiftCycles(1) + kCorrectionLogicCycles);
        }
        chargeRecovery(lat, res);
    };

    // Rung 1: bounded verify-and-retry.
    for (int attempt = 0; attempt < recovery_.retry_budget;
         ++attempt) {
        ++stats_.retry_attempts;
        ProtectedShiftResult r = stripe_.recoverNow();
        chargeProbe(r);
        if (!r.detected || r.corrected) {
            ++stats_.recovered_retry;
            if (t_)
                t_->event(EventKind::RecoveryRung, "retry", t_now_,
                          static_cast<double>(attempt + 1));
            return RecoveryRung::Retry;
        }
    }

    // Rung 2: STS stage-2 realign, then one more verify-and-retry.
    // A sub-threshold pulse frees walls stranded in the flat region
    // (the stop-in-middle class) without disturbing pinned walls.
    if (recovery_.sts_realign) {
        ++stats_.sts_realigns;
        stripe_.stripe().applyStsStage2();
        chargeRecovery(timing_.shiftCycles(1), res);
        ProtectedShiftResult r = stripe_.recoverNow();
        chargeProbe(r);
        if (!r.detected || r.corrected) {
            ++stats_.recovered_realign;
            if (t_)
                t_->event(EventKind::RecoveryRung, "realign", t_now_);
            return RecoveryRung::Realign;
        }
    }

    // Rung 3: full scrub. The stripe is rebuilt at its home
    // alignment and the data image refilled — in an LLC this is an
    // invalidate-and-refetch from the level below, so position is
    // always restored at the cost of `scrub_cycles`.
    if (recovery_.allow_scrub) {
        ++stats_.scrubs;
        std::vector<Bit> image = stripe_.dumpData();
        stripe_.initializeIdeal();
        stripe_.loadData(image);
        chargeRecovery(recovery_.scrub_cycles, res);
        ++stats_.recovered_scrub;
        if (t_)
            t_->event(EventKind::RecoveryRung, "scrub", t_now_);
        return RecoveryRung::Scrub;
    }
    return RecoveryRung::None;
}

void
ShiftController::reclassifyAsDue(RecoveryRung rung)
{
    // A rung event for this episode was already traced, so the
    // reversal is traced too: reconciliation computes each bucket as
    // count("<rung>") - count("reclassified-<rung>").
    switch (rung) {
      case RecoveryRung::Retry:
        --stats_.recovered_retry;
        if (t_)
            t_->event(EventKind::RecoveryRung, "reclassified-retry",
                      t_now_);
        break;
      case RecoveryRung::Realign:
        --stats_.recovered_realign;
        if (t_)
            t_->event(EventKind::RecoveryRung, "reclassified-realign",
                      t_now_);
        break;
      case RecoveryRung::Scrub:
        --stats_.recovered_scrub;
        if (t_)
            t_->event(EventKind::RecoveryRung, "reclassified-scrub",
                      t_now_);
        break;
      case RecoveryRung::None:
        if (t_)
            t_->event(EventKind::RecoveryRung, "due", t_now_);
        break;
    }
    ++stats_.unrecoverable;
}

AccessResult
ShiftController::seek(int index, Cycles now_cycles)
{
    AccessResult res;
    if (t_)
        t_now_ = now_cycles;
    int target = stripe_.layout().offsetForIndex(index);
    if (target == stripe_.believedOffset()) {
        res.position_ok = stripe_.positionError() == 0;
        return res;
    }
    ++stats_.accesses;

    // A recovery episode may leave the believed offset off the
    // planned path (a scrub rebuilds at home), so the seek re-plans
    // after every recovered episode — cautiously, and boundedly.
    int replans = 0;
    for (;;) {
        int delta = target - stripe_.believedOffset();
        if (delta == 0)
            break;
        int direction = delta > 0 ? 1 : -1;
        const SequencePlan &plan =
            replans == 0
                ? adapter_.plan(std::abs(delta), now_cycles)
                : adapter_.cautiousPlan(std::abs(delta));
        RecoveryRung recovered_by = RecoveryRung::None;
        bool episode_failed = false;
        for (int part : plan.parts) {
            if (executePart(direction, part, res))
                continue;
            // The stripe exhausted its in-line corrections: climb
            // the escalation ladder.
            recovered_by = attemptRecovery(res);
            if (recovered_by == RecoveryRung::None) {
                ++stats_.unrecoverable;
                if (t_)
                    t_->event(EventKind::RecoveryRung, "due", t_now_);
                res.due = true;
                res.position_ok = stripe_.positionError() == 0;
                return res;
            }
            episode_failed = true;
            break; // position verified but path changed: re-plan
        }
        if (!episode_failed)
            break;
        if (++replans > recovery_.max_replans) {
            // Recovered a verified position but could not complete
            // the seek within the replan budget (e.g. a persistently
            // stuck stripe): report a DUE rather than risking an
            // unbounded retry loop. The final recovery is
            // re-accounted from its recovered bucket so each
            // detection stays in exactly one outcome bucket.
            reclassifyAsDue(recovered_by);
            res.due = true;
            res.position_ok = stripe_.positionError() == 0;
            return res;
        }
    }

    res.position_ok = stripe_.positionError() == 0;
    if (!res.position_ok && !res.due) {
        // Ground truth says we are misaligned and the code did not
        // notice: a silent data corruption in the making.
        ++stats_.silent_errors;
    }
#ifndef NDEBUG
    assert(controllerLedgerViolation(stats_).empty());
#endif
    return res;
}

AccessResult
ShiftController::delInsAccess(int segment, int index,
                              const Bit *write_value,
                              Cycles now_cycles)
{
    AccessResult res;
    if (t_)
        t_now_ = now_cycles;
    const auto &c = stripe_.config();
    if (segment < 0 || segment >= c.num_segments)
        rtm_panic("segment %d out of range", segment);
    if (index < 0 || index >= c.seg_len)
        rtm_panic("segment index %d out of range", index);
    ++stats_.accesses;

    // Every access is one protected streaming readout; on an
    // undecodable readout the same escalation ladder as the window
    // schemes runs (recoverNow dispatches to readout rounds for this
    // variant), then the readout is retried, boundedly.
    std::vector<Bit> image;
    RecoveryRung recovered_by = RecoveryRung::None;
    int attempts = 0;
    for (;;) {
        const uint64_t steps_before = stripe_.stripe().stepsMoved();
        const uint64_t ops_before = stripe_.shiftOps();
        ProtectedShiftResult r = stripe_.readoutNow(&image);
        stats_.shift_ops += stripe_.shiftOps() - ops_before;
        const uint64_t steps =
            stripe_.stripe().stepsMoved() - steps_before;
        stats_.shift_steps += steps;
        Cycles lat = static_cast<Cycles>(steps) *
                     timing_.shiftCycles(1);
        if (r.correction_shifts > 0)
            lat += static_cast<Cycles>(r.correction_shifts) *
                   kCorrectionLogicCycles;
        stats_.busy_cycles += lat;
        res.latency += lat;
        if (r.detected) {
            ++stats_.detected_errors;
            if (t_)
                t_->event(EventKind::ErrorDetected, "del-ins", t_now_,
                          static_cast<double>(r.inferred_error),
                          static_cast<double>(r.correction_shifts));
        }
        if (!r.unrecoverable) {
            // A detected episode that ends in a verified decode is a
            // correction, whatever round it converged in.
            if (r.detected)
                ++stats_.corrected_errors;
            break;
        }
        recovered_by = attemptRecovery(res);
        if (recovered_by == RecoveryRung::None) {
            ++stats_.unrecoverable;
            if (t_)
                t_->event(EventKind::RecoveryRung, "due", t_now_);
            res.due = true;
            res.position_ok = stripe_.positionError() == 0;
            return res;
        }
        if (++attempts > recovery_.max_replans) {
            reclassifyAsDue(recovered_by);
            res.due = true;
            res.position_ok = stripe_.positionError() == 0;
            return res;
        }
    }

    const int track_bit = segment * c.seg_len + index;
    if (write_value) {
        // Maintenance write: patch the decoded image, re-derive the
        // touched track's check bits, and write the track back. (A
        // value written onto a check position is overwritten by the
        // re-encode; the address space's data capacity is
        // delInsCode()->payloadBits(), not dataDomains().)
        const DelInsCode &code = *stripe_.delInsCode();
        image[static_cast<size_t>(track_bit)] = *write_value;
        auto first = image.begin() + segment * c.seg_len;
        std::vector<Bit> track(first, first + c.seg_len);
        track = code.encodeTrack(code.extractTrackData(track));
        std::copy(track.begin(), track.end(), first);
        stripe_.loadData(image);
    } else {
        res.value = image[static_cast<size_t>(track_bit)];
    }
    // Note on ground truth: the data above comes from the *decoded*
    // streams, so its correctness does not depend on the final
    // alignment; a fault on the trailing return shift is a latent
    // offset the next readout absorbs, not a silent corruption, and
    // is therefore not counted into silent_errors here.
    res.position_ok = stripe_.positionError() == 0;
#ifndef NDEBUG
    assert(controllerLedgerViolation(stats_).empty());
#endif
    return res;
}

AccessResult
ShiftController::read(int segment, int index, Cycles now_cycles)
{
    if (stripe_.config().variant == PeccVariant::DelIns)
        return delInsAccess(segment, index, nullptr, now_cycles);
    AccessResult res = seek(index, now_cycles);
    if (!res.due)
        res.value = stripe_.readAligned(segment);
    return res;
}

AccessResult
ShiftController::write(int segment, int index, Bit value,
                       Cycles now_cycles)
{
    if (stripe_.config().variant == PeccVariant::DelIns)
        return delInsAccess(segment, index, &value, now_cycles);
    AccessResult res = seek(index, now_cycles);
    if (!res.due)
        stripe_.writeAligned(segment, value);
    return res;
}

} // namespace rtm
