#include "fsm.hh"

#include <cmath>

#include "util/logging.hh"

namespace rtm
{

const char *
fsmStateName(FsmState s)
{
    switch (s) {
      case FsmState::Idle: return "IDLE";
      case FsmState::Stage1: return "STAGE1";
      case FsmState::Stage2: return "STAGE2";
      case FsmState::Check: return "CHECK";
      case FsmState::Correct: return "CORRECT";
      case FsmState::Done: return "DONE";
    }
    return "?";
}

ShiftFsm::ShiftFsm(const StsTiming &timing, bool has_pecc)
    : timing_(timing), has_pecc_(has_pecc)
{
}

Cycles
ShiftFsm::stage1Cycles(int steps) const
{
    return secondsToCycles(timing_.stage1Seconds(steps),
                           timing_.clockHz());
}

Cycles
ShiftFsm::stage2Cycles() const
{
    return secondsToCycles(timing_.stage2Seconds(),
                           timing_.clockHz());
}

Cycles
ShiftFsm::checkCycles() const
{
    // Cyclic adder + XOR compare: the 0.34 ns detection of Table 5,
    // one cycle at 2 GHz.
    return has_pecc_ ? 1 : 0;
}

void
ShiftFsm::enter(FsmState s, Cycles duration)
{
    state_ = s;
    stage_left_ = duration;
}

void
ShiftFsm::issue(int steps)
{
    if (state_ != FsmState::Idle && state_ != FsmState::Done)
        rtm_panic("issue() while the FSM is busy (%s)",
                  fsmStateName(state_));
    if (steps < 1)
        rtm_panic("issue(%d): need at least one step", steps);
    pending_steps_ = steps;
    elapsed_ = 0;
    corrections_ = 0;
    mismatch_ = false;
    inferred_error_ = 0;
    enter(FsmState::Stage1, stage1Cycles(steps));
}

void
ShiftFsm::setCheckResult(bool mismatch, int inferred_error)
{
    mismatch_ = mismatch;
    inferred_error_ = inferred_error;
}

FsmState
ShiftFsm::tick()
{
    if (state_ == FsmState::Idle || state_ == FsmState::Done)
        return state_;
    ++elapsed_;
    if (stage_left_ > 0)
        --stage_left_;
    if (stage_left_ > 0)
        return state_;

    // Stage finished this cycle: advance.
    switch (state_) {
      case FsmState::Stage1:
        enter(FsmState::Stage2, stage2Cycles());
        break;
      case FsmState::Stage2:
        if (has_pecc_)
            enter(FsmState::Check, checkCycles());
        else
            state_ = FsmState::Done;
        break;
      case FsmState::Check:
        if (mismatch_ && inferred_error_ != 0) {
            // Correction micro-op: Table 5's 1.34 ns correction
            // logic (cyclic-adder update + drive reprogramming,
            // 3 cycles at 2 GHz) followed by the counter-shift,
            // itself a full two-stage shift plus re-check.
            ++corrections_;
            mismatch_ = false;
            enter(FsmState::Correct, 3);
        } else {
            state_ = FsmState::Done;
        }
        break;
      case FsmState::Correct: {
        int mag = std::abs(inferred_error_);
        inferred_error_ = 0;
        enter(FsmState::Stage1, stage1Cycles(mag));
        break;
      }
      default:
        rtm_panic("tick() reached %s with no stage",
                  fsmStateName(state_));
    }
    return state_;
}

Cycles
ShiftFsm::run(int steps)
{
    issue(steps);
    // Generous bound: a stuck FSM is a bug, not a long operation.
    for (int guard = 0; guard < 100000; ++guard) {
        if (tick() == FsmState::Done)
            return elapsed_;
    }
    rtm_panic("FSM failed to retire a %d-step shift", steps);
}

} // namespace rtm
