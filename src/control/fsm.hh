/**
 * @file
 * Cycle-level shift-controller state machine (paper Fig. 9).
 *
 * The behavioural ShiftController charges latency from the analytic
 * StsTiming formulas; this FSM instead sequences the hardware blocks
 * of the paper's error-aware controller cycle by cycle:
 *
 *   IDLE -> STAGE1 (two-stage logic drives the high-current pulse,
 *            one timer tick per cycle)
 *        -> STAGE2 (voltage divider selects the sub-threshold level
 *            for the fixed 1 ns tail)
 *        -> CHECK  (cyclic adder produces the expected p-ECC bits,
 *            XOR compare against the window read)
 *        -> CORRECT (counter-shift micro-op re-entering STAGE1)
 *        -> DONE
 *
 * Tests cross-validate the FSM's emergent cycle counts against
 * StsTiming - the two must agree exactly, which pins down that the
 * architectural latency numbers used across the evaluation are
 * implementable by this datapath.
 */

#ifndef RTM_CONTROL_FSM_HH
#define RTM_CONTROL_FSM_HH

#include <cstdint>

#include "control/sts.hh"

namespace rtm
{

/** Controller datapath states (Fig. 9 blocks). */
enum class FsmState
{
    Idle,
    Stage1,  //!< high-current drive pulse
    Stage2,  //!< sub-threshold tail
    Check,   //!< p-ECC window compare
    Correct, //!< counter-shift issue (re-enters Stage1)
    Done
};

/** Human-readable state name. */
const char *fsmStateName(FsmState s);

/**
 * One shift operation's life through the controller pipeline.
 */
class ShiftFsm
{
  public:
    /**
     * @param timing   the STS timing model the datapath implements
     * @param has_pecc whether a CHECK stage exists (p-ECC present)
     */
    explicit ShiftFsm(const StsTiming &timing, bool has_pecc = true);

    /**
     * Issue an N-step shift request. @pre the FSM is Idle or Done.
     */
    void issue(int steps);

    /**
     * Advance one clock cycle. Returns the state *after* the tick.
     * When the CHECK stage completes, `window_mismatch` (set via
     * setCheckResult before the check finishes) decides whether the
     * FSM retires or issues a correction micro-op.
     */
    FsmState tick();

    /** Provide the p-ECC compare outcome for the pending check. */
    void setCheckResult(bool mismatch, int inferred_error);

    /** Current state. */
    FsmState state() const { return state_; }

    /** Cycles elapsed since the last issue(). */
    Cycles elapsed() const { return elapsed_; }

    /** True once the operation has retired. */
    bool done() const { return state_ == FsmState::Done; }

    /** Correction micro-ops issued for the current operation. */
    int corrections() const { return corrections_; }

    /** Run the FSM to completion and return the total cycles. */
    Cycles run(int steps);

  private:
    StsTiming timing_;
    bool has_pecc_;
    FsmState state_ = FsmState::Idle;
    Cycles elapsed_ = 0;
    Cycles stage_left_ = 0;
    int pending_steps_ = 0;
    bool mismatch_ = false;
    int inferred_error_ = 0;
    int corrections_ = 0;

    Cycles stage1Cycles(int steps) const;
    Cycles stage2Cycles() const;
    Cycles checkCycles() const;

    void enter(FsmState s, Cycles duration);
};

} // namespace rtm

#endif // RTM_CONTROL_FSM_HH
