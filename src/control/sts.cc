#include "sts.hh"

#include <cmath>

#include "util/logging.hh"

namespace rtm
{

StsTiming::StsTiming(double clock_hz, double stage1_per_step,
                     double stage2_pulse, double pecc_check)
    : clock_hz_(clock_hz), stage1_per_step_(stage1_per_step),
      stage2_pulse_(stage2_pulse), pecc_check_(pecc_check)
{
    if (clock_hz_ <= 0.0)
        rtm_fatal("clock frequency must be positive");
}

Seconds
StsTiming::stage1Seconds(int steps) const
{
    if (steps < 1)
        rtm_panic("stage1Seconds(%d): need at least one step", steps);
    return stage1_per_step_ * static_cast<double>(steps);
}

Cycles
StsTiming::shiftCycles(int steps) const
{
    // Stage 1 rounds up to whole cycles; stage 2 and the p-ECC check
    // are fixed-width tails (2 cycles and ceil(check) respectively).
    Cycles stage1 = secondsToCycles(stage1Seconds(steps), clock_hz_);
    Cycles stage2 = secondsToCycles(stage2_pulse_, clock_hz_);
    Cycles check = secondsToCycles(pecc_check_, clock_hz_);
    return stage1 + stage2 + check;
}

Seconds
StsTiming::shiftSeconds(int steps) const
{
    return cyclesToSeconds(shiftCycles(steps), clock_hz_);
}

} // namespace rtm
