/**
 * @file
 * Safe-distance computation and shift-sequence planning
 * (paper Sec. 5.2, Algorithm 1, Table 3).
 *
 * A shift request longer than the safe distance is decomposed into a
 * sequence of shorter shifts. Among all decompositions the planner
 * selects the latency-minimal one whose summed uncorrectable-error
 * rate still meets the reliability budget. The planner enumerates the
 * Pareto front over (error rate, latency) by dynamic programming;
 * each Pareto point also yields the minimum request interval at which
 * it is safe, which is exactly the paper's adapter table (Table 3b).
 *
 * The reliability budget back-solves from Table 3: a per-operation
 * failure rate of p at request interval T_inter seconds is acceptable
 * when p <= T_inter / T_mttf. The constant reproducing the paper's
 * Table 3 rows is T_mttf ~= 1.615e11 s (back-solved from
 * "interval 2445260 cycles for the {7} sequence").
 */

#ifndef RTM_CONTROL_PLANNER_HH
#define RTM_CONTROL_PLANNER_HH

#include <cstdint>
#include <vector>

#include "control/sts.hh"
#include "device/error_model.hh"

namespace rtm
{

/** Reliability budget back-solved from the paper's Table 3. */
constexpr double kDefaultSafeMttfSeconds = 1.61e11;

/** One Pareto-optimal decomposition of a shift request. */
struct SequencePlan
{
    std::vector<int> parts;     //!< sub-shift distances, descending
    double log_fail_rate = 0.0; //!< summed uncorrectable log-rate
    Cycles latency = 0;         //!< total shift cycles
    Cycles min_interval = 0;    //!< smallest safe request interval
};

/**
 * Planner for one protection configuration.
 */
class ShiftPlanner
{
  public:
    /**
     * @param model      position-error model (uncorrectable rates)
     * @param timing     STS timing (with p-ECC check latency)
     * @param correct    p-ECC correction strength m (failures are
     *                   errors of magnitude > m)
     * @param max_part   longest single shift the stripe supports
     * @param mttf_target_s reliability budget (see header comment)
     */
    ShiftPlanner(const PositionErrorModel *model,
                 const StsTiming &timing, int correct, int max_part,
                 double mttf_target_s = kDefaultSafeMttfSeconds);

    /**
     * Pareto front of decompositions for a request of `distance`
     * steps, ordered by increasing latency (decreasing rate).
     */
    const std::vector<SequencePlan> &paretoFront(int distance) const;

    /**
     * Latency-minimal plan whose failure rate is safe at the given
     * request interval (cycles since the previous shift). Falls back
     * to the safest plan when even it exceeds the budget.
     */
    const SequencePlan &planFor(int distance,
                                Cycles interval_cycles) const;

    /**
     * Index into paretoFront(distance) of the plan planFor() would
     * return. Memo tables (RmBank) cache per-plan costs and use the
     * front's min_interval thresholds as their interval buckets; this
     * accessor lets them (and the golden tests) share the exact
     * selection rule.
     */
    size_t planIndexFor(int distance, Cycles interval_cycles) const;

    /**
     * Worst-case-safe plan for a sustained intensity
     * (operations per second): the paper's "p-ECC-S worst" policy.
     */
    const SequencePlan &planForIntensity(int distance,
                                         double ops_per_second) const;

    /**
     * Largest single-shift distance that meets the budget at the
     * given sustained intensity (paper Table 3a).
     */
    int safeDistance(double ops_per_second) const;

    /**
     * Per-operation failure (uncorrectable error) log-rate of a
     * single shift of the given distance.
     */
    double logFailRate(int distance) const;

    /** Longest supported single shift. */
    int maxPart() const { return max_part_; }

  private:
    const PositionErrorModel *model_;
    StsTiming timing_;
    int correct_;
    int max_part_;
    double mttf_target_s_;

    /** fronts_[d] = Pareto plans for a d-step request (d >= 1). */
    std::vector<std::vector<SequencePlan>> fronts_;

    void buildFronts();
};

} // namespace rtm

#endif // RTM_CONTROL_PLANNER_HH
