#include "planner.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

namespace
{

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/** Smallest interval (cycles) at which a plan's rate is safe. */
Cycles
minSafeInterval(double log_fail_rate, double mttf_target_s,
                double clock_hz)
{
    if (log_fail_rate == kNegInf)
        return 0;
    // p <= T_inter / T_mttf  =>  T_inter >= p * T_mttf.
    double seconds = std::exp(log_fail_rate) * mttf_target_s;
    double cycles = std::ceil(seconds * clock_hz);
    if (cycles >= 1e18)
        return static_cast<Cycles>(1e18);
    return static_cast<Cycles>(cycles);
}

} // anonymous namespace

ShiftPlanner::ShiftPlanner(const PositionErrorModel *model,
                           const StsTiming &timing, int correct,
                           int max_part, double mttf_target_s)
    : model_(model), timing_(timing), correct_(correct),
      max_part_(max_part), mttf_target_s_(mttf_target_s)
{
    if (!model_)
        rtm_fatal("planner needs an error model");
    if (max_part_ < 1)
        rtm_fatal("planner needs max_part >= 1");
    buildFronts();
}

double
ShiftPlanner::logFailRate(int distance) const
{
    // Failures are errors the p-ECC cannot correct: |k| > m.
    return model_->logProbAtLeast(distance, correct_ + 1);
}

void
ShiftPlanner::buildFronts()
{
    // DP over remaining distance. front[d] holds Pareto-optimal
    // (log_fail_rate, latency) plans; a plan for distance d extends a
    // plan for d - p with one more part p <= min(d, max_part).
    fronts_.assign(static_cast<size_t>(max_part_) + 1, {});
    fronts_[0].push_back(SequencePlan{{}, kNegInf, 0, 0});

    // Per-part rate/latency are reused across every distance of the
    // DP; hoist them out of the O(max_part^2) candidate loop.
    std::vector<double> part_rates(static_cast<size_t>(max_part_) + 1);
    std::vector<Cycles> part_lats(static_cast<size_t>(max_part_) + 1);
    for (int p = 1; p <= max_part_; ++p) {
        part_rates[static_cast<size_t>(p)] = logFailRate(p);
        part_lats[static_cast<size_t>(p)] = timing_.shiftCycles(p);
    }

    for (int d = 1; d <= max_part_; ++d) {
        std::vector<SequencePlan> candidates;
        for (int p = 1; p <= d; ++p) {
            double part_rate = part_rates[static_cast<size_t>(p)];
            Cycles part_lat = part_lats[static_cast<size_t>(p)];
            for (const auto &prev : fronts_[static_cast<size_t>(d - p)]) {
                // Keep parts descending to avoid duplicate partitions.
                if (!prev.parts.empty() && prev.parts.back() < p)
                    continue;
                SequencePlan plan;
                plan.parts = prev.parts;
                plan.parts.push_back(p);
                plan.log_fail_rate =
                    logSumExp(prev.log_fail_rate, part_rate);
                plan.latency = prev.latency + part_lat;
                candidates.push_back(std::move(plan));
            }
        }
        // Pareto-prune: sort by latency, keep strictly improving rate.
        std::sort(candidates.begin(), candidates.end(),
                  [](const SequencePlan &a, const SequencePlan &b) {
                      if (a.latency != b.latency)
                          return a.latency < b.latency;
                      return a.log_fail_rate < b.log_fail_rate;
                  });
        std::vector<SequencePlan> front;
        double best_rate = std::numeric_limits<double>::infinity();
        for (auto &cand : candidates) {
            if (cand.log_fail_rate < best_rate) {
                best_rate = cand.log_fail_rate;
                cand.min_interval =
                    minSafeInterval(cand.log_fail_rate,
                                    mttf_target_s_,
                                    timing_.clockHz());
                front.push_back(std::move(cand));
            }
        }
        fronts_[static_cast<size_t>(d)] = std::move(front);
    }
}

const std::vector<SequencePlan> &
ShiftPlanner::paretoFront(int distance) const
{
    if (distance < 1 || distance > max_part_)
        rtm_panic("paretoFront(%d) outside [1, %d]", distance,
                  max_part_);
    return fronts_[static_cast<size_t>(distance)];
}

const SequencePlan &
ShiftPlanner::planFor(int distance, Cycles interval_cycles) const
{
    const auto &front = paretoFront(distance);
    return front[planIndexFor(distance, interval_cycles)];
}

size_t
ShiftPlanner::planIndexFor(int distance, Cycles interval_cycles) const
{
    const auto &front = paretoFront(distance);
    for (size_t i = 0; i < front.size(); ++i) {
        if (front[i].min_interval <= interval_cycles)
            return i;
    }
    return front.size() - 1; // safest available
}

const SequencePlan &
ShiftPlanner::planForIntensity(int distance,
                               double ops_per_second) const
{
    if (ops_per_second <= 0.0)
        return paretoFront(distance).front();
    double interval_s = 1.0 / ops_per_second;
    double cycles = interval_s * timing_.clockHz();
    Cycles interval = cycles >= 1e18
                          ? static_cast<Cycles>(1e18)
                          : static_cast<Cycles>(cycles);
    return planFor(distance, interval);
}

int
ShiftPlanner::safeDistance(double ops_per_second) const
{
    if (ops_per_second <= 0.0)
        return max_part_;
    // A 2% tolerance keeps boundary rows stable: the paper's
    // Table 3(a) rounds the intensity for each safe distance to
    // three significant digits, so querying with exactly that
    // rounded intensity must still admit the row's distance.
    double log_budget = std::log(1.02 / (mttf_target_s_ *
                                         ops_per_second));
    int best = 1;
    for (int d = 1; d <= max_part_; ++d) {
        if (logFailRate(d) <= log_budget)
            best = d;
    }
    return best;
}

} // namespace rtm
