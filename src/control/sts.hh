/**
 * @file
 * Sub-threshold shift (STS) timing model (paper Sec. 4.1).
 *
 * A shift is driven in two stages: stage 1 applies a 2*J0 pulse whose
 * width is the ideal N-step transit time (0.4 ns per step at the
 * calibrated drive), stage 2 applies a 1 ns sub-threshold pulse that
 * walks any wall still in a flat region into the next notch without
 * being able to pull walls out of notches. At the 2 GHz system clock
 * this yields ceil(0.4/0.5 * N) + 2 cycles for an N-step shift: 3
 * cycles for 1 step, 8 cycles for 7 steps (paper's rule of thumb that
 * long shifts amortise the fixed stage-2 cost).
 */

#ifndef RTM_CONTROL_STS_HH
#define RTM_CONTROL_STS_HH

#include "util/units.hh"

namespace rtm
{

/** Timing/latency model of the two-stage STS shift. */
class StsTiming
{
  public:
    /**
     * @param clock_hz      controller clock (default 2 GHz)
     * @param stage1_per_step stage-1 drive seconds per step
     * @param stage2_pulse  stage-2 sub-threshold pulse seconds
     * @param pecc_check    p-ECC detection seconds folded into the
     *                      shift pipeline (0 disables; the paper's
     *                      detection takes ~0.3 ns = 1 extra cycle)
     */
    explicit StsTiming(double clock_hz = kDefaultClockHz,
                       double stage1_per_step = 0.4e-9,
                       double stage2_pulse = 1.0e-9,
                       double pecc_check = 0.0);

    /** Cycles for one N-step shift operation (N >= 1). */
    Cycles shiftCycles(int steps) const;

    /** Seconds for one N-step shift operation. */
    Seconds shiftSeconds(int steps) const;

    /** Stage-1 pulse width for N steps, seconds. */
    Seconds stage1Seconds(int steps) const;

    /** Stage-2 pulse width, seconds. */
    Seconds stage2Seconds() const { return stage2_pulse_; }

    /** Clock frequency, Hz. */
    double clockHz() const { return clock_hz_; }

  private:
    double clock_hz_;
    double stage1_per_step_;
    double stage2_pulse_;
    double pecc_check_;
};

} // namespace rtm

#endif // RTM_CONTROL_STS_HH
