#include "head_policy.hh"

namespace rtm
{

const char *
headPolicyName(HeadPolicy policy)
{
    switch (policy) {
      case HeadPolicy::Stay: return "stay";
      case HeadPolicy::ReturnHome: return "return-home";
      case HeadPolicy::Center: return "center";
      case HeadPolicy::Predictive: return "predictive";
    }
    return "?";
}

bool
headPolicyFromToken(const std::string &token, HeadPolicy *out)
{
    if (token == "stay")
        *out = HeadPolicy::Stay;
    else if (token == "return-home" || token == "home")
        *out = HeadPolicy::ReturnHome;
    else if (token == "center")
        *out = HeadPolicy::Center;
    else if (token == "predictive")
        *out = HeadPolicy::Predictive;
    else
        return false;
    return true;
}

} // namespace rtm
