/**
 * @file
 * Functional protected stripe: a RacetrackStripe plus p-ECC mechanism.
 *
 * This class provides the *mechanism* of position-error protection:
 * initialising code domains, shifting, reading the code window,
 * decoding against the believed offset, and issuing counter-shifts.
 * Policy (when to check, safe-distance limits, shift sequencing) lives
 * in the control layer; architecture statistics live in the model and
 * sim layers.
 *
 * The class tracks the controller's *believed* cumulative offset and
 * never peeks at the stripe's ground truth. Tests compare the two to
 * validate detection/correction claims.
 */

#ifndef RTM_CODEC_PROTECTED_STRIPE_HH
#define RTM_CODEC_PROTECTED_STRIPE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "codec/cyclic.hh"
#include "codec/del_ins.hh"
#include "codec/layout.hh"
#include "device/error_model.hh"
#include "device/stripe.hh"
#include "util/rng.hh"

namespace rtm
{

/** Result of a protected shift operation (shift + check [+ correct]). */
struct ProtectedShiftResult
{
    bool detected = false;       //!< p-ECC flagged a position error
    bool corrected = false;      //!< a counter-shift restored position
    bool unrecoverable = false;  //!< detected but uncorrectable (DUE)
    int correction_shifts = 0;   //!< counter-shift operations issued
    int inferred_error = 0;      //!< signed error the decoder inferred
};

/**
 * A racetrack stripe wrapped with its p-ECC mechanism.
 */
class ProtectedStripe
{
  public:
    /**
     * @param config protection configuration
     * @param model  position-error model for fault injection
     * @param rng    stripe-local RNG stream
     */
    ProtectedStripe(const PeccConfig &config,
                    const PositionErrorModel *model, Rng rng);

    /** Resolved geometry. */
    const PeccLayout &layout() const { return layout_; }

    /** Protection configuration. */
    const PeccConfig &config() const { return layout_.config; }

    /**
     * Program code domains and clear data to zero, bypassing the
     * faulty write path (chip-tester style initialisation).
     */
    void initializeIdeal();

    /** Believed cumulative offset (steps right of home). */
    int believedOffset() const { return believed_offset_; }

    /** Ground-truth position error (true - believed); tests only. */
    int positionError() const;

    /**
     * Shift by a signed distance with STS and p-ECC checking.
     * For the Standard variant |distance| may be up to Lseg-1; the
     * OverheadRegion variant decomposes multi-step requests into
     * 1-step shift-and-write operations internally.
     *
     * Detected correctable errors are fixed by counter-shifts (each
     * itself checked); detected uncorrectable errors leave the stripe
     * in an unknown position and set `unrecoverable`.
     *
     * @param max_correction_rounds retries before declaring failure
     */
    ProtectedShiftResult shiftBy(int distance,
                                 int max_correction_rounds = 4);

    /**
     * Move to the offset that aligns segment-local index r under the
     * data ports (convenience wrapper over shiftBy).
     */
    ProtectedShiftResult seekIndex(int r);

    /** Read the data bit of `segment` currently under its port. */
    Bit readAligned(int segment) const;

    /** Write the data bit of `segment` currently under its port. */
    bool writeAligned(int segment, Bit value);

    /**
     * Run a p-ECC check without shifting (re-synchronisation probe).
     */
    DecodeResult checkNow() const;

    /**
     * Cheap EDC probe of the active window: true iff the observed
     * code phase matches the one expected at the believed offset.
     * Detection-identical to a full decode — decodeWindow flags an
     * error exactly when the phase mismatches — the probe just skips
     * the error-inference/correction logic, so a two-tier read can
     * trust a clean probe without fetching redundancy. Vacuously
     * clean for code-less variants (None, DelIns).
     */
    bool edcClean() const;

    /**
     * Verify-and-correct without a preceding shift: decode the active
     * window and, if an error is detected, run the bounded
     * counter-shift loop. Used by the controller's recovery ladder to
     * retry a failed episode (possibly after an STS stage-2 realign
     * has converted a stop-in-middle state into a pinned one).
     *
     * Returns detected=false when the stripe already verifies clean.
     */
    ProtectedShiftResult recoverNow(
        int max_correction_rounds = kMaxCorrectionRounds);

    /**
     * DelIns variant only: run one protected streaming readout —
     * shift the whole stripe under the data ports, decode the
     * deletion/insertion code, counter-shift home compensating the
     * inferred net offset, and (optionally) return the decoded
     * payload. Undecodable readouts are retried up to
     * `max_correction_rounds` before reporting unrecoverable.
     */
    ProtectedShiftResult readoutNow(
        std::vector<Bit> *payload_out,
        int max_correction_rounds = kMaxCorrectionRounds);

    /**
     * DelIns variant only: encode a payload (delInsCode()->
     * payloadBits() bits) and load the resulting track codewords
     * (poke path, no faults — the modelled maintenance write).
     */
    void loadPayload(const std::vector<Bit> &payload);

    /** Direct access to the underlying stripe (tests/benches). */
    RacetrackStripe &stripe() { return stripe_; }
    const RacetrackStripe &stripe() const { return stripe_; }

    /** Cyclic code in use. */
    const CyclicCode &code() const { return code_; }

    /** Del/ins codec in use (nullptr unless the DelIns variant). */
    const DelInsCode *delInsCode() const
    {
        return delins_ ? &*delins_ : nullptr;
    }

    /** Count of shift operations issued (incl. corrections). */
    uint64_t shiftOps() const { return stripe_.shiftOps(); }

    /** Load a full data image (poke path, no faults). */
    void loadData(const std::vector<Bit> &data);

    /** Dump the full data image via ground truth (tests only). */
    std::vector<Bit> dumpData() const;

  private:
    PeccLayout layout_;
    CyclicCode code_;
    std::optional<DelInsCode> delins_;
    RacetrackStripe stripe_;
    int believed_offset_ = 0;

    /** Read the (right/active) code window through the ports. */
    int readWindowPhase(bool left_window) const;

    /** Decode the active window for the current believed offset. */
    DecodeResult decodeWindow(bool left_window) const;

    /** One raw shift step for the OverheadRegion variant. */
    void shiftAndWriteStep(int direction);

    /** Re-program end-code domains after a correction (p-ECC-O). */
    void repairEndCode();

    /** Wire slot of data[j] if it is on the wire at believed offset. */
    std::optional<int> dataSlot(int j) const;
};

} // namespace rtm

#endif // RTM_CODEC_PROTECTED_STRIPE_HH
