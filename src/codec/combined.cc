#include "combined.hh"

#include "util/logging.hh"

namespace rtm
{

ProtectedLine::ProtectedLine(const PeccConfig &config,
                             const PositionErrorModel *model,
                             Rng rng)
    : config_(config)
{
    if (config_.num_segments != 1)
        rtm_fatal("ProtectedLine expects single-segment stripes "
                  "(one word bit per index)");
    stripes_.reserve(kStripes);
    for (int s = 0; s < kStripes; ++s) {
        stripes_.push_back(std::make_unique<ProtectedStripe>(
            config_, model, rng.fork()));
    }
}

void
ProtectedLine::initialize()
{
    for (auto &s : stripes_)
        s->initializeIdeal();
}

bool
ProtectedLine::seekAll(int idx, LineReadResult *result)
{
    bool ok = true;
    for (auto &s : stripes_) {
        ProtectedShiftResult r = s->seekIndex(idx);
        if (r.detected) {
            ++detections_;
            if (result)
                result->position_corrected |= r.corrected;
        }
        if (r.unrecoverable) {
            ok = false;
            if (result)
                result->position_due = true;
        }
    }
    return ok;
}

void
ProtectedLine::write(int idx, uint64_t data)
{
    uint8_t check = becc_.encode(data);
    if (!seekAll(idx, nullptr))
        rtm_warn("write at index %d hit a position DUE", idx);
    for (int bit = 0; bit < 64; ++bit) {
        stripes_[static_cast<size_t>(bit)]->writeAligned(
            0, (data >> bit) & 1 ? Bit::One : Bit::Zero);
    }
    for (int c = 0; c < HammingSecded::kCheckBits; ++c) {
        stripes_[static_cast<size_t>(64 + c)]->writeAligned(
            0, (check >> c) & 1 ? Bit::One : Bit::Zero);
    }
}

LineReadResult
ProtectedLine::read(int idx)
{
    LineReadResult res;
    if (!seekAll(idx, &res))
        return res;

    uint64_t data = 0;
    uint8_t check = 0;
    for (int bit = 0; bit < 64; ++bit) {
        Bit b = stripes_[static_cast<size_t>(bit)]->readAligned(0);
        if (b == Bit::One)
            data |= 1ull << bit;
        // Bit::X (destroyed domain) reads as 0: a bit error for
        // the SECDED layer to handle.
    }
    for (int c = 0; c < HammingSecded::kCheckBits; ++c) {
        Bit b =
            stripes_[static_cast<size_t>(64 + c)]->readAligned(0);
        if (b == Bit::One)
            check = static_cast<uint8_t>(check | (1u << c));
    }

    if (config_.two_tier) {
        // Tier 1: detection-only probes with the same coverage as
        // the full decode — SECDED syndrome plus the p-ECC window
        // phase of every stripe. A clean probe accepts the word
        // as-is; the full decode would have returned Clean with the
        // same data, so the outcome is unchanged by construction.
        bool clean = becc_.syndromeClean(data, check);
        for (size_t s = 0; clean && s < stripes_.size(); ++s)
            clean = stripes_[s]->edcClean();
        if (clean) {
            ++edc_fast_reads_;
            res.data = data;
            return res;
        }
        ++full_decodes_;
    }

    BeccDecode d = becc_.decode(data, check);
    res.bit_status = d.status;
    res.data = d.data;
    if (d.status == BeccDecode::Status::Corrected)
        ++bit_corrections_;
    return res;
}

void
ProtectedLine::flipStoredBit(int idx, int bit)
{
    if (bit < 0 || bit >= 64)
        rtm_panic("flipStoredBit: bit %d out of range", bit);
    if (!seekAll(idx, nullptr))
        return;
    auto &stripe = stripes_[static_cast<size_t>(bit)];
    Bit cur = stripe->readAligned(0);
    stripe->writeAligned(0, invert(cur));
}

} // namespace rtm
