/**
 * @file
 * p-ECC initialisation via program-and-test (paper Sec. 4.3).
 *
 * Code domains must be programmed before a stripe can be protected,
 * and the programming path itself suffers position errors. The paper's
 * procedure writes code bits in from an end port, walks them across
 * the stripe while every port validates the passing pattern, walks
 * them back, and repeats for a configurable number of rounds; any
 * unexpected bit restarts the process.
 *
 * This module models the procedure functionally (against a faulty
 * stripe) and analytically (expected rounds/latency and residual
 * mis-programming probability, reproducing the paper's "< 1e-100
 * after one iteration" claim shape and the ~1200-cycle per-stripe
 * latency estimate).
 */

#ifndef RTM_CODEC_INIT_HH
#define RTM_CODEC_INIT_HH

#include <cstdint>

#include "codec/protected_stripe.hh"
#include "device/error_model.hh"

namespace rtm
{

/** Outcome of an initialisation run. */
struct InitResult
{
    bool success = false;      //!< pattern verified after all rounds
    int restarts = 0;          //!< full restarts due to failed checks
    uint64_t shift_steps = 0;  //!< total 1-step shifts performed
    uint64_t cycles = 0;       //!< modelled latency in clock cycles
};

/** Analytic properties of the initialisation procedure. */
struct InitAnalysis
{
    double log_residual_error;   //!< log P(code still wrong) per round
    uint64_t expected_cycles;    //!< expected latency per stripe
    double expected_restarts;    //!< expected restart count
};

/**
 * Program-and-test initialiser.
 */
class PeccInitializer
{
  public:
    /**
     * @param rounds verification passes (paper Step 4 repetitions)
     */
    explicit PeccInitializer(int rounds = 1);

    /**
     * Run the functional procedure on a stripe whose code region is
     * cleared. Uses the stripe's own (faulty) shift path; a final
     * ideal-readback compares the programmed pattern with intent.
     */
    InitResult run(ProtectedStripe &stripe) const;

    /**
     * Closed-form analysis for a given configuration and error model
     * (used by benches; avoids simulating 1e100-scale rarities).
     */
    InitAnalysis analyze(const PeccConfig &config,
                         const PositionErrorModel &model) const;

    /**
     * Total initialisation time for a memory of `stripes` stripes
     * with `parallel_groups` stripes initialised concurrently.
     */
    double memoryInitSeconds(const PeccConfig &config,
                             const PositionErrorModel &model,
                             uint64_t stripes,
                             uint64_t parallel_groups) const;

  private:
    int rounds_;
};

} // namespace rtm

#endif // RTM_CODEC_INIT_HH
