/**
 * @file
 * Conventional bit-error ECC ("b-ECC") and its failure analysis
 * against position errors (paper Sec. 3.2).
 *
 * The paper argues that SECDED-class codes designed for transient
 * bit flips cannot protect racetrack memory from position errors:
 *
 *  - when a whole line's stripes slip together, the ports read a
 *    *different, internally consistent* codeword - the syndrome is
 *    clean and the wrong data passes silently;
 *  - when a single stripe slips, the misread bit differs from the
 *    correct one only half the time, so slips accumulate invisibly
 *    until two visible at once defeat the code;
 *  - even after detection, b-ECC cannot tell direction or distance,
 *    so recovery means refreshing the whole line - thousands of
 *    shifts during which a second position error is likely (~0.17
 *    for the paper's configuration), collapsing MTTF to ~20 ms.
 *
 * This module provides a real extended-Hamming SECDED codec for
 * 64-bit words plus the closed-form pieces of the paper's argument,
 * so the comparison bench can demonstrate each failure mode
 * functionally and quantitatively.
 */

#ifndef RTM_CODEC_BECC_HH
#define RTM_CODEC_BECC_HH

#include <cstdint>

#include "device/error_model.hh"

namespace rtm
{

/** Outcome of a SECDED decode. */
struct BeccDecode
{
    enum class Status
    {
        Clean,          //!< syndrome zero: word accepted as-is
        Corrected,      //!< single-bit error corrected
        DetectedDouble, //!< double error detected, uncorrectable
    };

    Status status = Status::Clean;
    uint64_t data = 0;     //!< (possibly corrected) data word
    int flipped_bit = -1;  //!< corrected data-bit index, if any
};

/**
 * Extended Hamming SECDED over 64-bit words (the (72,64) code that
 * protects commodity cache lines).
 */
class HammingSecded
{
  public:
    HammingSecded();

    /** Number of check bits (7 Hamming + 1 overall parity). */
    static constexpr int kCheckBits = 8;

    /** Compute the 8 check bits for a data word. */
    uint8_t encode(uint64_t data) const;

    /** Decode a (data, check) pair. */
    BeccDecode decode(uint64_t data, uint8_t check) const;

    /**
     * Detection-only EDC probe: true iff the syndrome and overall
     * parity are both zero, i.e. decode() would return Clean with
     * the data unchanged. The cheap first tier of a two-tier read.
     */
    bool syndromeClean(uint64_t data, uint8_t check) const;

  private:
    /** Codeword position (1-based, parity positions skipped) of
     *  each data bit. */
    int data_pos_[64];

    /** Map codeword position -> data bit index (-1 for parity). */
    int pos_to_data_[128];

    uint8_t syndromeAndParity(uint64_t data, uint8_t check) const;
};

/** Closed-form pieces of the paper's Sec. 3.2 argument. */
struct BeccAnalysis
{
    /** Stripes a 64-byte line is interleaved across. */
    int stripes = 512;

    /** Data domains per stripe. */
    int domains_per_stripe = 64;

    /** Probability a 1-step shift slips (per stripe). */
    double p_slip = 4.55e-5;

    /**
     * Probability that a single-stripe slip is *invisible* to
     * b-ECC on the next read: the misread neighbour bit happens to
     * equal the correct bit (1/2 for random data).
     */
    double invisibleSlipProbability() const { return 0.5; }

    /**
     * Shift operations needed to refresh (read out and reload) one
     * full line: every domain of every stripe must pass a port.
     */
    uint64_t refreshShiftOps() const;

    /**
     * Probability at least one new position error strikes during a
     * refresh (paper: ~0.17 for its configuration).
     */
    double refreshSecondErrorProbability() const;

    /**
     * MTTF of a b-ECC-protected racetrack line: errors are detected
     * (at best) but recovery itself fails with
     * refreshSecondErrorProbability(), so the failure rate is the
     * error rate times that probability (paper anchor: ~20 ms).
     *
     * @param accesses_per_second line access intensity
     */
    double mttfSeconds(double accesses_per_second) const;
};

} // namespace rtm

#endif // RTM_CODEC_BECC_HH
