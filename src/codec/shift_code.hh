/**
 * @file
 * Shift-code family: a common interface over position-error codecs.
 *
 * The paper's p-ECC protects shift operations with a cyclic de Bruijn
 * position code; the coding-theory line it spawned generalises the
 * idea in two directions, both modelled here behind one interface:
 *
 *  - limited-magnitude position codes (Chee et al., "Coding for
 *    Racetrack Memories"): decouple the window width w from the
 *    correction radius m, so a w-port window with period T = 2^w
 *    corrects any |e| <= m offset as long as 2m + 2 <= T. The paper's
 *    SED/SECDED codes are the w = m + 1 special case.
 *  - deletion/insertion codes (Sima & Bruck, "Correcting k Deletions
 *    and Insertions in Racetrack Memory"): drop the dedicated code
 *    region entirely and protect the data tracks themselves with
 *    interleaved Varshamov-Tenengolts codes, decoding a whole-track
 *    streaming readout that may have suffered up to k skipped
 *    (deletion) or repeated (insertion) reads (codec/del_ins.hh).
 *
 * A ShiftCode answers the questions the architecture layers ask of a
 * codec without knowing its mechanism: how large an error it corrects,
 * what a given ground-truth step error turns into (the reliability
 * model's SDC/DUE/corrected decomposition), and what redundancy it
 * costs (the layout/area accounting).
 */

#ifndef RTM_CODEC_SHIFT_CODE_HH
#define RTM_CODEC_SHIFT_CODE_HH

#include <memory>

#include "codec/cyclic.hh"
#include "model/tech.hh"

namespace rtm
{

/** What a ground-truth step error turns into under a codec. */
enum class ErrorClass
{
    Ok,           //!< no error
    Corrected,    //!< decoder infers the exact error (counter-shift)
    Miscorrected, //!< decoder proposes a wrong correction -> SDC
    Ambiguous,    //!< detected but not correctable -> DUE
    Silent        //!< aliases to "no error" -> SDC
};

/** Default limited-magnitude configuration (scheme token "lm-pos"). */
constexpr int kLmPosWindow = 3;  //!< w ports, period T = 8
constexpr int kLmPosCorrect = 2; //!< m: corrects +/-2-step offsets

/** Default deletion/insertion strength (scheme token "del-ins-k"). */
constexpr int kDelInsStrength = 2; //!< k per protected readout

/**
 * Abstract position-error codec: classification and redundancy.
 */
class ShiftCode
{
  public:
    virtual ~ShiftCode() = default;

    /** Short human-readable codec name. */
    virtual const char *name() const = 0;

    /** Largest |e| the codec decodes back to the exact error. */
    virtual int correctionRadius() const = 0;

    /** Classify a ground-truth signed per-operation step error. */
    virtual ErrorClass classify(int step_error) const = 0;

    /**
     * Redundant domains this codec adds to a stripe of
     * `num_segments` segments of `seg_len` domains (paper-facing
     * accounting, matching PeccLayout::extraDomains for the
     * equivalent PeccConfig).
     */
    virtual int redundancyDomains(int num_segments,
                                  int seg_len) const = 0;

    /** Extra read ports over the per-segment data ports. */
    virtual int extraReadPorts() const = 0;
};

/**
 * Cyclic position code with decoupled window and radius: the Chee
 * limited-magnitude construction, of which the paper's SED (w=1, m=0)
 * and SECDED (w=2, m=1) codes are special cases. Owns the de Bruijn
 * machinery (codec/cyclic.hh) used by the functional stripe.
 */
class CyclicPositionCode : public ShiftCode
{
  public:
    /**
     * @param window_bits w: window ports, period T = 2^w
     * @param correct_strength m: radius; needs 2m + 2 <= 2^w
     */
    CyclicPositionCode(int window_bits, int correct_strength);

    const char *name() const override;
    int correctionRadius() const override { return correct_; }
    ErrorClass classify(int step_error) const override;
    int redundancyDomains(int num_segments,
                          int seg_len) const override;
    int extraReadPorts() const override { return code_.window(); }

    /** Underlying de Bruijn sequence / window decoder. */
    const CyclicCode &code() const { return code_; }

  private:
    CyclicCode code_;
    int correct_;
};

/**
 * Classification/accounting face of the interleaved-VT deletion/
 * insertion code (the decode mechanism lives in codec/del_ins.hh).
 * A readout whose net offset is |e| <= k is decoded exactly; larger
 * offsets are exposed by the sentinel/syndrome checks and flagged
 * DUE — the code has no silent or miscorrecting channel within the
 * device model's error range.
 */
class DelInsShiftCode : public ShiftCode
{
  public:
    explicit DelInsShiftCode(int k);

    const char *name() const override;
    int correctionRadius() const override { return k_; }
    ErrorClass classify(int step_error) const override;
    int redundancyDomains(int num_segments,
                          int seg_len) const override;
    int extraReadPorts() const override { return 0; }

  private:
    int k_;
};

/**
 * Codec implied by a protection scheme; nullptr for the code-less
 * schemes (Baseline/STS). The returned radius always equals
 * schemeCorrectionStrength(scheme).
 */
std::shared_ptr<const ShiftCode> makeShiftCode(Scheme scheme);

} // namespace rtm

#endif // RTM_CODEC_SHIFT_CODE_HH
