#include "becc.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

namespace
{

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

HammingSecded::HammingSecded()
{
    for (int i = 0; i < 128; ++i)
        pos_to_data_[i] = -1;
    // Data bits occupy codeword positions 1.. skipping the parity
    // positions (powers of two). 64 data bits need positions up to
    // 71 < 2^7, so 7 Hamming parities suffice; the 8th check bit is
    // the overall parity extending to double-error detection.
    int pos = 1;
    for (int bit = 0; bit < 64; ++bit) {
        while (isPowerOfTwo(pos))
            ++pos;
        data_pos_[bit] = pos;
        pos_to_data_[pos] = bit;
        ++pos;
    }
}

uint8_t
HammingSecded::encode(uint64_t data) const
{
    // Hamming parities: parity p (p = 0..6) covers every codeword
    // position with bit p set.
    uint8_t check = 0;
    for (int p = 0; p < 7; ++p) {
        int parity = 0;
        for (int bit = 0; bit < 64; ++bit) {
            if (data_pos_[bit] & (1 << p))
                parity ^= static_cast<int>((data >> bit) & 1);
        }
        check = static_cast<uint8_t>(check | (parity << p));
    }
    // Overall parity over data plus the 7 Hamming bits.
    int overall = __builtin_popcountll(data) & 1;
    overall ^= __builtin_popcount(check & 0x7f) & 1;
    check = static_cast<uint8_t>(check | (overall << 7));
    return check;
}

uint8_t
HammingSecded::syndromeAndParity(uint64_t data, uint8_t check) const
{
    // Syndrome: recomputed Hamming parities vs the stored ones.
    uint8_t expect = encode(data);
    uint8_t syndrome =
        static_cast<uint8_t>((expect ^ check) & 0x7f);
    // Overall parity of the *received* codeword (data + all eight
    // stored check bits); zero for a clean word, one for any odd
    // number of flips. Re-deriving it from the corrupted data (as a
    // plain re-encode would) breaks single/double discrimination.
    int total = __builtin_popcountll(data) & 1;
    total ^= __builtin_popcount(check) & 1;
    return static_cast<uint8_t>(syndrome | (total << 7));
}

bool
HammingSecded::syndromeClean(uint64_t data, uint8_t check) const
{
    return syndromeAndParity(data, check) == 0;
}

BeccDecode
HammingSecded::decode(uint64_t data, uint8_t check) const
{
    BeccDecode out;
    out.data = data;
    uint8_t diff = syndromeAndParity(data, check);
    int syndrome = diff & 0x7f;
    int parity_mismatch = (diff >> 7) & 1;

    if (syndrome == 0 && !parity_mismatch)
        return out; // clean

    if (parity_mismatch) {
        // Odd number of flipped bits: single-error correction.
        out.status = BeccDecode::Status::Corrected;
        if (syndrome == 0)
            return out; // the overall parity bit itself flipped
        if (syndrome < 128 && pos_to_data_[syndrome] >= 0) {
            int bit = pos_to_data_[syndrome];
            out.data = data ^ (1ull << bit);
            out.flipped_bit = bit;
        }
        // Else: a Hamming check bit flipped; data unchanged.
        return out;
    }
    // Even number of flips with non-zero syndrome: double error.
    out.status = BeccDecode::Status::DetectedDouble;
    return out;
}

uint64_t
BeccAnalysis::refreshShiftOps() const
{
    // Reading every domain of a stripe past its port requires
    // (domains - 1) shifts plus the return trip; all stripes move
    // in lockstep, but each stripe's movement is an independent
    // error opportunity.
    uint64_t per_stripe = 2ull *
                          static_cast<uint64_t>(domains_per_stripe);
    return per_stripe * static_cast<uint64_t>(stripes);
}

double
BeccAnalysis::refreshSecondErrorProbability() const
{
    // The paper quotes this for the shifts of one segment pass
    // (8 positions) across all 512 stripes: ~0.17.
    double ops = static_cast<double>(stripes) * 8.0;
    return std::exp(logAnyOf(std::log(p_slip), ops));
}

double
BeccAnalysis::mttfSeconds(double accesses_per_second) const
{
    // Failure path: a position error occurs, b-ECC at best detects
    // it, and the refresh fails with
    // refreshSecondErrorProbability(). The paper's 20 ms anchor
    // implies per-line-shift error accounting here (all stripes of
    // a line shift as one operation whose error rate is the 1-step
    // Table 2 value); the per-stripe multiplicity is instead what
    // drives the refresh-failure probability above.
    double fail_per_access =
        p_slip * refreshSecondErrorProbability();
    if (fail_per_access <= 0.0 || accesses_per_second <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (fail_per_access * accesses_per_second);
}

} // namespace rtm
