#include "protected_stripe.hh"

#include <cmath>

#include "util/logging.hh"

namespace rtm
{

ProtectedStripe::ProtectedStripe(const PeccConfig &config,
                                 const PositionErrorModel *model,
                                 Rng rng)
    : layout_(computeLayout(config)), code_(config.window()),
      stripe_(layout_.wire_len, layout_.buildPorts(), model,
              std::move(rng))
{
    if (config.variant == PeccVariant::DelIns)
        delins_.emplace(config.num_segments, config.seg_len,
                        config.correct);
}

void
ProtectedStripe::initializeIdeal()
{
    const auto &c = layout_.config;
    // The rebuild below lays contents out at the home alignment;
    // any offset the tape had drifted to beforehand is gone.
    stripe_.resetTracking();
    // Data region: zeroes.
    for (int j = 0; j < c.dataDomains(); ++j)
        stripe_.poke(layout_.data_base + j, Bit::Zero);

    if (c.variant == PeccVariant::Standard) {
        for (int j = 0; j < layout_.code_len; ++j)
            stripe_.poke(layout_.code_base + j, code_.bitAt(j));
    } else if (c.variant == PeccVariant::OverheadRegion) {
        // Every non-data slot carries the global code c(slot) at the
        // home position; maintenance writes keep the invariant as the
        // tape moves.
        for (int slot = 0; slot < layout_.wire_len; ++slot) {
            if (slot >= layout_.data_base &&
                slot < layout_.data_base + c.dataDomains()) {
                continue;
            }
            stripe_.poke(slot, code_.bitAt(slot));
        }
    } else if (c.variant == PeccVariant::DelIns) {
        // The all-zero data image is a valid interleaved-VT codeword
        // (zero syndromes need zero check bits), so the data region
        // is already consistent. Everything else must be *undefined*:
        // the sentinel region's X domains are what the streaming
        // decode measures the net offset against.
        for (int slot = 0; slot < layout_.wire_len; ++slot) {
            if (slot >= layout_.data_base &&
                slot < layout_.data_base + c.dataDomains()) {
                continue;
            }
            stripe_.poke(slot, Bit::X);
        }
    }
    believed_offset_ = 0;
}

int
ProtectedStripe::positionError() const
{
    return stripe_.trueOffset() - believed_offset_;
}

int
ProtectedStripe::readWindowPhase(bool left_window) const
{
    const auto &slots = left_window ? layout_.left_window_slots
                                    : layout_.window_slots;
    if (slots.empty())
        rtm_panic("this layout has no %s window",
                  left_window ? "left" : "right");
    std::vector<Bit> bits;
    bits.reserve(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
        int port = left_window
                       ? layout_.leftWindowPortIndex(
                             static_cast<int>(i))
                       : layout_.windowPortIndex(static_cast<int>(i));
        bits.push_back(stripe_.read(port));
    }
    return code_.phaseOf(bits);
}

DecodeResult
ProtectedStripe::decodeWindow(bool left_window) const
{
    int observed = readWindowPhase(left_window);
    int expected = left_window
                       ? layout_.expectedLeftPhase(believed_offset_,
                                                   code_.period())
                       : layout_.expectedPhase(believed_offset_,
                                               code_.period());
    return code_.decode(observed, expected, layout_.config.correct);
}

DecodeResult
ProtectedStripe::checkNow() const
{
    if (layout_.config.variant == PeccVariant::None ||
        layout_.config.variant == PeccVariant::DelIns) {
        // No passive code window to probe: None has no code at all,
        // and the del/ins code only checks position during a readout
        // (readoutNow), which shifts. Report a clean (vacuous)
        // result.
        DecodeResult r;
        r.valid = true;
        return r;
    }
    return decodeWindow(false);
}

bool
ProtectedStripe::edcClean() const
{
    const auto &c = layout_.config;
    if (c.variant == PeccVariant::None ||
        c.variant == PeccVariant::DelIns)
        return true;
    const int observed = readWindowPhase(false);
    const int expected =
        layout_.expectedPhase(believed_offset_, code_.period());
    return observed == expected;
}

void
ProtectedStripe::shiftAndWriteStep(int direction)
{
    // Entering-domain code value for the post-shift believed offset.
    int o_new = believed_offset_ + direction;
    Bit entering;
    if (direction > 0) {
        // Tape moves right; a domain enters at slot 0 with tape
        // index -o_new (tape index = slot - offset).
        entering = code_.bitAt(-static_cast<int64_t>(o_new));
        stripe_.shiftAndWrite(entering, true);
    } else {
        entering = code_.bitAt(
            static_cast<int64_t>(layout_.wire_len - 1) - o_new);
        stripe_.shiftAndWrite(entering, false);
    }
    believed_offset_ = o_new;
}

void
ProtectedStripe::repairEndCode()
{
    // After a correction episode the entry margins may hold stale or
    // undefined code: maintenance writes made during the erroneous
    // movement used the (then wrong) believed offset, correction
    // shifts injected unwritten domains, and extra entering domains
    // were never programmed at all. Once the window check confirms
    // the tape is back in place, the controller scrubs the margins
    // with the end write ports (a short burst of shuttle
    // shift-and-write passes in hardware; corrections are ~1e-4
    // rare, so the cost is negligible). The scrub deliberately never
    // touches window slots: window bits must stay evidence written
    // *before* the operation under check, otherwise a failed
    // correction could overwrite the proof of its own failure - and
    // it only runs after convergence, because scrubbing with a wrong
    // believed offset would plant corruption instead of removing it.
    int scrub = kOverheadScrubDepthFactor *
                (layout_.config.correct + 1);
    for (int slot = 0; slot < std::min(scrub, layout_.wire_len);
         ++slot) {
        stripe_.poke(slot,
                     code_.bitAt(static_cast<int64_t>(slot) -
                                 believed_offset_));
    }
    for (int slot = std::max(0, layout_.wire_len - scrub);
         slot < layout_.wire_len; ++slot) {
        stripe_.poke(slot,
                     code_.bitAt(static_cast<int64_t>(slot) -
                                 believed_offset_));
    }
}

ProtectedShiftResult
ProtectedStripe::shiftBy(int distance, int max_correction_rounds)
{
    ProtectedShiftResult res;
    const auto &c = layout_.config;
    if (distance == 0)
        return res;

    if (c.variant == PeccVariant::OverheadRegion) {
        // Step-by-step shift-and-write; check after every step.
        int dir = distance > 0 ? 1 : -1;
        for (int i = 0; i < std::abs(distance); ++i) {
            shiftAndWriteStep(dir);
            // Check the trailing window (the one the tape moves away
            // from): right window for right shifts, left for left.
            DecodeResult d = decodeWindow(dir < 0);
            if (d.ok())
                continue;
            res.detected = true;
            res.inferred_error = d.step_error;
            if (!d.correctable) {
                res.unrecoverable = true;
                return res;
            }
            // Correction episode: raw counter-shifts (the end write
            // ports stay idle - writing while the position is in
            // doubt would plant code bits keyed to a possibly-wrong
            // believed offset). The margins absorb the undefined
            // domains each raw shift injects; the window re-check
            // stays trustworthy throughout. One verified scrub
            // repairs the margins after convergence.
            int rounds = 0;
            while (rounds++ < max_correction_rounds) {
                int corr = -d.step_error;
                stripe_.shift(corr);
                res.correction_shifts += std::abs(corr);
                d = decodeWindow(dir < 0);
                if (d.ok()) {
                    res.corrected = true;
                    repairEndCode();
                    break;
                }
                if (!d.correctable) {
                    res.unrecoverable = true;
                    return res;
                }
            }
            if (!res.corrected) {
                res.unrecoverable = true;
                return res;
            }
        }
        return res;
    }

    // Baseline / Standard variant: one shift operation.
    if (std::abs(distance) > c.maxShiftDistance())
        rtm_panic("shift distance %d exceeds stripe maximum %d",
                  distance, c.maxShiftDistance());
    stripe_.shift(distance);
    believed_offset_ += distance;

    // No per-shift window check for the code-less baseline; the
    // del/ins variant checks position wholesale at readout time
    // instead of per shift.
    if (c.variant == PeccVariant::None ||
        c.variant == PeccVariant::DelIns)
        return res;

    DecodeResult d = decodeWindow(false);
    if (d.ok())
        return res;
    res.detected = true;
    res.inferred_error = d.step_error;
    if (!d.correctable) {
        res.unrecoverable = true;
        return res;
    }
    int rounds = 0;
    while (rounds++ < max_correction_rounds) {
        int corr = -d.step_error;
        stripe_.shift(corr);
        ++res.correction_shifts;
        d = decodeWindow(false);
        if (d.ok()) {
            res.corrected = true;
            return res;
        }
        if (!d.correctable) {
            res.unrecoverable = true;
            return res;
        }
    }
    res.unrecoverable = true;
    return res;
}

ProtectedShiftResult
ProtectedStripe::recoverNow(int max_correction_rounds)
{
    ProtectedShiftResult res;
    const auto &c = layout_.config;
    if (c.variant == PeccVariant::None)
        return res; // no code to verify against
    if (c.variant == PeccVariant::DelIns) {
        // Position verification *is* a decoded readout: it measures
        // the net offset from the sentinel run and counter-shifts
        // home, which is exactly what the recovery ladder wants.
        return readoutNow(nullptr, max_correction_rounds);
    }
    DecodeResult d = decodeWindow(false);
    if (d.ok())
        return res;
    res.detected = true;
    res.inferred_error = d.step_error;
    if (!d.correctable) {
        res.unrecoverable = true;
        return res;
    }
    int rounds = 0;
    while (rounds++ < max_correction_rounds) {
        int corr = -d.step_error;
        stripe_.shift(corr);
        res.correction_shifts += std::abs(corr);
        d = decodeWindow(false);
        if (d.ok()) {
            res.corrected = true;
            if (c.variant == PeccVariant::OverheadRegion)
                repairEndCode();
            return res;
        }
        if (!d.correctable) {
            res.unrecoverable = true;
            return res;
        }
    }
    res.unrecoverable = true;
    return res;
}

ProtectedShiftResult
ProtectedStripe::readoutNow(std::vector<Bit> *payload_out,
                            int max_correction_rounds)
{
    ProtectedShiftResult res;
    if (!delins_)
        rtm_panic("readoutNow requires the DelIns variant");
    const DelInsCode &code = *delins_;
    const int n = code.readoutReads();
    const int tracks = layout_.config.num_segments;

    int rounds = 0;
    while (rounds++ < std::max(1, max_correction_rounds)) {
        // Start from the believed home position. The seek itself is
        // unchecked: any error it suffers is a latent offset the
        // decode absorbs as a burst at read index 0.
        if (believed_offset_ != 0) {
            stripe_.shift(-believed_offset_);
            believed_offset_ = 0;
        }
        std::vector<std::vector<Bit>> streams(
            static_cast<size_t>(tracks),
            std::vector<Bit>(static_cast<size_t>(n), Bit::X));
        for (int t = 0; t < n; ++t) {
            if (t > 0) {
                stripe_.shift(1);
                ++believed_offset_;
            }
            for (int s = 0; s < tracks; ++s)
                streams[static_cast<size_t>(s)]
                       [static_cast<size_t>(t)] =
                    stripe_.read(layout_.dataPortIndex(s));
        }
        DelInsCode::Result dec = code.decode(streams);
        if (dec.status.ok() || dec.status.correctable) {
            // Return home compensating the inferred net offset; the
            // believed offset re-synchronises to the decoded ground
            // truth. (The return shift is itself fallible - a new
            // latent offset for the *next* readout to absorb.)
            const int delta = dec.status.step_error;
            stripe_.shift(-(believed_offset_ + delta));
            believed_offset_ = 0;
            if (delta != 0) {
                res.detected = true;
                res.corrected = true;
                res.inferred_error = delta;
                res.correction_shifts += std::abs(delta);
            }
            if (payload_out)
                *payload_out = code.extractPayload(dec.tracks);
            return res;
        }
        // Undecodable round (beyond-radius offset, conflicting or no
        // surviving reconstruction): head home best-effort and retry.
        res.detected = true;
        stripe_.shift(-believed_offset_);
        believed_offset_ = 0;
    }
    res.unrecoverable = true;
    return res;
}

void
ProtectedStripe::loadPayload(const std::vector<Bit> &payload)
{
    if (!delins_)
        rtm_panic("loadPayload requires the DelIns variant");
    auto tracks = delins_->encode(payload);
    std::vector<Bit> flat;
    flat.reserve(static_cast<size_t>(layout_.config.dataDomains()));
    for (const auto &track : tracks)
        flat.insert(flat.end(), track.begin(), track.end());
    loadData(flat);
}

ProtectedShiftResult
ProtectedStripe::seekIndex(int r)
{
    int target = layout_.offsetForIndex(r);
    return shiftBy(target - believed_offset_);
}

Bit
ProtectedStripe::readAligned(int segment) const
{
    return stripe_.read(layout_.dataPortIndex(segment));
}

bool
ProtectedStripe::writeAligned(int segment, Bit value)
{
    return stripe_.write(layout_.dataPortIndex(segment), value);
}

std::optional<int>
ProtectedStripe::dataSlot(int j) const
{
    int slot = layout_.data_base + j + stripe_.trueOffset();
    if (slot < 0 || slot >= layout_.wire_len)
        return std::nullopt;
    return slot;
}

void
ProtectedStripe::loadData(const std::vector<Bit> &data)
{
    const auto &c = layout_.config;
    if (static_cast<int>(data.size()) != c.dataDomains())
        rtm_fatal("loadData size %zu != %d data domains", data.size(),
                  c.dataDomains());
    for (int j = 0; j < c.dataDomains(); ++j) {
        auto slot = dataSlot(j);
        if (!slot)
            rtm_fatal("loadData: domain %d is off the wire", j);
        stripe_.poke(*slot, data[static_cast<size_t>(j)]);
    }
}

std::vector<Bit>
ProtectedStripe::dumpData() const
{
    const auto &c = layout_.config;
    std::vector<Bit> out;
    out.reserve(static_cast<size_t>(c.dataDomains()));
    for (int j = 0; j < c.dataDomains(); ++j) {
        auto slot = dataSlot(j);
        out.push_back(slot ? stripe_.peek(*slot) : Bit::X);
    }
    return out;
}

} // namespace rtm
