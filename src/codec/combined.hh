/**
 * @file
 * Combined protection: p-ECC for position errors plus conventional
 * SECDED for bit errors on the same line (paper Sec. 1/4.2.3: the
 * two error classes are orthogonal, and "error detection of p-ECC
 * may be processed at the same time with conventional ECC").
 *
 * A ProtectedLine stores a 64-bit data word bit-interleaved across
 * 72 p-ECC-protected stripes (64 data + 8 SECDED check stripes),
 * the paper's LLC organisation scaled down to one word per stripe
 * group position. The stripes move in lockstep behind one shift
 * controller; each access:
 *
 *   1. shifts to the word's segment-local index (p-ECC checks and
 *      corrects the position on every stripe);
 *   2. reads the 72 bit columns and runs the SECDED decode (b-ECC
 *      corrects any single flipped magnetisation).
 *
 * Fault injection covers both classes: position errors through the
 * stripes' error model, bit flips through flipStoredBit().
 */

#ifndef RTM_CODEC_COMBINED_HH
#define RTM_CODEC_COMBINED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/becc.hh"
#include "codec/protected_stripe.hh"

namespace rtm
{

/** Outcome of a combined-protection read. */
struct LineReadResult
{
    uint64_t data = 0;          //!< decoded word
    bool position_due = false;  //!< p-ECC unrecoverable on a stripe
    bool position_corrected = false; //!< >=1 stripe counter-shifted
    BeccDecode::Status bit_status = BeccDecode::Status::Clean;

    /** The read produced trustworthy data. */
    bool ok() const
    {
        return !position_due &&
               bit_status != BeccDecode::Status::DetectedDouble;
    }
};

/**
 * One 64-bit word column protected by both code families.
 */
class ProtectedLine
{
  public:
    /**
     * @param config p-ECC configuration of each stripe (one word
     *        bit per segment-local index)
     * @param model  position-error model (shared by all stripes)
     * @param rng    seed stream; each stripe forks its own
     */
    ProtectedLine(const PeccConfig &config,
                  const PositionErrorModel *model, Rng rng);

    /** Number of stripes (64 data + 8 check). */
    static constexpr int kStripes = 64 + HammingSecded::kCheckBits;

    /** Initialise code domains on every stripe. */
    void initialize();

    /**
     * Write a word at segment-local index `idx` (one bit per
     * stripe, all stripes aligned to idx first).
     */
    void write(int idx, uint64_t data);

    /**
     * Read the word at segment-local index `idx`. When the config's
     * two_tier flag is set, a clean EDC probe (p-ECC window phases +
     * SECDED syndrome, identical detection coverage to the full
     * decode) accepts the word without running the correction logic;
     * the decode outcome is the same either way, only the tier
     * counters differ.
     */
    LineReadResult read(int idx);

    /** Flip one stored data bit in place (bit-error injection). */
    void flipStoredBit(int idx, int bit);

    /** Total p-ECC detections across all stripes so far. */
    uint64_t positionDetections() const { return detections_; }

    /** Total b-ECC single-bit corrections so far. */
    uint64_t bitCorrections() const { return bit_corrections_; }

    /** Two-tier reads resolved by the cheap EDC probe alone. */
    uint64_t edcFastReads() const { return edc_fast_reads_; }

    /** Two-tier reads escalated to the full ECC decode. */
    uint64_t fullDecodes() const { return full_decodes_; }

    /** Segment length of the underlying stripes. */
    int segLen() const { return config_.seg_len; }

  private:
    PeccConfig config_;
    std::vector<std::unique_ptr<ProtectedStripe>> stripes_;
    HammingSecded becc_;
    uint64_t detections_ = 0;
    uint64_t bit_corrections_ = 0;
    uint64_t edc_fast_reads_ = 0;
    uint64_t full_decodes_ = 0;

    /** Align every stripe to idx; returns false on any DUE. */
    bool seekAll(int idx, LineReadResult *result);
};

} // namespace rtm

#endif // RTM_CODEC_COMBINED_HH
