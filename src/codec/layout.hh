/**
 * @file
 * Geometry of a protected racetrack stripe (paper Sec. 4.2).
 *
 * The layout maps a protection configuration (segment shape and p-ECC
 * strength/variant) onto concrete wire slots: where data domains sit
 * at the home position, where the access ports are, where code bits
 * live, and how many domains/ports the protection adds over the
 * unprotected baseline. All paper-facing overhead numbers (extra
 * domains, extra read ports, storage overhead fraction) come from
 * here; the functional wire length used by the simulator is a
 * conservative superset that additionally reserves explicit slots for
 * every legal excursion, so fault injection can never index off the
 * model.
 *
 * Conventions: the tape shifts right by a cumulative offset
 * o in [0, seg_len - 1]; data port s sits over the right-most domain
 * of segment s at home (o = 0), so segment-local index r is read at
 * offset o = seg_len - 1 - r.
 */

#ifndef RTM_CODEC_LAYOUT_HH
#define RTM_CODEC_LAYOUT_HH

#include <string>
#include <vector>

#include "device/stripe.hh"

namespace rtm
{

/**
 * Entry-margin depth factor of the OverheadRegion functional layout:
 * margin = factor * (m + 1) slots per wire end. Sized so undefined or
 * stale domains entering during a correction episode (initial error
 * plus kMaxCorrectionRounds erroneous counter-shifts) can never reach
 * the code window slots.
 */
constexpr int kOverheadScrubDepthFactor = 8;

/** Bounded retries of the correction loop before declaring DUE. */
constexpr int kMaxCorrectionRounds = 4;

/** Protection flavour for one stripe. */
enum class PeccVariant
{
    None,           //!< unprotected baseline
    Standard,       //!< dedicated p-ECC region (Sec. 4.2.1-4.2.3)
    OverheadRegion, //!< p-ECC-O: code in overhead regions (4.2.4)
    DelIns          //!< interleaved-VT del/ins code (codec/del_ins.hh)
};

/** Configuration of one protected stripe. */
struct PeccConfig
{
    int num_segments = 8;  //!< read/write ports sharing the stripe
    int seg_len = 8;       //!< domains per segment (Lseg)
    int correct = 1;       //!< m: step errors corrected (0 = SED);
                           //!< burst strength k for DelIns
    PeccVariant variant = PeccVariant::Standard;

    /**
     * Window-port override for limited-magnitude position codes:
     * 0 keeps the paper's w = m + 1; a wider window (needs
     * 2m + 2 <= 2^w) decouples the correction radius from the code
     * period, the Chee et al. construction.
     */
    int window_ports = 0;

    /**
     * Frames sharing one codeword (Ramulator2_ECC-style large
     * codewords). 1 is the paper's per-frame code and changes
     * nothing; 2/4/8 pool the check bits of that many consecutive
     * frames into one shared redundancy region, buying
     * log2(codeword_frames) extra correction strength at sub-linear
     * per-frame overhead — paid for with a redundancy access on
     * every codeword update (accounted in RmBank).
     */
    int codeword_frames = 1;

    /**
     * Two-tier read discipline: a cheap EDC probe first (detection
     * only, same coverage as the full decode), escalating to the
     * full ECC decode + redundancy fetch only when the probe flags
     * an error. Never changes decode outcomes — only what latency /
     * energy / bandwidth a clean read is charged.
     */
    bool two_tier = false;

    /** Total data domains on the stripe. */
    int dataDomains() const { return num_segments * seg_len; }

    /** Largest legal single-shift distance. */
    int maxShiftDistance() const
    {
        return variant == PeccVariant::OverheadRegion ? 1
                                                      : seg_len - 1;
    }

    /** Detection reach: +/-(m+1) errors are detected. */
    int detect() const { return correct + 1; }

    /** Code window width = number of adjacent code read ports. */
    int window() const
    {
        return window_ports > 0 ? window_ports : correct + 1;
    }

    /**
     * Correction strength of the pooled codeword: m + log2(F) for F
     * frames per codeword, capped at Lseg - 1 (the largest offset a
     * per-stripe position code can represent). F = 1 is exactly m.
     */
    int effectiveCorrect() const;
};

/**
 * Non-fatal geometry diagnosis for spec-driven configuration: empty
 * string when `config` (against a bank group of `frames_per_group`
 * frames; pass 0 to skip the group checks) is realisable, otherwise
 * one human-readable reason. Mirrors the rtm_fatal checks in
 * computeLayout but lets spec parsing report a dotted-path error and
 * exit 2 instead of aborting.
 */
std::string protectionGeometryError(const PeccConfig &config,
                                    int frames_per_group);

/** Fully resolved stripe geometry. */
struct PeccLayout
{
    PeccConfig config;

    int wire_len = 0;        //!< functional wire slots
    int data_base = 0;       //!< wire slot of data[0] at home
    int code_base = 0;       //!< wire slot of code[0] at home
                             //!< (Standard variant only)
    int code_len = 0;        //!< dedicated code domains (Standard)
    int left_code_len = 0;   //!< p-ECC-O left code region length

    /** Wire slots of the per-segment read/write data ports. */
    std::vector<int> data_port_slots;

    /** Wire slots of the code-window read ports (left-to-right).
     *  For p-ECC-O these are the right-end window; the left-end
     *  window is in left_window_slots. */
    std::vector<int> window_slots;

    /** p-ECC-O only: left-end code window. */
    std::vector<int> left_window_slots;

    /** True if the variant maintains code via end write ports. */
    bool has_end_write_ports = false;

    // ---- paper-facing overhead accounting ---------------------------

    /** Extra domains versus the unprotected baseline stripe. */
    int extraDomains() const;

    /** Extra read ports versus the baseline. */
    int extraReadPorts() const;

    /** Extra write ports versus the baseline. */
    int extraWritePorts() const;

    /** Storage overhead: extra domains / data domains. */
    double storageOverhead() const;

    // ---- multi-frame codeword accounting -----------------------------

    /**
     * Extra domains for one whole codeword of
     * config.codeword_frames frames: one shared redundancy region
     * sized at the pooled strength effectiveCorrect() instead of
     * codeword_frames per-frame regions at strength m.
     */
    int codewordExtraDomains() const;

    /**
     * Amortised storage overhead per protected frame:
     * codewordExtraDomains() / (codeword_frames * data domains).
     * Equals storageOverhead() at codeword_frames = 1.
     */
    double codewordStorageOverhead() const;

    /**
     * Redundancy-frame accesses charged per codeword update: 0 for
     * per-frame codes (check bits ride the frame itself), 1 once
     * frames pool their redundancy into a shared region that lives
     * at the codeword's base frame.
     */
    int redundancyAccessesPerWrite() const
    {
        return config.codeword_frames > 1 ? 1 : 0;
    }

    /** Offset needed to read segment-local index r. */
    int offsetForIndex(int r) const;

    /** Expected code phase at believed cumulative offset o. */
    int expectedPhase(int offset, int period) const;

    /** Expected left-window code phase (p-ECC-O). */
    int expectedLeftPhase(int offset, int period) const;

    /** Build the port list for RacetrackStripe construction. */
    std::vector<Port> buildPorts() const;

    /** Index of data port s in the built port list. */
    int dataPortIndex(int segment) const;

    /** Index of window port i in the built port list. */
    int windowPortIndex(int i) const;

    /** Index of left-window port i in the built port list. */
    int leftWindowPortIndex(int i) const;
};

/** Resolve a configuration into a concrete layout. */
PeccLayout computeLayout(const PeccConfig &config);

} // namespace rtm

#endif // RTM_CODEC_LAYOUT_HH
