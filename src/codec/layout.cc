#include "layout.hh"

#include <algorithm>

#include "codec/del_ins.hh"
#include "util/logging.hh"

namespace rtm
{

namespace
{

void
validate(const PeccConfig &c)
{
    if (c.num_segments < 1)
        rtm_fatal("stripe needs at least one segment");
    if (c.seg_len < 2)
        rtm_fatal("segment length must be >= 2");
    if (c.correct < 0)
        rtm_fatal("correction strength must be >= 0");
    // The paper states m < Lseg - 1 (Sec. 4.2.3) but its own
    // sensitivity figures include SECDED on Lseg = 2 stripes, where
    // the single possible shift distance is 1 and +/-1 correction
    // still makes sense; we accept m up to Lseg - 1.
    if (c.correct > c.seg_len - 1 &&
        c.variant == PeccVariant::Standard)
        rtm_fatal("p-ECC requires m <= Lseg - 1 (m=%d, Lseg=%d)",
                  c.correct, c.seg_len);
    if (c.window_ports > 0) {
        if (c.variant == PeccVariant::DelIns)
            rtm_fatal("del-ins stripes have no code window");
        // A period-2^w cyclic code tells the 2m + 1 correctable
        // residues and at least one detect-only residue apart only
        // when 2m + 2 <= 2^w.
        if (2 * c.correct + 2 > (1 << c.window_ports))
            rtm_fatal("window w=%d too narrow to correct +/-%d "
                      "offsets", c.window_ports, c.correct);
    }
    if (c.variant == PeccVariant::DelIns) {
        if (c.correct < 1)
            rtm_fatal("del-ins protection needs k >= 1");
        if (c.seg_len <= c.correct)
            rtm_fatal("del-ins track of %d domains too short for "
                      "k=%d", c.seg_len, c.correct);
    }
    const std::string geom = protectionGeometryError(c, 0);
    if (!geom.empty())
        rtm_fatal("%s", geom.c_str());
}

/** Extra domains of `c` evaluated at strength `m`, window `w`. */
int
extraDomainsAtStrength(const PeccConfig &c, int m, int w)
{
    switch (c.variant) {
      case PeccVariant::None:
        return 0;
      case PeccVariant::Standard:
        if (m == 0 && w == 1)
            return c.seg_len + 1;
        return 2 * m + (c.seg_len - 1 + 2 * m) + (w - (m + 1));
      case PeccVariant::OverheadRegion:
        return 4 * (m + 1);
      case PeccVariant::DelIns: {
        DelInsCode code(c.num_segments, c.seg_len, m);
        return c.num_segments * code.checkBitsPerTrack() +
               code.flushReads();
      }
    }
    return 0;
}

} // anonymous namespace

int
PeccConfig::effectiveCorrect() const
{
    int boost = 0;
    for (int f = codeword_frames; f > 1; f >>= 1)
        ++boost;
    return std::min(correct + boost, seg_len - 1);
}

std::string
protectionGeometryError(const PeccConfig &config, int frames_per_group)
{
    const int f = config.codeword_frames;
    if (f < 1 || f > 8 || (f & (f - 1)) != 0)
        return "codeword_frames must be 1, 2, 4 or 8 (got " +
               std::to_string(f) + ")";
    if (frames_per_group > 0) {
        if (f > frames_per_group)
            return "codeword of " + std::to_string(f) +
                   " frames exceeds the group capacity of " +
                   std::to_string(frames_per_group) + " frames";
        if (frames_per_group % f != 0)
            return "codeword of " + std::to_string(f) +
                   " frames does not tile the group (" +
                   std::to_string(frames_per_group) +
                   " frames per group)";
    }
    if (f > 1) {
        if (config.variant == PeccVariant::None)
            return "codeword_frames > 1 needs a protecting code "
                   "(scheme is unprotected)";
        // The pooled redundancy must still fit the stripe tail: a
        // position code can only represent offsets up to Lseg - 1,
        // so the boosted strength may not exceed it.
        int boost = 0;
        for (int g = f; g > 1; g >>= 1)
            ++boost;
        if (config.correct + boost > config.seg_len - 1)
            return "redundancy for " + std::to_string(f) +
                   "-frame codewords does not fit the stripe tail "
                   "(m + log2(F) = " +
                   std::to_string(config.correct + boost) +
                   " exceeds Lseg - 1 = " +
                   std::to_string(config.seg_len - 1) + ")";
    }
    return "";
}

int
PeccLayout::extraDomains() const
{
    // Paper accounting (Sec. 4.2.3 / 4.2.4), used by the area model:
    //  - SED: Lseg + 1 code domains (the paper's 5 for Lseg = 4);
    //  - p-ECC: 2m guards plus a code region of Lseg - 1 + 2m, and
    //    one domain per window port beyond the paper's w = m + 1;
    //  - p-ECC-O: 2(m+1) domains at each end;
    //  - del-ins: the in-track VT check bits plus the flush-read
    //    sentinel domains (there is no dedicated code region).
    return extraDomainsAtStrength(config, config.correct,
                                  config.window());
}

int
PeccLayout::codewordExtraDomains() const
{
    // F frames pooling one codeword share a single redundancy
    // region, sized at the boosted strength m + log2(F) instead of
    // F per-frame regions at strength m — the Ramulator2_ECC
    // sub-linear scaling (Hamming-style: check bits grow with the
    // log of the data they cover).
    const int m_eff = config.effectiveCorrect();
    return extraDomainsAtStrength(config, m_eff,
                                  std::max(config.window(),
                                           m_eff + 1));
}

double
PeccLayout::codewordStorageOverhead() const
{
    return static_cast<double>(codewordExtraDomains()) /
           (static_cast<double>(config.codeword_frames) *
            static_cast<double>(config.dataDomains()));
}

int
PeccLayout::extraReadPorts() const
{
    const auto &c = config;
    switch (c.variant) {
      case PeccVariant::None:
        return 0;
      case PeccVariant::Standard:
        return c.window();
      case PeccVariant::OverheadRegion:
        // "m more read ports than original p-ECC" (Sec. 4.2.4).
        return 2 * c.correct + 1;
      case PeccVariant::DelIns:
        // Decoding reuses the per-segment data ports as the
        // construction's multiple heads; no window ports at all.
        return 0;
    }
    return 0;
}

int
PeccLayout::extraWritePorts() const
{
    return config.variant == PeccVariant::OverheadRegion ? 2 : 0;
}

double
PeccLayout::storageOverhead() const
{
    return static_cast<double>(extraDomains()) /
           static_cast<double>(config.dataDomains());
}

int
PeccLayout::offsetForIndex(int r) const
{
    if (r < 0 || r >= config.seg_len)
        rtm_panic("segment index %d out of range", r);
    return config.seg_len - 1 - r;
}

int
PeccLayout::expectedPhase(int offset, int period) const
{
    int base;
    if (config.variant == PeccVariant::Standard) {
        base = window_slots.front() - code_base;
    } else {
        base = window_slots.front();
    }
    int phase = (base - offset) % period;
    return phase < 0 ? phase + period : phase;
}

int
PeccLayout::expectedLeftPhase(int offset, int period) const
{
    int base = left_window_slots.empty() ? 0
                                         : left_window_slots.front();
    int phase = (base - offset) % period;
    return phase < 0 ? phase + period : phase;
}

std::vector<Port>
PeccLayout::buildPorts() const
{
    std::vector<Port> ports;
    for (int slot : data_port_slots)
        ports.push_back({slot, PortKind::ReadWrite});
    for (int slot : window_slots)
        ports.push_back({slot, PortKind::ReadOnly});
    for (int slot : left_window_slots)
        ports.push_back({slot, PortKind::ReadOnly});
    return ports;
}

int
PeccLayout::dataPortIndex(int segment) const
{
    if (segment < 0 || segment >= config.num_segments)
        rtm_panic("segment %d out of range", segment);
    return segment;
}

int
PeccLayout::windowPortIndex(int i) const
{
    if (i < 0 || i >= static_cast<int>(window_slots.size()))
        rtm_panic("window port %d out of range", i);
    return config.num_segments + i;
}

int
PeccLayout::leftWindowPortIndex(int i) const
{
    if (i < 0 || i >= static_cast<int>(left_window_slots.size()))
        rtm_panic("left window port %d out of range", i);
    return config.num_segments +
           static_cast<int>(window_slots.size()) + i;
}

PeccLayout
computeLayout(const PeccConfig &config)
{
    validate(config);
    PeccLayout lay;
    lay.config = config;

    const int s = config.num_segments;
    const int lseg = config.seg_len;
    const int m = config.correct;
    const int detect = config.detect();
    const int w = config.window();
    // Largest believed offset, and largest physical excursion once a
    // detectable error of +/-(m+1) is stacked on top of it.
    const int omax = lseg - 1;
    const int omax_err = omax + detect;

    switch (config.variant) {
      case PeccVariant::None: {
        lay.data_base = 0;
        lay.wire_len = s * lseg + omax;
        break;
      }
      case PeccVariant::Standard: {
        // [m guards][data][code region][right excursion room]. The
        // code region must cover the window under the full offset
        // excursion [-m, omax + m]: lseg + 2m domains of travel plus
        // the window itself. With the paper's w = m + 1 this is the
        // familiar lseg + 3m + 2; a wider Chee-style window only
        // grows it by the extra ports.
        lay.data_base = m;
        lay.code_base = lay.data_base + s * lseg;
        lay.code_len = lseg + 2 * m + std::max(w, m + 1) + 1;
        int window_base = lay.code_base + omax_err;
        for (int i = 0; i < w; ++i)
            lay.window_slots.push_back(window_base + i);
        lay.wire_len = lay.code_base + lay.code_len + omax_err;
        break;
      }
      case PeccVariant::OverheadRegion: {
        // Each end: [entry margin][code window m+1][guard]. The
        // margin keeps everything that enters at the wire end -
        // maintenance writes made under a wrong believed offset and
        // the undefined domains an over-shift injects - away from
        // the window slots for the whole duration of a correction
        // episode (up to kMaxCorrectionRounds raw counter-shifts,
        // each of which can itself suffer a +/-(m+1) error). The
        // guard keeps the window off the data region under the same
        // worst-case excursions. Window bits are therefore always
        // evidence written *before* the operation under check.
        //
        // These margins make the functional wire a conservative
        // superset of the paper's 2(m+1)-domains-per-end accounting
        // (extraDomains() reports the paper's number).
        const int m1 = m + 1;
        const int margin = kOverheadScrubDepthFactor * m1;
        const int guard = 4 * m1;
        lay.left_code_len = margin + w + guard;
        lay.data_base = lay.left_code_len;
        for (int i = 0; i < w; ++i)
            lay.left_window_slots.push_back(margin + i);
        int right_window_base =
            lay.data_base + s * lseg + (lseg - 1) + guard;
        for (int i = 0; i < w; ++i)
            lay.window_slots.push_back(right_window_base + i);
        lay.wire_len = right_window_base + w + margin;
        lay.has_end_write_ports = true;
        break;
      }
      case PeccVariant::DelIns: {
        // [left sentinel][data tracks][right excursion room]. The
        // sentinel region stays undefined (X) on purpose: head 0
        // streams into it during the flush reads and the length of
        // the trailing X run it observes reveals the readout's net
        // offset exactly (codec/del_ins.hh). Both margins are sized
        // for the deepest excursion of a full readout (N - 1 reads)
        // plus a worst-case +/-k burst on top.
        DelInsCode code(s, lseg, m);
        const int flush = code.flushReads();
        lay.data_base = flush + 2 * m;
        lay.wire_len =
            lay.data_base + s * lseg + lseg + flush + 2 * m;
        break;
      }
    }

    // Data ports: over the right-most domain of each segment at home.
    for (int seg = 0; seg < s; ++seg) {
        lay.data_port_slots.push_back(lay.data_base + seg * lseg +
                                      (lseg - 1));
    }
    return lay;
}

} // namespace rtm
