#include "shift_code.hh"

#include <cstdlib>

#include "codec/del_ins.hh"
#include "util/logging.hh"

namespace rtm
{

CyclicPositionCode::CyclicPositionCode(int window_bits,
                                       int correct_strength)
    : code_(window_bits), correct_(correct_strength)
{
    if (correct_ < 0)
        rtm_fatal("correction radius must be >= 0, got %d", correct_);
    // A cyclic code of period T distinguishes residues; correcting
    // +/-m needs the 2m + 1 correctable residues plus at least one
    // detect-only residue to be distinct: 2m + 2 <= T.
    if (2 * correct_ + 2 > code_.period())
        rtm_fatal("window w=%d (period %d) too narrow to correct "
                  "+/-%d offsets",
                  code_.window(), code_.period(), correct_);
}

const char *
CyclicPositionCode::name() const
{
    return "limited-magnitude position code";
}

ErrorClass
CyclicPositionCode::classify(int step_error) const
{
    if (step_error == 0)
        return ErrorClass::Ok;
    const int t = code_.period();
    const int m = correct_;
    int diff = (step_error % t + t) % t;
    if (diff == 0)
        return ErrorClass::Silent; // aliases to "no error"
    if (diff <= m || t - diff <= m) {
        int inferred = diff <= m ? diff : -(t - diff);
        return inferred == step_error ? ErrorClass::Corrected
                                      : ErrorClass::Miscorrected;
    }
    return ErrorClass::Ambiguous; // detected, direction unknown
}

int
CyclicPositionCode::redundancyDomains(int num_segments, int seg_len)
    const
{
    (void)num_segments; // the code region is shared by all segments
    const int m = correct_;
    const int w = code_.window();
    if (m == 0 && w == 1)
        return seg_len + 1; // the paper's SED accounting
    // p-ECC accounting (paper Sec. 4.2.3) plus one domain for each
    // window port beyond the paper's w = m + 1.
    return 2 * m + (seg_len - 1 + 2 * m) + (w - (m + 1));
}

DelInsShiftCode::DelInsShiftCode(int k) : k_(k)
{
    if (k_ < 1)
        rtm_fatal("del-ins code needs k >= 1, got %d", k_);
}

const char *
DelInsShiftCode::name() const
{
    return "interleaved-VT deletion/insertion code";
}

ErrorClass
DelInsShiftCode::classify(int step_error) const
{
    if (step_error == 0)
        return ErrorClass::Ok;
    // Each protected readout absorbs a burst of up to k skipped or
    // repeated reads; the trailing-sentinel length check plus the
    // per-class VT syndromes expose anything larger, so there is no
    // silent alias and no miscorrection channel within the device
    // model's error range (see codec/del_ins.hh).
    return std::abs(step_error) <= k_ ? ErrorClass::Corrected
                                      : ErrorClass::Ambiguous;
}

int
DelInsShiftCode::redundancyDomains(int num_segments, int seg_len)
    const
{
    DelInsCode code(num_segments, seg_len, k_);
    return num_segments * code.checkBitsPerTrack() +
           code.flushReads();
}

std::shared_ptr<const ShiftCode>
makeShiftCode(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
      case Scheme::Sts:
        return nullptr;
      case Scheme::SedPecc:
        return std::make_shared<CyclicPositionCode>(1, 0);
      case Scheme::SecdedPecc:
      case Scheme::PeccO:
      case Scheme::PeccSWorst:
      case Scheme::PeccSAdaptive:
        return std::make_shared<CyclicPositionCode>(2, 1);
      case Scheme::LmPos:
        return std::make_shared<CyclicPositionCode>(kLmPosWindow,
                                                    kLmPosCorrect);
      case Scheme::DelIns:
        return std::make_shared<DelInsShiftCode>(kDelInsStrength);
    }
    return nullptr;
}

} // namespace rtm
