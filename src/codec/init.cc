#include "init.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/prob.hh"
#include "util/units.hh"

namespace rtm
{

PeccInitializer::PeccInitializer(int rounds) : rounds_(rounds)
{
    if (rounds_ < 1)
        rtm_fatal("initialiser needs at least one round");
}

InitResult
PeccInitializer::run(ProtectedStripe &stripe) const
{
    InitResult res;
    const PeccLayout &lay = stripe.layout();
    const PeccConfig &c = lay.config;
    const CyclicCode &code = stripe.code();
    RacetrackStripe &raw = stripe.stripe();

    // Shuttle legs of one verification pass: walk to the far end of
    // the legal offset range and back, then probe the under-shift
    // margin and return. Staying within the wire's reserved
    // excursion room matters: walking further would push code bits
    // off the wire end and destroy them. Across the four legs the
    // window ports observe every code index.
    const int omax = c.seg_len - 1 +
                     (c.variant == PeccVariant::Standard
                          ? c.detect()
                          : 0);
    const int back = c.detect();
    const std::array<int, 4> legs = {+omax, -omax, -back, +back};

    const int max_restarts = 64;
    while (res.restarts < max_restarts) {
        // Step 1: program the intended pattern via pokes (end-port
        // sequential writes; the write itself is reliable, movement
        // is what program-and-test validates).
        stripe.initializeIdeal();

        bool pass = true;
        // The tester only knows how many shift commands it issued;
        // validation compares observations against this *believed*
        // position. A position error desynchronises the two and the
        // next window read exposes it - using ground truth here
        // would make the test blind to exactly the faults it exists
        // to catch.
        int believed = 0;
        // Steps 2-4: shuttle the legs, `rounds_` times, checking
        // the window after every 1-step shift.
        for (int round = 0; round < rounds_ && pass; ++round) {
            for (int leg : legs) {
                int dir = leg > 0 ? 1 : -1;
                for (int i = 0; i < std::abs(leg); ++i) {
                    if (c.variant == PeccVariant::OverheadRegion) {
                        // Maintain the code annulus while walking:
                        // the entering domain is programmed with the
                        // code bit its tape index calls for.
                        int64_t entering =
                            dir > 0 ? -static_cast<int64_t>(
                                          believed + 1)
                                    : static_cast<int64_t>(
                                          lay.wire_len - 1) -
                                          (believed - 1);
                        raw.shiftAndWrite(code.bitAt(entering),
                                          dir > 0);
                    } else {
                        raw.shift(dir);
                    }
                    believed += dir;
                    ++res.shift_steps;
                    // Validate: every code read port must observe
                    // the value the intended pattern implies at the
                    // believed position.
                    bool window_ok = true;
                    const auto &slots = lay.window_slots;
                    for (size_t k = 0; k < slots.size(); ++k) {
                        int port = lay.windowPortIndex(
                            static_cast<int>(k));
                        Bit seen = raw.read(port);
                        int64_t idx =
                            c.variant == PeccVariant::Standard
                                ? slots[k] - lay.code_base - believed
                                : slots[k] - believed;
                        if (c.variant == PeccVariant::Standard &&
                            (idx < 0 || idx >= lay.code_len)) {
                            continue; // window past pattern edge
                        }
                        Bit want = code.bitAt(idx);
                        if (seen != want) {
                            window_ok = false;
                            break;
                        }
                    }
                    if (!window_ok) {
                        pass = false;
                        break;
                    }
                }
                if (!pass)
                    break;
            }
        }
        if (pass) {
            // Walk back to home and re-verify the window there.
            if (believed != 0) {
                raw.shift(-believed);
                res.shift_steps +=
                    static_cast<uint64_t>(std::abs(believed));
                believed = 0;
            }
            bool home_ok = true;
            const auto &slots = lay.window_slots;
            for (size_t k = 0; k < slots.size(); ++k) {
                int port =
                    lay.windowPortIndex(static_cast<int>(k));
                int64_t idx = c.variant == PeccVariant::Standard
                                  ? slots[k] - lay.code_base
                                  : slots[k];
                if (raw.read(port) != code.bitAt(idx)) {
                    home_ok = false;
                    break;
                }
            }
            if (home_ok) {
                res.success = true;
                break;
            }
            // Return trip failed: restart.
        }
        ++res.restarts;
    }
    // Latency model: each 1-step STS shift costs 3 cycles, checks
    // overlap with the next shift.
    res.cycles = res.shift_steps * 3;
    return res;
}

InitAnalysis
PeccInitializer::analyze(const PeccConfig &config,
                         const PositionErrorModel &model) const
{
    InitAnalysis out;
    const int omax =
        config.seg_len - 1 +
        (config.variant == PeccVariant::Standard ? config.detect()
                                                 : 0);
    const int steps_per_round = 2 * (omax + config.detect());

    // Probability one 1-step shift errs (any outcome).
    double log_p1 = model.logProbAtLeast(1, 1);
    // An undetected mis-programming survives a full round only if
    // *every* checked step fails to expose it. The paper's protocol
    // (Sec. 4.3, Step 2) reads the passing pattern at every port
    // along the stripe - the code window ports plus each segment's
    // access port - so a surviving error needs a self-consistent
    // coincidence across all those independent observations. That
    // multiplicity is what drives the paper's "below 1e-100 after
    // one iteration" claim.
    double per_check =
        log_p1 * static_cast<double>(config.window() +
                                     config.num_segments + 1);
    out.log_residual_error =
        per_check * static_cast<double>(rounds_) +
        std::log(static_cast<double>(steps_per_round));

    // Expected restarts: a round restarts when any step errs
    // (detected); expectation of geometric retries.
    double p_round_err =
        std::exp(logAnyOf(log_p1, static_cast<double>(
                                      steps_per_round * rounds_)));
    out.expected_restarts = p_round_err / (1.0 - p_round_err);

    uint64_t base_cycles =
        static_cast<uint64_t>(steps_per_round) *
        static_cast<uint64_t>(rounds_) * 3;
    out.expected_cycles = static_cast<uint64_t>(
        std::ceil(static_cast<double>(base_cycles) *
                  (1.0 + out.expected_restarts)));
    return out;
}

double
PeccInitializer::memoryInitSeconds(const PeccConfig &config,
                                   const PositionErrorModel &model,
                                   uint64_t stripes,
                                   uint64_t parallel_groups) const
{
    InitAnalysis a = analyze(config, model);
    if (parallel_groups == 0)
        rtm_fatal("parallel_groups must be >= 1");
    uint64_t waves = (stripes + parallel_groups - 1) / parallel_groups;
    double cycles = static_cast<double>(a.expected_cycles) *
                    static_cast<double>(waves);
    return cycles * kDefaultCyclePeriodS;
}

} // namespace rtm
