/**
 * @file
 * Interleaved Varshamov-Tenengolts deletion/insertion code for
 * racetrack tracks (after Sima & Bruck, "Correcting k Deletions and
 * Insertions in Racetrack Memory").
 *
 * A position error during a streaming readout is literally a burst of
 * deletions (over-shift: bits skipped under the head) or insertions
 * (under-shift: bits re-read) in the observed bit stream. Instead of
 * a dedicated position-code region, this codec protects the data
 * tracks themselves:
 *
 *  - each track carries k interleaved VT codes (interleave class c =
 *    positions congruent to c mod k). A VT code with syndrome
 *    sum (i+1)*x_i = 0 (mod Lc+1) corrects one deletion or insertion,
 *    and a burst of <= k consecutive events touches each class at
 *    most once — the classic burst-interleaving argument;
 *  - the code is systematic: ceil(log2(Lc+1)) check bits per class
 *    sit at the class-local positions of weight 2^j, so the syndrome
 *    deficit of the data bits can be written directly;
 *  - the multiple heads of the construction are the per-segment data
 *    ports the stripe already has: every head streams its own track
 *    and over-reads into its left neighbour, so each track tail is
 *    observed twice (cross-head verification for free);
 *  - the net offset of a readout is recovered *exactly* from the
 *    run of undefined (X) sentinel domains head 0 reads after its
 *    track is exhausted: a readout of L + E reads ends with E + delta
 *    X reads, where delta is the net position error.
 *
 * decode() is a pure function of the observed streams so exhaustive
 * tests can drive it over every codeword x error pattern without a
 * stripe; ProtectedStripe produces the same streams by real shifting
 * (with fault injection) and calls the same function.
 *
 * Correction guarantee: at k = 1 every single in-band burst decodes
 * to the exact data and offset (the lone interleave class is a true
 * VT code, whose deletion balls are disjoint across codewords). At
 * k >= 2 a burst can be genuinely ambiguous for some codewords —
 * several burst positions permute the streams into distinct valid
 * codewords, typically inside runs of equal bits whose class
 * syndromes collide — and is then reported detected-uncorrectable,
 * never resolved by guessing. Likewise a readout that suffered two
 * or more separate bursts is outside the single-burst model: it is
 * almost always rejected (DUE, retried by ProtectedStripe), and the
 * residual aliasing channel is the code's analogue of a multi-error
 * SDC under SECDED.
 */

#ifndef RTM_CODEC_DEL_INS_HH
#define RTM_CODEC_DEL_INS_HH

#include <vector>

#include "codec/cyclic.hh" // DecodeResult
#include "device/stripe.hh"

namespace rtm
{

/** Interleaved-VT codec over `tracks` tracks of `track_len` bits. */
class DelInsCode
{
  public:
    /**
     * @param tracks    heads/tracks decoded together (>= 1)
     * @param track_len L: domains per track
     * @param k         burst strength: deletions/insertions corrected
     *                  per readout (1 <= k < track_len)
     */
    DelInsCode(int tracks, int track_len, int k);

    int tracks() const { return tracks_; }
    int trackLen() const { return len_; }
    int strength() const { return k_; }

    /**
     * Flush reads E past the track end. The trailing-X run on head 0
     * has length E + delta for any net offset delta in [-E, E], so
     * E = 2k + 2 pins every |delta| <= k exactly and still
     * distinguishes the first beyond-radius magnitudes for detection.
     */
    int flushReads() const { return 2 * k_ + 2; }

    /** Reads per protected readout: N = L + E. */
    int readoutReads() const { return len_ + flushReads(); }

    /** VT check bits embedded in each track. */
    int checkBitsPerTrack() const { return checks_per_track_; }

    /** Data bits per track: L minus the check bits. */
    int dataBitsPerTrack() const { return len_ - checks_per_track_; }

    /** Data bits across all tracks. */
    int payloadBits() const { return tracks_ * dataBitsPerTrack(); }

    /** True if track position `pos` holds a check bit. */
    bool isCheckPosition(int pos) const;

    /** Encode one track: dataBitsPerTrack() bits -> L-bit codeword. */
    std::vector<Bit> encodeTrack(const std::vector<Bit> &data) const;

    /** Encode a payloadBits() image into per-track codewords. */
    std::vector<std::vector<Bit>>
    encode(const std::vector<Bit> &payload) const;

    /** Data bits of one L-bit track codeword, in position order. */
    std::vector<Bit>
    extractTrackData(const std::vector<Bit> &track) const;

    /** Payload of a full per-track codeword set. */
    std::vector<Bit>
    extractPayload(const std::vector<std::vector<Bit>> &tracks) const;

    /** True if every interleave class of `track` has syndrome 0. */
    bool trackSyndromesOk(const std::vector<Bit> &track) const;

    /** Outcome of decoding one readout. */
    struct Result
    {
        /** detected/correctable/step_error follow the DecodeResult
         *  conventions; step_error is the inferred net offset. */
        DecodeResult status;

        /** Reconstructed track codewords (valid when status.ok() or
         *  status.correctable). */
        std::vector<std::vector<Bit>> tracks;
    };

    /**
     * Decode the observed readout streams (tracks() streams of
     * readoutReads() bits each, X included). Either reconstructs the
     * exact pre-error track contents and the net offset, or reports
     * a detected-uncorrectable error; by construction there is no
     * silent path — every accepted reconstruction re-predicts the
     * observed streams bit for bit and satisfies all VT syndromes,
     * and ambiguity across surviving candidates is reported as
     * uncorrectable rather than resolved by guessing.
     */
    Result decode(
        const std::vector<std::vector<Bit>> &streams) const;

    /**
     * Reference readout: the streams a fault-free readout of
     * `tracks` would observe if a single net offset burst of
     * `error` steps took effect from read index `burst_time` on
     * (burst_time = 0 models a latent pre-readout offset). Pure
     * function shared by the decoder's candidate verification and
     * the exhaustive tests.
     */
    std::vector<std::vector<Bit>>
    referenceStreams(const std::vector<std::vector<Bit>> &tracks,
                     int burst_time, int error) const;

  private:
    struct ClassInfo
    {
        int length = 0;              //!< Lc: positions in the class
        std::vector<int> check_local; //!< class-local check indices
    };

    int tracks_;
    int len_;
    int k_;
    int checks_per_track_ = 0;
    std::vector<ClassInfo> classes_;      //!< one per residue mod k
    std::vector<uint8_t> is_check_;       //!< per track position

    /** Predicted read of head `s` at offset `o` from track array. */
    Bit predictedRead(const std::vector<std::vector<Bit>> &tracks,
                      int head, int offset) const;

    /** Try one (burst_time, delta) candidate; true on success. */
    bool tryCandidate(const std::vector<std::vector<Bit>> &streams,
                      int burst_time, int delta,
                      std::vector<std::vector<Bit>> *out) const;
};

} // namespace rtm

#endif // RTM_CODEC_DEL_INS_HH
