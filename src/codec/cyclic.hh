/**
 * @file
 * Cyclic position codes for p-ECC (paper Sec. 4.2).
 *
 * The paper's SED pattern '10101' and the SECDED two-bit cyclic code
 * ('11' -> '10' -> '00' -> '01') generalise to binary de Bruijn
 * sequences B(2, w): a window of w consecutive code bits read by w
 * adjacent ports identifies the stripe's cumulative shift offset
 * modulo 2^w. With w = m + 1 the period 2^(m+1) >= 2m + 2 is exactly
 * enough to correct +/-m step errors and detect +/-(m+1) (the two
 * (m+1)-step errors alias to the same residue, so they are detectable
 * but uncorrectable - precisely the paper's SECDED behaviour at m=1).
 */

#ifndef RTM_CODEC_CYCLIC_HH
#define RTM_CODEC_CYCLIC_HH

#include <cstdint>
#include <vector>

#include "device/stripe.hh"

namespace rtm
{

/** Outcome of a p-ECC window check. */
struct DecodeResult
{
    /** Window bits were all defined and decodable. */
    bool valid = false;

    /** A position error was detected. */
    bool detected = false;

    /** The detected error can be corrected by a counter-shift. */
    bool correctable = false;

    /** Inferred signed step error (0 when no error detected). */
    int step_error = 0;

    /** No error detected and the window was readable. */
    bool ok() const { return valid && !detected; }
};

/**
 * Binary de Bruijn sequence B(2, w) with window-to-phase decoding.
 */
class CyclicCode
{
  public:
    /**
     * @param window_bits w = number of code read ports (m + 1);
     *        must be in [1, 16].
     */
    explicit CyclicCode(int window_bits);

    /** Window size w. */
    int window() const { return window_; }

    /** Sequence period T = 2^w. */
    int period() const { return period_; }

    /** Code bit stored at (possibly negative) code index. */
    Bit bitAt(int64_t index) const;

    /**
     * Phase of a window of w bits (the code index of its first bit,
     * modulo the period). Returns -1 if any bit is undefined or the
     * window length mismatches.
     */
    int phaseOf(const std::vector<Bit> &window_bits) const;

    /**
     * Decode an observed window phase against the expected phase.
     *
     * @param observed phase read from the ports (or -1 if unreadable)
     * @param expected phase implied by the believed offset
     * @param correct_strength m: largest |error| to correct
     */
    DecodeResult decode(int observed, int expected,
                        int correct_strength) const;

  private:
    int window_;
    int period_;
    std::vector<uint8_t> sequence_;   //!< B(2, w), length = period
    std::vector<int> phase_lookup_;   //!< window value -> phase
};

} // namespace rtm

#endif // RTM_CODEC_CYCLIC_HH
