#include "cyclic.hh"

#include <functional>

#include "util/logging.hh"

namespace rtm
{

namespace
{

/**
 * FKM (Fredricksen-Kessler-Maiorana) construction of the
 * lexicographically least binary de Bruijn sequence B(2, n):
 * concatenation of Lyndon words of length dividing n.
 */
std::vector<uint8_t>
deBruijn(int n)
{
    std::vector<uint8_t> sequence;
    std::vector<int> a(static_cast<size_t>(2 * n), 0);
    // Recursive generation, iteratively via explicit lambda.
    std::function<void(int, int)> db = [&](int t, int p) {
        if (t > n) {
            if (n % p == 0)
                for (int j = 1; j <= p; ++j)
                    sequence.push_back(
                        static_cast<uint8_t>(a[static_cast<size_t>(j)]));
            return;
        }
        a[static_cast<size_t>(t)] = a[static_cast<size_t>(t - p)];
        db(t + 1, p);
        for (int j = a[static_cast<size_t>(t - p)] + 1; j < 2; ++j) {
            a[static_cast<size_t>(t)] = j;
            db(t + 1, t);
        }
    };
    db(1, 1);
    return sequence;
}

} // anonymous namespace

CyclicCode::CyclicCode(int window_bits)
    : window_(window_bits), period_(1 << window_bits)
{
    if (window_bits < 1 || window_bits > 16)
        rtm_fatal("CyclicCode window must be in [1,16], got %d",
                  window_bits);
    sequence_ = deBruijn(window_bits);
    if (static_cast<int>(sequence_.size()) != period_)
        rtm_panic("de Bruijn length %zu != period %d",
                  sequence_.size(), period_);
    phase_lookup_.assign(static_cast<size_t>(period_), -1);
    for (int phase = 0; phase < period_; ++phase) {
        int value = 0;
        for (int i = 0; i < window_; ++i) {
            int idx = (phase + i) % period_;
            value = (value << 1) |
                    sequence_[static_cast<size_t>(idx)];
        }
        if (phase_lookup_[static_cast<size_t>(value)] != -1)
            rtm_panic("window value %d is not unique", value);
        phase_lookup_[static_cast<size_t>(value)] = phase;
    }
}

Bit
CyclicCode::bitAt(int64_t index) const
{
    int64_t m = index % period_;
    if (m < 0)
        m += period_;
    return sequence_[static_cast<size_t>(m)] ? Bit::One : Bit::Zero;
}

int
CyclicCode::phaseOf(const std::vector<Bit> &window_bits) const
{
    if (static_cast<int>(window_bits.size()) != window_)
        return -1;
    int value = 0;
    for (Bit b : window_bits) {
        // Only defined domains decode; X (freshly injected or
        // misaligned) and any out-of-range raw lane value make the
        // whole window unreadable rather than aliasing to a phase.
        if (b != Bit::Zero && b != Bit::One)
            return -1;
        value = (value << 1) | (b == Bit::One ? 1 : 0);
    }
    return phase_lookup_[static_cast<size_t>(value)];
}

DecodeResult
CyclicCode::decode(int observed, int expected,
                   int correct_strength) const
{
    DecodeResult res;
    if (observed < 0 || observed >= period_) {
        // Unreadable window (stop-in-middle, destroyed domains, or a
        // phase that is no phase at all): an error is evident, but
        // its direction is unknowable.
        res.valid = false;
        res.detected = true;
        res.correctable = false;
        return res;
    }
    if (2 * correct_strength + 2 > period_)
        rtm_fatal("correction strength %d exceeds what a period-%d "
                  "code can disambiguate", correct_strength, period_);
    res.valid = true;
    // The window phase equals (base - offset_true) mod T while the
    // expectation uses the believed offset, so the residue recovers
    // e = offset_true - offset_believed as (expected - observed).
    int t = period_;
    int diff = ((expected - observed) % t + t) % t;
    if (diff == 0)
        return res; // ok
    res.detected = true;
    if (diff <= correct_strength) {
        res.correctable = true;
        res.step_error = diff;
    } else if (t - diff <= correct_strength) {
        res.correctable = true;
        res.step_error = -(t - diff);
    } else {
        // Residue outside +/-m: detectable only. For T = 2m+2 this is
        // exactly the +/-(m+1) alias the paper describes for SECDED.
        res.correctable = false;
        res.step_error = 0;
    }
    return res;
}

} // namespace rtm
