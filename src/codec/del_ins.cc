#include "del_ins.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rtm
{

DelInsCode::DelInsCode(int tracks, int track_len, int k)
    : tracks_(tracks), len_(track_len), k_(k)
{
    if (tracks_ < 1)
        rtm_fatal("del-ins code needs >= 1 track, got %d", tracks_);
    if (k_ < 1)
        rtm_fatal("del-ins code needs k >= 1, got %d", k_);
    if (len_ <= k_)
        rtm_fatal("track of %d domains too short for k=%d", len_, k_);

    // Interleave class c holds the positions congruent to c mod k; a
    // burst of <= k consecutive deletions/insertions touches each
    // class at most once, so one VT code per class suffices.
    classes_.resize(k_);
    is_check_.assign(len_, 0);
    for (int c = 0; c < k_; ++c) {
        ClassInfo &info = classes_[c];
        info.length = (len_ - 1 - c) / k_ + 1;
        // Smallest r with 2^r - 1 >= Lc: the check bits at class-local
        // indices 2^j - 1 have VT weight 2^j, so they can write any
        // syndrome deficit in [0, Lc] directly.
        int r = 0;
        while ((1 << r) - 1 < info.length)
            ++r;
        for (int j = 0; j < r; ++j) {
            int local = (1 << j) - 1;
            info.check_local.push_back(local);
            is_check_[c + local * k_] = 1;
        }
        checks_per_track_ += r;
    }
    if (dataBitsPerTrack() < 1)
        rtm_fatal("del-ins code (L=%d, k=%d) leaves no data bits",
                  len_, k_);
}

bool
DelInsCode::isCheckPosition(int pos) const
{
    return is_check_[pos] != 0;
}

std::vector<Bit>
DelInsCode::encodeTrack(const std::vector<Bit> &data) const
{
    if (static_cast<int>(data.size()) != dataBitsPerTrack())
        rtm_fatal("del-ins encode expects %d data bits, got %zu",
                  dataBitsPerTrack(), data.size());
    std::vector<Bit> track(len_, Bit::Zero);
    int next = 0;
    for (int p = 0; p < len_; ++p) {
        if (is_check_[p])
            continue;
        if (data[next] == Bit::X)
            rtm_fatal("cannot encode an undefined data bit");
        track[p] = data[next++];
    }
    for (int c = 0; c < k_; ++c) {
        const ClassInfo &info = classes_[c];
        const int mod = info.length + 1;
        int syndrome = 0;
        for (int local = 0; local < info.length; ++local)
            if (track[c + local * k_] == Bit::One)
                syndrome = (syndrome + local + 1) % mod;
        // Deficit D makes the class syndrome 0 mod Lc+1; its binary
        // digits land on the weight-2^j check bits.
        int deficit = (mod - syndrome) % mod;
        for (size_t j = 0; j < info.check_local.size(); ++j)
            if (deficit & (1 << j))
                track[c + info.check_local[j] * k_] = Bit::One;
    }
    return track;
}

std::vector<std::vector<Bit>>
DelInsCode::encode(const std::vector<Bit> &payload) const
{
    if (static_cast<int>(payload.size()) != payloadBits())
        rtm_fatal("del-ins encode expects %d payload bits, got %zu",
                  payloadBits(), payload.size());
    std::vector<std::vector<Bit>> out;
    out.reserve(tracks_);
    const int per = dataBitsPerTrack();
    for (int s = 0; s < tracks_; ++s)
        out.push_back(encodeTrack({payload.begin() + s * per,
                                   payload.begin() + (s + 1) * per}));
    return out;
}

std::vector<Bit>
DelInsCode::extractTrackData(const std::vector<Bit> &track) const
{
    if (static_cast<int>(track.size()) != len_)
        rtm_fatal("del-ins track must be %d bits, got %zu", len_,
                  track.size());
    std::vector<Bit> data;
    data.reserve(dataBitsPerTrack());
    for (int p = 0; p < len_; ++p)
        if (!is_check_[p])
            data.push_back(track[p]);
    return data;
}

std::vector<Bit>
DelInsCode::extractPayload(
    const std::vector<std::vector<Bit>> &tracks) const
{
    std::vector<Bit> payload;
    payload.reserve(payloadBits());
    for (const auto &track : tracks) {
        auto data = extractTrackData(track);
        payload.insert(payload.end(), data.begin(), data.end());
    }
    return payload;
}

bool
DelInsCode::trackSyndromesOk(const std::vector<Bit> &track) const
{
    for (int c = 0; c < k_; ++c) {
        const ClassInfo &info = classes_[c];
        const int mod = info.length + 1;
        int syndrome = 0;
        for (int local = 0; local < info.length; ++local) {
            Bit b = track[c + local * k_];
            if (b == Bit::X)
                return false;
            if (b == Bit::One)
                syndrome = (syndrome + local + 1) % mod;
        }
        if (syndrome != 0)
            return false;
    }
    return true;
}

Bit
DelInsCode::predictedRead(
    const std::vector<std::vector<Bit>> &tracks, int head,
    int offset) const
{
    // Head `head` sits over the last domain of its track; at tape
    // offset o it sees the concatenated-track position G. Beyond the
    // concatenation (left sentinel region, right excursion room) the
    // wire holds undefined domains by construction.
    const int g = head * len_ + (len_ - 1) - offset;
    if (g < 0 || g >= tracks_ * len_)
        return Bit::X;
    return tracks[g / len_][g % len_];
}

std::vector<std::vector<Bit>>
DelInsCode::referenceStreams(
    const std::vector<std::vector<Bit>> &tracks, int burst_time,
    int error) const
{
    const int n = readoutReads();
    std::vector<std::vector<Bit>> streams(
        tracks_, std::vector<Bit>(n, Bit::X));
    for (int s = 0; s < tracks_; ++s)
        for (int t = 0; t < n; ++t) {
            const int o = t + (t >= burst_time ? error : 0);
            streams[s][t] = predictedRead(tracks, s, o);
        }
    return streams;
}

bool
DelInsCode::tryCandidate(
    const std::vector<std::vector<Bit>> &streams, int burst_time,
    int delta, std::vector<std::vector<Bit>> *out) const
{
    const int n = readoutReads();

    // Assignment pass: map every read back to the concatenated-track
    // position it would have sampled under this (burst_time, delta)
    // hypothesis. Re-read positions must agree; reads that land
    // outside the tracks must have seen an undefined domain, and data
    // positions must never read as undefined.
    std::vector<std::vector<Bit>> recon(
        tracks_, std::vector<Bit>(len_, Bit::X));
    for (int s = 0; s < tracks_; ++s)
        for (int t = 0; t < n; ++t) {
            const int o = t + (t >= burst_time ? delta : 0);
            const int g = s * len_ + (len_ - 1) - o;
            const Bit b = streams[s][t];
            if (g < 0 || g >= tracks_ * len_) {
                if (b != Bit::X)
                    return false;
                continue;
            }
            if (b != Bit::Zero && b != Bit::One)
                return false;
            Bit &slot = recon[g / len_][g % len_];
            if (slot == Bit::X)
                slot = b;
            else if (slot != b)
                return false;
        }

    // Syndrome pass: a deletion burst of |delta| <= k skipped at most
    // one position per interleave class, so any class with a single
    // unread position is solved exactly by its VT syndrome; more than
    // one unknown in a class is beyond this candidate.
    for (int s = 0; s < tracks_; ++s) {
        for (int c = 0; c < k_; ++c) {
            const ClassInfo &info = classes_[c];
            const int mod = info.length + 1;
            int syndrome = 0;
            int unknown_local = -1;
            for (int local = 0; local < info.length; ++local) {
                Bit b = recon[s][c + local * k_];
                if (b == Bit::X) {
                    if (unknown_local >= 0)
                        return false;
                    unknown_local = local;
                } else if (b == Bit::One) {
                    syndrome = (syndrome + local + 1) % mod;
                }
            }
            if (unknown_local < 0) {
                if (syndrome != 0)
                    return false;
                continue;
            }
            const bool fits_zero = syndrome == 0;
            const bool fits_one =
                (syndrome + unknown_local + 1) % mod == 0;
            if (fits_zero == fits_one)
                return false; // weight != 0 mod Lc+1: exactly one fits
            recon[s][c + unknown_local * k_] =
                fits_one ? Bit::One : Bit::Zero;
        }
    }

    // Verification pass: the reconstruction must re-predict the
    // observed streams bit for bit under the same hypothesis. This is
    // what rules out silent acceptance of a wrong candidate.
    if (referenceStreams(recon, burst_time, delta) != streams)
        return false;
    *out = std::move(recon);
    return true;
}

DelInsCode::Result
DelInsCode::decode(
    const std::vector<std::vector<Bit>> &streams) const
{
    Result res;
    res.status.detected = true; // until proven decodable
    const int n = readoutReads();
    if (static_cast<int>(streams.size()) != tracks_)
        return res;
    for (const auto &stream : streams)
        if (static_cast<int>(stream.size()) != n)
            return res;
    res.status.valid = true;

    // The net offset is read off the trailing undefined run of head
    // 0: its track is exhausted after L - delta reads, so the run has
    // length E + delta.
    int trailing = 0;
    while (trailing < n &&
           streams[0][n - 1 - trailing] == Bit::X)
        ++trailing;
    const int delta = trailing - flushReads();
    if (delta < -k_ || delta > k_)
        return res; // beyond the claimed radius: uncorrectable

    // Enumerate when the burst could have struck; distinct surviving
    // reconstructions mean ambiguity, reported as uncorrectable
    // rather than resolved by guessing.
    std::vector<std::vector<std::vector<Bit>>> accepted;
    std::vector<std::vector<Bit>> candidate;
    const int last_time = delta == 0 ? 0 : n - 1;
    for (int burst_time = 0; burst_time <= last_time; ++burst_time) {
        if (!tryCandidate(streams, burst_time, delta, &candidate))
            continue;
        if (std::find(accepted.begin(), accepted.end(), candidate) ==
            accepted.end())
            accepted.push_back(candidate);
    }
    if (accepted.size() != 1)
        return res;

    res.tracks = std::move(accepted.front());
    res.status.step_error = delta;
    if (delta == 0) {
        res.status.detected = false;
    } else {
        res.status.detected = true;
        res.status.correctable = true;
    }
    return res;
}

} // namespace rtm
