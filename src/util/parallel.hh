/**
 * @file
 * Reusable parallel-execution layer: a fixed-size thread pool with a
 * blocking parallelFor and a sharded map-reduce helper.
 *
 * Design rules that keep results reproducible:
 *  - Work is split into *shards* whose count depends only on the
 *    problem size, never on the worker count, so a given (seed, shard
 *    count) produces bit-identical results for any RTM_THREADS.
 *  - Shard results are reduced in shard-index order on the calling
 *    thread, so floating-point accumulation order is fixed.
 *  - Nested parallelFor calls (from inside a worker) run inline, so
 *    library code may parallelise freely without deadlocking the pool.
 *
 * The worker count comes from the RTM_THREADS environment variable
 * when set (>= 1), otherwise from std::thread::hardware_concurrency().
 * A pool of one thread runs everything inline on the caller.
 */

#ifndef RTM_UTIL_PARALLEL_HH
#define RTM_UTIL_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rtm
{

/**
 * Cooperative cancellation flag shared between a controller (a
 * signal handler, a watchdog, a test) and the workers it governs.
 * requestCancel() is one relaxed atomic store, so it is safe to call
 * from an async signal handler; workers poll cancelled() at natural
 * checkpoints and wind down on their own — nothing is ever killed
 * mid-iteration, which is what keeps partial results well-formed
 * enough to checkpoint.
 */
class CancelToken
{
  public:
    void requestCancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Re-arm for another run (tests / long-lived daemons). */
    void reset() { cancelled_.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> cancelled_{false};
};

/** Why a StopFlag tripped. */
enum class StopReason
{
    None,      //!< still running
    Cancelled, //!< CancelToken fired (signal / caller request)
    Deadline   //!< the monotonic deadline passed
};

/** Monotonic seconds (steady clock) for deadlines and wall timing. */
double monotonicSeconds();

/**
 * Per-task stop poller combining a shared CancelToken with an
 * absolute monotonic deadline. poll() is cheap and thread-safe (one
 * relaxed load when idle), latches the first reason observed, and
 * keeps answering true afterwards. The latch is the containment
 * contract: a task's result is valid if and only if the task never
 * observed a stop, so a cancel that lands *after* the last poll
 * leaves a perfectly good completed result.
 */
class StopFlag
{
  public:
    StopFlag() = default;

    /**
     * @param cancel   shared token (may be null)
     * @param deadline absolute monotonicSeconds() deadline; 0 = none
     */
    StopFlag(const CancelToken *cancel, double deadline)
        : cancel_(cancel), deadline_(deadline)
    {
    }

    /** True once a stop is observed (and forever after). */
    bool poll()
    {
        if (stopped())
            return true;
        if (cancel_ && cancel_->cancelled()) {
            trip(StopReason::Cancelled);
            return true;
        }
        if (deadline_ > 0.0 && monotonicSeconds() > deadline_) {
            trip(StopReason::Deadline);
            return true;
        }
        return false;
    }

    bool stopped() const
    {
        return reason_.load(std::memory_order_relaxed) !=
               static_cast<int>(StopReason::None);
    }

    StopReason reason() const
    {
        return static_cast<StopReason>(
            reason_.load(std::memory_order_relaxed));
    }

  private:
    void trip(StopReason r)
    {
        int none = static_cast<int>(StopReason::None);
        reason_.compare_exchange_strong(none, static_cast<int>(r),
                                        std::memory_order_relaxed);
    }

    const CancelToken *cancel_ = nullptr;
    double deadline_ = 0.0; //!< absolute monotonicSeconds(); 0 = none
    std::atomic<int> reason_{static_cast<int>(StopReason::None)};
};

/**
 * Route SIGINT/SIGTERM to `token` (pass null to uninstall). The
 * handler performs one atomic store — fully async-signal-safe — so a
 * first ^C triggers a graceful drain-and-checkpoint; a second one
 * force-exits with the conventional 128+signo status for users who
 * will not wait.
 */
void installCancelOnSignals(CancelToken *token);

/** Signal number that fired the installed token (0 if none yet). */
int cancelSignal();

/**
 * Fixed-size worker pool. Construct directly for a private pool or
 * use ThreadPool::global() for the process-wide shared instance.
 */
class ThreadPool
{
  public:
    /** @param threads worker count (>= 1); 1 means fully inline. */
    explicit ThreadPool(unsigned threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count this pool was built with (>= 1). */
    unsigned threads() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     * Iterations are claimed dynamically by the workers, so fn must
     * not rely on any particular execution order or thread identity.
     * Called from inside a pool worker, runs inline (serially).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Cancellation-aware parallelFor: once `cancel` fires, workers
     * stop claiming *new* iterations (iterations already started run
     * to completion — cooperative, never preemptive). Iterations that
     * were never claimed are simply skipped; callers that need an
     * account of skipped work should track it themselves (the
     * experiment engine records them as cancelled outcomes).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                     const CancelToken *cancel);

    /** Process-wide pool, sized by RTM_THREADS / the hardware. */
    static ThreadPool &global();

    /**
     * Rebuild the global pool with an explicit worker count
     * (overriding RTM_THREADS). Intended for tests and benches that
     * compare serial vs parallel execution in one process; not safe
     * while another thread is using the global pool.
     */
    static void setGlobalThreads(unsigned threads);

    /** Worker count RTM_THREADS / the hardware asks for (>= 1). */
    static unsigned configuredThreads();

  private:
    void workerLoop();
    void submit(std::function<void()> task);

    unsigned threads_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/** parallelFor on the global pool. */
void parallelFor(size_t n, const std::function<void(size_t)> &fn);

/**
 * Shard count for a workload of n independent items: enough shards to
 * keep any pool busy and to amortise per-shard setup, but a function
 * of n alone so results cannot depend on the worker count.
 */
size_t shardCount(size_t n);

/**
 * Deterministic sharded map-reduce on the global pool.
 *
 * map(shard) produces a Result per shard (in parallel); reduce(acc,
 * partial) folds them together in increasing shard order on the
 * calling thread. Result must be default-constructible.
 */
template <typename Result, typename MapFn, typename ReduceFn>
Result
shardedMapReduce(size_t shards, MapFn map, ReduceFn reduce)
{
    std::vector<Result> partial(shards);
    parallelFor(shards,
                [&](size_t s) { partial[s] = map(s); });
    Result acc{};
    for (size_t s = 0; s < shards; ++s)
        reduce(acc, partial[s]);
    return acc;
}

/**
 * Split n items into `shards` contiguous ranges; returns the item
 * count of shard s (the first n % shards shards get one extra).
 */
inline size_t
shardSize(size_t n, size_t shards, size_t s)
{
    return n / shards + (s < n % shards ? 1 : 0);
}

/**
 * Shard sizing for batched kernels: every shard gets a multiple of
 * `granule` items (so batch loops never run a ragged tail mid-shard)
 * and the remainder all lands in the last shard. Like shardSize this
 * is a function of (n, shards, granule) alone, so batched results
 * stay independent of the worker count. Degenerates to one big last
 * shard when n < shards * granule.
 */
inline size_t
alignedShardSize(size_t n, size_t shards, size_t s, size_t granule)
{
    if (granule <= 1)
        return shardSize(n, shards, s);
    size_t whole = (n / granule) / shards; // granules per shard
    size_t base = whole * granule;
    if (s + 1 < shards)
        return base;
    return n - base * (shards - 1); // remainder rides the last shard
}

} // namespace rtm

#endif // RTM_UTIL_PARALLEL_HH
