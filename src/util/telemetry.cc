#include "telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace rtm
{

// --- LatencyHistogram ------------------------------------------------

LatencyHistogram::LatencyHistogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    if (edges_.empty())
        rtm_panic("LatencyHistogram needs at least one edge");
    for (size_t i = 1; i < edges_.size(); ++i) {
        if (!(edges_[i - 1] < edges_[i]))
            rtm_panic("histogram edges must be strictly increasing");
    }
    counts_.assign(edges_.size() + 1, 0);
}

void
LatencyHistogram::record(double value, uint64_t weight)
{
    size_t bucket = static_cast<size_t>(
        std::upper_bound(edges_.begin(), edges_.end(), value) -
        edges_.begin());
    counts_[bucket] += weight;
    total_ += weight;
    sum_ += value * static_cast<double>(weight);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (edges_ != other.edges_)
        rtm_panic("LatencyHistogram::merge: bucket edges differ");
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
}

std::vector<double>
powerOfTwoEdges(double hi)
{
    std::vector<double> edges;
    for (double e = 1.0; e <= hi; e *= 2.0)
        edges.push_back(e);
    if (edges.empty())
        edges.push_back(1.0);
    return edges;
}

// --- events ----------------------------------------------------------

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::ShiftIssued: return "shift_issued";
      case EventKind::ErrorInjected: return "error_injected";
      case EventKind::ErrorDetected: return "error_detected";
      case EventKind::RecoveryRung: return "recovery_rung";
      case EventKind::GroupRetired: return "group_retired";
      case EventKind::FrameRemapped: return "frame_remapped";
      case EventKind::CacheMissBurst: return "cache_miss_burst";
      case EventKind::Span: return "span";
      case EventKind::Phase: return "phase";
      case EventKind::Custom: return "custom";
      case EventKind::kCount: break;
    }
    return "?";
}

// --- Telemetry -------------------------------------------------------

Telemetry::Telemetry(size_t ring_capacity, uint32_t lane)
    : lane_(lane), ring_capacity_(std::max<size_t>(ring_capacity, 1))
{
    // The ring is pre-sized so event() never allocates; push order is
    // tracked by `pushed_` and the head index.
    ring_.reserve(ring_capacity_);
}

Counter &
Telemetry::counter(const std::string &path)
{
    return counters_[path]; // map nodes are reference-stable
}

Gauge &
Telemetry::gauge(const std::string &path)
{
    return gauges_[path];
}

LatencyHistogram &
Telemetry::histogram(const std::string &path,
                     const std::vector<double> &edges)
{
    auto it = histograms_.find(path);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(path, LatencyHistogram(edges))
                 .first;
    } else if (it->second.edges() != edges) {
        rtm_panic("histogram '%s' re-registered with different "
                  "edges",
                  path.c_str());
    }
    return it->second;
}

void
Telemetry::event(EventKind kind, const char *name,
                 uint64_t timestamp, double a0, double a1)
{
    TraceEvent ev;
    ev.kind = kind;
    ev.lane = lane_;
    ev.timestamp = timestamp;
    ev.seq = pushed_;
    ev.name = name;
    ev.a0 = a0;
    ev.a1 = a1;
    if (ring_.size() < ring_capacity_) {
        ring_.push_back(ev);
    } else {
        ring_[ring_head_] = ev;
        ring_head_ = (ring_head_ + 1) % ring_capacity_;
    }
    ++pushed_;
    ++kind_totals_[static_cast<size_t>(kind)];
}

uint64_t
Telemetry::eventsDropped() const
{
    return pushed_ - static_cast<uint64_t>(ring_.size());
}

std::vector<TraceEvent>
Telemetry::ringEvents() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(
            ring_[(ring_head_ + i) % ring_.size()]);
    return out;
}

void
Telemetry::merge(const Telemetry &shard)
{
    for (const auto &[path, c] : shard.counters_)
        counters_[path].value_ += c.value_;
    for (const auto &[path, g] : shard.gauges_) {
        if (g.set_)
            gauges_[path].set(g.value_);
    }
    for (const auto &[path, h] : shard.histograms_) {
        histogram(path, h.edges()).merge(h);
    }
    // Events append in the shard's push order with their original
    // lane; kind totals fold even for events the shard's ring
    // dropped, so reconciliation counts survive the merge.
    for (const TraceEvent &ev : shard.ringEvents()) {
        TraceEvent copy = ev;
        copy.seq = pushed_;
        if (ring_.size() < ring_capacity_) {
            ring_.push_back(copy);
        } else {
            ring_[ring_head_] = copy;
            ring_head_ = (ring_head_ + 1) % ring_capacity_;
        }
        ++pushed_;
    }
    uint64_t ring_merged =
        static_cast<uint64_t>(shard.ring_.size());
    uint64_t shard_dropped = shard.pushed_ - ring_merged;
    pushed_ += shard_dropped; // account drops without replaying them
    for (size_t k = 0; k < static_cast<size_t>(EventKind::kCount);
         ++k) {
        kind_totals_[k] += shard.kind_totals_[k];
    }
}

namespace
{

/** Minimal JSON string escaping (paths/names are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Print a double as JSON (no NaN/Inf — clamp to null). */
void
printJsonNumber(std::FILE *f, double v)
{
    if (std::isfinite(v))
        std::fprintf(f, "%.17g", v);
    else
        std::fprintf(f, "null");
}

/** Open `path.tmp` for the atomic whole-file-write pattern. */
std::FILE *
openAtomic(const std::string &path, std::string *tmp)
{
    *tmp = path + ".tmp";
    return std::fopen(tmp->c_str(), "w");
}

/**
 * Flush, verify stream state, close and rename over the target; a
 * failure anywhere (including deferred write errors surfacing at
 * fclose) removes the temporary and returns false, so a full disk
 * never leaves a truncated export masquerading as a complete one.
 */
bool
commitAtomic(std::FILE *f, const std::string &tmp,
             const std::string &path)
{
    bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
    ok = std::fclose(f) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

} // anonymous namespace

bool
Telemetry::writeMetricsJson(const std::string &path) const
{
    std::string tmp;
    std::FILE *f = openAtomic(path, &tmp);
    if (!f)
        return false;
    std::fprintf(f, "{\n  \"counters\": {");
    bool first = true;
    for (const auto &[name, c] : counters_) {
        std::fprintf(f, "%s\n    \"%s\": %llu",
                     first ? "" : ",", jsonEscape(name).c_str(),
                     static_cast<unsigned long long>(c.value()));
        first = false;
    }
    std::fprintf(f, "\n  },\n  \"gauges\": {");
    first = true;
    for (const auto &[name, g] : gauges_) {
        std::fprintf(f, "%s\n    \"%s\": ", first ? "" : ",",
                     jsonEscape(name).c_str());
        printJsonNumber(f, g.value());
        first = false;
    }
    std::fprintf(f, "\n  },\n  \"histograms\": {");
    first = true;
    for (const auto &[name, h] : histograms_) {
        std::fprintf(f, "%s\n    \"%s\": {\"edges\": [",
                     first ? "" : ",", jsonEscape(name).c_str());
        for (size_t i = 0; i < h.edges().size(); ++i) {
            if (i)
                std::fprintf(f, ", ");
            printJsonNumber(f, h.edges()[i]);
        }
        std::fprintf(f, "], \"counts\": [");
        for (size_t i = 0; i < h.buckets(); ++i) {
            std::fprintf(f, "%s%llu", i ? ", " : "",
                         static_cast<unsigned long long>(
                             h.count(i)));
        }
        std::fprintf(f, "], \"total\": %llu, \"sum\": ",
                     static_cast<unsigned long long>(h.total()));
        printJsonNumber(f, h.sum());
        std::fprintf(f, "}");
        first = false;
    }
    std::fprintf(f, "\n  },\n  \"events\": {\n    \"pushed\": {");
    first = true;
    for (size_t k = 0; k < static_cast<size_t>(EventKind::kCount);
         ++k) {
        if (kind_totals_[k] == 0)
            continue;
        std::fprintf(f, "%s\n      \"%s\": %llu",
                     first ? "" : ",",
                     eventKindName(static_cast<EventKind>(k)),
                     static_cast<unsigned long long>(
                         kind_totals_[k]));
        first = false;
    }
    std::fprintf(f,
                 "\n    },\n    \"total\": %llu,\n"
                 "    \"dropped\": %llu,\n    \"retained\": %llu\n"
                 "  }\n}\n",
                 static_cast<unsigned long long>(pushed_),
                 static_cast<unsigned long long>(eventsDropped()),
                 static_cast<unsigned long long>(ring_.size()));
    return commitAtomic(f, tmp, path);
}

bool
Telemetry::writeChromeTrace(const std::string &path) const
{
    std::string tmp;
    std::FILE *f = openAtomic(path, &tmp);
    if (!f)
        return false;
    std::fprintf(
        f,
        "{\"traceEvents\": [\n"
        "  {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"sim-time (cycles)\"}},\n"
        "  {\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"wall-clock (us)\"}}");
    for (const TraceEvent &ev : ringEvents()) {
        bool wall = ev.kind == EventKind::Span ||
                    ev.kind == EventKind::Phase;
        std::fprintf(
            f,
            ",\n  {\"name\": \"%s.%s\", \"cat\": \"%s\", "
            "\"ph\": \"%s\", \"ts\": %llu, ",
            eventKindName(ev.kind), jsonEscape(ev.name).c_str(),
            eventKindName(ev.kind), wall ? "X" : "i",
            static_cast<unsigned long long>(ev.timestamp));
        if (wall)
            std::fprintf(f, "\"dur\": %.3f, ", ev.a0);
        else
            std::fprintf(f, "\"s\": \"t\", ");
        std::fprintf(f,
                     "\"pid\": %d, \"tid\": %u, \"args\": "
                     "{\"a0\": ",
                     wall ? 2 : 1, ev.lane);
        printJsonNumber(f, ev.a0);
        std::fprintf(f, ", \"a1\": ");
        printJsonNumber(f, ev.a1);
        std::fprintf(f, ", \"seq\": %llu}}",
                     static_cast<unsigned long long>(ev.seq));
    }
    std::fprintf(f, "\n]}\n");
    return commitAtomic(f, tmp, path);
}

// --- TelemetryShards -------------------------------------------------

TelemetryShards::TelemetryShards(TelemetryScope root, size_t shards,
                                 size_t ring_capacity)
    : root_(root)
{
    if (!root_)
        return; // disabled: every shard scope stays null
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Telemetry>(
            ring_capacity, static_cast<uint32_t>(i)));
}

TelemetryScope
TelemetryShards::shard(size_t i)
{
    if (!root_)
        return {};
    return TelemetryScope(shards_.at(i).get());
}

void
TelemetryShards::mergeIntoRoot()
{
    if (!root_)
        return;
    for (const auto &shard : shards_)
        root_->merge(*shard);
}

// --- Profiler --------------------------------------------------------

namespace
{

int g_profile_override = -1; // -1 = follow env, else 0/1

bool
profileEnvEnabled()
{
    static const bool enabled = [] {
        const char *v = std::getenv("RTM_PROFILE");
        return v != nullptr && v[0] != '\0' &&
               std::strcmp(v, "0") != 0;
    }();
    return enabled;
}

void
profilerAtExit()
{
    Profiler::instance().report(stderr);
}

} // anonymous namespace

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

bool
Profiler::enabled()
{
    if (g_profile_override >= 0)
        return g_profile_override != 0;
    return profileEnvEnabled();
}

void
Profiler::setEnabledForTest(bool on)
{
    g_profile_override = on ? 1 : 0;
}

void
Profiler::add(const char *phase, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (phases_.empty() && profileEnvEnabled()) {
        // First phase under RTM_PROFILE: arm the exit report.
        std::atexit(profilerAtExit);
    }
    PhaseTotals &t = phases_[phase];
    t.seconds += seconds;
    ++t.calls;
}

double
Profiler::seconds(const std::string &phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0.0 : it->second.seconds;
}

uint64_t
Profiler::calls(const std::string &phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0 : it->second.calls;
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    phases_.clear();
}

void
Profiler::report(std::FILE *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (phases_.empty())
        return;
    std::fprintf(out, "\n[RTM_PROFILE] wall time per phase:\n");
    size_t width = 0;
    for (const auto &[name, t] : phases_)
        width = std::max(width, name.size());
    for (const auto &[name, t] : phases_) {
        std::fprintf(out, "  %-*s %10.3f s  (%llu calls)\n",
                     static_cast<int>(width), name.c_str(),
                     t.seconds,
                     static_cast<unsigned long long>(t.calls));
    }
}

double
telemetryNowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

ScopedPhase::ScopedPhase(const char *phase)
    : phase_(Profiler::enabled() ? phase : nullptr)
{
    if (phase_)
        start_ = telemetryNowSeconds();
}

ScopedPhase::~ScopedPhase()
{
    if (phase_)
        Profiler::instance().add(phase_,
                                 telemetryNowSeconds() - start_);
}

} // namespace rtm
