#include "journal.hh"

#include <cerrno>
#include <cstring>

#include "util/hash.hh"

namespace rtm
{

namespace
{

/** 8 lowercase hex digits, fixed width (the frame prefix). */
std::string
crcHex(uint32_t crc)
{
    char buf[9];
    std::snprintf(buf, sizeof(buf), "%08x", crc);
    return buf;
}

/**
 * Unframe one journal line: check "CCCCCCCC <payload>" shape and
 * CRC; true with the payload on success.
 */
bool
unframeLine(const std::string &line, std::string *payload)
{
    if (line.size() < 10 || line[8] != ' ')
        return false;
    uint32_t want = 0;
    for (int i = 0; i < 8; ++i) {
        char c = line[static_cast<size_t>(i)];
        uint32_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint32_t>(c - 'a' + 10);
        else
            return false;
        want = (want << 4) | digit;
    }
    *payload = line.substr(9);
    return crc32(payload->data(), payload->size()) == want;
}

} // anonymous namespace

JsonValue
journalHeaderToJson(const JournalHeader &header)
{
    JsonValue v = JsonValue::object();
    v.set("type", "header");
    v.set("version", header.version);
    v.set("name", header.name);
    v.set("spec_sha256", header.spec_sha256);
    JsonValue seeds = JsonValue::object();
    seeds.set("matrix", header.matrix_seed);
    seeds.set("campaign", header.campaign_seed);
    seeds.set("stress", header.stress_seed);
    seeds.set("montecarlo", header.mc_seed);
    v.set("seeds", std::move(seeds));
    v.set("cells", header.cells);
    return v;
}

bool
journalHeaderFromJson(const JsonValue &doc, JournalHeader *header)
{
    if (!doc.isObject())
        return false;
    const JsonValue *type = doc.find("type");
    if (!type || !type->isString() ||
        type->asString() != "header")
        return false;
    JournalHeader out;
    if (const JsonValue *v = doc.find("version"))
        out.version = v->asInt();
    if (const JsonValue *v = doc.find("name"))
        out.name = v->asString();
    const JsonValue *hash = doc.find("spec_sha256");
    if (!hash || !hash->isString())
        return false;
    out.spec_sha256 = hash->asString();
    if (const JsonValue *seeds = doc.find("seeds")) {
        if (const JsonValue *v = seeds->find("matrix"))
            out.matrix_seed = v->asU64();
        if (const JsonValue *v = seeds->find("campaign"))
            out.campaign_seed = v->asU64();
        if (const JsonValue *v = seeds->find("stress"))
            out.stress_seed = v->asU64();
        if (const JsonValue *v = seeds->find("montecarlo"))
            out.mc_seed = v->asU64();
    }
    if (const JsonValue *v = doc.find("cells"))
        out.cells = v->asU64();
    *header = std::move(out);
    return true;
}

bool
readJournal(const std::string &path, JournalFile *out,
            std::string *error)
{
    std::string text;
    if (!readTextFile(path, &text, error))
        return false;
    *out = JournalFile();

    size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        // A final line without '\n' is a torn tail from a crash
        // mid-append; the CRC check below rejects it if incomplete.
        std::string line = nl == std::string::npos
                               ? text.substr(pos)
                               : text.substr(pos, nl - pos);
        pos = nl == std::string::npos ? text.size() : nl + 1;
        if (line.empty())
            continue;

        std::string payload;
        JsonValue doc;
        std::string parse_err;
        if (!unframeLine(line, &payload) ||
            !JsonValue::parse(payload, &doc, &parse_err) ||
            !doc.isObject()) {
            ++out->dropped_lines;
            continue;
        }
        const JsonValue *type = doc.find("type");
        const std::string kind =
            type && type->isString() ? type->asString() : "";
        if (first && kind == "header") {
            out->has_header =
                journalHeaderFromJson(doc, &out->header);
            if (!out->has_header)
                ++out->dropped_lines;
            first = false;
            continue;
        }
        first = false;
        if (kind != "cell") {
            ++out->dropped_lines;
            continue;
        }
        const JsonValue *index = doc.find("index");
        const JsonValue *result = doc.find("result");
        if (!index || !index->isNumber() || !result) {
            ++out->dropped_lines;
            continue;
        }
        JournalRecord rec;
        rec.index = index->asU64();
        if (const JsonValue *label = doc.find("label"))
            rec.label = label->asString();
        rec.result = *result;
        out->records.push_back(std::move(rec));
    }
    return true;
}

bool
JournalWriter::open(const std::string &path, bool append,
                    std::string *error)
{
    close();
    f_ = std::fopen(path.c_str(), append ? "a" : "w");
    if (!f_) {
        if (error)
            *error = "cannot open journal '" + path +
                     "': " + std::strerror(errno);
        ok_ = false;
        return false;
    }
    path_ = path;
    ok_ = true;
    return true;
}

bool
JournalWriter::appendLine(const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!f_ || !ok_)
        return false;
    const std::string line =
        crcHex(crc32(payload.data(), payload.size())) + " " +
        payload + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f_) !=
            line.size() ||
        std::fflush(f_) != 0 || std::ferror(f_))
        ok_ = false;
    return ok_;
}

bool
JournalWriter::appendHeader(const JournalHeader &header)
{
    return appendLine(journalHeaderToJson(header).dump(0));
}

bool
JournalWriter::appendRecord(const JournalRecord &record)
{
    JsonValue v = JsonValue::object();
    v.set("type", "cell");
    v.set("index", record.index);
    v.set("label", record.label);
    v.set("result", record.result);
    return appendLine(v.dump(0));
}

bool
JournalWriter::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!f_)
        return ok_;
    if (std::fflush(f_) != 0 || std::ferror(f_))
        ok_ = false;
    if (std::fclose(f_) != 0)
        ok_ = false;
    f_ = nullptr;
    return ok_;
}

} // namespace rtm
