#include "units.hh"

#include <cmath>
#include <cstdio>

#include "prob.hh"

namespace rtm
{

Cycles
secondsToCycles(Seconds s, double clock_hz)
{
    if (s <= 0.0)
        return 0;
    return static_cast<Cycles>(std::ceil(s * clock_hz - 1e-9));
}

Seconds
cyclesToSeconds(Cycles c, double clock_hz)
{
    return static_cast<double>(c) / clock_hz;
}

const char *
formatDuration(double seconds, char *buf, int buf_len)
{
    if (std::isinf(seconds)) {
        std::snprintf(buf, buf_len, "inf");
    } else if (seconds < 1e-6) {
        std::snprintf(buf, buf_len, "%.3g ns", seconds * 1e9);
    } else if (seconds < 1e-3) {
        std::snprintf(buf, buf_len, "%.3g us", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, buf_len, "%.3g ms", seconds * 1e3);
    } else if (seconds < 60.0) {
        std::snprintf(buf, buf_len, "%.3g s", seconds);
    } else if (seconds < 3600.0) {
        std::snprintf(buf, buf_len, "%.3g min", seconds / 60.0);
    } else if (seconds < 86400.0) {
        std::snprintf(buf, buf_len, "%.3g hours", seconds / 3600.0);
    } else if (seconds < kSecondsPerYear) {
        std::snprintf(buf, buf_len, "%.3g days", seconds / 86400.0);
    } else {
        std::snprintf(buf, buf_len, "%.3g years",
                      seconds / kSecondsPerYear);
    }
    return buf;
}

} // namespace rtm
