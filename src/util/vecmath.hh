/**
 * @file
 * Branchless, auto-vectorisable math kernels for the batched
 * Monte-Carlo hot path.
 *
 * The obvious way to vectorise Box-Muller is libmvec (glibc's SIMD
 * log/sin/cos), but that path needs -ffast-math and produces
 * different bits at -O0 (scalar libm) than at -O3 (vector libm),
 * which would make the fast-tier golden digests depend on the build
 * preset. These kernels instead use only plain IEEE arithmetic -
 * polynomials, divisions, square roots and bit twiddling - evaluated
 * in a fixed dependency order, so the same bits come out of the
 * coverage (-O0), default (-O2) and release (-O3 + LTO) presets, and
 * every loop over them vectorises under the baseline x86-64 ISA with
 * nothing more exotic than `#pragma omp simd`.
 *
 * Accuracy: sin2pi/cos2pi are within ~6e-12 absolute of libm;
 * logUnit is within ~3e-16 relative over [2^-53, 2). Both are far
 * inside what a Monte-Carlo estimate with >= 1e4 trials can resolve.
 */

#ifndef RTM_UTIL_VECMATH_HH
#define RTM_UTIL_VECMATH_HH

#include <cmath>
#include <cstdint>
#include <cstring>

namespace rtm
{
namespace vecmath
{

/**
 * Round to the nearest integer, ties to even, for |x| < 2^51.
 * The add/subtract of 1.5 * 2^52 forces the fraction bits out of the
 * mantissa under round-to-nearest; unlike std::round (ties away from
 * zero) this compiles to two SSE2 adds and vectorises everywhere.
 */
inline double
roundNearestEven(double x)
{
    const double magic = 6755399441055744.0; // 1.5 * 2^52
    return (x + magic) - magic;
}

/**
 * sin(2*pi*t) for t in [-0.5, 0.5] via quarter-wave folding and an
 * odd Taylor polynomial on [0, pi/2] (truncation < 3e-16; the ~6e-12
 * total error comes from the folding subtractions near the ends).
 */
inline double
sin2piCore(double t)
{
    double a = std::abs(t);
    double sign = t < 0.0 ? -1.0 : 1.0;
    // Fold [0, 0.5] about the quarter-wave peak at 0.25.
    double u = 0.25 - std::abs(a - 0.25);
    double z = (2.0 * M_PI) * u; // [0, pi/2]
    double z2 = z * z;
    double p = -7.647163731819816e-13; // 1/15! .. alternating Taylor
    p = p * z2 + 1.60590438368216146e-10;
    p = p * z2 + -2.50521083854417188e-08;
    p = p * z2 + 2.75573192239198748e-06;
    p = p * z2 + -1.98412698412698413e-04;
    p = p * z2 + 8.33333333333333333e-03;
    p = p * z2 + -1.66666666666666667e-01;
    p = p * z2 + 1.0;
    return sign * (z * p);
}

/** sin(2*pi*x) for any |x| < 2^51 (period folding is exact). */
inline double
sin2pi(double x)
{
    return sin2piCore(x - roundNearestEven(x));
}

/** cos(2*pi*x) = sin(2*pi*(x + 1/4)) for any |x| < 2^51. */
inline double
cos2pi(double x)
{
    double y = x + 0.25;
    return sin2piCore(y - roundNearestEven(y));
}

/**
 * Natural log for x in [2^-53, 2): exponent extraction plus the
 * atanh series of the mantissa normalised into [sqrt(1/2), sqrt(2)).
 * Inputs are uniform() outputs (never zero, negative, subnormal or
 * huge), so no special-case handling is needed or provided.
 */
inline double
logUnit(double x)
{
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    int64_t e = static_cast<int64_t>((bits >> 52) & 0x7ff) - 1023;
    uint64_t mbits =
        (bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL;
    double m;
    std::memcpy(&m, &mbits, sizeof(m));
    bool big = m > 1.4142135623730951; // sqrt(2)
    double mm = big ? m * 0.5 : m;
    double ee = static_cast<double>(e) + (big ? 1.0 : 0.0);
    // log(mm) = 2 atanh(s), s = (mm-1)/(mm+1), |s| <= 0.1716.
    double s = (mm - 1.0) / (mm + 1.0);
    double s2 = s * s;
    double p = 1.0 / 21.0;
    p = p * s2 + 1.0 / 19.0;
    p = p * s2 + 1.0 / 17.0;
    p = p * s2 + 1.0 / 15.0;
    p = p * s2 + 1.0 / 13.0;
    p = p * s2 + 1.0 / 11.0;
    p = p * s2 + 1.0 / 9.0;
    p = p * s2 + 1.0 / 7.0;
    p = p * s2 + 1.0 / 5.0;
    p = p * s2 + 1.0 / 3.0;
    p = p * s2 + 1.0;
    return 2.0 * s * p + ee * 0.6931471805599453;
}

} // namespace vecmath
} // namespace rtm

#endif // RTM_UTIL_VECMATH_HH
