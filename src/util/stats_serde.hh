/**
 * @file
 * Exact JSON round-trips for the stats accumulators, used by the
 * experiment journal: a resumed run must restore a cell's
 * RunningStats / IntTally state bit-identically, or the final merged
 * result would differ from an uninterrupted run.
 */

#ifndef RTM_UTIL_STATS_SERDE_HH
#define RTM_UTIL_STATS_SERDE_HH

#include "util/serde.hh"
#include "util/stats.hh"

namespace rtm
{

/**
 * {count, mean, m2[, min, max]} — the raw Welford state, NOT derived
 * variance, so restore() reproduces the accumulator exactly. min/max
 * are emitted only when count > 0 (they are ±inf sentinels when
 * empty, which JSON cannot carry).
 */
JsonValue runningStatsToJson(const RunningStats &s);

/** Restore a RunningStats; false on a malformed document. */
bool runningStatsFromJson(const JsonValue &doc, RunningStats *out);

/** Array of [key, count] pairs in increasing key order. */
JsonValue intTallyToJson(const IntTally &t);

/** Restore an IntTally; false on a malformed document. */
bool intTallyFromJson(const JsonValue &doc, IntTally *out);

} // namespace rtm

#endif // RTM_UTIL_STATS_SERDE_HH
