/**
 * @file
 * Unit-carrying scalar helpers and common physical constants.
 *
 * The simulator measures time in cycles of a 2 GHz clock (the paper's
 * system clock, Table 4) and keeps device physics in SI units. These
 * helpers centralise the conversions so no module hard-codes 0.5 ns.
 */

#ifndef RTM_UTIL_UNITS_HH
#define RTM_UTIL_UNITS_HH

#include <cstdint>

namespace rtm
{

/** Simulated clock cycles (2 GHz unless overridden). */
using Cycles = uint64_t;

/** Simulated time in seconds. */
using Seconds = double;

/** Energy in joules. */
using Joules = double;

/** Default core/cache clock from Table 4 of the paper. */
constexpr double kDefaultClockHz = 2.0e9;

/** Period of the default clock in seconds (0.5 ns). */
constexpr double kDefaultCyclePeriodS = 1.0 / kDefaultClockHz;

/** Convert seconds to whole cycles, rounding up (latency semantics). */
Cycles secondsToCycles(Seconds s, double clock_hz = kDefaultClockHz);

/** Convert a cycle count to seconds. */
Seconds cyclesToSeconds(Cycles c, double clock_hz = kDefaultClockHz);

/** Nanoseconds to seconds. */
constexpr Seconds
ns(double v)
{
    return v * 1e-9;
}

/** Picojoules to joules. */
constexpr Joules
pJ(double v)
{
    return v * 1e-12;
}

/** Nanojoules to joules. */
constexpr Joules
nJ(double v)
{
    return v * 1e-9;
}

/** Milliwatts to watts. */
constexpr double
mW(double v)
{
    return v * 1e-3;
}

/**
 * Pretty-print a duration with an adaptive unit (ns .. years).
 * Used by the MTTF benches to print values like "69 years".
 */
const char *formatDuration(double seconds, char *buf, int buf_len);

} // namespace rtm

#endif // RTM_UTIL_UNITS_HH
