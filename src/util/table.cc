#include "table.hh"

#include <cstdio>

#include "logging.hh"

namespace rtm
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        rtm_panic("TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        rtm_panic("TextTable row width %zu != header width %zu",
                  row.size(), header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += std::string(widths[c] - row[c].size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

void
TextTable::print(std::FILE *out) const
{
    std::string s = str();
    std::fwrite(s.data(), 1, s.size(), out);
}

std::string
TextTable::num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

std::string
TextTable::fixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

} // namespace rtm
