/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** generator is used instead of std::mt19937 to keep
 * streams compact, fast, and bit-identical across standard library
 * implementations (std::normal_distribution is not portable between
 * libstdc++ and libc++, which would make golden tests flaky).
 */

#ifndef RTM_UTIL_RNG_HH
#define RTM_UTIL_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace rtm
{

/**
 * xoshiro256** PRNG with explicit seeding and portable distributions.
 *
 * All derived sampling (uniform doubles, Gaussians) is implemented here
 * so that a given seed produces the same sequence on every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed expanded through SplitMix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /**
     * Standard normal sample via Box-Muller.
     *
     * Box-Muller is chosen over the ziggurat for portability: it only
     * relies on log/cos/sin, which are correctly rounded enough across
     * libm implementations for reproducible simulation streams.
     */
    double gaussian();

    /** Normal sample with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** True with probability p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /** Fill dst[0..n) with uniform() draws, in draw order. */
    void fillUniform(double *dst, size_t n);

    /**
     * Fill dst[0..n) with standard normals, element-for-element
     * identical to n successive gaussian() calls: the same uniforms
     * are consumed in the same order (including the u1 <= 0
     * rejection), pairs are emitted cos-first, and the Box-Muller
     * cache carries across calls exactly like the scalar path, so
     * interleaving fillGaussian and gaussian() on one stream still
     * reproduces the scalar sequence bit-for-bit.
     */
    void fillGaussian(double *dst, size_t n);

    /**
     * Fast-order batch of standard normals for the Monte-Carlo fast
     * tier. Consumes the same uniform pair stream as the scalar path
     * but differs in three documented ways, each of which removes a
     * data-dependent branch or a libm call from the transform:
     *
     *  - a zero u1 draw is clamped to 2^-53 instead of rejected
     *    (probability 2^-53 per draw, never observed in practice);
     *  - log/sin/cos come from the branchless polynomial kernels in
     *    util/vecmath.hh (|error| ~1e-11), evaluated over whole
     *    lanes in split, auto-vectorised loops;
     *  - an odd tail discards the final pair's sine instead of
     *    caching it, and the scalar Box-Muller cache is neither
     *    consumed nor updated.
     *
     * Output is a pure function of the stream state and n: the same
     * seed gives the same batch on every platform, preset and
     * RTM_THREADS setting. Values track gaussian() to ~1e-11 but are
     * NOT bit-identical; use fillGaussian for the exact tier.
     */
    void fillGaussianFast(double *dst, size_t n);

    /** Fork an independent stream (seeded from this stream). */
    Rng fork();

  private:
    std::array<uint64_t, 4> state_;
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

} // namespace rtm

#endif // RTM_UTIL_RNG_HH
