/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** generator is used instead of std::mt19937 to keep
 * streams compact, fast, and bit-identical across standard library
 * implementations (std::normal_distribution is not portable between
 * libstdc++ and libc++, which would make golden tests flaky).
 */

#ifndef RTM_UTIL_RNG_HH
#define RTM_UTIL_RNG_HH

#include <array>
#include <cstdint>

namespace rtm
{

/**
 * xoshiro256** PRNG with explicit seeding and portable distributions.
 *
 * All derived sampling (uniform doubles, Gaussians) is implemented here
 * so that a given seed produces the same sequence on every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed expanded through SplitMix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /**
     * Standard normal sample via Box-Muller.
     *
     * Box-Muller is chosen over the ziggurat for portability: it only
     * relies on log/cos/sin, which are correctly rounded enough across
     * libm implementations for reproducible simulation streams.
     */
    double gaussian();

    /** Normal sample with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** True with probability p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /** Fork an independent stream (seeded from this stream). */
    Rng fork();

  private:
    std::array<uint64_t, 4> state_;
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

} // namespace rtm

#endif // RTM_UTIL_RNG_HH
