#include "logging.hh"

#include <atomic>
#include <cstdarg>

namespace rtm
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Info};

} // anonymous namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

void
emit(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", vformat(fmt, ap));
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", vformat(fmt, ap));
    va_end(ap);
}

void
debugImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", vformat(fmt, ap));
    va_end(ap);
}

} // namespace detail

} // namespace rtm
