/**
 * @file
 * Observability layer: hierarchical metrics registry, ring-buffer
 * structured event tracer, and wall-clock phase profiler.
 *
 * Design rules:
 *
 *  - *Zero cost when off.* Every instrumented component holds plain
 *    pointers (Counter*, LatencyHistogram*, Telemetry*) that are null
 *    unless a TelemetryScope was supplied, so the disabled hot path
 *    is one branch on a null pointer: no allocation, no lock, no
 *    event. Simulation results are bit-identical with telemetry on or
 *    off because instrumentation only *reads* simulator state — it
 *    never touches an RNG stream or any quantity that feeds back into
 *    a result.
 *
 *  - *Deterministic sharded merge.* Parallel call sites (runMatrix
 *    cells, campaign cells) each write a private Telemetry shard;
 *    TelemetryShards::mergeInto folds them into the root sink in
 *    shard-index order on the calling thread — the same discipline as
 *    ErrorPdf::merge — so the merged registry and event stream are
 *    bit-identical for any RTM_THREADS setting.
 *
 *  - *Reconcilable events.* The tracer keeps a bounded ring of the
 *    most recent events plus per-kind pushed totals that survive ring
 *    overwrite, so event counts can be reconciled exactly against the
 *    stats ledgers (ControllerStats, RmBankStats) even when the ring
 *    wrapped.
 *
 * Exports: writeMetricsJson (hierarchical dotted-path registry as
 * JSON) and writeChromeTrace (Chrome trace_event format, loadable in
 * chrome://tracing or Perfetto; sim-time events on pid 1, wall-clock
 * spans on pid 2).
 *
 * Phase profiling: set RTM_PROFILE=1 and every ScopedPhase records
 * wall time per pipeline stage into a process-wide Profiler that
 * prints a per-phase summary to stderr at exit.
 */

#ifndef RTM_UTIL_TELEMETRY_HH
#define RTM_UTIL_TELEMETRY_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rtm
{

/** Monotonic event counter ("telemetry.path" -> uint64). */
class Counter
{
  public:
    /** Add `delta` events. */
    void add(uint64_t delta = 1) { value_ += delta; }

    uint64_t value() const { return value_; }

  private:
    friend class Telemetry;
    uint64_t value_ = 0;
};

/** Last-write-wins scalar ("telemetry.path" -> double). */
class Gauge
{
  public:
    void set(double v)
    {
        value_ = v;
        set_ = true;
    }

    double value() const { return value_; }

    /** Whether set() was ever called. */
    bool isSet() const { return set_; }

  private:
    friend class Telemetry;
    double value_ = 0.0;
    bool set_ = false;
};

/**
 * Latency histogram with fixed bucket edges.
 *
 * Bucket i of n+1 counts samples in [edges[i-1], edges[i]); bucket 0
 * is (-inf, edges[0]) and bucket n is [edges[n-1], +inf). Edges are
 * fixed at registration so shards of the same histogram always merge
 * bucket-for-bucket.
 */
class LatencyHistogram
{
  public:
    /** @param edges strictly increasing bucket boundaries (>= 1). */
    explicit LatencyHistogram(std::vector<double> edges);

    /** Record one sample (binary search over the edges). */
    void record(double value, uint64_t weight = 1);

    /** Bucket-wise sum; panics when the edges differ. */
    void merge(const LatencyHistogram &other);

    const std::vector<double> &edges() const { return edges_; }

    /** Count in bucket i (edges().size() + 1 buckets). */
    uint64_t count(size_t bucket) const { return counts_[bucket]; }

    size_t buckets() const { return counts_.size(); }

    /** Total samples recorded. */
    uint64_t total() const { return total_; }

    /** Sum of all sample values (mean = sum / total). */
    double sum() const { return sum_; }

  private:
    std::vector<double> edges_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    double sum_ = 0.0;
};

/** Power-of-two bucket edges [1, 2, 4, ... <= hi] (cycle latencies). */
std::vector<double> powerOfTwoEdges(double hi);

/** Structured event classes traced across the stack. */
enum class EventKind : uint8_t
{
    ShiftIssued,    //!< a shift sequence was issued (bank/controller)
    ErrorInjected,  //!< ground truth: a position error was injected
    ErrorDetected,  //!< p-ECC detection fired
    RecoveryRung,   //!< an escalation-ladder rung ended an episode
    GroupRetired,   //!< a stripe group was retired (degradation)
    FrameRemapped,  //!< an access was served via a remapped group
    CacheMissBurst, //!< a run of consecutive LLC misses
    Span,           //!< wall-clock span (a0 = duration in us)
    Phase,          //!< pipeline phase marker
    Custom,         //!< tool-defined
    kCount
};

/** Stable lowercase name of an event kind. */
const char *eventKindName(EventKind kind);

/**
 * One traced event. `name` must point at a string literal (or any
 * storage outliving the Telemetry sink): events are fixed-size so the
 * enabled path never allocates.
 */
struct TraceEvent
{
    EventKind kind = EventKind::Custom;
    uint32_t lane = 0;      //!< logical lane (shard / cell index)
    uint64_t timestamp = 0; //!< sim cycles (Span/Phase: wall us)
    uint64_t seq = 0;       //!< per-sink push sequence number
    const char *name = "";  //!< static detail string
    double a0 = 0.0;        //!< payload (kind-specific)
    double a1 = 0.0;        //!< payload (kind-specific)
};

/**
 * One telemetry sink: a metrics registry plus a bounded event ring.
 *
 * Not thread-safe by design — parallel producers use one shard each
 * (TelemetryShards) and merge deterministically.
 */
class Telemetry
{
  public:
    /** Default event-ring capacity (most recent events kept). */
    static constexpr size_t kDefaultRingCapacity = 8192;

    /**
     * @param ring_capacity events retained before overwriting oldest
     * @param lane          lane id stamped on events from this sink
     */
    explicit Telemetry(size_t ring_capacity = kDefaultRingCapacity,
                       uint32_t lane = 0);

    /** Lane id stamped on events pushed into this sink. */
    uint32_t lane() const { return lane_; }

    /**
     * Find-or-create the counter at a dotted path (e.g.
     * "mem.l3.misses"). The reference is stable for the sink's
     * lifetime, so hot paths register once and keep the pointer.
     */
    Counter &counter(const std::string &path);

    /** Find-or-create a gauge. */
    Gauge &gauge(const std::string &path);

    /**
     * Find-or-create a histogram. `edges` is used on first
     * registration; a later call with different edges panics (one
     * schema per path).
     */
    LatencyHistogram &histogram(const std::string &path,
                                const std::vector<double> &edges);

    /** Push one event (ring overwrite-oldest; never allocates). */
    void event(EventKind kind, const char *name, uint64_t timestamp,
               double a0 = 0.0, double a1 = 0.0);

    /** Events pushed of `kind`, including any the ring dropped. */
    uint64_t eventCount(EventKind kind) const
    {
        return kind_totals_[static_cast<size_t>(kind)];
    }

    /** Total events pushed (all kinds). */
    uint64_t eventsPushed() const { return pushed_; }

    /** Events lost to ring overwrite. */
    uint64_t eventsDropped() const;

    /** Retained events, oldest first. */
    std::vector<TraceEvent> ringEvents() const;

    /**
     * Fold a shard into this sink: counters add, gauges last-set
     * wins, histograms merge bucket-wise, events append in the
     * shard's push order (keeping their lane). Call in shard-index
     * order for deterministic results.
     */
    void merge(const Telemetry &shard);

    /** Registry views (sorted by path; test/export introspection). */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, LatencyHistogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * Write the registry + event summary as JSON. Returns false on
     * I/O error.
     */
    bool writeMetricsJson(const std::string &path) const;

    /**
     * Write retained events in Chrome trace_event format (JSON
     * object with a "traceEvents" array). Sim-time events appear
     * under pid 1 with their cycle timestamp as "ts"; Span/Phase
     * events under pid 2 with wall-clock microseconds. Returns false
     * on I/O error.
     */
    bool writeChromeTrace(const std::string &path) const;

  private:
    uint32_t lane_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, LatencyHistogram> histograms_;

    // Event ring: fixed storage, overwrite-oldest.
    std::vector<TraceEvent> ring_;
    size_t ring_capacity_;
    size_t ring_head_ = 0; //!< next write slot once full
    uint64_t pushed_ = 0;
    uint64_t kind_totals_[static_cast<size_t>(EventKind::kCount)] =
        {};
};

/**
 * Cheap nullable handle to a Telemetry sink. Default-constructed =
 * telemetry disabled; every guard is `if (scope)`.
 */
class TelemetryScope
{
  public:
    constexpr TelemetryScope() = default;
    /*implicit*/ TelemetryScope(Telemetry *sink) : sink_(sink) {}

    explicit operator bool() const { return sink_ != nullptr; }

    Telemetry *operator->() const { return sink_; }

    Telemetry *get() const { return sink_; }

  private:
    Telemetry *sink_ = nullptr;
};

/**
 * Per-shard sinks for parallel producers, merged deterministically.
 *
 * When the root scope is disabled every shard scope is disabled too,
 * so the parallel region pays nothing. Shard i's events are stamped
 * with lane i.
 */
class TelemetryShards
{
  public:
    /**
     * @param root   the sink shards will merge into (may be null)
     * @param shards number of independent producers
     * @param ring_capacity per-shard event-ring capacity
     */
    TelemetryShards(TelemetryScope root, size_t shards,
                    size_t ring_capacity =
                        Telemetry::kDefaultRingCapacity);

    /** Scope for producer i (disabled when the root is disabled). */
    TelemetryScope shard(size_t i);

    /**
     * Merge every shard into the root in index order. Idempotent-safe
     * only once; call after the parallel region completes.
     */
    void mergeIntoRoot();

  private:
    TelemetryScope root_;
    std::vector<std::unique_ptr<Telemetry>> shards_;
};

/**
 * Process-wide wall-clock phase profiler, enabled by RTM_PROFILE=1.
 * Thread-safe (phase boundaries are rare); prints a per-phase table
 * to stderr at process exit when any phase was recorded.
 */
class Profiler
{
  public:
    static Profiler &instance();

    /** Whether RTM_PROFILE asked for profiling (cached). */
    static bool enabled();

    /** Force-enable/disable for tests (overrides the env cache). */
    static void setEnabledForTest(bool on);

    /** Record `seconds` of wall time against `phase`. */
    void add(const char *phase, double seconds);

    /** Accumulated seconds for a phase (0 when never recorded). */
    double seconds(const std::string &phase) const;

    /** Calls recorded for a phase. */
    uint64_t calls(const std::string &phase) const;

    /** Drop all recorded phases (tests). */
    void reset();

    /** Write the per-phase table. */
    void report(std::FILE *out) const;

  private:
    struct PhaseTotals
    {
        double seconds = 0.0;
        uint64_t calls = 0;
    };
    mutable std::mutex mutex_;
    std::map<std::string, PhaseTotals> phases_;
};

/** Monotonic wall clock in seconds (profiling / span timing). */
double telemetryNowSeconds();

/**
 * RAII phase timer: records into Profiler::instance() when profiling
 * is enabled, otherwise both constructor and destructor are no-ops.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *phase);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    const char *phase_; //!< null when profiling is disabled
    double start_ = 0.0;
};

} // namespace rtm

#endif // RTM_UTIL_TELEMETRY_HH
