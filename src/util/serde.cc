#include "serde.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rtm
{

const char *
jsonTypeName(JsonType type)
{
    switch (type) {
    case JsonType::Null:
        return "null";
    case JsonType::Bool:
        return "bool";
    case JsonType::Number:
        return "number";
    case JsonType::String:
        return "string";
    case JsonType::Array:
        return "array";
    case JsonType::Object:
        return "object";
    }
    return "?";
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.type_ = JsonType::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.type_ = JsonType::Object;
    return v;
}

bool
JsonValue::asBool(bool fallback) const
{
    return isBool() ? bool_ : fallback;
}

double
JsonValue::asDouble(double fallback) const
{
    return isNumber() ? num_ : fallback;
}

uint64_t
JsonValue::asU64(uint64_t fallback) const
{
    if (!isNumber() || num_ < 0.0)
        return fallback;
    return static_cast<uint64_t>(num_);
}

int
JsonValue::asInt(int fallback) const
{
    return isNumber() ? static_cast<int>(num_) : fallback;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &kv : members_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    type_ = JsonType::Object;
    for (auto &kv : members_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return kv.second;
        }
    }
    members_.emplace_back(key, std::move(v));
    return members_.back().second;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
    case JsonType::Null:
        return true;
    case JsonType::Bool:
        return bool_ == other.bool_;
    case JsonType::Number:
        return num_ == other.num_;
    case JsonType::String:
        return str_ == other.str_;
    case JsonType::Array:
        return items_ == other.items_;
    case JsonType::Object:
        return members_ == other.members_;
    }
    return false;
}

// --- emission --------------------------------------------------------

std::string
jsonNumberToString(double v)
{
    if (!std::isfinite(v)) // JSON has no inf/nan; emit null-ish zero
        return "0";
    // Integers (the common case for config fields) print exactly.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Shortest %.*g form that strtod round-trips bit-identically.
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNewlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent) *
                   static_cast<size_t>(depth),
               ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
    case JsonType::Null:
        out += "null";
        return;
    case JsonType::Bool:
        out += bool_ ? "true" : "false";
        return;
    case JsonType::Number:
        out += jsonNumberToString(num_);
        return;
    case JsonType::String:
        appendEscaped(out, str_);
        return;
    case JsonType::Array: {
        if (items_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            appendNewlineIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        appendNewlineIndent(out, indent, depth);
        out += ']';
        return;
    }
    case JsonType::Object: {
        if (members_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            appendNewlineIndent(out, indent, depth + 1);
            appendEscaped(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        appendNewlineIndent(out, indent, depth);
        out += '}';
        return;
    }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// --- parsing ---------------------------------------------------------

namespace
{

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parseDocument(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON document");
        return true;
    }

  private:
    bool fail(const std::string &msg)
    {
        if (error_ && error_->empty()) {
            size_t line = 1, col = 1;
            for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
                if (text_[i] == '\n') {
                    ++line;
                    col = 1;
                } else {
                    ++col;
                }
            }
            *error_ = "JSON parse error at line " +
                      std::to_string(line) + ", column " +
                      std::to_string(col) + ": " + msg;
        }
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool literal(const char *word)
    {
        size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("invalid token; expected '") +
                        word + "'");
        pos_ += len;
        return true;
    }

    bool parseString(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char esc = text_[pos_++];
                switch (esc) {
                case '"':
                    *out += '"';
                    break;
                case '\\':
                    *out += '\\';
                    break;
                case '/':
                    *out += '/';
                    break;
                case 'n':
                    *out += '\n';
                    break;
                case 't':
                    *out += '\t';
                    break;
                case 'r':
                    *out += '\r';
                    break;
                case 'b':
                    *out += '\b';
                    break;
                case 'f':
                    *out += '\f';
                    break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |=
                                static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |=
                                static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    // Minimal UTF-8 encoding (no surrogate pairs —
                    // config files are ASCII in practice).
                    if (code < 0x80) {
                        *out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        *out +=
                            static_cast<char>(0xc0 | (code >> 6));
                        *out +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        *out +=
                            static_cast<char>(0xe0 | (code >> 12));
                        *out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f));
                        *out +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                }
                default:
                    return fail("unknown escape sequence");
                }
            } else {
                *out += c;
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue *out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected number");
        pos_ += static_cast<size_t>(end - start);
        *out = JsonValue(v);
        return true;
    }

    bool parseValue(JsonValue *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case '{': {
            ++pos_;
            *out = JsonValue::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':' after object key");
                ++pos_;
                skipWs();
                JsonValue member;
                if (!parseValue(&member))
                    return false;
                if (out->find(key))
                    return fail("duplicate object key \"" + key +
                                "\"");
                out->set(key, std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
        }
        case '[': {
            ++pos_;
            *out = JsonValue::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                JsonValue item;
                if (!parseValue(&item))
                    return false;
                out->push(std::move(item));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
        }
        case '"': {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = JsonValue(std::move(s));
            return true;
        }
        case 't':
            if (!literal("true"))
                return false;
            *out = JsonValue(true);
            return true;
        case 'f':
            if (!literal("false"))
                return false;
            *out = JsonValue(false);
            return true;
        case 'n':
            if (!literal("null"))
                return false;
            *out = JsonValue();
            return true;
        default:
            return parseNumber(out);
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue *out,
                 std::string *error)
{
    if (error)
        error->clear();
    JsonParser parser(text, error);
    return parser.parseDocument(out);
}

bool
readTextFile(const std::string &path, std::string *out,
             std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error)
            *error = "cannot open '" + path + "'";
        return false;
    }
    out->clear();
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    // fread returns 0 for EOF *and* for I/O errors; without this
    // check a failing disk would read as an empty (or truncated)
    // file.
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        if (error)
            *error = "I/O error reading '" + path + "'";
        return false;
    }
    return true;
}

bool
loadJsonFile(const std::string &path, JsonValue *out,
             std::string *error)
{
    std::string text;
    if (!readTextFile(path, &text, error))
        return false;
    std::string parse_error;
    if (!JsonValue::parse(text, out, &parse_error)) {
        if (error)
            *error = path + ": " + parse_error;
        return false;
    }
    return true;
}

bool
saveTextFileAtomic(const std::string &path,
                   const std::string &text, std::string *error)
{
    const std::string tmp = path + ".tmp";
    auto fail = [&](const char *what) {
        if (error)
            *error = std::string(what) + " '" + tmp +
                     "': " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    };
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot create '" + tmp +
                     "': " + std::strerror(errno);
        return false;
    }
    const size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    if (written != text.size() || std::fflush(f) != 0 ||
        std::ferror(f)) {
        std::fclose(f);
        return fail("cannot write");
    }
    if (std::fclose(f) != 0)
        return fail("cannot write");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot rename '" + tmp + "' to '" + path +
                     "': " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
saveJsonFile(const std::string &path, const JsonValue &value,
             int indent, std::string *error)
{
    return saveTextFileAtomic(path, value.dump(indent), error);
}

// --- SpecReader ------------------------------------------------------

SpecReader::SpecReader(const JsonValue &value, std::string path,
                       std::string *diag)
    : value_(value), path_(std::move(path)), diag_(diag)
{
    if (value_.isObject()) {
        usable_ = true;
    } else {
        fail("", std::string("expected object, got ") +
                     jsonTypeName(value_.type()));
    }
}

void
SpecReader::fail(const std::string &key,
                 const std::string &msg) const
{
    if (!diag_->empty())
        *diag_ += '\n';
    *diag_ += path_;
    if (!key.empty()) {
        if (!path_.empty())
            *diag_ += '.';
        *diag_ += key;
    }
    *diag_ += ": " + msg;
}

bool
SpecReader::has(const char *key) const
{
    return usable_ && value_.find(key) != nullptr;
}

const JsonValue *
SpecReader::typedField(const char *key, JsonType want) const
{
    if (!usable_)
        return nullptr;
    const JsonValue *v = value_.find(key);
    if (!v)
        return nullptr;
    if (v->type() != want) {
        fail(key, std::string("expected ") + jsonTypeName(want) +
                      ", got " + jsonTypeName(v->type()));
        return nullptr;
    }
    return v;
}

void
SpecReader::readBool(const char *key, bool *out)
{
    if (const JsonValue *v = typedField(key, JsonType::Bool))
        *out = v->asBool();
}

void
SpecReader::readU64(const char *key, uint64_t *out)
{
    if (const JsonValue *v = typedField(key, JsonType::Number)) {
        if (v->asDouble() < 0.0) {
            fail(key, "expected non-negative number");
            return;
        }
        *out = v->asU64();
    }
}

void
SpecReader::readInt(const char *key, int *out)
{
    if (const JsonValue *v = typedField(key, JsonType::Number))
        *out = v->asInt();
}

void
SpecReader::readDouble(const char *key, double *out)
{
    if (const JsonValue *v = typedField(key, JsonType::Number))
        *out = v->asDouble();
}

void
SpecReader::readString(const char *key, std::string *out)
{
    if (const JsonValue *v = typedField(key, JsonType::String))
        *out = v->asString();
}

const JsonValue *
SpecReader::child(const char *key, JsonType want) const
{
    return typedField(key, want);
}

void
SpecReader::rejectUnknownKeys(
    std::initializer_list<const char *> known) const
{
    if (!usable_)
        return;
    for (const auto &kv : value_.members()) {
        bool found = false;
        for (const char *k : known)
            if (kv.first == k) {
                found = true;
                break;
            }
        if (!found)
            fail(kv.first, "unknown field");
    }
}

// --- CliFlags --------------------------------------------------------

bool
CliFlags::tryParse(int argc, char **argv, int first,
                   const std::vector<std::string> &allowed,
                   CliFlags *out, std::string *error)
{
    out->values_.clear();
    for (int i = first; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0) {
            if (error)
                *error = std::string("expected --flag, got '") +
                         argv[i] + "'";
            return false;
        }
        std::string name = argv[i] + 2;
        if (!allowed.empty()) {
            bool known = false;
            for (const std::string &a : allowed)
                if (a == name) {
                    known = true;
                    break;
                }
            if (!known) {
                if (error) {
                    *error = "unknown flag '--" + name + "' (known:";
                    for (const std::string &a : allowed)
                        *error += " --" + a;
                    *error += ")";
                }
                return false;
            }
        }
        if (i + 1 >= argc) {
            if (error)
                *error = "missing value for '--" + name + "'";
            return false;
        }
        out->values_[name] = argv[++i];
    }
    return true;
}

CliFlags
CliFlags::parseOrExit(int argc, char **argv, int first,
                      const std::vector<std::string> &allowed)
{
    CliFlags flags;
    std::string error;
    if (!tryParse(argc, argv, first, allowed, &flags, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        std::exit(2);
    }
    return flags;
}

bool
CliFlags::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
CliFlags::get(const std::string &name,
              const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

uint64_t
CliFlags::getU64(const std::string &name, uint64_t fallback) const
{
    auto it = values_.find(name);
    return it == values_.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
}

int
CliFlags::getInt(const std::string &name, int fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::atoi(it->second.c_str());
}

double
CliFlags::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::atof(it->second.c_str());
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace rtm
