/**
 * @file
 * Append-only, crash-tolerant result journal (JSONL + CRC framing).
 *
 * The experiment engine streams one record per completed cell so a
 * crash, OOM-kill or SIGINT mid-campaign loses at most the cells in
 * flight; `--resume <journal>` replays the completed ones and re-runs
 * the rest, reproducing the bit-identical final merge.
 *
 * File format, one record per line:
 *
 *     CCCCCCCC <compact-json>\n
 *
 * where CCCCCCCC is the lowercase-hex CRC-32 (util/hash.hh) of
 * everything after the single separating space, newline excluded.
 * The first line is a header record carrying the spec identity
 * (SHA-256 of the normalized spec, section seeds, total cell count);
 * every later line is a cell record with the cell's job index and
 * serialized result.
 *
 * Robustness discipline: lines are independent, so a torn tail (the
 * classic crash artifact) or a corrupted line invalidates only
 * itself — the reader drops it, counts it, and keeps the rest. The
 * writer flushes after every record, making each completed cell
 * durable at the libc boundary before the next one starts.
 */

#ifndef RTM_UTIL_JOURNAL_HH
#define RTM_UTIL_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "util/serde.hh"

namespace rtm
{

/** Identity of the run a journal belongs to (line one). */
struct JournalHeader
{
    int version = 1;
    std::string name;        //!< spec name (diagnostics only)
    std::string spec_sha256; //!< experimentSpecHash of the run
    uint64_t matrix_seed = 0;
    uint64_t campaign_seed = 0;
    uint64_t stress_seed = 0;
    uint64_t mc_seed = 0;
    uint64_t cells = 0; //!< total scheduled cells of the run
};

JsonValue journalHeaderToJson(const JournalHeader &header);
bool journalHeaderFromJson(const JsonValue &doc,
                           JournalHeader *header);

/** One completed cell (result is the cell's full serialized slot). */
struct JournalRecord
{
    uint64_t index = 0; //!< engine job index
    std::string label;  //!< cell label (diagnostics only)
    JsonValue result;
};

/** Everything salvageable from a journal file. */
struct JournalFile
{
    bool has_header = false;
    JournalHeader header;
    std::vector<JournalRecord> records; //!< valid records, file order
    /** Lines dropped for bad CRC, truncation, or malformed JSON. */
    uint64_t dropped_lines = 0;
};

/**
 * Read a journal, salvaging every intact record. Returns false only
 * when the file itself cannot be read (open/IO failure) — corrupted
 * *lines* are not an error, they are counted in dropped_lines and
 * the affected cells simply re-run on resume.
 */
bool readJournal(const std::string &path, JournalFile *out,
                 std::string *error);

/**
 * Streaming journal writer. append* is thread-safe (internally
 * locked) and flushes each record, so concurrent engine workers can
 * checkpoint completed cells directly. Any write failure latches
 * ok() false; close() reports the final verdict so tools can exit
 * non-zero on a full disk instead of pretending the checkpoint
 * exists.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter() { close(); }

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * @param append continue an existing journal (resume streaming
     *               into the file just replayed) instead of
     *               truncating
     */
    bool open(const std::string &path, bool append,
              std::string *error = nullptr);

    bool appendHeader(const JournalHeader &header);
    bool appendRecord(const JournalRecord &record);

    /** False once any write has failed. */
    bool ok() const { return ok_; }

    /** Flush + close; false if the stream ever failed. */
    bool close();

    bool isOpen() const { return f_ != nullptr; }
    const std::string &path() const { return path_; }

  private:
    bool appendLine(const std::string &payload);

    std::FILE *f_ = nullptr;
    std::string path_;
    std::mutex mutex_;
    bool ok_ = true;
};

} // namespace rtm

#endif // RTM_UTIL_JOURNAL_HH
