/**
 * @file
 * Console table formatter used by benchmark harnesses to print the
 * rows/series of the paper's tables and figures in a uniform layout.
 */

#ifndef RTM_UTIL_TABLE_HH
#define RTM_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace rtm
{

/**
 * A simple right-padded text table.
 *
 * Usage:
 * @code
 *   TextTable t({"distance", "k=1", "k=2"});
 *   t.addRow({"1", "4.55e-05", "1.37e-21"});
 *   t.print(stdout);
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with a header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render the table to the given stream. */
    void print(std::FILE *out) const;

    /** Render the table into a string. */
    std::string str() const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Helper: format a double with %.4g. */
    static std::string num(double v);

    /** Helper: format a double with fixed precision. */
    static std::string fixed(double v, int precision);

    /** Helper: format an integer. */
    static std::string integer(long long v);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rtm

#endif // RTM_UTIL_TABLE_HH
