/**
 * @file
 * Serialisation layer shared by the tools, the experiment engine and
 * the benchmark harnesses:
 *
 *  - JsonValue: a small JSON document model (null / bool / number /
 *    string / array / object) with object member order preserved, so
 *    an emitted document is stable and diffs cleanly;
 *  - a recursive-descent parser with line/column diagnostics and a
 *    pretty-printing emitter whose doubles round-trip exactly
 *    (shortest decimal form that parses back bit-identically);
 *  - SpecReader: typed field binding for declarative configuration
 *    (ExperimentSpec et al.) that accumulates dotted-path
 *    diagnostics ("matrix.requests: expected number, got string")
 *    instead of dying on the first problem;
 *  - CliFlags: the one --flag value command-line parser shared by
 *    rtmsim / faultsim / faultcampaign, with uniform error handling
 *    for stray tokens, missing values and unknown flags.
 */

#ifndef RTM_UTIL_SERDE_HH
#define RTM_UTIL_SERDE_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rtm
{

/** JSON document type tags. */
enum class JsonType
{
    Null,
    Bool,
    Number,
    String,
    Array,
    Object
};

/** Human-readable type-tag name ("number", "object", ...). */
const char *jsonTypeName(JsonType type);

/**
 * One JSON document node. Numbers are stored as double (integers up
 * to 2^53 are exact, which covers every config field in this repo);
 * object members keep insertion order so emission is deterministic.
 */
class JsonValue
{
  public:
    JsonValue() = default;
    /*implicit*/ JsonValue(bool b) : type_(JsonType::Bool), bool_(b)
    {
    }
    /*implicit*/ JsonValue(double n)
        : type_(JsonType::Number), num_(n)
    {
    }
    /*implicit*/ JsonValue(int n)
        : type_(JsonType::Number), num_(static_cast<double>(n))
    {
    }
    /*implicit*/ JsonValue(uint64_t n)
        : type_(JsonType::Number), num_(static_cast<double>(n))
    {
    }
    /*implicit*/ JsonValue(const char *s)
        : type_(JsonType::String), str_(s)
    {
    }
    /*implicit*/ JsonValue(std::string s)
        : type_(JsonType::String), str_(std::move(s))
    {
    }

    /** Fresh empty array / object (distinct from null). */
    static JsonValue array();
    static JsonValue object();

    JsonType type() const { return type_; }
    bool isNull() const { return type_ == JsonType::Null; }
    bool isBool() const { return type_ == JsonType::Bool; }
    bool isNumber() const { return type_ == JsonType::Number; }
    bool isString() const { return type_ == JsonType::String; }
    bool isArray() const { return type_ == JsonType::Array; }
    bool isObject() const { return type_ == JsonType::Object; }

    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0.0) const;
    uint64_t asU64(uint64_t fallback = 0) const;
    int asInt(int fallback = 0) const;
    const std::string &asString() const { return str_; }

    // Array access.
    size_t size() const { return items_.size(); }
    const JsonValue &at(size_t i) const { return items_[i]; }
    void push(JsonValue v) { items_.push_back(std::move(v)); }
    const std::vector<JsonValue> &items() const { return items_; }

    // Object access (linear scan; spec objects are small).
    const JsonValue *find(const std::string &key) const;
    /** Insert-or-overwrite, preserving first-insertion order. */
    JsonValue &set(const std::string &key, JsonValue v);
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /**
     * Emit the document. indent > 0 pretty-prints with that many
     * spaces per level; indent == 0 emits one compact line.
     */
    std::string dump(int indent = 2) const;

    /**
     * Parse one JSON document (the whole string must be consumed).
     * On failure returns false and, when `error` is non-null, stores
     * a diagnostic with 1-based line:column of the offending token.
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *error);

    /** Structural equality (exact double comparison). */
    bool operator==(const JsonValue &other) const;
    bool operator!=(const JsonValue &other) const
    {
        return !(*this == other);
    }

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    JsonType type_ = JsonType::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Shortest decimal form of `v` that strtod parses back exactly. */
std::string jsonNumberToString(double v);

/** Read a whole file; false (with diagnostic) on I/O error. */
bool readTextFile(const std::string &path, std::string *out,
                  std::string *error);

/** Parse a JSON file; diagnostics carry the path. */
bool loadJsonFile(const std::string &path, JsonValue *out,
                  std::string *error);

/**
 * Crash-consistent whole-file write: the text goes to `path.tmp`,
 * is flushed and stream-state checked, and only then renamed over
 * `path` — so readers (and a process killed mid-write) see either
 * the old complete file or the new complete file, never a torn one.
 * A failure at any step (including a full disk surfacing at fclose)
 * returns false with an errno-carrying diagnostic and removes the
 * temporary; the destination is left untouched.
 */
bool saveTextFileAtomic(const std::string &path,
                        const std::string &text,
                        std::string *error = nullptr);

/**
 * Write `value.dump(indent)` atomically (saveTextFileAtomic); false
 * with a diagnostic on any I/O error.
 */
bool saveJsonFile(const std::string &path, const JsonValue &value,
                  int indent = 2, std::string *error = nullptr);

/**
 * Typed field binding over a parsed JSON object.
 *
 * Every read_* call looks up a key and, when present, checks the
 * type and stores the value; a missing key leaves the bound default
 * untouched. Type mismatches and unknown keys append one diagnostic
 * line each to the shared error string, prefixed with the reader's
 * dotted path, so a malformed spec reports *all* its problems in one
 * pass.
 */
class SpecReader
{
  public:
    /**
     * @param value object to read (a non-object appends a diagnostic
     *              immediately and every subsequent read no-ops)
     * @param path  dotted prefix for diagnostics ("matrix")
     * @param diag  shared diagnostic accumulator (never null)
     */
    SpecReader(const JsonValue &value, std::string path,
               std::string *diag);

    bool has(const char *key) const;

    void readBool(const char *key, bool *out);
    void readU64(const char *key, uint64_t *out);
    void readInt(const char *key, int *out);
    void readDouble(const char *key, double *out);
    void readString(const char *key, std::string *out);

    /**
     * Child of the wanted composite type, or null (with a
     * diagnostic when present-but-mistyped).
     */
    const JsonValue *child(const char *key, JsonType want) const;

    /**
     * Append an "unknown field" diagnostic for every member not in
     * `known` — catches typos like "reqests" that would otherwise be
     * silently ignored.
     */
    void rejectUnknownKeys(
        std::initializer_list<const char *> known) const;

    /** Append a custom diagnostic under this reader's path. */
    void fail(const std::string &key, const std::string &msg) const;

    /** True while no diagnostic has been appended (by anyone). */
    bool ok() const { return diag_->empty(); }

    const JsonValue &value() const { return value_; }
    const std::string &path() const { return path_; }

  private:
    const JsonValue *typedField(const char *key,
                                JsonType want) const;

    const JsonValue &value_;
    std::string path_;
    std::string *diag_;
    bool usable_ = false;
};

/**
 * Shared `--flag value` command-line parser.
 *
 * The grammar all three tools historically used: flags come in
 * pairs, every flag token starts with "--". This parser adds the
 * uniform error handling the tools lacked: a non-flag token, a flag
 * with no value, and (when `allowed` is non-empty) an unknown flag
 * are each reported with the offending token. parseOrExit prints the
 * diagnostic to stderr and exits with status 2, matching the tools'
 * historical behaviour.
 */
class CliFlags
{
  public:
    /**
     * Parse argv[first..argc). Empty `allowed` accepts any flag
     * name. Returns false with a one-line diagnostic on error.
     */
    static bool tryParse(int argc, char **argv, int first,
                         const std::vector<std::string> &allowed,
                         CliFlags *out, std::string *error);

    /** tryParse, printing the diagnostic and exiting 2 on error. */
    static CliFlags
    parseOrExit(int argc, char **argv, int first,
                const std::vector<std::string> &allowed);

    bool has(const std::string &name) const;
    std::string get(const std::string &name,
                    const std::string &fallback) const;
    uint64_t getU64(const std::string &name,
                    uint64_t fallback) const;
    int getInt(const std::string &name, int fallback) const;
    double getDouble(const std::string &name,
                     double fallback) const;

    const std::map<std::string, std::string> &values() const
    {
        return values_;
    }

  private:
    std::map<std::string, std::string> values_;
};

/** Split a comma-separated list, dropping empty segments. */
std::vector<std::string> splitCsv(const std::string &csv);

} // namespace rtm

#endif // RTM_UTIL_SERDE_HH
