/**
 * @file
 * Log-domain probability helpers.
 *
 * Position-error rates in this system span ~25 orders of magnitude
 * (1e-3 down to 1e-21 and below, per Table 2 of the paper), so tail
 * probabilities are carried in natural-log space and only exponentiated
 * for display. All helpers here are branch-tested against closed forms.
 */

#ifndef RTM_UTIL_PROB_HH
#define RTM_UTIL_PROB_HH

#include <cmath>
#include <cstddef>
#include <limits>

namespace rtm
{

/** Natural log of the standard normal density at x. */
double logNormalPdf(double x);

/**
 * Natural log of the upper-tail probability Q(x) = P(Z > x) for a
 * standard normal Z.
 *
 * Uses std::erfc directly for x below ~26 (where erfc stays normal),
 * and the continued-fraction asymptotic expansion beyond, so values
 * like Q(40) ~ 1e-350 are representable in log space without
 * underflow.
 */
double logNormalTail(double x);

/** Upper-tail probability Q(x); may underflow to 0 for huge x. */
double normalTail(double x);

/**
 * Batched log Q(x): out[i] = logNormalTail(x[i]) for i in [0, n),
 * bit-identical to the scalar calls. The win is call-site shape, not
 * SIMD: consumers that need Q at a ladder of adjacent bin boundaries
 * (FittedErrorModel, the analytic SDC/DUE sums) evaluate each
 * boundary once through this instead of twice through the scalar
 * entry point, halving the erfc work in the reliability hot path.
 */
void logNormalTailBatch(const double *x, double *out, size_t n);

/** log(exp(a) + exp(b)) without overflow/underflow. */
double logSumExp(double a, double b);

/**
 * log(exp(a) - exp(b)) for a >= b.
 * Returns -inf when the difference underflows completely.
 */
double logDiffExp(double a, double b);

/** log(1 - exp(a)) for a <= 0 (log of complement probability). */
double log1mExp(double a);

/**
 * Probability that at least one of n independent events with
 * per-event log-probability lp occurs, returned in log space.
 * Computed as log1p(-exp(n * log1p(-p))) with care for tiny p.
 */
double logAnyOf(double lp, double n);

/** Convert a log-probability to a plain double (may underflow). */
inline double
fromLog(double lp)
{
    return std::exp(lp);
}

/**
 * Mean time to failure in seconds given a per-event failure
 * probability (log space) and an event rate in events/second.
 * Returns +inf when the failure probability underflows to zero.
 */
double mttfSeconds(double log_fail_prob, double events_per_second);

/** Seconds in a (365.25-day) year, shared by reporting code. */
constexpr double kSecondsPerYear = 31557600.0;

/** Convert failures-in-time (failures per 1e9 hours) to MTTF seconds. */
double fitToMttfSeconds(double fit);

/** Convert MTTF in seconds to FIT (failures per 1e9 device-hours). */
double mttfSecondsToFit(double mttf_s);

} // namespace rtm

#endif // RTM_UTIL_PROB_HH
