#include "prob.hh"

#include <algorithm>

#include "logging.hh"

namespace rtm
{

namespace
{

constexpr double kLogSqrt2Pi = 0.9189385332046727; // log(sqrt(2*pi))

} // anonymous namespace

double
logNormalPdf(double x)
{
    return -0.5 * x * x - kLogSqrt2Pi;
}

double
logNormalTail(double x)
{
    if (std::isnan(x))
        rtm_panic("logNormalTail(nan)");
    if (x < -37.0)
        return 0.0; // Q(x) ~= 1
    if (x <= 26.0) {
        // erfc stays well inside the normal range here.
        double q = 0.5 * std::erfc(x / std::sqrt(2.0));
        if (q > 0.0)
            return std::log(q);
    }
    // Asymptotic expansion: Q(x) ~ phi(x)/x * (1 - 1/x^2 + 3/x^4 - ...)
    double inv_x2 = 1.0 / (x * x);
    double series = 1.0 - inv_x2 * (1.0 - 3.0 * inv_x2 *
                    (1.0 - 5.0 * inv_x2));
    return logNormalPdf(x) - std::log(x) + std::log(series);
}

double
normalTail(double x)
{
    return std::exp(logNormalTail(x));
}

void
logNormalTailBatch(const double *x, double *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = logNormalTail(x[i]);
}

double
logSumExp(double a, double b)
{
    if (a == -std::numeric_limits<double>::infinity())
        return b;
    if (b == -std::numeric_limits<double>::infinity())
        return a;
    double hi = std::max(a, b);
    double lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

double
logDiffExp(double a, double b)
{
    if (b == -std::numeric_limits<double>::infinity())
        return a;
    if (a < b)
        rtm_panic("logDiffExp requires a >= b (a=%g b=%g)", a, b);
    if (a == b)
        return -std::numeric_limits<double>::infinity();
    return a + std::log1p(-std::exp(b - a));
}

double
log1mExp(double a)
{
    if (a > 0.0)
        rtm_panic("log1mExp requires a <= 0 (a=%g)", a);
    if (a == 0.0)
        return -std::numeric_limits<double>::infinity();
    // Split at log(0.5) to keep precision in both regimes.
    if (a > -0.6931471805599453)
        return std::log(-std::expm1(a));
    return std::log1p(-std::exp(a));
}

double
logAnyOf(double lp, double n)
{
    if (n <= 0.0)
        return -std::numeric_limits<double>::infinity();
    if (lp >= 0.0)
        return 0.0; // certain event
    // log P(any) = log(1 - (1-p)^n); (1-p)^n in log space is
    // n * log1p(-p) = n * log1mExp(lp).
    double log_none = n * log1mExp(lp);
    if (log_none == -std::numeric_limits<double>::infinity())
        return 0.0;
    return log1mExp(log_none);
}

double
mttfSeconds(double log_fail_prob, double events_per_second)
{
    if (events_per_second <= 0.0)
        return std::numeric_limits<double>::infinity();
    if (log_fail_prob == -std::numeric_limits<double>::infinity())
        return std::numeric_limits<double>::infinity();
    // MTTF = 1 / (p * rate); computed in log space first.
    double log_mttf = -log_fail_prob - std::log(events_per_second);
    if (log_mttf > 700.0)
        return std::numeric_limits<double>::infinity();
    return std::exp(log_mttf);
}

double
fitToMttfSeconds(double fit)
{
    if (fit <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1e9 * 3600.0 / fit;
}

double
mttfSecondsToFit(double mttf_s)
{
    if (!(mttf_s > 0.0))
        return std::numeric_limits<double>::infinity();
    return 1e9 * 3600.0 / mttf_s;
}

} // namespace rtm
