#include "rng.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"
#include "vecmath.hh"

namespace rtm
{

namespace
{

/** SplitMix64 step used to expand a single seed into generator state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    // xoshiro must not start from the all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    if (n == 0)
        rtm_panic("uniformInt(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    // Box-Muller: two uniforms -> two independent standard normals.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

void
Rng::fillUniform(double *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = uniform();
}

void
Rng::fillGaussian(double *dst, size_t n)
{
    size_t i = 0;
    if (i < n && has_cached_gauss_) {
        has_cached_gauss_ = false;
        dst[i++] = cached_gauss_;
    }
    // Whole pairs land directly in the output; only an odd tail
    // touches the cache, exactly like a trailing gaussian() call.
    while (i + 2 <= n) {
        double u1;
        do {
            u1 = uniform();
        } while (u1 <= 0.0);
        double u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * M_PI * u2;
        dst[i] = r * std::cos(theta);
        dst[i + 1] = r * std::sin(theta);
        i += 2;
    }
    if (i < n) {
        double u1;
        do {
            u1 = uniform();
        } while (u1 <= 0.0);
        double u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * M_PI * u2;
        cached_gauss_ = r * std::sin(theta);
        has_cached_gauss_ = true;
        dst[i] = r * std::cos(theta);
    }
}

void
Rng::fillGaussianFast(double *dst, size_t n)
{
    // Block size trades stack footprint against loop overhead; 128
    // pairs keeps all five lanes inside L1.
    constexpr size_t kBlockPairs = 128;
    double u1[kBlockPairs], u2[kBlockPairs], r[kBlockPairs];
    double ca[kBlockPairs], sa[kBlockPairs];

    size_t i = 0;
    while (i < n) {
        size_t want = n - i;
        size_t pairs = std::min(kBlockPairs, (want + 1) / 2);
        // The generator recurrence is serial; everything after this
        // scalar fill is lane-parallel.
        for (size_t p = 0; p < pairs; ++p) {
            double a = uniform();
            u1[p] = a > 0.0 ? a : 0x1.0p-53;
            u2[p] = uniform();
        }
#pragma omp simd
        for (size_t p = 0; p < pairs; ++p)
            r[p] = std::sqrt(-2.0 * vecmath::logUnit(u1[p]));
#pragma omp simd
        for (size_t p = 0; p < pairs; ++p)
            ca[p] = r[p] * vecmath::cos2pi(u2[p]);
#pragma omp simd
        for (size_t p = 0; p < pairs; ++p)
            sa[p] = r[p] * vecmath::sin2pi(u2[p]);
        // Interleave cos-first to match the scalar pair order; an
        // odd tail stops after the final cosine.
        size_t emit = std::min(want, 2 * pairs);
        for (size_t k = 0; k < emit; ++k)
            dst[i + k] = (k & 1) ? sa[k >> 1] : ca[k >> 1];
        i += emit;
    }
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace rtm
