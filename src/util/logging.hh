/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated; aborts.
 * fatal()  - the user asked for something impossible; exits with code 1.
 * warn()   - something is suspicious but simulation can continue.
 * inform() - plain status output.
 */

#ifndef RTM_UTIL_LOGGING_HH
#define RTM_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rtm
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Quiet = 0,   //!< only panic/fatal
    Warn = 1,    //!< + warnings
    Info = 2,    //!< + inform()
    Debug = 3    //!< + debug trace
};

/** Get the process-wide log level (default: Info). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail
{

/** Render a printf-style format into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** Emit one log line with a severity prefix. */
void emit(const char *prefix, const std::string &msg);

[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...);
void warnImpl(const char *fmt, ...);
void informImpl(const char *fmt, ...);
void debugImpl(const char *fmt, ...);

} // namespace detail

} // namespace rtm

/** Abort: an internal simulator invariant was violated. */
#define rtm_panic(...) \
    ::rtm::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Exit(1): the requested configuration cannot be honoured. */
#define rtm_fatal(...) \
    ::rtm::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Non-fatal warning. */
#define rtm_warn(...) ::rtm::detail::warnImpl(__VA_ARGS__)

/** Informational status message. */
#define rtm_inform(...) ::rtm::detail::informImpl(__VA_ARGS__)

/** Debug trace message (only at LogLevel::Debug). */
#define rtm_debug(...) ::rtm::detail::debugImpl(__VA_ARGS__)

#endif // RTM_UTIL_LOGGING_HH
