#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace rtm
{

void
RunningStats::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double nn = static_cast<double>(n);
    mean_ += delta * nb / nn;
    m2_ += other.m2_ + delta * delta * na * nb / nn;
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (!(hi > lo))
        rtm_panic("Histogram range [%g, %g) is empty", lo, hi);
    if (bins == 0)
        rtm_panic("Histogram needs at least one bin");
}

void
Histogram::add(double x, uint64_t weight)
{
    total_ += weight;
    if (x < lo_) {
        underflow_ += weight;
        return;
    }
    if (x >= hi_) {
        overflow_ += weight;
        return;
    }
    auto idx = static_cast<size_t>((x - lo_) / width_);
    if (idx >= counts_.size())
        idx = counts_.size() - 1; // floating point edge at hi
    counts_[idx] += weight;
}

uint64_t
Histogram::count(size_t i) const
{
    if (i >= counts_.size())
        rtm_panic("Histogram bin %zu out of range", i);
    return counts_[i];
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::binHi(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i + 1);
}

double
Histogram::density(size_t i) const
{
    uint64_t in_range = total_ - underflow_ - overflow_;
    if (in_range == 0)
        return 0.0;
    return static_cast<double>(count(i)) /
           static_cast<double>(in_range);
}

void
IntTally::add(int64_t k, uint64_t weight)
{
    map_[k] += weight;
    total_ += weight;
}

void
IntTally::merge(const IntTally &other)
{
    for (const auto &[k, c] : other.map_)
        map_[k] += c;
    total_ += other.total_;
}

uint64_t
IntTally::count(int64_t k) const
{
    auto it = map_.find(k);
    return it == map_.end() ? 0 : it->second;
}

double
IntTally::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[k, c] : map_)
        acc += static_cast<double>(k) * static_cast<double>(c);
    return acc / static_cast<double>(total_);
}

} // namespace rtm
