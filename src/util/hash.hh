/**
 * @file
 * Minimal SHA-256 (FIPS 180-4) for golden-result pinning.
 *
 * The golden tests reduce a full SimResult matrix to one hex digest
 * so regressions in any field of any cell show up as a one-line diff
 * against the pinned constant. A cryptographic digest (rather than a
 * simple xor/fnv fold) makes accidental collisions across refactors
 * implausible; performance is irrelevant at the sizes involved.
 */

#ifndef RTM_UTIL_HASH_HH
#define RTM_UTIL_HASH_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace rtm
{

/** Incremental SHA-256. */
class Sha256
{
  public:
    Sha256();

    /** Absorb `len` bytes. */
    void update(const void *data, size_t len);

    /** Absorb a value's object representation (trivially copyable). */
    template <typename T> void updateValue(const T &v)
    {
        update(&v, sizeof(v));
    }

    /** Absorb a string's characters (length-prefixed). */
    void updateString(const std::string &s);

    /** Finalize and return the digest as lowercase hex. */
    std::string hexDigest();

  private:
    uint32_t state_[8];
    uint64_t bit_len_ = 0;
    uint8_t buf_[64];
    size_t buf_len_ = 0;

    void processBlock(const uint8_t *block);
};

/** One-shot convenience: SHA-256 of a byte buffer, lowercase hex. */
std::string sha256Hex(const void *data, size_t len);

/**
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/`cksum -o 3`
 * flavour). Frames journal records (util/journal.hh) so a torn or
 * bit-flipped line in an append-only checkpoint is detected and
 * dropped instead of replayed as a bogus result. `seed` chains
 * incremental computations (pass a previous return value).
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

} // namespace rtm

#endif // RTM_UTIL_HASH_HH
