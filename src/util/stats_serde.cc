#include "stats_serde.hh"

namespace rtm
{

JsonValue
runningStatsToJson(const RunningStats &s)
{
    JsonValue v = JsonValue::object();
    v.set("count", s.count());
    v.set("mean", s.count() ? s.mean() : 0.0);
    v.set("m2", s.m2());
    if (s.count() > 0) {
        v.set("min", s.min());
        v.set("max", s.max());
    }
    return v;
}

bool
runningStatsFromJson(const JsonValue &doc, RunningStats *out)
{
    if (!doc.isObject())
        return false;
    const JsonValue *count = doc.find("count");
    const JsonValue *mean = doc.find("mean");
    const JsonValue *m2 = doc.find("m2");
    if (!count || !count->isNumber() || !mean ||
        !mean->isNumber() || !m2 || !m2->isNumber())
        return false;
    const uint64_t n = count->asU64();
    if (n == 0) {
        *out = RunningStats();
        return true;
    }
    const JsonValue *min = doc.find("min");
    const JsonValue *max = doc.find("max");
    if (!min || !min->isNumber() || !max || !max->isNumber())
        return false;
    *out = RunningStats::restore(n, mean->asDouble(),
                                 m2->asDouble(), min->asDouble(),
                                 max->asDouble());
    return true;
}

JsonValue
intTallyToJson(const IntTally &t)
{
    JsonValue v = JsonValue::array();
    for (const auto &[key, count] : t.entries()) {
        JsonValue pair = JsonValue::array();
        pair.push(static_cast<double>(key));
        pair.push(count);
        v.push(std::move(pair));
    }
    return v;
}

bool
intTallyFromJson(const JsonValue &doc, IntTally *out)
{
    if (!doc.isArray())
        return false;
    IntTally t;
    for (size_t i = 0; i < doc.size(); ++i) {
        const JsonValue &pair = doc.at(i);
        if (!pair.isArray() || pair.size() != 2 ||
            !pair.at(0).isNumber() || !pair.at(1).isNumber())
            return false;
        t.add(static_cast<int64_t>(pair.at(0).asDouble()),
              pair.at(1).asU64());
    }
    *out = std::move(t);
    return true;
}

} // namespace rtm
