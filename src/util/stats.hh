/**
 * @file
 * Lightweight running statistics and histogram helpers shared by the
 * device Monte-Carlo, the cache simulator, and the benchmark harnesses.
 */

#ifndef RTM_UTIL_STATS_HH
#define RTM_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace rtm
{

/**
 * Welford running mean / variance accumulator.
 *
 * Numerically stable for long accumulations (billions of samples) and
 * mergeable, so Monte-Carlo shards can be combined.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of samples added. */
    uint64_t count() const { return count_; }

    /** Sample mean (0 if empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (+inf if empty). */
    double min() const { return min_; }

    /** Largest sample seen (-inf if empty). */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /**
     * Raw Welford second moment (sum of squared deviations). Exposed
     * so serde can round-trip the accumulator bit-exactly; derive
     * variance via variance(), not from this.
     */
    double m2() const { return m2_; }

    /**
     * Rebuild an accumulator from previously serialized state. The
     * min/max pair defaults to the empty-accumulator sentinels (±inf)
     * so callers restoring a count==0 record can omit them.
     */
    static RunningStats
    restore(uint64_t count, double mean, double m2,
            double min = std::numeric_limits<double>::infinity(),
            double max = -std::numeric_limits<double>::infinity())
    {
        RunningStats s;
        s.count_ = count;
        s.mean_ = mean;
        s.m2_ = m2;
        s.min_ = min;
        s.max_ = max;
        return s;
    }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width binned histogram over [lo, hi) with under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first regular bin
     * @param hi upper edge of the last regular bin
     * @param bins number of regular bins (> 0)
     */
    Histogram(double lo, double hi, size_t bins);

    /** Record one sample. */
    void add(double x, uint64_t weight = 1);

    /** Number of regular bins. */
    size_t bins() const { return counts_.size(); }

    /** Count in regular bin i. */
    uint64_t count(size_t i) const;

    /** Count of samples below lo. */
    uint64_t underflow() const { return underflow_; }

    /** Count of samples at or above hi. */
    uint64_t overflow() const { return overflow_; }

    /** Total samples recorded (including out-of-range). */
    uint64_t total() const { return total_; }

    /** Lower edge of bin i. */
    double binLo(size_t i) const;

    /** Upper edge of bin i. */
    double binHi(size_t i) const;

    /** Fraction of in-range mass falling into bin i. */
    double density(size_t i) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * Sparse integer tally, used e.g. to count shift operations by
 * distance or p-ECC outcomes by step error.
 */
class IntTally
{
  public:
    /** Add weight to key k. */
    void add(int64_t k, uint64_t weight = 1);

    /** Merge another tally into this one (per-key count sums). */
    void merge(const IntTally &other);

    /** Count at key k (0 if never added). */
    uint64_t count(int64_t k) const;

    /** Total weight across all keys. */
    uint64_t total() const { return total_; }

    /** Weighted mean of keys (0 if empty). */
    double mean() const;

    /** All (key, count) pairs in increasing key order. */
    const std::map<int64_t, uint64_t> &entries() const { return map_; }

  private:
    std::map<int64_t, uint64_t> map_;
    uint64_t total_ = 0;
};

} // namespace rtm

#endif // RTM_UTIL_STATS_HH
