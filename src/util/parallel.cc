#include "parallel.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <memory>

#include "logging.hh"

namespace rtm
{

namespace
{

/** Set while the current thread is a pool worker executing a task. */
thread_local bool tls_in_worker = false;

std::unique_ptr<ThreadPool> g_pool;

/** Signal-handler state: the routed token and the signal seen. */
std::atomic<CancelToken *> g_signal_token{nullptr};
std::atomic<int> g_signal_no{0};

extern "C" void
cancelSignalHandler(int signo)
{
    // Second signal: the user is done waiting. _Exit is
    // async-signal-safe; 128+signo is the shell convention.
    if (g_signal_no.exchange(signo, std::memory_order_relaxed) != 0)
        std::_Exit(128 + signo);
    if (CancelToken *t =
            g_signal_token.load(std::memory_order_relaxed))
        t->requestCancel();
}

} // anonymous namespace

double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

void
installCancelOnSignals(CancelToken *token)
{
    g_signal_token.store(token, std::memory_order_relaxed);
    g_signal_no.store(0, std::memory_order_relaxed);
    std::signal(SIGINT,
                token ? cancelSignalHandler : SIG_DFL);
    std::signal(SIGTERM,
                token ? cancelSignalHandler : SIG_DFL);
}

int
cancelSignal()
{
    return g_signal_no.load(std::memory_order_relaxed);
}

unsigned
ThreadPool::configuredThreads()
{
    if (const char *env = std::getenv("RTM_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end == env || v < 1 || v > 1024)
            rtm_panic("RTM_THREADS='%s' is not a thread count in "
                      "[1, 1024]", env);
        return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(configuredThreads());
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    g_pool = std::make_unique<ThreadPool>(threads);
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads ? threads : 1)
{
    // A one-thread pool runs everything inline: no workers at all.
    if (threads_ < 2)
        return;
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    tls_in_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    parallelFor(n, fn, nullptr);
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn,
                        const CancelToken *cancel)
{
    if (n == 0)
        return;
    // Inline when serial, trivially small, or nested in a worker
    // (nested dispatch would deadlock a saturated pool).
    if (workers_.empty() || n == 1 || tls_in_worker) {
        for (size_t i = 0; i < n; ++i) {
            if (cancel && cancel->cancelled())
                return;
            fn(i);
        }
        return;
    }
    struct Batch
    {
        std::atomic<size_t> next{0};
        std::atomic<unsigned> active{0};
        std::mutex m;
        std::condition_variable done;
    };
    auto batch = std::make_shared<Batch>();
    size_t lanes = std::min<size_t>(workers_.size(), n);
    batch->active.store(static_cast<unsigned>(lanes));
    for (size_t lane = 0; lane < lanes; ++lane) {
        submit([batch, n, &fn, cancel] {
            size_t i;
            while ((i = batch->next.fetch_add(1)) < n) {
                if (cancel && cancel->cancelled())
                    break;
                fn(i);
            }
            if (batch->active.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(batch->m);
                batch->done.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(batch->m);
    batch->done.wait(lock,
                     [&] { return batch->active.load() == 0; });
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    ThreadPool::global().parallelFor(n, fn);
}

size_t
shardCount(size_t n)
{
    // 64 shards saturates any plausible pool with good load balance;
    // below that, one shard per item keeps tiny jobs cheap. Depends
    // on n only — never on the worker count — for reproducibility.
    constexpr size_t kMaxShards = 64;
    return n < kMaxShards ? n : kMaxShards;
}

} // namespace rtm
