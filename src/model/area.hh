/**
 * @file
 * Racetrack-memory area model (paper Sec. 4.2.3, Fig. 7 / Fig. 13).
 *
 * A stripe is stacked above its access transistors, so total footprint
 * is the larger of the domain area and the transistor area, plus a
 * small per-port peripheral term (sense amps, word-line drivers) that
 * is never hidden under the stripe. With few ports the stripe
 * dominates and an extra read port costs little; past the knee every
 * port pays its full transistor footprint - reproducing the paper's
 * observation and the shape of Fig. 7.
 *
 * Constants are calibrated to the circuit-level model the paper
 * cites: ~6.8 F^2 per domain of stripe footprint (including wire
 * pitch), 35 F^2 per read-only port (one access transistor), and
 * 70 F^2 per read/write port (one extra transistor plus two pinned
 * reference domains).
 */

#ifndef RTM_MODEL_AREA_HH
#define RTM_MODEL_AREA_HH

#include <cstdint>

#include "codec/layout.hh"
#include "model/tech.hh"

namespace rtm
{

/**
 * Effective cell size in F^2 per bit for the iso-area comparison of
 * Table 4: the paper keeps LLC area constant across technologies,
 * which with these cell sizes yields the 4 / 32 / 128 MB ladder
 * (1 : 8 : 32). The racetrack number is the *effective* density
 * including shared access transistors - raw domain density is
 * higher still (the paper quotes up to 10x STT-RAM).
 */
double cellSizeF2(MemTech tech);

/**
 * Capacity at iso-area with an SRAM baseline of
 * `sram_capacity_bytes` (Table 4 uses 4 MB).
 */
uint64_t isoAreaCapacityBytes(MemTech tech,
                              uint64_t sram_capacity_bytes);

/** Technology constants of the stripe area model. */
struct AreaModelParams
{
    double f2_per_domain = 6.8;       //!< stripe footprint per domain
    double f2_per_read_port = 20.0;   //!< transistor, read-only
    double f2_per_rw_port = 40.0;     //!< transistor pair + refs
    double f2_per_write_port = 20.0;  //!< end write driver (p-ECC-O)
    double f2_peripheral_per_port = 10.0; //!< sense amp / driver
    double f2_peripheral_fixed = 40.0;    //!< shift driver + control
};

/**
 * Stripe area evaluator.
 */
class AreaModel
{
  public:
    explicit AreaModel(AreaModelParams params = {});

    /**
     * Total stripe footprint in F^2 for an explicit inventory.
     *
     * @param domains      total domains on the stripe (data + code +
     *                     overhead + guards)
     * @param read_ports   read-only ports
     * @param rw_ports     read/write ports
     * @param write_ports  write-only end ports (p-ECC-O)
     */
    double stripeArea(int domains, int read_ports, int rw_ports,
                      int write_ports = 0) const;

    /**
     * Average area per *data* bit (F^2/b) for a protected stripe
     * configuration - the Fig. 13 metric. Includes the protection's
     * extra domains and ports from the layout's paper accounting.
     */
    double areaPerDataBit(const PeccConfig &config) const;

    /**
     * Fig. 7 sweep point: a `data_bits`-domain stripe with the given
     * port counts (before any p-ECC), reporting F^2 per data bit.
     */
    double areaPerBitWithPorts(int data_bits, int added_read_ports,
                               int rw_ports) const;

    const AreaModelParams &params() const { return params_; }

  private:
    AreaModelParams params_;
};

} // namespace rtm

#endif // RTM_MODEL_AREA_HH
