#include "reliability.hh"

#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

namespace
{

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/** Correction strength implied by a scheme. */
int
schemeStrength(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
      case Scheme::Sts:
        return -1; // no code at all
      case Scheme::SedPecc:
        return 0;
      case Scheme::SecdedPecc:
      case Scheme::PeccO:
      case Scheme::PeccSWorst:
      case Scheme::PeccSAdaptive:
        return 1;
    }
    return -1;
}

} // anonymous namespace

ShiftReliability
ShiftReliability::none()
{
    return ShiftReliability{kNegInf, kNegInf, kNegInf};
}

ReliabilityModel::ReliabilityModel(const PositionErrorModel *model,
                                   Scheme scheme)
    : model_(model), scheme_(scheme)
{
    if (!model_)
        rtm_fatal("reliability model needs an error model");
    correct_ = schemeStrength(scheme);
    period_ = correct_ >= 0 ? (1 << (correct_ + 1)) : 0;
}

ShiftReliability
ReliabilityModel::shiftOp(int distance) const
{
    ShiftReliability r = ShiftReliability::none();
    if (distance <= 0)
        return r;

    const int kmax = model_->maxStepError();
    if (correct_ < 0) {
        // Unprotected: every position error silently corrupts.
        r.log_sdc = model_->logProbAtLeast(distance, 1);
        return r;
    }

    const int m = correct_;
    const int t = period_;
    // One batched ladder fetch covers every (sign, magnitude) the
    // residue walk below needs; values are bit-identical to the
    // per-call logProbStep evaluations this loop used to make.
    std::vector<double> lp_plus(static_cast<size_t>(kmax)),
        lp_minus(static_cast<size_t>(kmax));
    if (kmax > 0)
        model_->logProbStepRange(distance, kmax, lp_plus.data(),
                                 lp_minus.data());
    for (int mag = 1; mag <= kmax; ++mag) {
        for (int sign : {+1, -1}) {
            double lp = sign > 0 ? lp_plus[mag - 1]
                                 : lp_minus[mag - 1];
            if (lp == kNegInf)
                continue;
            int diff = ((sign * mag) % t + t) % t;
            if (diff == 0) {
                // Residue aliases to "no error": silent.
                r.log_sdc = logSumExp(r.log_sdc, lp);
            } else if (diff <= m || t - diff <= m) {
                // Decoder proposes a correction.
                int inferred = diff <= m ? diff : -(t - diff);
                if (inferred == sign * mag) {
                    // Right answer: corrected (counter-shift may
                    // itself fail; second-order DUE term).
                    double corr_fail =
                        model_->logProbAtLeast(mag, m + 1);
                    r.log_corrected = logSumExp(r.log_corrected, lp);
                    r.log_due = logSumExp(r.log_due, lp + corr_fail);
                } else {
                    // Miscorrection: position silently worsens.
                    r.log_sdc = logSumExp(r.log_sdc, lp);
                }
            } else {
                // Ambiguous residue (|k| = m+1 alias): detected,
                // direction unknown -> unrecoverable.
                r.log_due = logSumExp(r.log_due, lp);
            }
        }
    }
    return r;
}

ShiftReliability
ReliabilityModel::sequence(const std::vector<int> &parts) const
{
    ShiftReliability total = ShiftReliability::none();
    for (int part : parts) {
        ShiftReliability r = shiftOp(part);
        total.log_sdc = logSumExp(total.log_sdc, r.log_sdc);
        total.log_due = logSumExp(total.log_due, r.log_due);
        total.log_corrected =
            logSumExp(total.log_corrected, r.log_corrected);
    }
    return total;
}

void
MttfAccumulator::add(const ShiftReliability &r, double weight)
{
    if (r.log_sdc != kNegInf)
        sdc_events_ += weight * std::exp(r.log_sdc);
    if (r.log_due != kNegInf)
        due_events_ += weight * std::exp(r.log_due);
}

Seconds
MttfAccumulator::sdcMttf() const
{
    if (sdc_events_ <= 0.0)
        return std::numeric_limits<double>::infinity();
    return seconds_ / sdc_events_;
}

Seconds
MttfAccumulator::dueMttf() const
{
    if (due_events_ <= 0.0)
        return std::numeric_limits<double>::infinity();
    return seconds_ / due_events_;
}

void
MttfAccumulator::merge(const MttfAccumulator &other)
{
    sdc_events_ += other.sdc_events_;
    due_events_ += other.due_events_;
    seconds_ += other.seconds_;
}

Seconds
steadyStateMttf(double log_fail_per_op, double ops_per_second)
{
    return mttfSeconds(log_fail_per_op, ops_per_second);
}

} // namespace rtm
