#include "reliability.hh"

#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

namespace
{

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

} // anonymous namespace

ShiftReliability
ShiftReliability::none()
{
    return ShiftReliability{kNegInf, kNegInf, kNegInf};
}

ReliabilityModel::ReliabilityModel(const PositionErrorModel *model,
                                   Scheme scheme,
                                   int codeword_frames)
    : model_(model), scheme_(scheme)
{
    if (!model_)
        rtm_fatal("reliability model needs an error model");
    code_ = makeShiftCode(scheme);
    correct_ = schemeCorrectionStrength(scheme);
    if (code_ && code_->correctionRadius() != correct_)
        rtm_panic("shift code radius %d disagrees with scheme "
                  "strength %d", code_->correctionRadius(), correct_);
    if (codeword_frames > 1 && code_ && correct_ >= 0) {
        // Pooled codewords: F frames share one redundancy region
        // whose extra check bits buy log2(F) more correction radius
        // (spec validation already rejected geometries where the
        // boosted radius does not fit the stripe tail). Re-derive
        // the code at the boosted strength so the classification
        // walk below sees the larger radius.
        int boost = 0;
        for (int f = codeword_frames; f > 1; f >>= 1)
            ++boost;
        correct_ += boost;
        if (scheme == Scheme::DelIns) {
            code_ = std::make_shared<DelInsShiftCode>(correct_);
        } else {
            int w = 1;
            while ((1 << w) < 2 * correct_ + 2)
                ++w;
            code_ = std::make_shared<CyclicPositionCode>(w, correct_);
        }
    }
    // Residue period of the paper's w = m + 1 codes; the lm-pos
    // default (w = 3, m = 2) happens to share it. Kept for
    // introspection only - the decomposition below asks the shift
    // code itself.
    period_ = correct_ >= 0 ? (1 << (correct_ + 1)) : 0;
}

ShiftReliability
ReliabilityModel::shiftOp(int distance) const
{
    ShiftReliability r = ShiftReliability::none();
    if (distance <= 0)
        return r;

    const int kmax = model_->maxStepError();
    if (!code_) {
        // Unprotected: every position error silently corrupts.
        r.log_sdc = model_->logProbAtLeast(distance, 1);
        return r;
    }

    const int m = correct_;
    // One batched ladder fetch covers every (sign, magnitude) the
    // classification walk below needs; values are bit-identical to
    // the per-call logProbStep evaluations this loop used to make.
    std::vector<double> lp_plus(static_cast<size_t>(kmax)),
        lp_minus(static_cast<size_t>(kmax));
    if (kmax > 0)
        model_->logProbStepRange(distance, kmax, lp_plus.data(),
                                 lp_minus.data());
    for (int mag = 1; mag <= kmax; ++mag) {
        for (int sign : {+1, -1}) {
            double lp = sign > 0 ? lp_plus[mag - 1]
                                 : lp_minus[mag - 1];
            if (lp == kNegInf)
                continue;
            // The shift code's own classification of this error; for
            // the cyclic family this reproduces the residue walk the
            // loop used to inline (same branches, same accumulation
            // order, bit-identical results).
            switch (code_->classify(sign * mag)) {
              case ErrorClass::Ok:
                break; // mag >= 1 never classifies as Ok
              case ErrorClass::Silent:
                // Aliases to "no error": silent.
                r.log_sdc = logSumExp(r.log_sdc, lp);
                break;
              case ErrorClass::Corrected: {
                // Right answer: corrected (counter-shift may itself
                // fail; second-order DUE term).
                double corr_fail = model_->logProbAtLeast(mag, m + 1);
                r.log_corrected = logSumExp(r.log_corrected, lp);
                r.log_due = logSumExp(r.log_due, lp + corr_fail);
                break;
              }
              case ErrorClass::Miscorrected:
                // Position silently worsens.
                r.log_sdc = logSumExp(r.log_sdc, lp);
                break;
              case ErrorClass::Ambiguous:
                // Detected, direction unknown -> unrecoverable.
                r.log_due = logSumExp(r.log_due, lp);
                break;
            }
        }
    }
    return r;
}

ShiftReliability
ReliabilityModel::sequence(const std::vector<int> &parts) const
{
    ShiftReliability total = ShiftReliability::none();
    for (int part : parts) {
        ShiftReliability r = shiftOp(part);
        total.log_sdc = logSumExp(total.log_sdc, r.log_sdc);
        total.log_due = logSumExp(total.log_due, r.log_due);
        total.log_corrected =
            logSumExp(total.log_corrected, r.log_corrected);
    }
    return total;
}

void
MttfAccumulator::add(const ShiftReliability &r, double weight)
{
    if (r.log_sdc != kNegInf)
        sdc_events_ += weight * std::exp(r.log_sdc);
    if (r.log_due != kNegInf)
        due_events_ += weight * std::exp(r.log_due);
}

Seconds
MttfAccumulator::sdcMttf() const
{
    if (sdc_events_ <= 0.0)
        return std::numeric_limits<double>::infinity();
    return seconds_ / sdc_events_;
}

Seconds
MttfAccumulator::dueMttf() const
{
    if (due_events_ <= 0.0)
        return std::numeric_limits<double>::infinity();
    return seconds_ / due_events_;
}

void
MttfAccumulator::merge(const MttfAccumulator &other)
{
    sdc_events_ += other.sdc_events_;
    due_events_ += other.due_events_;
    seconds_ += other.seconds_;
}

Seconds
steadyStateMttf(double log_fail_per_op, double ops_per_second)
{
    return mttfSeconds(log_fail_per_op, ops_per_second);
}

} // namespace rtm
