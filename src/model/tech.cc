#include "tech.hh"

#include "util/logging.hh"

namespace rtm
{

const char *
memTechName(MemTech tech)
{
    switch (tech) {
      case MemTech::SRAM: return "SRAM";
      case MemTech::STTRAM: return "STT-RAM";
      case MemTech::Racetrack: return "RM";
      case MemTech::RacetrackIdeal: return "RM-Ideal";
    }
    return "?";
}

const char *
techToken(MemTech tech)
{
    switch (tech) {
      case MemTech::SRAM: return "sram";
      case MemTech::STTRAM: return "sttram";
      case MemTech::Racetrack: return "rm";
      case MemTech::RacetrackIdeal: return "rm-ideal";
    }
    return "?";
}

bool
techFromToken(const std::string &token, MemTech *out)
{
    if (token == "sram")
        *out = MemTech::SRAM;
    else if (token == "sttram")
        *out = MemTech::STTRAM;
    else if (token == "rm")
        *out = MemTech::Racetrack;
    else if (token == "rm-ideal")
        *out = MemTech::RacetrackIdeal;
    else
        return false;
    return true;
}

TechParams
sramL3()
{
    TechParams p;
    p.tech = MemTech::SRAM;
    p.capacity_bytes = 4ull << 20;
    p.read_latency = 24;
    p.write_latency = 22;
    p.read_energy = nJ(0.802);
    p.write_energy = nJ(0.761);
    p.leakage_watts = mW(2673.5);
    return p;
}

TechParams
sttramL3()
{
    TechParams p;
    p.tech = MemTech::STTRAM;
    p.capacity_bytes = 32ull << 20;
    p.read_latency = 27;
    p.write_latency = 41;
    p.read_energy = nJ(1.056);
    p.write_energy = nJ(2.093);
    p.leakage_watts = mW(862.2);
    return p;
}

TechParams
racetrackL3()
{
    TechParams p;
    p.tech = MemTech::Racetrack;
    p.capacity_bytes = 128ull << 20;
    p.read_latency = 24;
    p.write_latency = 24;
    p.shift_latency_per_step = 4;
    p.read_energy = nJ(0.956);
    p.write_energy = nJ(0.952);
    p.shift_energy_per_step = nJ(1.331);
    p.leakage_watts = mW(948.4);
    return p;
}

TechParams
racetrackIdealL3()
{
    TechParams p = racetrackL3();
    p.tech = MemTech::RacetrackIdeal;
    p.shift_latency_per_step = 0;
    p.shift_energy_per_step = 0.0;
    return p;
}

TechParams
l3For(MemTech tech)
{
    switch (tech) {
      case MemTech::SRAM: return sramL3();
      case MemTech::STTRAM: return sttramL3();
      case MemTech::Racetrack: return racetrackL3();
      case MemTech::RacetrackIdeal: return racetrackIdealL3();
    }
    rtm_panic("unknown tech");
}

TechParams
l1Params()
{
    TechParams p;
    p.tech = MemTech::SRAM;
    p.capacity_bytes = 32ull << 10;
    p.read_latency = 1;
    p.write_latency = 1;
    p.read_energy = nJ(0.074);
    p.write_energy = nJ(0.074);
    p.leakage_watts = mW(23.4);
    return p;
}

TechParams
l2Params()
{
    TechParams p;
    p.tech = MemTech::SRAM;
    p.capacity_bytes = 1ull << 20;
    p.read_latency = 7;
    p.write_latency = 7;
    p.read_energy = nJ(0.407);
    p.write_energy = nJ(0.386);
    p.leakage_watts = mW(681.5);
    return p;
}

DramParams
dramParams()
{
    return DramParams{};
}

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline: return "Baseline";
      case Scheme::Sts: return "STS";
      case Scheme::SedPecc: return "SED p-ECC";
      case Scheme::SecdedPecc: return "SECDED p-ECC";
      case Scheme::PeccO: return "SECDED p-ECC-O";
      case Scheme::PeccSWorst: return "p-ECC-S worst";
      case Scheme::PeccSAdaptive: return "p-ECC-S adaptive";
      case Scheme::LmPos: return "lm-pos";
      case Scheme::DelIns: return "del-ins-k";
    }
    return "?";
}

const char *
schemeToken(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline: return "baseline";
      case Scheme::Sts: return "sts";
      case Scheme::SedPecc: return "sed";
      case Scheme::SecdedPecc: return "secded";
      case Scheme::PeccO: return "pecc-o";
      case Scheme::PeccSWorst: return "worst";
      case Scheme::PeccSAdaptive: return "adaptive";
      case Scheme::LmPos: return "lm-pos";
      case Scheme::DelIns: return "del-ins-k";
    }
    return "?";
}

bool
schemeFromToken(const std::string &token, Scheme *out)
{
    if (token == "baseline")
        *out = Scheme::Baseline;
    else if (token == "sts")
        *out = Scheme::Sts;
    else if (token == "sed")
        *out = Scheme::SedPecc;
    else if (token == "secded")
        *out = Scheme::SecdedPecc;
    else if (token == "pecc-o")
        *out = Scheme::PeccO;
    else if (token == "worst")
        *out = Scheme::PeccSWorst;
    else if (token == "adaptive")
        *out = Scheme::PeccSAdaptive;
    else if (token == "lm-pos")
        *out = Scheme::LmPos;
    else if (token == "del-ins-k")
        *out = Scheme::DelIns;
    else
        return false;
    return true;
}

int
schemeCorrectionStrength(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
      case Scheme::Sts:
        return -1; // no code at all
      case Scheme::SedPecc:
        return 0;
      case Scheme::SecdedPecc:
      case Scheme::PeccO:
      case Scheme::PeccSWorst:
      case Scheme::PeccSAdaptive:
        return 1;
      case Scheme::LmPos:
        return 2; // w = 3 window, T = 8 >= 2m + 2
      case Scheme::DelIns:
        return 2; // k = 2 deletions/insertions per readout
    }
    return -1;
}

ProtectionOverheads
overheadsFor(Scheme scheme)
{
    // Paper Table 5 (45 nm synthesis).
    ProtectionOverheads o;
    switch (scheme) {
      case Scheme::Baseline:
        break;
      case Scheme::Sts:
        o.detect_time = ns(0.82);
        o.detect_energy = pJ(1.31);
        o.correct_time = ns(0.82);
        o.correct_energy = pJ(1.31);
        o.controller_area_um2 = 1.94;
        break;
      case Scheme::SedPecc:
      case Scheme::SecdedPecc:
        o.detect_time = ns(0.34);
        o.detect_energy = pJ(3.73);
        o.correct_time = ns(1.34);
        o.correct_energy = pJ(6.16);
        o.cell_area_overhead = 0.176;
        o.controller_area_um2 = 54.0;
        break;
      case Scheme::PeccO:
        o.detect_time = ns(0.34);
        o.detect_energy = pJ(3.74);
        o.correct_time = ns(1.34);
        o.correct_energy = pJ(9.90);
        o.cell_area_overhead = 0.157;
        o.controller_area_um2 = 54.0;
        break;
      case Scheme::PeccSWorst:
        o.detect_time = ns(0.38);
        o.detect_energy = pJ(3.75);
        o.correct_time = ns(1.35);
        o.correct_energy = pJ(6.17);
        o.cell_area_overhead = 0.176;
        o.controller_area_um2 = 54.3;
        break;
      case Scheme::PeccSAdaptive:
        o.detect_time = ns(0.61);
        o.detect_energy = pJ(3.86);
        o.correct_time = ns(1.37);
        o.correct_energy = pJ(6.19);
        o.cell_area_overhead = 0.176;
        o.controller_area_um2 = 109.4;
        break;
      case Scheme::LmPos:
        // Not in the paper's Table 5: estimated by scaling the
        // SECDED row for the one extra window port / comparator
        // stage (w = 3 vs 2) of the limited-magnitude code.
        o.detect_time = ns(0.38);
        o.detect_energy = pJ(4.10);
        o.correct_time = ns(1.34);
        o.correct_energy = pJ(6.80);
        o.cell_area_overhead = 0.185;
        o.controller_area_um2 = 61.0;
        break;
      case Scheme::DelIns:
        // Estimate: the VT-syndrome decoder is combinational per
        // class, but detection is folded into the streaming readout;
        // storage overhead is the per-track check bits (~log2 L per
        // interleave class) instead of a dedicated code region.
        o.detect_time = ns(0.34);
        o.detect_energy = pJ(4.40);
        o.correct_time = ns(1.50);
        o.correct_energy = pJ(8.20);
        o.cell_area_overhead = 0.130;
        o.controller_area_um2 = 88.0;
        break;
    }
    return o;
}

} // namespace rtm
