#include "area.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rtm
{

double
cellSizeF2(MemTech tech)
{
    switch (tech) {
      case MemTech::SRAM:
        return 125.0; // 6T cell incl. wiring
      case MemTech::STTRAM:
        return 15.6; // 1T1MTJ
      case MemTech::Racetrack:
      case MemTech::RacetrackIdeal:
        return 3.9; // domains sharing 8 ports per 64-bit stripe
    }
    return 0.0;
}

uint64_t
isoAreaCapacityBytes(MemTech tech, uint64_t sram_capacity_bytes)
{
    double ratio = cellSizeF2(MemTech::SRAM) / cellSizeF2(tech);
    return static_cast<uint64_t>(
        static_cast<double>(sram_capacity_bytes) * ratio + 0.5);
}

AreaModel::AreaModel(AreaModelParams params) : params_(params)
{
}

double
AreaModel::stripeArea(int domains, int read_ports, int rw_ports,
                      int write_ports) const
{
    if (domains <= 0)
        rtm_panic("stripeArea: need at least one domain");
    double stripe = params_.f2_per_domain *
                    static_cast<double>(domains);
    double transistors =
        params_.f2_per_read_port * static_cast<double>(read_ports) +
        params_.f2_per_rw_port * static_cast<double>(rw_ports) +
        params_.f2_per_write_port * static_cast<double>(write_ports);
    int total_ports = read_ports + rw_ports + write_ports;
    double peripheral =
        params_.f2_peripheral_fixed +
        params_.f2_peripheral_per_port *
            static_cast<double>(total_ports);
    // The stripe is stacked on the transistors: footprint is the
    // larger of the two layers; peripheral circuitry always adds.
    return std::max(stripe, transistors) + peripheral;
}

double
AreaModel::areaPerDataBit(const PeccConfig &config) const
{
    PeccLayout lay = computeLayout(config);
    // Baseline inventory: data + (Lseg - 1) overhead domains and one
    // read/write port per segment.
    int domains = config.dataDomains() + (config.seg_len - 1) +
                  lay.extraDomains();
    int rw_ports = config.num_segments;
    int read_ports = lay.extraReadPorts();
    int write_ports = lay.extraWritePorts();
    double area = stripeArea(domains, read_ports, rw_ports,
                             write_ports);
    return area / static_cast<double>(config.dataDomains());
}

double
AreaModel::areaPerBitWithPorts(int data_bits, int added_read_ports,
                               int rw_ports) const
{
    // Fig. 7 uses a bare 64-bit stripe: data domains plus overhead
    // equal to one segment's worth per the default mapping.
    int domains = data_bits + data_bits / 8;
    double area = stripeArea(domains, added_read_ports, rw_ports);
    return area / static_cast<double>(data_bits);
}

} // namespace rtm
