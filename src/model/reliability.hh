/**
 * @file
 * Scheme-level reliability mathematics (paper Sec. 6.2).
 *
 * For each protection scheme, a shift of distance N has three failure
 * channels derived from the cyclic-code residue arithmetic:
 *
 *  - corrected: |k| <= m errors, fixed by counter-shifts (with a
 *    second-order term for the correction shift itself failing);
 *  - DUE (detected unrecoverable): the residue of the error falls on
 *    the ambiguous alias (|k| = m+1 for the T = 2m+2 code), or a
 *    correction retry budget is exhausted;
 *  - SDC (silent data corruption): the residue aliases to zero
 *    (|k| = T, 2T, ...) or to a wrong correctable value
 *    (m+2 <= |k| <= T-m-... miscorrection), so reads silently return
 *    the wrong domain.
 *
 * The unprotected baseline turns *every* position error into SDC.
 * SED (m = 0, T = 2) detects odd step errors (DUE, since direction is
 * unknown) and silently passes even ones (SDC) - matching Sec. 3.2.
 *
 * Expected-event accounting works in log space throughout: rates span
 * 1e-3 .. 1e-30.
 */

#ifndef RTM_MODEL_RELIABILITY_HH
#define RTM_MODEL_RELIABILITY_HH

#include <memory>
#include <vector>

#include "codec/shift_code.hh"
#include "device/error_model.hh"
#include "model/tech.hh"
#include "util/units.hh"

namespace rtm
{

/** Log-domain failure decomposition of one shift operation. */
struct ShiftReliability
{
    double log_sdc;       //!< P(silent corruption)
    double log_due;       //!< P(detected unrecoverable)
    double log_corrected; //!< P(error corrected transparently)

    /** All-zero (log -inf) value. */
    static ShiftReliability none();
};

/**
 * Per-scheme reliability evaluator.
 */
class ReliabilityModel
{
  public:
    /**
     * @param model error model (per-distance step-error rates)
     * @param scheme protection scheme (decides m and decomposition)
     * @param codeword_frames frames pooling one codeword: F > 1
     *        boosts the correction radius by log2(F) (the shared
     *        redundancy region of a large codeword holds that many
     *        more check bits per position), re-deriving the code the
     *        decomposition classifies against. 1 is the paper's
     *        per-frame code, bit-identical to the two-arg form.
     */
    ReliabilityModel(const PositionErrorModel *model, Scheme scheme,
                     int codeword_frames = 1);

    /** Failure decomposition of a single N-step shift operation. */
    ShiftReliability shiftOp(int distance) const;

    /**
     * Failure decomposition of a full access served by a sequence of
     * sub-shifts (log-probabilities combine as unions).
     */
    ShiftReliability sequence(const std::vector<int> &parts) const;

    /** Correction strength m implied by the scheme. */
    int correctStrength() const { return correct_; }

    /** Cyclic-code period implied by the scheme. */
    int period() const { return period_; }

    Scheme scheme() const { return scheme_; }

    /** Shift code driving the decomposition (nullptr = unprotected). */
    const ShiftCode *shiftCode() const { return code_.get(); }

  private:
    const PositionErrorModel *model_;
    Scheme scheme_;
    std::shared_ptr<const ShiftCode> code_; //!< scheme's codec
    int correct_; //!< m
    int period_;  //!< T = 2^(m+1)
};

/**
 * Expected-failure accumulator: MTTF from a stream of shift
 * operations (used by the system simulator for Figs. 10-12).
 */
class MttfAccumulator
{
  public:
    /** Record one shift operation's failure decomposition. */
    void add(const ShiftReliability &r, double weight = 1.0);

    /**
     * Record a decomposition whose linear-domain probabilities were
     * exponentiated ahead of time (hot-path memo tables). Passing
     * `exp(log_sdc)` / `exp(log_due)` here accumulates bit-identically
     * to add() with the log-domain values: -inf exponentiates to an
     * exact 0.0, and adding weight * 0.0 leaves the accumulator's
     * value unchanged.
     */
    void addExpected(double sdc_prob, double due_prob, double weight)
    {
        sdc_events_ += weight * sdc_prob;
        due_events_ += weight * due_prob;
    }

    /** Record the simulated-time span covered, in seconds. */
    void addTime(Seconds s) { seconds_ += s; }

    /** Expected SDC events so far. */
    double expectedSdc() const { return sdc_events_; }

    /** Expected DUE events so far. */
    double expectedDue() const { return due_events_; }

    /** Simulated seconds covered. */
    Seconds seconds() const { return seconds_; }

    /** SDC mean time to failure (seconds; +inf if no events). */
    Seconds sdcMttf() const;

    /** DUE mean time to failure (seconds; +inf if no events). */
    Seconds dueMttf() const;

    /** Merge another accumulator (e.g. per-bank shards). */
    void merge(const MttfAccumulator &other);

  private:
    double sdc_events_ = 0.0;
    double due_events_ = 0.0;
    Seconds seconds_ = 0.0;
};

/**
 * Closed-form MTTF for a sustained intensity of identical shifts:
 * Fig. 1's curve and the sensitivity sweeps use this.
 *
 * @param log_fail_per_op log-probability one operation fails
 * @param ops_per_second  failure opportunities per second
 */
Seconds steadyStateMttf(double log_fail_per_op,
                        double ops_per_second);

} // namespace rtm

#endif // RTM_MODEL_RELIABILITY_HH
