/**
 * @file
 * Memory-technology parameters (paper Table 4) and per-operation
 * protection overheads (paper Table 5).
 *
 * All latencies are in 2 GHz cycles, energies in joules, static power
 * in watts, capacities in bytes. SRAM and STT-RAM numbers come from
 * the paper's NVSim-derived Table 4; racetrack numbers from its
 * circuit-level model. The three LLC options occupy (approximately)
 * the same die area: 4 MB SRAM, 32 MB STT-RAM, 128 MB racetrack.
 */

#ifndef RTM_MODEL_TECH_HH
#define RTM_MODEL_TECH_HH

#include <cstdint>
#include <string>

#include "util/units.hh"

namespace rtm
{

/** Memory technology families evaluated in the paper. */
enum class MemTech
{
    SRAM,
    STTRAM,
    Racetrack,
    RacetrackIdeal //!< shift latency/energy removed (Fig. 16 "ideal")
};

/** Human-readable technology name. */
const char *memTechName(MemTech tech);

/**
 * Stable machine-readable token, the inverse of techFromToken:
 * "sram" | "sttram" | "rm" | "rm-ideal". Used by the CLI flags and
 * the experiment-spec JSON schema.
 */
const char *techToken(MemTech tech);

/** Parse a technology token; false (out untouched) when unknown. */
bool techFromToken(const std::string &token, MemTech *out);

/** Timing/energy/capacity description of one cache technology. */
struct TechParams
{
    MemTech tech = MemTech::SRAM;
    uint64_t capacity_bytes = 0;
    Cycles read_latency = 0;
    Cycles write_latency = 0;
    Cycles shift_latency_per_step = 0; //!< racetrack only (1-step)
    Joules read_energy = 0.0;
    Joules write_energy = 0.0;
    Joules shift_energy_per_step = 0.0; //!< racetrack only
    double leakage_watts = 0.0;
};

/** Table 4 L3 options. */
TechParams sramL3();
TechParams sttramL3();
TechParams racetrackL3();
TechParams racetrackIdealL3();
TechParams l3For(MemTech tech);

/** Table 4 L1 (per core) parameters. */
TechParams l1Params();

/** Table 4 L2 (per core pair) parameters. */
TechParams l2Params();

/** Table 4 main memory: DDR3-1600 dual channel. */
struct DramParams
{
    Cycles access_latency = 100;
    Joules access_energy = nJ(38.10);
    double bandwidth_bytes_per_s = 12.8e9;
};

DramParams dramParams();

/** Table 5: per-stripe p-ECC operation overheads. */
struct ProtectionOverheads
{
    Seconds detect_time = 0.0;
    Joules detect_energy = 0.0;
    Seconds correct_time = 0.0;
    Joules correct_energy = 0.0;
    double cell_area_overhead = 0.0; //!< fraction of data capacity
    double controller_area_um2 = 0.0;
};

/** Protection schemes of the evaluation (Figs. 10-18). */
enum class Scheme
{
    Baseline,       //!< RM w/o p-ECC (STS only)
    Sts,            //!< STS driver alone (Table 5 first row)
    SedPecc,        //!< SED p-ECC
    SecdedPecc,     //!< SECDED p-ECC (unconstrained distance)
    PeccO,          //!< SECDED p-ECC-O
    PeccSWorst,     //!< p-ECC-S worst-case safe distance
    PeccSAdaptive,  //!< p-ECC-S adaptive
    LmPos,          //!< limited-magnitude position code (Chee et al.)
    DelIns          //!< k-deletion/insertion track code (Sima-Bruck)
};

/** Human-readable scheme name. */
const char *schemeName(Scheme scheme);

/**
 * Stable machine-readable token, the inverse of schemeFromToken:
 * "baseline" | "sts" | "sed" | "secded" | "pecc-o" | "worst" |
 * "adaptive" | "lm-pos" | "del-ins-k". Used by the CLI flags and the
 * experiment-spec JSON schema.
 */
const char *schemeToken(Scheme scheme);

/** Parse a scheme token; false (out untouched) when unknown. */
bool schemeFromToken(const std::string &token, Scheme *out);

/**
 * Correction radius the scheme's shift code claims: the largest
 * per-operation position error |e| decoded back to the exact data.
 * -1 for the code-less schemes (Baseline/STS), 0 for detect-only SED,
 * 1 for the SECDED p-ECC family, and the configured radius of the
 * shift-code family (lm-pos, del-ins-k). Shared by the analytic
 * reliability model and the bank's shift planner (which clamps at 0).
 */
int schemeCorrectionStrength(Scheme scheme);

/** Table 5 row for a scheme (Baseline/Sed map to cheapest entries). */
ProtectionOverheads overheadsFor(Scheme scheme);

} // namespace rtm

#endif // RTM_MODEL_TECH_HH
