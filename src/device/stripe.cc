#include "stripe.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rtm
{

Bit
invert(Bit b)
{
    switch (b) {
      case Bit::Zero: return Bit::One;
      case Bit::One: return Bit::Zero;
      default: return Bit::X;
    }
}

char
bitChar(Bit b)
{
    switch (b) {
      case Bit::Zero: return '0';
      case Bit::One: return '1';
      default: return 'x';
    }
}

RacetrackStripe::RacetrackStripe(int wire_slots, std::vector<Port> ports,
                                 const PositionErrorModel *model,
                                 Rng rng)
    : wire_(static_cast<size_t>(wire_slots), Bit::X),
      ports_(std::move(ports)), model_(model), rng_(rng)
{
    if (wire_slots <= 0)
        rtm_fatal("stripe needs at least one domain slot");
    if (!model_)
        rtm_fatal("stripe needs an error model (use ZeroErrorModel)");
    for (const auto &p : ports_) {
        if (p.wire_slot < 0 || p.wire_slot >= wire_slots) {
            rtm_fatal("port slot %d outside wire of %d slots",
                      p.wire_slot, wire_slots);
        }
    }
}

const Port &
RacetrackStripe::port(int index) const
{
    if (index < 0 || index >= portCount())
        rtm_panic("port index %d out of range", index);
    return ports_[static_cast<size_t>(index)];
}

void
RacetrackStripe::poke(int slot, Bit value)
{
    if (slot < 0 || slot >= wireSlots())
        rtm_panic("poke slot %d out of range", slot);
    wire_[static_cast<size_t>(slot)] = value;
}

Bit
RacetrackStripe::peek(int slot) const
{
    if (slot < 0 || slot >= wireSlots())
        rtm_panic("peek slot %d out of range", slot);
    return wire_[static_cast<size_t>(slot)];
}

void
RacetrackStripe::moveTape(int actual)
{
    if (actual == 0)
        return;
    int n = wireSlots();
    if (actual > 0) {
        int k = std::min(actual, n);
        // Right shift: slot i receives slot i-k; left end gets X.
        for (int i = n - 1; i >= k; --i)
            wire_[i] = wire_[i - k];
        for (int i = 0; i < k; ++i)
            wire_[i] = Bit::X;
    } else {
        int k = std::min(-actual, n);
        for (int i = 0; i < n - k; ++i)
            wire_[i] = wire_[i + k];
        for (int i = n - k; i < n; ++i)
            wire_[i] = Bit::X;
    }
    true_offset_ += actual;
    steps_moved_ += static_cast<uint64_t>(std::abs(actual));
}

ShiftOutcome
RacetrackStripe::doShift(int distance, bool sts)
{
    ++shift_ops_;
    if (misaligned_) {
        // Walls between notches: a fresh drive pulse re-enters the
        // notch lattice; model this as first completing the pending
        // positive half-step (as STS stage 2 would).
        applyStsStage2();
    }
    if (distance == 0)
        return ShiftOutcome{};
    int magnitude = std::abs(distance);
    int direction = distance > 0 ? 1 : -1;
    ShiftOutcome out = model_->sample(rng_, magnitude, sts);
    // The sampled outcome is expressed in the direction of motion.
    int actual = direction * (magnitude + out.step_error);
    moveTape(actual);
    misaligned_ = out.stop_in_middle;
    return out;
}

ShiftOutcome
RacetrackStripe::shift(int distance)
{
    return doShift(distance, true);
}

ShiftOutcome
RacetrackStripe::shiftRaw(int distance)
{
    return doShift(distance, false);
}

void
RacetrackStripe::resetTracking()
{
    true_offset_ = 0;
    misaligned_ = false;
}

void
RacetrackStripe::applyStsStage2()
{
    if (!misaligned_)
        return;
    // A positive sub-threshold pulse advances walls out of the flat
    // region into the next notch: one more step of tape movement.
    moveTape(1);
    misaligned_ = false;
}

Bit
RacetrackStripe::read(int port_index) const
{
    const Port &p = port(port_index);
    if (misaligned_)
        return Bit::X;
    return wire_[static_cast<size_t>(p.wire_slot)];
}

bool
RacetrackStripe::write(int port_index, Bit value)
{
    const Port &p = port(port_index);
    if (p.kind != PortKind::ReadWrite)
        rtm_panic("write through read-only port %d", port_index);
    if (misaligned_)
        return false;
    wire_[static_cast<size_t>(p.wire_slot)] = value;
    return true;
}

ShiftOutcome
RacetrackStripe::shiftAndWrite(Bit entering, bool from_left)
{
    // Shift-and-write advances exactly one step; the entering domain
    // at the tape end is programmed by the end write port while it
    // passes, so it carries `entering` instead of X.
    ShiftOutcome out = doShift(from_left ? 1 : -1, true);
    int n = wireSlots();
    if (from_left) {
        // Entering domains occupy the left end; the *last* injected
        // one (slot actual-1 .. but after an over-shift several X
        // domains entered; the write port only programmed the final
        // one passing it, which now sits at slot (actual - 1) for
        // actual >= 1. For simplicity and pessimism we program slot
        // 0's neighbour chain: only the domain currently at the end
        // write port, i.e. slot 0 after a correct 1-step shift.
        int slot = 0;
        if (!misaligned_ && slot < n)
            wire_[static_cast<size_t>(slot)] = entering;
    } else {
        int slot = n - 1;
        if (!misaligned_ && slot >= 0)
            wire_[static_cast<size_t>(slot)] = entering;
    }
    return out;
}

} // namespace rtm
