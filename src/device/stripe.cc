#include "stripe.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rtm
{

Bit
invert(Bit b)
{
    switch (b) {
      case Bit::Zero: return Bit::One;
      case Bit::One: return Bit::Zero;
      default: return Bit::X;
    }
}

char
bitChar(Bit b)
{
    switch (b) {
      case Bit::Zero: return '0';
      case Bit::One: return '1';
      default: return 'x';
    }
}

namespace
{

/** Bit::X (value 2, binary 10) replicated into every 2-bit lane. */
constexpr uint64_t kAllX = 0xaaaaaaaaaaaaaaaaULL;
constexpr int kSlotsPerWord = 32;

} // anonymous namespace

Bit
RacetrackStripe::slotGet(int slot) const
{
    const uint64_t w = words_[static_cast<size_t>(slot / kSlotsPerWord)];
    const int sh = (slot % kSlotsPerWord) * 2;
    return static_cast<Bit>((w >> sh) & 3);
}

void
RacetrackStripe::slotSet(int slot, Bit value)
{
    uint64_t &w = words_[static_cast<size_t>(slot / kSlotsPerWord)];
    const int sh = (slot % kSlotsPerWord) * 2;
    w = (w & ~(3ULL << sh)) |
        (static_cast<uint64_t>(value) << sh);
}

void
RacetrackStripe::fixTail()
{
    const int used = slots_ % kSlotsPerWord;
    if (used == 0)
        return;
    const uint64_t mask = (1ULL << (used * 2)) - 1;
    words_.back() = (words_.back() & mask) | (kAllX & ~mask);
}

RacetrackStripe::RacetrackStripe(int wire_slots, std::vector<Port> ports,
                                 const PositionErrorModel *model,
                                 Rng rng)
    : words_(static_cast<size_t>(wire_slots + kSlotsPerWord - 1) /
                 kSlotsPerWord,
             kAllX),
      slots_(wire_slots), ports_(std::move(ports)), model_(model),
      rng_(rng)
{
    if (wire_slots <= 0)
        rtm_fatal("stripe needs at least one domain slot");
    if (!model_)
        rtm_fatal("stripe needs an error model (use ZeroErrorModel)");
    for (const auto &p : ports_) {
        if (p.wire_slot < 0 || p.wire_slot >= wire_slots) {
            rtm_fatal("port slot %d outside wire of %d slots",
                      p.wire_slot, wire_slots);
        }
    }
}

const Port &
RacetrackStripe::port(int index) const
{
    if (index < 0 || index >= portCount())
        rtm_panic("port index %d out of range", index);
    return ports_[static_cast<size_t>(index)];
}

void
RacetrackStripe::poke(int slot, Bit value)
{
    if (slot < 0 || slot >= wireSlots())
        rtm_panic("poke slot %d out of range", slot);
    slotSet(slot, value);
}

Bit
RacetrackStripe::peek(int slot) const
{
    if (slot < 0 || slot >= wireSlots())
        rtm_panic("peek slot %d out of range", slot);
    return slotGet(slot);
}

void
RacetrackStripe::moveTape(int actual)
{
    if (actual == 0)
        return;
    const int n = wireSlots();
    const size_t nw = words_.size();
    if (actual > 0) {
        // Right shift: slot i receives slot i-k; the left end gets X.
        // In packed form that is a funnel shift towards higher bit
        // positions by 2k; out-of-range source words read as all-X,
        // which injects the vacated domains for free.
        const int k = std::min(actual, n);
        const size_t ws = static_cast<size_t>(k) /
                          static_cast<size_t>(kSlotsPerWord);
        const int bs = (k % kSlotsPerWord) * 2;
        for (size_t j = nw; j-- > 0;) {
            const uint64_t lo = j >= ws ? words_[j - ws] : kAllX;
            if (bs == 0) {
                words_[j] = lo;
            } else {
                const uint64_t carry =
                    j >= ws + 1 ? words_[j - ws - 1] : kAllX;
                words_[j] = (lo << bs) | (carry >> (64 - bs));
            }
        }
    } else {
        // Left shift: slot i receives slot i+k. Sources past the end
        // of the wire read as all-X - both past the word array and
        // in the last word's pad lanes, which fixTail keeps at X.
        const int k = std::min(-actual, n);
        const size_t ws = static_cast<size_t>(k) /
                          static_cast<size_t>(kSlotsPerWord);
        const int bs = (k % kSlotsPerWord) * 2;
        for (size_t j = 0; j < nw; ++j) {
            const uint64_t lo = j + ws < nw ? words_[j + ws] : kAllX;
            if (bs == 0) {
                words_[j] = lo;
            } else {
                const uint64_t carry =
                    j + ws + 1 < nw ? words_[j + ws + 1] : kAllX;
                words_[j] = (lo >> bs) | (carry << (64 - bs));
            }
        }
    }
    // Domains shifted past the wire end are destroyed; the pad lanes
    // they crossed into must go back to X.
    fixTail();
    true_offset_ += actual;
    steps_moved_ += static_cast<uint64_t>(std::abs(actual));
}

ShiftOutcome
RacetrackStripe::doShift(int distance, bool sts)
{
    ++shift_ops_;
    if (misaligned_) {
        // Walls between notches: a fresh drive pulse re-enters the
        // notch lattice; model this as first completing the pending
        // positive half-step (as STS stage 2 would).
        applyStsStage2();
    }
    if (distance == 0)
        return ShiftOutcome{};
    int magnitude = std::abs(distance);
    int direction = distance > 0 ? 1 : -1;
    ShiftOutcome out = model_->sample(rng_, magnitude, sts);
    // The sampled outcome is expressed in the direction of motion.
    int actual = direction * (magnitude + out.step_error);
    moveTape(actual);
    misaligned_ = out.stop_in_middle;
    return out;
}

ShiftOutcome
RacetrackStripe::shift(int distance)
{
    return doShift(distance, true);
}

ShiftOutcome
RacetrackStripe::shiftRaw(int distance)
{
    return doShift(distance, false);
}

void
RacetrackStripe::resetTracking()
{
    true_offset_ = 0;
    misaligned_ = false;
}

void
RacetrackStripe::applyStsStage2()
{
    if (!misaligned_)
        return;
    // A positive sub-threshold pulse advances walls out of the flat
    // region into the next notch: one more step of tape movement.
    moveTape(1);
    misaligned_ = false;
}

Bit
RacetrackStripe::read(int port_index) const
{
    const Port &p = port(port_index);
    if (misaligned_)
        return Bit::X;
    return slotGet(p.wire_slot);
}

bool
RacetrackStripe::write(int port_index, Bit value)
{
    const Port &p = port(port_index);
    if (p.kind != PortKind::ReadWrite)
        rtm_panic("write through read-only port %d", port_index);
    if (misaligned_)
        return false;
    slotSet(p.wire_slot, value);
    return true;
}

ShiftOutcome
RacetrackStripe::shiftAndWrite(Bit entering, bool from_left)
{
    // Shift-and-write advances exactly one step; the entering domain
    // at the tape end is programmed by the end write port while it
    // passes, so it carries `entering` instead of X.
    ShiftOutcome out = doShift(from_left ? 1 : -1, true);
    int n = wireSlots();
    if (from_left) {
        // Entering domains occupy the left end; the *last* injected
        // one (slot actual-1 .. but after an over-shift several X
        // domains entered; the write port only programmed the final
        // one passing it, which now sits at slot (actual - 1) for
        // actual >= 1. For simplicity and pessimism we program slot
        // 0's neighbour chain: only the domain currently at the end
        // write port, i.e. slot 0 after a correct 1-step shift.
        int slot = 0;
        if (!misaligned_ && slot < n)
            slotSet(slot, entering);
    } else {
        int slot = n - 1;
        if (!misaligned_ && slot >= 0)
            slotSet(slot, entering);
    }
    return out;
}

} // namespace rtm
