#include "mc_kernel.hh"

#include <cmath>
#include <vector>

namespace rtm
{

const char *
mcTierToken(McTier tier)
{
    return tier == McTier::Fast ? "fast" : "exact";
}

bool
mcTierFromToken(const std::string &token, McTier *tier)
{
    if (token == "exact") {
        *tier = McTier::Exact;
        return true;
    }
    if (token == "fast") {
        *tier = McTier::Fast;
        return true;
    }
    return false;
}

namespace
{

// Dense per-shard histogram window. Deviations land within a few
// notches of zero for any sane DeviceParams, so [-32, 32) absorbs
// essentially every trial; the sparse IntTally only ever sees
// pathological outliers. Flushing once per shard replaces a
// std::map insert per trial with an array increment.
constexpr int64_t kDenseLo = -32;
constexpr size_t kDenseBins = 64;

void
fillNoise(McTier tier, Rng &rng, double *dst, size_t n)
{
    if (tier == McTier::Fast)
        rng.fillGaussianFast(dst, n);
    else
        rng.fillGaussian(dst, n);
}

/**
 * Scatter trial-major draws into a step-major noise plane:
 * plane[k][t] = 0.0 + jitter * z(t, k) - the same scale expression
 * rng.gaussian(0.0, jitter) applies per draw, so exact-tier values
 * are bit-equal to the scalar path's step noise.
 */
void
transposeScale(const double *zbuf, size_t lanes, size_t stride,
               size_t offset, int steps, double jitter, double *noise)
{
    for (int k = 0; k < steps; ++k) {
        double *plane = noise + static_cast<size_t>(k) * lanes;
        const double *src = zbuf + offset + static_cast<size_t>(k);
        for (size_t t = 0; t < lanes; ++t)
            plane[t] = 0.0 + jitter * src[t * stride];
    }
}

/**
 * March the AR(1) recurrence across the whole lane array one step at
 * a time. Per lane this is the identical operation sequence as the
 * scalar walk (rho * dev + noise, then + drift, from dev = 0.0);
 * across lanes it is branch-free over contiguous arrays, which is
 * what lets the compiler vectorise it without -ffast-math.
 */
void
arSweep(const double *noise, int steps, size_t lanes, double rho,
        double drift, double *dev)
{
    for (size_t t = 0; t < lanes; ++t)
        dev[t] = 0.0;
    for (int k = 0; k < steps; ++k) {
        const double *plane = noise + static_cast<size_t>(k) * lanes;
#pragma omp simd
        for (size_t t = 0; t < lanes; ++t)
            dev[t] = rho * dev[t] + plane[t] + drift;
    }
}

} // anonymous namespace

void
mcAccumulate(McTier tier, const McKernelParams &kp, int distance,
             uint64_t trials, Rng &rng, IntTally &step_counts,
             IntTally &middle_counts, RunningStats &deviation)
{
    const size_t steps = static_cast<size_t>(distance);
    std::vector<double> zbuf(kMcBatchTrials * steps);
    std::vector<double> noise(kMcBatchTrials * steps);
    std::vector<double> dev(kMcBatchTrials);
    uint64_t dense_step[kDenseBins] = {};
    uint64_t dense_mid[kDenseBins] = {};
    const double w = kp.notch_half_width;

    for (uint64_t done = 0; done < trials;) {
        const size_t lanes = static_cast<size_t>(
            std::min<uint64_t>(kMcBatchTrials, trials - done));
        fillNoise(tier, rng, zbuf.data(), lanes * steps);
        transposeScale(zbuf.data(), lanes, steps, 0, distance,
                       kp.trial_jitter, noise.data());
        arSweep(noise.data(), distance, lanes, kp.resync_rho,
                kp.trial_drift, dev.data());
        // Classification keeps the scalar path's std::round /
        // std::floor semantics (ties away from zero; the 0.5-add
        // trick mis-rounds 0.49999999999999994), so it stays a
        // scalar loop; the AR sweep and the transforms above are
        // where the lanes pay off.
        for (size_t t = 0; t < lanes; ++t) {
            const double v = dev[t];
            const double nearest = std::round(v);
            if (std::abs(v - nearest) <= w) {
                const int64_t k = static_cast<int64_t>(nearest);
                if (static_cast<uint64_t>(k - kDenseLo) < kDenseBins)
                    ++dense_step[k - kDenseLo];
                else
                    step_counts.add(k);
            } else {
                const int64_t k =
                    static_cast<int64_t>(std::floor(v - w));
                if (static_cast<uint64_t>(k - kDenseLo) < kDenseBins)
                    ++dense_mid[k - kDenseLo];
                else
                    middle_counts.add(k);
            }
            deviation.add(v);
        }
        done += lanes;
    }
    // One flush per shard; IntTally contents are per-key sums, so the
    // deferred adds leave the merged result identical to per-trial
    // inserts.
    for (size_t i = 0; i < kDenseBins; ++i) {
        if (dense_step[i])
            step_counts.add(kDenseLo + static_cast<int64_t>(i),
                            dense_step[i]);
        if (dense_mid[i])
            middle_counts.add(kDenseLo + static_cast<int64_t>(i),
                              dense_mid[i]);
    }
}

void
mcMoments(McTier tier, const McKernelParams &kp, uint64_t trials,
          Rng &rng, RunningStats &d1, RunningStats &d7)
{
    // Each trial draws 1 + 7 gaussians: the 1-step walk's noise
    // first, then the seven 7-step draws, exactly the scalar
    // interleave of simulateDeviation(1) then simulateDeviation(7).
    constexpr size_t kPerTrial = 8;
    std::vector<double> zbuf(kMcBatchTrials * kPerTrial);
    std::vector<double> n1(kMcBatchTrials);
    std::vector<double> n7(kMcBatchTrials * 7);
    std::vector<double> dev1(kMcBatchTrials);
    std::vector<double> dev7(kMcBatchTrials);

    for (uint64_t done = 0; done < trials;) {
        const size_t lanes = static_cast<size_t>(
            std::min<uint64_t>(kMcBatchTrials, trials - done));
        fillNoise(tier, rng, zbuf.data(), lanes * kPerTrial);
        transposeScale(zbuf.data(), lanes, kPerTrial, 0, 1,
                       kp.trial_jitter, n1.data());
        transposeScale(zbuf.data(), lanes, kPerTrial, 1, 7,
                       kp.trial_jitter, n7.data());
        arSweep(n1.data(), 1, lanes, kp.resync_rho, kp.trial_drift,
                dev1.data());
        arSweep(n7.data(), 7, lanes, kp.resync_rho, kp.trial_drift,
                dev7.data());
        // Welford accumulation is order-sensitive; interleave per
        // trial like the scalar loop (each accumulator still sees
        // its samples in trial order).
        for (size_t t = 0; t < lanes; ++t) {
            d1.add(dev1[t]);
            d7.add(dev7[t]);
        }
        done += lanes;
    }
}

} // namespace rtm
