/**
 * @file
 * Composable fault scenarios: non-i.i.d. position-error regimes.
 *
 * The base PositionErrorModel draws every shift outcome independently,
 * which is the regime the paper's rates were measured in — but it is
 * not the regime a controller has to survive. Related work motivates
 * harder ones: shift behaviour is dominated by access-pattern
 * correlation (ShiftsReduce), and burst/multi-step position errors
 * occur in practice (k-deletion codes). A FaultScenario wraps any
 * error model and bends its outcome stream into such a regime:
 *
 *  - BurstScenario: correlated error epochs — every `period` shifts,
 *    `burst_len` consecutive shifts see their error rates multiplied;
 *  - StuckStripeScenario: a wall pinned at a dead notch — every shift
 *    in the stuck window under-shoots by exactly one step until the
 *    wall is freed (window expires);
 *  - DroopScenario: drive-current droop — periodic windows in which
 *    shifts under-shoot with a fixed probability on top of the base
 *    rates;
 *  - SkewScenario: per-stripe process variation — a deterministic
 *    per-stripe rate multiplier derived from the stripe id.
 *
 * Scenarios compose by wrapping one another (the base may itself be a
 * scenario). Planner/reliability code keeps seeing the *nominal*
 * log-probabilities of the innermost model — the adversarial part is
 * only in the sampled reality, which is exactly the robustness test.
 *
 * Scenario state advances once per sampled shift, so a given
 * (scenario, seed, access stream) is bit-reproducible under the
 * sharded RNG scheme of util/parallel.hh. Scenarios are therefore
 * NOT shareable between concurrently-driven stripes: clone() one
 * instance per cell/stripe instead.
 */

#ifndef RTM_DEVICE_FAULT_SCENARIO_HH
#define RTM_DEVICE_FAULT_SCENARIO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "device/error_model.hh"

namespace rtm
{

/** Ground-truth count of what a scenario injected. */
struct InjectionLedger
{
    uint64_t samples = 0;        //!< shift outcomes drawn
    uint64_t injected = 0;       //!< non-ok outcomes returned
    uint64_t step_errors = 0;    //!< pinned-in-wrong-notch outcomes
    uint64_t stop_in_middle = 0; //!< flat-region outcomes

    /** Per-field sum (campaign aggregation). */
    void merge(const InjectionLedger &other);
};

/**
 * Interface: a PositionErrorModel whose sampled outcomes follow a
 * non-i.i.d. regime, with ground-truth injection accounting.
 */
class FaultScenario : public PositionErrorModel
{
  public:
    explicit FaultScenario(
        std::shared_ptr<const PositionErrorModel> base);

    // Probability queries delegate to the wrapped model: planners and
    // reliability math budget against nominal rates while the sampled
    // reality misbehaves.
    double logProbStep(int distance, int step_error) const override;
    double logProbStopInMiddle(int distance,
                               int interval_floor) const override;
    double logProbStepRaw(int distance,
                          int step_error) const override;
    int maxStepError() const override;

    /** Samples via the scenario regime and records the ledger. */
    ShiftOutcome sample(Rng &rng, int distance,
                        bool sts_enabled) const final;

    /** Scenario-specific outcome draw (advances scenario state). */
    virtual ShiftOutcome sampleScenario(Rng &rng, int distance,
                                        bool sts_enabled) const = 0;

    /**
     * Fresh copy of this scenario at the start of its timeline (shift
     * counters and ledger reset; nested scenarios deep-cloned).
     */
    virtual std::unique_ptr<FaultScenario> clone() const = 0;

    /** Short regime name for reports. */
    virtual const char *name() const = 0;

    /** Ground-truth injections so far. */
    const InjectionLedger &ledger() const { return ledger_; }

    /** The wrapped model. */
    const PositionErrorModel *base() const { return base_.get(); }

  protected:
    /**
     * Base pointer for a clone: nested scenarios are deep-cloned so
     * clones never share mutable state; plain models are shared.
     */
    std::shared_ptr<const PositionErrorModel> cloneBase() const;

    std::shared_ptr<const PositionErrorModel> base_;

  private:
    mutable InjectionLedger ledger_;
};

/** Control scenario: the base model's i.i.d. regime, with a ledger. */
class IidScenario : public FaultScenario
{
  public:
    explicit IidScenario(
        std::shared_ptr<const PositionErrorModel> base);

    ShiftOutcome sampleScenario(Rng &rng, int distance,
                                bool sts_enabled) const override;
    std::unique_ptr<FaultScenario> clone() const override;
    const char *name() const override { return "iid"; }
};

/**
 * Correlated burst epochs: every `period` shifts, the first
 * `burst_len` of them sample from rates scaled by `multiplier`.
 */
class BurstScenario : public FaultScenario
{
  public:
    BurstScenario(std::shared_ptr<const PositionErrorModel> base,
                  uint64_t period, uint64_t burst_len,
                  double multiplier);

    ShiftOutcome sampleScenario(Rng &rng, int distance,
                                bool sts_enabled) const override;
    std::unique_ptr<FaultScenario> clone() const override;
    const char *name() const override { return "burst"; }

    /** True if the next sampled shift falls in a burst epoch. */
    bool inBurst() const;

  private:
    uint64_t period_;
    uint64_t burst_len_;
    double multiplier_;
    ScaledErrorModel boosted_;
    mutable uint64_t shift_count_ = 0;
};

/**
 * Stuck stripe: shifts in [stuck_after, stuck_after + stuck_len)
 * under-shoot by exactly one step — a wall pinned at a dead notch
 * that no normal drive frees until the window expires (re-drive).
 */
class StuckStripeScenario : public FaultScenario
{
  public:
    StuckStripeScenario(
        std::shared_ptr<const PositionErrorModel> base,
        uint64_t stuck_after, uint64_t stuck_len);

    ShiftOutcome sampleScenario(Rng &rng, int distance,
                                bool sts_enabled) const override;
    std::unique_ptr<FaultScenario> clone() const override;
    const char *name() const override { return "stuck-stripe"; }

    /** True if the next sampled shift falls in the stuck window. */
    bool stuck() const;

  private:
    uint64_t stuck_after_;
    uint64_t stuck_len_;
    mutable uint64_t shift_count_ = 0;
};

/**
 * Drive-current droop: every `period` shifts, the first `droop_len`
 * additionally under-shoot one step with probability
 * `undershoot_prob` (sagging drive fails to complete the last step).
 */
class DroopScenario : public FaultScenario
{
  public:
    DroopScenario(std::shared_ptr<const PositionErrorModel> base,
                  uint64_t period, uint64_t droop_len,
                  double undershoot_prob);

    ShiftOutcome sampleScenario(Rng &rng, int distance,
                                bool sts_enabled) const override;
    std::unique_ptr<FaultScenario> clone() const override;
    const char *name() const override { return "droop"; }

  private:
    uint64_t period_;
    uint64_t droop_len_;
    double undershoot_prob_;
    mutable uint64_t shift_count_ = 0;
};

/**
 * Per-stripe variation skew: a fixed rate multiplier drawn
 * deterministically from the stripe id (log-normal around 1).
 */
class SkewScenario : public FaultScenario
{
  public:
    SkewScenario(std::shared_ptr<const PositionErrorModel> base,
                 uint64_t stripe_id, double sigma);

    ShiftOutcome sampleScenario(Rng &rng, int distance,
                                bool sts_enabled) const override;
    std::unique_ptr<FaultScenario> clone() const override;
    const char *name() const override { return "skew"; }

    /** The resolved multiplier for this stripe. */
    double factor() const { return factor_; }

  private:
    uint64_t stripe_id_;
    double sigma_;
    double factor_;
    ScaledErrorModel skewed_;
};

/** Deterministic log-normal skew factor for a stripe id. */
double skewFactorFor(uint64_t stripe_id, double sigma);

/** Scenario kinds a campaign can instantiate from a spec. */
enum class ScenarioKind
{
    Iid,
    Burst,
    StuckStripe,
    Droop,
    Skew
};

/** Declarative scenario description (campaign configuration). */
struct ScenarioSpec
{
    ScenarioKind kind = ScenarioKind::Iid;
    std::string name = "iid";

    // Burst parameters.
    uint64_t burst_period = 64;
    uint64_t burst_len = 8;
    double burst_multiplier = 50.0;

    // Stuck-stripe parameters.
    uint64_t stuck_after = 200;
    uint64_t stuck_len = 12;

    // Droop parameters.
    uint64_t droop_period = 128;
    uint64_t droop_len = 32;
    double droop_undershoot_prob = 0.02;

    // Skew parameters.
    uint64_t stripe_id = 7;
    double skew_sigma = 0.6;

    /** Field-wise equality (spec round-trip tests). */
    bool operator==(const ScenarioSpec &o) const
    {
        return kind == o.kind && name == o.name &&
               burst_period == o.burst_period &&
               burst_len == o.burst_len &&
               burst_multiplier == o.burst_multiplier &&
               stuck_after == o.stuck_after &&
               stuck_len == o.stuck_len &&
               droop_period == o.droop_period &&
               droop_len == o.droop_len &&
               droop_undershoot_prob == o.droop_undershoot_prob &&
               stripe_id == o.stripe_id &&
               skew_sigma == o.skew_sigma;
    }
    bool operator!=(const ScenarioSpec &o) const
    {
        return !(*this == o);
    }
};

/** Build a scenario instance over `base` from a spec. */
std::unique_ptr<FaultScenario>
makeScenario(const ScenarioSpec &spec,
             std::shared_ptr<const PositionErrorModel> base);

/** The standard campaign catalogue (one spec per regime). */
std::vector<ScenarioSpec> standardScenarios();

} // namespace rtm

#endif // RTM_DEVICE_FAULT_SCENARIO_HH
