/**
 * @file
 * Analytic shift-timing model (paper Eq. 2).
 *
 * The time for a domain wall to traverse one pitch splits into the
 * flat-region transit T_flat = alpha * L / ((2 alpha - beta) u) and the
 * notch-region transit T_notch = tau * ln(1 + d / delta_l) with
 * tau = alpha * Ms * d / (V * Delta * gamma) and
 * delta_l = u * d * Ms * (2 alpha - beta) / (V * Delta * gamma) - L - d.
 *
 * Raw SI evaluation of these expressions is sensitive to unit choices
 * the paper leaves implicit, so the model carries an explicit
 * calibration factor chosen once so the nominal per-step time matches
 * the paper's architecture-level constant (0.4 ns of stage-1 drive per
 * step at J = 2 J0, Sec. 4.1). All *relative* variation (what the error
 * model consumes) still comes from the closed forms above.
 */

#ifndef RTM_DEVICE_TIMING_HH
#define RTM_DEVICE_TIMING_HH

#include <cstddef>

#include "device/params.hh"

namespace rtm
{

/** Paper constant: stage-1 drive time per step at 2 J0 (Sec. 4.1). */
constexpr double kStage1PerStepSeconds = 0.4e-9;

/** Paper constant: stage-2 (sub-threshold) pulse width (Sec. 4.1). */
constexpr double kStage2PulseSeconds = 1.0e-9;

/**
 * Shift timing evaluator for one device.
 */
class ShiftTiming
{
  public:
    /** Build from nominal parameters; computes the calibration. */
    explicit ShiftTiming(const DeviceParams &params);

    /** Flat-region transit time for the given sampled geometry, s. */
    double flatTime(const SampledParams &s) const;

    /** Notch-region transit time for the given sampled geometry, s. */
    double notchTime(const SampledParams &s) const;

    /** One-pitch transit time for the given sampled geometry, s. */
    double stepTime(const SampledParams &s) const;

    /**
     * Evaluate stepTime for n geometries in one call: out[i] =
     * stepTime(s[i]). Callers that need a cluster of evaluations
     * (the central-difference sensitivity sweep in the Monte-Carlo
     * constructor) hand the whole cluster over at once instead of
     * round-tripping per sample.
     */
    void stepTimes(const SampledParams *s, double *out,
                   size_t n) const;

    /** Nominal (mean-geometry) one-pitch transit time, s. */
    double nominalStepTime() const { return nominal_step_time_; }

    /**
     * Stage-1 pulse width for an n-step shift: n times the nominal
     * step time (the controller cannot know the per-notch geometry).
     */
    double pulseWidth(int steps) const;

    /**
     * True if the drive velocity is above the depinning threshold for
     * the sampled notch (used by the sub-threshold shift model).
     */
    bool aboveThreshold(const SampledParams &s,
                        double current_density) const;

    /** Scale factor applied to raw Eq. 2 outputs (calibration). */
    double calibration() const { return calibration_; }

  private:
    DeviceParams params_;
    double velocity_;          //!< drive velocity u, m/s
    double calibration_ = 1.0; //!< raw-seconds -> calibrated seconds
    double nominal_step_time_;

    double rawFlatTime(const SampledParams &s) const;
    double rawNotchTime(const SampledParams &s) const;
};

} // namespace rtm

#endif // RTM_DEVICE_TIMING_HH
