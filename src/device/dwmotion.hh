/**
 * @file
 * One-dimensional collective-coordinate domain-wall motion model
 * (paper Eq. 1) integrated in the adiabatic (overdamped) limit.
 *
 * Eq. 1 couples the wall position q and tilt angle psi:
 *
 *   (1 + a^2) dq/dt   =  (1/2) g D Hk sin(2 psi) - a g D P(q)
 *                        + (1 + a b) u
 *   (1 + a^2) dpsi/dt = -(1/2) a g Hk sin(2 psi) - g P(q)
 *                        - ((b - a)/D) u
 *
 * with P(q) = V(q) q_loc / (Ms d) the pinning "field" (V(q) is the
 * Table 1 potential depth inside notch regions, zero in flat
 * regions), a/b/g the damping, non-adiabatic torque and gyromagnetic
 * ratio, D the wall width, and u the spin-drift velocity.
 *
 * Far below the Walker breakdown the tilt angle slaves to the slow
 * position coordinate: setting dpsi/dt = 0 and eliminating
 * sin(2 psi) from dq/dt yields the single equation integrated here,
 *
 *   dq/dt = u (2 + a b - b/a) / (1 + a^2) - (g D / a) P(q),
 *
 * which is stiffness-free and - remarkably - self-consistent with
 * the paper's numbers: with Table 1's V = 1.2 J/dm^3 taken verbatim
 * the maximum pinning force matches the drive at u(J0), i.e. the
 * depinning current of the simulated notch falls at the paper's
 * stated threshold J0 = J/2 without any re-fitting.
 *
 * The model reproduces the behaviour the architecture layer relies
 * on: above-threshold drive moves the wall from notch to notch,
 * sub-threshold drive crosses flat regions but cannot leave a notch
 * (the basis of STS), and the wall relaxes into the nearest notch
 * centre when the pulse ends.
 */

#ifndef RTM_DEVICE_DWMOTION_HH
#define RTM_DEVICE_DWMOTION_HH

#include <vector>

#include "device/params.hh"

namespace rtm
{

/** Integrator state for one domain wall. */
struct WallState
{
    double q = 0.0;    //!< position along the wire, m
    double psi = 0.0;  //!< tilt angle (adiabatic value), rad
    double t = 0.0;    //!< elapsed time, s
};

/** One sample point of a simulated trajectory. */
struct TrajectoryPoint
{
    double t;   //!< time, s
    double q;   //!< position, m
    double psi; //!< tilt, rad
};

/**
 * RK4 integration of the adiabatic wall equation over a notched
 * wire. Notch centres sit at integer multiples of the pitch;
 * q = 0 is a notch centre.
 */
class DomainWallModel
{
  public:
    /**
     * @param params device parameters (geometry + material constants)
     * @param anisotropy_field Hk in A/m; only enters the reported
     *        tilt angle (psi is slaved to sin(2 psi) ~ 1/Hk), not
     *        the position dynamics.
     */
    explicit DomainWallModel(const DeviceParams &params,
                             double anisotropy_field = 4.0e4);

    /**
     * Integrate the wall under a constant current density for the
     * given pulse, then let it relax with zero drive.
     *
     * @param initial     starting state (usually pinned at a notch)
     * @param current_density drive current, A/m^2
     * @param pulse_s     drive pulse width, seconds
     * @param relax_s     zero-current relaxation time appended
     * @param dt          integration step, seconds
     * @param trajectory  optional output of sampled points
     * @return final state after pulse + relaxation
     */
    WallState simulatePulse(const WallState &initial,
                            double current_density, double pulse_s,
                            double relax_s, double dt,
                            std::vector<TrajectoryPoint> *trajectory =
                                nullptr) const;

    /**
     * Number of whole steps (notch pitches) between two positions.
     */
    int stepsTravelled(double q_from, double q_to) const;

    /** True if position q lies inside a notch region. */
    bool inNotchRegion(double q) const;

    /** Distance from q to the nearest notch centre, m (signed). */
    double notchOffset(double q) const;

    /** Pitch of the notch lattice, m. */
    double pitch() const { return pitch_; }

    /**
     * Drive velocity at which the pinning force saturates: the
     * simulated depinning threshold, in m/s of spin-drift velocity.
     */
    double depinningVelocity() const;

    /**
     * Time for the wall to traverse one notch-to-notch pitch at the
     * given drive (numerically integrated dq / v(q)); infinite if
     * the drive cannot depin the wall.
     */
    double stepTravelTime(double current_density) const;

  private:
    DeviceParams params_;
    double hk_;     //!< anisotropy field, A/m (psi reporting only)
    double pitch_;  //!< notch spacing, m

    /** Pinning "field" P(q) = V(q) q_loc / (Ms d). */
    double pinningField(double q) const;

    /** Adiabatic position velocity dq/dt at (q, u). */
    double velocity(double q, double u) const;

    /** Adiabatic tilt angle implied by (q, u). */
    double adiabaticPsi(double q, double u) const;
};

} // namespace rtm

#endif // RTM_DEVICE_DWMOTION_HH
