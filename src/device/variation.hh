/**
 * @file
 * Per-stripe process variation and chip screening.
 *
 * Table 1's parameter sigmas lump process (fixed per stripe) and
 * environmental (per operation) variation; the Monte-Carlo
 * extractor resamples both per trial, which the paper also does.
 * This module models the part that matters at chip scale: the
 * *fixed* per-stripe component makes some stripes permanently worse
 * than nominal. Because failure rates sum across stripes, a chip's
 * aggregate error rate exceeds the nominal-stripe prediction by the
 * mean of the per-stripe multiplier (Jensen's inequality on the
 * lognormal), and a small tail of outlier stripes dominates.
 *
 * The paper's answer, in passing: "such rare malfunction racetrack
 * stripes can be disabled during chip testing". This module
 * quantifies that remark - how much screening recovers, and what it
 * costs in capacity.
 */

#ifndef RTM_DEVICE_VARIATION_HH
#define RTM_DEVICE_VARIATION_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace rtm
{

/**
 * Lognormal per-stripe error-rate multiplier model: stripe i's
 * position-error rates are the nominal rates times
 * m_i = exp(sigma * Z_i). The *median* stripe is exactly nominal
 * (device characterisation measures a typical stripe), so the mean
 * multiplier exp(sigma^2 / 2) > 1 is pure tail inflation.
 */
class StripeVariationModel
{
  public:
    /**
     * @param sigma lognormal shape (0 = no process variation;
     *        0.5-1.5 spans optimistic to pessimistic etching)
     */
    explicit StripeVariationModel(double sigma);

    /** Sample one stripe's rate multiplier. */
    double sampleMultiplier(Rng &rng) const;

    /**
     * Sample n multipliers into dst, drawing through the batched
     * Rng::fillGaussian path. Element-for-element identical to n
     * sampleMultiplier calls on the same stream.
     */
    void fillMultipliers(Rng &rng, double *dst, size_t n) const;

    /** Mean multiplier E[m] (the chip-rate inflation factor). */
    double meanMultiplier() const;

    /**
     * Fraction of stripes whose multiplier exceeds `threshold`
     * (the screening candidates).
     */
    double tailFraction(double threshold) const;

    /**
     * Mean multiplier of the stripes that survive screening at
     * `threshold` (disabled stripes excluded and the mean taken
     * over the survivors).
     */
    double screenedMeanMultiplier(double threshold) const;

    double sigma() const { return sigma_; }

  private:
    double sigma_;
};

/** Aggregate effect of screening on one chip. */
struct ScreeningOutcome
{
    double threshold = 0.0;       //!< disable stripes above this
    double disabled_fraction = 0; //!< capacity lost to screening
    double rate_inflation = 1.0;  //!< chip rate vs nominal, after
    double mttf_recovery = 1.0;   //!< MTTF gain vs unscreened
};

/**
 * Evaluate screening at a set of thresholds (analytic, using the
 * lognormal closed forms).
 */
std::vector<ScreeningOutcome>
evaluateScreening(const StripeVariationModel &model,
                  const std::vector<double> &thresholds);

/**
 * Empirical check: sample `stripes` multipliers and compute the
 * realised chip-rate inflation with and without screening at
 * `threshold` (used by tests to validate the closed forms).
 */
ScreeningOutcome
sampleScreening(const StripeVariationModel &model, uint64_t stripes,
                double threshold, Rng &rng);

} // namespace rtm

#endif // RTM_DEVICE_VARIATION_HH
