#include "timing.hh"

#include <cmath>

#include "util/logging.hh"

namespace rtm
{

ShiftTiming::ShiftTiming(const DeviceParams &params)
    : params_(params), velocity_(params.driveVelocity())
{
    if (velocity_ <= 0.0)
        rtm_fatal("non-positive drive velocity");
    SampledParams nominal{params.domain_wall_width,
                          params.pinning_depth,
                          params.pinning_width,
                          params.flat_width};
    double raw = rawFlatTime(nominal) + rawNotchTime(nominal);
    if (raw <= 0.0)
        rtm_fatal("degenerate nominal step time");
    calibration_ = kStage1PerStepSeconds / raw;
    nominal_step_time_ = kStage1PerStepSeconds;
}

double
ShiftTiming::rawFlatTime(const SampledParams &s) const
{
    double two_ab = 2.0 * params_.alpha - params_.beta;
    if (two_ab == 0.0)
        rtm_fatal("2*alpha == beta leads to divergent flat time");
    return params_.alpha * s.flat_width /
           (std::abs(two_ab) * velocity_);
}

double
ShiftTiming::rawNotchTime(const SampledParams &s) const
{
    // tau = alpha * Ms * d / (V * Delta * gamma)
    double tau = params_.alpha * params_.saturation_magnetisation *
                 s.pinning_width /
                 (s.pinning_depth * s.wall_width * params_.gamma);
    // delta_l = u d Ms (2a - b) / (V Delta gamma) - L - d. The paper's
    // unit conventions can drive the subtraction negative; the physical
    // requirement is delta_l > 0 (the wall does escape), so we floor
    // the effective escape length at a small fraction of the notch.
    double two_ab = std::abs(2.0 * params_.alpha - params_.beta);
    double delta_l = velocity_ * s.pinning_width *
                     params_.saturation_magnetisation * two_ab /
                     (s.pinning_depth * s.wall_width * params_.gamma) -
                     s.flat_width - s.pinning_width;
    double floor = 0.05 * s.pinning_width;
    if (delta_l < floor)
        delta_l = floor;
    return tau * std::log1p(s.pinning_width / delta_l);
}

double
ShiftTiming::flatTime(const SampledParams &s) const
{
    return calibration_ * rawFlatTime(s);
}

double
ShiftTiming::notchTime(const SampledParams &s) const
{
    return calibration_ * rawNotchTime(s);
}

double
ShiftTiming::stepTime(const SampledParams &s) const
{
    return flatTime(s) + notchTime(s);
}

void
ShiftTiming::stepTimes(const SampledParams *s, double *out,
                       size_t n) const
{
    for (size_t i = 0; i < n; ++i)
        out[i] = stepTime(s[i]);
}

double
ShiftTiming::pulseWidth(int steps) const
{
    if (steps < 0)
        rtm_panic("pulseWidth(%d): negative distance", steps);
    return nominal_step_time_ * static_cast<double>(steps);
}

bool
ShiftTiming::aboveThreshold(const SampledParams &s,
                            double current_density) const
{
    // Depinning threshold scales linearly with the sampled potential
    // depth relative to nominal: a deeper notch needs more current.
    double j0 = params_.thresholdCurrentDensity() *
                (s.pinning_depth / params_.pinning_depth);
    return current_density > j0;
}

} // namespace rtm
