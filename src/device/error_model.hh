/**
 * @file
 * Position-error models for shift operations.
 *
 * A shift of N steps can end in one of three ways (paper Sec. 3.1):
 *  - success: every wall pinned in its target notch;
 *  - out-of-step (+/-k): walls pinned, but k pitches past/short of the
 *    target;
 *  - stop-in-middle: walls left in a flat region, reads are undefined.
 *
 * Models expose per-distance log-probabilities for both error classes
 * and can sample concrete outcomes for fault injection. The default
 * architecture-level model, PaperCalibratedErrorModel, reproduces the
 * paper's published Table 2 rates (with power-law extrapolation beyond
 * 7 steps) and an associated pre-STS stop-in-middle split, mirroring
 * the paper's methodology of feeding device-model rates into the
 * system simulator.
 */

#ifndef RTM_DEVICE_ERROR_MODEL_HH
#define RTM_DEVICE_ERROR_MODEL_HH

#include <memory>
#include <vector>

#include "util/rng.hh"

namespace rtm
{

/** Result of one attempted shift operation. */
struct ShiftOutcome
{
    /** Signed out-of-step error: walls ended this many steps beyond
     *  (+) or short of (-) the requested distance. */
    int step_error = 0;

    /** True if walls stopped in a flat region (reads undefined).
     *  When set, step_error holds the floor of the resting interval:
     *  the walls sit between step_error and step_error + 1 pitches of
     *  over/under-shift. */
    bool stop_in_middle = false;

    /** True iff the shift landed exactly where requested. */
    bool ok() const { return step_error == 0 && !stop_in_middle; }
};

/**
 * Interface: probability model for position errors of a single stripe
 * shift of a given distance.
 *
 * Probabilities are returned as natural logs; impossible outcomes
 * return -infinity. "after STS" refers to the two-stage sub-threshold
 * shift of Sec. 4.1 which converts stop-in-middle outcomes into
 * out-of-step ones.
 */
class PositionErrorModel
{
  public:
    virtual ~PositionErrorModel() = default;

    /**
     * Log-probability that an N-step shift with STS ends with signed
     * out-of-step error k (k != 0).
     */
    virtual double logProbStep(int distance, int step_error) const = 0;

    /**
     * Log-probability that an N-step shift *without* the STS stage
     * stops in the flat region between over-shift k and k+1.
     */
    virtual double logProbStopInMiddle(int distance,
                                       int interval_floor) const = 0;

    /**
     * Log-probability that an N-step shift *without* STS ends pinned
     * in the wrong notch with signed error k. Post-STS rates fold the
     * flat-region mass into +1 more step, so the raw out-of-step
     * share is strictly smaller; the default assumes no difference.
     */
    virtual double logProbStepRaw(int distance, int step_error) const;

    /**
     * Fill plus[m-1] = logProbStep(distance, +m) and
     * minus[m-1] = logProbStep(distance, -m) for m in
     * [1, max_magnitude]. The default forwards to the scalar calls;
     * models whose adjacent outcomes share work (FittedErrorModel's
     * Gaussian bin boundaries) override it with a batched evaluation
     * that returns bit-identical values.
     */
    virtual void logProbStepRange(int distance, int max_magnitude,
                                  double *plus, double *minus) const;

    /** Log-probability that an N-step shift (with STS) is correct. */
    double logProbSuccess(int distance) const;

    /**
     * Log-probability of any out-of-step error of magnitude >= k for
     * an N-step shift with STS (sum over both signs).
     */
    double logProbAtLeast(int distance, int magnitude) const;

    /** Sample one outcome for an N-step shift. */
    virtual ShiftOutcome sample(Rng &rng, int distance,
                                bool sts_enabled) const;

    /** Largest |k| this model assigns non-negligible probability. */
    virtual int maxStepError() const { return 4; }
};

/**
 * Paper-calibrated model: Table 2 rates for distances 1..7, power-law
 * extrapolation beyond, split between + and - errors by a configurable
 * asymmetry (the paper notes + errors dominate because the drive is
 * above threshold).
 */
class PaperCalibratedErrorModel : public PositionErrorModel
{
  public:
    /**
     * @param plus_fraction share of each |k| rate assigned to +k
     * @param pre_sts_middle_fraction share of the raw per-|k| error
     *        mass that manifests as stop-in-middle before STS
     */
    explicit PaperCalibratedErrorModel(
        double plus_fraction = 0.8,
        double pre_sts_middle_fraction = 0.85);

    double logProbStep(int distance, int step_error) const override;
    double logProbStopInMiddle(int distance,
                               int interval_floor) const override;
    double logProbStepRaw(int distance,
                          int step_error) const override;
    int maxStepError() const override { return 3; }

    /** Combined +/-k rate for an N-step shift (linear domain). */
    double stepErrorRate(int distance, int magnitude) const;

  private:
    double plus_fraction_;
    double middle_fraction_;
};

/** Error-free model for functional testing. */
class ZeroErrorModel : public PositionErrorModel
{
  public:
    double logProbStep(int, int) const override;
    double logProbStopInMiddle(int, int) const override;
    ShiftOutcome sample(Rng &, int, bool) const override;
    int maxStepError() const override { return 0; }
};

/**
 * Wrapper that scales another model's error rates by a constant factor
 * (used by ablation benches and accelerated fault-injection tests).
 */
class ScaledErrorModel : public PositionErrorModel
{
  public:
    ScaledErrorModel(std::shared_ptr<const PositionErrorModel> base,
                     double factor);

    double logProbStep(int distance, int step_error) const override;
    double logProbStopInMiddle(int distance,
                               int interval_floor) const override;
    double logProbStepRaw(int distance,
                          int step_error) const override;
    int maxStepError() const override;

  private:
    std::shared_ptr<const PositionErrorModel> base_;
    double log_factor_;
};

/**
 * Deterministic scripted model: pops outcomes from a fixed list
 * (useful for unit-testing correction logic with exact scenarios).
 */
class ScriptedErrorModel : public PositionErrorModel
{
  public:
    /** Outcomes are consumed in order; afterwards shifts succeed. */
    explicit ScriptedErrorModel(std::vector<ShiftOutcome> script);

    double logProbStep(int, int) const override;
    double logProbStopInMiddle(int, int) const override;
    ShiftOutcome sample(Rng &, int, bool) const override;
    int maxStepError() const override { return 8; }

    /** Outcomes not yet consumed. */
    size_t remaining() const { return script_.size() - pos_; }

  private:
    std::vector<ShiftOutcome> script_;
    mutable size_t pos_ = 0;
};

} // namespace rtm

#endif // RTM_DEVICE_ERROR_MODEL_HH
