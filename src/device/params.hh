/**
 * @file
 * Racetrack-memory device parameters (paper Table 1) and derived
 * electrical quantities.
 *
 * The nominal values and standard deviations follow Table 1 of the
 * paper; material constants (damping, non-adiabatic torque, gyromagnetic
 * ratio, saturation magnetisation) follow the permalloy in-plane model
 * the paper builds on (Hayashi's 1-D collective-coordinate model).
 */

#ifndef RTM_DEVICE_PARAMS_HH
#define RTM_DEVICE_PARAMS_HH

#include "util/rng.hh"

namespace rtm
{

/**
 * Nominal device parameters with process/environmental variation.
 *
 * All lengths are in metres, the pinning potential depth in J/m^3,
 * current density in A/m^2, and times in seconds.
 */
struct DeviceParams
{
    // --- Table 1 nominal values -------------------------------------
    double domain_wall_width = 5.0e-9;    //!< Delta, m
    double pinning_depth = 1.2e3;         //!< V, J/m^3 (1.2 J/dm^3)
    double pinning_width = 45.0e-9;       //!< d, m (notch region)
    double flat_width = 150.0e-9;         //!< L, m (flat region)

    // --- Table 1 relative standard deviations -----------------------
    double sigma_wall_width = 0.02;   //!< sigma_Delta / Delta
    double sigma_depth = 0.02;        //!< sigma_V / V
    double sigma_width = 0.05;        //!< sigma_d / d
    double sigma_flat = 0.05;         //!< sigma_L / d (as printed)

    // --- material constants (in-plane permalloy) --------------------
    // beta < alpha gives forward wall propagation in the
    // collective-coordinate form of Eq. 1 and keeps the Eq. 2 flat
    // time finite (it diverges at beta = 2 alpha).
    double alpha = 0.02;              //!< Gilbert damping
    double beta = 0.01;               //!< non-adiabatic torque
    double gamma = 1.76e11;           //!< gyromagnetic ratio, rad/(s T)
    double saturation_magnetisation = 8.6e5; //!< Ms, A/m
    double spin_polarisation = 0.5;   //!< P

    // --- drive ------------------------------------------------------
    /**
     * Shift current density J. The paper selects J = 2 * J0 where J0
     * is the threshold density (1.24 A/um^2 total by calculation).
     */
    double shift_current_density = 1.24e12; //!< A/m^2

    /** Overdrive ratio J / J0 used by the drive circuit. */
    double overdrive = 2.0;

    /** One notch-to-notch pitch (flat + notch region), metres. */
    double pitch() const { return flat_width + pinning_width; }

    /** Fraction of a pitch occupied by the notch region. */
    double notchFraction() const { return pinning_width / pitch(); }

    /**
     * Threshold current density J0 below which a pinned wall cannot
     * leave a notch region (derived from the pinning potential).
     */
    double thresholdCurrentDensity() const;

    /**
     * Spin-drift velocity u for a given current density, m/s.
     * u = J * P * muB / (e * Ms).
     */
    double spinVelocity(double current_density) const;

    /** Spin velocity at the configured shift current. */
    double driveVelocity() const;
};

/**
 * Perpendicular-anisotropy material preset (paper Sec. 3.1 and its
 * reference [48]): much smaller domains (higher density) but larger
 * relative process variation, hence higher position-error rates.
 * The in-plane defaults above are the paper's evaluated material.
 */
DeviceParams perpendicularMaterial();

/**
 * One concrete sample of the varying parameters, drawn around the
 * nominal DeviceParams. Process variation is per-stripe (fixed for a
 * device); environmental variation is per-operation. The Monte-Carlo
 * extractor treats both by resampling per trial, as the paper does.
 */
struct SampledParams
{
    double wall_width;
    double pinning_depth;
    double pinning_width;
    double flat_width;
};

/** Draw one variation sample. Values are clamped to stay positive. */
SampledParams sampleParams(const DeviceParams &nominal, Rng &rng);

} // namespace rtm

#endif // RTM_DEVICE_PARAMS_HH
