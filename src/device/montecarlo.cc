#include "montecarlo.hh"

#include <cmath>
#include <vector>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace rtm
{

namespace
{

/** Notch half width in pitch units for the nominal geometry. */
double
notchHalfWidth(const DeviceParams &p)
{
    return 0.5 * p.pinning_width / p.pitch();
}

/**
 * Shard sizing for the batched kernels. The exact tier keeps the
 * historical shardSize() split so its per-shard draw streams (and
 * hence the golden digests) are unchanged; the fast tier aligns
 * shards to the batch granule so every shard's fill sizes - and
 * therefore its batch-order draw stream - are a pure function of
 * (trials, shard index).
 */
uint64_t
mcShardSize(McTier tier, uint64_t trials, size_t shards, size_t s)
{
    if (tier == McTier::Fast)
        return alignedShardSize(trials, shards, s, kMcBatchTrials);
    return shardSize(trials, shards, s);
}

} // anonymous namespace

uint64_t
ErrorPdf::tallyTrials() const
{
    return step_counts.total() + middle_counts.total();
}

void
ErrorPdf::merge(const ErrorPdf &other)
{
    if (other.tallyTrials() == 0 && other.trials == 0)
        return;
    if (tallyTrials() == 0 && trials == 0)
        distance = other.distance;
    if (distance != other.distance)
        rtm_panic("ErrorPdf::merge: distance %d vs %d", distance,
                  other.distance);
    if (trials != tallyTrials() ||
        other.trials != other.tallyTrials())
        rtm_panic("ErrorPdf::merge: trials field out of sync with "
                  "tallies (%llu vs %llu, other %llu vs %llu)",
                  static_cast<unsigned long long>(trials),
                  static_cast<unsigned long long>(tallyTrials()),
                  static_cast<unsigned long long>(other.trials),
                  static_cast<unsigned long long>(
                      other.tallyTrials()));
    step_counts.merge(other.step_counts);
    middle_counts.merge(other.middle_counts);
    deviation.merge(other.deviation);
    trials += other.trials;
}

double
ErrorPdf::stepProbability(int k) const
{
    uint64_t n = tallyTrials();
    if (n == 0)
        return 0.0;
    return static_cast<double>(step_counts.count(k)) /
           static_cast<double>(n);
}

double
ErrorPdf::middleProbability(int k) const
{
    uint64_t n = tallyTrials();
    if (n == 0)
        return 0.0;
    return static_cast<double>(middle_counts.count(k)) /
           static_cast<double>(n);
}

PositionErrorMonteCarlo::PositionErrorMonteCarlo(
    const DeviceParams &params, uint64_t seed, McTier tier)
    : params_(params), timing_(params), rng_(seed), tier_(tier)
{
    // Re-synchronisation strength: the fraction of an arrival-time
    // deviation a notch transit absorbs. A wall that arrives early is
    // slowed inside the notch for longer (and vice versa); the effect
    // scales with how much of the pitch the notch occupies and with
    // how hard the notch brakes the wall relative to the drive
    // (J0/J, weakened at overdrive). The resulting rho ~ 0.4 matches
    // the sub-sqrt growth of the paper's Table 2 +/-1 column between
    // 1-step and 7-step shifts.
    double geometric = params.pinning_width / params.pitch();
    double braking = 0.75 / params.overdrive;
    double absorb = std::min(0.95, geometric + braking);
    resync_rho_ = 1.0 - absorb;

    step_jitter_ = computeStepJitter();

    // Drive dependence (paper Sec. 3.1: "If J is too small, the rate
    // of under-shifted position errors increases. On the contrary,
    // if it is too large, the rate of over-shifted errors
    // increases"): near the depinning threshold the notch transit
    // time diverges, so both the per-step jitter and a *negative*
    // (late-arrival) drift grow as J -> J0; far above threshold the
    // margin built into the pulse width turns into a positive
    // (over-shoot) drift. Both terms are normalised so the paper's
    // operating point J = 2*J0 keeps the Table 2 calibration. All of
    // this depends only on DeviceParams, so it is computed once here
    // instead of on every trial.
    double margin = params_.overdrive - 1.0; // (J - J0) / J0
    if (margin < 0.05)
        margin = 0.05;
    trial_jitter_ = step_jitter_ * std::sqrt(1.0 / margin);
    trial_drift_ = 0.5 * trial_jitter_ * trial_jitter_ +
                   0.01 * (params_.overdrive - 1.0) -
                   0.008 / margin;
}

double
PositionErrorMonteCarlo::computeStepJitter() const
{
    // Relative std. dev. of one step's transit time, from linearised
    // Eq. 2 sensitivities to the Table 1 parameter variations.
    SampledParams nominal{params_.domain_wall_width,
                          params_.pinning_depth,
                          params_.pinning_width, params_.flat_width};
    double t0 = timing_.stepTime(nominal);

    // Numerical sensitivities via central differences. The whole
    // perturbation cluster (4 parameters x 2 sides) goes through one
    // batched stepTimes call; values are identical to per-sample
    // stepTime evaluations.
    constexpr double eps = 1e-4;
    SampledParams probes[8];
    for (int i = 0; i < 4; ++i) {
        for (int side = 0; side < 2; ++side) {
            double rel = side == 0 ? eps : -eps;
            SampledParams s = nominal;
            switch (i) {
              case 0: s.wall_width *= (1.0 + rel); break;
              case 1: s.pinning_depth *= (1.0 + rel); break;
              case 2: s.pinning_width *= (1.0 + rel); break;
              default: s.flat_width *= (1.0 + rel); break;
            }
            probes[2 * i + side] = s;
        }
    }
    double times[8];
    timing_.stepTimes(probes, times, 8);
    double sigmas[4] = {params_.sigma_wall_width, params_.sigma_depth,
                        params_.sigma_width,
                        params_.sigma_flat * params_.pinning_width /
                            params_.flat_width};
    double var = 0.0;
    for (int i = 0; i < 4; ++i) {
        double dt = (times[2 * i] - times[2 * i + 1]) / (2.0 * eps);
        double contrib = dt * sigmas[i] / t0;
        var += contrib * contrib;
    }
    return std::sqrt(var);
}

double
PositionErrorMonteCarlo::simulateDeviation(int distance, Rng &rng)
    const
{
    if (distance < 1)
        rtm_panic("simulateDeviation: distance must be >= 1");
    // Deviation is tracked in time units relative to the nominal step
    // time and converted to pitches at the end (the wall front moves
    // one pitch per nominal step time while driven). The drive-scaled
    // jitter/drift constants are cached at construction.
    double dev = 0.0; // pitches, positive = ahead of schedule
    for (int i = 0; i < distance; ++i) {
        // Per-notch geometry sample perturbs this step's transit.
        double step_noise = rng.gaussian(0.0, trial_jitter_);
        dev = resync_rho_ * dev + step_noise + trial_drift_;
    }
    return dev;
}

void
PositionErrorMonteCarlo::classify(double deviation, ErrorPdf &pdf)
    const
{
    double w = notchHalfWidth(params_);
    double nearest = std::round(deviation);
    if (std::abs(deviation - nearest) <= w) {
        pdf.step_counts.add(static_cast<int64_t>(nearest));
    } else {
        pdf.middle_counts.add(
            static_cast<int64_t>(std::floor(deviation - w)));
    }
    pdf.deviation.add(deviation);
}

ErrorPdf
PositionErrorMonteCarlo::run(int distance, uint64_t trials)
{
    ScopedPhase phase("mc.run");
    const double t0 = telemetry_ ? telemetryNowSeconds() : 0.0;
    // The shard count depends only on the trial count and each shard
    // owns an RNG forked deterministically from rng_ in shard order,
    // so the result is a pure function of (seed, trials) no matter
    // how many workers execute the shards.
    size_t shards = shardCount(trials);
    if (shards == 0) {
        ErrorPdf empty;
        empty.distance = distance;
        return empty;
    }
    std::vector<Rng> rngs;
    rngs.reserve(shards);
    for (size_t s = 0; s < shards; ++s)
        rngs.push_back(rng_.fork());
    if (distance < 1)
        rtm_panic("run: distance must be >= 1");
    McKernelParams kp{resync_rho_, trial_jitter_, trial_drift_,
                      notchHalfWidth(params_)};
    McTier tier = tier_;
    ErrorPdf pdf = shardedMapReduce<ErrorPdf>(
        shards,
        [&](size_t s) {
            ErrorPdf part;
            part.distance = distance;
            if (stop_ && stop_->poll())
                return part;
            uint64_t n = mcShardSize(tier, trials, shards, s);
            part.trials = n;
            Rng rng = rngs[s];
            mcAccumulate(tier, kp, distance, n, rng,
                         part.step_counts, part.middle_counts,
                         part.deviation);
            return part;
        },
        [](ErrorPdf &acc, const ErrorPdf &part) {
            acc.merge(part);
        });
    pdf.distance = distance;
    if (telemetry_) {
        // Recorded post-reduce on the calling thread: the workers
        // never see the sink, so no synchronisation is needed and
        // the merge discipline stays with shardedMapReduce.
        telemetry_->counter("device.mc.runs").add();
        telemetry_->counter("device.mc.trials").add(trials);
        telemetry_->gauge("device.mc.last_distance")
            .set(static_cast<double>(distance));
        telemetry_->gauge("device.mc.deviation_mean")
            .set(pdf.deviation.mean());
        telemetry_->gauge("device.mc.deviation_stddev")
            .set(pdf.deviation.stddev());
        telemetry_->gauge("device.mc.step_jitter").set(step_jitter_);
        telemetry_->gauge("device.mc.resync_rho").set(resync_rho_);
        const double wall = telemetryNowSeconds() - t0;
        telemetry_->event(EventKind::Span, "mc.run",
                          static_cast<uint64_t>(t0 * 1e6),
                          wall * 1e6, static_cast<double>(distance));
    }
    return pdf;
}

ErrorPdf
PositionErrorMonteCarlo::runScalarReference(int distance,
                                            uint64_t trials)
{
    // Frozen pre-batching path: per-trial walk + classify over the
    // same shard structure. Kept callable so tests and micro_ops
    // --check can assert the exact tier never drifts from it.
    size_t shards = shardCount(trials);
    if (shards == 0) {
        ErrorPdf empty;
        empty.distance = distance;
        return empty;
    }
    std::vector<Rng> rngs;
    rngs.reserve(shards);
    for (size_t s = 0; s < shards; ++s)
        rngs.push_back(rng_.fork());
    ErrorPdf pdf = shardedMapReduce<ErrorPdf>(
        shards,
        [&](size_t s) {
            ErrorPdf part;
            part.distance = distance;
            if (stop_ && stop_->poll())
                return part;
            uint64_t n = shardSize(trials, shards, s);
            part.trials = n;
            Rng rng = rngs[s];
            for (uint64_t i = 0; i < n; ++i)
                classify(simulateDeviation(distance, rng), part);
            return part;
        },
        [](ErrorPdf &acc, const ErrorPdf &part) {
            acc.merge(part);
        });
    pdf.distance = distance;
    return pdf;
}

FittedErrorModel
PositionErrorMonteCarlo::fitModel(uint64_t trials_per_distance)
{
    ScopedPhase phase("mc.fit");
    const double t0 = telemetry_ ? telemetryNowSeconds() : 0.0;
    // Fit sigma_step / rho / drift from measured moments at short and
    // long distances. With AR(1) variance
    //   var(N) = s^2 (1 - rho^N) / (1 - rho),
    // var(1) = s^2 pins s directly; rho comes from var at N=7.
    // Sharded like run(): per-shard forked RNGs, reduced in order.
    struct Moments
    {
        RunningStats d1, d7;
    };
    size_t shards = shardCount(trials_per_distance);
    std::vector<Rng> rngs;
    rngs.reserve(shards);
    for (size_t s = 0; s < shards; ++s)
        rngs.push_back(rng_.fork());
    McKernelParams kp{resync_rho_, trial_jitter_, trial_drift_,
                      notchHalfWidth(params_)};
    McTier tier = tier_;
    Moments m = shardedMapReduce<Moments>(
        shards,
        [&](size_t s) {
            Moments part;
            if (stop_ && stop_->poll())
                return part;
            uint64_t n = mcShardSize(tier, trials_per_distance,
                                     shards, s);
            Rng rng = rngs[s];
            mcMoments(tier, kp, n, rng, part.d1, part.d7);
            return part;
        },
        [](Moments &acc, const Moments &part) {
            acc.d1.merge(part.d1);
            acc.d7.merge(part.d7);
        });
    FittedModelParams fit;
    fit.sigma_step = m.d1.stddev();
    double ratio = m.d7.variance() / std::max(m.d1.variance(), 1e-30);
    // Solve (1 - rho^7) / (1 - rho) = ratio by bisection on [0, 1).
    double lo = 0.0, hi = 0.999;
    for (int it = 0; it < 60; ++it) {
        double mid = 0.5 * (lo + hi);
        double v = (1.0 - std::pow(mid, 7.0)) / (1.0 - mid);
        (v < ratio ? lo : hi) = mid;
    }
    fit.resync_rho = 0.5 * (lo + hi);
    // Stationary drift: mean(1) = drift (first step has no memory).
    fit.drift = m.d1.mean();
    fit.notch_half_width = notchHalfWidth(params_);
    if (telemetry_) {
        telemetry_->counter("device.mc.fits").add();
        telemetry_->counter("device.mc.trials")
            .add(2 * trials_per_distance);
        telemetry_->gauge("device.mc.fit.sigma_step")
            .set(fit.sigma_step);
        telemetry_->gauge("device.mc.fit.resync_rho")
            .set(fit.resync_rho);
        telemetry_->gauge("device.mc.fit.drift").set(fit.drift);
        const double wall = telemetryNowSeconds() - t0;
        telemetry_->event(EventKind::Span, "mc.fit",
                          static_cast<uint64_t>(t0 * 1e6),
                          wall * 1e6);
    }
    return FittedErrorModel(fit);
}

} // namespace rtm
