/**
 * @file
 * Functional model of one racetrack-memory stripe (nanowire).
 *
 * The wire is a fixed array of domain slots. Shifting moves every
 * domain's content along the wire: a right shift by k moves slot i's
 * value to slot i+k, injects k undefined domains at the left end, and
 * destroys the k right-most domains (data loss at the wire ends is
 * physical and is exactly what guard domains protect against).
 *
 * Position errors are injected at shift time from a PositionErrorModel:
 * the *requested* distance and the *actual* distance may differ, and a
 * stop-in-middle outcome leaves every read undefined until a
 * re-aligning operation (STS stage 2) completes.
 *
 * The stripe itself has no notion of p-ECC or segments; those live in
 * the codec and control layers, which decide where ports are placed
 * and what the believed cumulative offset is.
 *
 * Storage is packed: 2 bits per domain, 32 domains per 64-bit word,
 * so a shift moves whole words with a funnel shift instead of one
 * byte per domain. Public semantics (tri-state values, data loss at
 * the ends, X injection) are unchanged from the per-domain
 * representation.
 */

#ifndef RTM_DEVICE_STRIPE_HH
#define RTM_DEVICE_STRIPE_HH

#include <cstdint>
#include <vector>

#include "device/error_model.hh"
#include "util/rng.hh"

namespace rtm
{

/** Tri-state domain content: 0, 1, or undefined. */
enum class Bit : uint8_t
{
    Zero = 0,
    One = 1,
    X = 2 //!< undefined (freshly injected domain or misaligned read)
};

/** Flip a defined bit; X stays X. */
Bit invert(Bit b);

/** Convert to char for debugging ('0', '1', 'x'). */
char bitChar(Bit b);

/** Kinds of access ports along the wire (paper Fig. 2). */
enum class PortKind : uint8_t
{
    ReadOnly,  //!< sense amplifier only
    ReadWrite  //!< sense + write drivers (2 extra reference domains)
};

/** One access port attached at a fixed wire slot. */
struct Port
{
    int wire_slot = 0;
    PortKind kind = PortKind::ReadOnly;
};

/**
 * Functional stripe with fault injection.
 */
class RacetrackStripe
{
  public:
    /**
     * @param wire_slots total number of domain slots on the wire
     * @param ports      access ports (slots must be within the wire)
     * @param model      position-error model (may be ZeroErrorModel)
     * @param rng        RNG used for fault injection
     */
    RacetrackStripe(int wire_slots, std::vector<Port> ports,
                    const PositionErrorModel *model, Rng rng);

    /** Number of domain slots on the wire. */
    int wireSlots() const { return slots_; }

    /** Number of attached ports. */
    int portCount() const { return static_cast<int>(ports_.size()); }

    /** Port descriptor (for layout introspection). */
    const Port &port(int index) const;

    /** Set a domain's content directly (initialisation only). */
    void poke(int slot, Bit value);

    /** Inspect a domain's content directly (testing only). */
    Bit peek(int slot) const;

    /**
     * Shift the tape by the requested distance with STS enabled.
     * Positive = right. A position error sampled from the model may
     * change the actual movement. Returns the injected outcome so
     * callers (tests, stats) can observe ground truth; production
     * controllers must *not* branch on it.
     */
    ShiftOutcome shift(int distance);

    /**
     * Shift without the STS stage: outcomes may be stop-in-middle.
     */
    ShiftOutcome shiftRaw(int distance);

    /**
     * Apply a (positive-direction) sub-threshold stage-2 pulse: a
     * stop-in-middle state resolves by advancing walls to the next
     * notch; an aligned tape is unaffected.
     */
    void applyStsStage2();

    /** Read the domain under a port (X while misaligned). */
    Bit read(int port_index) const;

    /**
     * Write through a read/write port. @pre the port is ReadWrite.
     * Writing while misaligned is rejected (returns false): the
     * shift-based write cannot land on a wall boundary.
     */
    bool write(int port_index, Bit value);

    /**
     * Shift right by one step and write a bit into the left-most
     * domain as it enters (the p-ECC-O "shift-and-write", which needs
     * a write port at the wire end). Subject to fault injection like
     * any other 1-step shift.
     */
    ShiftOutcome shiftAndWrite(Bit entering, bool from_left);

    /** True if the last shift left walls between notches. */
    bool misaligned() const { return misaligned_; }

    /**
     * Ground-truth cumulative offset actually applied (steps, right
     * positive). Controllers track their own believed offset; the
     * difference is the current position error.
     */
    int trueOffset() const { return true_offset_; }

    /**
     * Reset the ground-truth position bookkeeping to "home".
     * For use by initialisation paths that rebuild the physical
     * contents via poke(): after a rebuild the tape *is* at its
     * home alignment, so the stale offset/misalignment state from
     * before the rebuild must not survive it.
     */
    void resetTracking();

    /** Total shift steps actually moved (for energy accounting). */
    uint64_t stepsMoved() const { return steps_moved_; }

    /** Number of shift operations attempted. */
    uint64_t shiftOps() const { return shift_ops_; }

  private:
    /** Packed domains: 2 bits per slot, 32 slots per word, slot i in
     *  bits [2*(i%32), 2*(i%32)+1) of words_[i/32]. Lanes past
     *  slots_ in the last word always hold Bit::X, so word-level
     *  shifts pull well-defined values across the wire ends. */
    std::vector<uint64_t> words_;
    int slots_;
    std::vector<Port> ports_;
    const PositionErrorModel *model_;
    Rng rng_;
    bool misaligned_ = false;
    int true_offset_ = 0;
    uint64_t steps_moved_ = 0;
    uint64_t shift_ops_ = 0;

    Bit slotGet(int slot) const;
    void slotSet(int slot, Bit value);

    /** Restore the all-X invariant on the last word's pad lanes. */
    void fixTail();

    /** Move tape content by the actual distance (with data loss). */
    void moveTape(int actual);

    ShiftOutcome doShift(int distance, bool sts);
};

} // namespace rtm

#endif // RTM_DEVICE_STRIPE_HH
