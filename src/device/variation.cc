#include "variation.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

StripeVariationModel::StripeVariationModel(double sigma)
    : sigma_(sigma)
{
    if (sigma_ < 0.0)
        rtm_fatal("variation sigma must be non-negative");
}

double
StripeVariationModel::sampleMultiplier(Rng &rng) const
{
    return std::exp(sigma_ * rng.gaussian());
}

void
StripeVariationModel::fillMultipliers(Rng &rng, double *dst,
                                      size_t n) const
{
    // Batched draw, then an exp over the contiguous block; the draw
    // stream and values match n sampleMultiplier calls exactly.
    rng.fillGaussian(dst, n);
    for (size_t i = 0; i < n; ++i)
        dst[i] = std::exp(sigma_ * dst[i]);
}

double
StripeVariationModel::meanMultiplier() const
{
    return std::exp(0.5 * sigma_ * sigma_);
}

double
StripeVariationModel::tailFraction(double threshold) const
{
    if (threshold <= 0.0)
        return 1.0;
    if (sigma_ == 0.0)
        return threshold < 1.0 ? 1.0 : 0.0;
    return normalTail(std::log(threshold) / sigma_);
}

double
StripeVariationModel::screenedMeanMultiplier(double threshold) const
{
    if (sigma_ == 0.0)
        return 1.0;
    double z = std::log(threshold) / sigma_;
    double keep = 1.0 - normalTail(z);
    if (keep <= 0.0)
        return 0.0;
    // E[m; m <= t] = exp(s^2/2) * Phi(z - s) for lognormal m.
    double partial =
        meanMultiplier() * (1.0 - normalTail(z - sigma_));
    return partial / keep;
}

std::vector<ScreeningOutcome>
evaluateScreening(const StripeVariationModel &model,
                  const std::vector<double> &thresholds)
{
    std::vector<ScreeningOutcome> out;
    double unscreened = model.meanMultiplier();
    for (double t : thresholds) {
        ScreeningOutcome o;
        o.threshold = t;
        o.disabled_fraction = model.tailFraction(t);
        o.rate_inflation = model.screenedMeanMultiplier(t);
        o.mttf_recovery =
            o.rate_inflation > 0.0 ? unscreened / o.rate_inflation
                                   : 0.0;
        out.push_back(o);
    }
    return out;
}

ScreeningOutcome
sampleScreening(const StripeVariationModel &model, uint64_t stripes,
                double threshold, Rng &rng)
{
    ScreeningOutcome o;
    o.threshold = threshold;
    double sum_all = 0.0, sum_kept = 0.0;
    uint64_t kept = 0;
    // Multipliers come from the batched fill (same draws as the
    // scalar loop); accumulation stays in sample order.
    constexpr uint64_t kBlock = 4096;
    std::vector<double> mult(static_cast<size_t>(
        std::min<uint64_t>(kBlock, stripes ? stripes : 1)));
    for (uint64_t i = 0; i < stripes;) {
        const size_t block = static_cast<size_t>(
            std::min<uint64_t>(kBlock, stripes - i));
        model.fillMultipliers(rng, mult.data(), block);
        for (size_t j = 0; j < block; ++j) {
            double m = mult[j];
            sum_all += m;
            if (m <= threshold) {
                sum_kept += m;
                ++kept;
            }
        }
        i += block;
    }
    o.disabled_fraction =
        1.0 - static_cast<double>(kept) /
                  static_cast<double>(stripes);
    o.rate_inflation =
        kept ? sum_kept / static_cast<double>(kept) : 0.0;
    double unscreened = sum_all / static_cast<double>(stripes);
    o.mttf_recovery = o.rate_inflation > 0.0
                          ? unscreened / o.rate_inflation
                          : 0.0;
    return o;
}

} // namespace rtm
