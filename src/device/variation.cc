#include "variation.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

StripeVariationModel::StripeVariationModel(double sigma)
    : sigma_(sigma)
{
    if (sigma_ < 0.0)
        rtm_fatal("variation sigma must be non-negative");
}

double
StripeVariationModel::sampleMultiplier(Rng &rng) const
{
    return std::exp(sigma_ * rng.gaussian());
}

double
StripeVariationModel::meanMultiplier() const
{
    return std::exp(0.5 * sigma_ * sigma_);
}

double
StripeVariationModel::tailFraction(double threshold) const
{
    if (threshold <= 0.0)
        return 1.0;
    if (sigma_ == 0.0)
        return threshold < 1.0 ? 1.0 : 0.0;
    return normalTail(std::log(threshold) / sigma_);
}

double
StripeVariationModel::screenedMeanMultiplier(double threshold) const
{
    if (sigma_ == 0.0)
        return 1.0;
    double z = std::log(threshold) / sigma_;
    double keep = 1.0 - normalTail(z);
    if (keep <= 0.0)
        return 0.0;
    // E[m; m <= t] = exp(s^2/2) * Phi(z - s) for lognormal m.
    double partial =
        meanMultiplier() * (1.0 - normalTail(z - sigma_));
    return partial / keep;
}

std::vector<ScreeningOutcome>
evaluateScreening(const StripeVariationModel &model,
                  const std::vector<double> &thresholds)
{
    std::vector<ScreeningOutcome> out;
    double unscreened = model.meanMultiplier();
    for (double t : thresholds) {
        ScreeningOutcome o;
        o.threshold = t;
        o.disabled_fraction = model.tailFraction(t);
        o.rate_inflation = model.screenedMeanMultiplier(t);
        o.mttf_recovery =
            o.rate_inflation > 0.0 ? unscreened / o.rate_inflation
                                   : 0.0;
        out.push_back(o);
    }
    return out;
}

ScreeningOutcome
sampleScreening(const StripeVariationModel &model, uint64_t stripes,
                double threshold, Rng &rng)
{
    ScreeningOutcome o;
    o.threshold = threshold;
    double sum_all = 0.0, sum_kept = 0.0;
    uint64_t kept = 0;
    for (uint64_t i = 0; i < stripes; ++i) {
        double m = model.sampleMultiplier(rng);
        sum_all += m;
        if (m <= threshold) {
            sum_kept += m;
            ++kept;
        }
    }
    o.disabled_fraction =
        1.0 - static_cast<double>(kept) /
                  static_cast<double>(stripes);
    o.rate_inflation =
        kept ? sum_kept / static_cast<double>(kept) : 0.0;
    double unscreened = sum_all / static_cast<double>(stripes);
    o.mttf_recovery = o.rate_inflation > 0.0
                          ? unscreened / o.rate_inflation
                          : 0.0;
    return o;
}

} // namespace rtm
