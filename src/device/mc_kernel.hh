/**
 * @file
 * Batched SoA kernels for the Monte-Carlo position-error hot path.
 *
 * The scalar extractor walks one trial at a time: draw a gaussian,
 * advance the AR(1) deviation, branch into a tally. These kernels
 * restructure each shard into fixed-width trial batches held in
 * structure-of-arrays form: a noise plane filled per batch, a lane
 * array marched through the recurrence one *step* at a time (the
 * inner loop is branch-free over contiguous lanes, so it
 * auto-vectorises), and a dense per-shard histogram that whole
 * batches classify into before one IntTally flush.
 *
 * Two reproducibility tiers share the structure and differ only in
 * how the noise plane is filled:
 *
 *  - McTier::Exact uses Rng::fillGaussian - the same draws in the
 *    same order as the scalar path - and is bit-identical to it (the
 *    lane recurrence performs the identical operation sequence per
 *    trial; x86-64 baseline builds have no FMA contraction to
 *    reorder it).
 *  - McTier::Fast uses Rng::fillGaussianFast - batch-order draws
 *    through the branchless vecmath transforms - and is seed-pinned
 *    by its own golden digests: deterministic per seed across
 *    platforms, presets and RTM_THREADS, but not bit-equal to the
 *    exact tier (values agree to ~1e-11).
 */

#ifndef RTM_DEVICE_MC_KERNEL_HH
#define RTM_DEVICE_MC_KERNEL_HH

#include <cstdint>
#include <string>

#include "util/rng.hh"
#include "util/stats.hh"

namespace rtm
{

/** Reproducibility tier of the batched Monte-Carlo kernels. */
enum class McTier
{
    Exact, //!< bit-identical to the scalar reference path
    Fast   //!< batch-order draws, polynomial transforms
};

/** Spec/CLI token for a tier ("exact" / "fast"). */
const char *mcTierToken(McTier tier);

/** Parse a tier token; false (and *tier untouched) when unknown. */
bool mcTierFromToken(const std::string &token, McTier *tier);

/** Trials per SoA batch (and the fast tier's shard granule). */
constexpr uint64_t kMcBatchTrials = 256;

/** Per-trial constants of the deviation recurrence (montecarlo.cc
 *  hoists these out of DeviceParams at construction). */
struct McKernelParams
{
    double resync_rho = 0.0;       //!< AR(1) survival per step
    double trial_jitter = 0.0;     //!< per-step noise std. dev.
    double trial_drift = 0.0;      //!< per-step deterministic drift
    double notch_half_width = 0.0; //!< in-notch classification bound
};

/**
 * Run `trials` batched trials of an n-step shift and accumulate the
 * Fig. 4 classification: step_counts[k] for in-notch outcomes,
 * middle_counts[floor(dev - w)] otherwise, and the running deviation
 * moments in trial order. Equivalent to `trials` iterations of the
 * scalar simulate-classify loop over `rng` (bit-identical in the
 * exact tier).
 */
void mcAccumulate(McTier tier, const McKernelParams &kp, int distance,
                  uint64_t trials, Rng &rng, IntTally &step_counts,
                  IntTally &middle_counts, RunningStats &deviation);

/**
 * Run `trials` batched (1-step, 7-step) trial pairs and accumulate
 * their deviation moments (the fitModel shard body). Draw order per
 * trial is 1-step first, then the seven 7-step draws, matching the
 * scalar interleave.
 */
void mcMoments(McTier tier, const McKernelParams &kp, uint64_t trials,
               Rng &rng, RunningStats &d1, RunningStats &d7);

} // namespace rtm

#endif // RTM_DEVICE_MC_KERNEL_HH
