#include "dwmotion.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rtm
{

DomainWallModel::DomainWallModel(const DeviceParams &params,
                                 double anisotropy_field)
    : params_(params), hk_(anisotropy_field), pitch_(params.pitch())
{
    if (pitch_ <= 0.0)
        rtm_fatal("non-positive notch pitch");
    if (params_.alpha <= 0.0)
        rtm_fatal("Gilbert damping must be positive");
}

double
DomainWallModel::notchOffset(double q) const
{
    double k = std::round(q / pitch_);
    return q - k * pitch_;
}

bool
DomainWallModel::inNotchRegion(double q) const
{
    return std::abs(notchOffset(q)) <= 0.5 * params_.pinning_width;
}

double
DomainWallModel::pinningField(double q) const
{
    if (!inNotchRegion(q))
        return 0.0;
    return params_.pinning_depth * notchOffset(q) /
           (params_.saturation_magnetisation *
            params_.pinning_width);
}

double
DomainWallModel::velocity(double q, double u) const
{
    double a = params_.alpha;
    double b = params_.beta;
    double drive = u * (2.0 + a * b - b / a) / (1.0 + a * a);
    double pin = params_.gamma * params_.domain_wall_width / a *
                 pinningField(q);
    return drive - pin;
}

double
DomainWallModel::depinningVelocity() const
{
    // The restoring force saturates at the notch edge
    // (q_loc = d / 2): a drive term beyond it cannot be balanced.
    double a = params_.alpha;
    double b = params_.beta;
    double max_pin = params_.gamma * params_.domain_wall_width / a *
                     params_.pinning_depth * 0.5 /
                     params_.saturation_magnetisation;
    return max_pin * (1.0 + a * a) / (2.0 + a * b - b / a);
}

double
DomainWallModel::stepTravelTime(double current_density) const
{
    double u = params_.spinVelocity(current_density);
    if (u <= depinningVelocity())
        return std::numeric_limits<double>::infinity();
    // Integrate dt = dq / v(q) over one pitch starting at a notch
    // centre; 2000 midpoint slices keep the error far below the
    // process variations the error model cares about.
    const int slices = 2000;
    double dq = pitch_ / slices;
    double t = 0.0;
    for (int i = 0; i < slices; ++i) {
        double q = (i + 0.5) * dq;
        t += dq / velocity(q, u);
    }
    return t;
}

double
DomainWallModel::adiabaticPsi(double q, double u) const
{
    // From dpsi/dt = 0:
    //   (1/2) Hk sin(2 psi) = -(P(q) + ((b-a)/(g D)) u) / a.
    double a = params_.alpha;
    double b = params_.beta;
    double g = params_.gamma;
    double d = params_.domain_wall_width;
    double rhs = -(pinningField(q) + (b - a) / (g * d) * u) /
                 (0.5 * a * hk_);
    rhs = std::clamp(rhs, -1.0, 1.0);
    return 0.5 * std::asin(rhs);
}

WallState
DomainWallModel::simulatePulse(const WallState &initial,
                               double current_density, double pulse_s,
                               double relax_s, double dt,
                               std::vector<TrajectoryPoint> *trajectory)
    const
{
    if (dt <= 0.0)
        rtm_panic("simulatePulse: dt must be positive");
    WallState st = initial;
    double u_drive = params_.spinVelocity(current_density);
    double t_end = pulse_s + relax_s;

    auto rk4_step = [&](double u) {
        double k1 = velocity(st.q, u);
        double k2 = velocity(st.q + 0.5 * dt * k1, u);
        double k3 = velocity(st.q + 0.5 * dt * k2, u);
        double k4 = velocity(st.q + dt * k3, u);
        st.q += dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        st.t += dt;
        st.psi = adiabaticPsi(st.q, u);
    };

    while (st.t < t_end - 0.5 * dt) {
        double u = (st.t < pulse_s) ? u_drive : 0.0;
        if (trajectory)
            trajectory->push_back({st.t, st.q, st.psi});
        rk4_step(u);
    }
    if (trajectory)
        trajectory->push_back({st.t, st.q, st.psi});
    return st;
}

int
DomainWallModel::stepsTravelled(double q_from, double q_to) const
{
    return static_cast<int>(std::round((q_to - q_from) / pitch_));
}

} // namespace rtm
