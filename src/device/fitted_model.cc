#include "fitted_model.hh"

#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

namespace
{

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

} // anonymous namespace

FittedErrorModel::FittedErrorModel(FittedModelParams params)
    : params_(params)
{
    if (params_.sigma_step <= 0.0)
        rtm_fatal("FittedErrorModel: sigma_step must be positive");
    if (params_.resync_rho < 0.0 || params_.resync_rho >= 1.0)
        rtm_fatal("FittedErrorModel: resync_rho must be in [0,1)");
}

double
FittedErrorModel::sigmaAt(int distance) const
{
    // AR(1) variance after N steps:
    //   var(N) = sigma^2 * (1 - rho^N) / (1 - rho) ... using rho as
    // the per-step variance survival factor.
    double rho = params_.resync_rho;
    double n = static_cast<double>(distance);
    double var = params_.sigma_step * params_.sigma_step *
                 (1.0 - std::pow(rho, n)) / (1.0 - rho);
    return std::sqrt(var);
}

double
FittedErrorModel::meanAt(int distance) const
{
    // Drift saturates with the same AR(1) memory.
    double rho = params_.resync_rho;
    double n = static_cast<double>(distance);
    return params_.drift * (1.0 - std::pow(rho, n)) / (1.0 - rho);
}

double
FittedErrorModel::logGaussStep(int distance, int step_error) const
{
    // After a positive-direction STS stage, a deviation e lands the
    // wall at final step error k iff e in (k - 1 + w, k + w], where w
    // is the notch half width (walls inside notch k stay; walls in the
    // flat after notch k are pushed into notch k+1).
    double w = params_.notch_half_width;
    double mu = meanAt(distance);
    double sigma = sigmaAt(distance);
    double k = static_cast<double>(step_error);
    double hi = (k + w - mu) / sigma;
    double lo = (k - 1.0 + w - mu) / sigma;
    // P(lo < Z <= hi) = Q(lo) - Q(hi)
    return logDiffExp(logNormalTail(lo), logNormalTail(hi));
}

double
FittedErrorModel::logSkipStep(int distance, int step_error) const
{
    if (std::abs(step_error) < 2)
        return kNegInf;
    // A skip (stall) event displaces the wall one whole pitch forward
    // (backward). A |k|-step error requires |k| - 1 such events plus a
    // +/-1 Gaussian excursion, or |k| events with a clean core; the
    // first term dominates at our rates.
    int events = std::abs(step_error) - 1;
    double log_event = params_.log_skip_base +
                       params_.skip_growth *
                       static_cast<double>(distance - 1);
    // Backward (stall) events are possible but rarer: reuse the
    // Gaussian +/-1 asymmetry via the sign of the +/-1 excursion.
    double lp = static_cast<double>(events) * log_event;
    int excursion = step_error > 0 ? 1 : -1;
    lp += logGaussStep(distance, excursion);
    return lp;
}

double
FittedErrorModel::logProbStep(int distance, int step_error) const
{
    if (step_error == 0)
        rtm_panic("logProbStep: step_error must be non-zero");
    if (distance <= 0)
        return kNegInf;
    if (std::abs(step_error) == 1)
        return logGaussStep(distance, step_error);
    return logSumExp(logGaussStep(distance, step_error),
                     logSkipStep(distance, step_error));
}

void
FittedErrorModel::logProbStepRange(int distance, int max_magnitude,
                                   double *plus, double *minus) const
{
    if (max_magnitude <= 0)
        return;
    if (distance <= 0) {
        for (int m = 0; m < max_magnitude; ++m)
            plus[m] = minus[m] = kNegInf;
        return;
    }
    const int kmax = max_magnitude;
    const double w = params_.notch_half_width;
    const double mu = meanAt(distance);
    const double sigma = sigmaAt(distance);
    // Bin boundary ladder: x_k = (k + w - mu) / sigma for
    // k in [-kmax - 1, kmax]; logGaussStep(k) spans (x_{k-1}, x_k].
    // Each interior boundary serves two adjacent bins, so the whole
    // signed ladder costs 2 * kmax + 2 tail evaluations.
    const size_t nb = 2 * static_cast<size_t>(kmax) + 2;
    std::vector<double> x(nb), q(nb);
    for (size_t i = 0; i < nb; ++i) {
        double k = static_cast<double>(
            static_cast<int>(i) - kmax - 1);
        x[i] = (k + w - mu) / sigma;
    }
    logNormalTailBatch(x.data(), q.data(), nb);
    auto gauss = [&](int k) {
        // q index of boundary x_k is k + kmax + 1.
        return logDiffExp(q[static_cast<size_t>(k + kmax)],
                          q[static_cast<size_t>(k + kmax + 1)]);
    };
    const double log_event =
        params_.log_skip_base +
        params_.skip_growth * static_cast<double>(distance - 1);
    for (int m = 1; m <= kmax; ++m) {
        if (m == 1) {
            plus[0] = gauss(1);
            minus[0] = gauss(-1);
            continue;
        }
        double events = static_cast<double>(m - 1);
        plus[m - 1] = logSumExp(gauss(m),
                                events * log_event + gauss(1));
        minus[m - 1] = logSumExp(gauss(-m),
                                 events * log_event + gauss(-1));
    }
}

double
FittedErrorModel::logProbStepRaw(int distance, int step_error) const
{
    // Pre-STS out-of-step: the deviation must land *inside* the
    // wrong notch region (k - w, k + w], not merely past it.
    if (distance <= 0 || step_error == 0)
        return -std::numeric_limits<double>::infinity();
    double w = params_.notch_half_width;
    double mu = meanAt(distance);
    double sigma = sigmaAt(distance);
    double k = static_cast<double>(step_error);
    double lo = (k - w - mu) / sigma;
    double hi = (k + w - mu) / sigma;
    double lp = logDiffExp(logNormalTail(lo), logNormalTail(hi));
    if (std::abs(step_error) >= 2)
        lp = logSumExp(lp, logSkipStep(distance, step_error));
    return lp;
}

double
FittedErrorModel::logProbStopInMiddle(int distance,
                                      int interval_floor) const
{
    // Without STS, the wall rests wherever the stage-1 pulse leaves
    // it. Deviation e in the flat interval (k + w, k + 1 - w) is a
    // stop-in-middle between over-shift k and k+1.
    if (distance <= 0)
        return kNegInf;
    double w = params_.notch_half_width;
    double mu = meanAt(distance);
    double sigma = sigmaAt(distance);
    double k = static_cast<double>(interval_floor);
    double lo = (k + w - mu) / sigma;
    double hi = (k + 1.0 - w - mu) / sigma;
    return logDiffExp(logNormalTail(lo), logNormalTail(hi));
}

} // namespace rtm
