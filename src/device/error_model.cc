#include "error_model.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.hh"
#include "util/prob.hh"

namespace rtm
{

namespace
{

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Paper Table 2: combined +/-k out-of-step rates after STS, for shift
// distances 1..7 on the default 64-domain / 8-segment stripe.
constexpr double kTable2K1[7] = {
    4.55e-5, 9.95e-5, 2.07e-4, 3.76e-4, 5.94e-4, 8.43e-4, 1.10e-3,
};
constexpr double kTable2K2[7] = {
    1.37e-21, 1.19e-20, 5.59e-20, 1.80e-19, 4.47e-19, 9.96e-18,
    7.57e-15,
};
// Table 2 lists k >= 3 as "too small"; we budget it at 1e-7 of the
// k=2 rate so downstream log-space math never sees a hard zero.
constexpr double kK3Fraction = 1e-7;

// Power-law exponents fitted to Table 2 for distances beyond 7 steps
// (used by the sensitivity studies with long segments):
//   P1(N) = P1(1) * N^1.64     P2(N) = P2(1) * N^8.0
constexpr double kK1Exponent = 1.64;
constexpr double kK2Exponent = 8.0;

double
extrapolate(const double *table, double exponent, int distance)
{
    double scale = std::pow(static_cast<double>(distance) / 7.0,
                            exponent);
    double v = table[6] * scale;
    return std::min(v, 0.5);
}

} // anonymous namespace

void
PositionErrorModel::logProbStepRange(int distance, int max_magnitude,
                                     double *plus, double *minus) const
{
    for (int m = 1; m <= max_magnitude; ++m) {
        plus[m - 1] = logProbStep(distance, m);
        minus[m - 1] = logProbStep(distance, -m);
    }
}

double
PositionErrorModel::logProbSuccess(int distance) const
{
    // 1 - sum of all error outcomes, computed in log space. The
    // whole +/-k ladder comes from one batched range evaluation;
    // accumulation order matches the historical per-call loop.
    const int kmax = maxStepError();
    double log_err = kNegInf;
    if (kmax > 0) {
        std::vector<double> plus(kmax), minus(kmax);
        logProbStepRange(distance, kmax, plus.data(), minus.data());
        for (int k = 1; k <= kmax; ++k) {
            log_err = logSumExp(log_err, plus[k - 1]);
            log_err = logSumExp(log_err, minus[k - 1]);
        }
    }
    if (log_err == kNegInf)
        return 0.0;
    if (log_err >= 0.0)
        return kNegInf;
    return log1mExp(log_err);
}

double
PositionErrorModel::logProbAtLeast(int distance, int magnitude) const
{
    const int kmax = maxStepError();
    double acc = kNegInf;
    if (kmax > 0 && magnitude <= kmax) {
        std::vector<double> plus(kmax), minus(kmax);
        logProbStepRange(distance, kmax, plus.data(), minus.data());
        for (int k = std::max(magnitude, 1); k <= kmax; ++k) {
            acc = logSumExp(acc, plus[k - 1]);
            acc = logSumExp(acc, minus[k - 1]);
        }
    }
    return acc;
}

double
PositionErrorModel::logProbStepRaw(int distance, int step_error) const
{
    return logProbStep(distance, step_error);
}

ShiftOutcome
PositionErrorModel::sample(Rng &rng, int distance, bool sts_enabled)
    const
{
    ShiftOutcome out;
    double u = rng.uniform();
    if (sts_enabled) {
        // Walk the out-of-step outcomes from most likely outward.
        double acc = 0.0;
        for (int mag = 1; mag <= maxStepError(); ++mag) {
            for (int sign : {+1, -1}) {
                double p = std::exp(logProbStep(distance, sign * mag));
                acc += p;
                if (u < acc) {
                    out.step_error = sign * mag;
                    return out;
                }
            }
        }
        return out; // success
    }
    // Without STS the raw outcome may also be stop-in-middle, and
    // the out-of-step share excludes the flat-region mass STS would
    // otherwise fold in.
    double acc = 0.0;
    for (int mag = 1; mag <= maxStepError(); ++mag) {
        for (int sign : {+1, -1}) {
            double p =
                std::exp(logProbStepRaw(distance, sign * mag));
            acc += p;
            if (u < acc) {
                out.step_error = sign * mag;
                return out;
            }
        }
    }
    for (int floor_k = -maxStepError(); floor_k < maxStepError();
         ++floor_k) {
        double p = std::exp(logProbStopInMiddle(distance, floor_k));
        acc += p;
        if (u < acc) {
            out.step_error = floor_k;
            out.stop_in_middle = true;
            return out;
        }
    }
    return out;
}

PaperCalibratedErrorModel::PaperCalibratedErrorModel(
    double plus_fraction, double pre_sts_middle_fraction)
    : plus_fraction_(plus_fraction),
      middle_fraction_(pre_sts_middle_fraction)
{
    if (plus_fraction_ < 0.0 || plus_fraction_ > 1.0)
        rtm_fatal("plus_fraction must be in [0,1]");
    if (middle_fraction_ < 0.0 || middle_fraction_ > 1.0)
        rtm_fatal("pre_sts_middle_fraction must be in [0,1]");
}

double
PaperCalibratedErrorModel::stepErrorRate(int distance,
                                         int magnitude) const
{
    if (distance <= 0)
        return 0.0;
    switch (magnitude) {
      case 1:
        return distance <= 7 ? kTable2K1[distance - 1]
                             : extrapolate(kTable2K1, kK1Exponent,
                                           distance);
      case 2:
        return distance <= 7 ? kTable2K2[distance - 1]
                             : extrapolate(kTable2K2, kK2Exponent,
                                           distance);
      case 3:
        return kK3Fraction * stepErrorRate(distance, 2);
      default:
        return 0.0;
    }
}

double
PaperCalibratedErrorModel::logProbStep(int distance,
                                       int step_error) const
{
    if (step_error == 0)
        rtm_panic("logProbStep: step_error must be non-zero");
    int mag = std::abs(step_error);
    double rate = stepErrorRate(distance, mag);
    if (rate <= 0.0)
        return kNegInf;
    double frac = step_error > 0 ? plus_fraction_
                                 : 1.0 - plus_fraction_;
    if (frac <= 0.0)
        return kNegInf;
    return std::log(rate) + std::log(frac);
}

double
PaperCalibratedErrorModel::logProbStepRaw(int distance,
                                          int step_error) const
{
    // Before STS only (1 - middle_fraction) of each rate manifests
    // as a wall pinned in the wrong notch; the rest rests in the
    // flat region (stop-in-middle).
    double lp = logProbStep(distance, step_error);
    if (middle_fraction_ >= 1.0)
        return -std::numeric_limits<double>::infinity();
    return lp + std::log(1.0 - middle_fraction_);
}

double
PaperCalibratedErrorModel::logProbStopInMiddle(int distance,
                                               int interval_floor)
    const
{
    // Before STS, a fraction of each +/-k error mass is actually a
    // wall resting in the adjacent flat region. A positive-direction
    // STS pushes walls in interval (k, k+1) to step error k + 1, so
    // the pre-STS interval that feeds +k errors is (k-1, k); for -k
    // errors it is (-k, -k+1).
    if (middle_fraction_ <= 0.0)
        return kNegInf;
    double rate = 0.0;
    // interval (interval_floor, interval_floor + 1)
    int plus_k = interval_floor + 1; // +k error it becomes after STS
    if (plus_k >= 1 && plus_k <= maxStepError()) {
        rate += stepErrorRate(distance, plus_k) * plus_fraction_ *
                middle_fraction_;
    }
    int minus_k = -interval_floor; // -k error it becomes after -STS
    if (minus_k >= 1 && minus_k <= maxStepError()) {
        rate += stepErrorRate(distance, minus_k) *
                (1.0 - plus_fraction_) * middle_fraction_;
    }
    return rate > 0.0 ? std::log(rate) : kNegInf;
}

double
ZeroErrorModel::logProbStep(int, int) const
{
    return kNegInf;
}

double
ZeroErrorModel::logProbStopInMiddle(int, int) const
{
    return kNegInf;
}

ShiftOutcome
ZeroErrorModel::sample(Rng &, int, bool) const
{
    return ShiftOutcome{};
}

ScaledErrorModel::ScaledErrorModel(
    std::shared_ptr<const PositionErrorModel> base, double factor)
    : base_(std::move(base)), log_factor_(std::log(factor))
{
    if (!base_)
        rtm_fatal("ScaledErrorModel: null base model");
    if (!(factor > 0.0))
        rtm_fatal("ScaledErrorModel: factor must be positive");
}

double
ScaledErrorModel::logProbStep(int distance, int step_error) const
{
    double lp = base_->logProbStep(distance, step_error) + log_factor_;
    return std::min(lp, std::log(0.5));
}

double
ScaledErrorModel::logProbStopInMiddle(int distance,
                                      int interval_floor) const
{
    double lp = base_->logProbStopInMiddle(distance, interval_floor) +
                log_factor_;
    return std::min(lp, std::log(0.5));
}

double
ScaledErrorModel::logProbStepRaw(int distance, int step_error) const
{
    double lp = base_->logProbStepRaw(distance, step_error) +
                log_factor_;
    return std::min(lp, std::log(0.5));
}

int
ScaledErrorModel::maxStepError() const
{
    return base_->maxStepError();
}

ScriptedErrorModel::ScriptedErrorModel(std::vector<ShiftOutcome> script)
    : script_(std::move(script))
{
}

double
ScriptedErrorModel::logProbStep(int, int) const
{
    return kNegInf;
}

double
ScriptedErrorModel::logProbStopInMiddle(int, int) const
{
    return kNegInf;
}

ShiftOutcome
ScriptedErrorModel::sample(Rng &, int, bool) const
{
    if (pos_ < script_.size())
        return script_[pos_++];
    return ShiftOutcome{};
}

} // namespace rtm
