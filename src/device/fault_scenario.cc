#include "fault_scenario.hh"

#include <cmath>

#include "util/logging.hh"

namespace rtm
{

void
InjectionLedger::merge(const InjectionLedger &other)
{
    samples += other.samples;
    injected += other.injected;
    step_errors += other.step_errors;
    stop_in_middle += other.stop_in_middle;
}

FaultScenario::FaultScenario(
    std::shared_ptr<const PositionErrorModel> base)
    : base_(std::move(base))
{
    if (!base_)
        rtm_fatal("fault scenario needs a base error model");
}

double
FaultScenario::logProbStep(int distance, int step_error) const
{
    return base_->logProbStep(distance, step_error);
}

double
FaultScenario::logProbStopInMiddle(int distance,
                                   int interval_floor) const
{
    return base_->logProbStopInMiddle(distance, interval_floor);
}

double
FaultScenario::logProbStepRaw(int distance, int step_error) const
{
    return base_->logProbStepRaw(distance, step_error);
}

int
FaultScenario::maxStepError() const
{
    return base_->maxStepError();
}

ShiftOutcome
FaultScenario::sample(Rng &rng, int distance, bool sts_enabled) const
{
    ShiftOutcome out = sampleScenario(rng, distance, sts_enabled);
    ++ledger_.samples;
    if (!out.ok()) {
        ++ledger_.injected;
        if (out.stop_in_middle)
            ++ledger_.stop_in_middle;
        else
            ++ledger_.step_errors;
    }
    return out;
}

std::shared_ptr<const PositionErrorModel>
FaultScenario::cloneBase() const
{
    if (auto *nested = dynamic_cast<const FaultScenario *>(
            base_.get())) {
        return std::shared_ptr<const PositionErrorModel>(
            nested->clone());
    }
    // Plain models are stateless under sample() and safe to share.
    return base_;
}

IidScenario::IidScenario(
    std::shared_ptr<const PositionErrorModel> base)
    : FaultScenario(std::move(base))
{
}

ShiftOutcome
IidScenario::sampleScenario(Rng &rng, int distance,
                            bool sts_enabled) const
{
    return base_->sample(rng, distance, sts_enabled);
}

std::unique_ptr<FaultScenario>
IidScenario::clone() const
{
    return std::make_unique<IidScenario>(cloneBase());
}

BurstScenario::BurstScenario(
    std::shared_ptr<const PositionErrorModel> base, uint64_t period,
    uint64_t burst_len, double multiplier)
    : FaultScenario(std::move(base)), period_(period),
      burst_len_(burst_len), multiplier_(multiplier),
      boosted_(base_, multiplier)
{
    if (period_ == 0 || burst_len_ > period_)
        rtm_fatal("burst scenario needs 0 < burst_len <= period");
}

bool
BurstScenario::inBurst() const
{
    return shift_count_ % period_ < burst_len_;
}

ShiftOutcome
BurstScenario::sampleScenario(Rng &rng, int distance,
                              bool sts_enabled) const
{
    bool burst = inBurst();
    ++shift_count_;
    const PositionErrorModel &m =
        burst ? static_cast<const PositionErrorModel &>(boosted_)
              : *base_;
    return m.sample(rng, distance, sts_enabled);
}

std::unique_ptr<FaultScenario>
BurstScenario::clone() const
{
    return std::make_unique<BurstScenario>(cloneBase(), period_,
                                           burst_len_, multiplier_);
}

StuckStripeScenario::StuckStripeScenario(
    std::shared_ptr<const PositionErrorModel> base,
    uint64_t stuck_after, uint64_t stuck_len)
    : FaultScenario(std::move(base)), stuck_after_(stuck_after),
      stuck_len_(stuck_len)
{
}

bool
StuckStripeScenario::stuck() const
{
    return shift_count_ >= stuck_after_ &&
           shift_count_ < stuck_after_ + stuck_len_;
}

ShiftOutcome
StuckStripeScenario::sampleScenario(Rng &rng, int distance,
                                    bool sts_enabled) const
{
    bool pinned = stuck();
    ++shift_count_;
    if (pinned) {
        // The dead notch eats exactly one step of every drive: a
        // 1-step request does not move at all, longer requests land
        // one short. Deterministic — no base-model draw.
        ShiftOutcome out;
        out.step_error = -1;
        return out;
    }
    return base_->sample(rng, distance, sts_enabled);
}

std::unique_ptr<FaultScenario>
StuckStripeScenario::clone() const
{
    return std::make_unique<StuckStripeScenario>(
        cloneBase(), stuck_after_, stuck_len_);
}

DroopScenario::DroopScenario(
    std::shared_ptr<const PositionErrorModel> base, uint64_t period,
    uint64_t droop_len, double undershoot_prob)
    : FaultScenario(std::move(base)), period_(period),
      droop_len_(droop_len), undershoot_prob_(undershoot_prob)
{
    if (period_ == 0 || droop_len_ > period_)
        rtm_fatal("droop scenario needs 0 < droop_len <= period");
    if (undershoot_prob_ < 0.0 || undershoot_prob_ > 1.0)
        rtm_fatal("droop undershoot probability must be in [0,1]");
}

ShiftOutcome
DroopScenario::sampleScenario(Rng &rng, int distance,
                              bool sts_enabled) const
{
    bool droop = shift_count_ % period_ < droop_len_;
    ++shift_count_;
    // Draw the droop coin before the base sample so the base stream
    // stays aligned with the i.i.d. regime outside droop windows.
    if (droop && rng.bernoulli(undershoot_prob_)) {
        ShiftOutcome out;
        out.step_error = -1;
        // Without the stage-2 pulse, the sagging drive strands the
        // walls in the flat region short of the target.
        out.stop_in_middle = !sts_enabled;
        return out;
    }
    return base_->sample(rng, distance, sts_enabled);
}

std::unique_ptr<FaultScenario>
DroopScenario::clone() const
{
    return std::make_unique<DroopScenario>(
        cloneBase(), period_, droop_len_, undershoot_prob_);
}

double
skewFactorFor(uint64_t stripe_id, double sigma)
{
    // One deterministic Gaussian per stripe id: the id seeds a
    // private stream, so the factor is stable across runs and
    // independent of any other sampling.
    Rng rng(0x5eedc0de ^ (stripe_id * 0x9e3779b97f4a7c15ULL));
    return std::exp(sigma * rng.gaussian());
}

SkewScenario::SkewScenario(
    std::shared_ptr<const PositionErrorModel> base,
    uint64_t stripe_id, double sigma)
    : FaultScenario(std::move(base)), stripe_id_(stripe_id),
      sigma_(sigma), factor_(skewFactorFor(stripe_id, sigma)),
      skewed_(base_, factor_)
{
}

ShiftOutcome
SkewScenario::sampleScenario(Rng &rng, int distance,
                             bool sts_enabled) const
{
    return skewed_.sample(rng, distance, sts_enabled);
}

std::unique_ptr<FaultScenario>
SkewScenario::clone() const
{
    return std::make_unique<SkewScenario>(cloneBase(), stripe_id_,
                                          sigma_);
}

std::unique_ptr<FaultScenario>
makeScenario(const ScenarioSpec &spec,
             std::shared_ptr<const PositionErrorModel> base)
{
    switch (spec.kind) {
      case ScenarioKind::Iid:
        return std::make_unique<IidScenario>(std::move(base));
      case ScenarioKind::Burst:
        return std::make_unique<BurstScenario>(
            std::move(base), spec.burst_period, spec.burst_len,
            spec.burst_multiplier);
      case ScenarioKind::StuckStripe:
        return std::make_unique<StuckStripeScenario>(
            std::move(base), spec.stuck_after, spec.stuck_len);
      case ScenarioKind::Droop:
        return std::make_unique<DroopScenario>(
            std::move(base), spec.droop_period, spec.droop_len,
            spec.droop_undershoot_prob);
      case ScenarioKind::Skew:
        return std::make_unique<SkewScenario>(
            std::move(base), spec.stripe_id, spec.skew_sigma);
    }
    rtm_panic("unknown scenario kind");
}

std::vector<ScenarioSpec>
standardScenarios()
{
    std::vector<ScenarioSpec> specs;
    ScenarioSpec iid;
    iid.kind = ScenarioKind::Iid;
    iid.name = "iid";
    specs.push_back(iid);

    ScenarioSpec burst;
    burst.kind = ScenarioKind::Burst;
    burst.name = "burst";
    specs.push_back(burst);

    ScenarioSpec stuck;
    stuck.kind = ScenarioKind::StuckStripe;
    stuck.name = "stuck-stripe";
    specs.push_back(stuck);

    ScenarioSpec droop;
    droop.kind = ScenarioKind::Droop;
    droop.name = "droop";
    specs.push_back(droop);

    ScenarioSpec skew;
    skew.kind = ScenarioKind::Skew;
    skew.name = "skew";
    specs.push_back(skew);
    return specs;
}

} // namespace rtm
