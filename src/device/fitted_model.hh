/**
 * @file
 * Analytic position-error model fitted from Monte-Carlo trajectories.
 *
 * The Monte-Carlo extractor (montecarlo.hh) measures the continuous
 * over-shift deviation of the wall front at the end of the stage-1
 * pulse. Two mechanisms produce errors:
 *
 *  1. A Gaussian core: accumulated per-step timing jitter, partially
 *     re-synchronised by each notch transit (the notch acts as a speed
 *     bump: a wall arriving early spends longer inside it). This makes
 *     the deviation an AR(1)/Ornstein-Uhlenbeck process whose standard
 *     deviation grows sub-sqrt with distance - matching the paper's
 *     slow growth of the +/-1 rates between 1-step and 7-step shifts.
 *
 *  2. Rare notch-skip/stall events from the extreme tail of the
 *     pinning-depth distribution, which displace the wall by whole
 *     pitches and dominate the |k| >= 2 rates.
 *
 * The fitted model evaluates both mechanisms in closed form (log
 * domain), so tail rates far below Monte-Carlo reach (1e-21 scale,
 * like the paper's fitting-curve method) remain exact.
 */

#ifndef RTM_DEVICE_FITTED_MODEL_HH
#define RTM_DEVICE_FITTED_MODEL_HH

#include "device/error_model.hh"

namespace rtm
{

/** Parameters of the fitted two-mechanism error model. */
struct FittedModelParams
{
    /** Per-step deviation noise (std. dev., in pitches). */
    double sigma_step = 0.0295;

    /** AR(1) survival factor per notch transit (0 = full resync). */
    double resync_rho = 0.39;

    /** Stationary drift of the deviation (pitches, positive =
     *  over-shift bias from the 2*J0 overdrive). */
    double drift = 0.004;

    /** Half-width of the notch region in pitch units; deviations
     *  beyond this leave the wall outside its target notch. */
    double notch_half_width = 0.115;

    /** Log-probability a single notch is skipped at distance 1. */
    double log_skip_base = -48.0; // ~1.4e-21 / 4.55e-5 scale

    /** Growth of the skip log-probability per extra step. */
    double skip_growth = 2.59;
};

/**
 * Closed-form error model with the parameters above.
 */
class FittedErrorModel : public PositionErrorModel
{
  public:
    explicit FittedErrorModel(FittedModelParams params = {});

    double logProbStep(int distance, int step_error) const override;
    double logProbStopInMiddle(int distance,
                               int interval_floor) const override;
    double logProbStepRaw(int distance,
                          int step_error) const override;

    /**
     * Batched override: adjacent Gaussian bins share a boundary
     * (hi of +k is lo of +(k+1)), so the whole +/-[1, M] ladder
     * needs only 2M + 2 tail evaluations through
     * logNormalTailBatch instead of ~6M scalar ones. Values are
     * bit-identical to the scalar logProbStep.
     */
    void logProbStepRange(int distance, int max_magnitude,
                          double *plus, double *minus) const override;

    int maxStepError() const override { return 3; }

    /** Deviation std. dev. after an N-step pulse (pitches). */
    double sigmaAt(int distance) const;

    /** Deviation mean after an N-step pulse (pitches). */
    double meanAt(int distance) const;

    const FittedModelParams &params() const { return params_; }

  private:
    FittedModelParams params_;

    /** Gaussian-core log-probability of a signed +/-k outcome. */
    double logGaussStep(int distance, int step_error) const;

    /** Notch-skip tail log-probability for |k| >= 2 outcomes. */
    double logSkipStep(int distance, int step_error) const;
};

} // namespace rtm

#endif // RTM_DEVICE_FITTED_MODEL_HH
