#include "params.hh"

#include <algorithm>
#include <cmath>

namespace rtm
{

namespace
{

constexpr double kBohrMagneton = 9.274e-24; // J/T
constexpr double kElectronCharge = 1.602e-19; // C

} // anonymous namespace

double
DeviceParams::spinVelocity(double current_density) const
{
    return current_density * spin_polarisation * kBohrMagneton /
           (kElectronCharge * saturation_magnetisation);
}

double
DeviceParams::thresholdCurrentDensity() const
{
    // The paper states J = 1.24 A/um^2 is chosen as 2 * J0; the
    // threshold therefore back-solves from the configured overdrive.
    return shift_current_density / overdrive;
}

double
DeviceParams::driveVelocity() const
{
    return spinVelocity(shift_current_density);
}

DeviceParams
perpendicularMaterial()
{
    DeviceParams p;
    // CoFeB-style perpendicular stack: ~4x denser lattice, narrower
    // walls, stronger damping, and roughly doubled relative
    // variation of the etched notch geometry at the finer pitch.
    p.domain_wall_width = 2.0e-9;
    p.pinning_width = 12.0e-9;
    p.flat_width = 38.0e-9;
    p.sigma_width = 0.10;
    p.sigma_flat = 0.10;
    p.alpha = 0.05;
    p.beta = 0.025;
    p.saturation_magnetisation = 1.0e6;
    return p;
}

SampledParams
sampleParams(const DeviceParams &nominal, Rng &rng)
{
    auto draw = [&](double mean, double rel_sigma, double sigma_base) {
        double v = rng.gaussian(mean, rel_sigma * sigma_base);
        // Physical lengths/energies cannot go non-positive; clamp to a
        // tenth of nominal, far outside +-5 sigma for Table 1 values.
        return std::max(v, 0.1 * mean);
    };
    SampledParams s;
    s.wall_width = draw(nominal.domain_wall_width,
                        nominal.sigma_wall_width,
                        nominal.domain_wall_width);
    s.pinning_depth = draw(nominal.pinning_depth, nominal.sigma_depth,
                           nominal.pinning_depth);
    s.pinning_width = draw(nominal.pinning_width, nominal.sigma_width,
                           nominal.pinning_width);
    // Table 1 prints sigma_L = 0.05 * dbar (relative to the pinning
    // width, not the flat width); we follow the paper as printed.
    s.flat_width = draw(nominal.flat_width, nominal.sigma_flat,
                        nominal.pinning_width);
    return s;
}

} // namespace rtm
