/**
 * @file
 * Monte-Carlo position-error extractor (paper Sec. 3.1, Fig. 4).
 *
 * Each trial samples a stripe geometry (Table 1 variations), walks a
 * wall front through N pitches using the Eq. 2 timing model with
 * per-notch re-synchronisation, and records where the front rests
 * when the nominal stage-1 pulse ends. Outcomes are classified into
 * the paper's Fig. 4 bins: exact +/-k out-of-step errors and the
 * (k, k+1) stop-in-middle intervals. A Gaussian fit of the continuous
 * deviation yields a FittedErrorModel whose closed-form tails cover
 * probabilities far below direct sampling reach.
 */

#ifndef RTM_DEVICE_MONTECARLO_HH
#define RTM_DEVICE_MONTECARLO_HH

#include <cstdint>
#include <vector>

#include "device/fitted_model.hh"
#include "device/mc_kernel.hh"
#include "device/params.hh"
#include "device/timing.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/telemetry.hh"

namespace rtm
{

/** Fig. 4 style outcome bins for one shift distance. */
struct ErrorPdf
{
    int distance = 0;          //!< shift distance in steps
    uint64_t trials = 0;       //!< Monte-Carlo trials run

    /** counts[k + offset] = exact out-of-step error k (k=0 is ok). */
    IntTally step_counts;

    /** middle_counts[k] = stop-in-middle in interval (k, k+1). */
    IntTally middle_counts;

    /** Continuous end-of-pulse deviation statistics (pitches). */
    RunningStats deviation;

    /**
     * Trials actually recorded in the outcome tallies. Probabilities
     * are derived from this (every trial lands in exactly one bin),
     * so they cannot drift from the tallies after a merge, whatever
     * the `trials` field says.
     */
    uint64_t tallyTrials() const;

    /**
     * Merge a shard's bins into this accumulator. Panics when the
     * distances differ or either side's `trials` field disagrees
     * with its tallies.
     */
    void merge(const ErrorPdf &other);

    /** Empirical probability of exact out-of-step error k. */
    double stepProbability(int k) const;

    /** Empirical probability of stop-in-middle in (k, k+1). */
    double middleProbability(int k) const;
};

/**
 * Monte-Carlo simulator of stage-1 shift pulses.
 */
class PositionErrorMonteCarlo
{
  public:
    /**
     * @param params nominal device parameters
     * @param seed   RNG seed (trials are deterministic given seed)
     * @param tier   batched-kernel reproducibility tier
     */
    explicit PositionErrorMonteCarlo(const DeviceParams &params,
                                     uint64_t seed = 12345,
                                     McTier tier = McTier::Exact);

    /**
     * Run trials for a given shift distance.
     *
     * Trials are split into shardCount(trials) shards, each with its
     * own RNG forked deterministically from this object's stream, and
     * fanned out over the global ThreadPool. Results are bit-identical
     * for a given (seed, trial count, tier) at any RTM_THREADS
     * setting, but differ from the historical single-stream ordering.
     *
     * Shards execute through the batched SoA kernels (mc_kernel.hh).
     * In the exact tier (default) the result is bit-identical to
     * runScalarReference(); the fast tier draws its noise in batch
     * order through the branchless vecmath transforms and is pinned
     * by its own golden digests instead.
     *
     * @param distance steps per shift (>= 1)
     * @param trials   number of Monte-Carlo trials
     * @return per-bin outcome statistics
     */
    ErrorPdf run(int distance, uint64_t trials);

    /**
     * The pre-batching scalar path, frozen as a reference: identical
     * shard structure, but each shard walks one trial at a time via
     * simulateDeviation() + classify(). Exact-tier run() must stay
     * bit-identical to this; micro_ops --check and the unit tests
     * enforce it. Consumes the same amount of the seed stream as
     * run() with the same arguments.
     */
    ErrorPdf runScalarReference(int distance, uint64_t trials);

    /**
     * Simulate a single pulse; returns the continuous deviation of
     * the wall front from its target, in pitches (positive = past).
     */
    double simulateDeviation(int distance, Rng &rng) const;

    /**
     * Fit the AR(1)-Gaussian core of a FittedErrorModel from
     * Monte-Carlo deviation moments at two distances, keeping the
     * tail (skip) parameters at their defaults. Sharded across the
     * global ThreadPool with the same determinism guarantee as run().
     */
    FittedErrorModel fitModel(uint64_t trials_per_distance = 200000);

    /** Reproducibility tier the batched kernels run in. */
    McTier tier() const { return tier_; }

    /** Switch tiers; takes effect on the next run()/fitModel(). */
    void setTier(McTier tier) { tier_ = tier; }

    /** Re-synchronisation factor per notch transit (model input). */
    double resyncRho() const { return resync_rho_; }

    /**
     * Per-step time jitter, relative to the nominal step time.
     * Cached: the value depends only on DeviceParams, so it is
     * computed once at construction, not per trial.
     */
    double stepJitter() const { return step_jitter_; }

    /**
     * Recompute the step jitter from the timing model (eight RK4
     * ShiftTiming::stepTime evaluations for central-difference
     * sensitivities). This is what every trial used to pay before
     * the result was hoisted into the constructor; benches time it
     * to quantify that win.
     */
    double computeStepJitter() const;

    /**
     * Attach an observability sink: run()/fitModel() record trial
     * counts, deviation moments, and wall-clock spans (on the
     * calling thread, after the sharded reduce — never from
     * workers). Results are bit-identical either way.
     */
    void setTelemetry(TelemetryScope telemetry)
    {
        telemetry_ = telemetry.get();
    }

    /**
     * Optional cooperative stop flag, polled at shard boundaries by
     * run()/runScalarReference()/fitModel(). Once it trips, the
     * remaining shards contribute nothing and the partial result must
     * be discarded by the caller (the experiment engine does so by
     * classifying the cell as cancelled/timed-out). A run that never
     * observes the stop stays bit-identical to one with no flag.
     */
    void setStopFlag(StopFlag *stop) { stop_ = stop; }

  private:
    DeviceParams params_;
    ShiftTiming timing_;
    Rng rng_;
    McTier tier_;
    double resync_rho_;

    // Per-trial constants hoisted out of simulateDeviation: the
    // drive-scaled jitter and drift depend only on DeviceParams.
    double step_jitter_ = 0.0;
    double trial_jitter_ = 0.0;
    double trial_drift_ = 0.0;

    /** Observability sink (null = disabled). */
    Telemetry *telemetry_ = nullptr;

    /** Cooperative stop flag (null = never stops). */
    StopFlag *stop_ = nullptr;

    /** Classify a continuous deviation into Fig. 4 bins. */
    void classify(double deviation, ErrorPdf &pdf) const;
};

} // namespace rtm

#endif // RTM_DEVICE_MONTECARLO_HH
