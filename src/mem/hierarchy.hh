/**
 * @file
 * Three-level cache hierarchy (paper Table 4).
 *
 * Per-core split-L1 (the simulator drives the data side), one L2 per
 * core pair, and a shared L3 whose technology is configurable: SRAM
 * (4 MB), STT-RAM (32 MB), or racetrack (128 MB) with a protection
 * scheme. Misses at L3 go to DDR3 main memory. Timing is additive
 * along the miss path (the paper's in-order cores block on memory),
 * and every level accumulates dynamic energy; leakage integrates over
 * simulated time in the system simulator.
 */

#ifndef RTM_MEM_HIERARCHY_HH
#define RTM_MEM_HIERARCHY_HH

#include <memory>
#include <optional>
#include <vector>

#include "device/error_model.hh"
#include "mem/cache.hh"
#include "mem/rm_bank.hh"
#include "model/tech.hh"
#include "util/units.hh"

namespace rtm
{

/** Outcome of one hierarchy access. */
struct HierarchyAccess
{
    Cycles latency = 0;     //!< total cycles to service
    Joules energy = 0.0;    //!< dynamic energy across all levels
    bool l1_hit = false;
    bool l2_hit = false;
    bool l3_hit = false;
    bool dram_access = false;
    Cycles shift_cycles = 0; //!< racetrack shift share of latency
};

/** Hierarchy-wide configuration. */
struct HierarchyConfig
{
    int cores = 4;
    MemTech llc_tech = MemTech::Racetrack;
    Scheme scheme = Scheme::PeccSAdaptive;
    int llc_ways = 16;
    int l1_ways = 2;
    int l2_ways = 4;
    int line_bytes = 64;
    int seg_len = 8;          //!< racetrack segment length
    int frames_per_group = 64;
    double mttf_target_s = kDefaultSafeMttfSeconds;
    HeadPolicy head_policy = HeadPolicy::Stay;
    bool model_contention = false;

    /** Racetrack data-placement policy (mem/placement.hh). */
    PlacementConfig placement;

    /**
     * Protection-domain policy (mem/protection.hh). A scheme
     * override in the uniform/llc domain replaces `scheme` for the
     * racetrack bank; pooled-codeword domains add redundancy-frame
     * accesses on writes (and on reads unless two-tier). The
     * default policy changes nothing.
     */
    ProtectionPolicy protection;

    /** Passed through to RmBankConfig::use_plan_memo. */
    bool use_plan_memo = true;

    /**
     * Uniform capacity divisor applied to every cache level. The
     * Table 4 hierarchy needs millions of requests before a
     * capacity-sensitive working set develops reuse in a 128 MB LLC;
     * dividing all capacities (and the workload's working set) by
     * the same factor preserves the 4/32/128 MB ratios and the
     * capacity-sensitivity divide while keeping runs tractable.
     * 1 = full-size Table 4 capacities.
     */
    uint64_t capacity_divisor = 1;

    /**
     * Observability sink, forwarded to the racetrack bank and used
     * by exportTelemetry for per-level cache counters. Disabled
     * (null) by default; results are bit-identical either way.
     */
    TelemetryScope telemetry = {};
};

/**
 * The full hierarchy.
 */
class Hierarchy
{
  public:
    /**
     * @param config system configuration
     * @param model  position-error model (racetrack LLC only; may be
     *               null for SRAM/STT-RAM configurations)
     */
    Hierarchy(const HierarchyConfig &config,
              const PositionErrorModel *model);

    /**
     * Service one data access from `core` at absolute time `now`.
     */
    HierarchyAccess access(int core, Addr addr, bool is_write,
                           Cycles now);

    /** L1 data cache of a core (stats inspection). */
    const Cache &l1(int core) const;

    /** L2 of a core pair. */
    const Cache &l2(int cluster) const;

    /** Shared L3. */
    const Cache &l3() const { return *l3_; }

    /** Racetrack shift engine (null for SRAM/STT-RAM LLC). */
    RmBank *rmBank() { return rm_bank_.get(); }
    const RmBank *rmBank() const { return rm_bank_.get(); }

    /** DRAM accesses so far. */
    uint64_t dramAccesses() const { return dram_accesses_; }

    /** Total dynamic energy of DRAM accesses. */
    Joules dramEnergy() const { return dram_energy_; }

    /** Static power of all cache levels combined, watts. */
    double totalLeakageWatts() const;

    const HierarchyConfig &config() const { return config_; }

    /**
     * Export cumulative per-level hit/miss/writeback counters (L1
     * summed across cores, L2 across clusters, L3, DRAM) into
     * `sink`'s registry. End-of-run snapshot: cheaper than
     * per-access instrumentation and exactly consistent with the
     * CacheStats ledgers.
     */
    void exportTelemetry(Telemetry &sink) const;

  private:
    HierarchyConfig config_;
    TechParams l1_params_;
    TechParams l2_params_;
    TechParams l3_params_;
    DramParams dram_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;
    std::unique_ptr<RmBank> rm_bank_;
    uint64_t dram_accesses_ = 0;
    Joules dram_energy_ = 0.0;
};

} // namespace rtm

#endif // RTM_MEM_HIERARCHY_HH
