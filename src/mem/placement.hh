/**
 * @file
 * Data-placement policies for the racetrack LLC shift engine.
 *
 * The bank's shift cost on every access is the distance between a
 * group's current head position and the accessed frame's slot offset,
 * so *where* a frame sits inside its stripe group is a first-order
 * performance knob. ShiftsReduce reports 24-50% shift reduction from
 * access-frequency-aware placement and R^4 shows runtime relayout is
 * practical; this module separates that policy axis from the bank
 * mechanics (RmBank):
 *
 *  - `static`     today's layout (frame index -> segment slot by
 *                 arithmetic), bit-identical to the pre-placement
 *                 bank and pinned by the golden digests.
 *  - `hot-center` ShiftsReduce-style: rank frames by access
 *                 frequency and pack the hottest frames into the
 *                 slots nearest the head's rest anchor. With an
 *                 offline profile (seeded from a first pass) the
 *                 layout is fixed at construction; without one, each
 *                 group reorganises itself once after its first
 *                 epoch of observed accesses, paying migration
 *                 shifts.
 *  - `adaptive`   online remapping: per-group epoch counters trigger
 *                 bounded hot/cold slot swaps every epoch, with the
 *                 migration shift cost charged to the bank ledger
 *                 (the same charge discipline as the degradation
 *                 remap machinery).
 *
 * The policy also owns the port-position scheduling axis: where a
 * group's heads rest when idle (stay / return-home / center /
 * predictive). The predictive policy rests each group's head under
 * the slot that served the most accesses in the group's last epoch.
 *
 * Policies never move functional bits — like RmBank they model
 * timing/energy/reliability only; a "migration" is a scheduled cost,
 * not a data copy.
 */

#ifndef RTM_MEM_PLACEMENT_HH
#define RTM_MEM_PLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/head_policy.hh"

namespace rtm
{

/** Placement policy selector. */
enum class PlacementKind
{
    Static,    //!< arithmetic layout (paper Sec. 6.1), the baseline
    HotCenter, //!< frequency-ranked, hottest frames nearest the rest
    Adaptive   //!< epoch-based bounded hot/cold swaps at runtime
};

/** Token used in specs/CLI ("static", "hot-center", "adaptive"). */
const char *placementKindName(PlacementKind kind);

/** Parse a placement token; returns false on unknown input. */
bool placementKindFromToken(const std::string &token,
                            PlacementKind *out);

/** Placement configuration carried by RmBankConfig. */
struct PlacementConfig
{
    PlacementKind kind = PlacementKind::Static;

    /**
     * Per-group epoch length in accesses: a group reconsiders its
     * layout (and its predictive rest slot) every `epoch_accesses`
     * accesses it serves. Small by design — with the Table 4
     * geometry a group sees only a sliver of the bank's traffic.
     */
    uint64_t epoch_accesses = 64;

    /** Hot/cold slot swaps an adaptive group may make per epoch. */
    int swap_budget = 4;

    /**
     * Offline per-frame access counts (index = frame). When set,
     * hot-center computes its layout from this profile at
     * construction (the data is laid out before the cache fills, so
     * no migration cost is charged). Programmatic only — never
     * serialized into specs.
     */
    std::vector<uint64_t> profile;

    /**
     * Force per-frame access counting even for policies that do not
     * need it (profiling pass of the offline hot-center variant).
     */
    bool track_counts = false;
};

/** Geometry a placement policy needs from the bank. */
struct PlacementGeometry
{
    uint64_t line_frames = 0;
    int frames_per_group = 64;
    int seg_len = 8;
};

/**
 * One scheduled frame move: the frame's slot offset changed, and the
 * bank must charge |to - from| single-step shifts on the group that
 * physically holds the frame. An adaptive swap emits two migrations.
 */
struct PlacementMigration
{
    uint64_t frame = 0;
    int from_offset = 0;
    int to_offset = 0;
};

/**
 * Frame -> (group, slot) mapping plus port-position scheduling.
 *
 * The home-group mapping (`groupOf`) is shared by every policy —
 * cross-group placement is left to the bank's remap machinery — but
 * the slot a frame occupies inside its group and the offset its
 * group's heads rest at are policy decisions.
 *
 * Determinism contract: every decision is a pure function of the
 * access sequence observed through recordAccess(), so simulations
 * stay bit-identical at any thread count.
 */
class PlacementPolicy
{
  public:
    PlacementPolicy(const PlacementGeometry &geom,
                    const PlacementConfig &config,
                    HeadPolicy head_policy);
    virtual ~PlacementPolicy() = default;

    /** Policy token (matches placementKindName). */
    virtual const char *name() const = 0;

    /** Head offset that serves `frame` in its group. */
    virtual int slotOffset(uint64_t frame) const = 0;

    /** Home stripe group of a frame. */
    uint64_t groupOf(uint64_t frame) const
    {
        return frame /
               static_cast<uint64_t>(geom_.frames_per_group);
    }

    /** Offset `group`'s heads drift to when idle. */
    int restOffset(uint64_t group) const
    {
        if (head_policy_ == HeadPolicy::Predictive)
            return group_rest_[group];
        return fixed_rest_;
    }

    /**
     * Whether the bank must call recordAccess() on every access
     * (false for the static policy with default head policies — the
     * hot path then skips placement bookkeeping entirely).
     */
    bool tracking() const { return tracking_; }

    /**
     * Observe one served access. Appends any migrations the policy
     * schedules at an epoch boundary to `out` (never cleared here);
     * the caller charges them to the shift ledger.
     */
    void recordAccess(uint64_t frame,
                      std::vector<PlacementMigration> *out);

    /**
     * Per-frame access counts accumulated so far (empty unless the
     * policy tracks). The offline hot-center profile of a second run
     * is seeded from a first run's counts.
     */
    const std::vector<uint64_t> &frameCounts() const
    {
        return frame_count_;
    }

  protected:
    /**
     * Epoch hook: `group` just completed `epoch_accesses` accesses.
     * Dynamic policies reorganise here and emit migrations.
     */
    virtual void onEpoch(uint64_t group,
                         std::vector<PlacementMigration> *out)
    {
        (void)group;
        (void)out;
    }

    /**
     * Whether counts are aged (halved every kAgePeriod epochs of a
     * group). Aging every epoch would cap counts near the epoch
     * length and drown mild within-group skew in sampling noise;
     * a few epochs of accumulation keep the ranking separable while
     * still following phase changes.
     */
    virtual bool agesCounts() const { return false; }

    /** Group epochs between two count halvings (see agesCounts). */
    static constexpr uint64_t kAgePeriod = 8;

    /** The arithmetic (static) slot of a frame. */
    int homeOffset(uint64_t frame) const
    {
        int idx = static_cast<int>(
            frame % static_cast<uint64_t>(geom_.frames_per_group));
        int r = idx % geom_.seg_len;
        return geom_.seg_len - 1 - r;
    }

    /** Frames a group can hold per slot offset. */
    int slotsPerOffset() const
    {
        return geom_.frames_per_group / geom_.seg_len;
    }

    /** [first, last) frame range of a group. */
    void frameRange(uint64_t group, uint64_t *first,
                    uint64_t *last) const;

    /**
     * Offsets ordered nearest-first around the group's rest anchor
     * (ties toward the lower offset). The hottest frames are packed
     * into the earliest offsets of this order.
     */
    std::vector<int> offsetsByProximity(uint64_t group) const;

    /** Recompute the predictive rest slot of a group. */
    void updateRest(uint64_t group);

    PlacementGeometry geom_;
    PlacementConfig config_;
    HeadPolicy head_policy_;
    int fixed_rest_ = 0;
    bool tracking_ = false;

    /** Per-frame access counts (allocated only when tracking). */
    std::vector<uint64_t> frame_count_;
    /** Per-group accesses since the last epoch boundary. */
    std::vector<uint64_t> group_since_epoch_;
    /** Per-group completed-epoch counter (drives count aging). */
    std::vector<uint64_t> group_epochs_;
    /** Per-group predictive rest offset. */
    std::vector<int8_t> group_rest_;
};

/** Build the policy selected by `config.kind`. */
std::unique_ptr<PlacementPolicy>
makePlacementPolicy(const PlacementGeometry &geom,
                    const PlacementConfig &config,
                    HeadPolicy head_policy);

} // namespace rtm

#endif // RTM_MEM_PLACEMENT_HH
