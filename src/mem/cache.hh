/**
 * @file
 * Set-associative write-back cache with LRU replacement.
 *
 * This is the tag-array substrate of the evaluation's three-level
 * hierarchy (paper Table 4). It models hits, misses, allocations and
 * dirty evictions; timing and energy are layered on top by the
 * hierarchy and LLC models so the same tag logic serves SRAM, STT-RAM
 * and racetrack configurations.
 *
 * The simulator runs millions of accesses per (workload, option)
 * cell, so the lookup path is specialised at construction: line size
 * and set count are powers of two (enforced), so set/tag extraction
 * is a shift and a mask, and the line metadata is stored
 * structure-of-arrays — the way scan walks one compact packed-tag
 * word array (tag | dirty | valid) instead of striding over full
 * line records, touching two cache lines per 16-way set instead of
 * six. Behaviour (hit/miss, victim selection, fill order, stats) is
 * bit-identical to the straightforward implementation;
 * tests/sim_golden_test.cc pins that equivalence against a reference
 * copy of the original code.
 */

#ifndef RTM_MEM_CACHE_HH
#define RTM_MEM_CACHE_HH

#include <cstdint>
#include <vector>

namespace rtm
{

/** Physical address type. */
using Addr = uint64_t;

/** Result of a cache lookup+allocate. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false;     //!< a dirty victim was evicted
    Addr victim_addr = 0;       //!< line address of the victim
    uint64_t frame_index = 0;   //!< set * assoc + way touched
};

/** Aggregate counters for one cache. */
struct CacheStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_misses = 0;
    uint64_t write_misses = 0;
    uint64_t writebacks = 0;

    uint64_t accesses() const { return reads + writes; }
    uint64_t misses() const { return read_misses + write_misses; }
    double missRate() const;
};

/**
 * Tag-array model.
 */
class Cache
{
  public:
    /**
     * @param capacity_bytes total data capacity
     * @param associativity  ways per set
     * @param line_bytes     line size (64 B in the paper)
     */
    Cache(uint64_t capacity_bytes, int associativity,
          int line_bytes = 64);

    /**
     * Look up an address; allocate on miss (write-allocate policy).
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Invalidate everything (test support). */
    void flush();

    /** True if the line holding addr is currently resident. */
    bool contains(Addr addr) const;

    const CacheStats &stats() const { return stats_; }

    uint64_t sets() const { return sets_; }
    int ways() const { return ways_; }
    int lineBytes() const { return line_bytes_; }
    uint64_t capacityBytes() const { return capacity_; }

  private:
    /** Low state bits of a packed metadata word. */
    enum : uint64_t { kValid = 1, kDirty = 2, kStateMask = 3 };

    uint64_t capacity_;
    int ways_;
    int line_bytes_;
    uint64_t sets_;
    int line_shift_;     //!< log2(line_bytes)
    int tag_shift_;      //!< log2(line_bytes * sets)
    uint64_t set_mask_;  //!< sets - 1
    uint64_t tick_ = 0;

    // Structure-of-arrays line metadata, indexed set * ways + way.
    // meta_[i] = (tag << 2) | dirty | valid: the hit scan touches
    // only this one compact word array (a tag cannot overflow the 62
    // available bits — tag = addr >> tag_shift with tag_shift >= 6).
    // lru_ is read on the miss path for victim selection and written
    // on hits.
    std::vector<uint64_t> meta_;
    std::vector<uint64_t> lru_;

    CacheStats stats_;

    uint64_t setOf(Addr addr) const
    {
        return (addr >> line_shift_) & set_mask_;
    }

    Addr tagOf(Addr addr) const { return addr >> tag_shift_; }

    Addr lineAddr(Addr tag, uint64_t set) const
    {
        return ((tag << (tag_shift_ - line_shift_)) | set)
               << line_shift_;
    }

    /** Way holding (set, tag), or -1 when not resident. */
    int findWay(uint64_t base, Addr tag) const;
};

} // namespace rtm

#endif // RTM_MEM_CACHE_HH
