/**
 * @file
 * Set-associative write-back cache with LRU replacement.
 *
 * This is the tag-array substrate of the evaluation's three-level
 * hierarchy (paper Table 4). It models hits, misses, allocations and
 * dirty evictions; timing and energy are layered on top by the
 * hierarchy and LLC models so the same tag logic serves SRAM, STT-RAM
 * and racetrack configurations.
 */

#ifndef RTM_MEM_CACHE_HH
#define RTM_MEM_CACHE_HH

#include <cstdint>
#include <vector>

namespace rtm
{

/** Physical address type. */
using Addr = uint64_t;

/** Result of a cache lookup+allocate. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false;     //!< a dirty victim was evicted
    Addr victim_addr = 0;       //!< line address of the victim
    uint64_t frame_index = 0;   //!< set * assoc + way touched
};

/** Aggregate counters for one cache. */
struct CacheStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_misses = 0;
    uint64_t write_misses = 0;
    uint64_t writebacks = 0;

    uint64_t accesses() const { return reads + writes; }
    uint64_t misses() const { return read_misses + write_misses; }
    double missRate() const;
};

/**
 * Tag-array model.
 */
class Cache
{
  public:
    /**
     * @param capacity_bytes total data capacity
     * @param associativity  ways per set
     * @param line_bytes     line size (64 B in the paper)
     */
    Cache(uint64_t capacity_bytes, int associativity,
          int line_bytes = 64);

    /**
     * Look up an address; allocate on miss (write-allocate policy).
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Invalidate everything (test support). */
    void flush();

    /** True if the line holding addr is currently resident. */
    bool contains(Addr addr) const;

    const CacheStats &stats() const { return stats_; }

    uint64_t sets() const { return sets_; }
    int ways() const { return ways_; }
    int lineBytes() const { return line_bytes_; }
    uint64_t capacityBytes() const { return capacity_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0; //!< larger = more recently used
    };

    uint64_t capacity_;
    int ways_;
    int line_bytes_;
    uint64_t sets_;
    uint64_t tick_ = 0;
    std::vector<Line> lines_;
    CacheStats stats_;

    uint64_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(Addr tag, uint64_t set) const;
    Line &line(uint64_t set, int way);
    const Line &line(uint64_t set, int way) const;
};

} // namespace rtm

#endif // RTM_MEM_CACHE_HH
