#include "cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rtm
{

namespace
{

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

int
log2OfPowerOfTwo(uint64_t v)
{
    int s = 0;
    while ((v >> s) != 1)
        ++s;
    return s;
}

} // anonymous namespace

double
CacheStats::missRate() const
{
    uint64_t total = accesses();
    if (total == 0)
        return 0.0;
    return static_cast<double>(misses()) /
           static_cast<double>(total);
}

Cache::Cache(uint64_t capacity_bytes, int associativity,
             int line_bytes)
    : capacity_(capacity_bytes), ways_(associativity),
      line_bytes_(line_bytes)
{
    if (ways_ < 1)
        rtm_fatal("cache needs at least one way");
    if (!isPowerOfTwo(static_cast<uint64_t>(line_bytes_)))
        rtm_fatal("line size must be a power of two");
    uint64_t lines = capacity_ / static_cast<uint64_t>(line_bytes_);
    if (lines == 0 || lines % static_cast<uint64_t>(ways_) != 0)
        rtm_fatal("capacity %llu not divisible into %d-way sets",
                  static_cast<unsigned long long>(capacity_), ways_);
    sets_ = lines / static_cast<uint64_t>(ways_);
    if (!isPowerOfTwo(sets_))
        rtm_fatal("set count must be a power of two");
    line_shift_ = log2OfPowerOfTwo(
        static_cast<uint64_t>(line_bytes_));
    tag_shift_ = line_shift_ + log2OfPowerOfTwo(sets_);
    set_mask_ = sets_ - 1;
    meta_.assign(lines, 0);
    lru_.assign(lines, 0);
}

int
Cache::findWay(uint64_t base, Addr tag) const
{
    // A valid entry with this tag matches ignoring its dirty bit.
    const uint64_t want = (tag << 2) | kValid | kDirty;
    for (int w = 0; w < ways_; ++w) {
        if ((meta_[base + static_cast<uint64_t>(w)] | kDirty) == want)
            return w;
    }
    return -1;
}

bool
Cache::contains(Addr addr) const
{
    uint64_t base = setOf(addr) * static_cast<uint64_t>(ways_);
    return findWay(base, tagOf(addr)) >= 0;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    ++tick_;
    uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    uint64_t base = set * static_cast<uint64_t>(ways_);
    CacheAccessResult res;

    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    // One pass finds the hit way and, failing that, the victim: the
    // first invalid way wins outright; later invalid ways must not
    // displace it (fill order matters for the racetrack frame
    // mapping). Among valid ways the oldest LRU stamp loses, earliest
    // way on ties.
    const uint64_t want = (tag << 2) | kValid | kDirty;
    int victim = 0;
    bool victim_invalid = false;
    uint64_t oldest = UINT64_MAX;
    for (int w = 0; w < ways_; ++w) {
        uint64_t i = base + static_cast<uint64_t>(w);
        uint64_t m = meta_[i];
        if (m & kValid) {
            if ((m | kDirty) == want) {
                lru_[i] = tick_;
                if (is_write)
                    meta_[i] = m | kDirty;
                res.hit = true;
                res.frame_index = i;
                return res;
            }
            if (!victim_invalid && lru_[i] < oldest) {
                victim = w;
                oldest = lru_[i];
            }
        } else if (!victim_invalid) {
            victim = w;
            victim_invalid = true;
        }
    }

    if (is_write)
        ++stats_.write_misses;
    else
        ++stats_.read_misses;

    uint64_t vi = base + static_cast<uint64_t>(victim);
    uint64_t vm = meta_[vi];
    if ((vm & kStateMask) == (kValid | kDirty)) {
        res.writeback = true;
        res.victim_addr = lineAddr(vm >> 2, set);
        ++stats_.writebacks;
    }
    meta_[vi] = (tag << 2) | (is_write ? (kValid | kDirty) : kValid);
    lru_[vi] = tick_;
    res.frame_index = vi;
    return res;
}

void
Cache::flush()
{
    std::fill(meta_.begin(), meta_.end(), 0);
    std::fill(lru_.begin(), lru_.end(), 0);
}

} // namespace rtm
