#include "cache.hh"

#include "util/logging.hh"

namespace rtm
{

namespace
{

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

double
CacheStats::missRate() const
{
    uint64_t total = accesses();
    if (total == 0)
        return 0.0;
    return static_cast<double>(misses()) /
           static_cast<double>(total);
}

Cache::Cache(uint64_t capacity_bytes, int associativity,
             int line_bytes)
    : capacity_(capacity_bytes), ways_(associativity),
      line_bytes_(line_bytes)
{
    if (ways_ < 1)
        rtm_fatal("cache needs at least one way");
    if (!isPowerOfTwo(static_cast<uint64_t>(line_bytes_)))
        rtm_fatal("line size must be a power of two");
    uint64_t lines = capacity_ / static_cast<uint64_t>(line_bytes_);
    if (lines == 0 || lines % static_cast<uint64_t>(ways_) != 0)
        rtm_fatal("capacity %llu not divisible into %d-way sets",
                  static_cast<unsigned long long>(capacity_), ways_);
    sets_ = lines / static_cast<uint64_t>(ways_);
    if (!isPowerOfTwo(sets_))
        rtm_fatal("set count must be a power of two");
    lines_.assign(lines, Line{});
}

uint64_t
Cache::setOf(Addr addr) const
{
    return (addr / static_cast<uint64_t>(line_bytes_)) & (sets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / static_cast<uint64_t>(line_bytes_) / sets_;
}

Addr
Cache::lineAddr(Addr tag, uint64_t set) const
{
    return (tag * sets_ + set) * static_cast<uint64_t>(line_bytes_);
}

Cache::Line &
Cache::line(uint64_t set, int way)
{
    return lines_[set * static_cast<uint64_t>(ways_) +
                  static_cast<uint64_t>(way)];
}

const Cache::Line &
Cache::line(uint64_t set, int way) const
{
    return lines_[set * static_cast<uint64_t>(ways_) +
                  static_cast<uint64_t>(way)];
}

bool
Cache::contains(Addr addr) const
{
    uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    for (int w = 0; w < ways_; ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    ++tick_;
    uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    CacheAccessResult res;

    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    int victim = 0;
    bool victim_invalid = false;
    uint64_t oldest = UINT64_MAX;
    for (int w = 0; w < ways_; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            l.lru = tick_;
            if (is_write)
                l.dirty = true;
            res.hit = true;
            res.frame_index = set * static_cast<uint64_t>(ways_) +
                              static_cast<uint64_t>(w);
            return res;
        }
        if (!l.valid) {
            // Prefer the first invalid way; later invalid ways must
            // not displace it (fill order matters for the racetrack
            // frame mapping).
            if (!victim_invalid) {
                victim = w;
                victim_invalid = true;
            }
        } else if (!victim_invalid && l.lru < oldest) {
            victim = w;
            oldest = l.lru;
        }
    }

    // Miss: allocate over the LRU victim.
    if (is_write)
        ++stats_.write_misses;
    else
        ++stats_.read_misses;

    Line &v = line(set, victim);
    if (v.valid && v.dirty) {
        res.writeback = true;
        res.victim_addr = lineAddr(v.tag, set);
        ++stats_.writebacks;
    }
    v.valid = true;
    v.dirty = is_write;
    v.tag = tag;
    v.lru = tick_;
    res.frame_index = set * static_cast<uint64_t>(ways_) +
                      static_cast<uint64_t>(victim);
    return res;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l = Line{};
}

} // namespace rtm
