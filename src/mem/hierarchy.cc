#include "hierarchy.hh"

#include "util/logging.hh"

namespace rtm
{

Hierarchy::Hierarchy(const HierarchyConfig &config,
                     const PositionErrorModel *model)
    : config_(config), l1_params_(l1Params()), l2_params_(l2Params()),
      l3_params_(l3For(config.llc_tech)), dram_(dramParams())
{
    if (config_.cores < 1)
        rtm_fatal("hierarchy needs at least one core");
    if (config_.capacity_divisor == 0)
        rtm_fatal("capacity divisor must be >= 1");
    l1_params_.capacity_bytes /= config_.capacity_divisor;
    l2_params_.capacity_bytes /= config_.capacity_divisor;
    l3_params_.capacity_bytes /= config_.capacity_divisor;
    uint64_t min_bytes =
        static_cast<uint64_t>(config_.line_bytes) * 16;
    if (l1_params_.capacity_bytes < min_bytes)
        rtm_fatal("capacity divisor leaves L1 below %llu bytes",
                  static_cast<unsigned long long>(min_bytes));
    for (int c = 0; c < config_.cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            l1_params_.capacity_bytes, config_.l1_ways,
            config_.line_bytes));
    }
    int clusters = (config_.cores + 1) / 2;
    for (int cl = 0; cl < clusters; ++cl) {
        l2_.push_back(std::make_unique<Cache>(
            l2_params_.capacity_bytes, config_.l2_ways,
            config_.line_bytes));
    }
    l3_ = std::make_unique<Cache>(l3_params_.capacity_bytes,
                                  config_.llc_ways,
                                  config_.line_bytes);

    if (config_.llc_tech == MemTech::Racetrack ||
        config_.llc_tech == MemTech::RacetrackIdeal) {
        if (!model)
            rtm_fatal("racetrack LLC needs a position-error model");
        RmBankConfig bank;
        bank.line_frames = l3_params_.capacity_bytes /
                           static_cast<uint64_t>(config_.line_bytes);
        bank.frames_per_group = config_.frames_per_group;
        bank.seg_len = config_.seg_len;
        bank.scheme = config_.scheme;
        // A uniform / llc-level scheme override replaces the bank's
        // base scheme outright (timing and planning included);
        // region-scoped overrides stay classification-only.
        const ProtectionDomain &llc = config_.protection.llcDomain();
        if (llc.has_scheme)
            bank.scheme = llc.scheme;
        bank.protection = config_.protection;
        bank.mttf_target_s = config_.mttf_target_s;
        bank.head_policy = config_.head_policy;
        bank.placement = config_.placement;
        bank.model_contention = config_.model_contention;
        bank.use_plan_memo = config_.use_plan_memo;
        bank.telemetry = config_.telemetry;
        rm_bank_ = std::make_unique<RmBank>(bank, model, l3_params_);
    }
}

const Cache &
Hierarchy::l1(int core) const
{
    if (core < 0 || core >= config_.cores)
        rtm_panic("core %d out of range", core);
    return *l1_[static_cast<size_t>(core)];
}

const Cache &
Hierarchy::l2(int cluster) const
{
    if (cluster < 0 ||
        cluster >= static_cast<int>(l2_.size()))
        rtm_panic("cluster %d out of range", cluster);
    return *l2_[static_cast<size_t>(cluster)];
}

void
Hierarchy::exportTelemetry(Telemetry &sink) const
{
    auto level = [&sink](const char *name, const CacheStats &s) {
        std::string prefix = std::string("mem.") + name + ".";
        sink.counter(prefix + "accesses").add(s.accesses());
        sink.counter(prefix + "hits").add(s.accesses() - s.misses());
        sink.counter(prefix + "misses").add(s.misses());
        sink.counter(prefix + "writebacks").add(s.writebacks);
    };
    CacheStats l1_sum;
    for (const auto &c : l1_) {
        const CacheStats &s = c->stats();
        l1_sum.reads += s.reads;
        l1_sum.writes += s.writes;
        l1_sum.read_misses += s.read_misses;
        l1_sum.write_misses += s.write_misses;
        l1_sum.writebacks += s.writebacks;
    }
    CacheStats l2_sum;
    for (const auto &c : l2_) {
        const CacheStats &s = c->stats();
        l2_sum.reads += s.reads;
        l2_sum.writes += s.writes;
        l2_sum.read_misses += s.read_misses;
        l2_sum.write_misses += s.write_misses;
        l2_sum.writebacks += s.writebacks;
    }
    level("l1", l1_sum);
    level("l2", l2_sum);
    level("l3", l3_->stats());
    sink.counter("mem.dram.accesses").add(dram_accesses_);
    sink.gauge("mem.dram.energy_joules").set(dram_energy_);
}

double
Hierarchy::totalLeakageWatts() const
{
    double watts = l1_params_.leakage_watts *
                   static_cast<double>(config_.cores);
    watts += l2_params_.leakage_watts *
             static_cast<double>(l2_.size());
    watts += l3_params_.leakage_watts;
    return watts;
}

HierarchyAccess
Hierarchy::access(int core, Addr addr, bool is_write, Cycles now)
{
    if (core < 0 || core >= config_.cores)
        rtm_panic("core %d out of range", core);
    HierarchyAccess out;

    // --- L1 -----------------------------------------------------------
    Cache &l1c = *l1_[static_cast<size_t>(core)];
    CacheAccessResult r1 = l1c.access(addr, is_write);
    out.latency += is_write ? l1_params_.write_latency
                            : l1_params_.read_latency;
    out.energy += is_write ? l1_params_.write_energy
                           : l1_params_.read_energy;
    if (r1.hit) {
        out.l1_hit = true;
        return out;
    }
    // A dirty L1 victim writes through to L2 (energy only; the write
    // happens off the critical path).
    Cache &l2c = *l2_[static_cast<size_t>(core / 2)];
    if (r1.writeback) {
        l2c.access(r1.victim_addr, true);
        out.energy += l2_params_.write_energy;
    }

    // --- L2 -----------------------------------------------------------
    CacheAccessResult r2 = l2c.access(addr, is_write);
    out.latency += is_write ? l2_params_.write_latency
                            : l2_params_.read_latency;
    out.energy += is_write ? l2_params_.write_energy
                           : l2_params_.read_energy;
    if (r2.hit) {
        out.l2_hit = true;
        return out;
    }

    // --- L3 -----------------------------------------------------------
    CacheAccessResult r3 = l3_->access(addr, is_write);
    out.latency += is_write ? l3_params_.write_latency
                            : l3_params_.read_latency;
    out.energy += is_write ? l3_params_.write_energy
                           : l3_params_.read_energy;
    if (rm_bank_) {
        ShiftCost shift =
            rm_bank_->accessFrame(r3.frame_index, now);
        // Pooled codewords fetch their shared redundancy region on
        // every write and, unless the domain reads two-tier, on
        // every read (the frequent EDC-clean case skips it).
        const ProtectionDomain &pd =
            rm_bank_->domainFor(r3.frame_index);
        if (pd.codeword_frames > 1 && (is_write || !pd.two_tier)) {
            ShiftCost red =
                rm_bank_->accessRedundancy(r3.frame_index, now);
            shift.latency += red.latency;
            shift.energy += red.energy;
        }
        if (config_.llc_tech == MemTech::Racetrack) {
            out.latency += shift.latency;
            out.shift_cycles = shift.latency;
            out.energy += shift.energy;
        }
        // RacetrackIdeal: shifts tracked but free (Fig. 16 "ideal").
    }
    if (r2.writeback) {
        // L2 victim installs into L3 (off critical path, energy
        // plus a racetrack shift for its frame if applicable).
        CacheAccessResult wb = l3_->access(r2.victim_addr, true);
        out.energy += l3_params_.write_energy;
        if (rm_bank_) {
            ShiftCost shift =
                rm_bank_->accessFrame(wb.frame_index, now);
            // The install is a write: a pooled codeword always
            // updates its redundancy region.
            const ProtectionDomain &pd =
                rm_bank_->domainFor(wb.frame_index);
            if (pd.codeword_frames > 1) {
                ShiftCost red =
                    rm_bank_->accessRedundancy(wb.frame_index, now);
                shift.energy += red.energy;
            }
            if (config_.llc_tech == MemTech::Racetrack)
                out.energy += shift.energy;
        }
        if (wb.writeback) {
            ++dram_accesses_;
            dram_energy_ += dram_.access_energy;
        }
    }
    if (r3.hit) {
        out.l3_hit = true;
        return out;
    }

    // --- DRAM ---------------------------------------------------------
    out.dram_access = true;
    ++dram_accesses_;
    out.latency += dram_.access_latency;
    out.energy += dram_.access_energy;
    dram_energy_ += dram_.access_energy;
    if (r3.writeback) {
        ++dram_accesses_;
        dram_energy_ += dram_.access_energy;
        out.energy += dram_.access_energy;
    }
    return out;
}

} // namespace rtm
