#include "rm_bank.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rtm
{

namespace
{

/** Map scheme to shift policy flavour. */
ShiftPolicy
policyFor(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
      case Scheme::Sts:
      case Scheme::SedPecc:
      case Scheme::SecdedPecc:
      case Scheme::LmPos:
      case Scheme::DelIns:
        return ShiftPolicy::Unconstrained;
      case Scheme::PeccO:
        return ShiftPolicy::StepByStep;
      case Scheme::PeccSWorst:
        return ShiftPolicy::WorstCase;
      case Scheme::PeccSAdaptive:
        return ShiftPolicy::Adaptive;
    }
    return ShiftPolicy::Unconstrained;
}

/** p-ECC window check latency folded into each shift op. */
double
checkSecondsFor(Scheme scheme)
{
    // All code-based schemes expose one cycle of in-path detection
    // (the basic 0.34 ns window decode). The richer p-ECC-S
    // controllers report longer detection in Table 5 (0.38/0.61 ns),
    // but that extra logic pipelines with the next operation rather
    // than stretching every shift - consistent with the paper's
    // measurement that the adaptive scheme has the *lowest* overall
    // latency overhead.
    return (scheme == Scheme::Baseline || scheme == Scheme::Sts)
               ? 0.0
               : overheadsFor(Scheme::SecdedPecc).detect_time;
}

/** Sentinel: this stripe group has never shifted. */
constexpr Cycles kNeverShifted =
    std::numeric_limits<Cycles>::max();

} // anonymous namespace

RmBank::RmBank(const RmBankConfig &config,
               const PositionErrorModel *model, const TechParams &tech)
    : config_(config), model_(model), tech_(tech),
      timing_(kDefaultClockHz, 0.4e-9, 1.0e-9,
              checkSecondsFor(config.scheme)),
      planner_(model, timing_,
               std::max(0, schemeCorrectionStrength(config.scheme)),
               config.seg_len - 1, config.mttf_target_s),
      protection_(resolveProtection(config.protection,
                                    config.line_frames)),
      reliability_model_(model,
                         protection_.domains[0].has_scheme
                             ? protection_.domains[0].scheme
                             : config.scheme,
                         protection_.domains[0].codeword_frames),
      policy_(policyFor(config.scheme)),
      memo_enabled_(config.use_plan_memo)
{
    if (!model_)
        rtm_fatal("RmBank needs an error model");
    if (config_.line_frames == 0)
        rtm_fatal("RmBank needs at least one frame");
    if (config_.frames_per_group % config_.seg_len != 0)
        rtm_fatal("frames_per_group must be a multiple of seg_len");
    for (size_t i = 0; i < protection_.domains.size(); ++i) {
        ProtectionDomain &d = protection_.domains[i];
        const Scheme es = d.has_scheme ? d.scheme : config_.scheme;
        if (d.codeword_frames > 1 &&
            schemeCorrectionStrength(es) < 0) {
            // An unprotected scheme has no code to pool: serve the
            // domain per-frame instead of refusing the whole sweep
            // cell (the standard matrix includes baseline options).
            rtm_warn("protection domain %zu: scheme '%s' is "
                     "unprotected; serving per-frame codewords",
                     i, schemeToken(es));
            d.codeword_frames = 1;
            d.two_tier = false;
        }
        const std::string err = protectionDomainError(
            d, config_.scheme, config_.seg_len,
            config_.frames_per_group);
        if (!err.empty())
            rtm_fatal("protection domain %zu: %s", i, err.c_str());
        if (i > 0) {
            extra_models_.emplace_back(
                model, d.has_scheme ? d.scheme : config_.scheme,
                d.codeword_frames);
        }
    }
    uint64_t groups =
        (config_.line_frames +
         static_cast<uint64_t>(config_.frames_per_group) - 1) /
        static_cast<uint64_t>(config_.frames_per_group);
    head_.assign(groups, 0);
    busy_until_.assign(groups, 0);
    last_access_.assign(groups, kNeverShifted);
    degraded_.assign(groups, 0);
    due_count_.assign(groups, 0);
    remap_.resize(groups);
    for (uint64_t g = 0; g < groups; ++g)
        remap_[g] = g;
    serving_memo_ = remap_;
    group_stats_.assign(groups, RmGroupStats{});
    PlacementGeometry geom;
    geom.line_frames = config_.line_frames;
    geom.frames_per_group = config_.frames_per_group;
    geom.seg_len = config_.seg_len;
    placement_ = makePlacementPolicy(geom, config_.placement,
                                     config_.head_policy);
    // A cold memory has been idle "forever": the adaptive policy may
    // use its most permissive plan on the very first shift.
    last_shift_ = kNeverShifted;
    worst_case_distance_ =
        planner_.safeDistance(config_.peak_ops_per_second);
    invalidatePlanMemo();

    if (config_.telemetry) {
        Telemetry &t = *config_.telemetry.get();
        t_events_ = &t;
        t_accesses_ = &t.counter("mem.rm_bank.accesses");
        t_shift_ops_ = &t.counter("mem.rm_bank.shift_ops");
        t_shift_steps_ = &t.counter("mem.rm_bank.shift_steps");
        t_remaps_ = &t.counter("mem.rm_bank.remapped_accesses");
        t_due_reports_ = &t.counter("mem.rm_bank.due_reports");
        t_retired_ = &t.counter("mem.rm_bank.groups_retired");
        t_migrations_ = &t.counter("mem.rm_bank.migrations");
        t_migration_steps_ =
            &t.counter("mem.rm_bank.migration_steps");
        t_shift_latency_ = &t.histogram(
            "mem.rm_bank.shift_latency_cycles", powerOfTwoEdges(4096));
    }
}

/**
 * Decompose `distance` into sub-shift parts exactly as the live
 * (non-memo) access path does for the bank's policy. The adaptive
 * policy is handled by the caller (one memo entry per Pareto plan).
 */
static std::vector<int>
staticPartsFor(ShiftPolicy policy, int distance, int worst_case)
{
    std::vector<int> parts;
    switch (policy) {
      case ShiftPolicy::Unconstrained:
        parts = {distance};
        break;
      case ShiftPolicy::StepByStep:
        parts.assign(static_cast<size_t>(distance), 1);
        break;
      case ShiftPolicy::WorstCase: {
        int remaining = distance;
        while (remaining > 0) {
            int p = std::min(remaining, worst_case);
            parts.push_back(p);
            remaining -= p;
        }
        break;
      }
      case ShiftPolicy::Adaptive:
        break; // caller enumerates the Pareto front instead
    }
    return parts;
}

void
RmBank::invalidatePlanMemo()
{
    one_step_cycles_ = timing_.shiftCycles(1);
    one_step_energy_ = shiftOpEnergy(1);

    // Heads travel within one segment, so every request distance is
    // in [1, seg_len - 1]; precompute each distance's decomposition
    // cost with the identical per-part fold the live path performs,
    // so serving from the memo reproduces its arithmetic bit for
    // bit.
    const int max_distance = config_.seg_len - 1;
    plan_memo_.assign(static_cast<size_t>(std::max(max_distance, 0)),
                      {});
    drift_memo_.assign(static_cast<size_t>(max_distance) + 1,
                       PlanCost{});
    for (int d = 1; d <= max_distance; ++d) {
        std::vector<std::vector<int>> decomps;
        std::vector<Cycles> intervals;
        if (policy_ == ShiftPolicy::Adaptive) {
            // One interval bucket per Pareto plan, in planFor's scan
            // order: the first entry whose min_interval the observed
            // interval meets is the plan the planner would pick.
            for (const SequencePlan &plan : planner_.paretoFront(d)) {
                decomps.push_back(plan.parts);
                intervals.push_back(plan.min_interval);
            }
        } else {
            decomps.push_back(
                staticPartsFor(policy_, d, worst_case_distance_));
            intervals.push_back(0);
        }
        auto &entries = plan_memo_[static_cast<size_t>(d - 1)];
        entries.reserve(decomps.size());
        for (size_t i = 0; i < decomps.size(); ++i) {
            PlanCost pc;
            pc.min_interval = intervals[i];
            for (int p : decomps[i]) {
                pc.latency += timing_.shiftCycles(p);
                pc.energy += shiftOpEnergy(p);
                pc.total_steps += p;
                ++pc.sub_shifts;
            }
            ShiftReliability rel =
                reliability_model_.sequence(decomps[i]);
            pc.sdc_prob = std::exp(rel.log_sdc);
            pc.due_prob = std::exp(rel.log_due);
            for (const ReliabilityModel &dm : extra_models_) {
                ShiftReliability r = dm.sequence(decomps[i]);
                pc.extra_sdc.push_back(std::exp(r.log_sdc));
                pc.extra_due.push_back(std::exp(r.log_due));
            }
            entries.push_back(pc);
        }

        // Idle head drift performs d single-step shifts; cache that
        // sequence's reliability fold too (applyHeadPolicy).
        const std::vector<int> drift_parts(static_cast<size_t>(d), 1);
        ShiftReliability drift =
            reliability_model_.sequence(drift_parts);
        PlanCost &dc = drift_memo_[static_cast<size_t>(d)];
        dc.sdc_prob = std::exp(drift.log_sdc);
        dc.due_prob = std::exp(drift.log_due);
        for (const ReliabilityModel &dm : extra_models_) {
            ShiftReliability r = dm.sequence(drift_parts);
            dc.extra_sdc.push_back(std::exp(r.log_sdc));
            dc.extra_due.push_back(std::exp(r.log_due));
        }
    }
}

void
RmBank::addMemoReliability(const PlanCost &pc, int dom)
{
    const double weight =
        static_cast<double>(config_.stripes_per_group);
    if (dom == 0) {
        stats_.reliability.addExpected(pc.sdc_prob, pc.due_prob,
                                       weight);
    } else {
        stats_.reliability.addExpected(
            pc.extra_sdc[static_cast<size_t>(dom - 1)],
            pc.extra_due[static_cast<size_t>(dom - 1)], weight);
    }
}

void
RmBank::applyHeadPolicy(uint64_t group, Cycles now)
{
    if (config_.head_policy == HeadPolicy::Stay)
        return;
    if (last_access_[group] == kNeverShifted)
        return;
    // The drift happens off the critical path during idle time; it
    // completes only if the group has been idle long enough to walk
    // back (1-step sub-shifts, the gentlest drive).
    Cycles idle = now > last_access_[group]
                      ? now - last_access_[group]
                      : 0;
    int rest = placement_->restOffset(group);
    int dist = std::abs(static_cast<int>(head_[group]) - rest);
    if (dist == 0)
        return;
    Cycles needed = static_cast<Cycles>(dist) * one_step_cycles_;
    if (idle >= needed + 64) { // small hysteresis before drifting
        head_[group] = static_cast<int8_t>(rest);
        // The drift is real work: energy, steps, and failure
        // opportunities, even though it hides off the access path.
        stats_.shift_ops += static_cast<uint64_t>(dist);
        stats_.shift_steps += static_cast<uint64_t>(dist);
        group_stats_[group].shift_ops += static_cast<uint64_t>(dist);
        group_stats_[group].shift_steps +=
            static_cast<uint64_t>(dist);
        stats_.shift_energy +=
            static_cast<double>(dist) * one_step_energy_;
        if (t_events_) {
            // Mirror the ledger exactly: drift shifts count too.
            t_shift_ops_->add(static_cast<uint64_t>(dist));
            t_shift_steps_->add(static_cast<uint64_t>(dist));
        }
        // Domain of the group's first frame; regions snap to
        // codeword boundaries, far finer than a group, so frames of
        // one group rarely span domains (and drift reliability is a
        // per-group approximation anyway).
        const int dom = protection_.domainIndexFor(
            group * static_cast<uint64_t>(config_.frames_per_group));
        if (memo_enabled_) {
            addMemoReliability(drift_memo_[static_cast<size_t>(dist)],
                               dom);
        } else {
            ShiftReliability rel = domainModel(dom).sequence(
                std::vector<int>(static_cast<size_t>(dist), 1));
            stats_.reliability.add(
                rel, static_cast<double>(config_.stripes_per_group));
        }
    }
}

uint64_t
RmBank::groupOf(uint64_t frame) const
{
    return frame / static_cast<uint64_t>(config_.frames_per_group);
}

int
RmBank::indexInGroup(uint64_t frame) const
{
    return static_cast<int>(
        frame % static_cast<uint64_t>(config_.frames_per_group));
}

Joules
RmBank::shiftOpEnergy(int steps) const
{
    // Decompose the Table 4 per-step shift energy into a stage-1
    // component (proportional to distance) and the fixed stage-2
    // sub-threshold pulse: at 2*J0 for 0.4 ns vs ~J0 for 1 ns the
    // split is 2:1 for a 1-step shift.
    double e1 = tech_.shift_energy_per_step * (2.0 / 3.0);
    double e2 = tech_.shift_energy_per_step * (1.0 / 3.0);
    double energy = e1 * static_cast<double>(steps) + e2;
    // p-ECC detection once per shift operation, on every stripe of
    // the group.
    if (config_.scheme != Scheme::Baseline &&
        config_.scheme != Scheme::Sts) {
        energy += overheadsFor(config_.scheme).detect_energy *
                  static_cast<double>(config_.stripes_per_group);
    }
    return energy;
}

ShiftCost
RmBank::accessFrame(uint64_t frame_index, Cycles now)
{
    if (frame_index >= config_.line_frames)
        rtm_panic("frame %llu out of range",
                  static_cast<unsigned long long>(frame_index));
    // Protection domain is keyed on the logical frame address, so
    // it survives degradation remaps.
    const int dom = protection_.domainIndexFor(frame_index);
    uint64_t group = groupOf(frame_index);
    if (stats_.degraded_groups > 0 && degraded_[group]) {
        // The home group has been retired: serve from its remap
        // target. The frame keeps its segment-local slot, so only
        // the group (and its head state) changes.
        uint64_t serving = serving_memo_[group];
        if (serving != group) {
            ++stats_.remapped_accesses;
            if (t_events_) {
                t_remaps_->add();
                t_events_->event(EventKind::FrameRemapped, "rm_bank",
                                 now, static_cast<double>(group),
                                 static_cast<double>(serving));
            }
        }
        group = serving;
    }
    // Placement bookkeeping: access counters, epoch boundaries, and
    // any migrations a dynamic policy schedules. Migrations are
    // charged before this access so it is served from the new slot.
    if (placement_->tracking()) {
        migration_scratch_.clear();
        placement_->recordAccess(frame_index, &migration_scratch_);
        for (const PlacementMigration &m : migration_scratch_)
            chargeMigration(m);
    }
    applyHeadPolicy(group, now);
    int target = placement_->slotOffset(frame_index);
    int cur = head_[group];
    ShiftCost cost;
    ++stats_.accesses;
    ++group_stats_[group].accesses;
    if (t_accesses_)
        t_accesses_->add();
    // Contention: wait out the group's previous shift sequence.
    if (config_.model_contention && busy_until_[group] > now) {
        cost.stall = busy_until_[group] - now;
        cost.latency += cost.stall;
    }
    last_access_[group] = now;
    if (target == cur) {
        stats_.shift_cycles += cost.latency;
        return cost;
    }

    int distance = std::abs(target - cur);
    stats_.distance_histogram.add(distance);

    // Plan under the scheme's policy using the memory-wide request
    // interval (paper Sec. 5.3); interleaved service multiplies the
    // effective intensity, i.e. divides the usable interval.
    Cycles interval;
    if (last_shift_ == kNeverShifted) {
        interval = kNeverShifted;
    } else {
        interval = now > last_shift_ ? now - last_shift_ : 0;
        interval /= static_cast<Cycles>(
            std::max(config_.interleave_ways, 1));
    }
    if (memo_enabled_) {
        // Fast path: the decomposition cost and its reliability fold
        // were precomputed per (distance, interval bucket); entries
        // mirror planFor's scan, so picking the first bucket the
        // interval satisfies reproduces the live plan selection.
        const auto &entries =
            plan_memo_[static_cast<size_t>(distance - 1)];
        const PlanCost *pc = &entries.back();
        for (const PlanCost &e : entries) {
            if (e.min_interval <= interval) {
                pc = &e;
                break;
            }
        }
        cost.latency += pc->latency;
        cost.energy += pc->energy;
        cost.total_steps += pc->total_steps;
        cost.sub_shifts += pc->sub_shifts;
        addMemoReliability(*pc, dom);
        ++stats_.plan_memo_hits;
    } else {
        const std::vector<int> *parts = nullptr;
        std::vector<int> scratch;
        switch (policy_) {
          case ShiftPolicy::Unconstrained:
            scratch = {distance};
            parts = &scratch;
            break;
          case ShiftPolicy::StepByStep:
            scratch.assign(static_cast<size_t>(distance), 1);
            parts = &scratch;
            break;
          case ShiftPolicy::WorstCase: {
            int remaining = distance;
            while (remaining > 0) {
                int p = std::min(remaining, worst_case_distance_);
                scratch.push_back(p);
                remaining -= p;
            }
            parts = &scratch;
            break;
          }
          case ShiftPolicy::Adaptive:
            parts = &planner_.planFor(distance, interval).parts;
            break;
        }

        for (int p : *parts) {
            cost.latency += timing_.shiftCycles(p);
            cost.energy += shiftOpEnergy(p);
            cost.total_steps += p;
            ++cost.sub_shifts;
        }

        // Reliability: every stripe in the group shifts independently
        // and is an independent failure opportunity.
        ShiftReliability rel = domainModel(dom).sequence(*parts);
        stats_.reliability.add(
            rel, static_cast<double>(config_.stripes_per_group));
    }

    head_[group] = static_cast<int8_t>(target);
    last_shift_ = now;
    busy_until_[group] = now + cost.latency;
    stats_.shift_ops += static_cast<uint64_t>(cost.sub_shifts);
    stats_.shift_steps += static_cast<uint64_t>(cost.total_steps);
    group_stats_[group].shift_ops +=
        static_cast<uint64_t>(cost.sub_shifts);
    group_stats_[group].shift_steps +=
        static_cast<uint64_t>(cost.total_steps);
    stats_.shift_cycles += cost.latency;
    stats_.shift_energy += cost.energy;
    if (t_events_) {
        t_shift_ops_->add(static_cast<uint64_t>(cost.sub_shifts));
        t_shift_steps_->add(static_cast<uint64_t>(cost.total_steps));
        t_shift_latency_->record(static_cast<double>(cost.latency));
        t_events_->event(EventKind::ShiftIssued, "rm_bank", now,
                         static_cast<double>(distance),
                         static_cast<double>(cost.latency));
    }
    return cost;
}

ShiftCost
RmBank::accessRedundancy(uint64_t frame_index, Cycles now)
{
    const ProtectionDomain &d = protection_.domainFor(frame_index);
    if (d.codeword_frames <= 1)
        return {};
    // The pooled check region lives in the codeword's base frame
    // slot. codeword_frames divides frames_per_group (validated at
    // construction), so the base frame shares the data frame's
    // group and domain.
    const uint64_t f = static_cast<uint64_t>(d.codeword_frames);
    uint64_t base = (frame_index / f) * f;
    ShiftCost cost = accessFrame(base, now);
    ++stats_.redundancy_accesses;
    stats_.redundancy_steps +=
        static_cast<uint64_t>(cost.total_steps);
    return cost;
}

void
RmBank::chargeMigration(const PlacementMigration &m)
{
    int dist = std::abs(m.to_offset - m.from_offset);
    if (dist == 0)
        return;
    // The move happens where the frame physically lives today (the
    // remap target if its home group was retired).
    uint64_t g = serving_memo_[groupOf(m.frame)];
    uint64_t steps = static_cast<uint64_t>(dist);
    ++stats_.migrations;
    stats_.migration_steps += steps;
    stats_.shift_ops += steps;
    stats_.shift_steps += steps;
    group_stats_[g].shift_ops += steps;
    group_stats_[g].shift_steps += steps;
    group_stats_[g].migration_steps += steps;
    stats_.shift_energy +=
        static_cast<double>(dist) * one_step_energy_;
    const int dom = protection_.domainIndexFor(m.frame);
    if (memo_enabled_) {
        addMemoReliability(drift_memo_[static_cast<size_t>(dist)],
                           dom);
    } else {
        ShiftReliability rel = domainModel(dom).sequence(
            std::vector<int>(static_cast<size_t>(dist), 1));
        stats_.reliability.add(
            rel, static_cast<double>(config_.stripes_per_group));
    }
    if (t_events_) {
        // Mirror the ledger exactly: migration shifts count too.
        t_migrations_->add();
        t_migration_steps_->add(steps);
        t_shift_ops_->add(steps);
        t_shift_steps_->add(steps);
    }
}

uint64_t
RmBank::servingGroupFor(uint64_t frame_index) const
{
    return serving_memo_[groupOf(frame_index)];
}

void
RmBank::rebuildServingMemo()
{
    // Resolve every home group's chain once per retirement instead
    // of on every access. A remap target chosen at retire time may
    // itself have been retired since, so follow the chain; the hop
    // guard bounds the walk even if every group has been retired.
    for (uint64_t home = 0; home < head_.size(); ++home) {
        uint64_t g = home;
        for (uint64_t hops = 0;
             degraded_[g] && hops < head_.size(); ++hops) {
            g = remap_[g];
        }
        // Every group degraded: serve in place (capacity model
        // only).
        serving_memo_[home] = degraded_[g] ? home : g;
    }
}

bool
RmBank::reportUnrecoverable(uint64_t frame_index)
{
    if (frame_index >= config_.line_frames)
        rtm_panic("frame %llu out of range",
                  static_cast<unsigned long long>(frame_index));
    ++stats_.due_reports;
    if (t_due_reports_)
        t_due_reports_->add();
    if (config_.group_retry_budget <= 0)
        return false; // degradation disabled
    uint64_t group = groupOf(frame_index);
    if (degraded_[group])
        return false; // already retired
    if (++due_count_[group] <
        static_cast<uint32_t>(config_.group_retry_budget)) {
        return false;
    }

    // Retire the group: remap its frames to the next healthy group
    // scanning upward (deterministic, wraps around). If none is
    // left, the group maps to itself and the bank serves in place.
    uint64_t groups = head_.size();
    uint64_t target = group;
    for (uint64_t step = 1; step < groups; ++step) {
        uint64_t cand = (group + step) % groups;
        if (!degraded_[cand]) {
            target = cand;
            break;
        }
    }
    degraded_[group] = 1;
    remap_[group] = target;
    ++stats_.degraded_groups;
    rebuildServingMemo();
    if (t_events_) {
        t_retired_->add();
        t_events_->event(EventKind::GroupRetired, "rm_bank",
                         last_shift_ == kNeverShifted ? 0
                                                      : last_shift_,
                         static_cast<double>(group),
                         static_cast<double>(target));
    }
    if (target == group && !warned_all_degraded_) {
        rtm_warn("all %llu stripe groups degraded; bank serves "
                 "frames in place (no healthy remap target)",
                 static_cast<unsigned long long>(groups));
        warned_all_degraded_ = true;
    }
    return true;
}

double
RmBank::degradedCapacityFraction() const
{
    if (stats_.degraded_groups == 0)
        return 0.0;
    uint64_t lost = 0;
    uint64_t per_group =
        static_cast<uint64_t>(config_.frames_per_group);
    for (uint64_t g = 0; g < head_.size(); ++g) {
        if (!degraded_[g])
            continue;
        uint64_t first = g * per_group;
        lost += std::min(config_.line_frames - first, per_group);
    }
    return static_cast<double>(lost) /
           static_cast<double>(config_.line_frames);
}

std::string
RmBank::ledgerViolation() const
{
    RmGroupStats sum;
    uint64_t flagged = 0;
    for (uint64_t g = 0; g < head_.size(); ++g) {
        sum.accesses += group_stats_[g].accesses;
        sum.shift_ops += group_stats_[g].shift_ops;
        sum.shift_steps += group_stats_[g].shift_steps;
        sum.migration_steps += group_stats_[g].migration_steps;
        if (degraded_[g])
            ++flagged;
    }
    if (sum.accesses != stats_.accesses)
        return "per-group accesses do not sum to bank accesses";
    if (sum.shift_ops != stats_.shift_ops)
        return "per-group shift ops do not sum to bank shift ops";
    if (sum.shift_steps != stats_.shift_steps)
        return "per-group shift steps do not sum to bank steps";
    if (sum.migration_steps != stats_.migration_steps)
        return "per-group migration steps do not sum to bank "
               "migration steps";
    if (stats_.migration_steps > stats_.shift_steps)
        return "migration steps exceed total shift steps";
    if (stats_.migrations > stats_.migration_steps)
        return "more migrations than migration steps";
    if (flagged != stats_.degraded_groups)
        return "degraded flags disagree with degraded_groups";
    if (stats_.remapped_accesses > stats_.accesses)
        return "more remapped accesses than accesses";
    if (stats_.redundancy_accesses > stats_.accesses)
        return "more redundancy accesses than accesses";
    if (stats_.redundancy_steps > stats_.shift_steps)
        return "redundancy steps exceed total shift steps";
    return "";
}

} // namespace rtm
