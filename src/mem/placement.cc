#include "placement.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rtm
{

const char *
placementKindName(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::Static: return "static";
      case PlacementKind::HotCenter: return "hot-center";
      case PlacementKind::Adaptive: return "adaptive";
    }
    return "?";
}

bool
placementKindFromToken(const std::string &token, PlacementKind *out)
{
    if (token == "static")
        *out = PlacementKind::Static;
    else if (token == "hot-center")
        *out = PlacementKind::HotCenter;
    else if (token == "adaptive")
        *out = PlacementKind::Adaptive;
    else
        return false;
    return true;
}

PlacementPolicy::PlacementPolicy(const PlacementGeometry &geom,
                                 const PlacementConfig &config,
                                 HeadPolicy head_policy)
    : geom_(geom), config_(config), head_policy_(head_policy)
{
    if (geom_.line_frames == 0)
        rtm_fatal("placement needs at least one frame");
    if (geom_.frames_per_group % geom_.seg_len != 0)
        rtm_fatal("frames_per_group must be a multiple of seg_len");
    if (config_.epoch_accesses == 0)
        rtm_fatal("placement epoch must be >= 1 access");
    if (config_.swap_budget < 0)
        rtm_fatal("placement swap budget must be >= 0");
    if (!config_.profile.empty() &&
        config_.profile.size() != geom_.line_frames) {
        rtm_fatal("placement profile covers %zu frames, bank has "
                  "%llu",
                  config_.profile.size(),
                  static_cast<unsigned long long>(
                      geom_.line_frames));
    }
    fixed_rest_ = head_policy_ == HeadPolicy::Center
                      ? (geom_.seg_len - 1) / 2
                      : 0;
    // Tracking is opt-in per policy; the base class only turns it on
    // for needs every policy shares (predictive rest scheduling,
    // explicit profiling passes). Subclasses OR-in their own.
    tracking_ = config_.track_counts ||
                head_policy_ == HeadPolicy::Predictive;

    uint64_t groups =
        (geom_.line_frames +
         static_cast<uint64_t>(geom_.frames_per_group) - 1) /
        static_cast<uint64_t>(geom_.frames_per_group);
    if (head_policy_ == HeadPolicy::Predictive)
        group_rest_.assign(groups, 0);
}

void
PlacementPolicy::frameRange(uint64_t group, uint64_t *first,
                            uint64_t *last) const
{
    *first = group * static_cast<uint64_t>(geom_.frames_per_group);
    *last = std::min(*first + static_cast<uint64_t>(
                                  geom_.frames_per_group),
                     geom_.line_frames);
}

std::vector<int>
PlacementPolicy::offsetsByProximity(uint64_t group) const
{
    // Anchor the packing on where the heads will actually be: the
    // drift target for the drifting policies, the predicted rest for
    // predictive, and the segment midpoint for stay (no drift target
    // exists, so clustering around the center minimises the expected
    // hop between consecutive hot frames).
    int anchor;
    switch (head_policy_) {
      case HeadPolicy::ReturnHome:
        anchor = 0;
        break;
      case HeadPolicy::Center:
        anchor = fixed_rest_;
        break;
      case HeadPolicy::Predictive:
        anchor = group_rest_[group];
        break;
      case HeadPolicy::Stay:
      default:
        anchor = (geom_.seg_len - 1) / 2;
        break;
    }
    std::vector<int> offsets(static_cast<size_t>(geom_.seg_len));
    for (int o = 0; o < geom_.seg_len; ++o)
        offsets[static_cast<size_t>(o)] = o;
    std::sort(offsets.begin(), offsets.end(),
              [anchor](int a, int b) {
                  int da = std::abs(a - anchor);
                  int db = std::abs(b - anchor);
                  if (da != db)
                      return da < db;
                  return a < b;
              });
    return offsets;
}

void
PlacementPolicy::updateRest(uint64_t group)
{
    uint64_t first, last;
    frameRange(group, &first, &last);
    // Rest under the slot that served the most accesses this epoch;
    // ties toward the lower offset, and an idle group keeps its
    // previous prediction.
    std::vector<uint64_t> per_offset(
        static_cast<size_t>(geom_.seg_len), 0);
    for (uint64_t f = first; f < last; ++f)
        per_offset[static_cast<size_t>(slotOffset(f))] +=
            frame_count_[f];
    uint64_t best = 0;
    int best_offset = group_rest_[group];
    for (int o = 0; o < geom_.seg_len; ++o) {
        uint64_t c = per_offset[static_cast<size_t>(o)];
        if (c > best) {
            best = c;
            best_offset = o;
        }
    }
    group_rest_[group] = static_cast<int8_t>(best_offset);
}

void
PlacementPolicy::recordAccess(uint64_t frame,
                              std::vector<PlacementMigration> *out)
{
    if (!tracking_)
        return;
    if (frame_count_.empty()) {
        // Lazily sized: most banks never track.
        frame_count_.assign(geom_.line_frames, 0);
        uint64_t groups =
            (geom_.line_frames +
             static_cast<uint64_t>(geom_.frames_per_group) - 1) /
            static_cast<uint64_t>(geom_.frames_per_group);
        group_since_epoch_.assign(groups, 0);
        group_epochs_.assign(groups, 0);
    }
    ++frame_count_[frame];
    uint64_t g = groupOf(frame);
    if (++group_since_epoch_[g] < config_.epoch_accesses)
        return;
    group_since_epoch_[g] = 0;
    ++group_epochs_[g];
    onEpoch(g, out);
    if (head_policy_ == HeadPolicy::Predictive)
        updateRest(g);
    if (agesCounts() && group_epochs_[g] % kAgePeriod == 0) {
        // Exponential aging keeps the counters responsive to phase
        // changes without forgetting the ranking outright.
        uint64_t first, last;
        frameRange(g, &first, &last);
        for (uint64_t f = first; f < last; ++f)
            frame_count_[f] >>= 1;
    }
}

namespace
{

/** Today's layout: slot by arithmetic, nothing to learn. */
class StaticPlacement : public PlacementPolicy
{
  public:
    StaticPlacement(const PlacementGeometry &geom,
                    const PlacementConfig &config, HeadPolicy head)
        : PlacementPolicy(geom, config, head)
    {
    }

    const char *name() const override { return "static"; }

    int slotOffset(uint64_t frame) const override
    {
        return homeOffset(frame);
    }
};

/**
 * Shared layout table for the remapping policies: per-frame slot
 * offsets initialised to the arithmetic layout.
 */
class TablePlacement : public PlacementPolicy
{
  public:
    TablePlacement(const PlacementGeometry &geom,
                   const PlacementConfig &config, HeadPolicy head)
        : PlacementPolicy(geom, config, head),
          slot_(geom.line_frames)
    {
        for (uint64_t f = 0; f < geom_.line_frames; ++f)
            slot_[f] = static_cast<int8_t>(homeOffset(f));
    }

    int slotOffset(uint64_t frame) const override
    {
        return slot_[frame];
    }

  protected:
    /**
     * Pack `group`'s frames hottest-first into the slots nearest the
     * rest anchor (ShiftsReduce's center-out order), respecting the
     * per-offset capacity. Emits one migration per frame whose slot
     * changed when `out` is non-null.
     */
    void assignHotCenter(uint64_t group, const uint64_t *counts,
                         std::vector<PlacementMigration> *out)
    {
        uint64_t first, last;
        frameRange(group, &first, &last);
        std::vector<uint64_t> ranked(last - first);
        for (uint64_t f = first; f < last; ++f)
            ranked[f - first] = f;
        std::stable_sort(ranked.begin(), ranked.end(),
                         [counts](uint64_t a, uint64_t b) {
                             if (counts[a] != counts[b])
                                 return counts[a] > counts[b];
                             return a < b;
                         });
        const std::vector<int> order = offsetsByProximity(group);
        const int cap = slotsPerOffset();
        for (size_t i = 0; i < ranked.size(); ++i) {
            uint64_t f = ranked[i];
            int target =
                order[std::min(i / static_cast<size_t>(cap),
                               order.size() - 1)];
            int old = slot_[f];
            if (old == target)
                continue;
            slot_[f] = static_cast<int8_t>(target);
            if (out)
                out->push_back({f, old, target});
        }
    }

    std::vector<int8_t> slot_;
};

/**
 * ShiftsReduce-style frequency placement. Offline variant: layout
 * fixed at construction from the supplied profile. Online variant:
 * each group reorganises itself once, after its first epoch of
 * observed accesses, and pays the migration shifts.
 */
class HotCenterPlacement : public TablePlacement
{
  public:
    HotCenterPlacement(const PlacementGeometry &geom,
                       const PlacementConfig &config,
                       HeadPolicy head)
        : TablePlacement(geom, config, head)
    {
        if (!config_.profile.empty()) {
            // Offline: the layout exists before the cache fills, so
            // no migration cost is charged.
            uint64_t groups = (geom_.line_frames +
                               static_cast<uint64_t>(
                                   geom_.frames_per_group) -
                               1) /
                              static_cast<uint64_t>(
                                  geom_.frames_per_group);
            for (uint64_t g = 0; g < groups; ++g)
                assignHotCenter(g, config_.profile.data(), nullptr);
        } else {
            tracking_ = true;
            uint64_t groups = (geom_.line_frames +
                               static_cast<uint64_t>(
                                   geom_.frames_per_group) -
                               1) /
                              static_cast<uint64_t>(
                                  geom_.frames_per_group);
            organized_.assign(groups, 0);
        }
    }

    const char *name() const override { return "hot-center"; }

  protected:
    void onEpoch(uint64_t group,
                 std::vector<PlacementMigration> *out) override
    {
        if (organized_.empty() || organized_[group])
            return;
        organized_[group] = 1;
        assignHotCenter(group, frame_count_.data(), out);
    }

  private:
    /** 1 once a group's one-shot online reorganisation happened. */
    std::vector<uint8_t> organized_;
};

/**
 * Online remapping: every epoch a group concentrates its hottest
 * frames into the slot offset that already carries the most heat,
 * making up to `swap_budget` hot/cold swaps. Concentration zeroes
 * the head travel between the frames that dominate the access
 * stream (a stay-put head never leaves the slot while they trade
 * hits), and anchoring on the already-hottest offset makes the
 * target stable and the assembly cheap: the frames with the most
 * heat are disproportionately already there. A hysteresis gate (an
 * absolute margin for cold residents, a 1.5x heat ratio for warm
 * ones) stops the layout from chasing sampling noise — once the hot
 * set is resident, migrations cease. Counts age (halve) every
 * kAgePeriod epochs so the layout follows phase changes.
 */
class AdaptivePlacement : public TablePlacement
{
  public:
    AdaptivePlacement(const PlacementGeometry &geom,
                      const PlacementConfig &config, HeadPolicy head)
        : TablePlacement(geom, config, head)
    {
        tracking_ = true;
    }

    const char *name() const override { return "adaptive"; }

  protected:
    bool agesCounts() const override { return true; }

    void onEpoch(uint64_t group,
                 std::vector<PlacementMigration> *out) override
    {
        if (config_.swap_budget == 0)
            return;
        uint64_t first, last;
        frameRange(group, &first, &last);
        const uint64_t *counts = frame_count_.data();

        // Target slot: the offset whose residents drew the most
        // accesses. Ties toward the lower offset for determinism.
        std::vector<uint64_t> per_offset(
            static_cast<size_t>(geom_.seg_len), 0);
        for (uint64_t f = first; f < last; ++f)
            per_offset[static_cast<size_t>(slot_[f])] += counts[f];
        int target = 0;
        for (int o = 1; o < geom_.seg_len; ++o)
            if (per_offset[static_cast<size_t>(o)] >
                per_offset[static_cast<size_t>(target)])
                target = o;

        // Hottest outside frames, coldest residents.
        const int cap = slotsPerOffset();
        std::vector<uint64_t> outside, resident;
        for (uint64_t f = first; f < last; ++f)
            (slot_[f] == target ? resident : outside).push_back(f);
        std::stable_sort(outside.begin(), outside.end(),
                         [counts](uint64_t a, uint64_t b) {
                             if (counts[a] != counts[b])
                                 return counts[a] > counts[b];
                             return a < b;
                         });
        std::stable_sort(resident.begin(), resident.end(),
                         [counts](uint64_t a, uint64_t b) {
                             if (counts[a] != counts[b])
                                 return counts[a] < counts[b];
                             return a < b;
                         });
        int swaps = 0;
        for (size_t i = 0;
             i < outside.size() && i < resident.size() &&
             static_cast<int>(i) < cap &&
             swaps < config_.swap_budget;
             ++i) {
            uint64_t a = outside[i];  // hot, wants in
            uint64_t b = resident[i]; // cold, gets a's old slot
            // The move must clearly pay for its shift cost. Two
            // regimes: promoting a proven frame over a cold resident
            // needs only a small absolute margin (the saving scales
            // with the rate gap), while displacing an already-warm
            // resident additionally needs a 1.5x heat ratio — the
            // hot-set boundary is full of near-ties, and swapping
            // equals churns migration steps for no expected win.
            if (counts[a] <
                counts[b] + std::max<uint64_t>(2, counts[b] / 2))
                break;
            int from_a = slot_[a];
            slot_[a] = static_cast<int8_t>(target);
            slot_[b] = static_cast<int8_t>(from_a);
            out->push_back({a, from_a, target});
            out->push_back({b, target, from_a});
            ++swaps;
        }
    }
};

} // anonymous namespace

std::unique_ptr<PlacementPolicy>
makePlacementPolicy(const PlacementGeometry &geom,
                    const PlacementConfig &config,
                    HeadPolicy head_policy)
{
    switch (config.kind) {
      case PlacementKind::Static:
        return std::make_unique<StaticPlacement>(geom, config,
                                                 head_policy);
      case PlacementKind::HotCenter:
        return std::make_unique<HotCenterPlacement>(geom, config,
                                                    head_policy);
      case PlacementKind::Adaptive:
        return std::make_unique<AdaptivePlacement>(geom, config,
                                                   head_policy);
    }
    rtm_fatal("unknown placement kind");
    return nullptr;
}

} // namespace rtm
