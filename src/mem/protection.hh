/**
 * @file
 * Protection domains: "how is this region protected" as a policy.
 *
 * The paper protects every frame with one fixed-strength p-ECC code.
 * Production memory systems instead pick protection per region and
 * amortise check bits over large codewords (the Ramulator2_ECC
 * direction, ROADMAP item 3): 2/4/8 frames pool their redundancy
 * into one shared region, buying log2(F) extra correction strength
 * at sub-linear per-frame overhead, paid for with redundancy-frame
 * accesses the bank charges as real shifts and bandwidth.
 *
 * A ProtectionDomain names one such contract (scheme override,
 * frames per codeword, two-tier read discipline); a
 * ProtectionPolicy maps the machine onto domains — uniformly, per
 * cache level, or per address region — and resolves to the compact
 * per-frame table the racetrack bank consults on its hot path.
 *
 * The default policy (uniform, single-frame, one-tier) is the
 * paper's configuration and leaves every golden digest bit-identical:
 * no redundancy accesses are charged and the reliability fold uses
 * the unboosted scheme model.
 */

#ifndef RTM_MEM_PROTECTION_HH
#define RTM_MEM_PROTECTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/tech.hh"

namespace rtm
{

/** How a ProtectionPolicy maps the machine onto domains. */
enum class ProtectionScopeKind
{
    Uniform,       //!< one domain for everything
    PerLevel,      //!< one domain per cache level (l1/l2/llc)
    AddressRegion, //!< domains over fractions of the frame space
};

/** One protection contract. */
struct ProtectionDomain
{
    /**
     * Scheme override for this domain. When set, it replaces the
     * hierarchy's scheme in this domain's reliability
     * classification (and, for the uniform / llc domain, the bank's
     * scheme outright). Plan decomposition and shift timing always
     * follow the bank's base scheme: position-code geometry is
     * shared by every stripe of a bank.
     */
    bool has_scheme = false;
    Scheme scheme = Scheme::PeccSAdaptive;

    /** Frames pooled into one codeword (1, 2, 4 or 8). */
    int codeword_frames = 1;

    /** Two-tier EDC-then-ECC read discipline. */
    bool two_tier = false;

    /** The paper's per-frame contract: changes nothing. */
    bool isDefault() const
    {
        return !has_scheme && codeword_frames == 1 && !two_tier;
    }

    bool operator==(const ProtectionDomain &o) const
    {
        return has_scheme == o.has_scheme &&
               (!has_scheme || scheme == o.scheme) &&
               codeword_frames == o.codeword_frames &&
               two_tier == o.two_tier;
    }
    bool operator!=(const ProtectionDomain &o) const
    {
        return !(*this == o);
    }
};

/** One address-region entry: [begin, end) fractions of the frames. */
struct ProtectionRegion
{
    double begin = 0.0; //!< inclusive fraction of the frame space
    double end = 1.0;   //!< exclusive fraction of the frame space
    ProtectionDomain domain;

    bool operator==(const ProtectionRegion &o) const
    {
        return begin == o.begin && end == o.end &&
               domain == o.domain;
    }
};

/** Named per-cache-level entry (kind == PerLevel). */
struct ProtectionLevel
{
    std::string level; //!< "l1" | "l2" | "llc"
    ProtectionDomain domain;

    bool operator==(const ProtectionLevel &o) const
    {
        return level == o.level && domain == o.domain;
    }
};

/**
 * The protection-policy axis of a machine configuration.
 */
struct ProtectionPolicy
{
    ProtectionScopeKind kind = ProtectionScopeKind::Uniform;

    /** Uniform domain; also the base/fallback for the other kinds. */
    ProtectionDomain uniform;

    /** PerLevel entries. Only "llc" affects the racetrack bank;
     *  l1/l2 entries feed the overhead accounting (tab05). */
    std::vector<ProtectionLevel> levels;

    /** AddressRegion entries (frames outside every region fall back
     *  to `uniform`). */
    std::vector<ProtectionRegion> regions;

    /** Domain governing the racetrack LLC bank. */
    const ProtectionDomain &llcDomain() const;

    /** True for the paper's configuration (no-op everywhere). */
    bool isDefault() const;

    bool operator==(const ProtectionPolicy &o) const
    {
        return kind == o.kind && uniform == o.uniform &&
               levels == o.levels && regions == o.regions;
    }
    bool operator!=(const ProtectionPolicy &o) const
    {
        return !(*this == o);
    }
};

/** Token for a scope kind ("uniform" | "per-level" | "regions"). */
const char *protectionKindToken(ProtectionScopeKind kind);

/** Inverse of protectionKindToken; false on an unknown token. */
bool protectionKindFromToken(const std::string &token,
                             ProtectionScopeKind *out);

/**
 * Bank-resolved form of a policy: the base (llc) domain plus, for
 * AddressRegion policies, the sorted frame ranges. Resolution is a
 * couple of comparisons per access — policies name at most a
 * handful of regions.
 */
struct ResolvedProtection
{
    /** Distinct domains; [0] is the base (llc / uniform) domain. */
    std::vector<ProtectionDomain> domains;

    struct Range
    {
        uint64_t begin = 0; //!< first frame (inclusive)
        uint64_t end = 0;   //!< one past the last frame
        int domain = 0;     //!< index into `domains`
    };
    /** Non-overlapping, sorted by begin; gaps fall to domain 0. */
    std::vector<Range> ranges;

    int domainIndexFor(uint64_t frame) const
    {
        for (const Range &r : ranges) {
            if (frame < r.begin)
                break;
            if (frame < r.end)
                return r.domain;
        }
        return 0;
    }

    const ProtectionDomain &domainFor(uint64_t frame) const
    {
        return domains[static_cast<size_t>(domainIndexFor(frame))];
    }

    /** Every domain is the paper's default contract. */
    bool isDefault() const;
};

/**
 * Resolve `policy` against a bank of `line_frames` frames. Region
 * fractions snap to codeword boundaries of their own domain so a
 * codeword never straddles two domains.
 */
ResolvedProtection resolveProtection(const ProtectionPolicy &policy,
                                     uint64_t line_frames);

/**
 * Validate one domain against the bank geometry (delegates to
 * protectionGeometryError on the implied PeccConfig). Empty string
 * when realisable, else a human-readable reason — spec parsing
 * turns it into a dotted-path diagnostic and exit 2.
 */
std::string protectionDomainError(const ProtectionDomain &domain,
                                  Scheme base_scheme, int seg_len,
                                  int frames_per_group);

/**
 * The canned differentiated policy used by the bench and the
 * `rtmsim run --protection differentiated` shortcut: the hot
 * quarter of the frame space keeps the strong per-frame code, the
 * cold three quarters pool `cold_codeword_frames` frames per
 * codeword and read two-tier.
 */
ProtectionPolicy differentiatedPolicy(int cold_codeword_frames);

} // namespace rtm

#endif // RTM_MEM_PROTECTION_HH
