#include "protection.hh"

#include <algorithm>

#include "codec/layout.hh"

namespace rtm
{

namespace
{

/** PeccVariant implied by a scheme (for geometry validation). */
PeccVariant
variantFor(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
      case Scheme::Sts:
        return PeccVariant::None;
      case Scheme::PeccO:
        return PeccVariant::OverheadRegion;
      case Scheme::DelIns:
        return PeccVariant::DelIns;
      default:
        return PeccVariant::Standard;
    }
}

} // anonymous namespace

const ProtectionDomain &
ProtectionPolicy::llcDomain() const
{
    if (kind == ProtectionScopeKind::PerLevel) {
        for (const ProtectionLevel &l : levels) {
            if (l.level == "llc")
                return l.domain;
        }
    }
    return uniform;
}

bool
ProtectionPolicy::isDefault() const
{
    if (!uniform.isDefault())
        return false;
    for (const ProtectionLevel &l : levels) {
        if (!l.domain.isDefault())
            return false;
    }
    for (const ProtectionRegion &r : regions) {
        if (!r.domain.isDefault())
            return false;
    }
    return true;
}

const char *
protectionKindToken(ProtectionScopeKind kind)
{
    switch (kind) {
      case ProtectionScopeKind::Uniform: return "uniform";
      case ProtectionScopeKind::PerLevel: return "per-level";
      case ProtectionScopeKind::AddressRegion: return "regions";
    }
    return "uniform";
}

bool
protectionKindFromToken(const std::string &token,
                        ProtectionScopeKind *out)
{
    if (token == "uniform")
        *out = ProtectionScopeKind::Uniform;
    else if (token == "per-level")
        *out = ProtectionScopeKind::PerLevel;
    else if (token == "regions")
        *out = ProtectionScopeKind::AddressRegion;
    else
        return false;
    return true;
}

bool
ResolvedProtection::isDefault() const
{
    for (const ProtectionDomain &d : domains) {
        if (!d.isDefault())
            return false;
    }
    return true;
}

ResolvedProtection
resolveProtection(const ProtectionPolicy &policy,
                  uint64_t line_frames)
{
    ResolvedProtection out;
    out.domains.push_back(policy.llcDomain());
    if (policy.kind != ProtectionScopeKind::AddressRegion)
        return out;

    std::vector<ProtectionRegion> sorted = policy.regions;
    std::sort(sorted.begin(), sorted.end(),
              [](const ProtectionRegion &a,
                 const ProtectionRegion &b) {
                  return a.begin < b.begin;
              });
    for (const ProtectionRegion &r : sorted) {
        ResolvedProtection::Range range;
        const double b = std::clamp(r.begin, 0.0, 1.0);
        const double e = std::clamp(r.end, 0.0, 1.0);
        range.begin = static_cast<uint64_t>(
            b * static_cast<double>(line_frames));
        range.end = static_cast<uint64_t>(
            e * static_cast<double>(line_frames));
        // Snap to this domain's codeword boundaries so a codeword
        // never straddles two domains.
        const uint64_t f = static_cast<uint64_t>(
            std::max(r.domain.codeword_frames, 1));
        range.begin = (range.begin / f) * f;
        range.end = (range.end / f) * f;
        if (range.end <= range.begin)
            continue;
        range.domain = static_cast<int>(out.domains.size());
        out.domains.push_back(r.domain);
        out.ranges.push_back(range);
    }
    return out;
}

std::string
protectionDomainError(const ProtectionDomain &domain,
                      Scheme base_scheme, int seg_len,
                      int frames_per_group)
{
    const Scheme scheme =
        domain.has_scheme ? domain.scheme : base_scheme;
    PeccConfig cfg;
    cfg.num_segments = std::max(frames_per_group / seg_len, 1);
    cfg.seg_len = seg_len;
    cfg.correct = std::max(schemeCorrectionStrength(scheme), 0);
    cfg.variant = variantFor(scheme);
    cfg.codeword_frames = domain.codeword_frames;
    cfg.two_tier = domain.two_tier;
    return protectionGeometryError(cfg, frames_per_group);
}

ProtectionPolicy
differentiatedPolicy(int cold_codeword_frames)
{
    ProtectionPolicy p;
    p.kind = ProtectionScopeKind::AddressRegion;
    // Hot quarter: the strong per-frame code (the default domain).
    // Cold three quarters: pooled codewords read two-tier.
    ProtectionRegion cold;
    cold.begin = 0.25;
    cold.end = 1.0;
    cold.domain.codeword_frames = cold_codeword_frames;
    cold.domain.two_tier = true;
    p.regions.push_back(cold);
    return p;
}

} // namespace rtm
