/**
 * @file
 * Racetrack LLC shift engine (paper Sec. 6.1 data mapping).
 *
 * A 64-byte cache line is bit-interleaved across a group of 512
 * stripes; each stripe holds 64 data domains split into 8 segments by
 * default, so one stripe group stores 64 line frames. All stripes of
 * a group share one shift controller and move in lockstep: serving a
 * frame means shifting the group so the frame's segment-local index
 * sits under the access ports.
 *
 * The engine tracks per-group head positions, plans shift sequences
 * through the control layer's adapter policy, and reports per-access
 * shift latency, energy and reliability decomposition. It deliberately
 * does not move functional bits: the cache simulator only needs
 * timing/energy/reliability, and the functional path is already
 * exercised end-to-end by the codec/control tests.
 */

#ifndef RTM_MEM_RM_BANK_HH
#define RTM_MEM_RM_BANK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/adapter.hh"
#include "control/head_policy.hh"
#include "control/planner.hh"
#include "control/sts.hh"
#include "device/error_model.hh"
#include "mem/placement.hh"
#include "mem/protection.hh"
#include "model/reliability.hh"
#include "model/tech.hh"
#include "util/stats.hh"
#include "util/telemetry.hh"

namespace rtm
{

/** Shift cost of serving one frame access. */
struct ShiftCost
{
    Cycles latency = 0;          //!< shift cycles on the access path
    Cycles stall = 0;            //!< contention wait (in latency)
    Joules energy = 0.0;         //!< shift + detection energy
    int total_steps = 0;         //!< steps moved (all sub-shifts)
    int sub_shifts = 0;          //!< number of shift operations
};

/** Aggregate shift-engine statistics. */
struct RmBankStats
{
    uint64_t accesses = 0;
    uint64_t shift_ops = 0;
    uint64_t shift_steps = 0;
    Cycles shift_cycles = 0;
    Joules shift_energy = 0.0;
    uint64_t plan_memo_hits = 0; //!< accesses served from the memo
    IntTally distance_histogram; //!< requested distances
    MttfAccumulator reliability;

    // Graceful degradation (see RmBank::reportUnrecoverable).
    uint64_t due_reports = 0;      //!< DUEs reported into the bank
    uint64_t degraded_groups = 0;  //!< groups retired so far
    uint64_t remapped_accesses = 0; //!< served via a remapped group

    // Placement migrations (hot-center online / adaptive): frame
    // moves scheduled by the placement policy. Their shift work is
    // also folded into shift_ops/shift_steps/shift_energy.
    uint64_t migrations = 0;      //!< frames moved
    uint64_t migration_steps = 0; //!< shift steps spent migrating

    // Protection domains: accesses spent fetching the shared
    // redundancy region of a pooled codeword (a real access served
    // through the normal shift path; also counted in accesses /
    // shift_steps above).
    uint64_t redundancy_accesses = 0;
    uint64_t redundancy_steps = 0;
};

/** Per-group slice of the bank aggregates (ledger validation). */
struct RmGroupStats
{
    uint64_t accesses = 0;
    uint64_t shift_ops = 0;
    uint64_t shift_steps = 0;
    uint64_t migration_steps = 0;
};

/** Configuration of the racetrack LLC shift engine. */
struct RmBankConfig
{
    uint64_t line_frames = 0;  //!< cache line frames to back
    int frames_per_group = 64; //!< data domains per stripe
    int seg_len = 8;           //!< Lseg
    int stripes_per_group = 512;
    Scheme scheme = Scheme::PeccSAdaptive;
    double peak_ops_per_second = 83e6; //!< paper's estimate
    double mttf_target_s = kDefaultSafeMttfSeconds;

    /**
     * Requests serviced concurrently by interleaved sub-banks.
     * Paper Sec. 5.3: "if multiple requests are serviced
     * simultaneously by an interleaving technique, we only need to
     * increase run-time intensity accordingly" - the adaptive policy
     * divides the observed interval by this factor.
     */
    int interleave_ways = 1;

    /** Head-rest policy applied when a group goes idle. */
    HeadPolicy head_policy = HeadPolicy::Stay;

    /**
     * Data-placement policy (mem/placement.hh): which slot each
     * frame occupies inside its group and where heads rest. The
     * default (`static`, no tracking) reproduces the historical
     * layout bit-identically.
     */
    PlacementConfig placement;

    /**
     * Protection-domain policy (mem/protection.hh): per-region
     * codeword geometry and scheme overrides. Overrides affect each
     * domain's reliability classification only; plan decomposition
     * and shift timing always follow `scheme`. The default
     * (uniform, single-frame codewords) reproduces the historical
     * accounting bit-identically.
     */
    ProtectionPolicy protection;

    /**
     * Model per-group occupancy: a request arriving while the
     * group's previous shift sequence is still draining stalls for
     * the remainder (adds to the returned latency).
     */
    bool model_contention = false;

    /**
     * Graceful degradation: DUE reports tolerated per group before
     * the bank retires it and remaps its frames onto a healthy
     * group (capacity loss instead of a crash). 0 disables
     * degradation (legacy behaviour).
     */
    int group_retry_budget = 0;

    /**
     * Serve steady-state accesses from the per-bank shift-plan memo
     * (plan costs precomputed per (distance, interval bucket) at
     * construction) instead of replanning and refolding reliability
     * on every access. Results are bit-identical either way — the
     * memo is an exact cache keyed on everything the plan depends on
     * — so this switch exists to bypass the memo where callers want
     * the planner exercised live (fault campaigns that perturb bank
     * state, golden cross-checks, baseline benchmarking).
     */
    bool use_plan_memo = true;

    /**
     * Observability sink. Disabled (null) by default; when set the
     * bank registers counters/histograms once at construction and
     * pushes shift/degradation events. Instrumentation only reads
     * simulator state, so results are bit-identical either way.
     */
    TelemetryScope telemetry = {};
};

/**
 * Timing/energy/reliability model of all stripe groups in an LLC.
 */
class RmBank
{
  public:
    /**
     * @param config geometry + protection scheme
     * @param model  position-error model (rates)
     * @param tech   racetrack technology parameters (Table 4)
     */
    RmBank(const RmBankConfig &config,
           const PositionErrorModel *model, const TechParams &tech);

    /**
     * Serve an access to a line frame at absolute time `now`.
     * Computes the group's required head movement, plans it under
     * the scheme's policy, and accumulates cost and reliability.
     */
    ShiftCost accessFrame(uint64_t frame_index, Cycles now);

    /**
     * Serve the redundancy-region fetch a pooled codeword needs on
     * top of the data access to `frame_index` (writes always; reads
     * only when the domain is not two-tier). The shared check
     * region lives in the codeword's base frame's slot, so this is
     * a real access — head movement, shifts, energy, reliability —
     * through the normal path, tallied separately in
     * `redundancy_accesses` / `redundancy_steps`. No-op ({}) when
     * the frame's domain keeps the paper's single-frame codewords.
     */
    ShiftCost accessRedundancy(uint64_t frame_index, Cycles now);

    /** Statistics accumulated so far. */
    const RmBankStats &stats() const { return stats_; }

    /** Reliability accumulator (mutable: simulator adds time). */
    MttfAccumulator &reliability() { return stats_.reliability; }

    /** The planner (bench introspection). */
    const ShiftPlanner &planner() const { return planner_; }

    /** Scheme in effect. */
    Scheme scheme() const { return config_.scheme; }

    /** Energy of one shift operation of `steps` steps (one group). */
    Joules shiftOpEnergy(int steps) const;

    /**
     * Report an unrecoverable position error (DUE) observed on
     * `frame_index`'s group. Once a group accumulates
     * `group_retry_budget` reports it is marked degraded and its
     * frames are remapped to the next healthy group. Returns true
     * when this report retired the group.
     */
    bool reportUnrecoverable(uint64_t frame_index);

    /**
     * Group that actually serves `frame_index`. The remap chain is
     * resolved into a per-group memo at retirement time, so this is
     * a single table lookup on every call (and on every degraded
     * access in accessFrame).
     */
    uint64_t servingGroupFor(uint64_t frame_index) const;

    /** The placement policy in effect (introspection/benches). */
    const PlacementPolicy &placement() const { return *placement_; }

    /** Protection domain governing `frame` (resolved policy). */
    const ProtectionDomain &domainFor(uint64_t frame) const
    {
        return protection_.domainFor(frame);
    }

    /** The resolved protection table (introspection/benches). */
    const ResolvedProtection &protection() const
    {
        return protection_;
    }

    /**
     * Per-frame access counts accumulated by a tracking placement
     * policy (empty otherwise). A profiling pass sets
     * PlacementConfig::track_counts and feeds these back as the
     * offline hot-center profile of a second run.
     */
    const std::vector<uint64_t> &frameAccessCounts() const
    {
        return placement_->frameCounts();
    }

    /** Whether `group` has been retired. */
    bool isDegraded(uint64_t group) const
    {
        return degraded_[group] != 0;
    }

    /** Number of stripe groups backing the bank. */
    uint64_t groupCount() const { return head_.size(); }

    /** Fraction of capacity lost to degraded groups. */
    double degradedCapacityFraction() const;

    /** Per-group slice of the aggregates (ledger validation). */
    const RmGroupStats &groupStats(uint64_t group) const
    {
        return group_stats_[group];
    }

    /**
     * Ledger invariant check: per-group counters must sum to the
     * bank aggregates and the degradation bookkeeping must be
     * internally consistent. Empty string when consistent.
     */
    std::string ledgerViolation() const;

    /**
     * Rebuild the shift-plan memo from the current planner/scheme
     * state. The bank's configuration is immutable today, so this
     * only needs calling if that ever changes; construction calls it
     * once.
     */
    void invalidatePlanMemo();

    /** Whether steady-state accesses are served from the memo. */
    bool planMemoEnabled() const { return memo_enabled_; }

  private:
    /**
     * Precomputed cost of one memoised shift decomposition: the
     * per-part latency/energy/step fold and the exponentiated
     * reliability decomposition of the full sequence, so a
     * steady-state access is a table lookup plus accumulator adds.
     * `min_interval` is the interval-bucket lower bound (0 for the
     * non-adaptive policies, the Pareto plan's threshold for the
     * adaptive one); entries are ordered exactly as
     * ShiftPlanner::planFor scans them.
     */
    struct PlanCost
    {
        Cycles min_interval = 0;
        Cycles latency = 0;
        Joules energy = 0.0;
        int total_steps = 0;
        int sub_shifts = 0;
        double sdc_prob = 0.0; //!< exp(sequence log_sdc)
        double due_prob = 0.0; //!< exp(sequence log_due)
        /** Per-extra-domain fold (index i-1 holds domain i); empty
         *  under the default single-domain policy, so the hot path
         *  pays nothing for the feature it does not use. */
        std::vector<double> extra_sdc;
        std::vector<double> extra_due;
    };
    RmBankConfig config_;
    const PositionErrorModel *model_;
    TechParams tech_;
    StsTiming timing_;
    ShiftPlanner planner_;
    /** Resolved protection table; domain 0 is the base domain. */
    ResolvedProtection protection_;
    /** Domain 0's reliability model (the base/llc domain). */
    ReliabilityModel reliability_model_;
    /** Models for domains 1..N-1 (empty under the default policy). */
    std::vector<ReliabilityModel> extra_models_;
    ShiftPolicy policy_;
    int worst_case_distance_;

    /** Frame -> slot mapping + head-rest scheduling. */
    std::unique_ptr<PlacementPolicy> placement_;
    /** Reused buffer for migrations emitted by recordAccess. */
    std::vector<PlacementMigration> migration_scratch_;

    /** Per-group head offset (believed == actual for timing). */
    std::vector<int8_t> head_;
    /** Per-group cycle until which the group is still shifting
     *  (contention modelling). */
    std::vector<Cycles> busy_until_;
    /** Cycle of each group's previous access (idle-drift policy). */
    std::vector<Cycles> last_access_;
    /** Cycle of the previous shift operation anywhere in the bank.
     *  The paper's adapter (Sec. 5.3) tracks one memory-wide
     *  interval: "the interval between it and the last shift
     *  operation"; a single counter and table is also what keeps the
     *  hardware cost trivial. */
    Cycles last_shift_;

    /** Memo tables: plan_memo_[d - 1] = entries for distance d. */
    std::vector<std::vector<PlanCost>> plan_memo_;
    /** drift_memo_[d] = reliability of d single-step drift shifts. */
    std::vector<PlanCost> drift_memo_;
    /** Cached timing_.shiftCycles(1) / shiftOpEnergy(1). */
    Cycles one_step_cycles_ = 0;
    Joules one_step_energy_ = 0.0;
    bool memo_enabled_;

    /** Per-group degradation state: 1 once the group is retired. */
    std::vector<uint8_t> degraded_;
    /** DUE reports accumulated per group. */
    std::vector<uint32_t> due_count_;
    /** Remap target of a retired group (identity while healthy). */
    std::vector<uint64_t> remap_;
    /**
     * Memoised chain resolution: the group that serves each home
     * group today. Identity while healthy; rebuilt after every
     * retirement (rare) so the access path never walks the chain.
     */
    std::vector<uint64_t> serving_memo_;
    /** Per-group slices of the bank aggregates. */
    std::vector<RmGroupStats> group_stats_;
    /** One-shot warning when every group has been retired. */
    bool warned_all_degraded_ = false;

    RmBankStats stats_;

    // Telemetry handles: registered once at construction, null when
    // the scope is disabled (the hot path branches on t_events_).
    Telemetry *t_events_ = nullptr;
    Counter *t_accesses_ = nullptr;
    Counter *t_shift_ops_ = nullptr;
    Counter *t_shift_steps_ = nullptr;
    Counter *t_remaps_ = nullptr;
    Counter *t_due_reports_ = nullptr;
    Counter *t_retired_ = nullptr;
    Counter *t_migrations_ = nullptr;
    Counter *t_migration_steps_ = nullptr;
    LatencyHistogram *t_shift_latency_ = nullptr;

    uint64_t groupOf(uint64_t frame) const;
    int indexInGroup(uint64_t frame) const;

    /** Reliability model of protection domain `dom`. */
    const ReliabilityModel &domainModel(int dom) const
    {
        return dom == 0 ? reliability_model_
                        : extra_models_[static_cast<size_t>(dom - 1)];
    }

    /** Fold one memoised decomposition into the reliability ledger
     *  under domain `dom`'s model. */
    void addMemoReliability(const PlanCost &pc, int dom);

    /** Apply the idle head-drift policy before serving at `now`. */
    void applyHeadPolicy(uint64_t group, Cycles now);

    /**
     * Charge one scheduled frame move to the ledger: |to - from|
     * single-step shifts (the gentle drive, off the access path) on
     * the group that physically holds the frame, with energy and
     * reliability accounted like idle drift.
     */
    void chargeMigration(const PlacementMigration &m);

    /** Recompute serving_memo_ after a retirement. */
    void rebuildServingMemo();
};

} // namespace rtm

#endif // RTM_MEM_RM_BANK_HH
