#include "workload.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rtm
{

namespace
{

constexpr uint64_t kMiB = 1ull << 20;
constexpr int kLineBytes = 64;

WorkloadProfile
make(const std::string &name, uint64_t ws, double hot_frac,
     double hot_ratio, double seq, double wr, double gap,
     bool sensitive)
{
    WorkloadProfile p;
    p.name = name;
    p.working_set_bytes = ws;
    p.hot_fraction = hot_frac;
    p.hot_set_ratio = hot_ratio;
    p.sequential_prob = seq;
    p.write_ratio = wr;
    p.mean_gap = gap;
    p.capacity_sensitive = sensitive;
    return p;
}

} // anonymous namespace

std::vector<WorkloadProfile>
parsecProfiles()
{
    // Working sets are chosen relative to the LLC options: sensitive
    // workloads live between 4 MB (SRAM) and 128 MB (racetrack) so
    // larger LLCs cut their miss rates; insensitive ones fit in 4 MB
    // or stream far past 128 MB.
    return {
        // --- capacity sensitive ------------------------------------
        make("canneal", 96 * kMiB, 0.55, 0.05, 0.15, 0.25, 4.0, true),
        make("ferret", 48 * kMiB, 0.70, 0.10, 0.40, 0.30, 3.5, true),
        make("streamcluster", 64 * kMiB, 0.60, 0.08, 0.80, 0.20, 2.5,
             true),
        make("dedup", 40 * kMiB, 0.65, 0.10, 0.55, 0.40, 3.0, true),
        make("facesim", 72 * kMiB, 0.70, 0.12, 0.60, 0.35, 3.5, true),
        make("x264", 24 * kMiB, 0.75, 0.15, 0.65, 0.30, 3.0, true),
        // --- capacity insensitive ----------------------------------
        make("blackscholes", 2 * kMiB, 0.90, 0.20, 0.70, 0.20, 5.0,
             false),
        make("bodytrack", 3 * kMiB, 0.85, 0.20, 0.55, 0.30, 4.0,
             false),
        make("swaptions", 1 * kMiB, 0.90, 0.25, 0.60, 0.25, 5.0,
             false),
        make("fluidanimate", 3 * kMiB, 0.80, 0.20, 0.60, 0.35, 3.5,
             false),
        make("freqmine", 2 * kMiB, 0.85, 0.20, 0.50, 0.30, 4.0,
             false),
        make("vips", 3 * kMiB, 0.80, 0.20, 0.70, 0.35, 3.0, false),
    };
}

WorkloadProfile
parsecProfile(const std::string &name)
{
    for (const auto &p : parsecProfiles())
        if (p.name == name)
            return p;
    rtm_fatal("unknown workload profile '%s'", name.c_str());
}

uint32_t
GeometricGapSampler::reference(double mean_gap, double u)
{
    double gap = -mean_gap * std::log(1.0 - u);
    return static_cast<uint32_t>(std::min(gap, 1000.0));
}

GeometricGapSampler::GeometricGapSampler(double mean_gap)
{
    // The generator draws uniforms as (next() >> 11) * 2^-53, i.e.
    // on the grid m * 2^-53 for m in [0, 2^53). The reference gap is
    // weakly monotone in u (1-u, log, scale, min and the integer
    // cast all preserve ordering), so the preimage of "gap >= k" is
    // an upper segment of the grid and its boundary can be found by
    // binary search against the reference expression itself — no
    // analytic inversion, hence no rounding disagreement.
    constexpr uint64_t kGrid = 1ull << 53;
    constexpr double kUlp = 0x1.0p-53;
    const double max_u = static_cast<double>(kGrid - 1) * kUlp;
    const uint32_t max_gap = reference(mean_gap, max_u);
    thresholds_.reserve(max_gap);
    uint64_t lo = 0;
    for (uint32_t k = 1; k <= max_gap; ++k) {
        uint64_t a = lo, b = kGrid - 1;
        while (a < b) {
            uint64_t mid = a + (b - a) / 2;
            if (reference(mean_gap,
                          static_cast<double>(mid) * kUlp) >= k) {
                b = mid;
            } else {
                a = mid + 1;
            }
        }
        thresholds_.push_back(static_cast<double>(a) * kUlp);
        lo = a;
    }

    // Bucket index: for u in [b/kBuckets, (b+1)/kBuckets) the gap is
    // bounded by [#thresholds <= b/kBuckets, #thresholds < (b+1)/
    // kBuckets]. kBuckets is a power of two, so the bucket edges are
    // exactly representable and the bounds are exact; the residual
    // scan in sample() resolves the (rare) buckets a threshold falls
    // inside.
    bucket_lo_.resize(kBuckets);
    bucket_hi_.resize(kBuckets);
    for (unsigned b = 0; b < kBuckets; ++b) {
        double lo_u = static_cast<double>(b) / kBuckets;
        double hi_u = static_cast<double>(b + 1) / kBuckets;
        bucket_lo_[b] = static_cast<uint32_t>(
            std::upper_bound(thresholds_.begin(), thresholds_.end(),
                             lo_u) -
            thresholds_.begin());
        bucket_hi_[b] = static_cast<uint32_t>(
            std::lower_bound(thresholds_.begin(), thresholds_.end(),
                             hi_u) -
            thresholds_.begin());
    }
}

WorkloadGenerator::WorkloadGenerator(const WorkloadProfile &profile,
                                     int cores, uint64_t seed)
    : profile_(profile), cores_(cores), rng_(seed),
      gap_sampler_(profile.mean_gap),
      run_addr_(static_cast<size_t>(cores), 0),
      run_left_(static_cast<size_t>(cores), 0)
{
    if (cores_ < 1)
        rtm_fatal("workload needs at least one core");
    if (profile_.working_set_bytes < kLineBytes * 16ull)
        rtm_fatal("working set too small");

    // Region geometry, formerly re-derived on every pickLine: 3/4 of
    // the working set is core-private, 1/4 shared.
    lines_ = profile_.working_set_bytes / kLineBytes;
    private_lines_ = lines_ * 3 / 4 / static_cast<uint64_t>(cores_);
    shared_lines_ =
        lines_ - private_lines_ * static_cast<uint64_t>(cores_);
    shared_base_ = private_lines_ * static_cast<uint64_t>(cores_);
    // A degenerate private split (more cores than private lines)
    // falls back to the whole working set, as the per-request code
    // did.
    private_region_lines_ = private_lines_ > 0 ? private_lines_
                                               : lines_;
    hot_private_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(private_region_lines_) *
               profile_.hot_set_ratio));
    hot_shared_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(shared_lines_) *
               profile_.hot_set_ratio));
}

Addr
WorkloadGenerator::pickLine(int core)
{
    // The bernoulli is drawn before the region test so the RNG
    // stream matches the original code exactly.
    bool shared = rng_.bernoulli(0.25) && shared_lines_ > 0;
    uint64_t region_base, region_lines, hot_lines;
    if (shared) {
        region_base = shared_base_;
        region_lines = shared_lines_;
        hot_lines = hot_shared_;
    } else {
        // private_lines_ == 0 implies the whole-set fallback, whose
        // base is 0 — which private_lines_ * core already is.
        region_base = private_lines_ * static_cast<uint64_t>(core);
        region_lines = private_region_lines_;
        hot_lines = hot_private_;
    }

    // Hot-set bias: a small fraction of the region absorbs most
    // accesses (temporal locality).
    uint64_t idx;
    if (rng_.bernoulli(profile_.hot_fraction))
        idx = rng_.uniformInt(hot_lines);
    else
        idx = rng_.uniformInt(region_lines);
    return (region_base + idx) * kLineBytes;
}

MemRequest
WorkloadGenerator::next()
{
    int core = next_core_;
    if (++next_core_ == cores_)
        next_core_ = 0;

    MemRequest req;
    req.core = core;
    req.is_write = rng_.bernoulli(profile_.write_ratio);
    // Geometric gap with the configured mean, via the precomputed
    // inverse-CDF table (one uniform draw, as before).
    req.gap_instructions = gap_sampler_.sample(rng_.uniform());

    auto c = static_cast<size_t>(core);
    if (run_left_[c] > 0 &&
        rng_.bernoulli(profile_.sequential_prob)) {
        run_addr_[c] += kLineBytes;
        if (run_addr_[c] >= profile_.working_set_bytes)
            run_addr_[c] = 0;
        --run_left_[c];
    } else {
        run_addr_[c] = pickLine(core);
        run_left_[c] = static_cast<int>(rng_.uniformInt(16)) + 1;
    }
    req.addr = run_addr_[c];
    return req;
}

} // namespace rtm
