#include "workload.hh"

#include <cmath>

#include "util/logging.hh"

namespace rtm
{

namespace
{

constexpr uint64_t kMiB = 1ull << 20;
constexpr int kLineBytes = 64;

WorkloadProfile
make(const std::string &name, uint64_t ws, double hot_frac,
     double hot_ratio, double seq, double wr, double gap,
     bool sensitive)
{
    WorkloadProfile p;
    p.name = name;
    p.working_set_bytes = ws;
    p.hot_fraction = hot_frac;
    p.hot_set_ratio = hot_ratio;
    p.sequential_prob = seq;
    p.write_ratio = wr;
    p.mean_gap = gap;
    p.capacity_sensitive = sensitive;
    return p;
}

} // anonymous namespace

std::vector<WorkloadProfile>
parsecProfiles()
{
    // Working sets are chosen relative to the LLC options: sensitive
    // workloads live between 4 MB (SRAM) and 128 MB (racetrack) so
    // larger LLCs cut their miss rates; insensitive ones fit in 4 MB
    // or stream far past 128 MB.
    return {
        // --- capacity sensitive ------------------------------------
        make("canneal", 96 * kMiB, 0.55, 0.05, 0.15, 0.25, 4.0, true),
        make("ferret", 48 * kMiB, 0.70, 0.10, 0.40, 0.30, 3.5, true),
        make("streamcluster", 64 * kMiB, 0.60, 0.08, 0.80, 0.20, 2.5,
             true),
        make("dedup", 40 * kMiB, 0.65, 0.10, 0.55, 0.40, 3.0, true),
        make("facesim", 72 * kMiB, 0.70, 0.12, 0.60, 0.35, 3.5, true),
        make("x264", 24 * kMiB, 0.75, 0.15, 0.65, 0.30, 3.0, true),
        // --- capacity insensitive ----------------------------------
        make("blackscholes", 2 * kMiB, 0.90, 0.20, 0.70, 0.20, 5.0,
             false),
        make("bodytrack", 3 * kMiB, 0.85, 0.20, 0.55, 0.30, 4.0,
             false),
        make("swaptions", 1 * kMiB, 0.90, 0.25, 0.60, 0.25, 5.0,
             false),
        make("fluidanimate", 3 * kMiB, 0.80, 0.20, 0.60, 0.35, 3.5,
             false),
        make("freqmine", 2 * kMiB, 0.85, 0.20, 0.50, 0.30, 4.0,
             false),
        make("vips", 3 * kMiB, 0.80, 0.20, 0.70, 0.35, 3.0, false),
    };
}

WorkloadProfile
parsecProfile(const std::string &name)
{
    for (const auto &p : parsecProfiles())
        if (p.name == name)
            return p;
    rtm_fatal("unknown workload profile '%s'", name.c_str());
}

WorkloadGenerator::WorkloadGenerator(const WorkloadProfile &profile,
                                     int cores, uint64_t seed)
    : profile_(profile), cores_(cores), rng_(seed),
      run_addr_(static_cast<size_t>(cores), 0),
      run_left_(static_cast<size_t>(cores), 0)
{
    if (cores_ < 1)
        rtm_fatal("workload needs at least one core");
    if (profile_.working_set_bytes < kLineBytes * 16ull)
        rtm_fatal("working set too small");
}

Addr
WorkloadGenerator::pickLine(int core)
{
    uint64_t lines = profile_.working_set_bytes / kLineBytes;
    // 3/4 of the working set is core-private, 1/4 shared.
    uint64_t private_lines = lines * 3 / 4 /
                             static_cast<uint64_t>(cores_);
    uint64_t shared_lines = lines - private_lines *
                            static_cast<uint64_t>(cores_);
    bool shared = rng_.bernoulli(0.25) && shared_lines > 0;
    uint64_t region_base =
        shared ? private_lines * static_cast<uint64_t>(cores_)
               : private_lines * static_cast<uint64_t>(core);
    uint64_t region_lines = shared ? shared_lines : private_lines;
    if (region_lines == 0) {
        region_base = 0;
        region_lines = lines;
    }

    // Hot-set bias: a small fraction of the region absorbs most
    // accesses (temporal locality).
    uint64_t hot_lines = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(region_lines) *
               profile_.hot_set_ratio));
    uint64_t idx;
    if (rng_.bernoulli(profile_.hot_fraction))
        idx = rng_.uniformInt(hot_lines);
    else
        idx = rng_.uniformInt(region_lines);
    return (region_base + idx) * kLineBytes;
}

MemRequest
WorkloadGenerator::next()
{
    int core = next_core_;
    next_core_ = (next_core_ + 1) % cores_;

    MemRequest req;
    req.core = core;
    req.is_write = rng_.bernoulli(profile_.write_ratio);
    // Geometric gap with the configured mean.
    double u = rng_.uniform();
    double gap = -profile_.mean_gap * std::log(1.0 - u);
    req.gap_instructions =
        static_cast<uint32_t>(std::min(gap, 1000.0));

    auto c = static_cast<size_t>(core);
    if (run_left_[c] > 0 &&
        rng_.bernoulli(profile_.sequential_prob)) {
        run_addr_[c] += kLineBytes;
        if (run_addr_[c] >= profile_.working_set_bytes)
            run_addr_[c] = 0;
        --run_left_[c];
    } else {
        run_addr_[c] = pickLine(core);
        run_left_[c] = static_cast<int>(rng_.uniformInt(16)) + 1;
    }
    req.addr = run_addr_[c];
    return req;
}

} // namespace rtm
