/**
 * @file
 * Per-frame access profiles for offline data placement.
 *
 * A profiling run (SimConfig::frame_profile_out with
 * PlacementConfig::track_counts) captures how often each LLC line
 * frame was served by the racetrack bank. The profile feeds the
 * offline hot-center placement variant (PlacementConfig::profile) of
 * a second run, and serialises to JSON so a profile captured by one
 * tool can season a later experiment.
 */

#ifndef RTM_TRACE_FRAME_PROFILE_HH
#define RTM_TRACE_FRAME_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rtm
{

class JsonValue;

/** Access counts per LLC line frame, indexed by frame number. */
struct FrameProfile
{
    std::vector<uint64_t> counts;

    /** Sum of all per-frame counts. */
    uint64_t total() const;

    /** Number of frames with at least one access. */
    uint64_t touchedFrames() const;

    /**
     * Share of accesses landing in the hottest `top_fraction` of
     * frames (e.g. 0.1 for the top decile) — the skew a hot-center
     * placement exploits. Returns 0 for an empty profile;
     * `top_fraction` is clamped to [0, 1].
     */
    double hotShare(double top_fraction) const;
};

/**
 * Serialise as `{"counts": [...]}`. Counts are emitted in full
 * (including trailing zeros) so frame indices survive round-trips.
 */
JsonValue frameProfileToJson(const FrameProfile &profile);

/**
 * Parse the frameProfileToJson format. On failure returns false and
 * explains in `diag` (when non-null).
 */
bool frameProfileFromJson(const JsonValue &doc, FrameProfile *out,
                          std::string *diag);

} // namespace rtm

#endif // RTM_TRACE_FRAME_PROFILE_HH
