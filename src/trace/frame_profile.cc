#include "frame_profile.hh"

#include <algorithm>
#include <cmath>

#include "util/serde.hh"

namespace rtm
{

uint64_t
FrameProfile::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : counts)
        sum += c;
    return sum;
}

uint64_t
FrameProfile::touchedFrames() const
{
    uint64_t n = 0;
    for (uint64_t c : counts)
        n += c > 0 ? 1 : 0;
    return n;
}

double
FrameProfile::hotShare(double top_fraction) const
{
    const uint64_t sum = total();
    if (sum == 0 || counts.empty())
        return 0.0;
    top_fraction = std::min(1.0, std::max(0.0, top_fraction));
    auto top = static_cast<size_t>(std::ceil(
        top_fraction * static_cast<double>(counts.size())));
    if (top == 0)
        return 0.0;
    std::vector<uint64_t> sorted = counts;
    std::partial_sort(sorted.begin(), sorted.begin() +
                      static_cast<std::ptrdiff_t>(top),
                      sorted.end(), std::greater<uint64_t>());
    uint64_t hot = 0;
    for (size_t i = 0; i < top; ++i)
        hot += sorted[i];
    return static_cast<double>(hot) / static_cast<double>(sum);
}

JsonValue
frameProfileToJson(const FrameProfile &profile)
{
    JsonValue counts = JsonValue::array();
    for (uint64_t c : profile.counts)
        counts.push(c);
    JsonValue v = JsonValue::object();
    v.set("counts", std::move(counts));
    return v;
}

bool
frameProfileFromJson(const JsonValue &doc, FrameProfile *out,
                     std::string *diag)
{
    auto fail = [diag](const char *msg) {
        if (diag)
            *diag = std::string("frame profile: ") + msg;
        return false;
    };
    if (!doc.isObject())
        return fail("expected an object");
    const JsonValue *counts = doc.find("counts");
    if (!counts || !counts->isArray())
        return fail("missing \"counts\" array");
    FrameProfile profile;
    profile.counts.reserve(counts->size());
    for (size_t i = 0; i < counts->size(); ++i) {
        const JsonValue &c = counts->at(i);
        if (!c.isNumber())
            return fail("counts entries must be numbers");
        profile.counts.push_back(c.asU64());
    }
    *out = std::move(profile);
    return true;
}

} // namespace rtm
