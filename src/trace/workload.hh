/**
 * @file
 * Synthetic memory-access workload generators.
 *
 * The paper evaluates on PARSEC. Without the original traces we
 * generate synthetic access streams whose first-order properties
 * drive the results that matter here: working-set size relative to
 * the LLC options (4 MB SRAM / 32 MB STT-RAM / 128 MB racetrack),
 * spatial locality (sequential runs vs random lines), read/write mix,
 * and memory-operation density. Each PARSEC benchmark is represented
 * by a parameter profile calibrated so it lands on the paper's side
 * of the capacity-sensitive / capacity-insensitive divide (Fig. 16).
 *
 * Substitution documented in DESIGN.md.
 */

#ifndef RTM_TRACE_WORKLOAD_HH
#define RTM_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "util/rng.hh"

namespace rtm
{

/** One memory request of a trace. */
struct MemRequest
{
    int core = 0;
    Addr addr = 0;
    bool is_write = false;
    /** Non-memory instructions executed before this request. */
    uint32_t gap_instructions = 0;
};

/** Parameters of one synthetic workload. */
struct WorkloadProfile
{
    std::string name;
    uint64_t working_set_bytes = 1ull << 20;
    /** Fraction of accesses hitting the hot subset of the set. */
    double hot_fraction = 0.8;
    /** Size of the hot subset relative to the working set. */
    double hot_set_ratio = 0.1;
    /** Probability the next access continues a sequential run. */
    double sequential_prob = 0.5;
    /** Fraction of requests that are writes. */
    double write_ratio = 0.3;
    /** Mean non-memory instructions between memory operations. */
    double mean_gap = 3.0;
    /** True if the paper classes it capacity sensitive (Fig. 16). */
    bool capacity_sensitive = false;
};

/** Profiles for the PARSEC benchmarks used in the paper's figures. */
std::vector<WorkloadProfile> parsecProfiles();

/** Look up one profile by name (fatal if unknown). */
WorkloadProfile parsecProfile(const std::string &name);

/**
 * Stream generator for one profile across `cores` cores.
 *
 * Each core owns a private region of the working set plus a shared
 * region, mimicking PARSEC's mostly-partitioned parallel phases.
 */
class WorkloadGenerator
{
  public:
    WorkloadGenerator(const WorkloadProfile &profile, int cores,
                      uint64_t seed);

    /** Produce the next request (round-robin across cores). */
    MemRequest next();

    const WorkloadProfile &profile() const { return profile_; }

  private:
    WorkloadProfile profile_;
    int cores_;
    Rng rng_;
    int next_core_ = 0;
    std::vector<Addr> run_addr_;   //!< per-core sequential cursor
    std::vector<int> run_left_;    //!< lines left in current run

    Addr pickLine(int core);
};

} // namespace rtm

#endif // RTM_TRACE_WORKLOAD_HH
