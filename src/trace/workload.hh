/**
 * @file
 * Synthetic memory-access workload generators.
 *
 * The paper evaluates on PARSEC. Without the original traces we
 * generate synthetic access streams whose first-order properties
 * drive the results that matter here: working-set size relative to
 * the LLC options (4 MB SRAM / 32 MB STT-RAM / 128 MB racetrack),
 * spatial locality (sequential runs vs random lines), read/write mix,
 * and memory-operation density. Each PARSEC benchmark is represented
 * by a parameter profile calibrated so it lands on the paper's side
 * of the capacity-sensitive / capacity-insensitive divide (Fig. 16).
 *
 * Substitution documented in DESIGN.md.
 *
 * The generator sits on the simulator's per-request hot path, so the
 * region geometry (private/shared split, hot-set sizes) is derived
 * once at construction instead of per request, and the geometric
 * instruction gap is sampled through a precomputed inverse-CDF
 * threshold table instead of a `log` call per request. Both draw RNG
 * variates in the original order and reproduce the original values
 * bit-for-bit (pinned by tests/sim_golden_test.cc).
 */

#ifndef RTM_TRACE_WORKLOAD_HH
#define RTM_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "util/rng.hh"

namespace rtm
{

/** One memory request of a trace. */
struct MemRequest
{
    int core = 0;
    Addr addr = 0;
    bool is_write = false;
    /** Non-memory instructions executed before this request. */
    uint32_t gap_instructions = 0;
};

/** Parameters of one synthetic workload. */
struct WorkloadProfile
{
    std::string name;
    uint64_t working_set_bytes = 1ull << 20;
    /** Fraction of accesses hitting the hot subset of the set. */
    double hot_fraction = 0.8;
    /** Size of the hot subset relative to the working set. */
    double hot_set_ratio = 0.1;
    /** Probability the next access continues a sequential run. */
    double sequential_prob = 0.5;
    /** Fraction of requests that are writes. */
    double write_ratio = 0.3;
    /** Mean non-memory instructions between memory operations. */
    double mean_gap = 3.0;
    /** True if the paper classes it capacity sensitive (Fig. 16). */
    bool capacity_sensitive = false;
};

/** Profiles for the PARSEC benchmarks used in the paper's figures. */
std::vector<WorkloadProfile> parsecProfiles();

/** Look up one profile by name (fatal if unknown). */
WorkloadProfile parsecProfile(const std::string &name);

/**
 * Precomputed sampler for the truncated geometric instruction gap
 * `min(floor(-mean * log(1 - u)), 1000)` over u in [0, 1).
 *
 * thresholds()[k] is the smallest representable uniform variate (on
 * the generator's 53-bit grid) whose gap is at least k+1, found by
 * binary search against the original expression, so `sample(u)`
 * returns exactly what the per-request `log` computed for every
 * possible u. The table has one entry per reachable gap value
 * (~37 * mean entries). A bucket index over [0, 1) narrows the
 * threshold scan to the few entries inside u's bucket; most buckets
 * contain no threshold at all, so the common case is one table
 * lookup and zero compares (no data-dependent branch to mispredict,
 * unlike a scan from 0 whose exit is geometrically distributed).
 */
class GeometricGapSampler
{
  public:
    explicit GeometricGapSampler(double mean_gap);

    /** Gap for one uniform variate in [0, 1). */
    uint32_t sample(double u) const
    {
        unsigned b = static_cast<unsigned>(u * kBuckets);
        if (b >= kBuckets)
            b = kBuckets - 1;
        uint32_t gap = bucket_lo_[b];
        const uint32_t hi = bucket_hi_[b];
        while (gap < hi && u >= thresholds_[gap])
            ++gap;
        return gap;
    }

    /** The exact reference expression the table was solved against. */
    static uint32_t reference(double mean_gap, double u);

    /** Threshold table (introspection/tests). */
    const std::vector<double> &thresholds() const
    {
        return thresholds_;
    }

  private:
    /** Bucket count: power of two so bucket edges are exact. */
    static constexpr unsigned kBuckets = 2048;

    std::vector<double> thresholds_;
    /** Per-bucket gap bounds: gap(u) in [lo, hi] for u in bucket. */
    std::vector<uint32_t> bucket_lo_;
    std::vector<uint32_t> bucket_hi_;
};

/**
 * Stream generator for one profile across `cores` cores.
 *
 * Each core owns a private region of the working set plus a shared
 * region, mimicking PARSEC's mostly-partitioned parallel phases.
 */
class WorkloadGenerator
{
  public:
    WorkloadGenerator(const WorkloadProfile &profile, int cores,
                      uint64_t seed);

    /** Produce the next request (round-robin across cores). */
    MemRequest next();

    const WorkloadProfile &profile() const { return profile_; }

  private:
    WorkloadProfile profile_;
    int cores_;
    Rng rng_;
    GeometricGapSampler gap_sampler_;
    int next_core_ = 0;
    std::vector<Addr> run_addr_;   //!< per-core sequential cursor
    std::vector<int> run_left_;    //!< lines left in current run

    // Region geometry, derived once from (profile, cores). The
    // shared region sits above the per-core private regions; when
    // the private split degenerates to zero lines each region falls
    // back to the whole working set (original per-request logic).
    uint64_t lines_;          //!< working set in lines
    uint64_t private_lines_;  //!< private lines per core
    uint64_t shared_lines_;   //!< lines of the shared region
    uint64_t shared_base_;    //!< first line of the shared region
    uint64_t private_region_lines_; //!< after empty-region fallback
    uint64_t hot_private_;    //!< hot lines of a private region
    uint64_t hot_shared_;     //!< hot lines of the shared region

    Addr pickLine(int core);
};

} // namespace rtm

#endif // RTM_TRACE_WORKLOAD_HH
