/**
 * @file
 * Text trace-file support: lets downstream users replay real memory
 * traces through the simulator instead of the synthetic generators.
 *
 * Format: one request per line,
 *
 *     <core> <hex-or-dec address> <R|W> [gap]
 *
 * where `gap` is the number of non-memory instructions preceding the
 * request (default 0). '#' starts a comment; blank lines are
 * ignored. Example:
 *
 *     # core addr  rw gap
 *     0 0x1a2b40 R 12
 *     1 0x40       W 3
 */

#ifndef RTM_TRACE_TRACE_FILE_HH
#define RTM_TRACE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace rtm
{

/**
 * Parse a trace from a string buffer (used by tests and by
 * loadTraceFile). Malformed lines are fatal with a line number.
 */
std::vector<MemRequest> parseTrace(const std::string &text);

/** Load a trace file from disk (fatal if unreadable). */
std::vector<MemRequest> loadTraceFile(const std::string &path);

/**
 * Serialise requests into the text format (round-trips through
 * parseTrace).
 */
std::string formatTrace(const std::vector<MemRequest> &requests);

/**
 * Replay adapter with the WorkloadGenerator interface shape: hands
 * out requests in order and loops back to the start when exhausted
 * (so a short trace can drive an arbitrarily long simulation).
 */
class TraceReplay
{
  public:
    explicit TraceReplay(std::vector<MemRequest> requests);

    /** Next request (wraps around at the end). */
    MemRequest next();

    /** Number of distinct requests in the trace. */
    size_t size() const { return requests_.size(); }

    /** How many times the trace has wrapped. */
    uint64_t wraps() const { return wraps_; }

  private:
    std::vector<MemRequest> requests_;
    size_t pos_ = 0;
    uint64_t wraps_ = 0;
};

} // namespace rtm

#endif // RTM_TRACE_TRACE_FILE_HH
