/**
 * @file
 * Text trace-file support: lets downstream users replay real memory
 * traces through the simulator instead of the synthetic generators.
 *
 * Format: one request per line,
 *
 *     <core> <hex-or-dec address> <R|W> [gap]
 *
 * where `gap` is the number of non-memory instructions preceding the
 * request (default 0). '#' starts a comment; blank lines are
 * ignored. Example:
 *
 *     # core addr  rw gap
 *     0 0x1a2b40 R 12
 *     1 0x40       W 3
 */

#ifndef RTM_TRACE_TRACE_FILE_HH
#define RTM_TRACE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace rtm
{

/** How parseTraceChecked treats malformed lines. */
enum class TraceParseMode
{
    Strict, //!< stop at the first malformed line
    Lenient //!< skip-and-warn: drop malformed lines, keep going
};

/** One problem found while parsing a trace. */
struct TraceDiagnostic
{
    int line = 0; //!< 1-based line number (0: whole-file problem)
    std::string message;
};

/** Outcome of a checked trace parse. */
struct TraceParseResult
{
    std::vector<MemRequest> requests;
    std::vector<TraceDiagnostic> diagnostics;
    int parsed_lines = 0;  //!< request lines successfully parsed
    int skipped_lines = 0; //!< malformed lines dropped (lenient)

    /** True when the whole input parsed cleanly. */
    bool ok() const { return diagnostics.empty(); }
};

/**
 * Parse a trace from a string buffer with per-line diagnostics.
 * Strict mode returns at the first malformed line (requests hold
 * everything parsed before it); lenient mode records a diagnostic,
 * skips the line, and keeps going — truncated or partially garbled
 * traces still yield their well-formed requests. An empty input is
 * ok() with zero requests.
 */
TraceParseResult parseTraceChecked(
    const std::string &text,
    TraceParseMode mode = TraceParseMode::Strict);

/**
 * Checked disk load: an unreadable file yields a line-0 diagnostic
 * instead of aborting.
 */
TraceParseResult loadTraceFileChecked(
    const std::string &path,
    TraceParseMode mode = TraceParseMode::Strict);

/**
 * Parse a trace from a string buffer (used by tests and by
 * loadTraceFile). Malformed lines are fatal with a line number.
 */
std::vector<MemRequest> parseTrace(const std::string &text);

/** Load a trace file from disk (fatal if unreadable). */
std::vector<MemRequest> loadTraceFile(const std::string &path);

/**
 * Serialise requests into the text format (round-trips through
 * parseTrace).
 */
std::string formatTrace(const std::vector<MemRequest> &requests);

/**
 * Replay adapter with the WorkloadGenerator interface shape: hands
 * out requests in order and loops back to the start when exhausted
 * (so a short trace can drive an arbitrarily long simulation).
 */
class TraceReplay
{
  public:
    explicit TraceReplay(std::vector<MemRequest> requests);

    /** Next request (wraps around at the end). */
    MemRequest next();

    /** Number of distinct requests in the trace. */
    size_t size() const { return requests_.size(); }

    /** How many times the trace has wrapped. */
    uint64_t wraps() const { return wraps_; }

  private:
    std::vector<MemRequest> requests_;
    size_t pos_ = 0;
    uint64_t wraps_ = 0;
};

} // namespace rtm

#endif // RTM_TRACE_TRACE_FILE_HH
