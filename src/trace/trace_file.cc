#include "trace_file.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace rtm
{

std::vector<MemRequest>
parseTrace(const std::string &text)
{
    std::vector<MemRequest> out;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments.
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        // Skip blank lines.
        bool blank = true;
        for (char c : line)
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        if (blank)
            continue;

        std::istringstream fields(line);
        MemRequest req;
        std::string addr_str, rw;
        long core;
        if (!(fields >> core >> addr_str >> rw))
            rtm_fatal("trace line %d: expected '<core> <addr> "
                      "<R|W> [gap]'",
                      line_no);
        if (core < 0)
            rtm_fatal("trace line %d: negative core id", line_no);
        req.core = static_cast<int>(core);
        try {
            req.addr = std::stoull(addr_str, nullptr, 0);
        } catch (...) {
            rtm_fatal("trace line %d: bad address '%s'", line_no,
                      addr_str.c_str());
        }
        if (rw == "R" || rw == "r")
            req.is_write = false;
        else if (rw == "W" || rw == "w")
            req.is_write = true;
        else
            rtm_fatal("trace line %d: access type must be R or W, "
                      "got '%s'",
                      line_no, rw.c_str());
        long gap = 0;
        if (fields >> gap) {
            if (gap < 0)
                rtm_fatal("trace line %d: negative gap", line_no);
            req.gap_instructions = static_cast<uint32_t>(gap);
        }
        out.push_back(req);
    }
    return out;
}

std::vector<MemRequest>
loadTraceFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        rtm_fatal("cannot open trace file '%s'", path.c_str());
    std::ostringstream buf;
    buf << f.rdbuf();
    return parseTrace(buf.str());
}

std::string
formatTrace(const std::vector<MemRequest> &requests)
{
    std::string out = "# core addr rw gap\n";
    char line[96];
    for (const auto &r : requests) {
        std::snprintf(line, sizeof(line), "%d 0x%llx %c %u\n",
                      r.core,
                      static_cast<unsigned long long>(r.addr),
                      r.is_write ? 'W' : 'R', r.gap_instructions);
        out += line;
    }
    return out;
}

TraceReplay::TraceReplay(std::vector<MemRequest> requests)
    : requests_(std::move(requests))
{
    if (requests_.empty())
        rtm_fatal("trace replay needs at least one request");
}

MemRequest
TraceReplay::next()
{
    MemRequest r = requests_[pos_];
    if (++pos_ == requests_.size()) {
        pos_ = 0;
        ++wraps_;
    }
    return r;
}

} // namespace rtm
