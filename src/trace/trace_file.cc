#include "trace_file.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace rtm
{

namespace
{

/** Warnings printed per lenient parse before going quiet. */
constexpr int kMaxLenientWarnings = 10;

/**
 * Parse one non-blank trace line. Returns true on success; on
 * failure fills `error` with the reason (no line-number prefix).
 */
bool
parseTraceLine(const std::string &line, MemRequest &req,
               std::string &error)
{
    std::istringstream fields(line);
    std::string addr_str, rw;
    long core;
    if (!(fields >> core >> addr_str >> rw)) {
        error = "expected '<core> <addr> <R|W> [gap]'";
        return false;
    }
    if (core < 0) {
        error = "negative core id";
        return false;
    }
    req.core = static_cast<int>(core);
    // Only the two documented stoull parse failures are recoverable
    // per-line problems; anything else (bad_alloc, ...) is a real
    // error and must propagate, not read as "malformed line".
    try {
        req.addr = std::stoull(addr_str, nullptr, 0);
    } catch (const std::invalid_argument &) {
        error = "bad address '" + addr_str + "'";
        return false;
    } catch (const std::out_of_range &) {
        error = "address '" + addr_str + "' out of range";
        return false;
    }
    if (rw == "R" || rw == "r") {
        req.is_write = false;
    } else if (rw == "W" || rw == "w") {
        req.is_write = true;
    } else {
        error = "access type must be R or W, got '" + rw + "'";
        return false;
    }
    long gap = 0;
    if (fields >> gap) {
        if (gap < 0) {
            error = "negative gap";
            return false;
        }
        req.gap_instructions = static_cast<uint32_t>(gap);
    }
    return true;
}

} // anonymous namespace

TraceParseResult
parseTraceChecked(const std::string &text, TraceParseMode mode)
{
    TraceParseResult result;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments.
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        // Skip blank lines.
        bool blank = true;
        for (char c : line)
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        if (blank)
            continue;

        MemRequest req;
        std::string error;
        if (parseTraceLine(line, req, error)) {
            result.requests.push_back(req);
            ++result.parsed_lines;
            continue;
        }
        result.diagnostics.push_back({line_no, error});
        if (mode == TraceParseMode::Strict)
            return result;
        ++result.skipped_lines;
        if (result.skipped_lines <= kMaxLenientWarnings) {
            rtm_warn("trace line %d: %s (skipped)", line_no,
                     error.c_str());
        }
    }
    if (result.skipped_lines > kMaxLenientWarnings) {
        rtm_warn("trace: %d further malformed lines skipped",
                 result.skipped_lines - kMaxLenientWarnings);
    }
    return result;
}

namespace
{

/**
 * Slurp a trace file, distinguishing "cannot open" and mid-read I/O
 * errors (disk failure, EIO, reading a directory) from success. An
 * I/O error must NOT degrade to an empty or truncated trace — a
 * silently half-loaded trace would replay as a different workload.
 */
bool
slurpTraceFile(const std::string &path, std::string *text,
               std::string *error)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        *error = "cannot open trace file '" + path + "'";
        return false;
    }
    text->clear();
    char chunk[4096];
    do {
        f.read(chunk, sizeof(chunk));
        text->append(chunk, static_cast<size_t>(f.gcount()));
    } while (f.good());
    if (f.bad()) {
        *error = "I/O error reading trace file '" + path + "'";
        return false;
    }
    return true;
}

} // anonymous namespace

TraceParseResult
loadTraceFileChecked(const std::string &path, TraceParseMode mode)
{
    std::string text, error;
    if (!slurpTraceFile(path, &text, &error)) {
        TraceParseResult result;
        result.diagnostics.push_back({0, error});
        return result;
    }
    return parseTraceChecked(text, mode);
}

std::vector<MemRequest>
parseTrace(const std::string &text)
{
    TraceParseResult result =
        parseTraceChecked(text, TraceParseMode::Strict);
    if (!result.ok()) {
        const TraceDiagnostic &d = result.diagnostics.front();
        rtm_fatal("trace line %d: %s", d.line, d.message.c_str());
    }
    return std::move(result.requests);
}

std::vector<MemRequest>
loadTraceFile(const std::string &path)
{
    std::string text, error;
    if (!slurpTraceFile(path, &text, &error))
        rtm_fatal("%s", error.c_str());
    return parseTrace(text);
}

std::string
formatTrace(const std::vector<MemRequest> &requests)
{
    std::string out = "# core addr rw gap\n";
    char line[96];
    for (const auto &r : requests) {
        std::snprintf(line, sizeof(line), "%d 0x%llx %c %u\n",
                      r.core,
                      static_cast<unsigned long long>(r.addr),
                      r.is_write ? 'W' : 'R', r.gap_instructions);
        out += line;
    }
    return out;
}

TraceReplay::TraceReplay(std::vector<MemRequest> requests)
    : requests_(std::move(requests))
{
    if (requests_.empty())
        rtm_fatal("trace replay needs at least one request");
}

MemRequest
TraceReplay::next()
{
    MemRequest r = requests_[pos_];
    if (++pos_ == requests_.size()) {
        pos_ = 0;
        ++wraps_;
    }
    return r;
}

} // namespace rtm
