/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hh"
#include "util/stats.hh"

namespace rtm
{
namespace
{

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMomentsLookRight)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(13);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(10)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, GaussianMomentsLookRight)
{
    Rng rng(17);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.01);
    EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, GaussianTailFrequency)
{
    // |Z| > 3 should occur with probability ~2.7e-3.
    Rng rng(19);
    int tail = 0;
    const int n = 500000;
    for (int i = 0; i < n; ++i)
        tail += std::abs(rng.gaussian()) > 3.0;
    double freq = static_cast<double>(tail) / n;
    EXPECT_NEAR(freq, 2.7e-3, 5e-4);
}

TEST(Rng, ScaledGaussian)
{
    Rng rng(23);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliEdgeCasesAndRate)
{
    Rng rng(29);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng a(31);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace rtm
