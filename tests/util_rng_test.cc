/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hh"
#include "util/stats.hh"

namespace rtm
{
namespace
{

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMomentsLookRight)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(13);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(10)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, GaussianMomentsLookRight)
{
    Rng rng(17);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.01);
    EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, GaussianTailFrequency)
{
    // |Z| > 3 should occur with probability ~2.7e-3.
    Rng rng(19);
    int tail = 0;
    const int n = 500000;
    for (int i = 0; i < n; ++i)
        tail += std::abs(rng.gaussian()) > 3.0;
    double freq = static_cast<double>(tail) / n;
    EXPECT_NEAR(freq, 2.7e-3, 5e-4);
}

TEST(Rng, ScaledGaussian)
{
    Rng rng(23);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliEdgeCasesAndRate)
{
    Rng rng(29);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng a(31);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, FillGaussianMatchesScalarAtEverySize)
{
    // The exact-tier contract: fillGaussian(dst, n) is
    // element-for-element identical to n gaussian() calls at every
    // batch size and tail remainder, including the Box-Muller
    // cached-sine handoff across the call boundary.
    for (size_t n = 0; n <= 67; ++n) {
        Rng a(1000 + n), b(1000 + n);
        std::vector<double> buf(n ? n : 1);
        a.fillGaussian(buf.data(), n);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], b.gaussian()) << "n=" << n
                                            << " i=" << i;
        // Cache parity: the next scalar draw must still agree.
        EXPECT_EQ(a.gaussian(), b.gaussian()) << "n=" << n;
    }
    for (size_t n : {size_t(255), size_t(256), size_t(257),
                     size_t(511), size_t(513), size_t(4096)}) {
        Rng a(7), b(7);
        std::vector<double> buf(n);
        a.fillGaussian(buf.data(), n);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], b.gaussian()) << "n=" << n
                                            << " i=" << i;
    }
}

TEST(Rng, FillGaussianHonoursPreSeededCache)
{
    // An odd scalar draw leaves a cached sine; the batch fill must
    // consume it first, exactly like the scalar path would.
    Rng a(55), b(55);
    (void)a.gaussian();
    (void)b.gaussian();
    std::vector<double> buf(100);
    a.fillGaussian(buf.data(), buf.size());
    for (size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf[i], b.gaussian()) << "i=" << i;
}

TEST(Rng, FillGaussianFastIsSeedStable)
{
    // The fast tier reorders draws but must be a pure function of
    // the seed: two identically seeded generators produce identical
    // buffers, run after run.
    for (size_t n : {size_t(1), size_t(7), size_t(256),
                     size_t(1000)}) {
        Rng a(91), b(91);
        std::vector<double> x(n), y(n);
        a.fillGaussianFast(x.data(), n);
        b.fillGaussianFast(y.data(), n);
        EXPECT_EQ(x, y) << "n=" << n;
    }
}

TEST(Rng, FillGaussianFastMomentsAreStandardNormal)
{
    Rng rng(17);
    const size_t n = 200000;
    std::vector<double> buf(n);
    rng.fillGaussianFast(buf.data(), n);
    RunningStats s;
    for (double v : buf)
        s.add(v);
    EXPECT_NEAR(s.mean(), 0.0, 0.01);
    EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, FillGaussianFastTracksScalarValues)
{
    // Batch order consumes the same uniform stream pairwise, so the
    // values match the scalar cos/sin draws to polynomial accuracy
    // even though the ordering contract differs.
    Rng a(123), b(123);
    const size_t n = 256;
    std::vector<double> fast(n);
    a.fillGaussianFast(fast.data(), n);
    std::vector<double> scalar(n);
    for (size_t i = 0; i < n; ++i)
        scalar[i] = b.gaussian();
    std::sort(fast.begin(), fast.end());
    std::sort(scalar.begin(), scalar.end());
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(fast[i], scalar[i], 1e-9) << "i=" << i;
}

} // namespace
} // namespace rtm
