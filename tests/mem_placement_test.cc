/**
 * @file
 * Unit tests for the data-placement policies (mem/placement.hh) and
 * their integration with the racetrack bank's shift ledger.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/placement.hh"
#include "mem/rm_bank.hh"

namespace rtm
{
namespace
{

PlacementGeometry
twoGroupGeometry()
{
    PlacementGeometry geom;
    geom.line_frames = 128;
    geom.frames_per_group = 64;
    geom.seg_len = 8;
    return geom;
}

int
homeOffsetOf(const PlacementGeometry &geom, uint64_t frame)
{
    int idx = static_cast<int>(
        frame % static_cast<uint64_t>(geom.frames_per_group));
    return geom.seg_len - 1 - idx % geom.seg_len;
}

TEST(PlacementKindTest, TokenRoundTrip)
{
    for (PlacementKind kind :
         {PlacementKind::Static, PlacementKind::HotCenter,
          PlacementKind::Adaptive}) {
        PlacementKind parsed;
        ASSERT_TRUE(placementKindFromToken(placementKindName(kind),
                                           &parsed));
        EXPECT_EQ(parsed, kind);
    }
    PlacementKind sink;
    EXPECT_FALSE(placementKindFromToken("round-robin", &sink));
}

TEST(StaticPlacementTest, MatchesArithmeticLayoutAndNeverTracks)
{
    PlacementGeometry geom = twoGroupGeometry();
    auto policy = makePlacementPolicy(geom, PlacementConfig{},
                                      HeadPolicy::Stay);
    EXPECT_STREQ(policy->name(), "static");
    EXPECT_FALSE(policy->tracking());
    for (uint64_t f = 0; f < geom.line_frames; ++f)
        EXPECT_EQ(policy->slotOffset(f), homeOffsetOf(geom, f));
}

TEST(StaticPlacementTest, TrackCountsCapturesWithoutRemapping)
{
    PlacementGeometry geom = twoGroupGeometry();
    PlacementConfig config;
    config.track_counts = true;
    auto policy =
        makePlacementPolicy(geom, config, HeadPolicy::Stay);
    ASSERT_TRUE(policy->tracking());

    std::vector<PlacementMigration> migrations;
    for (int i = 0; i < 500; ++i)
        policy->recordAccess(static_cast<uint64_t>(i % 3),
                             &migrations);
    EXPECT_TRUE(migrations.empty());
    ASSERT_EQ(policy->frameCounts().size(), geom.line_frames);
    uint64_t total = 0;
    for (uint64_t c : policy->frameCounts())
        total += c;
    EXPECT_EQ(total, 500u);
    for (uint64_t f = 0; f < geom.line_frames; ++f)
        EXPECT_EQ(policy->slotOffset(f), homeOffsetOf(geom, f));
}

TEST(HotCenterPlacementTest, OfflineProfilePacksHottestNearAnchor)
{
    PlacementGeometry geom = twoGroupGeometry();
    PlacementConfig config;
    config.kind = PlacementKind::HotCenter;
    // Group 0 heat strictly decreasing with frame index; group 1
    // cold everywhere.
    config.profile.assign(geom.line_frames, 0);
    for (uint64_t f = 0; f < 64; ++f)
        config.profile[f] = 128 - f;

    // Stay rests mid-segment: anchor 3, proximity order
    // 3,2,4,1,5,0,6,7 with 8 frames per offset.
    auto policy =
        makePlacementPolicy(geom, config, HeadPolicy::Stay);
    const int order[] = {3, 2, 4, 1, 5, 0, 6, 7};
    for (uint64_t f = 0; f < 64; ++f)
        EXPECT_EQ(policy->slotOffset(f), order[f / 8])
            << "frame " << f;

    // Return-home anchors offset 0: hottest eight frames sit at the
    // home position.
    auto home =
        makePlacementPolicy(geom, config, HeadPolicy::ReturnHome);
    for (uint64_t f = 0; f < 64; ++f)
        EXPECT_EQ(home->slotOffset(f), static_cast<int>(f / 8))
            << "frame " << f;
}

TEST(HotCenterPlacementTest, OnlineReorganisesEachGroupOnce)
{
    PlacementGeometry geom = twoGroupGeometry();
    PlacementConfig config;
    config.kind = PlacementKind::HotCenter;
    config.epoch_accesses = 8;
    auto policy =
        makePlacementPolicy(geom, config, HeadPolicy::Stay);
    ASSERT_TRUE(policy->tracking());

    std::vector<PlacementMigration> migrations;
    for (int i = 0; i < 8; ++i)
        policy->recordAccess(5, &migrations);
    const size_t first_epoch = migrations.size();
    EXPECT_GT(first_epoch, 0u);
    // Frame 5 monopolised the epoch: it moves to the anchor slot.
    EXPECT_EQ(policy->slotOffset(5), 3);

    // Later epochs never reorganise this group again.
    for (int i = 0; i < 64; ++i)
        policy->recordAccess(static_cast<uint64_t>(i % 7),
                             &migrations);
    EXPECT_EQ(migrations.size(), first_epoch);
}

TEST(AdaptivePlacementTest, SwapsStayWithinBudgetEveryEpoch)
{
    PlacementGeometry geom = twoGroupGeometry();
    PlacementConfig config;
    config.kind = PlacementKind::Adaptive;
    config.epoch_accesses = 8;
    config.swap_budget = 2;
    auto policy =
        makePlacementPolicy(geom, config, HeadPolicy::Stay);

    std::vector<PlacementMigration> migrations;
    size_t seen = 0;
    for (int epoch = 0; epoch < 50; ++epoch) {
        for (int i = 0; i < 8; ++i)
            policy->recordAccess(
                static_cast<uint64_t>((epoch + i * 3) % 64),
                &migrations);
        // A swap moves two frames, so per-epoch emission is bounded
        // by twice the budget — and always an even count.
        const size_t added = migrations.size() - seen;
        EXPECT_LE(added, 2u * 2u) << "epoch " << epoch;
        EXPECT_EQ(added % 2, 0u) << "epoch " << epoch;
        seen = migrations.size();
    }
    for (const PlacementMigration &m : migrations)
        EXPECT_NE(m.from_offset, m.to_offset);
}

TEST(AdaptivePlacementTest, ConcentratesHotFramesIntoOneSlot)
{
    PlacementGeometry geom = twoGroupGeometry();
    PlacementConfig config;
    config.kind = PlacementKind::Adaptive;
    config.epoch_accesses = 8;
    config.swap_budget = 4;
    auto policy =
        makePlacementPolicy(geom, config, HeadPolicy::Stay);

    // Frames 1 and 2 start one slot apart (home offsets 6 and 5)
    // and dominate the stream; the policy must co-locate them.
    ASSERT_NE(policy->slotOffset(1), policy->slotOffset(2));
    std::vector<PlacementMigration> migrations;
    for (int i = 0; i < 64; ++i)
        policy->recordAccess(1 + static_cast<uint64_t>(i % 2),
                             &migrations);
    EXPECT_EQ(policy->slotOffset(1), policy->slotOffset(2));
    EXPECT_FALSE(migrations.empty());
}

TEST(AdaptivePlacementTest, ZeroBudgetNeverMigrates)
{
    PlacementGeometry geom = twoGroupGeometry();
    PlacementConfig config;
    config.kind = PlacementKind::Adaptive;
    config.epoch_accesses = 4;
    config.swap_budget = 0;
    auto policy =
        makePlacementPolicy(geom, config, HeadPolicy::Stay);
    std::vector<PlacementMigration> migrations;
    for (int i = 0; i < 400; ++i)
        policy->recordAccess(static_cast<uint64_t>(i % 5),
                             &migrations);
    EXPECT_TRUE(migrations.empty());
    for (uint64_t f = 0; f < geom.line_frames; ++f)
        EXPECT_EQ(policy->slotOffset(f), homeOffsetOf(geom, f));
}

TEST(PredictiveHeadTest, RestFollowsTheHottestSlot)
{
    PlacementGeometry geom = twoGroupGeometry();
    PlacementConfig config;
    config.epoch_accesses = 8;
    auto policy =
        makePlacementPolicy(geom, config, HeadPolicy::Predictive);
    ASSERT_TRUE(policy->tracking());
    EXPECT_EQ(policy->restOffset(0), 0);

    // Frame 0 sits at slot 7 and takes the whole epoch: the group's
    // predicted rest moves under it. Group 1 is untouched.
    std::vector<PlacementMigration> migrations;
    for (int i = 0; i < 8; ++i)
        policy->recordAccess(0, &migrations);
    EXPECT_EQ(policy->restOffset(0), 7);
    EXPECT_EQ(policy->restOffset(1), 0);
    EXPECT_TRUE(migrations.empty());
}

// --- bank integration -------------------------------------------------

class PlacementBankFixture : public ::testing::Test
{
  protected:
    PaperCalibratedErrorModel model_;

    RmBank
    makeBank(const PlacementConfig &placement,
             HeadPolicy head = HeadPolicy::Stay)
    {
        RmBankConfig cfg;
        cfg.line_frames = 256;
        cfg.scheme = Scheme::PeccSAdaptive;
        cfg.head_policy = head;
        cfg.placement = placement;
        return RmBank(cfg, &model_, racetrackL3());
    }
};

TEST_F(PlacementBankFixture, AdaptiveMigrationsReconcileWithLedger)
{
    PlacementConfig adaptive;
    adaptive.kind = PlacementKind::Adaptive;
    adaptive.epoch_accesses = 16;
    adaptive.swap_budget = 4;
    RmBank bank = makeBank(adaptive);

    Cycles now = 0;
    for (int i = 0; i < 4000; ++i) {
        // Skewed stream across both groups so epochs fire and swaps
        // are justified.
        uint64_t frame = (i % 3 == 0)
                             ? static_cast<uint64_t>(i % 7)
                             : static_cast<uint64_t>(
                                   (i * 37) % 256);
        now += bank.accessFrame(frame, now).latency + 10;
    }
    const RmBankStats &s = bank.stats();
    EXPECT_GT(s.migrations, 0u);
    EXPECT_GT(s.migration_steps, 0u);
    // Migration work is folded into the shift ledger and the
    // per-group slices must sum exactly to the bank aggregates.
    EXPECT_LE(s.migration_steps, s.shift_steps);
    EXPECT_EQ(bank.ledgerViolation(), "");
}

TEST_F(PlacementBankFixture, StaticKnobsAreInert)
{
    // Non-default epoch/budget/tracking knobs on the static policy
    // must not change a single cost: the golden baseline may not
    // depend on placement bookkeeping.
    RmBank plain = makeBank(PlacementConfig{});
    PlacementConfig knobs;
    knobs.epoch_accesses = 4;
    knobs.swap_budget = 1;
    knobs.track_counts = true;
    RmBank tracked = makeBank(knobs);

    Cycles now = 0;
    for (int i = 0; i < 3000; ++i) {
        uint64_t frame = static_cast<uint64_t>((i * 13) % 256);
        ShiftCost a = plain.accessFrame(frame, now);
        ShiftCost b = tracked.accessFrame(frame, now);
        ASSERT_EQ(a.latency, b.latency) << "access " << i;
        ASSERT_EQ(a.total_steps, b.total_steps) << "access " << i;
        ASSERT_EQ(a.energy, b.energy) << "access " << i;
        now += a.latency + 25;
    }
    EXPECT_EQ(plain.stats().shift_steps, tracked.stats().shift_steps);
    EXPECT_EQ(tracked.stats().migrations, 0u);
    // The tracking run additionally captured a usable profile.
    uint64_t total = 0;
    for (uint64_t c : tracked.frameAccessCounts())
        total += c;
    EXPECT_EQ(total, 3000u);
}

TEST_F(PlacementBankFixture, HotCenterOfflineChargesNoMigrations)
{
    PlacementConfig offline;
    offline.kind = PlacementKind::HotCenter;
    offline.profile.assign(256, 1);
    RmBank bank = makeBank(offline);
    Cycles now = 0;
    for (int i = 0; i < 1000; ++i)
        now += bank.accessFrame(static_cast<uint64_t>(i % 256), now)
                   .latency +
               10;
    EXPECT_EQ(bank.stats().migrations, 0u);
    EXPECT_EQ(bank.stats().migration_steps, 0u);
    EXPECT_EQ(bank.ledgerViolation(), "");
}

} // anonymous namespace
} // namespace rtm
