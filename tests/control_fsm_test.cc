/**
 * @file
 * Unit tests for the cycle-level shift-controller FSM, including the
 * cross-validation against the analytic StsTiming latencies.
 */

#include <gtest/gtest.h>

#include "control/fsm.hh"

namespace rtm
{
namespace
{

StsTiming
peccTiming()
{
    return StsTiming(kDefaultClockHz, 0.4e-9, 1.0e-9, 0.34e-9);
}

TEST(Fsm, WalksTheStatesInOrder)
{
    ShiftFsm fsm(peccTiming());
    EXPECT_EQ(fsm.state(), FsmState::Idle);
    fsm.issue(1);
    EXPECT_EQ(fsm.state(), FsmState::Stage1);
    EXPECT_EQ(fsm.tick(), FsmState::Stage2); // 1-cycle stage 1
    EXPECT_EQ(fsm.tick(), FsmState::Stage2); // 2-cycle stage 2
    EXPECT_EQ(fsm.tick(), FsmState::Check);
    EXPECT_EQ(fsm.tick(), FsmState::Done);
    EXPECT_EQ(fsm.elapsed(), 4u);
}

TEST(Fsm, EmergentLatencyMatchesAnalyticModel)
{
    // The architectural latencies used throughout the evaluation
    // must be implementable by this datapath: FSM cycles == the
    // StsTiming closed form, for every distance.
    StsTiming timing = peccTiming();
    for (int steps = 1; steps <= 15; ++steps) {
        ShiftFsm fsm(timing);
        EXPECT_EQ(fsm.run(steps), timing.shiftCycles(steps))
            << "steps " << steps;
    }
}

TEST(Fsm, NoPeccSkipsTheCheckStage)
{
    StsTiming timing; // no check latency
    ShiftFsm fsm(timing, /*has_pecc=*/false);
    EXPECT_EQ(fsm.run(1), timing.shiftCycles(1));
    EXPECT_EQ(fsm.run(7), timing.shiftCycles(7));
    EXPECT_EQ(fsm.corrections(), 0);
}

TEST(Fsm, MismatchTriggersCorrectionMicroOp)
{
    StsTiming timing = peccTiming();
    ShiftFsm fsm(timing);
    fsm.issue(3);
    fsm.setCheckResult(true, +1);
    while (!fsm.done())
        fsm.tick();
    EXPECT_EQ(fsm.corrections(), 1);
    // Total = 3-step shift + 3-cycle correction logic (Table 5's
    // 1.34 ns) + 1-step counter-shift with its own check - exactly
    // what the behavioural ShiftController charges.
    EXPECT_EQ(fsm.elapsed(),
              timing.shiftCycles(3) + 3 + timing.shiftCycles(1));
}

TEST(Fsm, UncorrectableMismatchRetiresWithoutCorrection)
{
    ShiftFsm fsm(peccTiming());
    fsm.issue(2);
    fsm.setCheckResult(true, 0); // detected, direction unknown
    while (!fsm.done())
        fsm.tick();
    EXPECT_EQ(fsm.corrections(), 0);
}

TEST(Fsm, ReissueAfterDone)
{
    ShiftFsm fsm(peccTiming());
    EXPECT_EQ(fsm.run(2), peccTiming().shiftCycles(2));
    EXPECT_EQ(fsm.run(5), peccTiming().shiftCycles(5));
}

TEST(FsmDeathTest, IssueWhileBusyPanics)
{
    ShiftFsm fsm(peccTiming());
    fsm.issue(2);
    EXPECT_DEATH(fsm.issue(1), "busy");
}

TEST(FsmDeathTest, ZeroStepIssuePanics)
{
    ShiftFsm fsm(peccTiming());
    EXPECT_DEATH(fsm.issue(0), "at least one");
}

TEST(Fsm, TickInIdleIsInert)
{
    ShiftFsm fsm(peccTiming());
    EXPECT_EQ(fsm.tick(), FsmState::Idle);
    EXPECT_EQ(fsm.elapsed(), 0u);
}

TEST(Fsm, StateNames)
{
    EXPECT_STREQ(fsmStateName(FsmState::Stage1), "STAGE1");
    EXPECT_STREQ(fsmStateName(FsmState::Check), "CHECK");
    EXPECT_STREQ(fsmStateName(FsmState::Done), "DONE");
}

} // namespace
} // namespace rtm
