/**
 * @file
 * Graceful-degradation tests for the bank layer: DUE reports retire
 * stripe groups, frames remap onto healthy groups (capacity loss,
 * not a crash), and the per-group ledgers stay consistent.
 */

#include <gtest/gtest.h>

#include "mem/rm_bank.hh"
#include "model/tech.hh"

namespace rtm
{
namespace
{

RmBankConfig
smallBank(int budget = 2)
{
    RmBankConfig c;
    c.line_frames = 256; // 4 groups of 64 frames
    c.scheme = Scheme::PeccSAdaptive;
    c.group_retry_budget = budget;
    return c;
}

TEST(Degradation, GroupRetiresAfterBudgetExhausted)
{
    ZeroErrorModel model;
    RmBank bank(smallBank(), &model, l3For(MemTech::Racetrack));
    ASSERT_EQ(bank.groupCount(), 4u);
    uint64_t frame_in_g1 = 64; // first frame of group 1
    EXPECT_FALSE(bank.reportUnrecoverable(frame_in_g1));
    EXPECT_FALSE(bank.isDegraded(1));
    EXPECT_TRUE(bank.reportUnrecoverable(frame_in_g1 + 5));
    EXPECT_TRUE(bank.isDegraded(1));
    EXPECT_EQ(bank.stats().due_reports, 2u);
    EXPECT_EQ(bank.stats().degraded_groups, 1u);
    // Frames of the retired group serve from the next healthy one.
    EXPECT_EQ(bank.servingGroupFor(frame_in_g1), 2u);
    EXPECT_DOUBLE_EQ(bank.degradedCapacityFraction(), 0.25);
    EXPECT_EQ(bank.ledgerViolation(), "");
}

TEST(Degradation, RemappedAccessesAreServedAndCounted)
{
    ZeroErrorModel model;
    RmBank bank(smallBank(), &model, l3For(MemTech::Racetrack));
    bank.reportUnrecoverable(70);
    bank.reportUnrecoverable(70);
    ASSERT_TRUE(bank.isDegraded(1));
    Cycles now = 0;
    for (uint64_t f = 64; f < 128; f += 8) {
        ShiftCost c = bank.accessFrame(f, now);
        now += c.latency + 4;
    }
    EXPECT_EQ(bank.stats().remapped_accesses, 8u);
    EXPECT_EQ(bank.stats().accesses, 8u);
    // The serving group's slice carries the work.
    EXPECT_EQ(bank.groupStats(2).accesses, 8u);
    EXPECT_EQ(bank.groupStats(1).accesses, 0u);
    EXPECT_EQ(bank.ledgerViolation(), "");
}

TEST(Degradation, RemapChainsSkipLaterCasualties)
{
    ZeroErrorModel model;
    RmBank bank(smallBank(1), &model, l3For(MemTech::Racetrack));
    EXPECT_TRUE(bank.reportUnrecoverable(64));  // group 1 -> 2
    EXPECT_TRUE(bank.reportUnrecoverable(128)); // group 2 -> 3
    EXPECT_EQ(bank.servingGroupFor(64), 3u);
    EXPECT_EQ(bank.servingGroupFor(128), 3u);
    EXPECT_DOUBLE_EQ(bank.degradedCapacityFraction(), 0.5);
    EXPECT_EQ(bank.ledgerViolation(), "");
}

TEST(Degradation, AllGroupsDegradedServesInPlace)
{
    ZeroErrorModel model;
    RmBank bank(smallBank(1), &model, l3For(MemTech::Racetrack));
    for (uint64_t g = 0; g < 4; ++g)
        EXPECT_TRUE(bank.reportUnrecoverable(g * 64));
    EXPECT_EQ(bank.stats().degraded_groups, 4u);
    EXPECT_DOUBLE_EQ(bank.degradedCapacityFraction(), 1.0);
    // No healthy target left: frames serve from their home group
    // rather than crashing or looping.
    EXPECT_EQ(bank.servingGroupFor(0), 0u);
    EXPECT_EQ(bank.servingGroupFor(200), 3u);
    Cycles now = 0;
    for (uint64_t f = 0; f < 256; f += 32)
        now += bank.accessFrame(f, now).latency + 4;
    EXPECT_EQ(bank.stats().accesses, 8u);
    EXPECT_EQ(bank.ledgerViolation(), "");
}

TEST(Degradation, DisabledBudgetNeverRetires)
{
    ZeroErrorModel model;
    RmBank bank(smallBank(0), &model, l3For(MemTech::Racetrack));
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(bank.reportUnrecoverable(64));
    EXPECT_EQ(bank.stats().due_reports, 50u);
    EXPECT_EQ(bank.stats().degraded_groups, 0u);
    EXPECT_FALSE(bank.isDegraded(1));
    EXPECT_DOUBLE_EQ(bank.degradedCapacityFraction(), 0.0);
}

TEST(Degradation, ReportsToRetiredGroupsAreIdempotent)
{
    ZeroErrorModel model;
    RmBank bank(smallBank(1), &model, l3For(MemTech::Racetrack));
    EXPECT_TRUE(bank.reportUnrecoverable(64));
    EXPECT_FALSE(bank.reportUnrecoverable(64));
    EXPECT_EQ(bank.stats().degraded_groups, 1u);
    EXPECT_EQ(bank.stats().due_reports, 2u);
}

TEST(Degradation, PerGroupLedgerSumsToBankAggregates)
{
    ZeroErrorModel model;
    RmBankConfig cfg = smallBank();
    cfg.head_policy = HeadPolicy::ReturnHome; // exercise idle drift
    RmBank bank(cfg, &model, l3For(MemTech::Racetrack));
    Cycles now = 0;
    for (uint64_t i = 0; i < 200; ++i) {
        uint64_t frame = (i * 37) % 256;
        now += bank.accessFrame(frame, now).latency + 5000;
    }
    EXPECT_EQ(bank.ledgerViolation(), "");
    uint64_t sum = 0;
    for (uint64_t g = 0; g < bank.groupCount(); ++g)
        sum += bank.groupStats(g).shift_ops;
    EXPECT_EQ(sum, bank.stats().shift_ops);
}

} // namespace
} // namespace rtm
