/**
 * @file
 * ExperimentSpec tests: JSON round-trips (parse -> expand -> emit ->
 * parse is the identity, including every defaulted field), cell-list
 * expansion, malformed-spec diagnostics, the engine's scheduling
 * contract, and the unified result export.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "device/fault_scenario.hh"
#include "sim/experiment.hh"
#include "trace/workload.hh"
#include "util/parallel.hh"
#include "util/serde.hh"
#include "util/telemetry.hh"

namespace rtm
{
namespace
{

ExperimentSpec
parseSpecOk(const std::string &text)
{
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(text, &doc, &err)) << err;
    ExperimentSpec spec;
    std::string diag;
    EXPECT_TRUE(experimentSpecFromJson(doc, &spec, &diag)) << diag;
    return spec;
}

std::string
parseSpecDiag(const std::string &text)
{
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(text, &doc, &err)) << err;
    ExperimentSpec spec;
    std::string diag;
    EXPECT_FALSE(experimentSpecFromJson(doc, &spec, &diag));
    EXPECT_FALSE(diag.empty());
    return diag;
}

TEST(ExperimentSpec, DefaultsNormalizeToFullCatalogues)
{
    ExperimentSpec spec;
    normalizeExperimentSpec(&spec);
    EXPECT_EQ(spec.matrix.workloads.size(),
              parsecProfiles().size());
    EXPECT_EQ(spec.matrix.options.size(),
              standardLlcOptions().size());
    EXPECT_EQ(spec.campaign.scenarios.size(),
              standardScenarios().size());
    EXPECT_EQ(spec.campaign.workloads,
              (std::vector<std::string>{"swaptions", "canneal",
                                        "ferret"}));
    // Normalization is idempotent.
    ExperimentSpec again = spec;
    normalizeExperimentSpec(&again);
    EXPECT_EQ(again, spec);
}

TEST(ExperimentSpec, EmitParseIsIdentityOnDefaults)
{
    ExperimentSpec spec;
    normalizeExperimentSpec(&spec);
    JsonValue doc = experimentSpecToJson(spec);
    ExperimentSpec back;
    std::string diag;
    ASSERT_TRUE(experimentSpecFromJson(doc, &back, &diag)) << diag;
    EXPECT_EQ(back, spec);
    // And again through text, with the cell list identical too.
    JsonValue doc2;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(doc.dump(), &doc2, &err)) << err;
    ExperimentSpec back2;
    ASSERT_TRUE(experimentSpecFromJson(doc2, &back2, &diag))
        << diag;
    EXPECT_EQ(back2, spec);
    EXPECT_EQ(expandCells(back2), expandCells(spec));
}

TEST(ExperimentSpec, RoundTripsEverySection)
{
    ExperimentSpec spec;
    spec.name = "round-trip";
    spec.matrix.requests = 1234;
    spec.matrix.warmup = 77;
    spec.matrix.divisor = 8;
    spec.matrix.seed = 99;
    spec.matrix.workloads = {"canneal", "ferret"};
    spec.matrix.options = {
        {"RM adaptive", MemTech::Racetrack,
         Scheme::PeccSAdaptive},
        {"SRAM", MemTech::SRAM, Scheme::Baseline},
    };
    spec.campaign.enabled = true;
    spec.campaign.config.accesses_per_cell = 512;
    spec.campaign.config.seed = 0xabcd;
    spec.campaign.config.scale = 1500.0;
    spec.campaign.config.pecc = {4, 8, 1, PeccVariant::Standard};
    spec.campaign.config.recovery.retry_budget = 3;
    spec.campaign.config.recovery.allow_scrub = false;
    spec.campaign.config.bank_due_prob = 0.05;
    spec.campaign.config.group_retry_budget = 1;
    spec.campaign.config.telemetry_ring_capacity = 4096;
    ScenarioSpec burst;
    burst.kind = ScenarioKind::Burst;
    burst.name = "hot-burst";
    burst.burst_period = 32;
    burst.burst_len = 4;
    burst.burst_multiplier = 80.0;
    spec.campaign.scenarios = {burst};
    spec.campaign.workloads = {"ferret"};
    spec.stress.enabled = true;
    spec.stress.scheme = "pecc-o";
    spec.stress.scale = 750.0;
    spec.stress.ops = 5000;
    spec.stress.lseg = 6;
    spec.stress.seed = 3;
    spec.metrics_path = "m.json";
    spec.trace_path = "t.json";
    spec.output_path = "o.json";
    normalizeExperimentSpec(&spec);

    JsonValue doc = experimentSpecToJson(spec);
    ExperimentSpec back;
    std::string diag;
    ASSERT_TRUE(experimentSpecFromJson(doc, &back, &diag)) << diag;
    EXPECT_EQ(back, spec);
    EXPECT_EQ(expandCells(back), expandCells(spec));
    // Emit of the parsed spec is byte-stable (deterministic order).
    EXPECT_EQ(experimentSpecToJson(back).dump(), doc.dump());
}

TEST(ExperimentSpec, ExpandsCellsInScheduleOrder)
{
    ExperimentSpec spec;
    spec.matrix.workloads = {"canneal", "ferret"};
    spec.matrix.options = {
        {"SRAM", MemTech::SRAM, Scheme::Baseline},
        {"RM", MemTech::Racetrack, Scheme::PeccSAdaptive},
    };
    spec.campaign.enabled = true;
    spec.campaign.workloads = {"swaptions"};
    spec.stress.enabled = true;
    normalizeExperimentSpec(&spec);

    auto cells = expandCells(spec);
    const size_t n_campaign = spec.campaign.scenarios.size();
    ASSERT_EQ(cells.size(), 4u + n_campaign + 1u);

    // Matrix first, workload-major (runMatrix order).
    EXPECT_EQ(cells[0].kind, ExperimentCell::Kind::Matrix);
    EXPECT_EQ(cells[0].workload, "canneal");
    EXPECT_EQ(cells[0].option.label, "SRAM");
    EXPECT_EQ(cells[1].workload, "canneal");
    EXPECT_EQ(cells[1].option.label, "RM");
    EXPECT_EQ(cells[2].workload, "ferret");
    EXPECT_EQ(cells[3].local_index, 3u);

    // Campaign next, scenario-major (runCampaign order).
    for (size_t i = 0; i < n_campaign; ++i) {
        const ExperimentCell &c = cells[4 + i];
        EXPECT_EQ(c.kind, ExperimentCell::Kind::Campaign);
        EXPECT_EQ(c.local_index, i);
        EXPECT_EQ(c.workload, "swaptions");
        EXPECT_EQ(c.scenario.name,
                  spec.campaign.scenarios[i].name);
        EXPECT_FALSE(c.label().empty());
    }

    // Stress last.
    EXPECT_EQ(cells.back().kind, ExperimentCell::Kind::Stress);

    // Disabled sections expand to nothing.
    spec.matrix.enabled = false;
    spec.campaign.enabled = false;
    spec.stress.enabled = false;
    EXPECT_TRUE(expandCells(spec).empty());
}

TEST(ExperimentSpec, ParsesShortcutsAndPartialDocuments)
{
    // A minimal document inherits every default.
    ExperimentSpec minimal = parseSpecOk("{}");
    ExperimentSpec def;
    normalizeExperimentSpec(&def);
    EXPECT_EQ(minimal, def);

    // Option/scenario shortcuts splice the catalogues.
    ExperimentSpec spec = parseSpecOk(
        "{\"matrix\": {\"requests\": 4000,"
        "  \"workloads\": [\"canneal\"],"
        "  \"options\": [\"racetrack\"]},"
        " \"campaign\": {\"enabled\": true,"
        "  \"scenarios\": [\"standard\"]}}");
    EXPECT_EQ(spec.matrix.requests, 4000u);
    // Absent warmup follows the rtmsim requests/10 convention.
    EXPECT_EQ(spec.matrix.warmup, 400u);
    EXPECT_EQ(spec.matrix.options.size(),
              racetrackSchemeOptions().size());
    EXPECT_EQ(spec.campaign.scenarios.size(),
              standardScenarios().size());

    ExperimentSpec std_opt = parseSpecOk(
        "{\"matrix\": {\"options\": [\"standard\"]}}");
    EXPECT_EQ(std_opt.matrix.options.size(),
              standardLlcOptions().size());
}

TEST(ExperimentSpec, MalformedSpecsProduceActionableDiagnostics)
{
    // Wrong type, with the dotted path and both type names.
    std::string diag = parseSpecDiag(
        "{\"matrix\": {\"requests\": \"lots\"}}");
    EXPECT_NE(diag.find("matrix.requests"), std::string::npos)
        << diag;
    EXPECT_NE(diag.find("number"), std::string::npos) << diag;
    EXPECT_NE(diag.find("string"), std::string::npos) << diag;

    // Typo'd key is caught, not silently ignored.
    diag = parseSpecDiag("{\"matrix\": {\"reqests\": 5}}");
    EXPECT_NE(diag.find("reqests"), std::string::npos) << diag;

    // Unknown workload / tech / scheme / scenario / stress tokens.
    diag = parseSpecDiag(
        "{\"matrix\": {\"workloads\": [\"notaworkload\"]}}");
    EXPECT_NE(diag.find("notaworkload"), std::string::npos) << diag;
    diag = parseSpecDiag(
        "{\"matrix\": {\"options\": [{\"tech\": \"flash\"}]}}");
    EXPECT_NE(diag.find("flash"), std::string::npos) << diag;
    diag = parseSpecDiag(
        "{\"campaign\": {\"scenarios\": [{\"kind\": \"comet\"}]}}");
    EXPECT_NE(diag.find("comet"), std::string::npos) << diag;
    diag = parseSpecDiag("{\"stress\": {\"scheme\": \"raid5\"}}");
    EXPECT_NE(diag.find("raid5"), std::string::npos) << diag;

    // Semantic validation: zero requests / divisor rejected.
    diag = parseSpecDiag("{\"matrix\": {\"requests\": 0}}");
    EXPECT_NE(diag.find("matrix.requests"), std::string::npos)
        << diag;

    // Multiple problems all reported in one pass.
    diag = parseSpecDiag(
        "{\"matrix\": {\"requests\": \"x\", \"divisor\": \"y\"}}");
    EXPECT_NE(diag.find("matrix.requests"), std::string::npos)
        << diag;
    EXPECT_NE(diag.find("matrix.divisor"), std::string::npos)
        << diag;

    // Non-object root.
    JsonValue doc("just a string");
    ExperimentSpec spec;
    std::string d2;
    EXPECT_FALSE(experimentSpecFromJson(doc, &spec, &d2));
    EXPECT_FALSE(d2.empty());
}

TEST(ExperimentSpec, LoadPrefixesDiagnosticsWithPath)
{
    const std::string path = "experiment_test_bad.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"matrix\": {\"requests\": \"lots\"}}", f);
    std::fclose(f);

    ExperimentSpec spec;
    std::string diag;
    EXPECT_FALSE(loadExperimentSpec(path, &spec, &diag));
    EXPECT_NE(diag.find(path), std::string::npos) << diag;
    std::remove(path.c_str());

    EXPECT_FALSE(
        loadExperimentSpec("no_such_spec.json", &spec, &diag));
    EXPECT_NE(diag.find("no_such_spec.json"), std::string::npos)
        << diag;
}

TEST(ExperimentEngine, RunsEveryJobOnceAndMergesShardsInOrder)
{
    ExperimentEngine engine;
    constexpr size_t kJobs = 17;
    std::atomic<int> ran{0};
    for (size_t i = 0; i < kJobs; ++i) {
        engine.addJob([&ran, i](TelemetryScope scope) {
            ran.fetch_add(1);
            ASSERT_TRUE(scope);
            scope->counter("engine_test.jobs").add(1);
            scope->gauge("engine_test.last_lane")
                .set(static_cast<double>(i));
        });
    }
    EXPECT_EQ(engine.jobCount(), kJobs);

    Telemetry telemetry(1 << 10);
    engine.run(&telemetry);
    EXPECT_EQ(ran.load(), static_cast<int>(kJobs));
    EXPECT_EQ(telemetry.counters().at("engine_test.jobs").value(),
              kJobs);
    // Shards merge in job order: the last lane's gauge write wins.
    EXPECT_EQ(
        telemetry.gauges().at("engine_test.last_lane").value(),
        static_cast<double>(kJobs - 1));
    // One-shot: the queue was consumed.
    EXPECT_EQ(engine.jobCount(), 0u);
}

TEST(ExperimentRun, StressSectionMatchesStandaloneDrill)
{
    StressSpec stress;
    stress.scheme = "secded";
    stress.scale = 600.0;
    stress.ops = 4000;
    stress.seed = 11;
    StressResult alone = runStressDrill(stress);

    ExperimentSpec spec;
    spec.matrix.enabled = false;
    spec.stress = stress;
    spec.stress.enabled = true;
    normalizeExperimentSpec(&spec);
    ExperimentResult res = runExperiment(spec);
    EXPECT_FALSE(res.has_matrix);
    EXPECT_FALSE(res.has_campaign);
    ASSERT_TRUE(res.has_stress);
    EXPECT_EQ(res.cells, 1u);
    EXPECT_EQ(res.stress.corrected, alone.corrected);
    EXPECT_EQ(res.stress.due, alone.due);
    EXPECT_EQ(res.stress.silent, alone.silent);
    EXPECT_EQ(res.stress.clean, alone.clean);
    EXPECT_EQ(res.stress.exp_corrected, alone.exp_corrected);
    EXPECT_EQ(res.stress.exp_due, alone.exp_due);
    EXPECT_EQ(res.stress.exp_sdc, alone.exp_sdc);
    EXPECT_EQ(res.stress.distances.mean(),
              alone.distances.mean());
}

TEST(ExperimentRun, ResultJsonParsesAndCoversEverySection)
{
    ExperimentSpec spec;
    spec.name = "export-test";
    spec.matrix.requests = 2000;
    spec.matrix.warmup = 200;
    spec.matrix.divisor = 32;
    spec.matrix.workloads = {"canneal"};
    spec.matrix.options = {
        {"SRAM", MemTech::SRAM, Scheme::Baseline},
        {"RM", MemTech::Racetrack, Scheme::PeccSAdaptive},
    };
    spec.stress.enabled = true;
    spec.stress.ops = 2000;
    normalizeExperimentSpec(&spec);

    ExperimentResult res = runExperiment(spec);
    EXPECT_EQ(res.cells, 3u); // 1 workload x 2 options + stress

    JsonValue doc = experimentResultToJson(res);
    // The document round-trips through text.
    JsonValue back;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(doc.dump(), &back, &err)) << err;
    EXPECT_EQ(back.find("name")->asString(), "export-test");
    EXPECT_EQ(back.find("cells")->asU64(), 3u);

    // Embedded spec parses back to the spec that ran.
    ExperimentSpec spec_back;
    std::string diag;
    ASSERT_TRUE(experimentSpecFromJson(*back.find("spec"),
                                       &spec_back, &diag))
        << diag;
    EXPECT_EQ(spec_back, res.spec);

    const JsonValue *matrix = back.find("matrix");
    ASSERT_NE(matrix, nullptr);
    ASSERT_NE(matrix->find("results"), nullptr);
    ASSERT_EQ(matrix->find("results")->size(), 2u);
    const JsonValue &cell = matrix->find("results")->at(0);
    EXPECT_EQ(cell.find("workload")->asString(), "canneal");
    EXPECT_EQ(cell.find("option")->asString(), "SRAM");
    EXPECT_GT(cell.find("cycles")->asU64(), 0u);
    // Non-racetrack MTTFs are infinite -> exported as JSON null.
    EXPECT_TRUE(cell.find("sdc_mttf")->isNull());
    const JsonValue &rm = matrix->find("results")->at(1);
    EXPECT_TRUE(rm.find("sdc_mttf")->isNumber());

    const JsonValue *stress = back.find("stress");
    ASSERT_NE(stress, nullptr);
    EXPECT_EQ(stress->find("scheme")->asString(), "secded");
    EXPECT_TRUE(stress->find("clean")->isNumber());
    EXPECT_TRUE(stress->find("expected_due")->isNumber());

    // writeExperimentJson emits the same document to disk.
    const std::string path = "experiment_test_result.json";
    ASSERT_TRUE(writeExperimentJson(res, path));
    JsonValue from_disk;
    ASSERT_TRUE(loadJsonFile(path, &from_disk, &err)) << err;
    EXPECT_EQ(from_disk, doc);
    std::remove(path.c_str());
}

TEST(ExperimentSpec, MonteCarloSectionRoundTripsAndExpands)
{
    ExperimentSpec spec = parseSpecOk(
        "{\"matrix\": {\"enabled\": false},"
        " \"montecarlo\": {\"enabled\": true, \"distance\": 4,"
        "  \"trials\": 5000, \"fit_trials\": 2000,"
        "  \"seed\": 9, \"tier\": \"fast\"}}");
    EXPECT_TRUE(spec.montecarlo.enabled);
    EXPECT_EQ(spec.montecarlo.distance, 4);
    EXPECT_EQ(spec.montecarlo.trials, 5000u);
    EXPECT_EQ(spec.montecarlo.fit_trials, 2000u);
    EXPECT_EQ(spec.montecarlo.seed, 9u);
    EXPECT_EQ(spec.montecarlo.tier, "fast");

    JsonValue doc = experimentSpecToJson(spec);
    ExperimentSpec back;
    std::string diag;
    ASSERT_TRUE(experimentSpecFromJson(doc, &back, &diag)) << diag;
    EXPECT_EQ(back, spec);

    // The section expands to exactly one cell, scheduled last.
    auto cells = expandCells(spec);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].kind, ExperimentCell::Kind::MonteCarlo);
    EXPECT_EQ(cells[0].label(), "montecarlo");
}

TEST(ExperimentSpec, MonteCarloSectionRejectsBadFields)
{
    std::string diag = parseSpecDiag(
        "{\"montecarlo\": {\"tier\": \"turbo\"}}");
    EXPECT_NE(diag.find("turbo"), std::string::npos) << diag;
    diag = parseSpecDiag("{\"montecarlo\": {\"distance\": 0}}");
    EXPECT_NE(diag.find("montecarlo.distance"), std::string::npos)
        << diag;
    diag = parseSpecDiag("{\"montecarlo\": {\"trils\": 5}}");
    EXPECT_NE(diag.find("trils"), std::string::npos) << diag;
}

TEST(ExperimentRun, MonteCarloSectionRunsAndExports)
{
    ExperimentSpec spec;
    spec.name = "mc-export";
    spec.matrix.enabled = false;
    spec.montecarlo.enabled = true;
    spec.montecarlo.distance = 7;
    spec.montecarlo.trials = 20000;
    spec.montecarlo.fit_trials = 10000;
    spec.montecarlo.seed = 5;
    spec.montecarlo.tier = "exact";
    normalizeExperimentSpec(&spec);

    ExperimentResult res = runExperiment(spec);
    EXPECT_EQ(res.cells, 1u);
    ASSERT_TRUE(res.has_mc);
    EXPECT_EQ(res.mc.distance, 7);
    EXPECT_EQ(res.mc.trials, 20000u);
    EXPECT_EQ(res.mc.tier, "exact");
    EXPECT_GT(res.mc.deviation_stddev, 0.0);
    EXPECT_GT(res.mc.step_prob_ok, 0.5);
    ASSERT_TRUE(res.mc.has_fit);
    EXPECT_GT(res.mc.fit.sigma_step, 0.0);

    // The engine cell matches a standalone exact-tier run.
    PositionErrorMonteCarlo alone(DeviceParams{}, 5,
                                  McTier::Exact);
    ErrorPdf pdf = alone.run(7, 20000);
    EXPECT_EQ(res.mc.deviation_mean, pdf.deviation.mean());
    EXPECT_EQ(res.mc.step_prob_ok, pdf.stepProbability(0));

    JsonValue doc = experimentResultToJson(res);
    const JsonValue *mc = doc.find("montecarlo");
    ASSERT_NE(mc, nullptr);
    EXPECT_EQ(mc->find("tier")->asString(), "exact");
    EXPECT_TRUE(mc->find("deviation_stddev")->isNumber());
    ASSERT_NE(mc->find("fit"), nullptr);
    EXPECT_TRUE(mc->find("fit")->find("sigma_step")->isNumber());
}

} // namespace
} // namespace rtm
