/**
 * @file
 * Unit tests for the position-error-aware shift controller: access
 * semantics, latency accounting, stats, and fault handling.
 */

#include <gtest/gtest.h>

#include <memory>

#include "control/controller.hh"

namespace rtm
{
namespace
{

PeccConfig
secdedConfig(PeccVariant variant = PeccVariant::Standard)
{
    PeccConfig c;
    c.num_segments = 2;
    c.seg_len = 8;
    c.correct = 1;
    c.variant = variant;
    return c;
}

TEST(Controller, ReadBackAfterWrite)
{
    ZeroErrorModel model;
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Adaptive, 83e6, Rng(1));
    ctl.initialize();
    Cycles t = 0;
    ctl.write(0, 3, Bit::One, t);
    t += 100;
    ctl.write(1, 5, Bit::One, t);
    t += 100;
    AccessResult r = ctl.read(0, 3, t);
    EXPECT_EQ(r.value, Bit::One);
    t += 100;
    EXPECT_EQ(ctl.read(1, 5, t).value, Bit::One);
    t += 100;
    EXPECT_EQ(ctl.read(0, 0, t).value, Bit::Zero);
}

TEST(Controller, NoShiftWhenAlreadyAligned)
{
    ZeroErrorModel model;
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Adaptive, 83e6, Rng(2));
    ctl.initialize();
    ctl.read(0, 4, 0);
    uint64_t ops = ctl.stats().shift_ops;
    AccessResult r = ctl.read(1, 4, 100);
    EXPECT_EQ(ctl.stats().shift_ops, ops);
    EXPECT_EQ(r.latency, 0u);
}

TEST(Controller, LatencyMatchesPlannedSequence)
{
    ZeroErrorModel model;
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Adaptive, 83e6, Rng(3));
    ctl.initialize();
    // First access: index 7 -> 0 steps (home). Index 0 -> 7 steps;
    // no history means the one-shot {7} plan: 9 cycles with check.
    AccessResult r = ctl.read(0, 0, 0);
    EXPECT_EQ(r.latency, 9u);
}

TEST(Controller, AdaptiveSlowsUnderPressure)
{
    // Needs real error rates: with a zero-error model every distance
    // is safe and the adapter never decomposes anything.
    PaperCalibratedErrorModel model;
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Adaptive, 83e6, Rng(4));
    ctl.initialize();
    ctl.read(0, 0, 0);  // to offset 7
    // Immediately back (interval ~ latency): must decompose.
    AccessResult r = ctl.read(0, 7, 10);
    EXPECT_GT(r.latency, 9u);
    EXPECT_GT(ctl.stats().shift_ops, 2u);
}

TEST(Controller, StatsAccumulate)
{
    ZeroErrorModel model;
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Adaptive, 83e6, Rng(5));
    ctl.initialize();
    Cycles t = 0;
    for (int i = 0; i < 8; ++i) {
        ctl.read(0, i % 8, t);
        t += 1000000; // relaxed intensity
    }
    const ControllerStats &s = ctl.stats();
    EXPECT_GT(s.accesses, 0u);
    EXPECT_GT(s.shift_ops, 0u);
    EXPECT_GT(s.shift_steps, 0u);
    EXPECT_GT(s.busy_cycles, 0u);
    EXPECT_EQ(s.unrecoverable, 0u);
    EXPECT_EQ(s.silent_errors, 0u);
    EXPECT_GT(s.distance_histogram.total(), 0u);
}

TEST(Controller, DetectsAndCorrectsInjectedError)
{
    auto model = std::make_unique<ScriptedErrorModel>(
        std::vector<ShiftOutcome>{{+1, false}});
    ShiftController ctl(secdedConfig(), model.get(),
                        ShiftPolicy::Adaptive, 83e6, Rng(6));
    ctl.initialize();
    AccessResult r = ctl.read(0, 0, 0);
    EXPECT_FALSE(r.due);
    EXPECT_TRUE(r.position_ok);
    EXPECT_EQ(ctl.stats().detected_errors, 1u);
    EXPECT_EQ(ctl.stats().corrected_errors, 1u);
    // Correction latency was charged on top of the plan.
    EXPECT_GT(r.latency, 9u);
}

TEST(Controller, ReportsDueOnUncorrectableError)
{
    auto model = std::make_unique<ScriptedErrorModel>(
        std::vector<ShiftOutcome>{{+2, false}});
    ShiftController ctl(secdedConfig(), model.get(),
                        ShiftPolicy::Adaptive, 83e6, Rng(7));
    ctl.initialize();
    AccessResult r = ctl.read(0, 0, 0);
    EXPECT_TRUE(r.due);
    EXPECT_EQ(ctl.stats().unrecoverable, 1u);
}

TEST(Controller, BaselineCountsSilentErrors)
{
    auto model = std::make_unique<ScriptedErrorModel>(
        std::vector<ShiftOutcome>{{+1, false}});
    PeccConfig c = secdedConfig(PeccVariant::None);
    ShiftController ctl(c, model.get(), ShiftPolicy::Unconstrained,
                        83e6, Rng(8));
    ctl.initialize();
    AccessResult r = ctl.read(0, 0, 0);
    EXPECT_FALSE(r.due);
    EXPECT_FALSE(r.position_ok);
    EXPECT_EQ(ctl.stats().silent_errors, 1u);
}

TEST(Controller, PeccOForcesStepByStep)
{
    ZeroErrorModel model;
    ShiftController ctl(secdedConfig(PeccVariant::OverheadRegion),
                        &model, ShiftPolicy::Adaptive, 83e6, Rng(9));
    ctl.initialize();
    ctl.read(0, 0, 0); // 7 steps away
    // Seven 1-step operations regardless of the requested policy.
    EXPECT_EQ(ctl.stats().shift_ops, 7u);
    EXPECT_EQ(ctl.stats().distance_histogram.count(1), 7u);
}

TEST(Controller, WorstCasePolicyCapsDistances)
{
    // Needs real error rates: the worst-case safe distance of 3 at
    // 83M ops/s comes from the Table 2 failure rates.
    PaperCalibratedErrorModel model;
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::WorstCase, 83e6, Rng(10));
    ctl.initialize();
    ctl.read(0, 0, 0); // 7 steps: {3,3,1} under safe distance 3
    EXPECT_EQ(ctl.stats().distance_histogram.count(3), 2u);
    EXPECT_EQ(ctl.stats().distance_histogram.count(1), 1u);
}

TEST(Controller, FaultInjectionSoakStaysConsistent)
{
    auto base = std::make_shared<PaperCalibratedErrorModel>();
    ScaledErrorModel model(base, 300.0);
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Adaptive, 83e6, Rng(11));
    ctl.initialize();
    Rng dice(99);
    Cycles t = 0;
    for (int i = 0; i < 2000; ++i) {
        int idx = static_cast<int>(dice.uniformInt(8));
        int seg = static_cast<int>(dice.uniformInt(2));
        AccessResult r = ctl.read(seg, idx, t);
        t += 50 + dice.uniformInt(1000);
        if (!r.due)
            EXPECT_TRUE(r.position_ok) << "op " << i;
    }
    EXPECT_GT(ctl.stats().detected_errors, 0u);
    EXPECT_EQ(ctl.stats().silent_errors, 0u);
}

} // namespace
} // namespace rtm
