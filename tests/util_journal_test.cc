/**
 * @file
 * Unit tests for the CRC-framed checkpoint journal: line framing,
 * corruption/truncation salvage, header round-trip, append mode,
 * and the atomic whole-file writer it builds on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/hash.hh"
#include "util/journal.hh"
#include "util/serde.hh"

namespace rtm
{
namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

std::string
slurp(const std::string &path)
{
    std::string text, error;
    EXPECT_TRUE(readTextFile(path, &text, &error)) << error;
    return text;
}

JournalHeader
sampleHeader()
{
    JournalHeader h;
    h.name = "unit";
    h.spec_sha256 = "feedface";
    h.matrix_seed = 42;
    h.campaign_seed = 7;
    h.stress_seed = 1;
    h.mc_seed = 12345;
    h.cells = 3;
    return h;
}

JournalRecord
sampleRecord(uint64_t index)
{
    JournalRecord r;
    r.index = index;
    r.label = "cell-" + std::to_string(index);
    JsonValue doc = JsonValue::object();
    doc.set("value", index);
    r.result = std::move(doc);
    return r;
}

TEST(JournalWriter, WritesCrcFramedLines)
{
    const std::string path = tempPath("journal_frame.jsonl");
    {
        JournalWriter w;
        std::string error;
        ASSERT_TRUE(w.open(path, false, &error)) << error;
        EXPECT_TRUE(w.appendHeader(sampleHeader()));
        EXPECT_TRUE(w.appendRecord(sampleRecord(0)));
        EXPECT_TRUE(w.close());
    }
    std::string text = slurp(path);
    size_t lines = 0;
    size_t pos = 0;
    while ((pos = text.find('\n', pos)) != std::string::npos) {
        ++lines;
        ++pos;
    }
    EXPECT_EQ(lines, 2u);

    // Every line: 8 hex CRC chars, one space, compact JSON payload,
    // and the CRC actually covers the payload.
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        ASSERT_NE(end, std::string::npos);
        std::string line = text.substr(start, end - start);
        ASSERT_GE(line.size(), 10u);
        EXPECT_EQ(line[8], ' ');
        const std::string payload = line.substr(9);
        char want[9];
        std::snprintf(want, sizeof(want), "%08x",
                      crc32(payload.data(), payload.size()));
        EXPECT_EQ(line.substr(0, 8), want);
        start = end + 1;
    }
    std::remove(path.c_str());
}

TEST(JournalHeaderJson, RoundTrips)
{
    JournalHeader h = sampleHeader();
    JournalHeader back;
    ASSERT_TRUE(journalHeaderFromJson(journalHeaderToJson(h),
                                      &back));
    EXPECT_EQ(back.version, h.version);
    EXPECT_EQ(back.name, h.name);
    EXPECT_EQ(back.spec_sha256, h.spec_sha256);
    EXPECT_EQ(back.matrix_seed, h.matrix_seed);
    EXPECT_EQ(back.campaign_seed, h.campaign_seed);
    EXPECT_EQ(back.stress_seed, h.stress_seed);
    EXPECT_EQ(back.mc_seed, h.mc_seed);
    EXPECT_EQ(back.cells, h.cells);
}

TEST(JournalRead, RoundTripsWriterOutput)
{
    const std::string path = tempPath("journal_rt.jsonl");
    {
        JournalWriter w;
        ASSERT_TRUE(w.open(path, false));
        ASSERT_TRUE(w.appendHeader(sampleHeader()));
        ASSERT_TRUE(w.appendRecord(sampleRecord(0)));
        ASSERT_TRUE(w.appendRecord(sampleRecord(2)));
        ASSERT_TRUE(w.close());
    }
    JournalFile journal;
    std::string error;
    ASSERT_TRUE(readJournal(path, &journal, &error)) << error;
    EXPECT_TRUE(journal.has_header);
    EXPECT_EQ(journal.header.spec_sha256, "feedface");
    EXPECT_EQ(journal.dropped_lines, 0u);
    ASSERT_EQ(journal.records.size(), 2u);
    EXPECT_EQ(journal.records[0].index, 0u);
    EXPECT_EQ(journal.records[1].index, 2u);
    EXPECT_EQ(journal.records[1].label, "cell-2");
    const JsonValue *v = journal.records[1].result.find("value");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->asU64(), 2u);
    std::remove(path.c_str());
}

TEST(JournalRead, BadCrcDropsOnlyThatLine)
{
    const std::string path = tempPath("journal_crc.jsonl");
    {
        JournalWriter w;
        ASSERT_TRUE(w.open(path, false));
        ASSERT_TRUE(w.appendHeader(sampleHeader()));
        ASSERT_TRUE(w.appendRecord(sampleRecord(0)));
        ASSERT_TRUE(w.appendRecord(sampleRecord(1)));
        ASSERT_TRUE(w.close());
    }
    // Flip one payload byte of the middle line (record 0) without
    // touching its CRC prefix.
    std::string text = slurp(path);
    size_t first_nl = text.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    size_t corrupt_at = first_nl + 1 + 20;
    ASSERT_LT(corrupt_at, text.size());
    text[corrupt_at] = text[corrupt_at] == 'x' ? 'y' : 'x';
    ASSERT_TRUE(saveTextFileAtomic(path, text));

    JournalFile journal;
    std::string error;
    ASSERT_TRUE(readJournal(path, &journal, &error)) << error;
    EXPECT_TRUE(journal.has_header);
    EXPECT_EQ(journal.dropped_lines, 1u);
    ASSERT_EQ(journal.records.size(), 1u);
    EXPECT_EQ(journal.records[0].index, 1u);
    std::remove(path.c_str());
}

TEST(JournalRead, TornTailDropsOnlyTail)
{
    const std::string path = tempPath("journal_torn.jsonl");
    {
        JournalWriter w;
        ASSERT_TRUE(w.open(path, false));
        ASSERT_TRUE(w.appendHeader(sampleHeader()));
        ASSERT_TRUE(w.appendRecord(sampleRecord(0)));
        ASSERT_TRUE(w.appendRecord(sampleRecord(1)));
        ASSERT_TRUE(w.close());
    }
    // Simulate a crash mid-write: chop the file in the middle of
    // the last record's line.
    std::string text = slurp(path);
    ASSERT_TRUE(
        saveTextFileAtomic(path, text.substr(0, text.size() - 7)));

    JournalFile journal;
    std::string error;
    ASSERT_TRUE(readJournal(path, &journal, &error)) << error;
    EXPECT_TRUE(journal.has_header);
    EXPECT_EQ(journal.dropped_lines, 1u);
    ASSERT_EQ(journal.records.size(), 1u);
    EXPECT_EQ(journal.records[0].index, 0u);
    std::remove(path.c_str());
}

TEST(JournalRead, MissingFileIsAnError)
{
    JournalFile journal;
    std::string error;
    EXPECT_FALSE(readJournal(tempPath("journal_nope.jsonl"),
                             &journal, &error));
    EXPECT_FALSE(error.empty());
}

TEST(JournalWriter, AppendModeExtendsExistingJournal)
{
    const std::string path = tempPath("journal_append.jsonl");
    {
        JournalWriter w;
        ASSERT_TRUE(w.open(path, false));
        ASSERT_TRUE(w.appendHeader(sampleHeader()));
        ASSERT_TRUE(w.appendRecord(sampleRecord(0)));
        ASSERT_TRUE(w.close());
    }
    {
        JournalWriter w;
        ASSERT_TRUE(w.open(path, true));
        ASSERT_TRUE(w.appendRecord(sampleRecord(1)));
        ASSERT_TRUE(w.close());
    }
    JournalFile journal;
    std::string error;
    ASSERT_TRUE(readJournal(path, &journal, &error)) << error;
    EXPECT_TRUE(journal.has_header);
    ASSERT_EQ(journal.records.size(), 2u);
    EXPECT_EQ(journal.records[0].index, 0u);
    EXPECT_EQ(journal.records[1].index, 1u);
    std::remove(path.c_str());
}

TEST(AtomicSave, LeavesNoTmpAndWritesExactBytes)
{
    const std::string path = tempPath("atomic.txt");
    ASSERT_TRUE(saveTextFileAtomic(path, "hello\n"));
    EXPECT_EQ(slurp(path), "hello\n");
    // Overwrite: readers must only ever see old or new content.
    ASSERT_TRUE(saveTextFileAtomic(path, "world\n"));
    EXPECT_EQ(slurp(path), "world\n");
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(AtomicSave, FailsWithDiagnosticOnBadPath)
{
    std::string error;
    EXPECT_FALSE(saveTextFileAtomic(
        tempPath("no_such_dir/atomic.txt"), "x", &error));
    EXPECT_FALSE(error.empty());
}

} // anonymous namespace
} // namespace rtm
