/**
 * @file
 * Unit tests for the set-associative LRU cache.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace rtm
{
namespace
{

TEST(Cache, ColdMissThenHit)
{
    Cache c(1 << 12, 2); // 4 KB, 2-way, 64 B lines
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1020, false).hit); // same line
    EXPECT_EQ(c.stats().read_misses, 1u);
    EXPECT_EQ(c.stats().reads, 3u);
}

TEST(Cache, GeometryDerivedFromCapacity)
{
    Cache c(1 << 20, 16, 64);
    EXPECT_EQ(c.sets(), (1u << 20) / 64 / 16);
    EXPECT_EQ(c.ways(), 16);
    EXPECT_EQ(c.lineBytes(), 64);
}

TEST(Cache, LruEviction)
{
    // Direct-ish: 2-way cache; fill one set with 3 conflicting lines.
    Cache c(1 << 12, 2);
    uint64_t set_stride = c.sets() * 64;
    Addr a = 0x40, b = a + set_stride, d = a + 2 * set_stride;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false); // a is now MRU
    c.access(d, false); // evicts b (LRU)
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(1 << 12, 2);
    uint64_t set_stride = c.sets() * 64;
    Addr a = 0x80;
    c.access(a, true); // dirty
    c.access(a + set_stride, false);
    CacheAccessResult r = c.access(a + 2 * set_stride, false);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_addr, a & ~63ull);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionIsSilent)
{
    Cache c(1 << 12, 2);
    uint64_t set_stride = c.sets() * 64;
    Addr a = 0xC0;
    c.access(a, false);
    c.access(a + set_stride, false);
    CacheAccessResult r = c.access(a + 2 * set_stride, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(1 << 12, 2);
    uint64_t set_stride = c.sets() * 64;
    Addr a = 0x100;
    c.access(a, false); // clean fill
    c.access(a, true);  // dirty via hit
    c.access(a + set_stride, false);
    CacheAccessResult r = c.access(a + 2 * set_stride, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, FrameIndexIsStableForALine)
{
    Cache c(1 << 12, 2);
    CacheAccessResult miss = c.access(0x555000, false);
    CacheAccessResult hit = c.access(0x555000, false);
    EXPECT_EQ(miss.frame_index, hit.frame_index);
    EXPECT_LT(hit.frame_index,
              c.sets() * static_cast<uint64_t>(c.ways()));
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes)
{
    Cache c(1 << 12, 2); // 64 lines
    for (int rep = 0; rep < 3; ++rep)
        for (Addr a = 0; a < (1 << 13); a += 64)
            c.access(a, false);
    // 8 KB over 4 KB: second and third sweeps keep missing.
    EXPECT_GT(c.stats().missRate(), 0.9);
}

TEST(Cache, WorkingSetWithinCapacityHitsAfterWarmup)
{
    Cache c(1 << 12, 2);
    for (int rep = 0; rep < 4; ++rep)
        for (Addr a = 0; a < (1 << 11); a += 64)
            c.access(a, false);
    // 2 KB in 4 KB: only compulsory misses.
    EXPECT_EQ(c.stats().misses(), 32u);
}

TEST(Cache, FlushForgetsEverything)
{
    Cache c(1 << 12, 2);
    c.access(0x40, false);
    EXPECT_TRUE(c.contains(0x40));
    c.flush();
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, OneWayCacheIsDirectMapped)
{
    Cache c(1 << 12, 1); // 64 sets, 1 way
    EXPECT_EQ(c.ways(), 1);
    uint64_t set_stride = c.sets() * 64;
    Addr a = 0x40;
    c.access(a, false);
    EXPECT_TRUE(c.contains(a));
    // Any conflicting line evicts immediately: no other way to hide
    // in.
    c.access(a + set_stride, false);
    EXPECT_FALSE(c.contains(a));
    EXPECT_TRUE(c.contains(a + set_stride));
    // Frame index of a direct-mapped line is its set number.
    CacheAccessResult r = c.access(a, false);
    EXPECT_EQ(r.frame_index, (a / 64) % c.sets());
}

TEST(Cache, SingleSetCacheIsFullyAssociative)
{
    // Capacity == ways * line: exactly one set, fully associative.
    Cache c(4 * 64, 4);
    EXPECT_EQ(c.sets(), 1u);
    // Any 4 lines coexist regardless of address bits.
    Addr lines[4] = {0x0, 0x1000, 0x7f40, 0x123440};
    for (Addr a : lines)
        c.access(a, false);
    for (Addr a : lines)
        EXPECT_TRUE(c.contains(a));
    // A 5th line evicts the LRU (lines[0]).
    c.access(0x555000, false);
    EXPECT_FALSE(c.contains(lines[0]));
    EXPECT_TRUE(c.contains(lines[3]));
}

TEST(Cache, InvalidWaysFillInOrder)
{
    // Misses into a set with invalid ways must fill way 0, 1, 2, ...
    // in order: the racetrack frame mapping depends on the fill
    // order (frame_index = set * ways + way).
    Cache c(1 << 12, 4);
    uint64_t set_stride = c.sets() * 64;
    for (uint64_t i = 0; i < 4; ++i) {
        CacheAccessResult r = c.access(0x40 + i * set_stride, false);
        EXPECT_FALSE(r.hit);
        EXPECT_EQ(r.frame_index % 4, i) << "fill " << i;
    }
}

TEST(Cache, LruTieBreaksTowardLowestWay)
{
    // All ways filled at distinct ticks; the victim is always the
    // smallest stamp. After a flush, stamps survive in no way (all
    // invalid), so refills restart at way 0.
    Cache c(4 * 64, 4); // one set
    Addr a0 = 0, a1 = 0x1000, a2 = 0x2000, a3 = 0x3000;
    c.access(a0, false);
    c.access(a1, false);
    c.access(a2, false);
    c.access(a3, false);
    c.access(0x4000, false); // evicts a0 (oldest)
    EXPECT_FALSE(c.contains(a0));
    c.flush();
    CacheAccessResult r = c.access(0x5000, false);
    EXPECT_EQ(r.frame_index, 0u); // way 0 again after flush
}

TEST(CacheDeathTest, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache(1000, 3, 64), ::testing::ExitedWithCode(1),
                ".*");
    EXPECT_EXIT(Cache(1 << 12, 2, 60), ::testing::ExitedWithCode(1),
                "power of two");
}

} // namespace
} // namespace rtm
