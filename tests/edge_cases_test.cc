/**
 * @file
 * Edge-case coverage: boundary geometries, degenerate inputs, and
 * numerically extreme regimes across the stack.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "codec/protected_stripe.hh"
#include "control/controller.hh"
#include "device/fitted_model.hh"
#include "model/reliability.hh"
#include "util/prob.hh"

namespace rtm
{
namespace
{

TEST(EdgeLayout, MinimalTwoDomainSegment)
{
    // Lseg = 2 with SECDED: the smallest legal protected shape,
    // where p-ECC and p-ECC-O coincide in protection strength.
    for (PeccVariant v : {PeccVariant::Standard,
                          PeccVariant::OverheadRegion}) {
        PeccConfig c;
        c.num_segments = 16;
        c.seg_len = 2;
        c.correct = 1;
        c.variant = v;
        ZeroErrorModel model;
        ProtectedStripe ps(c, &model, Rng(1));
        ps.initializeIdeal();
        for (int r = 0; r < 2; ++r) {
            auto res = ps.seekIndex(r);
            EXPECT_FALSE(res.detected);
            EXPECT_EQ(ps.positionError(), 0);
        }
    }
}

TEST(EdgeLayout, SingleSegmentStripe)
{
    // One segment = one port covering the whole data region: the
    // paper's ">100% overhead" worst case for Standard p-ECC.
    PeccConfig c;
    c.num_segments = 1;
    c.seg_len = 16;
    c.correct = 1;
    c.variant = PeccVariant::Standard;
    PeccLayout lay = computeLayout(c);
    EXPECT_GT(lay.storageOverhead(), 1.0);
    ZeroErrorModel model;
    ProtectedStripe ps(c, &model, Rng(2));
    ps.initializeIdeal();
    ps.seekIndex(15);
    ps.seekIndex(0);
    EXPECT_EQ(ps.positionError(), 0);
}

TEST(EdgeLayout, HighStrengthCode)
{
    // m = 3: 4-bit de Bruijn windows, 16-phase code. Each scenario
    // gets its own stripe because correction shifts consume scripted
    // outcomes too.
    PeccConfig c;
    c.num_segments = 2;
    c.seg_len = 16;
    c.correct = 3;
    c.variant = PeccVariant::Standard;

    for (int e : {+3, -3}) {
        auto model = std::make_unique<ScriptedErrorModel>(
            std::vector<ShiftOutcome>{{e, false}});
        ProtectedStripe ps(c, model.get(), Rng(3));
        ps.initializeIdeal();
        auto r = ps.shiftBy(5);
        EXPECT_TRUE(r.corrected) << "e=" << e;
        EXPECT_EQ(r.inferred_error, e);
        EXPECT_EQ(ps.positionError(), 0);
    }
    {
        auto model = std::make_unique<ScriptedErrorModel>(
            std::vector<ShiftOutcome>{{+4, false}});
        ProtectedStripe ps(c, model.get(), Rng(3));
        ps.initializeIdeal();
        auto r = ps.shiftBy(5);
        EXPECT_TRUE(r.detected);
        EXPECT_TRUE(r.unrecoverable); // +/-4 is the m+1 alias
    }
}

TEST(EdgeControl, DistanceOnePlanning)
{
    PaperCalibratedErrorModel model;
    StsTiming timing(kDefaultClockHz, 0.4e-9, 1.0e-9, 0.34e-9);
    ShiftPlanner planner(&model, timing, 1, 1);
    const auto &front = planner.paretoFront(1);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].parts, std::vector<int>{1});
    EXPECT_EQ(planner.safeDistance(1e15), 1);
}

TEST(EdgeControl, ControllerSameIndexTwice)
{
    ZeroErrorModel model;
    PeccConfig c;
    c.num_segments = 2;
    c.seg_len = 8;
    c.correct = 1;
    c.variant = PeccVariant::Standard;
    ShiftController ctl(c, &model, ShiftPolicy::Adaptive, 83e6,
                        Rng(4));
    ctl.initialize();
    ctl.read(0, 3, 0);
    uint64_t ops = ctl.stats().shift_ops;
    for (int i = 0; i < 5; ++i)
        ctl.read(1, 3, 100 * (i + 1));
    EXPECT_EQ(ctl.stats().shift_ops, ops); // no movement needed
}

TEST(EdgeReliability, ZeroDistanceIsPerfect)
{
    PaperCalibratedErrorModel model;
    ReliabilityModel rel(&model, Scheme::SecdedPecc);
    ShiftReliability r = rel.shiftOp(0);
    EXPECT_EQ(r.log_sdc, -std::numeric_limits<double>::infinity());
    EXPECT_EQ(r.log_due, -std::numeric_limits<double>::infinity());
    ShiftReliability seq = rel.sequence({});
    EXPECT_EQ(seq.log_due,
              -std::numeric_limits<double>::infinity());
}

TEST(EdgeReliability, ExtremeDistancesStayProbabilities)
{
    PaperCalibratedErrorModel model;
    for (int d : {50, 100, 500}) {
        double p1 = model.stepErrorRate(d, 1);
        double p2 = model.stepErrorRate(d, 2);
        EXPECT_GT(p1, 0.0);
        EXPECT_LE(p1, 0.5);
        EXPECT_LE(p2, 0.5);
    }
}

TEST(EdgeFitted, TinySigmaKeepsLogTailsFinite)
{
    FittedModelParams p;
    p.sigma_step = 1e-4; // absurdly precise device
    FittedErrorModel m(p);
    double lp = m.logProbStep(1, 1);
    EXPECT_TRUE(std::isfinite(lp) ||
                lp == -std::numeric_limits<double>::infinity());
    // With sigma this small the +-1 band is hundreds of sigmas out:
    // far below any physical rate, but never NaN.
    EXPECT_FALSE(std::isnan(lp));
}

TEST(EdgeFitted, HugeSigmaSaturates)
{
    FittedModelParams p;
    p.sigma_step = 5.0; // hopeless device
    FittedErrorModel m(p);
    // The +-1 band alone absorbs a large share of shifts; note that
    // logProbSuccess only complements errors up to maxStepError(),
    // so with sigma this large it still over-reports "success"
    // (mass beyond +-3 is out of the enumerated range).
    double p1 = std::exp(m.logProbStep(1, 1)) +
                std::exp(m.logProbStep(1, -1));
    EXPECT_GT(p1, 0.05);
    double success = std::exp(m.logProbSuccess(1));
    EXPECT_LT(success, 0.75);
    EXPECT_GE(success, 0.0);
}

TEST(EdgeProb, LogAnyOfExtremes)
{
    // Tiny per-event probability, astronomical counts.
    double lp = std::log(1e-20);
    EXPECT_NEAR(std::exp(logAnyOf(lp, 1e10)), 1e-10, 1e-13);
    // Count of one is the identity.
    EXPECT_NEAR(logAnyOf(lp, 1.0), lp, 1e-6);
}

TEST(EdgeStripe, SingleSlotWire)
{
    ZeroErrorModel model;
    std::vector<Port> ports = {{0, PortKind::ReadWrite}};
    RacetrackStripe s(1, ports, &model, Rng(5));
    s.poke(0, Bit::One);
    EXPECT_EQ(s.read(0), Bit::One);
    s.shift(1); // the single domain falls off
    EXPECT_EQ(s.peek(0), Bit::X);
}

TEST(EdgeCyclic, LargeWindowDecode)
{
    CyclicCode code(8); // 256-phase code
    EXPECT_EQ(code.period(), 256);
    DecodeResult r = code.decode(10, 17, 7);
    EXPECT_TRUE(r.valid);
    EXPECT_TRUE(r.correctable);
    EXPECT_EQ(r.step_error, 7);
}

} // namespace
} // namespace rtm
