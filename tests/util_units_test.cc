/**
 * @file
 * Unit tests for unit conversions and duration formatting.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/units.hh"

namespace rtm
{
namespace
{

std::string
fmt(double seconds)
{
    char buf[64];
    return formatDuration(seconds, buf, sizeof(buf));
}

TEST(Units, SecondsToCyclesRoundsUp)
{
    // 2 GHz: one cycle is 0.5 ns.
    EXPECT_EQ(secondsToCycles(0.5e-9), 1u);
    EXPECT_EQ(secondsToCycles(0.4e-9), 1u);
    EXPECT_EQ(secondsToCycles(1.0e-9), 2u);
    EXPECT_EQ(secondsToCycles(1.1e-9), 3u);
    EXPECT_EQ(secondsToCycles(0.0), 0u);
    EXPECT_EQ(secondsToCycles(-1.0), 0u);
}

TEST(Units, StsLatencyAnchors)
{
    // Paper Sec. 4.1: stage 1 of a 7-step shift is 2.8 ns -> 6
    // cycles at 2 GHz.
    EXPECT_EQ(secondsToCycles(7 * 0.4e-9), 6u);
    EXPECT_EQ(secondsToCycles(1 * 0.4e-9), 1u);
}

TEST(Units, CyclesToSecondsInverse)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(2000000000ull), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToSeconds(3, 1e9), 3e-9);
}

TEST(Units, LiteralHelpers)
{
    EXPECT_DOUBLE_EQ(ns(1.5), 1.5e-9);
    EXPECT_DOUBLE_EQ(pJ(2.0), 2e-12);
    EXPECT_DOUBLE_EQ(nJ(0.5), 5e-10);
    EXPECT_DOUBLE_EQ(mW(100.0), 0.1);
}

TEST(Units, FormatDurationBands)
{
    EXPECT_NE(fmt(3e-9).find("ns"), std::string::npos);
    EXPECT_NE(fmt(2e-6).find("us"), std::string::npos);
    EXPECT_NE(fmt(5e-3).find("ms"), std::string::npos);
    EXPECT_NE(fmt(10.0).find(" s"), std::string::npos);
    EXPECT_NE(fmt(120.0).find("min"), std::string::npos);
    EXPECT_NE(fmt(7200.0).find("hours"), std::string::npos);
    EXPECT_NE(fmt(200000.0).find("days"), std::string::npos);
    EXPECT_NE(fmt(1e10).find("years"), std::string::npos);
    EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "inf");
}

TEST(Units, PaperMttfAnchorsFormat)
{
    // The paper's headline numbers: 1.33 us baseline, 69-year
    // adaptive DUE MTTF.
    EXPECT_EQ(fmt(1.33e-6), "1.33 us");
    EXPECT_EQ(fmt(2.18e9), "69.1 years");
}

} // namespace
} // namespace rtm
