/**
 * @file
 * Unit tests for composable fault scenarios (non-i.i.d. regimes).
 */

#include <gtest/gtest.h>

#include <memory>

#include "device/fault_scenario.hh"

namespace rtm
{
namespace
{

std::shared_ptr<const PositionErrorModel>
acceleratedModel(double scale = 2000.0)
{
    auto base = std::make_shared<PaperCalibratedErrorModel>();
    return std::make_shared<ScaledErrorModel>(base, scale);
}

TEST(FaultScenario, DeterministicUnderSameSeed)
{
    ScenarioSpec spec;
    spec.kind = ScenarioKind::Burst;
    auto a = makeScenario(spec, acceleratedModel());
    auto b = makeScenario(spec, acceleratedModel());
    Rng rng_a(42), rng_b(42);
    for (int i = 0; i < 500; ++i) {
        ShiftOutcome oa = a->sample(rng_a, 3, true);
        ShiftOutcome ob = b->sample(rng_b, 3, true);
        EXPECT_EQ(oa.step_error, ob.step_error) << "sample " << i;
        EXPECT_EQ(oa.stop_in_middle, ob.stop_in_middle);
    }
    EXPECT_EQ(a->ledger().injected, b->ledger().injected);
}

TEST(FaultScenario, BurstInjectsMoreThanIid)
{
    auto model = acceleratedModel();
    IidScenario iid(model);
    BurstScenario burst(model, 64, 8, 50.0);
    Rng rng_a(7), rng_b(7);
    for (int i = 0; i < 4000; ++i) {
        iid.sample(rng_a, 2, true);
        burst.sample(rng_b, 2, true);
    }
    EXPECT_GT(burst.ledger().injected, iid.ledger().injected);
    EXPECT_EQ(burst.ledger().samples, 4000u);
}

TEST(FaultScenario, StuckWindowUndershootsByExactlyOne)
{
    auto zero = std::make_shared<ZeroErrorModel>();
    StuckStripeScenario stuck(zero, 2, 3);
    Rng rng(1);
    for (int i = 0; i < 8; ++i) {
        bool in_window = i >= 2 && i < 5;
        EXPECT_EQ(stuck.stuck(), in_window) << "sample " << i;
        ShiftOutcome out = stuck.sample(rng, 1, true);
        EXPECT_EQ(out.step_error, in_window ? -1 : 0);
        EXPECT_FALSE(out.stop_in_middle);
    }
    EXPECT_EQ(stuck.ledger().samples, 8u);
    EXPECT_EQ(stuck.ledger().injected, 3u);
    EXPECT_EQ(stuck.ledger().step_errors, 3u);
    EXPECT_EQ(stuck.ledger().stop_in_middle, 0u);
}

TEST(FaultScenario, DroopStrandsWallsWithoutSts)
{
    auto zero = std::make_shared<ZeroErrorModel>();
    DroopScenario droop(zero, 4, 4, 1.0); // always droop
    Rng rng(3);
    ShiftOutcome raw = droop.sample(rng, 2, false);
    EXPECT_TRUE(raw.stop_in_middle);
    EXPECT_EQ(raw.step_error, -1);
    ShiftOutcome sts = droop.sample(rng, 2, true);
    EXPECT_FALSE(sts.stop_in_middle);
    EXPECT_EQ(sts.step_error, -1);
    EXPECT_EQ(droop.ledger().stop_in_middle, 1u);
    EXPECT_EQ(droop.ledger().step_errors, 1u);
}

TEST(FaultScenario, CloneStartsAFreshTimeline)
{
    auto zero = std::make_shared<ZeroErrorModel>();
    StuckStripeScenario stuck(zero, 1, 2);
    Rng rng(5);
    for (int i = 0; i < 4; ++i)
        stuck.sample(rng, 1, true); // advance past the window
    EXPECT_EQ(stuck.ledger().injected, 2u);

    std::unique_ptr<FaultScenario> copy = stuck.clone();
    EXPECT_EQ(copy->ledger().samples, 0u);
    Rng rng2(5);
    // The clone's window opens at sample 1 again.
    EXPECT_EQ(copy->sample(rng2, 1, true).step_error, 0);
    EXPECT_EQ(copy->sample(rng2, 1, true).step_error, -1);
}

TEST(FaultScenario, ProbabilityQueriesDelegateToBase)
{
    auto model = acceleratedModel();
    BurstScenario burst(model, 64, 8, 50.0);
    for (int d = 1; d <= 4; ++d) {
        for (int k = -2; k <= 2; ++k) {
            if (k == 0)
                continue;
            EXPECT_DOUBLE_EQ(burst.logProbStep(d, k),
                             model->logProbStep(d, k));
        }
        EXPECT_DOUBLE_EQ(burst.logProbStopInMiddle(d, 0),
                         model->logProbStopInMiddle(d, 0));
    }
    EXPECT_EQ(burst.maxStepError(), model->maxStepError());
}

TEST(FaultScenario, SkewFactorIsDeterministicPerStripe)
{
    EXPECT_DOUBLE_EQ(skewFactorFor(7, 0.6), skewFactorFor(7, 0.6));
    EXPECT_NE(skewFactorFor(7, 0.6), skewFactorFor(8, 0.6));
    EXPECT_GT(skewFactorFor(7, 0.6), 0.0);

    auto model = acceleratedModel();
    SkewScenario skew(model, 7, 0.6);
    EXPECT_DOUBLE_EQ(skew.factor(), skewFactorFor(7, 0.6));
}

TEST(FaultScenario, CatalogueCoversEveryRegime)
{
    std::vector<ScenarioSpec> specs = standardScenarios();
    ASSERT_EQ(specs.size(), 5u);
    auto model = acceleratedModel();
    for (const ScenarioSpec &spec : specs) {
        std::unique_ptr<FaultScenario> s =
            makeScenario(spec, model);
        EXPECT_EQ(spec.name, s->name());
        Rng rng(9);
        s->sample(rng, 1, true);
        EXPECT_EQ(s->ledger().samples, 1u);
    }
}

TEST(FaultScenario, LedgerMergeSums)
{
    InjectionLedger a{10, 4, 3, 1};
    InjectionLedger b{5, 2, 2, 0};
    a.merge(b);
    EXPECT_EQ(a.samples, 15u);
    EXPECT_EQ(a.injected, 6u);
    EXPECT_EQ(a.step_errors, 5u);
    EXPECT_EQ(a.stop_in_middle, 1u);
}

} // namespace
} // namespace rtm
