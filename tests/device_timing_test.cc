/**
 * @file
 * Unit tests for the Eq. 2 shift-timing model.
 */

#include <gtest/gtest.h>

#include "device/timing.hh"

namespace rtm
{
namespace
{

SampledParams
nominalOf(const DeviceParams &p)
{
    return {p.domain_wall_width, p.pinning_depth, p.pinning_width,
            p.flat_width};
}

TEST(ShiftTiming, CalibratedToPaperStepTime)
{
    DeviceParams p;
    ShiftTiming t(p);
    // The nominal step time must equal the paper's 0.4 ns stage-1
    // constant by construction.
    EXPECT_NEAR(t.stepTime(nominalOf(p)), kStage1PerStepSeconds,
                1e-15);
    EXPECT_NEAR(t.nominalStepTime(), 0.4e-9, 1e-15);
}

TEST(ShiftTiming, PulseWidthIsLinearInDistance)
{
    DeviceParams p;
    ShiftTiming t(p);
    EXPECT_NEAR(t.pulseWidth(7), 7 * 0.4e-9, 1e-15);
    EXPECT_DOUBLE_EQ(t.pulseWidth(0), 0.0);
}

TEST(ShiftTiming, WiderFlatRegionTakesLonger)
{
    DeviceParams p;
    ShiftTiming t(p);
    SampledParams s = nominalOf(p);
    double base = t.flatTime(s);
    s.flat_width *= 1.1;
    EXPECT_GT(t.flatTime(s), base);
    // Flat time is exactly linear in L (Eq. 2).
    EXPECT_NEAR(t.flatTime(s) / base, 1.1, 1e-9);
}

TEST(ShiftTiming, NotchTimeFollowsEq2Sensitivities)
{
    // Eq. 2 as printed has tau = alpha*Ms*d/(V*Delta*gamma): the
    // notch transit *shortens* as the potential deepens (the escape
    // length shrinks faster than the time constant grows) and
    // lengthens with a wider notch. We implement the paper's formula
    // faithfully and pin both sensitivities here.
    DeviceParams p;
    ShiftTiming t(p);
    SampledParams s = nominalOf(p);
    double base = t.notchTime(s);
    s.pinning_depth *= 1.2;
    EXPECT_LT(t.notchTime(s), base);

    SampledParams wide = nominalOf(p);
    wide.pinning_width *= 1.2;
    EXPECT_GT(t.notchTime(wide), base);
}

TEST(ShiftTiming, StepTimeIsFlatPlusNotch)
{
    DeviceParams p;
    ShiftTiming t(p);
    SampledParams s = nominalOf(p);
    EXPECT_DOUBLE_EQ(t.stepTime(s),
                     t.flatTime(s) + t.notchTime(s));
}

TEST(ShiftTiming, ThresholdComparesDriveToPinning)
{
    DeviceParams p;
    ShiftTiming t(p);
    SampledParams s = nominalOf(p);
    // At 2*J0 the nominal notch is comfortably above threshold.
    EXPECT_TRUE(t.aboveThreshold(s, p.shift_current_density));
    // Just below J0, the wall cannot escape.
    EXPECT_FALSE(t.aboveThreshold(
        s, 0.99 * p.thresholdCurrentDensity()));
    // A much deeper notch raises the threshold past the drive.
    s.pinning_depth = p.pinning_depth * 2.5;
    EXPECT_FALSE(t.aboveThreshold(s, p.shift_current_density));
}

TEST(ShiftTiming, VariationMovesTimingBothWays)
{
    DeviceParams p;
    ShiftTiming t(p);
    SampledParams lo = nominalOf(p), hi = nominalOf(p);
    lo.flat_width *= 0.9;
    hi.flat_width *= 1.1;
    double nom = t.stepTime(nominalOf(p));
    EXPECT_LT(t.stepTime(lo), nom);
    EXPECT_GT(t.stepTime(hi), nom);
}

} // namespace
} // namespace rtm
