/**
 * @file
 * Unit tests for the combined (p-ECC + SECDED) protection stack:
 * bit flips handled by the bit code, position errors by the
 * position code, and both at once.
 */

#include <gtest/gtest.h>

#include <memory>

#include "codec/combined.hh"

namespace rtm
{
namespace
{

PeccConfig
lineConfig()
{
    PeccConfig c;
    c.num_segments = 1;
    c.seg_len = 8;
    c.correct = 1;
    c.variant = PeccVariant::Standard;
    return c;
}

TEST(ProtectedLine, CleanWriteReadRoundTrip)
{
    ZeroErrorModel model;
    ProtectedLine line(lineConfig(), &model, Rng(1));
    line.initialize();
    for (int idx = 0; idx < 8; ++idx)
        line.write(idx, 0x1111111111111111ull * (idx + 1));
    for (int idx = 0; idx < 8; ++idx) {
        LineReadResult r = line.read(idx);
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.bit_status, BeccDecode::Status::Clean);
        EXPECT_EQ(r.data, 0x1111111111111111ull * (idx + 1));
    }
}

TEST(ProtectedLine, BitFlipCorrectedBySecded)
{
    ZeroErrorModel model;
    ProtectedLine line(lineConfig(), &model, Rng(2));
    line.initialize();
    line.write(3, 0xdeadbeefcafef00dull);
    line.flipStoredBit(3, 17);
    LineReadResult r = line.read(3);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.bit_status, BeccDecode::Status::Corrected);
    EXPECT_EQ(r.data, 0xdeadbeefcafef00dull);
    EXPECT_EQ(line.bitCorrections(), 1u);
}

TEST(ProtectedLine, DoubleBitFlipDetected)
{
    ZeroErrorModel model;
    ProtectedLine line(lineConfig(), &model, Rng(3));
    line.initialize();
    line.write(0, 0x5555aaaa5555aaaaull);
    line.flipStoredBit(0, 2);
    line.flipStoredBit(0, 40);
    LineReadResult r = line.read(0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.bit_status, BeccDecode::Status::DetectedDouble);
}

TEST(ProtectedLine, PositionErrorCorrectedByPecc)
{
    // One stripe over-shoots: p-ECC counter-shifts it before the
    // read, so the bit layer never even sees an error.
    auto model = std::make_unique<ScriptedErrorModel>(
        std::vector<ShiftOutcome>{{+1, false}});
    ProtectedLine line(lineConfig(), model.get(), Rng(4));
    line.initialize();
    line.write(5, 0x0123456789abcdefull);
    LineReadResult r = line.read(5);
    EXPECT_TRUE(r.ok());
    EXPECT_GT(line.positionDetections(), 0u);
    EXPECT_TRUE(r.position_corrected ||
                line.positionDetections() > 0);
    EXPECT_EQ(r.data, 0x0123456789abcdefull);
    EXPECT_EQ(r.bit_status, BeccDecode::Status::Clean);
}

TEST(ProtectedLine, BothErrorClassesAtOnce)
{
    // A position error on one stripe AND a flipped bit on another:
    // the two layers recover independently (the paper's
    // orthogonality claim, end to end).
    auto model = std::make_unique<ScriptedErrorModel>(
        std::vector<ShiftOutcome>{{-1, false}});
    ProtectedLine line(lineConfig(), model.get(), Rng(5));
    line.initialize();
    line.write(2, 0xfeedface12345678ull);
    line.flipStoredBit(2, 60);
    LineReadResult r = line.read(2);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.data, 0xfeedface12345678ull);
    EXPECT_EQ(r.bit_status, BeccDecode::Status::Corrected);
    EXPECT_GT(line.positionDetections(), 0u);
}

TEST(ProtectedLine, SoakUnderBothFaultClasses)
{
    auto base = std::make_shared<PaperCalibratedErrorModel>();
    ScaledErrorModel model(base, 300.0);
    ProtectedLine line(lineConfig(), &model, Rng(6));
    line.initialize();
    Rng dice(7);
    uint64_t words[8];
    for (int idx = 0; idx < 8; ++idx) {
        words[idx] = dice.next();
        line.write(idx, words[idx]);
    }
    int bad_reads = 0;
    for (int i = 0; i < 400; ++i) {
        int idx = static_cast<int>(dice.uniformInt(8));
        // Occasionally flip a bit (transient soft error).
        if (dice.bernoulli(0.05)) {
            line.flipStoredBit(idx,
                               static_cast<int>(
                                   dice.uniformInt(64)));
        }
        LineReadResult r = line.read(idx);
        if (!r.ok()) {
            ++bad_reads; // flagged, never silent
            line.initialize();
            for (int j = 0; j < 8; ++j)
                line.write(j, words[j]);
            continue;
        }
        ASSERT_EQ(r.data, words[idx]) << "op " << i;
        // A corrected single flip is persistent in the domains;
        // write back the repaired word (scrubbing).
        if (r.bit_status == BeccDecode::Status::Corrected)
            line.write(idx, words[idx]);
    }
    // Faults did occur and were handled.
    EXPECT_GT(line.positionDetections() + line.bitCorrections(),
              0u);
    EXPECT_LT(bad_reads, 40);
}

TEST(ProtectedLineDeathTest, RequiresSingleSegmentStripes)
{
    ZeroErrorModel model;
    PeccConfig c = lineConfig();
    c.num_segments = 2;
    EXPECT_EXIT(ProtectedLine(c, &model, Rng(8)),
                ::testing::ExitedWithCode(1), "single-segment");
}

} // namespace
} // namespace rtm
