/**
 * @file
 * Golden equivalence proof for the hot-loop overhaul.
 *
 * The optimized simulator (shift/mask caches, inverse-CDF gap
 * sampler, memoized shift planner) must be *bit-identical* to the
 * seed implementation — not approximately equal. Three layers of
 * evidence:
 *
 *  1. component equivalence: each optimized component against its
 *     frozen reference (sim/reference.hh) under randomized driving;
 *  2. end-to-end equivalence: simulate() against referenceSimulate()
 *     with every SimResult field compared exactly;
 *  3. pinned digests: SHA-256 over a full runMatrix sweep, compared
 *     against constants captured at pin time and across thread
 *     counts. Regenerate with RTM_UPDATE_GOLDEN=1 (the test prints
 *     the new constants and fails so stale pins cannot linger).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "mem/cache.hh"
#include "mem/rm_bank.hh"
#include "model/tech.hh"
#include "sim/experiment.hh"
#include "sim/reference.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "trace/workload.hh"
#include "util/hash.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/telemetry.hh"

namespace rtm
{
namespace
{

// --- 1. component equivalence ----------------------------------------

void
fuzzCacheAgainstReference(uint64_t capacity, int ways, int line_bytes,
                          uint64_t seed)
{
    Cache opt(capacity, ways, line_bytes);
    RefCache ref(capacity, ways, line_bytes);
    Rng rng(seed);
    uint64_t lines = capacity / static_cast<uint64_t>(line_bytes);
    // Span several tag aliases of every set, plus out-of-range
    // addresses exercising wide tags.
    uint64_t addr_space = lines * static_cast<uint64_t>(line_bytes) * 8;
    for (int i = 0; i < 20000; ++i) {
        Addr addr = rng.uniformInt(addr_space);
        bool is_write = rng.bernoulli(0.3);
        CacheAccessResult a = opt.access(addr, is_write);
        CacheAccessResult b = ref.access(addr, is_write);
        ASSERT_EQ(a.hit, b.hit) << "access " << i;
        ASSERT_EQ(a.writeback, b.writeback) << "access " << i;
        ASSERT_EQ(a.victim_addr, b.victim_addr) << "access " << i;
        ASSERT_EQ(a.frame_index, b.frame_index) << "access " << i;
        if (i % 17 == 0) {
            Addr probe = rng.uniformInt(addr_space);
            ASSERT_EQ(opt.contains(probe), ref.contains(probe));
        }
    }
    EXPECT_EQ(opt.stats().reads, ref.stats().reads);
    EXPECT_EQ(opt.stats().writes, ref.stats().writes);
    EXPECT_EQ(opt.stats().read_misses, ref.stats().read_misses);
    EXPECT_EQ(opt.stats().write_misses, ref.stats().write_misses);
    EXPECT_EQ(opt.stats().writebacks, ref.stats().writebacks);
}

TEST(GoldenCache, MatchesReferenceAcrossGeometries)
{
    fuzzCacheAgainstReference(16 * 1024, 4, 64, 1);   // typical
    fuzzCacheAgainstReference(8 * 1024, 1, 64, 2);    // direct-mapped
    fuzzCacheAgainstReference(1024, 16, 64, 3);       // single set
    fuzzCacheAgainstReference(4096, 2, 32, 4);        // small lines
    fuzzCacheAgainstReference(64 * 1024, 16, 64, 5);  // LLC-like
}

TEST(GoldenWorkload, StreamMatchesReferenceForAllProfiles)
{
    for (const WorkloadProfile &p : parsecProfiles()) {
        for (int cores : {1, 3, 4}) {
            WorkloadGenerator opt(p, cores, 42);
            RefWorkloadGenerator ref(p, cores, 42);
            for (int i = 0; i < 20000; ++i) {
                MemRequest a = opt.next();
                MemRequest b = ref.next();
                ASSERT_EQ(a.core, b.core)
                    << p.name << " cores=" << cores << " req " << i;
                ASSERT_EQ(a.addr, b.addr)
                    << p.name << " cores=" << cores << " req " << i;
                ASSERT_EQ(a.is_write, b.is_write)
                    << p.name << " cores=" << cores << " req " << i;
                ASSERT_EQ(a.gap_instructions, b.gap_instructions)
                    << p.name << " cores=" << cores << " req " << i;
            }
        }
    }
}

TEST(GoldenWorkload, GapSamplerMatchesLogFormula)
{
    Rng rng(7);
    for (double mean : {2.5, 3.0, 3.5, 4.0, 5.0}) {
        GeometricGapSampler sampler(mean);
        for (int i = 0; i < 200000; ++i) {
            double u = rng.uniform();
            ASSERT_EQ(sampler.sample(u),
                      GeometricGapSampler::reference(mean, u))
                << "mean " << mean << " u " << u;
        }
        // Grid extremes: u = 0 and the largest representable draw.
        EXPECT_EQ(sampler.sample(0.0),
                  GeometricGapSampler::reference(mean, 0.0));
        double u_max = (double)((1ull << 53) - 1) * 0x1.0p-53;
        EXPECT_EQ(sampler.sample(u_max),
                  GeometricGapSampler::reference(mean, u_max));
    }
}

TEST(GoldenRmBank, MemoMatchesLivePlanning)
{
    PaperCalibratedErrorModel model;
    TechParams tech = l3For(MemTech::Racetrack);
    for (Scheme scheme :
         {Scheme::Baseline, Scheme::SecdedPecc, Scheme::PeccO,
          Scheme::PeccSWorst, Scheme::PeccSAdaptive}) {
        for (HeadPolicy hp : {HeadPolicy::Stay, HeadPolicy::Center}) {
            RmBankConfig cfg;
            cfg.line_frames = 4096;
            cfg.scheme = scheme;
            cfg.head_policy = hp;
            cfg.interleave_ways = 2;
            cfg.use_plan_memo = true;
            RmBankConfig legacy_cfg = cfg;
            legacy_cfg.use_plan_memo = false;

            RmBank memo(cfg, &model, tech);
            RmBank live(legacy_cfg, &model, tech);
            ASSERT_TRUE(memo.planMemoEnabled());
            ASSERT_FALSE(live.planMemoEnabled());

            Rng rng(1234);
            Cycles now = 0;
            for (int i = 0; i < 5000; ++i) {
                uint64_t frame = rng.uniformInt(cfg.line_frames);
                // Occasional long idle gaps trigger head drift.
                Cycles gap = rng.bernoulli(0.05)
                                 ? 500 + rng.uniformInt(4000)
                                 : rng.uniformInt(64);
                ShiftCost a = memo.accessFrame(frame, now);
                ShiftCost b = live.accessFrame(frame, now);
                ASSERT_EQ(a.latency, b.latency) << "access " << i;
                ASSERT_EQ(a.stall, b.stall) << "access " << i;
                ASSERT_EQ(a.energy, b.energy) << "access " << i;
                ASSERT_EQ(a.total_steps, b.total_steps);
                ASSERT_EQ(a.sub_shifts, b.sub_shifts);
                now += a.latency + gap;
            }
            const RmBankStats &ms = memo.stats();
            const RmBankStats &ls = live.stats();
            EXPECT_EQ(ms.accesses, ls.accesses);
            EXPECT_EQ(ms.shift_ops, ls.shift_ops);
            EXPECT_EQ(ms.shift_steps, ls.shift_steps);
            EXPECT_EQ(ms.shift_cycles, ls.shift_cycles);
            EXPECT_EQ(ms.shift_energy, ls.shift_energy);
            EXPECT_EQ(ms.reliability.expectedSdc(),
                      ls.reliability.expectedSdc());
            EXPECT_EQ(ms.reliability.expectedDue(),
                      ls.reliability.expectedDue());
            EXPECT_GT(ms.plan_memo_hits, 0u);
            EXPECT_EQ(ls.plan_memo_hits, 0u);
        }
    }
}

// --- 2. end-to-end equivalence ---------------------------------------

void
expectResultsIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.llc_tech, b.llc_tech);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mem_ops, b.mem_ops);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.cache_dynamic_energy, b.cache_dynamic_energy);
    EXPECT_EQ(a.llc_shift_energy, b.llc_shift_energy);
    EXPECT_EQ(a.dram_energy, b.dram_energy);
    EXPECT_EQ(a.leakage_energy, b.leakage_energy);
    EXPECT_EQ(a.llc_accesses, b.llc_accesses);
    EXPECT_EQ(a.llc_misses, b.llc_misses);
    EXPECT_EQ(a.dram_accesses, b.dram_accesses);
    EXPECT_EQ(a.shift_ops, b.shift_ops);
    EXPECT_EQ(a.shift_steps, b.shift_steps);
    EXPECT_EQ(a.shift_cycles, b.shift_cycles);
    EXPECT_EQ(a.sdc_mttf, b.sdc_mttf);
    EXPECT_EQ(a.due_mttf, b.due_mttf);
}

TEST(GoldenSim, SimulateMatchesReferenceSimulate)
{
    PaperCalibratedErrorModel model;
    constexpr uint64_t kDivisor = 32;
    struct Option
    {
        MemTech tech;
        Scheme scheme;
    };
    const Option options[] = {
        {MemTech::SRAM, Scheme::Baseline},
        {MemTech::STTRAM, Scheme::Baseline},
        {MemTech::RacetrackIdeal, Scheme::Baseline},
        {MemTech::Racetrack, Scheme::Baseline},
        {MemTech::Racetrack, Scheme::PeccO},
        {MemTech::Racetrack, Scheme::PeccSWorst},
        {MemTech::Racetrack, Scheme::PeccSAdaptive},
    };
    for (const char *workload : {"canneal", "swaptions"}) {
        WorkloadProfile profile =
            scaledProfile(parsecProfile(workload), kDivisor);
        for (const Option &opt : options) {
            SimConfig cfg;
            cfg.hierarchy.llc_tech = opt.tech;
            cfg.hierarchy.scheme = opt.scheme;
            cfg.hierarchy.capacity_divisor = kDivisor;
            cfg.mem_requests = 8000;
            cfg.warmup_requests = 2000;
            SimResult a = simulate(profile, cfg, &model);
            SimResult b = referenceSimulate(profile, cfg, &model);
            expectResultsIdentical(a, b);
        }
    }
}

// --- 3. pinned digests -----------------------------------------------

constexpr uint64_t kGoldenRequests = 6000;
constexpr uint64_t kGoldenWarmup = 1000;
constexpr uint64_t kGoldenDivisor = 32;

/**
 * Pinned SHA-256 digests of the full runMatrix sweep, one per
 * standardLlcOptions() column plus a combined digest. Captured with
 * RTM_UPDATE_GOLDEN=1 on the optimized implementation after proving
 * it bit-identical to the seed reference above.
 */
const char *const kGoldenOptionHashes[] = {
    "6628be33ca3b0930995a871a2509e0e602bf9c9e54f09bb92372ff483d04e9f5", // SRAM
    "60490657571e99f1531cbbe5c32f31913efa5666fbf319016b14ece439a20b9f", // STT-RAM
    "ccb2899f86c9054f07670cf54e4896c8ac7a143e7ca32564496c98ea06611e77", // RM-Ideal
    "d087db6dfaa67564f44f7676c722c24d3262198155942c621082ed8258ef85c0", // RM w/o p-ECC
    "61dd37afb8d101173c04ddda6c6f4aa42185de3d4fe5ef19aecff057e2e0ad0f", // RM p-ECC-O
    "34ee08f170671e73c861d3967fb41e364757618b8904e4435f964d7c0c26198f", // RM p-ECC-S adaptive
    "91dd54607e3785649afb09490a4f9bf3878e728838b93a89adf1be08c4f2992f", // RM p-ECC-S worst
};
const char *const kGoldenCombinedHash =
    "7017ee33c91401fb7af3a9b0c71df686418b5d9a0abb101a02ceee3e6bb413fe";

void
hashResult(Sha256 &h, const SimResult &r)
{
    h.updateString(r.workload);
    h.updateValue(static_cast<int32_t>(r.llc_tech));
    h.updateValue(static_cast<int32_t>(r.scheme));
    h.updateValue(r.instructions);
    h.updateValue(r.mem_ops);
    h.updateValue(r.cycles);
    h.updateValue(r.seconds);
    h.updateValue(r.cache_dynamic_energy);
    h.updateValue(r.llc_shift_energy);
    h.updateValue(r.dram_energy);
    h.updateValue(r.leakage_energy);
    h.updateValue(r.llc_accesses);
    h.updateValue(r.llc_misses);
    h.updateValue(r.dram_accesses);
    h.updateValue(r.shift_ops);
    h.updateValue(r.shift_steps);
    h.updateValue(r.shift_cycles);
    h.updateValue(r.sdc_mttf);
    h.updateValue(r.due_mttf);
}

std::vector<std::string>
matrixHashes(const std::vector<WorkloadMatrixRow> &rows,
             size_t options)
{
    std::vector<std::string> hashes;
    Sha256 combined;
    for (size_t o = 0; o < options; ++o) {
        Sha256 h;
        for (const WorkloadMatrixRow &row : rows) {
            hashResult(h, row.results[o]);
            hashResult(combined, row.results[o]);
        }
        hashes.push_back(h.hexDigest());
    }
    hashes.push_back(combined.hexDigest());
    return hashes;
}

TEST(GoldenSim, MatrixDigestsMatchPins)
{
    PaperCalibratedErrorModel model;
    auto options = standardLlcOptions();
    auto rows = runMatrix(options, &model, kGoldenRequests,
                          kGoldenWarmup, kGoldenDivisor);
    auto hashes = matrixHashes(rows, options.size());
    ASSERT_EQ(hashes.size(), options.size() + 1);

    if (std::getenv("RTM_UPDATE_GOLDEN")) {
        printf("const char *const kGoldenOptionHashes[] = {\n");
        for (size_t o = 0; o < options.size(); ++o)
            printf("    \"%s\", // %s\n", hashes[o].c_str(),
                   options[o].label.c_str());
        printf("};\nconst char *const kGoldenCombinedHash =\n"
               "    \"%s\";\n",
               hashes.back().c_str());
        FAIL() << "RTM_UPDATE_GOLDEN set: paste the printed pins "
                  "into tests/sim_golden_test.cc and re-run";
    }
    for (size_t o = 0; o < options.size(); ++o)
        EXPECT_EQ(hashes[o], kGoldenOptionHashes[o])
            << "option " << options[o].label;
    EXPECT_EQ(hashes.back(), kGoldenCombinedHash);
}

TEST(GoldenSim, TelemetryOnDoesNotPerturbResults)
{
    // Instrumentation only *reads* simulator state, so a fully
    // instrumented sweep must reproduce the telemetry-off sweep bit
    // for bit: every SimResult field equal and the SHA-256 digests
    // still matching the pinned constants.
    PaperCalibratedErrorModel model;
    auto options = standardLlcOptions();

    auto plain = runMatrix(options, &model, kGoldenRequests,
                           kGoldenWarmup, kGoldenDivisor);
    Telemetry telemetry(1 << 14);
    auto traced = runMatrix(options, &model, kGoldenRequests,
                            kGoldenWarmup, kGoldenDivisor,
                            &telemetry);

    ASSERT_EQ(plain.size(), traced.size());
    for (size_t w = 0; w < plain.size(); ++w) {
        ASSERT_EQ(plain[w].results.size(),
                  traced[w].results.size());
        for (size_t o = 0; o < plain[w].results.size(); ++o)
            expectResultsIdentical(plain[w].results[o],
                                   traced[w].results[o]);
    }

    auto traced_hashes = matrixHashes(traced, options.size());
    for (size_t o = 0; o < options.size(); ++o)
        EXPECT_EQ(traced_hashes[o], kGoldenOptionHashes[o])
            << "option " << options[o].label << " (telemetry on)";
    EXPECT_EQ(traced_hashes.back(), kGoldenCombinedHash);

    // And the sink actually observed the sweep: one sim.requests
    // increment of kGoldenRequests per cell, shift events from the
    // racetrack options, per-cell wall-clock spans.
    const size_t cells = plain.size() * options.size();
    EXPECT_EQ(telemetry.counters().at("sim.requests").value(),
              cells * kGoldenRequests);
    EXPECT_EQ(telemetry.counters().at("runner.cells").value(), cells);
    EXPECT_EQ(telemetry.eventCount(EventKind::Span),
              static_cast<uint64_t>(cells));
    EXPECT_GT(telemetry.eventCount(EventKind::ShiftIssued), 0u);
}

TEST(GoldenSim, SpecDrivenMatrixMatchesPins)
{
    // A declarative ExperimentSpec scheduled on the shared
    // ExperimentEngine must reproduce the pinned digests exactly —
    // at one thread, a fixed small count, and the configured count.
    ExperimentSpec spec;
    spec.matrix.requests = kGoldenRequests;
    spec.matrix.warmup = kGoldenWarmup;
    spec.matrix.divisor = kGoldenDivisor;
    normalizeExperimentSpec(&spec);
    auto options = standardLlcOptions();
    ASSERT_EQ(spec.matrix.options.size(), options.size());

    PaperCalibratedErrorModel model;
    for (unsigned threads :
         {1u, 4u, ThreadPool::configuredThreads()}) {
        ThreadPool::setGlobalThreads(threads);
        ExperimentResult res = runExperiment(spec, &model);
        EXPECT_EQ(res.cells,
                  parsecProfiles().size() * options.size());
        auto hashes = matrixHashes(res.matrix, options.size());
        for (size_t o = 0; o < options.size(); ++o)
            EXPECT_EQ(hashes[o], kGoldenOptionHashes[o])
                << "option " << options[o].label << " at "
                << threads << " thread(s)";
        EXPECT_EQ(hashes.back(), kGoldenCombinedHash)
            << threads << " thread(s)";
    }
    ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());
}

TEST(GoldenSim, ExplicitStaticPlacementMatchesPins)
{
    // The placement refactor routed every slot lookup through a
    // policy object. Spelling the default out loud — static
    // placement, stay heads, non-default bookkeeping knobs that
    // static must ignore — has to reproduce the pinned digests
    // bit for bit.
    PaperCalibratedErrorModel model;
    auto options = standardLlcOptions();
    for (auto &o : options) {
        o.placement = PlacementKind::Static;
        o.head_policy = HeadPolicy::Stay;
        o.placement_epoch = 16;
        o.placement_swap_budget = 1;
    }
    auto rows = runMatrix(options, &model, kGoldenRequests,
                          kGoldenWarmup, kGoldenDivisor);
    auto hashes = matrixHashes(rows, options.size());
    for (size_t o = 0; o < options.size(); ++o)
        EXPECT_EQ(hashes[o], kGoldenOptionHashes[o])
            << "option " << options[o].label;
    EXPECT_EQ(hashes.back(), kGoldenCombinedHash);
}

TEST(GoldenSim, MatrixDigestsStableAcrossThreadCounts)
{
    PaperCalibratedErrorModel model;
    auto options = standardLlcOptions();

    ThreadPool::setGlobalThreads(1);
    auto serial = matrixHashes(
        runMatrix(options, &model, kGoldenRequests, kGoldenWarmup,
                  kGoldenDivisor),
        options.size());
    ThreadPool::setGlobalThreads(3);
    auto parallel = matrixHashes(
        runMatrix(options, &model, kGoldenRequests, kGoldenWarmup,
                  kGoldenDivisor),
        options.size());
    ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());

    EXPECT_EQ(serial, parallel);
}

TEST(GoldenSim, Fig16SpecWithoutShiftCodesKeepsThePinnedDigests)
{
    // Guard for the shift-code family introduction: the shipped
    // fig16 spec selects the paper's standard catalogue only, and as
    // long as the new schemes (lm-pos, del-ins-k) are absent from a
    // spec, every pre-existing digest must stay bit-identical. A
    // change here means the new codecs leaked into the legacy
    // simulation path.
    ExperimentSpec spec;
    std::string diag;
    const std::string path = std::string(RTM_REPO_DIR) +
                             "/examples/specs/fig16.json";
    ASSERT_TRUE(loadExperimentSpec(path, &spec, &diag)) << diag;
    const auto standard = standardLlcOptions();
    ASSERT_EQ(spec.matrix.options.size(), standard.size());
    for (size_t o = 0; o < standard.size(); ++o)
        EXPECT_TRUE(spec.matrix.options[o] == standard[o])
            << "option " << standard[o].label;

    // The shipped request count is bench-sized; the digest pins are
    // defined at the golden parameters.
    spec.matrix.requests = kGoldenRequests;
    spec.matrix.warmup = kGoldenWarmup;
    spec.matrix.divisor = kGoldenDivisor;

    PaperCalibratedErrorModel model;
    ExperimentResult res = runExperiment(spec, &model);
    auto hashes = matrixHashes(res.matrix, standard.size());
    for (size_t o = 0; o < standard.size(); ++o)
        EXPECT_EQ(hashes[o], kGoldenOptionHashes[o])
            << "option " << standard[o].label;
    EXPECT_EQ(hashes.back(), kGoldenCombinedHash);
}

/**
 * Pinned digests for the shift-code family itself: a small matrix
 * (two workloads x shiftCodeLlcOptions()) at the golden parameters.
 * Captured with RTM_UPDATE_GOLDEN=1; freezes the end-to-end
 * behaviour of the lm-pos and del-ins-k schemes.
 */
const char *const kGoldenShiftCodeHashes[] = {
    "9d77b9ea01da96a724fef20784128da38a8ddb850261caf6131b3f744e584002", // RM p-ECC-S adaptive
    "28ef5b81ced0f9feabd2e2a9c037865da5d992f74db502781dc9fb56f160d4b6", // RM lm-pos
    "a7383a3e05b32daaab3640e85aec0a71faeae998395317a6c4912019708eca80", // RM del-ins-k
};
const char *const kGoldenShiftCodeCombinedHash =
    "ff793f953a0c068bee08b11090b43abaa978aedd2629356b6124353ceb56c9f7";

TEST(GoldenSim, ShiftCodeMatrixDigestsMatchPins)
{
    ExperimentSpec spec;
    spec.matrix.requests = kGoldenRequests;
    spec.matrix.warmup = kGoldenWarmup;
    spec.matrix.divisor = kGoldenDivisor;
    spec.matrix.workloads = {"blackscholes", "canneal"};
    spec.matrix.options = shiftCodeLlcOptions();
    normalizeExperimentSpec(&spec);
    const auto options = shiftCodeLlcOptions();
    ASSERT_EQ(spec.matrix.options.size(), options.size());

    PaperCalibratedErrorModel model;
    ExperimentResult res = runExperiment(spec, &model);
    ASSERT_EQ(res.matrix.size(), spec.matrix.workloads.size());
    auto hashes = matrixHashes(res.matrix, options.size());

    if (std::getenv("RTM_UPDATE_GOLDEN")) {
        printf("const char *const kGoldenShiftCodeHashes[] = {\n");
        for (size_t o = 0; o < options.size(); ++o)
            printf("    \"%s\", // %s\n", hashes[o].c_str(),
                   options[o].label.c_str());
        printf("};\nconst char *const "
               "kGoldenShiftCodeCombinedHash =\n    \"%s\";\n",
               hashes.back().c_str());
        FAIL() << "RTM_UPDATE_GOLDEN set: paste the printed pins "
                  "into tests/sim_golden_test.cc and re-run";
    }
    for (size_t o = 0; o < options.size(); ++o)
        EXPECT_EQ(hashes[o], kGoldenShiftCodeHashes[o])
            << "option " << options[o].label;
    EXPECT_EQ(hashes.back(), kGoldenShiftCodeCombinedHash);
}

// --- 4. fast-tier pins -----------------------------------------------

/**
 * The fast Monte-Carlo tier is NOT bit-identical to the scalar
 * reference (it reorders draws), so the matrix pins above say
 * nothing about it. It carries its own pinned digest instead: the
 * output is a pure function of (seed, distance, trials), stable
 * across thread counts, and this test freezes it. Regenerate with
 * RTM_UPDATE_GOLDEN=1 after an intentional fast-path change.
 */
const char *const kGoldenFastMcHash =
    "9acd9e237bf8ea72c781f0657d145a86c6e351b78ed97582c240cfc8d58a196e";

std::string
fastMcDigest(unsigned threads)
{
    ThreadPool::setGlobalThreads(threads);
    PositionErrorMonteCarlo mc(DeviceParams{}, 12345,
                               McTier::Fast);
    ErrorPdf pdf = mc.run(7, 100003);
    ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());
    Sha256 h;
    h.updateValue(static_cast<int32_t>(pdf.distance));
    h.updateValue(pdf.trials);
    for (const auto &kv : pdf.step_counts.entries()) {
        h.updateValue(kv.first);
        h.updateValue(kv.second);
    }
    for (const auto &kv : pdf.middle_counts.entries()) {
        h.updateValue(kv.first);
        h.updateValue(kv.second);
    }
    h.updateValue(pdf.deviation.count());
    h.updateValue(pdf.deviation.mean());
    h.updateValue(pdf.deviation.stddev());
    return h.hexDigest();
}

TEST(GoldenSim, FastTierDigestMatchesPinAcrossThreadCounts)
{
    std::string serial = fastMcDigest(1);
    std::string parallel = fastMcDigest(3);
    EXPECT_EQ(serial, parallel);

    if (std::getenv("RTM_UPDATE_GOLDEN")) {
        printf("const char *const kGoldenFastMcHash =\n"
               "    \"%s\";\n",
               serial.c_str());
        FAIL() << "RTM_UPDATE_GOLDEN set: paste the printed pin "
                  "into tests/sim_golden_test.cc and re-run";
    }
    EXPECT_EQ(serial, kGoldenFastMcHash);
}

} // namespace
} // namespace rtm
