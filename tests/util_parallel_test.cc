/**
 * @file
 * Unit tests for the thread pool and sharded map-reduce helpers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/parallel.hh"

namespace rtm
{
namespace
{

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<int> hits(100, 0);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i] += 1; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, NestedCallsRunInline)
{
    // A parallelFor issued from inside a worker must not deadlock
    // the pool; it runs serially on that worker.
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](size_t) {
        pool.parallelFor(8, [&](size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, GlobalThreadsCanBeOverridden)
{
    unsigned before = ThreadPool::global().threads();
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::global().threads(), 3u);
    ThreadPool::setGlobalThreads(before);
    EXPECT_EQ(ThreadPool::global().threads(), before);
}

TEST(ShardHelpers, ShardCountDependsOnlyOnSize)
{
    EXPECT_EQ(shardCount(0), 0u);
    EXPECT_EQ(shardCount(5), 5u);
    EXPECT_EQ(shardCount(64), 64u);
    EXPECT_EQ(shardCount(1000000), 64u);
}

TEST(ShardHelpers, ShardSizesPartitionTheWork)
{
    size_t n = 1003, shards = 64, sum = 0;
    for (size_t s = 0; s < shards; ++s) {
        size_t sz = shardSize(n, shards, s);
        EXPECT_GE(sz, n / shards);
        EXPECT_LE(sz, n / shards + 1);
        sum += sz;
    }
    EXPECT_EQ(sum, n);
}

TEST(ShardHelpers, MapReduceMatchesSerialFold)
{
    // Sum of squares over shards must equal the direct sum, and be
    // identical at 1 and 4 workers (reduction order is shard order).
    auto compute = [](unsigned threads) {
        ThreadPool::setGlobalThreads(threads);
        size_t n = 4321;
        size_t shards = shardCount(n);
        return shardedMapReduce<uint64_t>(
            shards,
            [&](size_t s) {
                uint64_t first = 0;
                for (size_t t = 0; t < s; ++t)
                    first += shardSize(n, shards, t);
                uint64_t acc = 0;
                uint64_t sz = shardSize(n, shards, s);
                for (uint64_t i = first; i < first + sz; ++i)
                    acc += i * i;
                return acc;
            },
            [](uint64_t &acc, const uint64_t &p) { acc += p; });
    };
    unsigned before = ThreadPool::global().threads();
    uint64_t serial = compute(1);
    uint64_t parallel = compute(4);
    ThreadPool::setGlobalThreads(before);
    uint64_t expect = 0;
    for (uint64_t i = 0; i < 4321; ++i)
        expect += i * i;
    EXPECT_EQ(serial, expect);
    EXPECT_EQ(parallel, expect);
}

TEST(AlignedShardSize, SumsToTotalAndAlignsAllButLast)
{
    // Fast-tier shards must be whole multiples of the batch granule
    // (except the last, which carries the remainder) so each
    // shard's draw layout is independent of the shard count.
    for (size_t n : {size_t(0), size_t(1), size_t(255),
                     size_t(256), size_t(4097), size_t(100003)}) {
        for (size_t shards : {size_t(1), size_t(3), size_t(64)}) {
            size_t sum = 0;
            for (size_t s = 0; s < shards; ++s) {
                size_t sz = alignedShardSize(n, shards, s, 256);
                if (s + 1 < shards)
                    EXPECT_EQ(sz % 256, 0u)
                        << "n=" << n << " s=" << s;
                sum += sz;
            }
            EXPECT_EQ(sum, n) << "n=" << n << " shards=" << shards;
        }
    }
    // Granule 1 degrades to the plain even split.
    EXPECT_EQ(alignedShardSize(10, 3, 0, 1), shardSize(10, 3, 0));
    EXPECT_EQ(alignedShardSize(10, 3, 2, 1), shardSize(10, 3, 2));
}

} // namespace
} // namespace rtm
