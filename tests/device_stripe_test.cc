/**
 * @file
 * Unit tests for the functional racetrack stripe (tape semantics,
 * ports, fault injection, data loss at wire ends).
 */

#include <gtest/gtest.h>

#include "device/stripe.hh"

namespace rtm
{
namespace
{

ZeroErrorModel g_zero;

RacetrackStripe
makeStripe(int slots, const PositionErrorModel *model = &g_zero)
{
    std::vector<Port> ports = {{slots / 2, PortKind::ReadWrite},
                               {slots - 1, PortKind::ReadOnly}};
    return RacetrackStripe(slots, ports, model, Rng(1));
}

TEST(Bit, InvertAndChar)
{
    EXPECT_EQ(invert(Bit::Zero), Bit::One);
    EXPECT_EQ(invert(Bit::One), Bit::Zero);
    EXPECT_EQ(invert(Bit::X), Bit::X);
    EXPECT_EQ(bitChar(Bit::Zero), '0');
    EXPECT_EQ(bitChar(Bit::One), '1');
    EXPECT_EQ(bitChar(Bit::X), 'x');
}

TEST(Stripe, FreshDomainsAreUndefined)
{
    RacetrackStripe s = makeStripe(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(s.peek(i), Bit::X);
}

TEST(Stripe, PokePeekRoundTrip)
{
    RacetrackStripe s = makeStripe(8);
    s.poke(3, Bit::One);
    EXPECT_EQ(s.peek(3), Bit::One);
    EXPECT_EQ(s.peek(2), Bit::X);
}

TEST(Stripe, ShiftMovesContentRight)
{
    RacetrackStripe s = makeStripe(8);
    s.poke(2, Bit::One);
    s.poke(3, Bit::Zero);
    s.shift(2);
    EXPECT_EQ(s.peek(4), Bit::One);
    EXPECT_EQ(s.peek(5), Bit::Zero);
    // Entering domains are undefined.
    EXPECT_EQ(s.peek(0), Bit::X);
    EXPECT_EQ(s.peek(1), Bit::X);
    EXPECT_EQ(s.trueOffset(), 2);
}

TEST(Stripe, ShiftMovesContentLeft)
{
    RacetrackStripe s = makeStripe(8);
    s.poke(4, Bit::One);
    s.shift(-3);
    EXPECT_EQ(s.peek(1), Bit::One);
    EXPECT_EQ(s.peek(7), Bit::X);
    EXPECT_EQ(s.trueOffset(), -3);
}

TEST(Stripe, DataFallsOffTheEnds)
{
    RacetrackStripe s = makeStripe(4);
    s.poke(3, Bit::One);
    s.shift(1); // pushes slot 3 off the right end
    s.shift(-1);
    EXPECT_EQ(s.peek(3), Bit::X); // destroyed, not restored
}

TEST(Stripe, RoundTripPreservesInteriorData)
{
    RacetrackStripe s = makeStripe(16);
    for (int i = 4; i < 12; ++i)
        s.poke(i, i % 2 ? Bit::One : Bit::Zero);
    s.shift(3);
    s.shift(-3);
    for (int i = 4; i < 12; ++i)
        EXPECT_EQ(s.peek(i), i % 2 ? Bit::One : Bit::Zero) << i;
}

TEST(Stripe, ReadThroughPort)
{
    RacetrackStripe s = makeStripe(8);
    s.poke(4, Bit::One); // port 0 at slot 4
    EXPECT_EQ(s.read(0), Bit::One);
    s.poke(7, Bit::Zero); // port 1 at slot 7
    EXPECT_EQ(s.read(1), Bit::Zero);
}

TEST(Stripe, WriteThroughRwPort)
{
    RacetrackStripe s = makeStripe(8);
    EXPECT_TRUE(s.write(0, Bit::One));
    EXPECT_EQ(s.peek(4), Bit::One);
}

TEST(StripeDeathTest, WriteThroughReadOnlyPortPanics)
{
    RacetrackStripe s = makeStripe(8);
    EXPECT_DEATH(s.write(1, Bit::One), "read-only");
}

TEST(Stripe, InjectedOverShiftMovesExtra)
{
    ScriptedErrorModel model({{+1, false}});
    RacetrackStripe s = makeStripe(8, &model);
    s.poke(2, Bit::One);
    ShiftOutcome o = s.shift(1);
    EXPECT_EQ(o.step_error, 1);
    EXPECT_EQ(s.trueOffset(), 2);
    EXPECT_EQ(s.peek(4), Bit::One);
}

TEST(Stripe, InjectedErrorFollowsMotionDirection)
{
    // A "+1" outcome means one step beyond the requested distance,
    // in the direction of motion - for a left shift that is one
    // extra step left.
    ScriptedErrorModel model({{+1, false}});
    RacetrackStripe s = makeStripe(8, &model);
    s.poke(5, Bit::One);
    s.shift(-2);
    EXPECT_EQ(s.trueOffset(), -3);
    EXPECT_EQ(s.peek(2), Bit::One);
}

TEST(Stripe, StopInMiddleBlindsReadsUntilStage2)
{
    ScriptedErrorModel model({{0, true}});
    RacetrackStripe s = makeStripe(8, &model);
    s.poke(3, Bit::One);
    s.shift(1);
    EXPECT_TRUE(s.misaligned());
    EXPECT_EQ(s.read(0), Bit::X); // slot 4 holds One but unreadable
    EXPECT_FALSE(s.write(0, Bit::Zero));
    s.applyStsStage2();
    EXPECT_FALSE(s.misaligned());
    // Positive STS pushed the walls one extra step.
    EXPECT_EQ(s.trueOffset(), 2);
    EXPECT_EQ(s.peek(5), Bit::One);
}

TEST(Stripe, ShiftWhileMisalignedResolvesFirst)
{
    ScriptedErrorModel model({{0, true}});
    RacetrackStripe s = makeStripe(8, &model);
    s.shift(1);
    EXPECT_TRUE(s.misaligned());
    s.shift(1); // should re-align (stage-2 equivalent) then move
    EXPECT_FALSE(s.misaligned());
    EXPECT_EQ(s.trueOffset(), 3); // 1 + 1 (stage 2) + 1
}

TEST(Stripe, ShiftAndWriteProgramsEnteringDomain)
{
    RacetrackStripe s = makeStripe(8);
    s.shiftAndWrite(Bit::One, true);
    EXPECT_EQ(s.peek(0), Bit::One);
    s.shiftAndWrite(Bit::Zero, false);
    EXPECT_EQ(s.peek(7), Bit::Zero);
}

TEST(Stripe, CountersTrackActivity)
{
    ScriptedErrorModel model({{+1, false}});
    RacetrackStripe s = makeStripe(8, &model);
    s.shift(2); // +1 error -> 3 steps moved
    s.shift(-1);
    EXPECT_EQ(s.shiftOps(), 2u);
    EXPECT_EQ(s.stepsMoved(), 4u);
}

TEST(Stripe, ZeroDistanceShiftIsNoOp)
{
    RacetrackStripe s = makeStripe(8);
    s.poke(3, Bit::One);
    s.shift(0);
    EXPECT_EQ(s.trueOffset(), 0);
    EXPECT_EQ(s.peek(3), Bit::One);
}

TEST(Stripe, OverLengthShiftClearsEverything)
{
    RacetrackStripe s = makeStripe(4);
    for (int i = 0; i < 4; ++i)
        s.poke(i, Bit::One);
    s.shift(10);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(s.peek(i), Bit::X);
}

TEST(Stripe, PackedStorageMatchesReferenceSemantics)
{
    // Randomized differential test of the packed 2-bit-per-domain
    // representation against a plain Bit-vector reference, across
    // widths that exercise full words, partial tail words and
    // single-word wires, with shift distances beyond a word.
    for (int slots : {5, 31, 32, 33, 64, 65, 100, 127, 128, 200}) {
        std::vector<Port> ports = {{0, PortKind::ReadWrite}};
        RacetrackStripe s(slots, ports, &g_zero, Rng(3));
        std::vector<Bit> ref(static_cast<size_t>(slots), Bit::X);
        Rng rng(slots);
        for (int i = 0; i < slots; ++i) {
            Bit b = rng.bernoulli(0.5) ? Bit::One : Bit::Zero;
            if (rng.bernoulli(0.1))
                b = Bit::X;
            s.poke(i, b);
            ref[static_cast<size_t>(i)] = b;
        }
        for (int step = 0; step < 40; ++step) {
            int dist = static_cast<int>(rng.uniformInt(81)) - 40;
            s.shift(dist);
            // Mirror the move on the reference: right shift pulls
            // X in at the left edge, left shift at the right edge.
            std::vector<Bit> next(static_cast<size_t>(slots),
                                  Bit::X);
            for (int i = 0; i < slots; ++i) {
                int src = i - dist;
                if (src >= 0 && src < slots)
                    next[static_cast<size_t>(i)] =
                        ref[static_cast<size_t>(src)];
            }
            ref = next;
            for (int i = 0; i < slots; ++i)
                ASSERT_EQ(s.peek(i), ref[static_cast<size_t>(i)])
                    << "slots=" << slots << " step=" << step
                    << " dist=" << dist << " slot=" << i;
        }
    }
}

} // namespace
} // namespace rtm
