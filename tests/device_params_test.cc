/**
 * @file
 * Unit tests for device parameters and variation sampling.
 */

#include <gtest/gtest.h>

#include "device/params.hh"
#include "util/stats.hh"

namespace rtm
{
namespace
{

TEST(DeviceParams, Table1Defaults)
{
    DeviceParams p;
    EXPECT_DOUBLE_EQ(p.domain_wall_width, 5e-9);
    EXPECT_DOUBLE_EQ(p.pinning_width, 45e-9);
    EXPECT_DOUBLE_EQ(p.flat_width, 150e-9);
    EXPECT_DOUBLE_EQ(p.shift_current_density, 1.24e12);
}

TEST(DeviceParams, PitchAndNotchFraction)
{
    DeviceParams p;
    EXPECT_DOUBLE_EQ(p.pitch(), 195e-9);
    EXPECT_NEAR(p.notchFraction(), 45.0 / 195.0, 1e-12);
}

TEST(DeviceParams, ThresholdIsHalfOfDriveAtDefaultOverdrive)
{
    DeviceParams p;
    EXPECT_DOUBLE_EQ(p.thresholdCurrentDensity(),
                     p.shift_current_density / 2.0);
    p.overdrive = 4.0;
    EXPECT_DOUBLE_EQ(p.thresholdCurrentDensity(),
                     p.shift_current_density / 4.0);
}

TEST(DeviceParams, SpinVelocityScalesWithCurrent)
{
    DeviceParams p;
    double u1 = p.spinVelocity(1e12);
    double u2 = p.spinVelocity(2e12);
    EXPECT_GT(u1, 0.0);
    EXPECT_NEAR(u2 / u1, 2.0, 1e-12);
    // Magnitude sanity: tens of m/s for ~1 A/um^2 in permalloy.
    EXPECT_GT(u1, 5.0);
    EXPECT_LT(u1, 500.0);
}

TEST(SampleParams, MomentsMatchTable1Sigmas)
{
    DeviceParams nominal;
    Rng rng(99);
    RunningStats wall, depth, width, flat;
    for (int i = 0; i < 50000; ++i) {
        SampledParams s = sampleParams(nominal, rng);
        wall.add(s.wall_width);
        depth.add(s.pinning_depth);
        width.add(s.pinning_width);
        flat.add(s.flat_width);
    }
    EXPECT_NEAR(wall.mean(), nominal.domain_wall_width,
                0.01 * nominal.domain_wall_width);
    EXPECT_NEAR(wall.stddev(), 0.02 * nominal.domain_wall_width,
                0.002 * nominal.domain_wall_width);
    EXPECT_NEAR(depth.stddev(), 0.02 * nominal.pinning_depth,
                0.002 * nominal.pinning_depth);
    EXPECT_NEAR(width.stddev(), 0.05 * nominal.pinning_width,
                0.005 * nominal.pinning_width);
    // Table 1 as printed: sigma_L = 0.05 * dbar.
    EXPECT_NEAR(flat.stddev(), 0.05 * nominal.pinning_width,
                0.005 * nominal.pinning_width);
}

TEST(SampleParams, AlwaysPositive)
{
    DeviceParams nominal;
    nominal.sigma_depth = 3.0; // pathological variation
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        SampledParams s = sampleParams(nominal, rng);
        EXPECT_GT(s.pinning_depth, 0.0);
        EXPECT_GT(s.wall_width, 0.0);
    }
}

} // namespace
} // namespace rtm
