/**
 * @file
 * Tests for the extension features: the perpendicular-material
 * preset, bank interleaving, trace-replay simulation, and the
 * overdrive sensitivity of the Monte-Carlo error model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "device/montecarlo.hh"
#include "mem/rm_bank.hh"
#include "sim/system.hh"
#include "trace/trace_file.hh"

namespace rtm
{
namespace
{

TEST(PerpendicularMaterial, DenserButNoisier)
{
    DeviceParams in_plane;
    DeviceParams perp = perpendicularMaterial();
    // Density: much finer pitch.
    EXPECT_LT(perp.pitch(), 0.5 * in_plane.pitch());
    // Noise: larger relative geometry variation.
    EXPECT_GT(perp.sigma_width, in_plane.sigma_width);

    PositionErrorMonteCarlo mc_ip(in_plane, 1);
    PositionErrorMonteCarlo mc_pp(perp, 1);
    FittedErrorModel fit_ip = mc_ip.fitModel(60000);
    FittedErrorModel fit_pp = mc_pp.fitModel(60000);
    // The paper's caveat: higher error rate for the denser stack.
    EXPECT_GT(fit_pp.logProbStep(1, 1), fit_ip.logProbStep(1, 1));
}

TEST(Overdrive, UnderShootAtLowDriveOverShootAtHigh)
{
    DeviceParams low, high;
    low.overdrive = 1.2;
    high.overdrive = 4.0;
    PositionErrorMonteCarlo mc_low(low, 2);
    PositionErrorMonteCarlo mc_high(high, 2);
    ErrorPdf pdf_low = mc_low.run(7, 50000);
    ErrorPdf pdf_high = mc_high.run(7, 50000);
    EXPECT_LT(pdf_low.deviation.mean(), 0.0);
    EXPECT_GT(pdf_high.deviation.mean(), 0.0);
    // Error rates at the extremes exceed the 2*J0 operating point.
    DeviceParams nominal;
    PositionErrorMonteCarlo mc_nom(nominal, 2);
    ErrorPdf pdf_nom = mc_nom.run(7, 50000);
    auto err_frac = [](const ErrorPdf &p) {
        return 1.0 - p.stepProbability(0);
    };
    EXPECT_GT(err_frac(pdf_low), err_frac(pdf_nom));
    EXPECT_GT(err_frac(pdf_high), err_frac(pdf_nom));
}

TEST(Interleaving, RaisesEffectiveIntensity)
{
    // With N-way interleaving the adaptive policy sees 1/N of the
    // interval and must decompose more conservatively.
    PaperCalibratedErrorModel model;
    auto run = [&](int ways) {
        RmBankConfig cfg;
        cfg.line_frames = 128;
        cfg.scheme = Scheme::PeccSAdaptive;
        cfg.interleave_ways = ways;
        RmBank bank(cfg, &model, racetrackL3());
        // Warm the interval counter with a shifting access in a
        // different stripe group.
        bank.accessFrame(64, 0);
        // 7-step request (group 0, index 0) after a 100-cycle gap.
        return bank.accessFrame(0, 100).sub_shifts;
    };
    int solo = run(1);
    int interleaved = run(8);
    EXPECT_GE(interleaved, solo);
    EXPECT_GT(interleaved, 1);
}

TEST(TraceSim, ReplayedTraceDrivesTheHierarchy)
{
    PaperCalibratedErrorModel model;
    // Five lines at 256 KB stride: with capacity divisor 32 they
    // collide in the 2-way L1 and 4-way L2 (so every access misses
    // through to L3) and share one L3 set, landing in consecutive
    // ways of the same stripe group - every L3 access must shift.
    std::vector<MemRequest> trace = parseTrace("0 0x00000 R 2\n"
                                               "0 0x40000 R 2\n"
                                               "0 0x80000 W 2\n"
                                               "0 0xC0000 R 2\n"
                                               "0 0x100000 W 2\n");
    SimConfig cfg;
    cfg.hierarchy.llc_tech = MemTech::Racetrack;
    cfg.hierarchy.scheme = Scheme::PeccSAdaptive;
    cfg.hierarchy.capacity_divisor = 32;
    cfg.mem_requests = 2000;
    cfg.warmup_requests = 10;
    SimResult r = simulateTrace("pingpong", trace, cfg, &model);
    EXPECT_EQ(r.workload, "pingpong");
    EXPECT_EQ(r.mem_ops, 2000u);
    EXPECT_GT(r.shift_ops, 1000u); // nearly every access shifts
    EXPECT_GT(r.cycles, 0u);
}

TEST(TraceSim, DeterministicReplay)
{
    PaperCalibratedErrorModel model;
    std::vector<MemRequest> trace =
        parseTrace("0 0x000 R 1\n1 0x400 W 3\n2 0x800 R 2\n");
    SimConfig cfg;
    cfg.hierarchy.llc_tech = MemTech::Racetrack;
    cfg.hierarchy.capacity_divisor = 32;
    cfg.mem_requests = 500;
    cfg.warmup_requests = 0;
    SimResult a = simulateTrace("t", trace, cfg, &model);
    SimResult b = simulateTrace("t", trace, cfg, &model);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.shift_steps, b.shift_steps);
}

TEST(TraceSimDeathTest, EmptyTraceIsFatal)
{
    PaperCalibratedErrorModel model;
    SimConfig cfg;
    EXPECT_EXIT(simulateTrace("empty", {}, cfg, &model),
                ::testing::ExitedWithCode(1), "empty trace");
}

} // namespace
} // namespace rtm
