/**
 * @file
 * Unit tests for the adaptive shift policy engine.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/adapter.hh"
#include "device/error_model.hh"

namespace rtm
{
namespace
{

class AdapterFixture : public ::testing::Test
{
  protected:
    PaperCalibratedErrorModel model_;
    StsTiming timing_{kDefaultClockHz, 0.4e-9, 1.0e-9, 0.34e-9};
    ShiftPlanner planner_{&model_, timing_, 1, 7};
};

TEST_F(AdapterFixture, UnconstrainedAlwaysOneShot)
{
    ShiftAdapter a(&planner_, ShiftPolicy::Unconstrained, 83e6);
    for (Cycles t : {0u, 10u, 1000u}) {
        const SequencePlan &p = a.plan(7, t);
        EXPECT_EQ(p.parts, std::vector<int>{7});
    }
}

TEST_F(AdapterFixture, StepByStepDecomposesToOnes)
{
    ShiftAdapter a(&planner_, ShiftPolicy::StepByStep, 83e6);
    const SequencePlan &p = a.plan(5, 100);
    EXPECT_EQ(p.parts, (std::vector<int>{1, 1, 1, 1, 1}));
}

TEST_F(AdapterFixture, WorstCaseUsesFixedSafeDistance)
{
    // 83M accesses/s -> safe distance 3 (paper Sec. 5.2).
    ShiftAdapter a(&planner_, ShiftPolicy::WorstCase, 83e6);
    EXPECT_EQ(a.worstCaseSafeDistance(), 3);
    const SequencePlan &p = a.plan(7, 1);
    EXPECT_EQ(p.parts, (std::vector<int>{3, 3, 1}));
}

TEST_F(AdapterFixture, AdaptiveRelaxesWithLongIntervals)
{
    ShiftAdapter a(&planner_, ShiftPolicy::Adaptive, 83e6);
    // First request: no history -> most permissive plan.
    const SequencePlan &first = a.plan(7, 0);
    EXPECT_EQ(first.parts.size(), 1u);
    // Back-to-back request (tiny interval): safest decomposition.
    const SequencePlan &hot = a.plan(7, 2);
    EXPECT_EQ(hot.parts.size(), 7u);
    // A long quiet period relaxes the constraint again.
    const SequencePlan &cold = a.plan(7, 2 + 5000000);
    EXPECT_EQ(cold.parts.size(), 1u);
}

TEST_F(AdapterFixture, IntervalTracking)
{
    ShiftAdapter a(&planner_, ShiftPolicy::Adaptive, 83e6);
    a.plan(3, 1000);
    a.plan(3, 1500);
    EXPECT_EQ(a.lastInterval(), 500u);
    a.plan(3, 1400); // time went backwards (clamped)
    EXPECT_EQ(a.lastInterval(), 0u);
}

TEST_F(AdapterFixture, WorstCaseLatencyBetweenExtremes)
{
    // Fig. 14's ordering: adaptive <= worst-case <= step-by-step in
    // shift latency for a burst of back-to-back long shifts after a
    // long idle period.
    ShiftAdapter uncon(&planner_, ShiftPolicy::Unconstrained, 83e6);
    ShiftAdapter worst(&planner_, ShiftPolicy::WorstCase, 83e6);
    ShiftAdapter steps(&planner_, ShiftPolicy::StepByStep, 83e6);
    Cycles lu = uncon.plan(7, 0).latency;
    Cycles lw = worst.plan(7, 0).latency;
    Cycles ls = steps.plan(7, 0).latency;
    EXPECT_LE(lu, lw);
    EXPECT_LE(lw, ls);
}

TEST_F(AdapterFixture, ScratchPlanAccounting)
{
    ShiftAdapter a(&planner_, ShiftPolicy::WorstCase, 83e6);
    const SequencePlan &p = a.plan(7, 0);
    // Latency equals the sum of per-part one-shot latencies.
    Cycles expect = timing_.shiftCycles(3) * 2 +
                    timing_.shiftCycles(1);
    EXPECT_EQ(p.latency, expect);
    // Fail rate equals the union of the parts' rates.
    double rate = std::exp(p.log_fail_rate);
    double manual = 2 * std::exp(planner_.logFailRate(3)) +
                    std::exp(planner_.logFailRate(1));
    EXPECT_NEAR(rate, manual, 1e-3 * manual);
}

} // namespace
} // namespace rtm
