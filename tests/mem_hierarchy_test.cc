/**
 * @file
 * Unit tests for the three-level hierarchy and its technology
 * options.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace rtm
{
namespace
{

class HierarchyFixture : public ::testing::Test
{
  protected:
    PaperCalibratedErrorModel model_;

    Hierarchy
    make(MemTech tech, Scheme scheme = Scheme::PeccSAdaptive)
    {
        HierarchyConfig cfg;
        cfg.llc_tech = tech;
        cfg.scheme = scheme;
        return Hierarchy(cfg, &model_);
    }
};

TEST_F(HierarchyFixture, L1HitIsCheapest)
{
    Hierarchy h = make(MemTech::SRAM);
    h.access(0, 0x1000, false, 0);
    HierarchyAccess hit = h.access(0, 0x1000, false, 10);
    EXPECT_TRUE(hit.l1_hit);
    EXPECT_EQ(hit.latency, l1Params().read_latency);
}

TEST_F(HierarchyFixture, MissPathAccumulatesLatency)
{
    Hierarchy h = make(MemTech::SRAM);
    HierarchyAccess cold = h.access(0, 0x2000, false, 0);
    EXPECT_FALSE(cold.l1_hit);
    EXPECT_TRUE(cold.dram_access);
    // L1 + L2 + L3 + DRAM read latencies.
    Cycles expect = l1Params().read_latency +
                    l2Params().read_latency +
                    sramL3().read_latency +
                    dramParams().access_latency;
    EXPECT_EQ(cold.latency, expect);
}

TEST_F(HierarchyFixture, PrivateL1PerCore)
{
    Hierarchy h = make(MemTech::SRAM);
    h.access(0, 0x3000, false, 0);
    // Core 1 missing L1 but the line sits in the shared L2 of the
    // same cluster.
    HierarchyAccess r = h.access(1, 0x3000, false, 10);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_TRUE(r.l2_hit);
    // Core 2 is in the other cluster: misses L2, hits L3.
    HierarchyAccess r2 = h.access(2, 0x3000, false, 20);
    EXPECT_FALSE(r2.l2_hit);
    EXPECT_TRUE(r2.l3_hit);
}

TEST_F(HierarchyFixture, RacetrackLlcChargesShiftLatency)
{
    Hierarchy rm = make(MemTech::Racetrack);
    Hierarchy ideal = make(MemTech::RacetrackIdeal);
    // Touch two lines in the same stripe group at different
    // segment-local indices so the second access needs a shift.
    // Frames are allocated per L3 set/way; use addresses mapping to
    // adjacent frames.
    HierarchyAccess a1 = rm.access(0, 0x0, false, 0);
    HierarchyAccess a2 = ideal.access(0, 0x0, false, 0);
    EXPECT_GE(a1.latency, a2.latency);
    EXPECT_GT(rm.rmBank()->stats().shift_steps, 0u);
    // The ideal option tracks shifts but never charges them.
    EXPECT_EQ(a2.shift_cycles, 0u);
}

TEST_F(HierarchyFixture, SramHasNoBank)
{
    Hierarchy h = make(MemTech::SRAM);
    EXPECT_EQ(h.rmBank(), nullptr);
}

TEST_F(HierarchyFixture, LeakageSumsLevels)
{
    Hierarchy h = make(MemTech::SRAM);
    double w = h.totalLeakageWatts();
    double expect = 4 * l1Params().leakage_watts +
                    2 * l2Params().leakage_watts +
                    sramL3().leakage_watts;
    EXPECT_NEAR(w, expect, 1e-9);
}

TEST_F(HierarchyFixture, BiggerLlcKeepsBigWorkingSet)
{
    // An 8 MB working set fits the 128 MB racetrack LLC but not the
    // 4 MB SRAM LLC: after warmup the racetrack config stops going
    // to DRAM.
    Hierarchy sram = make(MemTech::SRAM);
    Hierarchy rm = make(MemTech::RacetrackIdeal);
    const uint64_t ws = 8ull << 20;
    for (int rep = 0; rep < 2; ++rep) {
        for (Addr a = 0; a < ws; a += 4096) {
            sram.access(0, a, false, 0);
            rm.access(0, a, false, 0);
        }
    }
    uint64_t sram_dram = sram.dramAccesses();
    uint64_t rm_dram = rm.dramAccesses();
    EXPECT_LT(rm_dram, sram_dram);
}

TEST_F(HierarchyFixture, EnergyAccumulatesPerLevel)
{
    Hierarchy h = make(MemTech::SRAM);
    HierarchyAccess cold = h.access(0, 0x4000, false, 0);
    double expect = l1Params().read_energy + l2Params().read_energy +
                    sramL3().read_energy +
                    dramParams().access_energy;
    EXPECT_NEAR(cold.energy, expect, 1e-12);
    EXPECT_NEAR(h.dramEnergy(), dramParams().access_energy, 1e-12);
}

TEST_F(HierarchyFixture, DirtyDataWritesBackThroughLevels)
{
    Hierarchy h = make(MemTech::SRAM);
    // Dirty a line, then thrash its L1 set so it must write back.
    Addr victim = 0x10000;
    h.access(0, victim, true, 0);
    uint64_t l1_sets = h.l1(0).sets();
    for (uint64_t i = 1; i <= 4; ++i)
        h.access(0, victim + i * l1_sets * 64, false, 10 * i);
    EXPECT_GT(h.l1(0).stats().writebacks, 0u);
}

} // namespace
} // namespace rtm
