/**
 * @file
 * Unit tests for the 1-D domain-wall motion ODE model: notch pinning,
 * above-threshold propagation, and the sub-threshold behaviour STS
 * relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "device/dwmotion.hh"

namespace rtm
{
namespace
{

constexpr double kDt = 1e-12;

TEST(DomainWall, GeometryHelpers)
{
    DeviceParams p;
    DomainWallModel m(p);
    EXPECT_DOUBLE_EQ(m.pitch(), p.pitch());
    EXPECT_TRUE(m.inNotchRegion(0.0));
    EXPECT_TRUE(m.inNotchRegion(0.49 * p.pinning_width));
    EXPECT_FALSE(m.inNotchRegion(0.51 * p.pinning_width));
    EXPECT_TRUE(m.inNotchRegion(m.pitch()));
    EXPECT_NEAR(m.notchOffset(m.pitch() + 1e-9), 1e-9, 1e-15);
    EXPECT_NEAR(m.notchOffset(-1e-9), -1e-9, 1e-15);
}

TEST(DomainWall, StaysPinnedWithoutDrive)
{
    DeviceParams p;
    DomainWallModel m(p);
    WallState st;
    WallState end = m.simulatePulse(st, 0.0, 1e-9, 1e-9, kDt);
    EXPECT_EQ(m.stepsTravelled(st.q, end.q), 0);
    EXPECT_TRUE(m.inNotchRegion(end.q));
}

TEST(DomainWall, AboveThresholdDriveMovesTheWall)
{
    DeviceParams p;
    DomainWallModel m(p);
    WallState st;
    // Strong drive for several nominal step times.
    WallState end = m.simulatePulse(st, p.shift_current_density,
                                    8e-9, 2e-9, kDt);
    EXPECT_GT(end.q, 0.25 * m.pitch());
}

TEST(DomainWall, MotionFollowsCurrentDirection)
{
    DeviceParams p;
    DomainWallModel m(p);
    WallState st;
    WallState fwd = m.simulatePulse(st, p.shift_current_density,
                                    4e-9, 0.0, kDt);
    WallState bwd = m.simulatePulse(st, -p.shift_current_density,
                                    4e-9, 0.0, kDt);
    EXPECT_GT(fwd.q, st.q);
    EXPECT_LT(bwd.q, st.q);
}

TEST(DomainWall, SubThresholdDriveCannotEscapeNotch)
{
    // The STS principle: a drive below J0 cannot pull a pinned wall
    // out of its notch region.
    DeviceParams p;
    DomainWallModel m(p);
    WallState st; // pinned at notch centre
    double j_sub = 0.3 * p.thresholdCurrentDensity();
    WallState end = m.simulatePulse(st, j_sub, 5e-9, 2e-9, kDt);
    EXPECT_EQ(m.stepsTravelled(st.q, end.q), 0);
}

TEST(DomainWall, SubThresholdDriveCrossesFlatRegion)
{
    // A wall resting in the flat region (stop-in-middle) is pushed
    // forward by the same sub-threshold drive.
    DeviceParams p;
    DomainWallModel m(p);
    WallState st;
    st.q = 0.5 * m.pitch(); // middle of the flat region
    double j_sub = 0.3 * p.thresholdCurrentDensity();
    WallState end = m.simulatePulse(st, j_sub, 3e-9, 0.0, kDt);
    EXPECT_GT(end.q, st.q + 0.05 * m.pitch());
}

TEST(DomainWall, TrajectoryIsRecordedAndMonotonicInTime)
{
    DeviceParams p;
    DomainWallModel m(p);
    WallState st;
    std::vector<TrajectoryPoint> traj;
    m.simulatePulse(st, p.shift_current_density, 1e-9, 0.5e-9, kDt,
                    &traj);
    ASSERT_GT(traj.size(), 10u);
    for (size_t i = 1; i < traj.size(); ++i)
        EXPECT_GT(traj[i].t, traj[i - 1].t);
    EXPECT_NEAR(traj.back().t, 1.5e-9, 2 * kDt);
}

TEST(DomainWall, StepsTravelledRounds)
{
    DeviceParams p;
    DomainWallModel m(p);
    EXPECT_EQ(m.stepsTravelled(0.0, 1.02 * m.pitch()), 1);
    EXPECT_EQ(m.stepsTravelled(0.0, -2.98 * m.pitch()), -3);
    EXPECT_EQ(m.stepsTravelled(0.0, 0.4 * m.pitch()), 0);
}

} // namespace
} // namespace rtm
