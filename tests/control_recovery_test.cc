/**
 * @file
 * End-to-end tests of the controller's bounded recovery ladder:
 * inject -> detect -> retry / STS stage-2 realign / scrub -> counters
 * reconcile, including the retry-budget-exhausted -> DUE path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "control/controller.hh"
#include "device/fault_scenario.hh"

namespace rtm
{
namespace
{

PeccConfig
secdedConfig()
{
    PeccConfig c;
    c.num_segments = 2;
    c.seg_len = 8;
    c.correct = 1;
    c.variant = PeccVariant::Standard;
    return c;
}

RecoveryConfig
fullLadder()
{
    RecoveryConfig r;
    r.retry_budget = 1;
    r.sts_realign = true;
    r.allow_scrub = true;
    return r;
}

TEST(Recovery, RetryRungRecoversAfterInlineRoundsExhaust)
{
    // The shift lands +1 off; every in-line counter-shift overshoots
    // by one more step, so the bounded in-line rounds ping-pong and
    // exhaust. The ladder's verify-and-retry then converges (the
    // script runs dry and shifts become clean).
    ScriptedErrorModel model({{1, false},
                             {1, false},
                             {1, false},
                             {1, false},
                             {1, false}});
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Unconstrained, 83e6, Rng(1),
                        kDefaultSafeMttfSeconds, fullLadder());
    ctl.initialize();
    AccessResult r = ctl.read(0, 3, 0);
    EXPECT_FALSE(r.due);
    EXPECT_TRUE(r.position_ok);
    const ControllerStats &s = ctl.stats();
    EXPECT_EQ(s.detected_errors, 1u);
    EXPECT_EQ(s.retry_attempts, 1u);
    EXPECT_EQ(s.recovered_retry, 1u);
    EXPECT_EQ(s.sts_realigns, 0u);
    EXPECT_EQ(s.scrubs, 0u);
    EXPECT_EQ(s.unrecoverable, 0u);
    EXPECT_GT(s.recovery_cycles, 0u);
    EXPECT_GE(s.busy_cycles, s.recovery_cycles);
    EXPECT_EQ(controllerLedgerViolation(s), "");
}

TEST(Recovery, StopInMiddleRealignsThroughStageTwo)
{
    // Stop-in-middle: walls stranded in the flat region, the code
    // window reads undefined, so the decode is uncorrectable and
    // rung-1 retries cannot help. The STS stage-2 pulse walks the
    // walls into the next notch; the follow-up verify sees a clean
    // +1 out-of-step and corrects it.
    ScriptedErrorModel model({{0, true}});
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Unconstrained, 83e6, Rng(2),
                        kDefaultSafeMttfSeconds, fullLadder());
    ctl.initialize();
    AccessResult r = ctl.read(0, 3, 0);
    EXPECT_FALSE(r.due);
    EXPECT_TRUE(r.position_ok);
    const ControllerStats &s = ctl.stats();
    EXPECT_EQ(s.detected_errors, 1u);
    EXPECT_EQ(s.retry_attempts, 1u);
    EXPECT_EQ(s.recovered_retry, 0u);
    EXPECT_EQ(s.sts_realigns, 1u);
    EXPECT_EQ(s.recovered_realign, 1u);
    EXPECT_EQ(s.scrubs, 0u);
    EXPECT_EQ(s.unrecoverable, 0u);
    EXPECT_EQ(ctl.stripe().positionError(), 0);
    EXPECT_EQ(controllerLedgerViolation(s), "");
}

TEST(Recovery, ScrubRungRebuildsAndDataSurvives)
{
    // A +2 error is detected but uncorrectable at m=1; retries and
    // the stage-2 pulse cannot fix a pinned out-of-step error, so
    // the ladder falls through to the scrub, which rebuilds the
    // stripe at home alignment. The re-planned seek then completes
    // and the write lands; a later read returns it.
    ScriptedErrorModel model({{2, false}});
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Unconstrained, 83e6, Rng(3),
                        kDefaultSafeMttfSeconds, fullLadder());
    ctl.initialize();
    AccessResult w = ctl.write(0, 3, Bit::One, 0);
    EXPECT_FALSE(w.due);
    EXPECT_TRUE(w.position_ok);
    const ControllerStats &s = ctl.stats();
    EXPECT_EQ(s.detected_errors, 1u);
    EXPECT_EQ(s.scrubs, 1u);
    EXPECT_EQ(s.recovered_scrub, 1u);
    EXPECT_EQ(s.unrecoverable, 0u);
    EXPECT_EQ(controllerLedgerViolation(s), "");
    EXPECT_EQ(ctl.read(0, 3, 100).value, Bit::One);
}

TEST(Recovery, BudgetExhaustedReportsDue)
{
    // Same +2 uncorrectable error, but with the realign and scrub
    // rungs disabled the ladder runs out after its retry budget and
    // the episode must surface as a DUE.
    ScriptedErrorModel model({{2, false}});
    RecoveryConfig cfg;
    cfg.retry_budget = 2;
    cfg.sts_realign = false;
    cfg.allow_scrub = false;
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Unconstrained, 83e6, Rng(4),
                        kDefaultSafeMttfSeconds, cfg);
    ctl.initialize();
    AccessResult r = ctl.read(0, 3, 0);
    EXPECT_TRUE(r.due);
    EXPECT_FALSE(r.position_ok);
    const ControllerStats &s = ctl.stats();
    EXPECT_EQ(s.retry_attempts, 2u);
    EXPECT_EQ(s.recovered_retry, 0u);
    EXPECT_EQ(s.unrecoverable, 1u);
    EXPECT_EQ(controllerLedgerViolation(s), "");
}

TEST(Recovery, PersistentlyStuckStripeEndsInDueNotALoop)
{
    // A stuck stripe eats one step of every drive, so corrections
    // are no-ops: in-line rounds exhaust, retry and realign fail,
    // and only the scrub (a poke-path rebuild) restores alignment.
    // But the re-planned seek hits the same dead notch, so the
    // replan budget bounds the episode and the access ends in a
    // reported DUE instead of an unbounded retry loop.
    auto zero = std::make_shared<ZeroErrorModel>();
    StuckStripeScenario stuck(zero, 0, 1000000);
    ShiftController ctl(secdedConfig(), &stuck,
                        ShiftPolicy::Unconstrained, 83e6, Rng(5),
                        kDefaultSafeMttfSeconds, fullLadder());
    ctl.initialize();
    AccessResult r = ctl.read(0, 3, 0);
    EXPECT_TRUE(r.due);
    const ControllerStats &s = ctl.stats();
    // max_replans = 2: three failed episodes, three scrubs, the last
    // recovery re-classified as the DUE.
    EXPECT_EQ(s.scrubs, 3u);
    EXPECT_EQ(s.recovered_scrub, 2u);
    EXPECT_EQ(s.unrecoverable, 1u);
    EXPECT_EQ(s.detected_errors, 3u);
    EXPECT_EQ(controllerLedgerViolation(s), "");
    EXPECT_GT(stuck.ledger().injected, 0u);
}

TEST(Recovery, DefaultConfigKeepsLegacyImmediateDue)
{
    // RecoveryConfig default (budget 0) must preserve the historical
    // contract: an uncorrectable detection is an immediate DUE with
    // no ladder activity.
    ScriptedErrorModel model({{2, false}});
    ShiftController ctl(secdedConfig(), &model,
                        ShiftPolicy::Unconstrained, 83e6, Rng(6));
    ctl.initialize();
    AccessResult r = ctl.read(0, 3, 0);
    EXPECT_TRUE(r.due);
    const ControllerStats &s = ctl.stats();
    EXPECT_EQ(s.retry_attempts, 0u);
    EXPECT_EQ(s.sts_realigns, 0u);
    EXPECT_EQ(s.scrubs, 0u);
    EXPECT_EQ(s.recovery_cycles, 0u);
    EXPECT_EQ(s.unrecoverable, 1u);
    EXPECT_EQ(controllerLedgerViolation(s), "");
}

TEST(Recovery, StatsMergeSumsEveryLadderField)
{
    ControllerStats a, b;
    a.detected_errors = 3;
    a.recovered_retry = 1;
    a.recovery_cycles = 40;
    b.detected_errors = 2;
    b.recovered_scrub = 2;
    b.scrubs = 2;
    b.recovery_cycles = 60;
    a.merge(b);
    EXPECT_EQ(a.detected_errors, 5u);
    EXPECT_EQ(a.recovered_retry, 1u);
    EXPECT_EQ(a.recovered_scrub, 2u);
    EXPECT_EQ(a.scrubs, 2u);
    EXPECT_EQ(a.recovery_cycles, 100u);
}

TEST(Recovery, LedgerCheckerFlagsMismatches)
{
    ControllerStats s;
    s.detected_errors = 2;
    s.corrected_errors = 1;
    EXPECT_NE(controllerLedgerViolation(s), "");
    s.unrecoverable = 1;
    EXPECT_EQ(controllerLedgerViolation(s), "");
    s.recovered_scrub = 1;
    s.detected_errors = 3;
    EXPECT_NE(controllerLedgerViolation(s), ""); // scrubs == 0
    s.scrubs = 1;
    EXPECT_EQ(controllerLedgerViolation(s), "");
}

} // namespace
} // namespace rtm
