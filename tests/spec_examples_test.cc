/**
 * @file
 * Round-trips every checked-in examples/specs/*.json through the
 * spec parser, normalizer and emitter. A spec that ships with the
 * repo must load without a single diagnostic, survive
 * parse -> emit -> parse as the identity, and expand to a non-empty
 * cell list — catching schema drift the moment a field is renamed.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace rtm
{
namespace
{

std::vector<std::string>
exampleSpecPaths()
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(RTM_REPO_DIR) / "examples" / "specs";
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".json")
            paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    return paths;
}

TEST(SpecExamples, DirectoryIsNotEmpty)
{
    EXPECT_FALSE(exampleSpecPaths().empty());
}

TEST(SpecExamples, EveryShippedSpecLoadsCleanly)
{
    for (const std::string &path : exampleSpecPaths()) {
        ExperimentSpec spec;
        std::string diag;
        EXPECT_TRUE(loadExperimentSpec(path, &spec, &diag))
            << path << ":\n" << diag;
        EXPECT_TRUE(diag.empty()) << path << ":\n" << diag;
    }
}

TEST(SpecExamples, ParseEmitParseIsIdentity)
{
    for (const std::string &path : exampleSpecPaths()) {
        ExperimentSpec spec;
        std::string diag;
        ASSERT_TRUE(loadExperimentSpec(path, &spec, &diag))
            << path << ":\n" << diag;

        const JsonValue emitted = experimentSpecToJson(spec);
        ExperimentSpec reparsed;
        ASSERT_TRUE(
            experimentSpecFromJson(emitted, &reparsed, &diag))
            << path << ":\n" << diag;
        EXPECT_TRUE(spec == reparsed) << path;
        EXPECT_EQ(emitted.dump(),
                  experimentSpecToJson(reparsed).dump())
            << path;
        EXPECT_EQ(experimentSpecHash(spec),
                  experimentSpecHash(reparsed))
            << path;
    }
}

TEST(SpecExamples, EveryShippedSpecExpandsToCells)
{
    for (const std::string &path : exampleSpecPaths()) {
        ExperimentSpec spec;
        std::string diag;
        ASSERT_TRUE(loadExperimentSpec(path, &spec, &diag))
            << path << ":\n" << diag;
        EXPECT_FALSE(expandCells(spec).empty()) << path;
    }
}

} // anonymous namespace
} // namespace rtm
