/**
 * @file
 * Coverage for paths the module suites exercise lightly: controller
 * writes under p-ECC-O, hierarchy core-count variants, the matrix
 * runner, layout phase math, stripe shift-and-write direction
 * semantics, and the capacity-divisor plumbing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "codec/protected_stripe.hh"
#include "control/controller.hh"
#include "mem/hierarchy.hh"
#include "sim/runner.hh"

namespace rtm
{
namespace
{

TEST(ControllerPeccO, WriteReadRoundTripUnderFaults)
{
    auto base = std::make_shared<PaperCalibratedErrorModel>();
    ScaledErrorModel model(base, 200.0);
    PeccConfig c;
    c.num_segments = 2;
    c.seg_len = 8;
    c.correct = 1;
    c.variant = PeccVariant::OverheadRegion;
    ShiftController ctl(c, &model, ShiftPolicy::Adaptive, 83e6,
                        Rng(77));
    ctl.initialize();
    Cycles t = 0;
    // Write a pattern, churn, read back.
    for (int idx = 0; idx < 8; ++idx) {
        ctl.write(0, idx, idx % 2 ? Bit::One : Bit::Zero, t);
        ctl.write(1, idx, idx % 3 ? Bit::One : Bit::Zero, t + 50);
        t += 2000;
    }
    Rng dice(5);
    for (int i = 0; i < 500; ++i) {
        ctl.read(static_cast<int>(dice.uniformInt(2)),
                 static_cast<int>(dice.uniformInt(8)), t);
        t += 1000;
    }
    EXPECT_EQ(ctl.stats().silent_errors, 0u);
    int mismatches = 0;
    for (int idx = 0; idx < 8; ++idx) {
        AccessResult r0 = ctl.read(0, idx, t);
        t += 2000;
        AccessResult r1 = ctl.read(1, idx, t);
        t += 2000;
        if (!r0.due &&
            r0.value != (idx % 2 ? Bit::One : Bit::Zero))
            ++mismatches;
        if (!r1.due &&
            r1.value != (idx % 3 ? Bit::One : Bit::Zero))
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0);
}

class CoreCountSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CoreCountSweep, HierarchyScalesWithCores)
{
    int cores = GetParam();
    PaperCalibratedErrorModel model;
    HierarchyConfig cfg;
    cfg.cores = cores;
    cfg.llc_tech = MemTech::Racetrack;
    Hierarchy h(cfg, &model);
    // Every core can access; L1s are private.
    for (int core = 0; core < cores; ++core) {
        HierarchyAccess a =
            h.access(core, 0x1000 + 64 * core, false, 0);
        EXPECT_GT(a.latency, 0u);
    }
    for (int core = 0; core < cores; ++core)
        EXPECT_EQ(h.l1(core).stats().accesses(), 1u);
    // Leakage includes one L1 per core and one L2 per pair.
    double expect = cores * l1Params().leakage_watts +
                    ((cores + 1) / 2) * l2Params().leakage_watts +
                    racetrackL3().leakage_watts;
    EXPECT_NEAR(h.totalLeakageWatts(), expect, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCountSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(CapacityDivisor, ShrinksEveryLevel)
{
    PaperCalibratedErrorModel model;
    HierarchyConfig cfg;
    cfg.llc_tech = MemTech::SRAM;
    cfg.capacity_divisor = 8;
    Hierarchy h(cfg, &model);
    EXPECT_EQ(h.l1(0).capacityBytes(),
              l1Params().capacity_bytes / 8);
    EXPECT_EQ(h.l2(0).capacityBytes(),
              l2Params().capacity_bytes / 8);
    EXPECT_EQ(h.l3().capacityBytes(),
              sramL3().capacity_bytes / 8);
}

TEST(CapacityDivisorDeathTest, RejectsDegenerateL1)
{
    PaperCalibratedErrorModel model;
    HierarchyConfig cfg;
    cfg.capacity_divisor = 4096;
    EXPECT_EXIT(Hierarchy(cfg, &model),
                ::testing::ExitedWithCode(1), "L1 below");
}

TEST(Runner, MatrixShapesAndNormalisation)
{
    PaperCalibratedErrorModel model;
    std::vector<LlcOption> options = {
        {"SRAM", MemTech::SRAM, Scheme::Baseline},
        {"RM", MemTech::Racetrack, Scheme::PeccSAdaptive},
    };
    auto rows = runMatrix(options, &model, 3000, 500, 32);
    EXPECT_EQ(rows.size(), parsecProfiles().size());
    for (const auto &row : rows) {
        ASSERT_EQ(row.results.size(), options.size());
        EXPECT_EQ(row.results[0].llc_tech, MemTech::SRAM);
        EXPECT_EQ(row.results[1].scheme, Scheme::PeccSAdaptive);
        EXPECT_GT(row.results[0].cycles, 0u);
    }
}

TEST(Runner, ScaledProfileFloorsTinyWorkingSets)
{
    WorkloadProfile p = parsecProfile("swaptions");
    WorkloadProfile s = scaledProfile(p, 1ull << 40);
    EXPECT_GE(s.working_set_bytes, 64u * 16);
}

TEST(Layout, ExpectedPhaseTracksOffsetBothVariants)
{
    for (PeccVariant v : {PeccVariant::Standard,
                          PeccVariant::OverheadRegion}) {
        PeccConfig c;
        c.num_segments = 2;
        c.seg_len = 8;
        c.correct = 1;
        c.variant = v;
        PeccLayout lay = computeLayout(c);
        int t = 4; // SECDED period
        for (int o = 0; o < 8; ++o) {
            // Shifting right by one decrements the phase by one
            // (mod T): the window slides backwards along the code.
            int now = lay.expectedPhase(o, t);
            int next = lay.expectedPhase(o + 1, t);
            EXPECT_EQ((now - next + t) % t, 1)
                << "variant " << static_cast<int>(v) << " o=" << o;
        }
        if (v == PeccVariant::OverheadRegion) {
            int now = lay.expectedLeftPhase(3, t);
            int next = lay.expectedLeftPhase(4, t);
            EXPECT_EQ((now - next + t) % t, 1);
        }
    }
}

TEST(Stripe, ShiftAndWriteUnderInjectedError)
{
    // An over-shift during shift-and-write still programs the
    // domain at the end port; deeper entered domains stay X.
    ScriptedErrorModel model({{+1, false}});
    std::vector<Port> ports = {{4, PortKind::ReadWrite}};
    RacetrackStripe s(8, ports, &model, Rng(1));
    for (int i = 0; i < 8; ++i)
        s.poke(i, Bit::Zero);
    s.shiftAndWrite(Bit::One, true);
    EXPECT_EQ(s.trueOffset(), 2);
    EXPECT_EQ(s.peek(0), Bit::One); // programmed at the port
    EXPECT_EQ(s.peek(1), Bit::X);   // the extra entered domain
    EXPECT_EQ(s.peek(2), Bit::Zero);
}

TEST(Stripe, ShiftAndWriteLeftDirection)
{
    ZeroErrorModel model;
    std::vector<Port> ports = {{4, PortKind::ReadWrite}};
    RacetrackStripe s(8, ports, &model, Rng(2));
    for (int i = 0; i < 8; ++i)
        s.poke(i, Bit::Zero);
    s.shiftAndWrite(Bit::One, false);
    EXPECT_EQ(s.trueOffset(), -1);
    EXPECT_EQ(s.peek(7), Bit::One);
    EXPECT_EQ(s.peek(0), Bit::Zero);
}

TEST(Controller, SegmentsAreIndependentColumns)
{
    // Writing through segment s's port must never disturb other
    // segments' data at any index.
    ZeroErrorModel model;
    PeccConfig c;
    c.num_segments = 4;
    c.seg_len = 8;
    c.correct = 1;
    c.variant = PeccVariant::Standard;
    ShiftController ctl(c, &model, ShiftPolicy::Unconstrained,
                        83e6, Rng(3));
    ctl.initialize();
    Cycles t = 0;
    for (int idx = 0; idx < 8; ++idx) {
        ctl.write(2, idx, Bit::One, t);
        t += 100;
    }
    for (int idx = 0; idx < 8; ++idx) {
        EXPECT_EQ(ctl.read(0, idx, t).value, Bit::Zero);
        EXPECT_EQ(ctl.read(2, idx, t + 1).value, Bit::One);
        EXPECT_EQ(ctl.read(3, idx, t + 2).value, Bit::Zero);
        t += 100;
    }
}

} // namespace
} // namespace rtm
