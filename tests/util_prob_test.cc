/**
 * @file
 * Unit tests for the log-domain probability helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/prob.hh"

namespace rtm
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogNormalTail, MatchesErfcInNormalRange)
{
    for (double x : {-3.0, -1.0, 0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
        double direct = 0.5 * std::erfc(x / std::sqrt(2.0));
        EXPECT_NEAR(logNormalTail(x), std::log(direct),
                    1e-10 * std::abs(std::log(direct)) + 1e-12)
            << "x = " << x;
    }
}

TEST(LogNormalTail, QZeroIsHalf)
{
    EXPECT_NEAR(normalTail(0.0), 0.5, 1e-12);
}

TEST(LogNormalTail, DeepTailIsFiniteAndMonotonic)
{
    // erfc underflows near x ~ 38; the asymptotic branch must keep
    // producing finite, strictly decreasing log-probabilities.
    double prev = logNormalTail(20.0);
    for (double x = 25.0; x <= 200.0; x += 5.0) {
        double lp = logNormalTail(x);
        EXPECT_TRUE(std::isfinite(lp)) << "x = " << x;
        EXPECT_LT(lp, prev) << "x = " << x;
        prev = lp;
    }
    // Q(40) ~ 1.4e-350: check the magnitude via the classic bound
    // phi(x)/x * (1 - 1/x^2) < Q(x) < phi(x)/x.
    double x = 40.0;
    double upper = logNormalPdf(x) - std::log(x);
    EXPECT_LT(logNormalTail(x), upper + 1e-9);
    EXPECT_GT(logNormalTail(x), upper + std::log1p(-1.0 / (x * x)) -
                                    1e-9);
}

TEST(LogSumExp, BasicIdentities)
{
    EXPECT_NEAR(logSumExp(std::log(0.25), std::log(0.25)),
                std::log(0.5), 1e-12);
    EXPECT_DOUBLE_EQ(logSumExp(-kInf, -2.0), -2.0);
    EXPECT_DOUBLE_EQ(logSumExp(-2.0, -kInf), -2.0);
    // Extreme magnitude difference: the big term dominates exactly.
    EXPECT_DOUBLE_EQ(logSumExp(0.0, -800.0), 0.0);
}

TEST(LogDiffExp, BasicIdentities)
{
    EXPECT_NEAR(logDiffExp(std::log(0.75), std::log(0.25)),
                std::log(0.5), 1e-12);
    EXPECT_DOUBLE_EQ(logDiffExp(-1.5, -kInf), -1.5);
    EXPECT_EQ(logDiffExp(-2.0, -2.0), -kInf);
}

TEST(Log1mExp, CoversBothBranches)
{
    // Near zero (complement of a near-certain event).
    EXPECT_NEAR(log1mExp(-1e-10), std::log(1e-10), 1e-4);
    // Deeply negative (complement of a rare event ~ a itself).
    EXPECT_NEAR(log1mExp(-50.0), -std::exp(-50.0), 1e-30);
    EXPECT_EQ(log1mExp(0.0), -kInf);
}

TEST(LogAnyOf, SmallRateTimesCount)
{
    // P(any of n) ~ n*p for tiny p.
    double lp = std::log(1e-12);
    double any = std::exp(logAnyOf(lp, 1000.0));
    EXPECT_NEAR(any, 1e-9, 1e-12);
}

TEST(LogAnyOf, SaturatesAtOne)
{
    double lp = std::log(0.5);
    EXPECT_NEAR(std::exp(logAnyOf(lp, 1000.0)), 1.0, 1e-12);
    EXPECT_EQ(logAnyOf(lp, 0.0), -kInf);
}

TEST(MttfSeconds, InverseOfRateTimesProbability)
{
    // p = 1e-6, rate = 1e6 /s -> one failure per second.
    EXPECT_NEAR(mttfSeconds(std::log(1e-6), 1e6), 1.0, 1e-9);
    // Paper Fig. 1 anchor: p = 1e-19 at high intensity yields ~10y.
    double mttf = mttfSeconds(std::log(1e-19), 3.2e9);
    EXPECT_NEAR(mttf / kSecondsPerYear, 99.0, 1.0);
}

TEST(MttfSeconds, EdgeCases)
{
    EXPECT_EQ(mttfSeconds(-kInf, 1e9), kInf);
    EXPECT_EQ(mttfSeconds(std::log(0.5), 0.0), kInf);
    // Deep log-probabilities must not underflow to zero rates.
    double lp = -800.0; // e^-800 underflows a double
    EXPECT_TRUE(std::isinf(mttfSeconds(lp, 1e9)) ||
                mttfSeconds(lp, 1e9) > 1e300);
}

TEST(Fit, RoundTripAndPaperAnchor)
{
    // Paper Sec. 2.2: 11415 FIT == 10-year MTTF.
    double mttf = fitToMttfSeconds(11415.0);
    EXPECT_NEAR(mttf / kSecondsPerYear, 10.0, 0.01);
    EXPECT_NEAR(mttfSecondsToFit(mttf), 11415.0, 0.1);
}

TEST(LogNormalTailBatch, MatchesScalarBitwise)
{
    // The batched Gaussian tail is the exact-tier dependency of the
    // fitted model's logProbStepRange: every element must be
    // bit-identical to the scalar evaluation.
    std::vector<double> xs;
    for (int i = -80; i <= 80; ++i)
        xs.push_back(0.125 * i);
    xs.push_back(-kInf);
    xs.push_back(kInf);
    xs.push_back(0.0);
    xs.push_back(38.6); // deep-tail asymptotic branch
    std::vector<double> out(xs.size());
    logNormalTailBatch(xs.data(), out.data(), xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        ASSERT_EQ(out[i], logNormalTail(xs[i])) << "x=" << xs[i];
    // Zero-length and single-element calls are valid.
    logNormalTailBatch(xs.data(), out.data(), 0);
    logNormalTailBatch(xs.data(), out.data(), 1);
    EXPECT_EQ(out[0], logNormalTail(xs[0]));
}

} // namespace
} // namespace rtm
