/**
 * @file
 * Unit tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/workload.hh"
#include "util/stats.hh"

namespace rtm
{
namespace
{

TEST(Profiles, AllTwelvePaperWorkloadsPresent)
{
    auto profiles = parsecProfiles();
    EXPECT_EQ(profiles.size(), 12u);
    std::set<std::string> names;
    for (const auto &p : profiles)
        names.insert(p.name);
    for (const char *n :
         {"blackscholes", "bodytrack", "canneal", "dedup", "facesim",
          "ferret", "fluidanimate", "freqmine", "streamcluster",
          "swaptions", "vips", "x264"}) {
        EXPECT_TRUE(names.count(n)) << n;
    }
}

TEST(Profiles, CapacityDivideMatchesLlcSizes)
{
    // Sensitive workloads: between the 4 MB SRAM and 128 MB
    // racetrack LLCs. Insensitive: fit in 4 MB.
    for (const auto &p : parsecProfiles()) {
        if (p.capacity_sensitive) {
            EXPECT_GT(p.working_set_bytes, 4ull << 20) << p.name;
            EXPECT_LT(p.working_set_bytes, 128ull << 20) << p.name;
        } else {
            EXPECT_LE(p.working_set_bytes, 4ull << 20) << p.name;
        }
    }
}

TEST(Profiles, SixSensitiveSixInsensitive)
{
    int sensitive = 0;
    for (const auto &p : parsecProfiles())
        sensitive += p.capacity_sensitive;
    EXPECT_EQ(sensitive, 6);
}

TEST(Profiles, LookupByName)
{
    WorkloadProfile p = parsecProfile("canneal");
    EXPECT_EQ(p.name, "canneal");
    EXPECT_TRUE(p.capacity_sensitive);
    EXPECT_EXIT(parsecProfile("nonexistent"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Generator, RoundRobinCores)
{
    WorkloadGenerator gen(parsecProfile("blackscholes"), 4, 1);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(gen.next().core, i % 4);
}

TEST(Generator, AddressesStayInWorkingSet)
{
    WorkloadProfile p = parsecProfile("ferret");
    WorkloadGenerator gen(p, 4, 2);
    for (int i = 0; i < 20000; ++i) {
        MemRequest r = gen.next();
        EXPECT_LT(r.addr, p.working_set_bytes);
    }
}

TEST(Generator, WriteRatioMatchesProfile)
{
    WorkloadProfile p = parsecProfile("dedup");
    WorkloadGenerator gen(p, 4, 3);
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += gen.next().is_write;
    EXPECT_NEAR(static_cast<double>(writes) / n, p.write_ratio,
                0.02);
}

TEST(Generator, GapMeanMatchesProfile)
{
    WorkloadProfile p = parsecProfile("blackscholes");
    WorkloadGenerator gen(p, 4, 4);
    RunningStats gaps;
    for (int i = 0; i < 50000; ++i)
        gaps.add(gen.next().gap_instructions);
    // Geometric-ish gap with the configured mean (floor truncation
    // biases slightly low).
    EXPECT_NEAR(gaps.mean(), p.mean_gap, 0.8);
}

TEST(Generator, SequentialRunsExist)
{
    WorkloadProfile p = parsecProfile("streamcluster");
    WorkloadGenerator gen(p, 1, 5);
    int sequential = 0;
    const int n = 20000;
    Addr prev = 0;
    for (int i = 0; i < n; ++i) {
        MemRequest r = gen.next();
        if (i > 0 && r.addr == prev + 64)
            ++sequential;
        prev = r.addr;
    }
    // streamcluster is highly streaming: most accesses continue a
    // sequential run.
    EXPECT_GT(static_cast<double>(sequential) / n, 0.5);
}

TEST(Generator, HotSetConcentratesAccesses)
{
    WorkloadProfile p = parsecProfile("canneal");
    p.sequential_prob = 0.0; // isolate the hot-set effect
    WorkloadGenerator gen(p, 1, 6);
    IntTally lines;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        lines.add(static_cast<int64_t>(gen.next().addr / 64));
    // The top-decile of the working set absorbs most accesses.
    uint64_t hot_boundary =
        static_cast<uint64_t>(p.working_set_bytes / 64 *
                              p.hot_set_ratio);
    uint64_t hot_hits = 0;
    for (const auto &[line, count] : lines.entries())
        if (static_cast<uint64_t>(line) % (p.working_set_bytes / 64 /
            4 * 3) < hot_boundary)
            hot_hits += count;
    EXPECT_GT(static_cast<double>(hot_hits) / n, 0.3);
}

TEST(Generator, DeterministicGivenSeed)
{
    WorkloadGenerator a(parsecProfile("vips"), 4, 42);
    WorkloadGenerator b(parsecProfile("vips"), 4, 42);
    for (int i = 0; i < 1000; ++i) {
        MemRequest ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.is_write, rb.is_write);
        EXPECT_EQ(ra.gap_instructions, rb.gap_instructions);
    }
}

} // namespace
} // namespace rtm
