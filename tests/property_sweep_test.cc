/**
 * @file
 * Cross-cutting property sweeps: invariants that must hold across
 * the whole configuration space, exercised with parameterised
 * gtest over (strength, variant, segment shape, seed) tuples.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "codec/protected_stripe.hh"
#include "control/planner.hh"
#include "device/error_model.hh"
#include "model/reliability.hh"
#include "util/prob.hh"

namespace rtm
{
namespace
{

// ---------------------------------------------------------------
// 1. Every correctable scripted error is corrected, every detectable
//    one flagged, across strengths, shapes and variants.
// ---------------------------------------------------------------

struct ScriptCase
{
    int m;            //!< strength
    int lseg;         //!< segment length
    PeccVariant variant;
    int error;        //!< injected signed step error
};

class ScriptedErrorMatrix
    : public ::testing::TestWithParam<ScriptCase>
{
};

TEST_P(ScriptedErrorMatrix, OutcomeMatchesCodeStrength)
{
    const ScriptCase &c = GetParam();
    auto model = std::make_unique<ScriptedErrorModel>(
        std::vector<ShiftOutcome>{{c.error, false}});
    PeccConfig cfg;
    cfg.num_segments = 2;
    cfg.seg_len = c.lseg;
    cfg.correct = c.m;
    cfg.variant = c.variant;
    ProtectedStripe ps(cfg, model.get(), Rng(99));
    ps.initializeIdeal();

    int distance = std::min(3, c.lseg - 1);
    auto res = ps.shiftBy(distance);

    int t = 1 << (c.m + 1);
    int diff = ((c.error % t) + t) % t;
    if (diff == 0) {
        // Aliases to clean: silent (the SDC channel).
        EXPECT_FALSE(res.detected);
        if (c.error != 0) {
            EXPECT_NE(ps.positionError(), 0);
        }
    } else if (diff <= c.m || t - diff <= c.m) {
        int inferred = diff <= c.m ? diff : -(t - diff);
        EXPECT_TRUE(res.detected);
        if (inferred == c.error) {
            EXPECT_TRUE(res.corrected);
            EXPECT_EQ(ps.positionError(), 0);
        } else {
            // Miscorrection: worse off, silently.
            EXPECT_NE(ps.positionError(), 0);
        }
    } else {
        EXPECT_TRUE(res.detected);
        EXPECT_TRUE(res.unrecoverable);
    }
}

std::vector<ScriptCase>
scriptCases()
{
    std::vector<ScriptCase> cases;
    for (int m : {0, 1, 2}) {
        for (int lseg : {8, 16}) {
            for (PeccVariant v : {PeccVariant::Standard,
                                  PeccVariant::OverheadRegion}) {
                // p-ECC-O checks after every 1-step move; multi-step
                // scripted errors beyond detection get tangled with
                // the per-step protocol, so keep |e| within the
                // detectable range there.
                int emax = v == PeccVariant::Standard ? m + 2
                                                      : m + 1;
                for (int e = -emax; e <= emax; ++e) {
                    if (e == 0)
                        continue;
                    cases.push_back({m, lseg, v, e});
                }
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScriptedErrorMatrix,
                         ::testing::ValuesIn(scriptCases()));

// ---------------------------------------------------------------
// 2. Planner invariants across distances and reliability budgets.
// ---------------------------------------------------------------

class PlannerSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(PlannerSweep, FrontInvariants)
{
    auto [max_part, budget] = GetParam();
    PaperCalibratedErrorModel model;
    StsTiming timing(kDefaultClockHz, 0.4e-9, 1.0e-9, 0.34e-9);
    ShiftPlanner planner(&model, timing, 1, max_part, budget);
    for (int d = 1; d <= max_part; ++d) {
        const auto &front = planner.paretoFront(d);
        ASSERT_FALSE(front.empty()) << "d=" << d;
        // Fastest entry is the one-shot; safest is all-ones.
        EXPECT_EQ(front.front().parts, std::vector<int>{d});
        EXPECT_EQ(front.back().parts,
                  std::vector<int>(static_cast<size_t>(d), 1));
        for (const auto &plan : front) {
            int sum = 0;
            for (int p : plan.parts) {
                EXPECT_GE(p, 1);
                EXPECT_LE(p, max_part);
                sum += p;
            }
            EXPECT_EQ(sum, d);
            // Latency consistency with the timing model.
            Cycles lat = 0;
            for (int p : plan.parts)
                lat += timing.shiftCycles(p);
            EXPECT_EQ(plan.latency, lat);
        }
        // planFor never returns an unsafe plan when a safe one
        // exists at the given interval.
        for (Cycles interval : {0u, 5u, 50u, 5000u, 5000000u}) {
            const SequencePlan &p = planner.planFor(d, interval);
            bool any_safe = false;
            for (const auto &alt : front)
                any_safe |= alt.min_interval <= interval;
            if (any_safe) {
                EXPECT_LE(p.min_interval, interval);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, PlannerSweep,
    ::testing::Combine(::testing::Values(3, 7, 15),
                       ::testing::Values(1.61e9, 1.61e11,
                                         1.61e13)));

// ---------------------------------------------------------------
// 3. Reliability-model conservation: corrected + due + sdc mass
//    never exceeds the total error mass, for every scheme/distance.
// ---------------------------------------------------------------

class ReliabilityConservation
    : public ::testing::TestWithParam<std::tuple<Scheme, int>>
{
};

TEST_P(ReliabilityConservation, ChannelsPartitionErrorMass)
{
    auto [scheme, distance] = GetParam();
    PaperCalibratedErrorModel model;
    ReliabilityModel rel(&model, scheme);
    ShiftReliability r = rel.shiftOp(distance);
    double total = std::exp(model.logProbAtLeast(distance, 1));
    double sdc = std::exp(r.log_sdc);
    double due = std::exp(r.log_due);
    double corrected = std::exp(r.log_corrected);
    // The second-order correction-failure term double-counts a
    // sliver of the corrected mass into DUE; tolerance covers it.
    EXPECT_LE(sdc + due + corrected, total * (1.0 + 1e-9));
    EXPECT_GT(sdc + due + corrected, total * 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ReliabilityConservation,
    ::testing::Combine(
        ::testing::Values(Scheme::Baseline, Scheme::SedPecc,
                          Scheme::SecdedPecc, Scheme::PeccO),
        ::testing::Values(1, 3, 5, 7)));

// ---------------------------------------------------------------
// 4. Random-walk soak across shapes: no silent corruption, ever.
// ---------------------------------------------------------------

class SoakSweep
    : public ::testing::TestWithParam<std::tuple<int, int,
                                                 uint64_t>>
{
};

TEST_P(SoakSweep, NoSilentMisalignment)
{
    auto [segments, lseg, seed] = GetParam();
    auto base = std::make_shared<PaperCalibratedErrorModel>();
    ScaledErrorModel model(base, 200.0);
    PeccConfig cfg;
    cfg.num_segments = segments;
    cfg.seg_len = lseg;
    cfg.correct = 1;
    cfg.variant = PeccVariant::Standard;
    ProtectedStripe ps(cfg, &model, Rng(seed));
    ps.initializeIdeal();
    Rng dice(seed * 31 + 7);
    for (int i = 0; i < 1200; ++i) {
        auto res = ps.seekIndex(
            static_cast<int>(dice.uniformInt(
                static_cast<uint64_t>(lseg))));
        if (res.unrecoverable) {
            ps.initializeIdeal(); // line rebuilt after a DUE
            continue;
        }
        ASSERT_EQ(ps.positionError(), 0)
            << segments << "x" << lseg << " op " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SoakSweep,
    ::testing::Combine(::testing::Values(2, 8),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(11u, 23u)));

} // namespace
} // namespace rtm
