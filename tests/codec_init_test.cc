/**
 * @file
 * Unit tests for the program-and-test p-ECC initialisation
 * (paper Sec. 4.3).
 */

#include <gtest/gtest.h>

#include <memory>

#include <cmath>

#include "codec/init.hh"

namespace rtm
{
namespace
{

PeccConfig
defaultConfig()
{
    PeccConfig c;
    c.num_segments = 8;
    c.seg_len = 8;
    c.correct = 1;
    c.variant = PeccVariant::Standard;
    return c;
}

TEST(Init, CleanDeviceInitialisesFirstTry)
{
    ZeroErrorModel model;
    ProtectedStripe ps(defaultConfig(), &model, Rng(1));
    PeccInitializer init(1);
    InitResult r = init.run(ps);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.restarts, 0);
    EXPECT_GT(r.shift_steps, 0u);
    EXPECT_GT(r.cycles, 0u);
    // Stripe is usable immediately after initialisation.
    EXPECT_TRUE(ps.checkNow().ok());
    EXPECT_EQ(ps.positionError(), 0);
}

TEST(Init, MoreRoundsCostMoreCycles)
{
    ZeroErrorModel model;
    ProtectedStripe a(defaultConfig(), &model, Rng(2));
    ProtectedStripe b(defaultConfig(), &model, Rng(2));
    InitResult r1 = PeccInitializer(1).run(a);
    InitResult r3 = PeccInitializer(3).run(b);
    EXPECT_TRUE(r1.success);
    EXPECT_TRUE(r3.success);
    EXPECT_GT(r3.cycles, 2 * r1.cycles);
}

TEST(Init, FaultyDeviceRestartsButConverges)
{
    auto base = std::make_shared<PaperCalibratedErrorModel>();
    // ~4.5% per-step error rate: each ~25-step verification pass has
    // ~2/3 odds of hitting an error, so 10 seeds restart many times
    // yet all converge.
    ScaledErrorModel model(base, 1000.0);
    int restarts = 0;
    int successes = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        ProtectedStripe ps(defaultConfig(), &model, Rng(seed));
        InitResult r = PeccInitializer(1).run(ps);
        successes += r.success;
        restarts += r.restarts;
    }
    EXPECT_EQ(successes, 10);
    EXPECT_GT(restarts, 0);
}

TEST(Init, AnalysisResidualShrinksWithRounds)
{
    PaperCalibratedErrorModel model;
    PeccInitializer one(1), three(3);
    InitAnalysis a1 = one.analyze(defaultConfig(), model);
    InitAnalysis a3 = three.analyze(defaultConfig(), model);
    EXPECT_LT(a3.log_residual_error, a1.log_residual_error);
    EXPECT_GT(a3.expected_cycles, a1.expected_cycles);
}

TEST(Init, PaperAnchorsOrderOfMagnitude)
{
    // Sec. 4.3: for the default stripe, one iteration leaves the
    // residual mis-programming probability below 1e-100 and costs
    // on the order of 1200 cycles.
    PaperCalibratedErrorModel model;
    InitAnalysis a = PeccInitializer(1).analyze(defaultConfig(),
                                                model);
    EXPECT_LT(a.log_residual_error, std::log(1e-20));
    EXPECT_GT(a.expected_cycles, 50u);
    EXPECT_LT(a.expected_cycles, 5000u);
}

TEST(Init, MemoryInitTimeScalesWithWaves)
{
    PaperCalibratedErrorModel model;
    PeccInitializer init(1);
    // Sec. 4.3: a 128 MB memory initialises in < 20 ms. 128 MB /
    // 64 data bits per stripe = 16M stripes; the paper implies wide
    // parallelism (per-subarray initialisers).
    uint64_t stripes = (128ull << 20) * 8 / 64;
    double t_wide = init.memoryInitSeconds(defaultConfig(), model,
                                           stripes, stripes / 64);
    EXPECT_LT(t_wide, 20e-3);
    double t_half = init.memoryInitSeconds(defaultConfig(), model,
                                           stripes, stripes / 128);
    EXPECT_NEAR(t_half / t_wide, 2.0, 0.05);
}

} // namespace
} // namespace rtm
