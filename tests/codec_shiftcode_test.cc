/**
 * @file
 * Exhaustive property tests for the shift-code family.
 *
 * The two codecs behind the lm-pos and del-ins-k schemes make exact
 * claims ("every |e| <= m offset decodes back to e", "a readout with
 * a <= k deletion/insertion burst reconstructs the exact data or
 * reports DUE, never silently") over parameter spaces small enough to
 * enumerate completely. These tests do exactly that:
 *
 *  - every valid limited-magnitude configuration with w <= 4, m <= 3
 *    is swept over every window phase x every error magnitude up to a
 *    full period, checking the decoder and the ShiftCode::classify
 *    contract agree on every single residue;
 *  - every small del-ins configuration (k <= 2, short tracks) is
 *    swept over every codeword x every single-burst error pattern
 *    (all burst times x all |delta| <= k), asserting the decoder
 *    returns the exact injected offset and data; beyond-radius bursts
 *    must be flagged detected-uncorrectable, never miscorrected.
 *
 * The safety invariant asserted on *every* decode in every sweep:
 * an accepted reconstruction equals the encoded truth bit for bit.
 * There is no input in these spaces for which the decoder silently
 * returns wrong data.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "codec/del_ins.hh"
#include "codec/shift_code.hh"

namespace rtm
{
namespace
{

// ---------------------------------------------------------------------
// Limited-magnitude position codes: exhaustive residue sweep.
// ---------------------------------------------------------------------

/** All (w, m) pairs with w <= 4, m <= 3 and 2m + 2 <= 2^w. */
std::vector<std::pair<int, int>>
validLmConfigs()
{
    std::vector<std::pair<int, int>> configs;
    for (int w = 1; w <= 4; ++w)
        for (int m = 0; m <= 3; ++m)
            if (2 * m + 2 <= (1 << w))
                configs.emplace_back(w, m);
    return configs;
}

TEST(LmPosExhaustive, ConfigSpaceIsTheExpectedOne)
{
    // Pin the enumeration so a constraint change is a visible diff:
    // w=1 admits only m=0, w=2 adds m=1, w=3 and w=4 reach m=3.
    const auto configs = validLmConfigs();
    const std::vector<std::pair<int, int>> expected = {
        {1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 1}, {3, 2}, {3, 3},
        {4, 0}, {4, 1}, {4, 2}, {4, 3},
    };
    EXPECT_EQ(configs, expected);
}

TEST(LmPosExhaustive, EveryPhaseEveryErrorDecodesPerContract)
{
    for (auto [w, m] : validLmConfigs()) {
        CyclicPositionCode code(w, m);
        const CyclicCode &cyc = code.code();
        const int t = cyc.period();
        ASSERT_EQ(code.correctionRadius(), m);
        for (int base = 0; base < t; ++base) {
            for (int e = -t; e <= t; ++e) {
                const int observed = ((base - e) % t + t) % t;
                const DecodeResult r = cyc.decode(observed, base, m);
                ASSERT_TRUE(r.valid);
                const int diff = ((e % t) + t) % t;
                const std::string ctx = "w=" + std::to_string(w) +
                                        " m=" + std::to_string(m) +
                                        " base=" +
                                        std::to_string(base) +
                                        " e=" + std::to_string(e);
                if (diff == 0) {
                    // Residue 0: no error, or a full-period alias
                    // (the codec's one silent channel).
                    EXPECT_FALSE(r.detected) << ctx;
                } else if (diff <= m) {
                    EXPECT_TRUE(r.detected) << ctx;
                    ASSERT_TRUE(r.correctable) << ctx;
                    EXPECT_EQ(r.step_error, diff) << ctx;
                } else if (t - diff <= m) {
                    EXPECT_TRUE(r.detected) << ctx;
                    ASSERT_TRUE(r.correctable) << ctx;
                    EXPECT_EQ(r.step_error, -(t - diff)) << ctx;
                } else {
                    EXPECT_TRUE(r.detected) << ctx;
                    EXPECT_FALSE(r.correctable) << ctx;
                }
                // Within the claimed radius the inferred error is the
                // injected error itself, never an alias.
                if (e != 0 && std::abs(e) <= m) {
                    ASSERT_TRUE(r.correctable) << ctx;
                    EXPECT_EQ(r.step_error, e) << ctx;
                }
            }
        }
    }
}

TEST(LmPosExhaustive, ClassifyMatchesTheDecoderOnEveryResidue)
{
    for (auto [w, m] : validLmConfigs()) {
        CyclicPositionCode code(w, m);
        const CyclicCode &cyc = code.code();
        const int t = cyc.period();
        for (int e = -2 * t; e <= 2 * t; ++e) {
            const ErrorClass cls = code.classify(e);
            const int observed = ((0 - e) % t + t) % t;
            const DecodeResult r = cyc.decode(observed, 0, m);
            const std::string ctx = "w=" + std::to_string(w) +
                                    " m=" + std::to_string(m) +
                                    " e=" + std::to_string(e);
            switch (cls) {
              case ErrorClass::Ok:
                EXPECT_EQ(e, 0) << ctx;
                EXPECT_TRUE(r.ok()) << ctx;
                break;
              case ErrorClass::Silent:
                EXPECT_NE(e, 0) << ctx;
                EXPECT_FALSE(r.detected) << ctx;
                break;
              case ErrorClass::Corrected:
                ASSERT_TRUE(r.correctable) << ctx;
                EXPECT_EQ(r.step_error, e) << ctx;
                break;
              case ErrorClass::Miscorrected:
                ASSERT_TRUE(r.correctable) << ctx;
                EXPECT_NE(r.step_error, e) << ctx;
                break;
              case ErrorClass::Ambiguous:
                EXPECT_TRUE(r.detected) << ctx;
                EXPECT_FALSE(r.correctable) << ctx;
                break;
            }
        }
    }
}

TEST(LmPosExhaustive, DefaultLmPosConfigCorrectsWiderThanSecded)
{
    // The headline of the construction: w=3 corrects +/-2 where the
    // paper's SECDED (w=2) corrects only +/-1 and miscorrects +2.
    CyclicPositionCode secded(2, 1);
    CyclicPositionCode lmpos(kLmPosWindow, kLmPosCorrect);
    EXPECT_EQ(secded.classify(2), ErrorClass::Ambiguous);
    EXPECT_EQ(secded.classify(3), ErrorClass::Miscorrected);
    EXPECT_EQ(lmpos.classify(2), ErrorClass::Corrected);
    EXPECT_EQ(lmpos.classify(-2), ErrorClass::Corrected);
    EXPECT_EQ(lmpos.classify(3), ErrorClass::Ambiguous);
    EXPECT_EQ(lmpos.classify(-3), ErrorClass::Ambiguous);
}

TEST(LmPosShiftCode, NarrowWindowIsRejected)
{
    EXPECT_DEATH(CyclicPositionCode(1, 1), "too narrow");
    EXPECT_DEATH(CyclicPositionCode(2, 2), "too narrow");
}

TEST(MakeShiftCode, RadiiMatchSchemeStrengths)
{
    for (Scheme s :
         {Scheme::Baseline, Scheme::Sts, Scheme::SedPecc,
          Scheme::SecdedPecc, Scheme::PeccO, Scheme::PeccSWorst,
          Scheme::PeccSAdaptive, Scheme::LmPos, Scheme::DelIns}) {
        auto code = makeShiftCode(s);
        if (schemeCorrectionStrength(s) < 0) {
            EXPECT_EQ(code, nullptr) << schemeToken(s);
        } else {
            ASSERT_NE(code, nullptr) << schemeToken(s);
            EXPECT_EQ(code->correctionRadius(),
                      schemeCorrectionStrength(s))
                << schemeToken(s);
        }
    }
}

// ---------------------------------------------------------------------
// Deletion/insertion codes: exhaustive codeword x burst sweep.
// ---------------------------------------------------------------------

/** Payload `value` spelled as payloadBits() bits, LSB first. */
std::vector<Bit>
payloadFromValue(const DelInsCode &code, uint64_t value)
{
    std::vector<Bit> payload(code.payloadBits(), Bit::Zero);
    for (int i = 0; i < code.payloadBits(); ++i)
        if (value & (1ull << i))
            payload[i] = Bit::One;
    return payload;
}

struct DelInsCase
{
    int tracks;
    int len;
    int k;
};

/**
 * The exhaustively enumerable del-ins spaces: every k <= 2 with short
 * tracks, both single- and multi-head. All payloads of every listed
 * configuration are swept (the payload space is <= 2^8).
 */
std::vector<DelInsCase>
exhaustiveDelInsCases()
{
    return {
        {1, 6, 1},  // 3 data bits
        {2, 6, 1},  // 6 data bits
        {1, 8, 2},  // 2 data bits
        {2, 6, 2},  // 4 data bits
        {2, 8, 1},  // 8 data bits
        {3, 8, 2},  // 6 data bits
    };
}

/**
 * Drive one (codeword, burst_time, delta) case through decode() and
 * assert the contract. `in_band` bursts (those striking before head 0
 * exhausts its own track) must decode to the exact offset and data.
 * Later bursts only touch flush reads; the decoder may then see a
 * shorter sentinel run and settle on a smaller offset — the remainder
 * stays latent for the next readout — but any accepted reconstruction
 * must still be the exact data. Nothing may ever be silently wrong.
 */
void
checkBurstCase(const DelInsCode &code,
               const std::vector<std::vector<Bit>> &tracks,
               const std::vector<Bit> &payload, int burst_time,
               int delta)
{
    const auto streams =
        code.referenceStreams(tracks, burst_time, delta);
    const DelInsCode::Result res = code.decode(streams);
    const std::string ctx =
        "h=" + std::to_string(code.tracks()) +
        " L=" + std::to_string(code.trackLen()) +
        " k=" + std::to_string(code.strength()) +
        " tau=" + std::to_string(burst_time) +
        " delta=" + std::to_string(delta);
    ASSERT_TRUE(res.status.valid) << ctx;

    const bool accepted = res.status.ok() || res.status.correctable;
    if (accepted) {
        // The safety invariant: an accepted decode is the truth.
        EXPECT_EQ(res.tracks, tracks) << ctx;
        EXPECT_EQ(code.extractPayload(res.tracks), payload) << ctx;
    }

    const bool in_band =
        burst_time <= code.trackLen() - std::abs(delta);
    // Exact in-band correction is a theorem at k = 1: the single
    // interleave class is a genuine VT code, whose deletion balls are
    // disjoint across codewords. At k >= 2 a burst can be genuinely
    // ambiguous for some codewords (several burst positions permute
    // the streams into distinct valid codewords — e.g. inside runs of
    // equal bits whose syndromes collide); those must surface as DUE,
    // and the safety check above already ruled out silent acceptance.
    const bool exact_guaranteed = code.strength() == 1;
    if (delta == 0) {
        EXPECT_TRUE(res.status.ok()) << ctx;
        EXPECT_EQ(res.status.step_error, 0) << ctx;
    } else if (std::abs(delta) <= code.strength()) {
        if (in_band && exact_guaranteed) {
            EXPECT_TRUE(res.status.detected) << ctx;
            ASSERT_TRUE(res.status.correctable) << ctx;
            EXPECT_EQ(res.status.step_error, delta) << ctx;
        } else if (in_band) {
            // Ambiguity-prone configuration: still never silent —
            // either the exact correction or a detected episode.
            EXPECT_TRUE(res.status.detected) << ctx;
            if (res.status.correctable)
                EXPECT_EQ(res.status.step_error, delta) << ctx;
        }
        // Out-of-band bursts: accepted-with-exact-data or DUE are
        // both within contract; silence was excluded above.
    } else {
        // Beyond the claimed radius: detection is mandatory when the
        // burst touched the data window; correction would be fine
        // only if it reproduced the exact data, which the acceptance
        // check above already enforces.
        if (in_band) {
            EXPECT_TRUE(res.status.detected) << ctx;
            EXPECT_FALSE(res.status.correctable) << ctx;
        }
    }
}

TEST(DelInsExhaustive, EveryCodewordEveryBurstDecodesPerContract)
{
    for (const DelInsCase &c : exhaustiveDelInsCases()) {
        DelInsCode code(c.tracks, c.len, c.k);
        ASSERT_LE(code.payloadBits(), 8)
            << "case grew beyond exhaustive range";
        const uint64_t payloads = 1ull << code.payloadBits();
        const int n = code.readoutReads();
        for (uint64_t v = 0; v < payloads; ++v) {
            const auto payload = payloadFromValue(code, v);
            const auto tracks = code.encode(payload);
            for (int tau = 0; tau < n; ++tau)
                for (int delta = -c.k; delta <= c.k; ++delta)
                    checkBurstCase(code, tracks, payload, tau,
                                   delta);
        }
    }
}

TEST(DelInsExhaustive, BeyondRadiusBurstsAreNeverSilent)
{
    for (const DelInsCase &c : exhaustiveDelInsCases()) {
        DelInsCode code(c.tracks, c.len, c.k);
        const uint64_t payloads = 1ull << code.payloadBits();
        const int n = code.readoutReads();
        // |delta| in (k, k+2]: the first beyond-radius magnitudes the
        // flush-read budget still distinguishes.
        for (uint64_t v = 0; v < payloads; ++v) {
            const auto payload = payloadFromValue(code, v);
            const auto tracks = code.encode(payload);
            for (int tau = 0; tau < n; ++tau)
                for (int mag = c.k + 1; mag <= c.k + 2; ++mag)
                    for (int sign : {+1, -1})
                        checkBurstCase(code, tracks, payload, tau,
                                       sign * mag);
        }
    }
}

TEST(DelInsExhaustive, EveryCodewordSatisfiesItsSyndromes)
{
    for (const DelInsCase &c : exhaustiveDelInsCases()) {
        DelInsCode code(c.tracks, c.len, c.k);
        const uint64_t payloads = 1ull << code.payloadBits();
        for (uint64_t v = 0; v < payloads; ++v) {
            const auto payload = payloadFromValue(code, v);
            const auto tracks = code.encode(payload);
            for (const auto &track : tracks) {
                EXPECT_TRUE(code.trackSyndromesOk(track));
                EXPECT_EQ(static_cast<int>(track.size()),
                          code.trackLen());
            }
            // encode/extract round-trip.
            EXPECT_EQ(code.extractPayload(tracks), payload);
        }
    }
}

TEST(DelInsCode, GeometryAndAccounting)
{
    DelInsCode code(2, 8, 2);
    EXPECT_EQ(code.flushReads(), 6);
    EXPECT_EQ(code.readoutReads(), 14);
    // L=8, k=2: classes of length 4 need r=3 check bits each.
    EXPECT_EQ(code.checkBitsPerTrack(), 6);
    EXPECT_EQ(code.dataBitsPerTrack(), 2);
    EXPECT_EQ(code.payloadBits(), 4);
    int checks = 0;
    for (int p = 0; p < code.trackLen(); ++p)
        checks += code.isCheckPosition(p) ? 1 : 0;
    EXPECT_EQ(checks, code.checkBitsPerTrack());
}

TEST(DelInsCode, AllZeroPayloadEncodesToAllZeroTracks)
{
    DelInsCode code(2, 8, 2);
    const auto tracks =
        code.encode(payloadFromValue(code, 0));
    for (const auto &track : tracks)
        for (Bit b : track)
            EXPECT_EQ(b, Bit::Zero);
}

TEST(DelInsCode, MalformedStreamsAreInvalid)
{
    DelInsCode code(2, 8, 1);
    const auto tracks = code.encode(payloadFromValue(code, 0x2d));
    auto streams = code.referenceStreams(tracks, 0, 0);

    auto short_streams = streams;
    short_streams[1].pop_back();
    EXPECT_FALSE(code.decode(short_streams).status.valid);

    auto missing_track = streams;
    missing_track.pop_back();
    EXPECT_FALSE(code.decode(missing_track).status.valid);
}

TEST(DelInsCode, CorruptedDataReadIsNeverAccepted)
{
    // Flip one observed in-track bit (a read fault, not a position
    // error): cross-head re-reads and the VT syndromes must refuse
    // every candidate rather than accept a wrong reconstruction.
    DelInsCode code(2, 8, 1);
    const auto payload = payloadFromValue(code, 0x5a);
    const auto tracks = code.encode(payload);
    const auto clean = code.referenceStreams(tracks, 0, 0);
    for (size_t s = 0; s < clean.size(); ++s) {
        for (size_t t = 0; t < clean[s].size(); ++t) {
            if (clean[s][t] == Bit::X)
                continue;
            auto corrupted = clean;
            corrupted[s][t] = corrupted[s][t] == Bit::One
                                  ? Bit::Zero
                                  : Bit::One;
            const auto res = code.decode(corrupted);
            if (res.status.ok() || res.status.correctable) {
                EXPECT_EQ(code.extractPayload(res.tracks), payload)
                    << "s=" << s << " t=" << t;
            }
        }
    }
}

TEST(DelInsCode, DegenerateParametersAreFatal)
{
    EXPECT_DEATH(DelInsCode(0, 8, 1), "track");
    EXPECT_DEATH(DelInsCode(1, 8, 0), "k >= 1");
    EXPECT_DEATH(DelInsCode(1, 2, 2), "too short");
    // L=3, k=1 needs 2 check bits, leaving 1 data bit - legal; L=2
    // would leave none.
    EXPECT_DEATH(DelInsCode(1, 3, 2), "too short|no data");
}

TEST(DelInsShiftCode, ClassifyAndAccounting)
{
    DelInsShiftCode code(2);
    EXPECT_EQ(code.correctionRadius(), 2);
    EXPECT_EQ(code.classify(0), ErrorClass::Ok);
    for (int e : {-2, -1, 1, 2})
        EXPECT_EQ(code.classify(e), ErrorClass::Corrected) << e;
    for (int e : {-5, -4, -3, 3, 4, 5})
        EXPECT_EQ(code.classify(e), ErrorClass::Ambiguous) << e;
    EXPECT_EQ(code.extraReadPorts(), 0);
    DelInsCode ref(4, 8, 2);
    EXPECT_EQ(code.redundancyDomains(4, 8),
              4 * ref.checkBitsPerTrack() + ref.flushReads());
}

} // namespace
} // namespace rtm
