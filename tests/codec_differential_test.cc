/**
 * @file
 * Randomized differential test of the shift-code family.
 *
 * Every protection scheme is driven through the *same* fault
 * scenarios (iid / burst / stuck-stripe / droop / skew regimes from
 * device/fault_scenario.hh) on a shared seed, with the injected error
 * magnitudes capped at a chosen radius, and the data each scheme
 * returns is compared against an in-memory reference image:
 *
 *  - while injections stay within a scheme's claimed correction
 *    radius, the scheme must return correct data on every single
 *    access — SDC count identically zero;
 *  - when injections exceed the radius, the wider codes (lm-pos at
 *    m=2, del-ins-k at k=2) must flag the episode DUE rather than
 *    ever returning wrong data silently — their SDC count stays zero
 *    even beyond radius (the paper's SECDED has a genuine
 *    miscorrection channel there, which is exactly the differential
 *    gap the new codes close).
 *
 * A DUE is resolved the way the controller's last ladder rung does:
 * rebuild the stripe contents from the reference image (scrub) and
 * continue the timeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "codec/protected_stripe.hh"
#include "codec/shift_code.hh"
#include "device/fault_scenario.hh"

namespace rtm
{
namespace
{

constexpr double kNegInf =
    -std::numeric_limits<double>::infinity();

/**
 * Paper-calibrated rates, accelerated by a constant factor and capped
 * at |k| <= cap: the knob that puts a scenario inside or beyond a
 * scheme's correction radius.
 */
class CappedErrorModel : public PositionErrorModel
{
  public:
    CappedErrorModel(double factor, int cap)
        : scaled_(std::make_shared<PaperCalibratedErrorModel>(),
                  factor),
          cap_(cap)
    {
    }

    double logProbStep(int distance, int step_error) const override
    {
        if (std::abs(step_error) > cap_)
            return kNegInf;
        return scaled_.logProbStep(distance, step_error);
    }

    double logProbStopInMiddle(int, int) const override
    {
        return kNegInf;
    }

    int maxStepError() const override { return cap_; }

  private:
    ScaledErrorModel scaled_;
    int cap_;
};

/** The five scenario regimes, all over the same base model. */
std::vector<std::unique_ptr<FaultScenario>>
allScenarios(std::shared_ptr<const PositionErrorModel> base)
{
    std::vector<std::unique_ptr<FaultScenario>> out;
    out.push_back(std::make_unique<IidScenario>(base));
    out.push_back(
        std::make_unique<BurstScenario>(base, 40, 10, 25.0));
    out.push_back(
        std::make_unique<StuckStripeScenario>(base, 60, 30));
    out.push_back(
        std::make_unique<DroopScenario>(base, 50, 15, 0.6));
    out.push_back(std::make_unique<SkewScenario>(base, 7, 0.8));
    return out;
}

struct DiffStats
{
    uint64_t detected = 0; //!< episodes that flagged an error
    uint64_t due = 0;      //!< unrecoverable episodes (scrubbed)
    uint64_t sdc = 0;      //!< silent wrong data, in-model episodes
    uint64_t multi = 0;    //!< episodes outside the single-burst
                           //!< model (>= 2 injections or a latent
                           //!< offset carried in)
    uint64_t multi_sdc = 0; //!< silent wrong data in those episodes
    uint64_t in_model_detected = 0; //!< in-model flagged episodes
};

std::vector<Bit>
patternBits(int n)
{
    std::vector<Bit> bits;
    for (int i = 0; i < n; ++i)
        bits.push_back((i * 5 + 2) % 3 == 0 ? Bit::One : Bit::Zero);
    return bits;
}

/**
 * Drive a Standard-variant scheme through `ops` random seeks on one
 * scenario timeline, comparing every aligned read against the
 * reference image. DUE episodes scrub and continue.
 */
DiffStats
runStandardDifferential(const PeccConfig &config,
                        FaultScenario *scenario, uint64_t seed,
                        int ops)
{
    ProtectedStripe ps(config, scenario, Rng(seed));
    ps.initializeIdeal();
    const auto image = patternBits(config.dataDomains());
    ps.loadData(image);
    Rng sequence(seed ^ 0x5eedULL);
    DiffStats st;
    for (int i = 0; i < ops; ++i) {
        const int r = static_cast<int>(
            sequence.uniformInt(config.seg_len));
        const ProtectedShiftResult res = ps.seekIndex(r);
        if (res.detected)
            ++st.detected;
        if (res.unrecoverable) {
            ++st.due;
            ps.initializeIdeal();
            ps.loadData(image);
            continue;
        }
        for (int s = 0; s < config.num_segments; ++s)
            if (ps.readAligned(s) != image[s * config.seg_len + r])
                ++st.sdc;
    }
    return st;
}

/**
 * Same differential loop for the del-ins-k scheme: each op is one
 * protected streaming readout whose decoded payload must match the
 * reference payload.
 */
DiffStats
runDelInsDifferential(FaultScenario *scenario, uint64_t seed,
                      int ops)
{
    PeccConfig config;
    config.num_segments = 4;
    config.seg_len = 12;
    config.correct = 2;
    config.variant = PeccVariant::DelIns;
    ProtectedStripe ps(config, scenario, Rng(seed));
    ps.initializeIdeal();
    const DelInsCode *code = ps.delInsCode();
    const auto payload = patternBits(code->payloadBits());
    ps.loadPayload(payload);
    DiffStats st;
    for (int i = 0; i < ops; ++i) {
        // The codec's claimed radius is ONE burst of <= k per
        // readout. An episode that starts with a latent offset from
        // the previous one, or during which the scenario injected
        // two or more separate faults, presents a multi-burst stream
        // — the code's analogue of a multi-bit error under SECDED —
        // and is tracked separately from the in-model SDC count
        // (positionError() is the ground-truth test hook).
        const bool latent = ps.positionError() != 0;
        const uint64_t injected_before = scenario->ledger().injected;
        std::vector<Bit> got;
        const ProtectedShiftResult res = ps.readoutNow(&got);
        const uint64_t injections =
            scenario->ledger().injected - injected_before;
        const bool in_model = !latent && injections <= 1;
        if (!in_model)
            ++st.multi;
        if (res.detected) {
            ++st.detected;
            if (in_model)
                ++st.in_model_detected;
        }
        if (res.unrecoverable) {
            ++st.due;
            ps.initializeIdeal();
            ps.loadPayload(payload);
            continue;
        }
        if (got != payload)
            ++(in_model ? st.sdc : st.multi_sdc);
    }
    return st;
}

PeccConfig
standardConfig(int correct, int window_ports)
{
    PeccConfig c;
    c.num_segments = 4;
    c.seg_len = 12;
    c.correct = correct;
    c.window_ports = window_ports;
    c.variant = PeccVariant::Standard;
    return c;
}

constexpr uint64_t kSeed = 0xd1ffe7e57ULL;
constexpr int kOps = 400;
constexpr double kAccel = 3e3;

TEST(Differential, WithinRadiusEverySchemeHasZeroSdc)
{
    // Cap injections at +/-1: inside every scheme's radius. All three
    // schemes see each scenario timeline from the same seed.
    auto base = std::make_shared<CappedErrorModel>(kAccel, 1);
    for (const auto &scenario : allScenarios(base)) {
        SCOPED_TRACE(scenario->name());

        auto secded = scenario->clone();
        DiffStats s1 = runStandardDifferential(
            standardConfig(1, 0), secded.get(), kSeed, kOps);
        EXPECT_EQ(s1.sdc, 0u) << "secded";

        auto lmpos = scenario->clone();
        DiffStats s2 = runStandardDifferential(
            standardConfig(kLmPosCorrect, kLmPosWindow),
            lmpos.get(), kSeed, kOps);
        EXPECT_EQ(s2.sdc, 0u) << "lm-pos";

        auto delins = scenario->clone();
        DiffStats s3 =
            runDelInsDifferential(delins.get(), kSeed, kOps);
        EXPECT_EQ(s3.sdc, 0u) << "del-ins-k";

        // The drill must actually exercise the machinery: the
        // scenario injected faults and at least one scheme saw them.
        EXPECT_GT(secded->ledger().injected +
                      lmpos->ledger().injected +
                      delins->ledger().injected,
                  0u);
        EXPECT_GT(s1.detected + s2.detected + s3.detected, 0u);
    }
}

TEST(Differential, WithinRadiusTwoStepErrorsNeedTheWiderCodes)
{
    // Cap at +/-2: beyond SECDED's radius but inside lm-pos's and
    // del-ins-k's. The wider codes must keep SDC at zero; SECDED must
    // at least never miscorrect silently *undetected* here (a +/-2
    // residue is detectable-uncorrectable for w=2).
    auto base = std::make_shared<CappedErrorModel>(kAccel, 2);
    for (const auto &scenario : allScenarios(base)) {
        SCOPED_TRACE(scenario->name());

        auto lmpos = scenario->clone();
        DiffStats s2 = runStandardDifferential(
            standardConfig(kLmPosCorrect, kLmPosWindow),
            lmpos.get(), kSeed, kOps);
        EXPECT_EQ(s2.sdc, 0u) << "lm-pos";

        auto delins = scenario->clone();
        DiffStats s3 =
            runDelInsDifferential(delins.get(), kSeed, kOps);
        EXPECT_EQ(s3.sdc, 0u) << "del-ins-k";
    }
}

TEST(Differential, BeyondRadiusIsDueNeverSilentForTheNewCodes)
{
    // Cap at +/-3: beyond every scheme's radius. lm-pos (period 8)
    // flags a +/-3 residue detectable-uncorrectable, del-ins-k
    // exposes it via the sentinel run; neither may ever return wrong
    // data without the DUE flag.
    auto base = std::make_shared<CappedErrorModel>(kAccel, 3);
    for (const auto &scenario : allScenarios(base)) {
        SCOPED_TRACE(scenario->name());

        auto lmpos = scenario->clone();
        DiffStats s2 = runStandardDifferential(
            standardConfig(kLmPosCorrect, kLmPosWindow),
            lmpos.get(), kSeed, kOps);
        EXPECT_EQ(s2.sdc, 0u) << "lm-pos";

        auto delins = scenario->clone();
        DiffStats s3 =
            runDelInsDifferential(delins.get(), kSeed, kOps);
        EXPECT_EQ(s3.sdc, 0u) << "del-ins-k";
    }
}

TEST(Differential, SameSeedSameSchemeIsBitIdentical)
{
    // The harness itself must be deterministic: identical seeds and
    // scenario clones reproduce identical counters.
    auto base = std::make_shared<CappedErrorModel>(kAccel, 2);
    BurstScenario proto(base, 40, 10, 25.0);
    auto a = proto.clone();
    auto b = proto.clone();
    DiffStats ra =
        runDelInsDifferential(a.get(), kSeed, kOps / 4);
    DiffStats rb =
        runDelInsDifferential(b.get(), kSeed, kOps / 4);
    EXPECT_EQ(ra.detected, rb.detected);
    EXPECT_EQ(ra.due, rb.due);
    EXPECT_EQ(ra.sdc, rb.sdc);
    EXPECT_EQ(a->ledger().injected, b->ledger().injected);
}

} // namespace
} // namespace rtm
