/**
 * @file
 * Unit tests for the Monte-Carlo position-error extractor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "device/fitted_model.hh"
#include "device/montecarlo.hh"
#include "util/parallel.hh"

namespace rtm
{
namespace
{

TEST(MonteCarlo, StepJitterIsSmallAndPositive)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p);
    double j = mc.stepJitter();
    EXPECT_GT(j, 0.001);
    EXPECT_LT(j, 0.2);
}

TEST(MonteCarlo, ResyncRhoInRange)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p);
    EXPECT_GT(mc.resyncRho(), 0.0);
    EXPECT_LT(mc.resyncRho(), 1.0);
}

TEST(MonteCarlo, MostTrialsSucceed)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p, 1);
    ErrorPdf pdf = mc.run(1, 20000);
    EXPECT_EQ(pdf.trials, 20000u);
    EXPECT_GT(pdf.stepProbability(0), 0.99);
}

TEST(MonteCarlo, DeviationMomentsGrowWithDistance)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p, 2);
    ErrorPdf d1 = mc.run(1, 20000);
    ErrorPdf d7 = mc.run(7, 20000);
    EXPECT_GT(d7.deviation.stddev(), d1.deviation.stddev());
    // Sub-sqrt growth thanks to notch re-synchronisation.
    EXPECT_LT(d7.deviation.stddev() / d1.deviation.stddev(),
              std::sqrt(7.0));
}

TEST(MonteCarlo, OverdriveBiasesDeviationPositive)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p, 3);
    ErrorPdf pdf = mc.run(4, 20000);
    EXPECT_GT(pdf.deviation.mean(), 0.0);
}

TEST(MonteCarlo, ClassificationPartitionsTrials)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p, 4);
    ErrorPdf pdf = mc.run(7, 10000);
    uint64_t steps = 0, mids = 0;
    for (const auto &[k, c] : pdf.step_counts.entries())
        steps += c;
    for (const auto &[k, c] : pdf.middle_counts.entries())
        mids += c;
    EXPECT_EQ(steps + mids, pdf.trials);
}

TEST(MonteCarlo, FittedModelReflectsMeasuredMoments)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p, 5);
    FittedErrorModel fit = mc.fitModel(50000);
    // The fitted sigma_step must be close to the direct 1-step
    // deviation spread.
    PositionErrorMonteCarlo mc2(p, 6);
    ErrorPdf d1 = mc2.run(1, 50000);
    EXPECT_NEAR(fit.params().sigma_step, d1.deviation.stddev(),
                0.1 * d1.deviation.stddev());
    EXPECT_GT(fit.params().resync_rho, 0.0);
    EXPECT_LT(fit.params().resync_rho, 1.0);
    EXPECT_NEAR(fit.params().notch_half_width,
                0.5 * 45.0 / 195.0, 1e-6);
}

TEST(MonteCarlo, ErrorPdfProbabilitiesDeriveFromTallies)
{
    // Regression: probabilities used to divide by the separately
    // stored `trials` field, which could drift from the tallies
    // after a merge. They now derive from the tally totals.
    ErrorPdf pdf;
    pdf.distance = 1;
    pdf.step_counts.add(0, 90);
    pdf.step_counts.add(1, 6);
    pdf.middle_counts.add(0, 4);
    pdf.trials = 12345; // deliberately wrong
    EXPECT_EQ(pdf.tallyTrials(), 100u);
    EXPECT_DOUBLE_EQ(pdf.stepProbability(0), 0.90);
    EXPECT_DOUBLE_EQ(pdf.stepProbability(1), 0.06);
    EXPECT_DOUBLE_EQ(pdf.middleProbability(0), 0.04);
}

TEST(MonteCarlo, ErrorPdfMergeCombinesShards)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p, 8);
    ErrorPdf a = mc.run(4, 8000);
    ErrorPdf b = mc.run(4, 4000);
    ErrorPdf sum = a;
    sum.merge(b);
    EXPECT_EQ(sum.trials, 12000u);
    EXPECT_EQ(sum.tallyTrials(), 12000u);
    EXPECT_EQ(sum.distance, 4);
    EXPECT_EQ(sum.step_counts.count(0),
              a.step_counts.count(0) + b.step_counts.count(0));
    EXPECT_EQ(sum.deviation.count(), 12000u);
    // Merging into a default-constructed accumulator adopts the
    // shard's distance (the map-reduce identity case).
    ErrorPdf acc;
    acc.merge(a);
    EXPECT_EQ(acc.distance, 4);
    EXPECT_EQ(acc.trials, a.trials);
}

TEST(MonteCarlo, StepJitterCacheMatchesRecompute)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p);
    EXPECT_DOUBLE_EQ(mc.stepJitter(), mc.computeStepJitter());
}

TEST(MonteCarlo, DeterministicGivenSeed)
{
    DeviceParams p;
    PositionErrorMonteCarlo a(p, 77), b(p, 77);
    ErrorPdf pa = a.run(3, 5000);
    ErrorPdf pb = b.run(3, 5000);
    EXPECT_DOUBLE_EQ(pa.deviation.mean(), pb.deviation.mean());
    EXPECT_EQ(pa.step_counts.entries(), pb.step_counts.entries());
}

void
expectPdfsIdentical(const ErrorPdf &a, const ErrorPdf &b)
{
    EXPECT_EQ(a.distance, b.distance);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.step_counts.entries(), b.step_counts.entries());
    EXPECT_EQ(a.middle_counts.entries(),
              b.middle_counts.entries());
    EXPECT_EQ(a.deviation.count(), b.deviation.count());
    EXPECT_EQ(a.deviation.mean(), b.deviation.mean());
    EXPECT_EQ(a.deviation.stddev(), b.deviation.stddev());
}

TEST(MonteCarlo, ExactTierMatchesScalarReferenceBitwise)
{
    // The exact-tier contract: the batched kernel replays the
    // scalar path's draws and arithmetic exactly, so run() is
    // bit-identical to the frozen reference at any trial count —
    // including sub-batch, tail-remainder and prime counts.
    DeviceParams p;
    for (uint64_t trials : {uint64_t(1), uint64_t(255),
                            uint64_t(256), uint64_t(4097),
                            uint64_t(20011)}) {
        PositionErrorMonteCarlo batch(p, 5, McTier::Exact);
        PositionErrorMonteCarlo scalar(p, 5);
        expectPdfsIdentical(batch.run(7, trials),
                            scalar.runScalarReference(7, trials));
    }
}

TEST(MonteCarlo, ExactTierMatchesScalarReferenceAtDistanceOne)
{
    DeviceParams p;
    PositionErrorMonteCarlo batch(p, 9, McTier::Exact);
    PositionErrorMonteCarlo scalar(p, 9);
    expectPdfsIdentical(batch.run(1, 3001),
                        scalar.runScalarReference(1, 3001));
}

TEST(MonteCarlo, FastTierIsBitStableAcrossThreadCounts)
{
    // The fast tier reorders draws but aligns its shards to the
    // batch granule, so the result is a pure function of (seed,
    // trials) whatever RTM_THREADS says.
    DeviceParams p;
    unsigned before = ThreadPool::global().threads();
    PositionErrorMonteCarlo a(p, 5, McTier::Fast);
    ThreadPool::setGlobalThreads(1);
    ErrorPdf pa = a.run(7, 50000);
    PositionErrorMonteCarlo b(p, 5, McTier::Fast);
    ThreadPool::setGlobalThreads(4);
    ErrorPdf pb = b.run(7, 50000);
    ThreadPool::setGlobalThreads(before);
    expectPdfsIdentical(pa, pb);
}

TEST(MonteCarlo, FastTierMomentsTrackExactTier)
{
    DeviceParams p;
    const uint64_t trials = 100000;
    PositionErrorMonteCarlo fast(p, 5, McTier::Fast);
    PositionErrorMonteCarlo exact(p, 5, McTier::Exact);
    ErrorPdf pf = fast.run(7, trials);
    ErrorPdf pe = exact.run(7, trials);
    double se = pe.deviation.stddev() /
                std::sqrt(static_cast<double>(trials));
    EXPECT_NEAR(pf.deviation.mean(), pe.deviation.mean(),
                8.0 * se);
    EXPECT_NEAR(pf.deviation.stddev(), pe.deviation.stddev(),
                0.05 * pe.deviation.stddev());
}

TEST(MonteCarlo, FitModelTiersAgree)
{
    // The fitted parameters are derived from sample moments, so the
    // tiers agree statistically; the exact tier is additionally
    // bit-deterministic given the seed.
    DeviceParams p;
    PositionErrorMonteCarlo a(p, 5, McTier::Exact);
    PositionErrorMonteCarlo b(p, 5, McTier::Exact);
    FittedErrorModel fa = a.fitModel(20000);
    FittedErrorModel fb = b.fitModel(20000);
    EXPECT_DOUBLE_EQ(fa.params().sigma_step,
                     fb.params().sigma_step);
    PositionErrorMonteCarlo c(p, 5, McTier::Fast);
    FittedErrorModel fc = c.fitModel(20000);
    EXPECT_NEAR(fc.params().sigma_step, fa.params().sigma_step,
                0.05 * fa.params().sigma_step);
}

TEST(MonteCarloDeath, MergePanicsOnDistanceMismatch)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p, 8);
    ErrorPdf a = mc.run(4, 1000);
    ErrorPdf b = mc.run(5, 1000);
    EXPECT_DEATH(a.merge(b), "distance");
}

TEST(MonteCarloDeath, MergePanicsWhenTrialsOutOfSyncWithTallies)
{
    DeviceParams p;
    PositionErrorMonteCarlo mc(p, 8);
    ErrorPdf a = mc.run(4, 1000);
    ErrorPdf b = mc.run(4, 1000);
    // Corrupt the bookkeeping: the trials field no longer matches
    // the tally totals, which merge() must refuse to paper over.
    b.trials += 1;
    EXPECT_DEATH(a.merge(b), "out of sync");
    ErrorPdf c = mc.run(4, 1000);
    ErrorPdf d = mc.run(4, 1000);
    c.trials += 1;
    EXPECT_DEATH(c.merge(d), "out of sync");
}

} // namespace
} // namespace rtm
